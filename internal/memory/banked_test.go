package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestBanked() *Banked {
	// 8 banks, 2KB rows, 90/180-cycle row hit/miss, 64B lines over a
	// 16B bus (4-cycle transfer).
	return NewBanked(8, 2048, 90, 180, 64, 16)
}

func TestBankedMapping(t *testing.T) {
	b := newTestBanked()
	// Addresses within one row map to the same bank and row.
	bank0, row0 := b.Map(0)
	bankX, rowX := b.Map(2047)
	if bank0 != bankX || row0 != rowX {
		t.Fatalf("same-row addresses split: (%d,%d) vs (%d,%d)", bank0, row0, bankX, rowX)
	}
	// The next row lands in the next bank (row:bank:column layout).
	bank1, _ := b.Map(2048)
	if bank1 != (bank0+1)%8 {
		t.Fatalf("next row bank %d, want %d", bank1, (bank0+1)%8)
	}
	// 8 rows later we wrap to the same bank, one row up.
	bank8, row8 := b.Map(8 * 2048)
	if bank8 != bank0 || row8 != row0+1 {
		t.Fatalf("wrap: bank %d row %d, want bank %d row %d", bank8, row8, bank0, row0+1)
	}
}

func TestBankedRowHitFasterThanMiss(t *testing.T) {
	b := newTestBanked()
	first := b.AccessLine(0x0, 0)
	second := b.AccessLine(0x40, 10_000) // same row, bank idle again
	if first != 180+4 {
		t.Fatalf("cold access latency %d, want 184", first)
	}
	if second != 90+4 {
		t.Fatalf("row-hit latency %d, want 94", second)
	}
	if b.RowHits != 1 || b.RowMisses != 1 {
		t.Fatalf("row hits/misses = %d/%d", b.RowHits, b.RowMisses)
	}
}

func TestBankedConflictReopensRow(t *testing.T) {
	b := newTestBanked()
	b.AccessLine(0x0, 0)
	// Same bank (bank 0), different row: 8 rows * 2048 bytes away.
	lat := b.AccessLine(8*2048, 10_000)
	if lat != 180+4 {
		t.Fatalf("row-conflict latency %d, want 184", lat)
	}
	// The conflicting row is now open.
	lat = b.AccessLine(8*2048+64, 20_000)
	if lat != 90+4 {
		t.Fatalf("reopened-row latency %d, want 94", lat)
	}
}

func TestBankedBusyBankQueues(t *testing.T) {
	b := newTestBanked()
	// Cold access: the row conflict occupies the bank for the
	// precharge+activate work plus the burst = (180-90)+4 = 94 cycles.
	b.AccessLine(0x0, 0)
	lat := b.AccessLine(0x40, 0)
	// Same bank, same row, issued at 0: waits 94 for the bank, then the
	// 90-cycle row hit; the data bus was busy [180,184) from the first
	// transfer, so the burst starts at 184+... second access bank phase
	// ends at 94+90 = 184, bus frees at 184: transfer [184,188).
	if lat != 94+90+4 {
		t.Fatalf("queued same-bank latency %d, want 188", lat)
	}
	if b.StallTotal != 94 {
		t.Fatalf("StallTotal %d, want 94", b.StallTotal)
	}
}

func TestBankedRowHitsPipeline(t *testing.T) {
	// Back-to-back row hits are limited by the burst rate (the bank
	// pipelines open-row column reads), not by the full access latency.
	b := newTestBanked()
	b.AccessLine(0x0, 0)
	now := int64(10_000) // drain
	l1 := b.AccessLine(0x40, now)
	l2 := b.AccessLine(0x80, now)
	if l1 != 94 {
		t.Fatalf("first row hit %d, want 94", l1)
	}
	// Second hit queues only behind the 4-cycle burst: 4+90+4 = 98.
	if l2 != 98 {
		t.Fatalf("pipelined row hit %d, want 98", l2)
	}
}

func TestBankedIndependentBanksOverlap(t *testing.T) {
	b := newTestBanked()
	l0 := b.AccessLine(0, 0)    // bank 0
	l1 := b.AccessLine(2048, 0) // bank 1: overlaps bank access
	if l0 != 184 {
		t.Fatalf("bank-0 latency %d", l0)
	}
	// Bank 1 access [0,180); bus busy [180,184) from bank 0, so the
	// transfer starts at 184: total 188.
	if l1 != 188 {
		t.Fatalf("bank-1 latency %d, want 188 (bus serialization only)", l1)
	}
}

func TestBankedStreamingIsMostlyRowHits(t *testing.T) {
	b := newTestBanked()
	now := int64(0)
	for i := 0; i < 320; i++ { // 10 rows of 32 lines
		lat := b.AccessLine(uint64(i)*64, now)
		now += lat
	}
	if hr := b.RowHitRate(); hr < 0.9 {
		t.Fatalf("streaming row-hit rate %.2f, want >= 0.9", hr)
	}
}

func TestBankedRandomTrafficHasRowConflicts(t *testing.T) {
	b := newTestBanked()
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(1<<24)) &^ 63
		now += b.AccessLine(addr, now)
	}
	if hr := b.RowHitRate(); hr > 0.5 {
		t.Fatalf("random row-hit rate %.2f, want <= 0.5", hr)
	}
}

func TestBankedResetStats(t *testing.T) {
	b := newTestBanked()
	b.AccessLine(0, 0)
	b.ResetStats()
	if b.Requests != 0 || b.RowHits != 0 || b.RowMisses != 0 {
		t.Fatal("counters survive ResetStats")
	}
	// Row buffers must close: the same line is a row miss again.
	if lat := b.AccessLine(0, 0); lat != 184 {
		t.Fatalf("post-reset latency %d, want 184", lat)
	}
}

func TestBankedPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewBanked(3, 2048, 90, 180, 64, 16) },
		func() { NewBanked(8, 1000, 90, 180, 64, 16) },
		func() { NewBanked(0, 2048, 90, 180, 64, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: latency is always at least rowHit+transfer and, for an idle
// machine, at most rowMiss+transfer.
func TestBankedLatencyBoundsProperty(t *testing.T) {
	f := func(addrs [16]uint32) bool {
		b := newTestBanked()
		now := int64(0)
		for _, a := range addrs {
			lat := b.AccessLine(uint64(a)&^63, now)
			if lat < 94 {
				return false
			}
			now += lat + 1000 // fully drain: no queueing component
			if lat > 184 {
				return false
			}
		}
		return b.RowHits+b.RowMisses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fixed-latency model and the banked model agree that
// utilization is bounded and requests are conserved.
func TestMainMemoryInterfaceConservation(t *testing.T) {
	models := []MainMemory{
		NewDRAM(150, 64, 16),
		newTestBanked(),
	}
	for _, m := range models {
		now := int64(0)
		for i := 0; i < 500; i++ {
			now += m.AccessLine(uint64(i*64), now)
		}
		if got := m.Stats().Requests; got != 500 {
			t.Errorf("%T: requests %d, want 500", m, got)
		}
		if u := m.Utilization(now); u < 0 || u > 1 {
			t.Errorf("%T: utilization %v", m, u)
		}
	}
}

func BenchmarkBankedAccess(b *testing.B) {
	d := newTestBanked()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.AccessLine(uint64(i)*64, int64(i))
	}
}
