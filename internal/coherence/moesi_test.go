package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const line = uint64(0x1000)

func TestColdReadIsExclusive(t *testing.T) {
	p := New(4)
	res := p.Read(0, line)
	if res.Source != SrcBelow || res.NewState != Exclusive {
		t.Fatalf("cold read = %+v, want below/Exclusive", res)
	}
	if p.State(0, line) != Exclusive {
		t.Fatalf("state = %v, want E", p.State(0, line))
	}
}

func TestSecondReaderGetsSharedFromExclusive(t *testing.T) {
	p := New(4)
	p.Read(0, line)
	res := p.Read(1, line)
	if res.Source != SrcRemote {
		t.Fatalf("source = %v, want remote (E supplies)", res.Source)
	}
	if p.State(0, line) != Shared || p.State(1, line) != Shared {
		t.Fatalf("states = %v/%v, want S/S", p.State(0, line), p.State(1, line))
	}
}

func TestReadFromModifiedDowngradesToOwned(t *testing.T) {
	p := New(4)
	p.Write(0, line)
	res := p.Read(1, line)
	if res.Source != SrcRemote {
		t.Fatalf("source = %v, want remote", res.Source)
	}
	if p.State(0, line) != Owned || p.State(1, line) != Shared {
		t.Fatalf("states = %v/%v, want O/S", p.State(0, line), p.State(1, line))
	}
	// A third reader is supplied by the Owned copy.
	res = p.Read(2, line)
	if res.Source != SrcRemote {
		t.Fatalf("third reader source = %v, want remote (O supplies)", res.Source)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	p := New(4)
	p.Read(0, line)
	p.Read(1, line)
	p.Read(2, line)
	res := p.Write(1, line)
	if res.NewState != Modified {
		t.Fatalf("state after write = %v, want M", res.NewState)
	}
	if res.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", res.Invalidations)
	}
	if p.State(0, line) != Invalid || p.State(2, line) != Invalid {
		t.Fatal("sharers not invalidated")
	}
	if p.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", p.Upgrades)
	}
}

func TestWriteHitExclusiveSilentUpgrade(t *testing.T) {
	p := New(2)
	p.Read(0, line)
	res := p.Write(0, line)
	if res.Source != SrcOwn || res.Invalidations != 0 {
		t.Fatalf("E->M upgrade = %+v, want silent", res)
	}
	if p.State(0, line) != Modified {
		t.Fatalf("state = %v, want M", p.State(0, line))
	}
}

func TestWriteMissFromRemoteModified(t *testing.T) {
	p := New(2)
	p.Write(0, line)
	res := p.Write(1, line)
	if res.Source != SrcRemote {
		t.Fatalf("source = %v, want remote (dirty transfer)", res.Source)
	}
	if res.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", res.Invalidations)
	}
	if p.State(0, line) != Invalid || p.State(1, line) != Modified {
		t.Fatalf("states = %v/%v, want I/M", p.State(0, line), p.State(1, line))
	}
}

func TestEvictReportsWriteback(t *testing.T) {
	p := New(2)
	p.Write(0, line)
	if !p.Evict(0, line) {
		t.Fatal("evicting M did not request writeback")
	}
	p.Read(0, line)
	if p.Evict(0, line) {
		t.Fatal("evicting E requested writeback")
	}
	if p.Evict(0, line) {
		t.Fatal("evicting absent line requested writeback")
	}
}

func TestEvictGarbageCollects(t *testing.T) {
	p := New(2)
	p.Read(0, line)
	p.Evict(0, line)
	if p.Holders(line) != 0 {
		t.Fatalf("holders = %d after last evict, want 0", p.Holders(line))
	}
	if len(p.lines) != 0 {
		t.Fatal("line state not garbage collected")
	}
}

func TestCoherenceMissClassification(t *testing.T) {
	// The paper treats data supplied by a remote cache as a coherence
	// miss (long-latency); data from below is an ordinary miss.
	p := New(2)
	p.Write(0, line)
	if res := p.Read(1, line); res.Source != SrcRemote {
		t.Fatal("dirty remote supply not classified as remote")
	}
	p2 := New(2)
	p2.Read(0, line)
	p2.Read(1, line)
	p2.Evict(0, line)
	p2.Evict(1, line)
	if res := p2.Read(0, line); res.Source != SrcBelow {
		t.Fatal("fresh read after evictions not from below")
	}
}

func TestInvariantsDetectViolations(t *testing.T) {
	p := New(2)
	p.Write(0, line)
	if msg := p.CheckInvariants(); msg != "" {
		t.Fatalf("valid state flagged: %s", msg)
	}
	// Corrupt the state deliberately.
	p.lines[line][1] = Modified
	if msg := p.CheckInvariants(); msg == "" {
		t.Fatal("two Modified copies not detected")
	}
}

// Property: the MOESI single-writer/multi-reader invariants hold under any
// random access/evict sequence.
func TestQuickInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		p := New(4)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			core := int(op & 3)
			addr := uint64(op&0x1C) << 4
			switch {
			case op < 120:
				p.Read(core, addr)
			case op < 230:
				p.Write(core, addr)
			default:
				p.Evict(core, addr)
			}
			_ = rng
			if p.CheckInvariants() != "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any write, the writer is the only valid holder.
func TestQuickWriteExclusivity(t *testing.T) {
	f := func(ops []uint16) bool {
		p := New(4)
		for _, op := range ops {
			core := int(op & 3)
			addr := uint64(op>>2) << 6
			if op&0x8000 != 0 {
				p.Write(core, addr)
				if p.Holders(addr) != 1 || p.State(core, addr) != Modified {
					return false
				}
			} else {
				p.Read(core, addr)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestResetDropsState(t *testing.T) {
	p := New(2)
	p.Write(0, line)
	p.Reset()
	if p.State(0, line) != Invalid || p.WriteMisses != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestMESIHasNoOwnedState(t *testing.T) {
	p := NewMESI(2)
	p.Write(0, line)
	res := p.Read(1, line)
	if res.Source != SrcRemote || !res.WritebackBelow {
		t.Fatalf("MESI dirty read = %+v, want remote supply with writeback", res)
	}
	if p.State(0, line) != Shared || p.State(1, line) != Shared {
		t.Fatalf("MESI states = %v/%v, want S/S", p.State(0, line), p.State(1, line))
	}
	// No copy is dirty anymore: evicting either requires no writeback.
	if p.Evict(0, line) {
		t.Fatal("MESI Shared eviction requested writeback")
	}
}

func TestMOESIKeepsDirtySharing(t *testing.T) {
	p := New(2)
	p.Write(0, line)
	res := p.Read(1, line)
	if res.WritebackBelow {
		t.Fatal("MOESI wrote back on dirty sharing (O state exists)")
	}
	if p.State(0, line) != Owned {
		t.Fatalf("supplier state = %v, want O", p.State(0, line))
	}
	// The Owned copy still owes a writeback at eviction.
	if !p.Evict(0, line) {
		t.Fatal("evicting O did not request writeback")
	}
}

func TestMESIInvariantsUnderTraffic(t *testing.T) {
	p := NewMESI(4)
	for i := 0; i < 3000; i++ {
		core := i % 4
		addr := uint64(i%16) << 6
		if i%3 == 0 {
			p.Write(core, addr)
		} else {
			p.Read(core, addr)
		}
		if msg := p.CheckInvariants(); msg != "" {
			t.Fatal(msg)
		}
		for _, st := range p.lines[addr] {
			if st == Owned {
				t.Fatal("Owned state appeared in MESI")
			}
		}
	}
}
