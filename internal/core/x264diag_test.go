package core

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestDiagnoseX264(t *testing.T) {
	p := workload.PARSECByName("x264")
	q := *p
	q.TotalWork = 300_000
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	bp := branch.NewUnit(m.Branch)
	warm := workload.New(&q, 0, 1, 1042)
	for k := 0; k < 600_000; k++ {
		in, ok := warm.Next()
		if !ok {
			break
		}
		if in.Class.IsMem() {
			mem.Data(0, in.Addr, in.Class == isa.Store, 0)
		}
		if in.Class.IsBranch() {
			bp.Predict(&in)
		}
	}
	mem.ResetStats()
	bp.ResetStats()
	c := New(0, m.Core, bp, mem, workload.New(&q, 0, 1, 42), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
	}
	t.Logf("IPC=%.3f LLcharged=%d LLoverlapped=%d scanBreaks=%d hidden=%d longLat(total)=%d",
		c.IPC(), c.LongLoadEvents, c.OverlapLL, c.ScanBreaks, c.OverlapHidden, mem.Stats().LongLatency)
}
