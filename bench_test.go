// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus micro-benchmarks on the simulator hot paths.
//
// Each figure benchmark runs the corresponding experiment at a reduced
// size and reports simulated instructions per host second for both core
// models, so `go test -bench .` regenerates the paper's entire evaluation
// (use cmd/experiments for full-size tables).
package main

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/ooo"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchOpts sizes figure benchmarks small enough to iterate.
func benchOpts() experiments.Opts {
	o := experiments.Quick()
	o.Insts = 10_000
	o.Warmup = 100_000
	o.WorkScale = 0.1
	return o
}

// Figure benchmarks: each b.N iteration regenerates the artifact once.

func BenchmarkFig4a(b *testing.B) { benchFig(b, func(o experiments.Opts) { o.Fig4("4a") }) }
func BenchmarkFig4b(b *testing.B) { benchFig(b, func(o experiments.Opts) { o.Fig4("4b") }) }
func BenchmarkFig4c(b *testing.B) { benchFig(b, func(o experiments.Opts) { o.Fig4("4c") }) }
func BenchmarkFig4d(b *testing.B) { benchFig(b, func(o experiments.Opts) { o.Fig4("4d") }) }
func BenchmarkFig5(b *testing.B)  { benchFig(b, func(o experiments.Opts) { o.Fig5() }) }
func BenchmarkFig6(b *testing.B)  { benchFig(b, func(o experiments.Opts) { o.Fig6() }) }
func BenchmarkFig7(b *testing.B)  { benchFig(b, func(o experiments.Opts) { o.Fig7() }) }
func BenchmarkFig8(b *testing.B)  { benchFig(b, func(o experiments.Opts) { o.Fig8() }) }
func BenchmarkFig9(b *testing.B)  { benchFig(b, func(o experiments.Opts) { o.Fig9() }) }
func BenchmarkFig10(b *testing.B) { benchFig(b, func(o experiments.Opts) { o.Fig10() }) }

// BenchmarkAblationOneIPC regenerates the one-IPC ablation table.
func BenchmarkAblationOneIPC(b *testing.B) {
	benchFig(b, func(o experiments.Opts) { o.Ablation() })
}

func benchFig(b *testing.B, f func(experiments.Opts)) {
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(o)
	}
}

// Simulator-throughput benchmarks: simulated instructions per host second
// for each core model on a representative workload. The ratio between the
// detailed and interval numbers is the paper's headline speedup.

func benchModel(b *testing.B, model multicore.Model, cores int) {
	p := workload.SPECByName("gcc")
	b.ReportAllocs()
	var insts int64
	for i := 0; i < b.N; i++ {
		streams := make([]trace.Stream, cores)
		for c := 0; c < cores; c++ {
			streams[c] = trace.NewLimit(workload.New(p, c, cores, 42), 20_000)
		}
		res := multicore.Run(multicore.RunConfig{
			Machine: config.Default(cores),
			Model:   model,
		}, streams)
		insts += int64(res.TotalRetired)
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "simMIPS")
}

func BenchmarkDetailedSingleCore(b *testing.B) { benchModel(b, multicore.Detailed, 1) }
func BenchmarkIntervalSingleCore(b *testing.B) { benchModel(b, multicore.Interval, 1) }
func BenchmarkOneIPCSingleCore(b *testing.B)   { benchModel(b, multicore.OneIPC, 1) }
func BenchmarkDetailedQuadCore(b *testing.B)   { benchModel(b, multicore.Detailed, 4) }
func BenchmarkIntervalQuadCore(b *testing.B)   { benchModel(b, multicore.Interval, 4) }

// Micro-benchmarks on the hot paths.

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(config.Default(1).Mem.L1D)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&1023]
		if !c.Access(a, false) {
			c.Fill(a, false)
		}
	}
}

func BenchmarkBranchPredict(b *testing.B) {
	u := branch.NewUnit(config.Default(1).Branch)
	in := isa.Inst{Class: isa.Branch, PC: 0x400100, Taken: true, Target: 0x400000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Taken = i&7 != 0
		u.Predict(&in)
	}
}

func BenchmarkMemHierData(b *testing.B) {
	h := memhier.New(1, config.Default(1).Mem, memhier.Perfect{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(0, uint64(i%4096)*64, false, int64(i))
	}
}

// BenchmarkIntervalSteadyState measures the steady-state per-instruction
// cost of the interval core with real miss-event simulators, after the
// window and the hand-off ring are primed. It must report 0 allocs/op: the
// core's steady state is allocation-free (run with -benchmem).
func BenchmarkIntervalSteadyState(b *testing.B) {
	m := config.Default(1)
	p := workload.SPECByName("gcc")
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	bp := branch.NewUnit(m.Branch)
	c := core.New(0, m.Core, bp, mem, workload.New(p, 0, 1, 42), sim.NullSyncer{})
	var now int64
	for c.Retired() < 10_000 {
		c.Step(now)
		now = c.NextActive(now + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := c.Retired()
	for c.Retired()-start < uint64(b.N) {
		c.Step(now)
		now = c.NextActive(now + 1)
	}
}

// BenchmarkIntervalReplay measures the timing model over a pre-recorded
// trace — the trace-driven hand-off of the paper's framework, with the
// functional simulator out of the timed loop (batched bulk copies feed the
// window).
func BenchmarkIntervalReplay(b *testing.B) {
	p := workload.SPECByName("gcc")
	tr := trace.Record(workload.New(p, 0, 1, 42), 200_000)
	b.ReportAllocs()
	var insts int64
	for i := 0; i < b.N; i++ {
		res := multicore.Run(multicore.RunConfig{
			Machine: config.Default(1),
			Model:   multicore.Interval,
		}, []trace.Stream{trace.NewSliceStream(tr)})
		insts += int64(res.TotalRetired)
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "simMIPS")
}

// BenchmarkIntervalDispatch measures the per-instruction cost of the
// analytical core model alone (perfect structures).
func BenchmarkIntervalDispatch(b *testing.B) {
	m := config.Default(1)
	m.Branch.Kind = "perfect"
	p := workload.SPECByName("mesa")
	mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
	bp := branch.NewUnit(m.Branch)
	gen := workload.New(p, 0, 1, 42)
	c := core.New(0, m.Core, bp, mem, gen, sim.NullSyncer{})
	b.ResetTimer()
	var now int64
	start := c.Retired()
	for c.Retired()-start < uint64(b.N) {
		c.Step(now)
		now++
	}
}

// BenchmarkDetailedCycle measures the per-instruction cost of the detailed
// model alone (perfect structures) — the 28K-lines-of-C++ stand-in.
func BenchmarkDetailedCycle(b *testing.B) {
	m := config.Default(1)
	m.Branch.Kind = "perfect"
	p := workload.SPECByName("mesa")
	mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
	bp := branch.NewUnit(m.Branch)
	gen := workload.New(p, 0, 1, 42)
	c := ooo.New(0, m.Core, bp, mem, gen, sim.NullSyncer{})
	b.ResetTimer()
	var now int64
	start := c.Retired()
	for c.Retired()-start < uint64(b.N) {
		c.Step(now)
		now++
	}
}

// BenchmarkWorkloadGen measures the functional simulator alone.
func BenchmarkWorkloadGen(b *testing.B) {
	p := workload.SPECByName("gcc")
	g := workload.New(p, 0, 1, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

// BenchmarkAblationPrefetch compares a streaming workload with and without
// the next-line prefetcher (a design-space knob beyond the Table 1
// baseline); the report metric is the IPC gained.
func BenchmarkAblationPrefetch(b *testing.B) {
	p := workload.SPECByName("swim")
	run := func(prefetch bool) float64 {
		m := config.Default(1)
		if prefetch {
			m.Mem.Prefetch = "nextline"
			m.Mem.PrefetchDegree = 2
		}
		streams := []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 20_000)}
		warm := []trace.Stream{workload.New(p, 0, 1, 1042)}
		res := multicore.Run(multicore.RunConfig{
			Machine: m, Model: multicore.Interval,
			WarmupInsts: 200_000, Warmup: warm,
		}, streams)
		return res.Cores[0].IPC
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		base := run(false)
		pf := run(true)
		if base > 0 {
			gain = pf / base
		}
	}
	b.ReportMetric(gain, "ipcGain")
}

// BenchmarkAblationMESI compares MOESI against MESI on a sharing-heavy
// multi-threaded workload; the metric is the relative execution-time cost
// of dropping the Owned state (extra writebacks on dirty sharing).
func BenchmarkAblationMESI(b *testing.B) {
	p := workload.PARSECByName("canneal")
	run := func(protocol string) int64 {
		q := *p
		q.TotalWork = 100_000
		m := config.Default(4)
		m.Mem.Coherence = protocol
		streams := make([]trace.Stream, 4)
		for i := range streams {
			streams[i] = workload.New(&q, i, 4, 42)
		}
		res := multicore.Run(multicore.RunConfig{
			Machine: m, Model: multicore.Interval, MaxCycles: 100_000_000,
		}, streams)
		return res.Cycles
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		moesi := run("moesi")
		mesi := run("mesi")
		if moesi > 0 {
			ratio = float64(mesi) / float64(moesi)
		}
	}
	b.ReportMetric(ratio, "mesiSlowdown")
}
