package simrun

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BatchResult pairs one scenario with its outcome. Err is non-nil when the
// run failed, was cancelled (context.Canceled), or hit the per-scenario
// timeout (context.DeadlineExceeded); Result then holds whatever partial
// progress was made.
type BatchResult struct {
	Scenario *Scenario
	Result   Result
	Err      error
}

// BatchOpts tunes Batch.
type BatchOpts struct {
	// Workers is the number of host goroutines running scenarios
	// concurrently; <=0 selects GOMAXPROCS. Simulated results are
	// deterministic and independent of Workers — only wall-clock
	// measurements (Result.Wall, MIPS) vary under host contention.
	Workers int
	// Timeout bounds each scenario's host run time (0 = none).
	Timeout time.Duration
	// Progress, when non-nil, is called after each scenario completes
	// with the completion count; calls are serialized but arrive in
	// completion order, not input order.
	Progress func(done, total int, r BatchResult)
}

// Batch runs the scenarios across a worker pool and returns one result per
// scenario, in input order. Cancelling ctx interrupts in-flight runs and
// marks every unfinished scenario with ctx's error.
func Batch(ctx context.Context, scenarios []*Scenario, opts BatchOpts) []BatchResult {
	results := make([]BatchResult, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}
	// Queue-occupancy gauges: pending drops as workers pick scenarios
	// up, running tracks in-flight simulations. Both return to zero
	// when the batch ends.
	obsMetrics()
	mBatchPending.Add(int64(len(scenarios)))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for idx := range jobs {
				mBatchPending.Add(-1)
				mBatchRunning.Add(1)
				results[idx] = runOne(ctx, scenarios[idx], opts.Timeout)
				mBatchRunning.Add(-1)
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(scenarios), results[idx])
					mu.Unlock()
				}
			}
		}()
	}

	for idx := range scenarios {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes one scenario under the batch context and optional
// per-scenario timeout. Once the batch context is cancelled, in-flight
// runs are interrupted at the driver's next poll and every remaining
// scenario returns the cancellation error without simulating. A panic
// anywhere under the run is isolated to this one result (engines have
// their own boundary in Run; this one also covers the batch plumbing),
// so one poisoned scenario cannot sink the rest of the batch.
func runOne(ctx context.Context, s *Scenario, timeout time.Duration) (br BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			obsMetrics()
			mEnginePanics.Inc()
			br = BatchResult{Scenario: s, Err: &PanicError{Engine: s.EngineName(), Scenario: s.Name(), Value: r, Stack: debug.Stack()}}
		}
	}()
	if err := ctx.Err(); err != nil {
		return BatchResult{Scenario: s, Err: err}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := s.Run(ctx)
	return BatchResult{Scenario: s, Result: res, Err: err}
}
