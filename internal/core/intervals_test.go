package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/memhier"
)

func TestIntervalHistogramCountsEvents(t *testing.T) {
	// Isolated long-latency loads every 100 instructions: each charged
	// event ends one interval of ~100 instructions.
	insts := seqALU(1000)
	for i := 100; i < 1000; i += 100 {
		insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400400, Class: isa.Load,
			Addr: 0x10000000000 + uint64(i)*0x100000000,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: 9}
	}
	c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
	runCore(c)
	st := c.Intervals()
	if st.Events == 0 {
		t.Fatal("no intervals recorded")
	}
	if st.Events != c.ICacheEvents+c.BranchEvents+c.LongLoadEvents+c.SerializeEvents {
		t.Fatalf("intervals %d != charged events %d",
			st.Events, c.ICacheEvents+c.BranchEvents+c.LongLoadEvents+c.SerializeEvents)
	}
	// ~100-instruction intervals land in the [64,127] bucket.
	if st.Mean() < 50 || st.Mean() > 300 {
		t.Fatalf("mean interval length %.1f, want ~100", st.Mean())
	}
	if st.Hist[7] == 0 {
		t.Fatalf("no intervals in the 64-127 bucket: %v", st.Hist)
	}
}

func TestIntervalStatsString(t *testing.T) {
	var st IntervalStats
	st.Hist[0] = 1
	st.Hist[7] = 5
	st.Hist[intervalBuckets-1] = 2
	st.Events = 8
	st.Insts = 800
	out := st.String()
	for _, want := range []string{"8 intervals", "mean 100.0", "64-127", "65536+"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram rendering missing %q:\n%s", want, out)
		}
	}
}

func TestIntervalStatsEmptyMean(t *testing.T) {
	var st IntervalStats
	if st.Mean() != 0 {
		t.Fatal("empty stats mean not zero")
	}
}

func TestNoEventsNoIntervals(t *testing.T) {
	c, _ := build(seqALU(1000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(c)
	if got := c.Intervals().Events; got != 0 {
		t.Fatalf("perfect run recorded %d intervals", got)
	}
}
