package simrun

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/memhier"
)

// Spec is the declarative, JSON-serializable form of a scenario: every
// field maps onto one scenario option, and zero values mean "use the
// option's default". It is the wire format shared by the simd service
// (POST /v1/jobs bodies) and cmd/sweep's -f file mode, so a scenario that
// works in one front end is copy-pasteable into the other.
//
// Spec deliberately covers only the declarative surface of the builder:
// closed-set knobs, sizing integers and the full machine override.
// Code-only options (Streams, Configure, custom registered factories'
// side data) have no spec form — they exist for embedding Go programs.
type Spec struct {
	// Version pins the stream-format generation the spec was written
	// for. 0 (omitted) means the current generation (SpecVersion); any
	// other value is rejected by Scenario, so clients that recorded
	// expected results under an old stream format fail loudly instead
	// of silently comparing against renumbered simulations.
	Version int `json:"version,omitempty"`

	Bench string `json:"bench,omitempty"`
	Label string `json:"label,omitempty"`
	Model string `json:"model,omitempty"`
	// Engine pins the answering engine (simrun.Engine): omitted or
	// "full" runs the complete budget under the core model; estimator
	// engines ("statistical", "simpoint") answer at a cheaper fidelity
	// tier. Unknown engine or tier names are rejected loudly with the
	// registered set — mirroring the Version rejection below — so a
	// typo never silently runs the wrong fidelity.
	Engine string   `json:"engine,omitempty"`
	Cores  int      `json:"cores,omitempty"`
	Copies int      `json:"copies,omitempty"`
	Mix    []string `json:"mix,omitempty"`

	Insts     int     `json:"insts,omitempty"`
	Warmup    int     `json:"warmup,omitempty"`
	Seed      *int64  `json:"seed,omitempty"`
	WorkScale float64 `json:"work_scale,omitempty"`
	MaxCycles int64   `json:"max_cycles,omitempty"`

	// HostPar requests the host-parallel deterministic engine (0 =
	// sequential); Quantum tunes its epoch length. Both are
	// host-execution knobs: results are bit-identical either way, so
	// they do not enter the scenario fingerprint and cached results are
	// shared across settings.
	HostPar int   `json:"hostpar,omitempty"`
	Quantum int64 `json:"quantum,omitempty"`

	Fabric    string `json:"fabric,omitempty"`
	Coherence string `json:"coherence,omitempty"`
	DRAM      string `json:"dram,omitempty"`
	Prefetch  string `json:"prefetch,omitempty"`
	Predictor string `json:"predictor,omitempty"`

	// Machine replaces the Table 1 default as the base machine; knob
	// fields above still apply on top of it.
	Machine *config.Machine `json:"machine,omitempty"`
	// Perfect selects always-hit structures (accuracy experiments).
	Perfect *memhier.Perfect `json:"perfect,omitempty"`
	// Ablation selects interval-model ablation variants.
	Ablation *core.Options `json:"ablation,omitempty"`

	// Report keeps the core models and memory hierarchy in the result
	// so the post-run report includes hierarchy, fabric, DRAM and
	// coherence statistics (simrun.KeepCores).
	Report bool `json:"report,omitempty"`
}

// Options translates the spec into the equivalent option list, in a fixed
// order. Field validation happens where it always does: inside New.
func (sp Spec) Options() []Option {
	var opts []Option
	if sp.Label != "" {
		opts = append(opts, Label(sp.Label))
	}
	if sp.Model != "" {
		opts = append(opts, Model(sp.Model))
	}
	if sp.Engine != "" {
		opts = append(opts, Engine(sp.Engine))
	}
	if sp.Cores != 0 {
		opts = append(opts, Cores(sp.Cores))
	}
	if sp.Copies != 0 {
		opts = append(opts, Copies(sp.Copies))
	}
	if len(sp.Mix) > 0 {
		opts = append(opts, Mix(sp.Mix...))
	}
	if sp.Insts != 0 {
		opts = append(opts, Insts(sp.Insts))
	}
	if sp.Warmup != 0 {
		opts = append(opts, Warmup(sp.Warmup))
	}
	if sp.Seed != nil {
		opts = append(opts, Seed(*sp.Seed))
	}
	if sp.WorkScale != 0 {
		opts = append(opts, WorkScale(sp.WorkScale))
	}
	if sp.MaxCycles != 0 {
		opts = append(opts, MaxCycles(sp.MaxCycles))
	}
	if sp.HostPar != 0 {
		opts = append(opts, HostParallel(sp.HostPar))
	}
	if sp.Quantum != 0 {
		opts = append(opts, EpochQuantum(sp.Quantum))
	}
	if sp.Machine != nil {
		opts = append(opts, Machine(*sp.Machine))
	}
	if sp.Fabric != "" {
		opts = append(opts, Fabric(sp.Fabric))
	}
	if sp.Coherence != "" {
		opts = append(opts, Coherence(sp.Coherence))
	}
	if sp.DRAM != "" {
		opts = append(opts, DRAM(sp.DRAM))
	}
	if sp.Prefetch != "" {
		opts = append(opts, Prefetch(sp.Prefetch))
	}
	if sp.Predictor != "" {
		opts = append(opts, Predictor(sp.Predictor))
	}
	if sp.Perfect != nil {
		opts = append(opts, Perfect(*sp.Perfect))
	}
	if sp.Ablation != nil {
		opts = append(opts, Ablation(*sp.Ablation))
	}
	if sp.Report {
		opts = append(opts, KeepCores())
	}
	return opts
}

// SpecVersion is the wire format's current stream-format generation,
// advanced in lockstep with workload.StreamVersion on every deliberate
// stream break (v2: Mix copies in disjoint address-space slots — all Mix
// results renumbered; v3: counter-based RNG and tabulated geometric
// sampling — all generated streams renumbered). Specs carrying any other
// non-zero Version are rejected.
const SpecVersion = 3

// Scenario builds and validates the scenario the spec describes. A spec
// pinned to a stale stream-format generation is rejected here, which is
// the shared choke point of both wire front ends (simd submissions and
// cmd/sweep -f batch files).
func (sp Spec) Scenario() (*Scenario, error) {
	if sp.Version != 0 && sp.Version != SpecVersion {
		return nil, fmt.Errorf("simrun: spec is pinned to stream format v%d, this build speaks v%d: the formats are deliberately incompatible (v3 rebuilt the generator on a counter-based RNG with tabulated sampling, renumbering ALL generated results) — update the spec's version after reviewing its expected results", sp.Version, SpecVersion)
	}
	return New(sp.Bench, sp.Options()...)
}

// ParseSpec strictly decodes one JSON spec: unknown fields are errors, so
// a typo like "predcitor" is rejected instead of silently running the
// baseline.
func ParseSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("simrun: bad scenario spec: %w", err)
	}
	return sp, nil
}

// SpecFile is the on-disk batch format (cmd/sweep -f): shared defaults
// plus one spec per scenario. Scenario fields, when set, override the
// defaults field-by-field.
type SpecFile struct {
	Defaults  Spec   `json:"defaults"`
	Scenarios []Spec `json:"scenarios"`
}

// merge returns sp with unset fields filled in from def.
func (sp Spec) merge(def Spec) Spec {
	out := sp
	if out.Version == 0 {
		out.Version = def.Version
	}
	if out.Bench == "" {
		out.Bench = def.Bench
	}
	if out.Model == "" {
		out.Model = def.Model
	}
	if out.Engine == "" {
		out.Engine = def.Engine
	}
	if out.Cores == 0 {
		out.Cores = def.Cores
	}
	if out.Copies == 0 {
		out.Copies = def.Copies
	}
	if len(out.Mix) == 0 {
		out.Mix = def.Mix
	}
	if out.Insts == 0 {
		out.Insts = def.Insts
	}
	if out.Warmup == 0 {
		out.Warmup = def.Warmup
	}
	if out.Seed == nil {
		out.Seed = def.Seed
	}
	if out.WorkScale == 0 {
		out.WorkScale = def.WorkScale
	}
	if out.MaxCycles == 0 {
		out.MaxCycles = def.MaxCycles
	}
	if out.HostPar == 0 {
		out.HostPar = def.HostPar
	}
	if out.Quantum == 0 {
		out.Quantum = def.Quantum
	}
	if out.Fabric == "" {
		out.Fabric = def.Fabric
	}
	if out.Coherence == "" {
		out.Coherence = def.Coherence
	}
	if out.DRAM == "" {
		out.DRAM = def.DRAM
	}
	if out.Prefetch == "" {
		out.Prefetch = def.Prefetch
	}
	if out.Predictor == "" {
		out.Predictor = def.Predictor
	}
	if out.Machine == nil {
		out.Machine = def.Machine
	}
	if out.Perfect == nil {
		out.Perfect = def.Perfect
	}
	if out.Ablation == nil {
		out.Ablation = def.Ablation
	}
	if !out.Report {
		out.Report = def.Report
	}
	return out
}

// loadSpecFile strictly decodes a SpecFile and returns one merged spec
// per scenario entry. Precedence, most specific first: scenario fields,
// the file's defaults, then any base specs (a front end's command-line
// sizing flags, say).
func loadSpecFile(r io.Reader, base ...Spec) ([]Spec, error) {
	var f SpecFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("simrun: bad spec file: %w", err)
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("simrun: spec file has no scenarios")
	}
	def := f.Defaults
	for _, b := range base {
		def = def.merge(b)
	}
	specs := make([]Spec, len(f.Scenarios))
	for i, sp := range f.Scenarios {
		specs[i] = sp.merge(def)
	}
	return specs, nil
}

// LoadSpecs strictly decodes a SpecFile and builds one validated scenario
// per entry. The error names the offending entry.
func LoadSpecs(r io.Reader, base ...Spec) ([]*Scenario, error) {
	specs, err := loadSpecFile(r, base...)
	if err != nil {
		return nil, err
	}
	scs := make([]*Scenario, len(specs))
	for i, sp := range specs {
		s, err := sp.Scenario()
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i+1, err)
		}
		scs[i] = s
	}
	return scs, nil
}

// LoadRawSpecs strictly decodes a SpecFile and returns the merged specs
// in wire form, each validated by building (and discarding) its
// scenario. Front ends that ship specs elsewhere instead of running
// them — cmd/sweep -fleet submitting to a simd coordinator — need the
// specs themselves: a built Scenario has no way back to its wire form.
func LoadRawSpecs(r io.Reader, base ...Spec) ([]Spec, error) {
	specs, err := loadSpecFile(r, base...)
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		if _, err := sp.Scenario(); err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i+1, err)
		}
	}
	return specs, nil
}
