package core

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

// build creates a single interval core over fresh structures.
func build(insts []isa.Inst, perfect memhier.Perfect, predictor string) (*Core, *memhier.Hierarchy) {
	m := config.Default(1)
	if predictor != "" {
		m.Branch.Kind = predictor
	}
	mem := memhier.New(1, m.Mem, perfect)
	bp := branch.NewUnit(m.Branch)
	c := New(0, m.Core, bp, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
	return c, mem
}

// runCore drives the core to completion through the cycle loop.
func runCore(c *Core) {
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 10_000_000 {
			panic("interval core did not finish")
		}
	}
}

func seqALU(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{
			Seq: uint64(i), PC: 0x400000 + uint64(i%64)*4,
			Class: isa.IntALU, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: uint8(8 + i%32),
		}
	}
	return out
}

func TestIndependentALURunsAtWidth(t *testing.T) {
	c, _ := build(seqALU(4000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(c)
	if c.Retired() != 4000 {
		t.Fatalf("retired %d", c.Retired())
	}
	if ipc := c.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Fatalf("IPC = %.3f, want ~4 (dispatch width)", ipc)
	}
}

func TestSerialChainRunsAtOne(t *testing.T) {
	insts := seqALU(4000)
	for i := range insts {
		insts[i].Src1 = 10
		insts[i].Dst = 10
	}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(c)
	if ipc := c.IPC(); ipc < 0.85 || ipc > 1.25 {
		t.Fatalf("serial-chain IPC = %.3f, want ~1", ipc)
	}
}

func TestSerializingChargesDrain(t *testing.T) {
	insts := seqALU(1000)
	insts[500] = isa.Inst{Seq: 500, PC: 0x400800, Class: isa.Serializing,
		Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(c)
	if c.SerializeEvents != 1 {
		t.Fatalf("serialize events = %d, want 1", c.SerializeEvents)
	}
	base, _ := build(seqALU(1000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(base)
	if c.LocalTime() <= base.LocalTime() {
		t.Fatal("serializing instruction added no time")
	}
}

func TestLongLatencyLoadChargesMiss(t *testing.T) {
	insts := seqALU(600)
	insts[300] = isa.Inst{Seq: 300, PC: 0x400400, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 9}
	c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
	runCore(c)
	if c.LongLoadEvents != 1 {
		t.Fatalf("long-load events = %d, want 1", c.LongLoadEvents)
	}
	base, _ := build(seqALU(600), memhier.Perfect{ISide: true}, "perfect")
	runCore(base)
	// The penalty is the miss latency minus the ROB-fill headroom.
	delta := c.LocalTime() - base.LocalTime()
	if delta < 50 || delta > 400 {
		t.Fatalf("miss penalty = %d cycles, want O(memory latency)", delta)
	}
}

func TestOverlappedLoadsChargeOnce(t *testing.T) {
	// Two independent long-latency loads close together: MLP means the
	// pair costs roughly one memory latency, not two.
	mkOne := func(addrs ...uint64) int64 {
		insts := seqALU(600)
		for k, a := range addrs {
			insts[300+k] = isa.Inst{Seq: uint64(300 + k), PC: 0x400400 + uint64(k)*4,
				Class: isa.Load, Addr: a,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: uint8(40 + k)}
		}
		c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
		runCore(c)
		return c.LocalTime()
	}
	base := mkOne()
	one := mkOne(0x10000000000)
	two := mkOne(0x10000000000, 0x20000000000)
	costOne := one - base
	costTwo := two - base
	if costTwo > costOne+costOne/2 {
		t.Fatalf("two overlapping misses cost %d vs one %d: no MLP", costTwo, costOne)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// The second load consumes the first one's result: penalties add.
	mk := func(dependent bool) int64 {
		insts := seqALU(600)
		insts[300] = isa.Inst{Seq: 300, PC: 0x400400, Class: isa.Load,
			Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 40}
		src := uint8(isa.RegNone)
		if dependent {
			src = 40
		}
		insts[301] = isa.Inst{Seq: 301, PC: 0x400404, Class: isa.Load,
			Addr: 0x20000000000, Src1: src, Src2: isa.RegNone, Dst: 41}
		c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
		runCore(c)
		return c.LocalTime()
	}
	if dep, indep := mk(true), mk(false); dep <= indep+50 {
		t.Fatalf("dependent pair (%d) not slower than independent pair (%d)", dep, indep)
	}
}

func TestBranchMispredictionChargesResolutionPlusFrontend(t *testing.T) {
	// An always-alternating branch with a bimodal predictor mispredicts
	// heavily; with the perfect predictor the same stream is fast.
	mk := func(pred string) int64 {
		insts := seqALU(2000)
		for i := 100; i < 1900; i += 10 {
			insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400100,
				Class: isa.Branch, Taken: i%20 == 0, Target: 0x400000,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
		}
		c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, pred)
		runCore(c)
		return c.LocalTime()
	}
	if slow, fast := mk("bimodal"), mk("perfect"); slow <= fast {
		t.Fatal("mispredictions added no time")
	}
}

func TestICacheMissCharged(t *testing.T) {
	// Instructions spread over a huge code footprint (every line
	// distinct) miss the L1I constantly; compare against the same
	// stream with a perfect I-side.
	mk := func(perfect bool) int64 {
		insts := seqALU(2000)
		for i := range insts {
			insts[i].PC = 0x400000 + uint64(i)*64 // one line each
		}
		c, _ := build(insts, memhier.Perfect{ISide: perfect, DSide: true}, "perfect")
		runCore(c)
		return c.LocalTime()
	}
	if miss, hit := mk(false), mk(true); miss <= hit {
		t.Fatal("I-cache misses added no time")
	}
}

func TestSyncStallsUntilAllowed(t *testing.T) {
	insts := seqALU(100)
	insts[50] = isa.Inst{Seq: 50, Class: isa.BarrierArrive}
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
	bp := branch.NewUnit(m.Branch)
	gate := &gateSyncer{openAt: 500}
	c := New(0, m.Core, bp, mem, trace.NewSliceStream(insts), gate)
	runCore(c)
	if c.LocalTime() < 500 {
		t.Fatalf("core finished at %d, before the barrier opened at 500", c.LocalTime())
	}
	if c.Retired() != 100 {
		t.Fatalf("retired %d", c.Retired())
	}
}

// gateSyncer blocks all sync operations until a fixed time.
type gateSyncer struct{ openAt int64 }

func (g *gateSyncer) Sync(core int, in *isa.Inst, now int64) sim.SyncDecision {
	if now < g.openAt {
		return sim.SyncDecision{}
	}
	return sim.SyncDecision{Proceed: true, Latency: 1}
}

func TestRetiredCountExact(t *testing.T) {
	c, _ := build(seqALU(12345), memhier.Perfect{}, "")
	runCore(c)
	if c.Retired() != 12345 {
		t.Fatalf("retired = %d, want 12345", c.Retired())
	}
	if c.FinishTime() <= 0 {
		t.Fatal("finish time not set")
	}
}

func TestStepSkipsWhenAhead(t *testing.T) {
	insts := seqALU(600)
	insts[100] = isa.Inst{Seq: 100, PC: 0x400100, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 9}
	c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
	// Step cycle by cycle and verify the core ignores cycles while its
	// local time is ahead of global time (event-driven at core level).
	var now int64
	for !c.Done() {
		wasAhead := c.LocalTime() != now
		before := c.Retired()
		c.Step(now)
		if wasAhead && c.Retired() != before {
			t.Fatal("core made progress while ahead of global time")
		}
		now++
	}
}

// buildMachine and buildWith are helpers shared by the CPI-stack tests.
func buildMachine() config.Machine {
	m := config.Default(1)
	m.Branch.Kind = "perfect"
	return m
}

func buildWith(m config.Machine, insts []isa.Inst, syncer sim.Syncer) *Core {
	mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
	bp := branch.NewUnit(m.Branch)
	return New(0, m.Core, bp, mem, trace.NewSliceStream(insts), syncer)
}
