package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/sampling"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Extension experiments: artifacts beyond the paper's evaluation that the
// reproduction makes possible — scaling past the paper's 8-core host
// limit, the per-refinement model ablation of DESIGN.md §6, and the
// system-level substrate sweeps (fabric, DRAM). cmd/experiments exposes
// them alongside the paper figures.

// ablationVariants lists the model-refinement ablations in DESIGN.md §6
// order.
var ablationVariants = []core.Options{
	{},
	{NoROBFillHiding: true},
	{FlushOldWindow: true},
	{NoOverlapScan: true},
	{NoTaint: true},
	{NoDispatchFloor: true},
}

// ablationProfiles is the mixed profile set the model ablation sweeps.
var ablationProfiles = []string{"gcc", "mcf", "swim", "vpr"}

// AblationModel regenerates the per-refinement accuracy table: for every
// ablation variant, the IPC error against the detailed baseline per
// profile and on average.
func (o Opts) AblationModel() Table {
	t := Table{
		ID:      "model-ablation",
		Title:   "per-refinement accuracy ablation (DESIGN.md §6): interval-vs-detailed IPC error",
		Columns: append(append([]string{"variant"}, ablationProfiles...), "avg"),
	}
	var scs []*simrun.Scenario
	for _, name := range ablationProfiles {
		scs = append(scs, o.specScenario(workload.SPECByName(name), "detailed", 1, memhier.Perfect{}, ""))
	}
	for _, v := range ablationVariants {
		for _, name := range ablationProfiles {
			scs = append(scs, o.specScenario(workload.SPECByName(name), "interval", 1,
				memhier.Perfect{}, "", simrun.Ablation(v)))
		}
	}
	results := o.runAll(scs)

	detailed := make(map[string]float64, len(ablationProfiles))
	for i, name := range ablationProfiles {
		detailed[name] = results[i].Cores[0].IPC
	}
	var fullAvg float64
	idx := len(ablationProfiles)
	for _, v := range ablationVariants {
		row := []string{v.Name()}
		var sum float64
		for _, name := range ablationProfiles {
			ipc := results[idx].Cores[0].IPC
			idx++
			e := math.Abs(ipc-detailed[name]) / detailed[name]
			sum += e
			row = append(row, pct(e))
		}
		avg := sum / float64(len(ablationProfiles))
		if v == (core.Options{}) {
			fullAvg = avg
		}
		row = append(row, pct(avg))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("full model %s average; every disabled refinement should not beat it materially", pct(fullAvg)),
		"no-overlap (first-order model) degrades most: the paper's second-order-effects claim")
	return t
}

// Scale16 extends the Figure 7 scaling experiment past the paper's 8-core
// limit ("physical memory constraints limited us from running larger
// configurations") to 16 and 32 cores, on both the snoop bus and a ring
// NoC. Interval simulation's whole pitch is making exactly this kind of
// larger-system study cheap.
func (o Opts) Scale16() Table {
	t := Table{
		ID:      "scale16",
		Title:   "beyond the paper: multi-threaded scaling to 16/32 cores, bus vs ring fabric",
		Columns: []string{"bench", "fabric", "1", "2", "4", "8", "16", "32"},
	}
	counts := []int{1, 2, 4, 8, 16, 32}
	fabrics := []string{"bus", "ring"}
	var scs []*simrun.Scenario
	for _, name := range []string{"blackscholes", "streamcluster"} {
		p := workload.PARSECByName(name)
		for _, fabric := range fabrics {
			for _, n := range counts {
				m := config.Default(n)
				m.Mem.Interconnect = fabric
				scs = append(scs, o.parsecScenario(p, "interval", m))
			}
		}
	}
	results := o.runAll(scs)

	i := 0
	for _, name := range []string{"blackscholes", "streamcluster"} {
		var base int64
		for _, fabric := range fabrics {
			row := []string{name, fabric}
			for _, n := range counts {
				res := results[i]
				i++
				if fabric == "bus" && n == 1 {
					base = res.Cycles
				}
				row = append(row, f3(float64(res.Cycles)/float64(base)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"normalized execution time vs single-core bus run (smaller is better)",
		"blackscholes (embarrassingly parallel) keeps scaling to 32 cores; streamcluster",
		"plateaus at 8-16 from barrier synchronization — the fabric barely matters for",
		"these compute-bound threads (see the 'fabric' table for a bandwidth-bound mix)")
	return t
}

// Fabric regenerates the interconnect comparison: 8-core multi-program
// cycles and fabric statistics for bus, mesh and ring.
func (o Opts) Fabric() Table {
	t := Table{
		ID:      "fabric",
		Title:   "on-chip fabric comparison: 8-core multi-program mix",
		Columns: []string{"fabric", "cycles", "STP", "fabric-stall", "busy"},
	}
	mix := []string{"swim", "mcf", "gcc", "art"}
	const cores = 8
	fabrics := []string{"bus", "mesh", "ring"}
	var scs []*simrun.Scenario
	for _, fabric := range fabrics {
		scs = append(scs, simrun.MustNew("",
			simrun.Label(fabric+" mix"),
			simrun.Mix(mix...),
			simrun.Cores(cores),
			simrun.Fabric(fabric),
			simrun.Insts(o.Insts),
			simrun.Warmup(o.Warmup),
			simrun.Seed(o.Seed),
			simrun.KeepCores(),
		))
	}
	for i, r := range o.runAll(scs) {
		stp := 0.0
		for _, c := range r.Cores {
			stp += c.IPC
		}
		fab := r.Mem.Fabric()
		t.Rows = append(t.Rows, []string{
			fabrics[i],
			fmt.Sprintf("%d", r.Cycles),
			f2(stp),
			fmt.Sprintf("%d", fab.StallCycles()),
			pct(fab.Utilization(r.Cycles)),
		})
	}
	t.Notes = append(t.Notes,
		"the bus serializes every L1-miss transaction; the NoCs trade hop latency for parallel links")
	return t
}

// DRAMStudy regenerates the main-memory comparison: fixed-latency versus
// banked open-page DRAM per benchmark.
func (o Opts) DRAMStudy() Table {
	t := Table{
		ID:      "dram",
		Title:   "main memory: fixed-latency vs banked row-buffer DRAM (interval model)",
		Columns: []string{"bench", "fixed IPC", "banked IPC", "gain"},
	}
	names := []string{"swim", "mgrid", "gcc", "mcf"}
	var scs []*simrun.Scenario
	for _, name := range names {
		for _, kind := range []string{"fixed", "banked"} {
			scs = append(scs, simrun.MustNew(name,
				simrun.DRAM(kind),
				simrun.Insts(o.Insts),
				simrun.Warmup(o.Warmup),
				simrun.Seed(o.Seed),
			))
		}
	}
	results := o.runAll(scs)
	for i, name := range names {
		fixed := results[2*i].Cores[0].IPC
		banked := results[2*i+1].Cores[0].IPC
		t.Rows = append(t.Rows, []string{name, f3(fixed), f3(banked), f2(banked / fixed)})
	}
	t.Notes = append(t.Notes,
		"streaming profiles ride the row buffer (gain > 1); pointer chases pay the conflict path (gain < 1)")
	return t
}

// Predictors regenerates the branch-predictor comparison: misprediction
// rate and interval-model IPC per direction predictor on branchy profiles.
func (o Opts) Predictors() Table {
	t := Table{
		ID:      "predictors",
		Title:   "direction predictors: misprediction rate / interval IPC",
		Columns: []string{"predictor", "gcc misp", "gcc IPC", "vpr misp", "vpr IPC", "crafty misp", "crafty IPC"},
	}
	benches := []string{"gcc", "vpr", "crafty"}
	kinds := []string{"bimodal", "gshare", "local", "tournament", "tage"}
	var scs []*simrun.Scenario
	for _, kind := range kinds {
		for _, name := range benches {
			scs = append(scs, o.specScenario(workload.SPECByName(name), "interval", 1,
				memhier.Perfect{}, kind, simrun.KeepCores()))
		}
	}
	results := o.runAll(scs)
	i := 0
	for _, kind := range kinds {
		row := []string{kind}
		for range benches {
			res := results[i]
			i++
			row = append(row, mispOf(res), f3(res.Cores[0].IPC))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Table 1's local predictor is the baseline; bimodal trails clearly on every profile",
		"the synthetic branch sites are local-history-correlated by construction, so the",
		"history-based predictors (local, gshare, tournament, TAGE) land within a few points")
	return t
}

// mispOf extracts the branch misprediction ratio from a kept-cores run.
func mispOf(res multicore.Result) string {
	ic, ok := res.Sim[0].(*core.Core)
	if !ok {
		return "-"
	}
	return pct(ic.MispredictRate())
}

// CoPhase regenerates the co-phase-matrix validation: for two two-program
// mixes of phased workloads, the matrix prediction versus the actual
// co-run, per program.
func (o Opts) CoPhase() Table {
	t := Table{
		ID:      "cophase",
		Title:   "co-phase matrix (Van Biesbrouck et al.): predicted vs actual co-run IPC",
		Columns: []string{"mix", "program", "actual IPC", "predicted", "error", "cells"},
	}
	segLen := o.Insts / 10
	if segLen < 1000 {
		segLen = 1000
	}
	// Each program is 12 phased segments; the first two are
	// initialization, used only to warm the actual co-run (the matrix
	// cells warm with their in-stream prefixes).
	const initSegs = 2
	phased := func(x, y string, seedX, seedY int64) (init, rest []isa.Inst) {
		gx := workload.New(workload.SPECByName(x), 0, 1, seedX)
		gy := workload.New(workload.SPECByName(y), 0, 1, seedY)
		all := trace.Record(gx, segLen)
		for s := 1; s < 10+initSegs; s++ {
			g := trace.Stream(gx)
			if s%2 == 1 {
				g = gy
			}
			all = append(all, trace.Record(g, segLen)...)
		}
		return all[:initSegs*segLen], all[initSegs*segLen:]
	}
	type phasedProg struct{ init, rest []isa.Inst }
	mk := func(x, y string, sx, sy int64) phasedProg {
		i, r := phased(x, y, sx, sy)
		return phasedProg{i, r}
	}
	mixes := []struct {
		name   string
		a, b   phasedProg
		labels [2]string
	}{
		{"gcc~swim / mcf~gcc", mk("gcc", "swim", o.Seed, o.Seed+1), mk("mcf", "gcc", o.Seed+2, o.Seed+3),
			[2]string{"gcc~swim", "mcf~gcc"}},
		{"crafty~art / swim~twolf", mk("crafty", "art", o.Seed+4, o.Seed+5), mk("swim", "twolf", o.Seed+6, o.Seed+7),
			[2]string{"crafty~art", "swim~twolf"}},
	}
	m := config.Default(2)
	for _, mix := range mixes {
		res, err := sampling.CoPhaseEstimate(mix.a.rest, mix.b.rest, sampling.CoPhaseConfig{
			IntervalLen: segLen, K: 2, Seed: 9, Machine: m, Model: multicore.Interval,
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{mix.name, "error", err.Error(), "", "", ""})
			continue
		}
		actual := o.one(simrun.MustNew("",
			simrun.Label(mix.name),
			simrun.Machine(m),
			simrun.Warmup(initSegs*segLen),
			simrun.Streams(
				[]trace.Stream{trace.NewSliceStream(mix.a.rest), trace.NewSliceStream(mix.b.rest)},
				[]trace.Stream{trace.NewSliceStream(mix.a.init), trace.NewSliceStream(mix.b.init)},
			),
		))
		for k := 0; k < 2; k++ {
			act := actual.Cores[k].IPC
			pred := res.Predicted[k]
			t.Rows = append(t.Rows, []string{
				mix.name, mix.labels[k], f3(act), f3(pred),
				pct(math.Abs(pred-act) / act),
				fmt.Sprintf("%d x %d", res.MatrixRuns, segLen),
			})
		}
	}
	t.Notes = append(t.Notes,
		"each mix simulates K*K short phase-pair cells instead of the full co-run;",
		"the first two segments are initialization, discarded on both sides")
	return t
}

// Extensions returns the beyond-the-paper tables in order.
func (o Opts) Extensions() []Table {
	return []Table{o.AblationModel(), o.Predictors(), o.Fabric(), o.DRAMStudy(), o.Scale16(), o.CoPhase()}
}
