package simrun

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/oneipc"
	"repro/internal/ooo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CoreParams is everything a core-model factory gets to build one core:
// the shared machine description and hierarchy plus the per-core front-end,
// stream and synchronization hook.
type CoreParams struct {
	// ID is the core index.
	ID int
	// Machine is the resolved machine configuration.
	Machine config.Machine
	// Ablation carries the scenario's interval-model ablation switches;
	// models that have no ablations ignore it.
	Ablation core.Options
	// Branch is this core's branch-prediction unit.
	Branch *branch.Unit
	// Mem is the shared memory hierarchy.
	Mem *memhier.Hierarchy
	// Stream is this core's instruction stream.
	Stream trace.Stream
	// Sync arbitrates barriers and locks between threads.
	Sync sim.Syncer
}

// Factory builds one core-model instance. Register one per model name;
// the driver calls it once per core.
type Factory func(CoreParams) sim.Core

var registry = struct {
	sync.RWMutex
	models map[string]Factory
}{models: map[string]Factory{}}

// RegisterModel makes a core model available to scenarios under name.
// Registering a name twice (or an empty name or nil factory) panics: model
// registration is program wiring, not user input. The built-in models
// "interval", "detailed" and "oneipc" are pre-registered.
func RegisterModel(name string, f Factory) {
	if name == "" || f == nil {
		panic("simrun: RegisterModel needs a name and a factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.models[name]; dup {
		panic(fmt.Sprintf("simrun: model %q registered twice", name))
	}
	registry.models[name] = f
}

// Models lists the registered model names, sorted.
func Models() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.models))
	for n := range registry.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupModel resolves a registered model name to its factory — useful for
// wrapping or decorating an existing model under a new name.
func LookupModel(name string) (Factory, error) {
	registry.RLock()
	f, ok := registry.models[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simrun: unknown model %q (registered: %s)",
			name, strings.Join(Models(), ", "))
	}
	return f, nil
}

func init() {
	RegisterModel("interval", func(p CoreParams) sim.Core {
		return core.NewWithOptions(p.ID, p.Machine.Core, p.Ablation, p.Branch, p.Mem, p.Stream, p.Sync)
	})
	RegisterModel("detailed", func(p CoreParams) sim.Core {
		return ooo.New(p.ID, p.Machine.Core, p.Branch, p.Mem, p.Stream, p.Sync)
	})
	RegisterModel("oneipc", func(p CoreParams) sim.Core {
		return oneipc.New(p.ID, p.Mem, p.Stream, p.Sync)
	})
}

// legacyModel maps a built-in model name to the multicore enum so
// Result.Model stays meaningful for the pre-registry API surface (reports,
// benchmarks); registered models outside the enum report Interval's zero
// value there and are distinguished by Result.ModelName.
func legacyModel(name string) multicore.Model {
	switch name {
	case "detailed":
		return multicore.Detailed
	case "oneipc":
		return multicore.OneIPC
	default:
		return multicore.Interval
	}
}
