package simrun

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// mixScenario is the scenario class both the v2 and v3 stream-format
// breaks renumbered; the versioning guarantees are asserted against it.
func mixScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := New("", Mix("gcc", "mcf"), Insts(500))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFingerprintVersionNeverCollides: no stale fingerprint of a
// scenario (v1 or v2) may ever equal its current (v3) fingerprint — the
// whole point of the version field is that results computed under an
// old stream format can never be served for a new submission, whatever
// else the scenario spells.
func TestFingerprintVersionNeverCollides(t *testing.T) {
	if FingerprintVersion != 3 {
		t.Fatalf("FingerprintVersion = %d, want 3 (update this test alongside the next deliberate break)", FingerprintVersion)
	}
	for _, build := range []func(t *testing.T) *Scenario{
		mixScenario,
		func(t *testing.T) *Scenario {
			s, err := New("gcc", Copies(2), Insts(500))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		s := build(t)
		cur, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		for stale := 1; stale < FingerprintVersion; stale++ {
			old, err := s.fingerprintAt(stale)
			if err != nil {
				t.Fatal(err)
			}
			if old == cur {
				t.Fatalf("scenario %q: v%d and v%d fingerprints collide: %s", s.Name(), stale, FingerprintVersion, cur)
			}
		}
	}
}

// TestCacheMissesAcrossVersionBump: a result cache primed with entries
// under the scenario's stale keys (what pre-break simd deployments
// would have persisted under v1 and v2) must not serve them for a v3
// submission — the submission simulates fresh and is stored under the
// v3 key.
func TestCacheMissesAcrossVersionBump(t *testing.T) {
	dir := t.TempDir()
	s := mixScenario(t)
	staleKeys := make(map[string]bool)
	stale := []byte(`{"stale":"pre-v3 payload"}`)
	for v := 1; v < FingerprintVersion; v++ {
		key, err := s.fingerprintAt(v)
		if err != nil {
			t.Fatal(err)
		}
		staleKeys[key] = true
		if err := os.WriteFile(filepath.Join(dir, key+".json"), stale, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewCache(CacheOpts{
		Dir:    dir,
		Encode: func(Result) ([]byte, error) { return []byte(`{"fresh":"v3 payload"}`), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := c.GetOrRun(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Source != SourceRun {
		t.Fatalf("v3 submission served from %q, want a fresh run (stale entries must never match)", entry.Source)
	}
	if staleKeys[entry.Key] {
		t.Fatal("v3 submission stored under a stale key")
	}
	if string(entry.Payload) == string(stale) {
		t.Fatal("v3 submission returned a stale payload")
	}
}
