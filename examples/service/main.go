// Service: run the simd simulation service in-process and drive it the
// way a design-space exploration client would — submit scenarios over
// HTTP, poll for results, and watch the content-addressed result cache
// turn a repeated query into a byte-identical cache hit.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/simd"
	"repro/internal/simrun"
)

func main() {
	cache, err := simrun.NewCache(simrun.CacheOpts{Encode: simd.Encode})
	check(err)
	server, err := simd.New(simd.Config{Workers: 2, Cache: cache})
	check(err)

	// Serve on an ephemeral local port, exactly like `cmd/simd -addr`.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	httpServer := &http.Server{Handler: server.Handler()}
	go httpServer.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("simd serving on %s\n\n", base)

	// Two identical submissions plus one variant: the service runs two
	// simulations, not three.
	specs := []string{
		`{"bench":"gcc","insts":50000,"warmup":100000,"fabric":"mesh"}`,
		`{"bench":"gcc","insts":50000,"warmup":100000,"fabric":"mesh"}`,
		`{"bench":"gcc","insts":50000,"warmup":100000,"fabric":"ring"}`,
	}
	var bodies [][]byte
	for i, spec := range specs {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		check(err)
		var doc struct {
			ID          string `json:"id"`
			Fingerprint string `json:"fingerprint"`
		}
		check(json.NewDecoder(resp.Body).Decode(&doc))
		resp.Body.Close()
		fmt.Printf("submit %d: HTTP %d job=%s fingerprint=%s…\n",
			i+1, resp.StatusCode, doc.ID, doc.Fingerprint[:12])
		bodies = append(bodies, waitDone(base, doc.ID))
	}

	fmt.Println()
	fmt.Printf("identical submissions share one job and one result: bodies equal = %v\n",
		bytes.Equal(bodies[0], bodies[1]))
	stats := server.CacheStats()
	fmt.Printf("cache: runs=%d hits=%d (3 submissions, 2 distinct scenarios)\n\n",
		stats.Runs, stats.Hits)

	var ipc struct {
		Result struct {
			Cores []struct {
				IPC float64 `json:"ipc"`
			} `json:"cores"`
		} `json:"result"`
	}
	for i, body := range bodies {
		check(json.Unmarshal(body, &ipc))
		fmt.Printf("job %d IPC=%.3f\n", i+1, ipc.Result.Cores[0].IPC)
	}

	// The cmd/simd SIGTERM path: stop accepting, finish everything.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	check(server.Drain(ctx))
	check(httpServer.Shutdown(ctx))
	fmt.Println("\ndrained and shut down cleanly")
}

// waitDone polls the job until it reaches a terminal state and returns
// the final response body.
func waitDone(base, id string) []byte {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		check(err)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		check(err)
		var doc struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		check(json.Unmarshal(body, &doc))
		switch doc.Status {
		case "done":
			return body
		case "failed":
			panic("job failed: " + doc.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
