package report

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestFormatFullReport(t *testing.T) {
	p := workload.SPECByName("gzip")
	res := multicore.Run(multicore.RunConfig{
		Machine:   config.Default(2),
		Model:     multicore.Interval,
		KeepCores: true,
	}, []trace.Stream{
		trace.NewLimit(workload.New(p, 0, 2, 42), 10_000),
		trace.NewLimit(workload.New(p, 1, 2, 42), 10_000),
	})
	out := Format(res)
	for _, want := range []string{
		"model=interval", "core 0", "core 1",
		"L1D miss=", "L2 miss=", "DRAM: requests=",
		"coherence:", "CPI stack",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatWithoutHierarchy(t *testing.T) {
	p := workload.SPECByName("gzip")
	res := multicore.Run(multicore.RunConfig{
		Machine: config.Default(1),
		Model:   multicore.Detailed,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 5_000)})
	out := Format(res)
	if !strings.Contains(out, "model=detailed") {
		t.Errorf("bad report:\n%s", out)
	}
	if strings.Contains(out, "memory hierarchy") {
		t.Error("hierarchy section printed without KeepCores")
	}
}

func TestFormat3DConfig(t *testing.T) {
	p := workload.SPECByName("gzip")
	res := multicore.Run(multicore.RunConfig{
		Machine:   config.Stacked3D(1),
		Model:     multicore.Interval,
		KeepCores: true,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 5_000)})
	out := Format(res)
	if !strings.Contains(out, "L2: none") {
		t.Errorf("3D config not reported:\n%s", out)
	}
}

func TestFormatIncludesIntervalHistogram(t *testing.T) {
	p := workload.SPECByName("mcf")
	res := multicore.Run(multicore.RunConfig{
		Machine:   config.Default(1),
		Model:     multicore.Interval,
		KeepCores: true,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 10_000)})
	out := Format(res)
	for _, want := range []string{"interval lengths", "mean", "CPI stack"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatMeshFabricRun(t *testing.T) {
	m := config.Default(2)
	m.Mem.Interconnect = "mesh"
	m.Mem.Coherence = "directory"
	m.Mem.DRAMKind = "banked"
	p := workload.SPECByName("gcc")
	res := multicore.Run(multicore.RunConfig{
		Machine:   m,
		Model:     multicore.Interval,
		KeepCores: true,
	}, []trace.Stream{
		trace.NewLimit(workload.New(p, 0, 1, 42), 5_000),
		trace.NewLimit(workload.New(p, 0, 1, 43), 5_000),
	})
	out := Format(res)
	if !strings.Contains(out, "fabric:") {
		t.Errorf("report missing fabric line:\n%s", out)
	}
	if !strings.Contains(out, "coherence:") {
		t.Errorf("report missing coherence line:\n%s", out)
	}
}
