package workload

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/isa"
)

// Static-program machinery: a Profile expands into a synthetic control-flow
// graph (functions of basic blocks with loop/biased/random branch sites and
// call edges). The generator then *interprets* this CFG, so instruction PCs
// repeat exactly the way real code repeats — hot loops touch few I-cache
// lines and train the branch predictor, cold paths do not.

type siteKind uint8

const (
	siteLoop siteKind = iota
	siteBiased
	siteRandom
)

type branchSite struct {
	kind   siteKind
	trip   int     // loop trip count
	prob   float64 // taken probability for biased/random sites
	target int     // taken-target block index within the function
	count  int     // dynamic state: iterations since last exit
}

type block struct {
	startPC uint64
	bodyLen int // instructions before the terminator
	// Terminator: term==termCall jumps to callee; term==termRet pops;
	// term==termBranch consults the site.
	term   uint8
	site   int // index into function's sites for termBranch
	callee int // function index for termCall
}

const (
	termBranch = iota
	termCall
	termRet
)

type function struct {
	blocks []block
	sites  []branchSite
	entry  uint64 // entry PC
}

type program struct {
	funcs    []function
	codeSize uint64
}

// buildProgram synthesizes the static CFG for a profile. base is the code
// base address; kernel programs live at a distant base so user and system
// code do not share I-cache lines.
func buildProgram(p *Profile, rng *fastRand, base uint64, funcs, blocksPerFunc int, blockLen float64) *program {
	prog := &program{}
	pc := base
	for f := 0; f < funcs; f++ {
		var fn function
		for b := 0; b < blocksPerFunc; b++ {
			bl := block{startPC: pc}
			bl.bodyLen = 1 + geometric(rng, blockLen)
			pc += uint64(bl.bodyLen+1) * 4

			switch {
			case b == blocksPerFunc-1:
				bl.term = termRet
			case funcs > 1 && rng.Float64() < callFrac(p):
				bl.term = termCall
				bl.callee = rng.Intn(funcs)
			default:
				bl.term = termBranch
				bl.site = len(fn.sites)
				fn.sites = append(fn.sites, makeSite(p, rng, b, blocksPerFunc))
			}
			fn.blocks = append(fn.blocks, bl)
		}
		fn.entry = fn.blocks[0].startPC
		prog.funcs = append(prog.funcs, fn)
	}
	prog.codeSize = pc - base
	return prog
}

// callFrac converts the profile's call mix into a per-block probability.
func callFrac(p *Profile) float64 {
	if p.Mix.Branch <= 0 {
		return 0
	}
	return p.Mix.Call
}

func makeSite(p *Profile, rng *fastRand, blockIdx, nBlocks int) branchSite {
	r := rng.Float64()
	switch {
	case r < p.LoopFrac && blockIdx > 0:
		trip := 2 + geometric(rng, p.LoopTripMean)
		// Back edge to a nearby earlier block.
		back := blockIdx - 1 - rng.Intn(min(blockIdx, 4))
		return branchSite{kind: siteLoop, trip: trip, target: back}
	case r < p.LoopFrac+p.BiasedFrac:
		return branchSite{kind: siteBiased, prob: p.BiasedProb, target: fwdTarget(rng, blockIdx, nBlocks)}
	default:
		return branchSite{kind: siteRandom, prob: p.RandomProb, target: fwdTarget(rng, blockIdx, nBlocks)}
	}
}

func fwdTarget(rng *fastRand, blockIdx, nBlocks int) int {
	if blockIdx+2 >= nBlocks {
		return nBlocks - 1
	}
	return blockIdx + 1 + rng.Intn(nBlocks-blockIdx-1)
}

func geometric(rng *fastRand, mean float64) int {
	if mean <= 1 {
		return 0
	}
	// Inverse-transform sampling: one draw instead of a rejection loop
	// (the generator sits on every simulated instruction's hot path).
	u := rng.Float64()
	if u <= 0 {
		return 0
	}
	n := int(math.Log(u) / math.Log(1-1/mean))
	if n < 0 {
		n = 0
	} else if n > 10000 {
		n = 10000
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// staticSeed derives the static-program seed from the profile name, so the
// synthetic "binary" is a property of the benchmark alone.
func staticSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// fastRand is a splitmix64 PRNG. The generator sits on the hot path of
// every simulated instruction in both timing models; math/rand's interface
// indirection is measurable there.
type fastRand struct{ s uint64 }

func newFastRand(seed int64) *fastRand { return &fastRand{s: uint64(seed)} }

func (r *fastRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *fastRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *fastRand) Intn(n int) int { return int(r.next() % uint64(n)) }

func (r *fastRand) Int63() int64 { return int64(r.next() >> 1) }

// frame is one call-stack entry of the interpreter.
type frame struct {
	fn    int
	block int
}

// regionState is the per-generator dynamic state of one working-set region.
type regionState struct {
	base   uint64
	cursor uint64
}

// StreamVersion is the stream-format generation this package produces.
// It changes only on a deliberate break of the bit-identical-stream
// guarantee (v2: multi-program copies are instantiated at disjoint
// address-space slots, see NewSlot). Consumers that persist streams or
// stream-derived results (the trace file header, the simrun scenario
// fingerprint) record it so artifacts of one generation are never mixed
// with another's; the break/bump procedure is documented in
// docs/formats.md.
const StreamVersion = 2

// SlotStride is the address-space distance between two slots: slot k's
// code and data live exactly k*SlotStride above slot 0's. It is a power
// of two far above every cache's and TLB's index bits (so per-copy hit
// behaviour is slot-invariant) and far above the per-thread private-
// region offsets (threads scale to 1<<12 within a slot before two slots
// could touch), giving MaxSlots fully disjoint slots in the 64-bit space.
const SlotStride uint64 = 1 << 56

// MaxSlots is the number of disjoint address-space slots (2^64 /
// SlotStride). NewSlot rejects slots beyond it: slot k and slot
// k-MaxSlots would silently alias, breaking the no-cross-copy-sharing
// guarantee the slots exist for.
const MaxSlots = 256

// Generator interprets a profile's synthetic program and produces the
// dynamic instruction stream of one thread. It implements trace.Stream and
// is fully deterministic given (profile, thread, threads, seed, slot).
type Generator struct {
	p         *Profile
	rng       *fastRand
	invLogDep float64 // 1/log(1-1/DepDistMean), precomputed
	user      *program
	kernel    *program
	thread    int
	threads   int
	slotBase  uint64 // slot * SlotStride, added to every code/data base

	// Cumulative non-branch mix thresholds, precomputed so bodyInst does
	// one draw and a threshold walk instead of re-summing the mix per
	// instruction (it runs once per simulated instruction).
	mixNonBranch float64
	cumLoad      float64 // Load
	cumStore     float64 // Load+Store
	cumMul       float64 // +IntMul
	cumDiv       float64 // +IntDiv
	cumFP        float64 // +FP

	// Interpreter state.
	inKernel  bool
	kernLeft  int
	cur       frame
	kcur      frame
	pos       int // next body instruction index within current block
	callStack []frame
	kstack    []frame

	// Register dataflow state. Values are iteration-local: the ring is
	// cleared on loop back-edges, and a designated accumulator register
	// carries the serial loop-carried chain, mirroring the structure of
	// real loop code (independent iterations plus accumulators).
	seq      uint64
	ring     [32]uint8 // recently written registers
	ringLen  int
	ringHead int
	nextDst  uint8
	lastLoad uint8 // dst register of the most recent load, RegNone if none

	// Memory state.
	regions    []regionState
	regionCum  []float64 // cumulative probabilities
	lastRegion int

	// Serializing/system bookkeeping.
	untilSerialize int

	// Multi-threading bookkeeping.
	budget       uint64 // remaining instructions; ^0 = unbounded
	sinceBarrier uint64
	barrierAt    uint64 // emit a barrier when sinceBarrier reaches this
	untilLock    int
	critLeft     int // >0 while inside a critical section
	heldLock     uint16
	pendingSync  []isa.Inst

	// Statistics for tests.
	Emitted uint64
}

// New creates the stream generator for one thread of a profile. threads is
// the total thread count of the run (1 for single-threaded benchmarks);
// seed selects the deterministic instance. The stream lives in slot 0 of
// the address space; multi-program workloads that need disjoint copies
// use NewSlot.
func New(p *Profile, thread, threads int, seed int64) *Generator {
	return NewSlot(p, thread, threads, seed, 0)
}

// NewSlot is New with the stream instantiated at an address-space slot:
// every code and data base is offset by slot*SlotStride, and nothing
// else changes — the slot never enters a random draw, so the slot-k
// stream is bit-identical to the slot-0 stream with the constant offset
// added to PC, Target and Addr. Heterogeneous multi-program (Mix)
// workloads give each copy its own slot, so copies of different programs
// never alias cache lines in the shared hierarchy (no phantom coherence
// traffic) and the host-parallel engine can run them concurrently.
func NewSlot(p *Profile, thread, threads int, seed int64, slot int) *Generator {
	if slot < 0 || slot >= MaxSlots {
		panic(fmt.Sprintf("workload: slot %d out of range [0,%d) — slots beyond the range would alias address spaces", slot, MaxSlots))
	}
	// The static program (CFG, branch sites, code layout) must be
	// identical across threads AND across seeds: it is the benchmark's
	// binary. Only the dynamic randomness (addresses, branch draws)
	// varies with the seed, so a warmup stream with a different seed
	// trains the same predictor sites and touches the same regions
	// without replaying the exact future line sequence.
	progRng := newFastRand(staticSeed(p.Name))
	slotBase := uint64(slot) * SlotStride
	blockLen := p.BlockLenMean
	if blockLen <= 0 {
		if p.Mix.Branch > 0 {
			blockLen = 1/p.Mix.Branch - 1
		} else {
			blockLen = 16
		}
	}
	g := &Generator{
		p:        p,
		rng:      newFastRand(seed ^ int64(thread)*0x5E3779B97F4A7C15),
		user:     buildProgram(p, progRng, slotBase+0x400000, p.Funcs, p.BlocksPerFunc, blockLen),
		thread:   thread,
		threads:  threads,
		slotBase: slotBase,
		nextDst:  8,
		budget:   ^uint64(0),
	}
	if p.DepDistMean > 1 {
		g.invLogDep = 1 / math.Log(1-1/p.DepDistMean)
	}
	// The cumulative thresholds and the total reproduce the summation
	// order of the original per-instruction expressions exactly —
	// float addition is not associative, and a different rounding in the
	// scale factor would shift class boundaries by an ulp and diverge the
	// generated stream.
	m := &p.Mix
	g.cumLoad = m.Load
	g.cumStore = m.Load + m.Store
	g.cumMul = m.Load + m.Store + m.IntMul
	g.cumDiv = m.Load + m.Store + m.IntMul + m.IntDiv
	g.cumFP = m.Load + m.Store + m.IntMul + m.IntDiv + m.FP
	g.mixNonBranch = m.IntALU + m.IntMul + m.IntDiv + m.FP + m.Load + m.Store
	g.lastLoad = isa.RegNone
	if p.SystemFrac > 0 {
		// Kernel code: one big function with many blocks, distant base.
		g.kernel = buildProgram(p, progRng, slotBase+0x80000000, 2, 192, blockLen)
	}
	g.initRegions()
	g.initSync()
	g.untilSerialize = g.serializePeriod()
	return g
}

func (g *Generator) initRegions() {
	var cum float64
	for i, r := range g.p.Regions {
		base := g.slotBase + uint64(0x10000000000) + uint64(i)<<34
		if !r.Shared {
			// Private regions are disjoint per thread.
			base += uint64(g.thread+1) << 44
		}
		var cursor uint64
		if r.Stride > 0 && r.Bytes > 0 {
			// Start streaming at a seed-dependent offset so warmup
			// and measurement do not walk identical lines.
			cursor = (uint64(g.rng.Int63()) % (r.Bytes / r.Stride)) * r.Stride
		}
		g.regions = append(g.regions, regionState{base: base, cursor: cursor})
		cum += r.Prob
		g.regionCum = append(g.regionCum, cum)
	}
	// Normalize.
	if cum > 0 {
		for i := range g.regionCum {
			g.regionCum[i] /= cum
		}
	}
}

func (g *Generator) initSync() {
	p := g.p
	if p.TotalWork > 0 && g.threads > 0 {
		g.budget = g.shareOfWork()
	}
	if p.BarrierEvery > 0 {
		g.barrierAt = g.scaledBarrierInterval()
	}
	if p.LockEvery > 0 && p.Locks > 0 {
		g.untilLock = p.LockEvery/2 + g.rng.Intn(p.LockEvery)
	}
}

// weights returns the per-thread relative work weights. With SerialFrac
// set, thread 0 is a pipeline source stage holding a fixed fraction of the
// total work; otherwise an Imbalance gradient skews the split.
func (g *Generator) weights() []float64 {
	w := make([]float64, g.threads)
	T := g.threads
	if T > 1 && g.p.SerialFrac > 0 {
		w[0] = g.p.SerialFrac
		for t := 1; t < T; t++ {
			w[t] = (1 - g.p.SerialFrac) / float64(T-1)
		}
		return w
	}
	for t := 0; t < T; t++ {
		w[t] = 1
		if T > 1 && g.p.Imbalance > 0 {
			w[t] = 1 + g.p.Imbalance*float64(t)/float64(T-1)
		}
	}
	return w
}

// shareOfWork splits TotalWork among threads by weight, so the most loaded
// thread limits scaling.
func (g *Generator) shareOfWork() uint64 {
	w := g.weights()
	var sum float64
	for _, f := range w {
		sum += f
	}
	return uint64(float64(g.p.TotalWork) * w[g.thread] / sum)
}

// scaledBarrierInterval keeps the number of barriers equal across threads
// despite imbalance, so barrier generations line up: each thread's
// interval is proportional to its work weight.
func (g *Generator) scaledBarrierInterval() uint64 {
	w := g.weights()
	var sum float64
	for _, f := range w {
		sum += f
	}
	avg := sum / float64(g.threads)
	iv := uint64(float64(g.p.BarrierEvery) * w[g.thread] / avg)
	if iv == 0 {
		iv = 1
	}
	return iv
}

func (g *Generator) serializePeriod() int {
	period := g.p.SerializeEvery
	if g.inKernel {
		period = 50 // system code serializes often
	}
	if period <= 0 {
		return -1
	}
	return period/2 + g.rng.Intn(period+1)
}

// Next implements trace.Stream.
func (g *Generator) Next() (isa.Inst, bool) {
	if len(g.pendingSync) > 0 {
		in := g.pendingSync[0]
		g.pendingSync = g.pendingSync[1:]
		in.Seq = g.seq
		g.seq++
		g.Emitted++
		return in, true
	}
	if g.budget == 0 {
		return isa.Inst{}, false
	}
	g.budget--

	in := g.synthesize()
	in.Seq = g.seq
	g.seq++
	g.Emitted++
	g.accountSync(&in)
	return in, true
}

// NextBatch implements trace.BatchStream: the same stream as Next, produced
// through direct (devirtualized) calls per chunk.
func (g *Generator) NextBatch(buf []isa.Inst) int {
	n := 0
	for n < len(buf) {
		in, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = in
		n++
	}
	return n
}

// accountSync updates barrier/lock bookkeeping after emitting in and queues
// any synchronization instructions that must follow.
func (g *Generator) accountSync(in *isa.Inst) {
	p := g.p
	if p.BarrierEvery > 0 && g.budget > 0 {
		g.sinceBarrier++
		if g.sinceBarrier >= g.barrierAt && g.critLeft == 0 {
			g.sinceBarrier = 0
			g.pendingSync = append(g.pendingSync, isa.Inst{Class: isa.BarrierArrive})
		}
	}
	if p.LockEvery > 0 && p.Locks > 0 {
		if g.critLeft > 0 {
			g.critLeft--
			if g.critLeft == 0 {
				g.pendingSync = append(g.pendingSync,
					isa.Inst{Class: isa.LockRelease, SyncID: g.heldLock})
			}
		} else {
			g.untilLock--
			if g.untilLock <= 0 {
				g.untilLock = p.LockEvery/2 + g.rng.Intn(p.LockEvery)
				g.heldLock = uint16(g.rng.Intn(p.Locks))
				g.critLeft = 1 + geometric(g.rng, p.CritLen)
				g.pendingSync = append(g.pendingSync,
					isa.Inst{Class: isa.LockAcquire, SyncID: g.heldLock})
			}
		}
	}
}

// synthesize produces the next instruction from the CFG interpreter.
func (g *Generator) synthesize() isa.Inst {
	// Possibly enter or leave a system-code segment between blocks.
	if g.kernel != nil && g.pos == 0 {
		if g.inKernel {
			if g.kernLeft <= 0 {
				g.inKernel = false
				g.untilSerialize = g.serializePeriod()
			}
		} else if g.rng.Float64() < g.p.SystemFrac/400 {
			// Average segment of ~400 instructions gives an overall
			// in-kernel fraction of about SystemFrac.
			g.inKernel = true
			g.kernLeft = 200 + geometric(g.rng, 400)
			g.kcur = frame{fn: 0, block: 0}
			g.untilSerialize = g.serializePeriod()
		}
	}

	prog, cur := g.user, &g.cur
	if g.inKernel {
		prog, cur = g.kernel, &g.kcur
		g.kernLeft--
	}
	fn := &prog.funcs[cur.fn]
	bl := &fn.blocks[cur.block]

	if g.pos < bl.bodyLen {
		pc := bl.startPC + uint64(g.pos)*4
		g.pos++
		if g.untilSerialize == 0 {
			g.untilSerialize = g.serializePeriod()
			return isa.Inst{Class: isa.Serializing, PC: pc}
		}
		if g.untilSerialize > 0 {
			g.untilSerialize--
		}
		return g.bodyInst(pc)
	}

	// Terminator.
	pc := bl.startPC + uint64(bl.bodyLen)*4
	g.pos = 0
	switch bl.term {
	case termCall:
		stack := &g.callStack
		if g.inKernel {
			stack = &g.kstack
		}
		if len(*stack) < 64 {
			*stack = append(*stack, frame{fn: cur.fn, block: g.nextBlock(prog, cur.fn, cur.block)})
			cur.fn = bl.callee
			cur.block = 0
		} else {
			cur.block = g.nextBlock(prog, cur.fn, cur.block)
		}
		return isa.Inst{
			Class: isa.Call, PC: pc, Taken: true,
			Target: prog.funcs[cur.fn].entry,
			Src1:   g.pickSrc(), Src2: isa.RegNone, Dst: isa.RegNone,
		}
	case termRet:
		stack := &g.callStack
		if g.inKernel {
			stack = &g.kstack
		}
		var target uint64
		if len(*stack) > 0 {
			f := (*stack)[len(*stack)-1]
			*stack = (*stack)[:len(*stack)-1]
			*cur = f
		} else {
			cur.block = 0 // outermost loop: restart the function
		}
		target = prog.funcs[cur.fn].blocks[cur.block].startPC
		return isa.Inst{
			Class: isa.Return, PC: pc, Taken: true, Target: target,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone,
		}
	default:
		site := &fn.sites[bl.site]
		taken := g.evalSite(site)
		var target uint64
		if taken {
			if site.kind == siteLoop {
				// New iteration: values of the previous iteration
				// are dead; only the accumulator chain persists.
				g.ringLen = 0
			}
			cur.block = site.target
			target = fn.blocks[site.target].startPC
		} else {
			cur.block = g.nextBlock(prog, cur.fn, cur.block)
			target = fn.blocks[cur.block].startPC
		}
		return isa.Inst{
			Class: isa.Branch, PC: pc, Taken: taken, Target: target,
			Src1: g.pickSrc(), Src2: isa.RegNone, Dst: isa.RegNone,
		}
	}
}

func (g *Generator) nextBlock(prog *program, fnIdx, blockIdx int) int {
	if blockIdx+1 < len(prog.funcs[fnIdx].blocks) {
		return blockIdx + 1
	}
	return 0
}

func (g *Generator) evalSite(s *branchSite) bool {
	switch s.kind {
	case siteLoop:
		s.count++
		if s.count < s.trip {
			return true
		}
		s.count = 0
		return false
	case siteBiased:
		return g.rng.Float64() < s.prob
	default:
		return g.rng.Float64() < s.prob
	}
}

// bodyInst synthesizes one non-control instruction at pc according to the
// mix.
// accumReg is the loop-carried accumulator register.
const accumReg = 7

func (g *Generator) bodyInst(pc uint64) isa.Inst {
	if g.p.ChainFrac > 0 && g.rng.Float64() < g.p.ChainFrac {
		// Extend the loop-carried chain: acc = f(acc, recent value).
		// Floating-point codes accumulate through the FP pipeline
		// (reductions, recurrences), integer codes through the ALU.
		class := isa.IntALU
		if g.p.Mix.FP >= 0.25 {
			class = isa.FPOp
		}
		return isa.Inst{
			Class: class, PC: pc,
			Src1: accumReg, Src2: g.pickSrc(), Dst: accumReg,
		}
	}
	r := g.rng.Float64() * g.mixNonBranch
	switch {
	case r < g.cumLoad:
		return g.loadInst(pc)
	case r < g.cumStore:
		return g.storeInst(pc)
	case r < g.cumMul:
		return g.aluInst(pc, isa.IntMul)
	case r < g.cumDiv:
		return g.aluInst(pc, isa.IntDiv)
	case r < g.cumFP:
		return g.aluInst(pc, isa.FPOp)
	default:
		return g.aluInst(pc, isa.IntALU)
	}
}

func (g *Generator) aluInst(pc uint64, class isa.Class) isa.Inst {
	in := isa.Inst{
		Class: class, PC: pc,
		Src1: g.pickSrc(), Src2: g.pickSrc(),
		Dst: g.allocDst(),
	}
	return in
}

func (g *Generator) loadInst(pc uint64) isa.Inst {
	chase := g.lastLoad != isa.RegNone && g.rng.Float64() < g.p.PointerChase
	addr, strided := g.pickAddr(chase)
	var src1 uint8
	switch {
	case chase:
		// Pointer chase: address depends on the previous load.
		src1 = g.lastLoad
	case strided:
		// Streaming access: the address comes from an induction
		// variable, long since computed — independent of recent
		// results, which is what gives streaming codes their MLP.
		src1 = uint8(g.rng.Intn(8))
	default:
		src1 = g.pickSrc()
	}
	// Shared regions with a write fraction convert some of their
	// accesses into stores (coherence/invalidation traffic).
	if spec := &g.p.Regions[g.lastRegion]; spec.WriteFrac > 0 &&
		g.rng.Float64() < spec.WriteFrac {
		return isa.Inst{
			Class: isa.Store, PC: pc, Addr: addr,
			Src1: src1, Src2: g.pickSrc(), Dst: isa.RegNone,
		}
	}
	dst := g.allocDst()
	g.lastLoad = dst
	return isa.Inst{
		Class: isa.Load, PC: pc, Addr: addr,
		Src1: src1, Src2: isa.RegNone, Dst: dst,
	}
}

func (g *Generator) storeInst(pc uint64) isa.Inst {
	addr, _ := g.pickAddr(false)
	return isa.Inst{
		Class: isa.Store, PC: pc, Addr: addr,
		Src1: g.pickSrc(), Src2: g.pickSrc(), Dst: isa.RegNone,
	}
}

// pickAddr chooses an effective address. chase keeps the access in the same
// region as the previous load (dependent pointer walk). strided reports
// whether the chosen region is a streaming region.
func (g *Generator) pickAddr(chase bool) (addr uint64, strided bool) {
	if len(g.regions) == 0 {
		return g.slotBase + 0x10000000000, false
	}
	idx := 0
	if !chase {
		r := g.rng.Float64()
		for idx < len(g.regionCum)-1 && r >= g.regionCum[idx] {
			idx++
		}
	} else {
		idx = g.lastRegion
	}
	g.lastRegion = idx
	reg := &g.regions[idx]
	spec := &g.p.Regions[idx]
	size := spec.Bytes
	if size < 64 {
		size = 64
	}
	var off uint64
	if spec.Stride > 0 {
		reg.cursor = (reg.cursor + spec.Stride) % size
		off = reg.cursor
	} else {
		off = (uint64(g.rng.Int63())%(size/64))*64 + uint64(g.rng.Intn(8))*8
	}
	return reg.base + off, spec.Stride > 0
}

// pickSrc picks a source register with a geometric dependence distance over
// recently written registers.
func (g *Generator) pickSrc() uint8 {
	if g.ringLen == 0 {
		return uint8(g.rng.Intn(8)) // ambient value
	}
	var d int
	if g.invLogDep != 0 {
		if u := g.rng.Float64(); u > 0 {
			d = int(math.Log(u) * g.invLogDep)
		}
	}
	if d >= g.ringLen {
		return uint8(g.rng.Intn(8))
	}
	idx := (g.ringHead - 1 - d + 2*len(g.ring)) % len(g.ring)
	return g.ring[idx]
}

func (g *Generator) allocDst() uint8 {
	dst := g.nextDst
	g.nextDst++
	if g.nextDst >= isa.NumRegs {
		g.nextDst = 8
	}
	g.ring[g.ringHead] = dst
	g.ringHead = (g.ringHead + 1) % len(g.ring)
	if g.ringLen < len(g.ring) {
		g.ringLen++
	}
	return dst
}
