package simd

import (
	"repro/internal/obs"
)

// registerMetrics bridges the server's own atomics and the result
// cache's counters into the per-Server registry. The names and help
// strings are the service's stable exposition contract (golden-tested);
// the registry is per-Server so tests can build many Servers without
// colliding in a process-wide namespace. Process-wide metrics (engine
// runs, parsim counters) are merged in at serve time from obs.Default().
func (s *Server) registerMetrics() {
	r := s.reg
	r.CounterFunc("simd_jobs_submitted_total",
		"Jobs accepted (new scenarios).", s.submitted.Load)
	r.CounterFunc("simd_jobs_deduplicated_total",
		"Submissions joined onto an existing job.", s.deduped.Load)
	r.CounterFunc("simd_jobs_rejected_total",
		"Submissions rejected because the queue was full.", s.rejected.Load)
	r.CounterFunc("simd_jobs_completed_total",
		"Jobs finished successfully.", s.completed.Load)
	r.CounterFunc("simd_jobs_failed_total",
		"Jobs that errored.", s.failed.Load)
	r.GaugeFunc("simd_queue_depth",
		"Jobs waiting for a worker.", func() float64 { return float64(s.QueueLen()) })
	r.CounterFunc("simd_cache_runs_total",
		"Simulator executions (cache misses).", func() uint64 { return s.CacheStats().Runs })
	r.CounterFunc("simd_cache_hits_total",
		"In-memory result-cache hits.", func() uint64 { return s.CacheStats().Hits })
	r.CounterFunc("simd_cache_disk_hits_total",
		"Persistent-store hits.", func() uint64 { return s.CacheStats().DiskHits })
	r.CounterFunc("simd_cache_flight_waits_total",
		"Callers that piggybacked on an in-flight run.", func() uint64 { return s.CacheStats().Waits })
	r.CounterFunc("simd_cache_upgrades_total",
		"Cache entries upgraded in place to a higher tier.", func() uint64 { return s.CacheStats().Upgrades })
	r.CounterFunc("simd_tier_fast_answers_total",
		"Jobs answered below full fidelity.", s.fast.Load)
	r.CounterFunc("simd_tier_upgrades_total",
		"Background full-fidelity upgrades that landed.", s.upgraded.Load)
}

// Registry exposes the server's metric registry (the /metrics payload is
// this registry merged with obs.Default()).
func (s *Server) Registry() *obs.Registry { return s.reg }
