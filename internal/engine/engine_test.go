package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/simrun"
)

func mustScenario(t *testing.T, name, eng string, opts ...simrun.Option) *simrun.Scenario {
	t.Helper()
	sc, err := simrun.New(name, append(opts, simrun.Engine(eng))...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestStatisticalDeterministic: the estimator is a pure function of the
// scenario — same scenario, same answer, run to run.
func TestStatisticalDeterministic(t *testing.T) {
	sc := mustScenario(t, "gcc", "statistical", simrun.Insts(30_000), simrun.Warmup(10_000), simrun.Seed(42))
	a, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalRetired != b.TotalRetired {
		t.Fatalf("statistical runs diverge: %d/%d cycles, %d/%d retired",
			a.Cycles, b.Cycles, a.TotalRetired, b.TotalRetired)
	}
}

// TestStatisticalExtrapolates: the answer covers the scenario's whole
// budget even though only a bounded clone was simulated, and it is
// tagged with the statistical tier.
func TestStatisticalExtrapolates(t *testing.T) {
	const budget = 2_000_000
	sc := mustScenario(t, "gcc", "statistical", simrun.Insts(budget), simrun.Warmup(100_000), simrun.Seed(42))
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRetired != budget {
		t.Errorf("retired %d, want the full %d budget", res.TotalRetired, budget)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles %d", res.Cycles)
	}
	if res.Engine != "statistical" || res.Tier != simrun.TierStatistical {
		t.Errorf("tagged %q/%q", res.Engine, res.Tier)
	}
	if len(res.Cores) != 1 || res.Cores[0].IPC <= 0 {
		t.Errorf("per-core synthesis wrong: %+v", res.Cores)
	}
}

func TestSimPointTagsSampledTier(t *testing.T) {
	sc := mustScenario(t, "gcc", "simpoint", simrun.Insts(40_000), simrun.Warmup(10_000), simrun.Seed(42))
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "simpoint" || res.Tier != simrun.TierSampled {
		t.Errorf("tagged %q/%q", res.Engine, res.Tier)
	}
	if res.TotalRetired != 40_000 || res.Cycles <= 0 {
		t.Errorf("retired %d cycles %d", res.TotalRetired, res.Cycles)
	}
}

// TestEstimatorsRejectMultiProgram: both estimators are single-program;
// the rejection happens at scenario build time with the reason.
func TestEstimatorsRejectMultiProgram(t *testing.T) {
	for _, eng := range []string{"statistical", "simpoint"} {
		_, err := simrun.New("", simrun.Mix("gcc", "mcf"), simrun.Engine(eng))
		if err == nil {
			t.Errorf("%s accepted a multi-program mix", eng)
			continue
		}
		if !strings.Contains(err.Error(), eng) {
			t.Errorf("%s rejection does not name the engine: %v", eng, err)
		}
	}
}

// TestCheapestEngineSelection: with the estimators registered, a
// single-program scenario's cheapest engine is the statistical one, and
// a multi-program scenario falls back to full.
func TestCheapestEngineSelection(t *testing.T) {
	single, err := simrun.New("gcc", simrun.Insts(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := simrun.CheapestEngineFor(single).Name; got != "statistical" {
		t.Errorf("cheapest for single-program = %q", got)
	}
	mix, err := simrun.New("", simrun.Mix("gcc", "mcf"), simrun.Insts(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if got := simrun.CheapestEngineFor(mix).Name; got != simrun.DefaultEngine {
		t.Errorf("cheapest for mix = %q", got)
	}
}
