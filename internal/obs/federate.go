package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scrape is one instance's parsed /metrics payload plus its freshness,
// the unit WriteFederated merges: a fleet coordinator holds one Scrape
// per worker and renders them as a single exposition view.
type Scrape struct {
	// Instance names the scraped node; it becomes the `worker` label on
	// every sample that does not already carry one.
	Instance string
	// Families is the parsed payload of the instance's last successful
	// scrape (ParseText's output). May be nil when no scrape has ever
	// succeeded — the instance then contributes only staleness samples.
	Families map[string]*ParsedFamily
	// Age is the time since the last successful scrape (how old
	// Families is); negative when no scrape ever succeeded.
	Age time.Duration
	// Stale marks an instance that missed its scrape window: its
	// samples are still served (last known good) but flagged so readers
	// can discount them.
	Stale bool
}

// InstanceLabel is the label WriteFederated keys per-instance series
// by, matching the fleet's worker-scoped metric convention.
const InstanceLabel = "worker"

// federated staleness families, emitted alongside the merged scrapes so
// the payload is self-describing about its own freshness.
const (
	famScrapeAge   = "fleet_scrape_age_seconds"
	famScrapeStale = "fleet_scrape_stale"
)

// WriteFederated renders several scraped exposition payloads as one:
// every sample gains a worker="<instance>" label (samples already
// labeled with a worker keep theirs), counter families additionally
// roll up into an aggregate series summed across instances (rendered
// without the worker label), and each instance's scrape freshness is
// exposed as fleet_scrape_age_seconds / fleet_scrape_stale gauges. The
// output is valid ParseText input — federation can be scraped again.
//
// Gauges and histograms are served per-instance only: summing a gauge
// across workers rarely means anything, and histograms from different
// instances may disagree on bucket bounds.
func WriteFederated(w io.Writer, scrapes []Scrape) error {
	type outFam struct {
		help    string
		kind    Kind
		lines   []string
		aggLine map[string]float64 // rendered non-worker labels -> sum
		aggKeys []string           // insertion order for determinism
	}
	merged := map[string]*outFam{}
	fam := func(name, help string, kind Kind) *outFam {
		f, ok := merged[name]
		if !ok {
			f = &outFam{help: help, kind: kind, aggLine: map[string]float64{}}
			merged[name] = f
		}
		return f
	}

	ordered := append([]Scrape(nil), scrapes...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Instance < ordered[j].Instance })
	for _, sc := range ordered {
		names := make([]string, 0, len(sc.Families))
		for n := range sc.Families {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			pf := sc.Families[name]
			f := fam(name, pf.Help, pf.Type)
			for _, s := range pf.Samples {
				labels := renderWithInstance(s.Labels, sc.Instance)
				f.lines = append(f.lines, fmt.Sprintf("%s%s %s", s.Name, labels, formatValue(s.Value)))
				if pf.Type == KindCounter {
					key := renderWithoutInstance(s.Labels)
					if _, ok := f.aggLine[key]; !ok {
						f.aggKeys = append(f.aggKeys, key)
					}
					f.aggLine[key] += s.Value
				}
			}
		}
		// Staleness marking, one sample per instance.
		age := fam(famScrapeAge, "Seconds since this worker's last successful metrics scrape (-1 = never scraped).", KindGauge)
		ageVal := -1.0
		if sc.Age >= 0 {
			ageVal = sc.Age.Seconds()
		}
		lbl := renderLabels([]Label{{Key: InstanceLabel, Value: sc.Instance}})
		age.lines = append(age.lines, fmt.Sprintf("%s%s %s", famScrapeAge, lbl, formatValue(ageVal)))
		stale := fam(famScrapeStale, "1 when the worker missed its scrape window; its series are last-known-good.", KindGauge)
		sv := 0.0
		if sc.Stale {
			sv = 1
		}
		stale.lines = append(stale.lines, fmt.Sprintf("%s%s %s", famScrapeStale, lbl, formatValue(sv)))
	}

	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f := merged[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind); err != nil {
			return err
		}
		// Aggregate rollups first (no worker label), then per-instance.
		sort.Strings(f.aggKeys)
		for _, key := range f.aggKeys {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, key, formatValue(f.aggLine[key])); err != nil {
				return err
			}
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderWithInstance renders a sample's labels with the instance label
// added (unless the sample already carries one).
func renderWithInstance(labels map[string]string, instance string) string {
	ls := make([]Label, 0, len(labels)+1)
	hasInstance := false
	for k, v := range labels {
		if k == InstanceLabel {
			hasInstance = true
		}
		ls = append(ls, Label{Key: k, Value: v})
	}
	if !hasInstance && instance != "" {
		ls = append(ls, Label{Key: InstanceLabel, Value: instance})
	}
	return renderLabels(ls)
}

// renderWithoutInstance renders a sample's labels minus the instance
// label — the aggregation key that sums one logical series across the
// fleet.
func renderWithoutInstance(labels map[string]string) string {
	ls := make([]Label, 0, len(labels))
	for k, v := range labels {
		if k == InstanceLabel {
			continue
		}
		ls = append(ls, Label{Key: k, Value: v})
	}
	return renderLabels(ls)
}

// WriteFamilies renders parsed families back to the text exposition
// format (families sorted by name, samples in parse order) — the
// inverse of ParseText modulo ordering, which is what lets federation
// re-serve a payload it scraped and lets tests assert the round trip
// WriteAll → ParseText → WriteFamilies → ParseText is lossless.
func WriteFamilies(w io.Writer, families map[string]*ParsedFamily) error {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.Help, name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			ls := make([]Label, 0, len(s.Labels))
			for k, v := range s.Labels {
				ls = append(ls, Label{Key: k, Value: v})
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, renderLabels(ls), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// FamiliesEqual reports whether two parsed payloads carry the same
// families, samples and values, ignoring sample order within a family —
// the equality the federation round-trip tests assert.
func FamiliesEqual(a, b map[string]*ParsedFamily) bool {
	if len(a) != len(b) {
		return false
	}
	for name, fa := range a {
		fb, ok := b[name]
		if !ok || fa.Help != fb.Help || fa.Type != fb.Type || len(fa.Samples) != len(fb.Samples) {
			return false
		}
		if sampleKey(fa.Samples) != sampleKey(fb.Samples) {
			return false
		}
	}
	return true
}

// sampleKey renders samples order-independently for comparison.
func sampleKey(samples []ParsedSample) string {
	lines := make([]string, len(samples))
	for i, s := range samples {
		ls := make([]Label, 0, len(s.Labels))
		for k, v := range s.Labels {
			ls = append(ls, Label{Key: k, Value: v})
		}
		lines[i] = fmt.Sprintf("%s%s %s", s.Name, renderLabels(ls), formatValue(s.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
