package branch

import (
	"math/rand"
	"testing"

	"repro/internal/config"
)

// mispredictRate drives predictor p with outcomes produced by gen and
// returns the misprediction fraction over n branches.
func mispredictRate(p DirectionPredictor, gen func(i int) (pc uint64, taken bool), n int) float64 {
	miss := 0
	for i := 0; i < n; i++ {
		pc, taken := gen(i)
		if p.Predict(pc, taken) != taken {
			miss++
		}
	}
	return float64(miss) / float64(n)
}

func TestTAGELearnsBiasedBranch(t *testing.T) {
	p := NewTAGE(1024)
	rate := mispredictRate(p, func(i int) (uint64, bool) {
		return 0x400100, true
	}, 2000)
	if rate > 0.02 {
		t.Fatalf("always-taken mispredict rate %.3f", rate)
	}
}

func TestTAGELearnsLongPeriodicPattern(t *testing.T) {
	// A period-24 pattern defeats a bimodal predictor and strains a
	// short-history gshare; TAGE's long-history tables learn it.
	pattern := make([]bool, 24)
	for i := range pattern {
		pattern[i] = i%3 == 0 || i%7 == 0
	}
	gen := func(i int) (uint64, bool) { return 0x400100, pattern[i%len(pattern)] }

	tage := NewTAGE(1024)
	bimodal := NewBimodal(1024)
	// Training phase.
	mispredictRate(tage, gen, 4000)
	mispredictRate(bimodal, gen, 4000)
	// Measurement phase.
	tr := mispredictRate(tage, gen, 4000)
	br := mispredictRate(bimodal, gen, 4000)
	if tr >= br {
		t.Fatalf("TAGE %.3f not better than bimodal %.3f on periodic pattern", tr, br)
	}
	if tr > 0.10 {
		t.Fatalf("TAGE mispredict rate %.3f on a learnable period-24 pattern", tr)
	}
}

func TestTAGEHandlesManyBranches(t *testing.T) {
	// Interleaved biased branches at distinct PCs: tags must keep them
	// separate.
	p := NewTAGE(1024)
	gen := func(i int) (uint64, bool) {
		pc := 0x400000 + uint64(i%16)*4
		return pc, i%16 < 8
	}
	mispredictRate(p, gen, 4000) // train
	if rate := mispredictRate(p, gen, 4000); rate > 0.05 {
		t.Fatalf("mispredict rate %.3f across 16 biased branches", rate)
	}
}

func TestTAGEReset(t *testing.T) {
	p := NewTAGE(256)
	rng := rand.New(rand.NewSource(1))
	mispredictRate(p, func(i int) (uint64, bool) {
		return uint64(0x400000 + rng.Intn(64)*4), rng.Intn(2) == 0
	}, 2000)
	p.Reset()
	if p.history != 0 {
		t.Fatal("history survives Reset")
	}
	for i := range p.tables {
		for j := range p.tables[i].entries {
			if p.tables[i].entries[j].valid {
				t.Fatal("tagged entry survives Reset")
			}
		}
	}
}

func TestTAGEPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two table accepted")
		}
	}()
	NewTAGE(1000)
}

func TestUnitAcceptsTAGE(t *testing.T) {
	cfg := config.Default(1).Branch
	cfg.Kind = "tage"
	u := NewUnit(cfg)
	if u == nil {
		t.Fatal("nil unit")
	}
}
