// Command tracegen records a benchmark's dynamic instruction stream to a
// binary trace file, or replays a recorded trace through a timing model —
// the functional-first workflow of the paper made explicit: generate once,
// time many.
//
// Usage:
//
//	tracegen -bench gcc -n 1000000 -o gcc.trace          # record
//	tracegen -bench mcf -slot 1 -o mcf.s1.trace          # record one Mix copy
//	tracegen -replay gcc.trace -model interval            # replay & time
//	tracegen -replay gcc.trace -model detailed
//
// -slot records the stream at an address-space slot (workload.NewSlot):
// per-copy traces of a heterogeneous Mix workload are recorded one slot
// per copy, matching what simrun.Mix generates in-process. The trace
// header (file format v3, see docs/formats.md) carries the stream-format
// version and the slot; traces recorded before a stream-format break are
// rejected on replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark profile to record")
		n      = flag.Int("n", 1_000_000, "instructions to record")
		out    = flag.String("o", "", "output trace file")
		replay = flag.String("replay", "", "trace file to replay")
		model  = flag.String("model", "interval", "timing model for replay: interval, detailed, oneipc")
		seed   = flag.Int64("seed", 42, "workload seed for recording")
		slot   = flag.Int("slot", 0, "address-space slot to record the stream at (one slot per Mix copy)")
	)
	flag.Parse()

	switch {
	case *bench != "" && *out != "":
		record(*bench, *n, *out, *seed, *slot)
	case *replay != "":
		replayTrace(*replay, *model)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func record(bench string, n int, out string, seed int64, slot int) {
	p := workload.SPECByName(bench)
	if p == nil {
		p = workload.PARSECByName(bench)
	}
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", bench)
		os.Exit(2)
	}
	if slot < 0 || slot >= workload.MaxSlots {
		fmt.Fprintf(os.Stderr, "slot must be in [0,%d), got %d\n", workload.MaxSlots, slot)
		os.Exit(2)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	hdr := trace.Header{StreamVersion: workload.StreamVersion, Slot: uint32(slot)}
	written, err := trace.WriteTrace(f, workload.NewSlot(p, 0, 1, seed, slot), n, hdr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d instructions of %s (stream v%d, slot %d) to %s\n",
		written, bench, workload.StreamVersion, slot, out)
}

func replayTrace(path, model string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The file version gate in trace.NewReader only moves when the file
	// layout changes; the stream generation can break without a layout
	// change, so the recorded stream version is checked here too.
	if v := r.Header().StreamVersion; v != workload.StreamVersion {
		fmt.Fprintf(os.Stderr, "trace records stream format v%d, this build generates v%d: the generations are deliberately incompatible — re-record the trace\n",
			v, workload.StreamVersion)
		os.Exit(1)
	}
	fmt.Printf("trace: stream format v%d, slot %d\n", r.Header().StreamVersion, r.Header().Slot)
	s, err := simrun.New("",
		simrun.Label(path),
		simrun.Model(model),
		simrun.Streams([]trace.Stream{r}, nil),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := r.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "trace replay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("model=%s instructions=%d cycles=%d IPC=%.3f wall=%v (%.2f MIPS)\n",
		res.ModelLabel(), res.TotalRetired, res.Cycles, res.Cores[0].IPC, res.Wall, res.MIPS())
}
