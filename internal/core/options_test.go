package core

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildOpts creates a single interval core with ablation options.
func buildOpts(insts []isa.Inst, perfect memhier.Perfect, predictor string, opts Options, mutate func(*config.Machine)) *Core {
	m := config.Default(1)
	if predictor != "" {
		m.Branch.Kind = predictor
	}
	if mutate != nil {
		mutate(&m)
	}
	mem := memhier.New(1, m.Mem, perfect)
	bp := branch.NewUnit(m.Branch)
	return NewWithOptions(0, m.Core, opts, bp, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
}

func TestOptionsName(t *testing.T) {
	if got := (Options{}).Name(); got != "full" {
		t.Errorf("zero Options name %q, want full", got)
	}
	o := Options{NoROBFillHiding: true, NoTaint: true}
	if got := o.Name(); got != "no-robfill+no-taint" {
		t.Errorf("name %q", got)
	}
	all := Options{
		NoROBFillHiding: true,
		FlushOldWindow:  true,
		NoOverlapScan:   true,
		NoTaint:         true,
		NoDispatchFloor: true,
		WrongPathFetch:  true,
	}
	if got := all.Name(); got != "no-robfill+flush-oldwin+no-overlap+no-taint+no-floor+wrong-path" {
		t.Errorf("name %q", got)
	}
}

func TestWrongPathFetchTouchesICache(t *testing.T) {
	// A heavily mispredicting stream: with WrongPathFetch the L1I sees
	// extra line fetches; retired counts are unchanged.
	mk := func(opts Options) (*Core, uint64) {
		insts := missStream(4000, 0)
		for i := 100; i < 3900; i += 7 {
			insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400100,
				Class: isa.Branch, Taken: i%14 == 2, Target: 0x408000,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
		}
		m := config.Default(1)
		m.Branch.Kind = "bimodal"
		mem := memhier.New(1, m.Mem, memhier.Perfect{DSide: true})
		bp := branch.NewUnit(m.Branch)
		c := NewWithOptions(0, m.Core, opts, bp, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
		runToEnd(c)
		return c, mem.Stats().InstAccesses
	}
	base, baseAccesses := mk(Options{})
	wp, wpAccesses := mk(Options{WrongPathFetch: true})
	if wp.WrongPathLines == 0 {
		t.Fatal("wrong-path fetch never fired")
	}
	if base.WrongPathLines != 0 {
		t.Fatal("baseline recorded wrong-path lines")
	}
	if wpAccesses <= baseAccesses {
		t.Fatalf("I-side accesses %d with wrong-path <= %d without", wpAccesses, baseAccesses)
	}
	if wp.Retired() != base.Retired() {
		t.Fatalf("retired diverged: %d vs %d", wp.Retired(), base.Retired())
	}
}

// missStream builds an ALU stream with isolated long-latency loads at a
// fixed period, each at a fresh address so every one misses the L2.
func missStream(n, period int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{
			Seq: uint64(i), PC: 0x400000 + uint64(i%64)*4,
			Class: isa.IntALU, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: uint8(8 + i%32),
		}
		if period > 0 && i%period == 0 && i > 0 {
			out[i].Class = isa.Load
			out[i].Addr = 0x100000000 + uint64(i)*1024*1024
			out[i].Dst = uint8(8 + i%32)
		}
	}
	return out
}

func runToEnd(c *Core) {
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 50_000_000 {
			panic("core did not finish")
		}
	}
}

func TestNoROBFillHidingChargesMore(t *testing.T) {
	insts := missStream(4000, 200)
	full := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{}, nil)
	runToEnd(full)
	abl := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{NoROBFillHiding: true}, nil)
	runToEnd(abl)
	// Isolated misses arrive with a full dispatch headroom: the full
	// model hides up to ROB/width = 64 cycles per miss, the ablation none.
	if abl.LocalTime() <= full.LocalTime() {
		t.Fatalf("ablation time %d <= full model %d", abl.LocalTime(), full.LocalTime())
	}
}

func TestNoOverlapScanSerializesIndependentMisses(t *testing.T) {
	// Two independent long-latency loads back to back: the full model
	// overlaps them, the first-order ablation charges both.
	insts := missStream(2000, 0)
	insts[1000] = isa.Inst{Seq: 1000, PC: 0x400400, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 40}
	insts[1001] = isa.Inst{Seq: 1001, PC: 0x400404, Class: isa.Load,
		Addr: 0x20000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 41}
	full := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{}, nil)
	runToEnd(full)
	abl := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{NoOverlapScan: true}, nil)
	runToEnd(abl)
	if full.OverlapHidden == 0 {
		t.Fatal("full model hid nothing")
	}
	if abl.OverlapHidden != 0 {
		t.Fatalf("ablation hid %d events", abl.OverlapHidden)
	}
	if abl.LongLoadEvents <= full.LongLoadEvents {
		t.Fatalf("ablation long-load events %d <= full %d", abl.LongLoadEvents, full.LongLoadEvents)
	}
	if abl.LocalTime() <= full.LocalTime() {
		t.Fatalf("ablation time %d <= full %d: no MLP lost", abl.LocalTime(), full.LocalTime())
	}
}

func TestNoTaintOverlapsDependentLoads(t *testing.T) {
	// A dependent long-latency load pair: the full model serializes, the
	// NoTaint ablation wrongly overlaps.
	mk := func(opts Options) *Core {
		insts := missStream(2000, 0)
		insts[1000] = isa.Inst{Seq: 1000, PC: 0x400400, Class: isa.Load,
			Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 40}
		insts[1001] = isa.Inst{Seq: 1001, PC: 0x400404, Class: isa.Load,
			Addr: 0x20000000000, Src1: 40, Src2: isa.RegNone, Dst: 41}
		c := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", opts, nil)
		runToEnd(c)
		return c
	}
	full := mk(Options{})
	abl := mk(Options{NoTaint: true})
	if abl.LocalTime() >= full.LocalTime() {
		t.Fatalf("no-taint time %d >= full %d: dependent misses still serialize", abl.LocalTime(), full.LocalTime())
	}
}

func TestFlushOldWindowChangesTiming(t *testing.T) {
	// A fully serial chain with a serializing instruction shortly after
	// each long-latency load. The shift model remembers that the chain's
	// in-flight tail extends past the miss penalty, so the serializing
	// instruction pays a long drain; the flush ablation forgot the chain
	// at the miss event and only charges the tiny post-event occupancy.
	insts := missStream(8000, 400)
	for i := range insts {
		switch {
		case insts[i].Class == isa.IntALU:
			insts[i].Src1 = 10
			insts[i].Dst = 10
		}
		if i%400 == 5 && i > 5 {
			insts[i] = isa.Inst{Seq: uint64(i), PC: insts[i].PC,
				Class: isa.Serializing,
				Src1:  isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
		}
	}
	full := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{}, nil)
	runToEnd(full)
	abl := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{FlushOldWindow: true}, nil)
	runToEnd(abl)
	if full.SerializeEvents == 0 {
		t.Fatal("no serializing events in the stream")
	}
	if abl.LocalTime() >= full.LocalTime() {
		t.Fatalf("flush ablation time %d >= shift model %d: drain memory not lost", abl.LocalTime(), full.LocalTime())
	}
}

func TestShiftVersusEmptySemantics(t *testing.T) {
	// Unit-level check of the mechanism behind the FlushOldWindow
	// ablation: after tracking a deep serial chain, Shift ages it while
	// Empty forgets it entirely.
	m := config.Default(1)
	mkChain := func() *OldWindow {
		w := NewOldWindow(m.Core)
		for i := 0; i < 200; i++ {
			in := &isa.Inst{Class: isa.IntALU, Src1: 10, Src2: isa.RegNone, Dst: 10}
			w.Insert(in, 0, int64(i/4))
		}
		return w
	}
	shifted := mkChain()
	shifted.Shift(50)
	emptied := mkChain()
	emptied.Empty()
	if ds, de := shifted.DrainTime(0), emptied.DrainTime(0); ds <= de {
		t.Fatalf("shifted drain %d <= emptied drain %d", ds, de)
	}
	br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone, Dst: isa.RegNone}
	if rs, re := shifted.BranchResolution(br, 0), emptied.BranchResolution(br, 0); rs <= re {
		t.Fatalf("shifted resolution %d <= emptied %d", rs, re)
	}
}

func TestNoDispatchFloorOverchargesBranches(t *testing.T) {
	// A long dependence chain feeding a mispredicted branch, where the
	// chain's producers dispatched long before the branch: the floored
	// model charges only the remaining chain, the pure-dataflow ablation
	// charges the whole chain depth.
	mk := func(opts Options) *Core {
		insts := make([]isa.Inst, 3000)
		for i := range insts {
			insts[i] = isa.Inst{
				Seq: uint64(i), PC: 0x400000 + uint64(i%64)*4,
				Class: isa.IntALU, Src1: 10, Src2: isa.RegNone, Dst: 10,
			}
			if i%250 == 249 {
				insts[i] = isa.Inst{
					Seq: uint64(i), PC: 0x400100,
					Class: isa.Branch, Taken: i%500 == 249, Target: 0x400000,
					Src1: 10, Src2: isa.RegNone, Dst: isa.RegNone,
				}
			}
		}
		c := buildOpts(insts, memhier.Perfect{ISide: true, DSide: true}, "bimodal", opts, nil)
		runToEnd(c)
		return c
	}
	full := mk(Options{})
	abl := mk(Options{NoDispatchFloor: true})
	if full.BranchEvents == 0 {
		t.Fatal("no mispredictions in the stream")
	}
	if abl.LocalTime() <= full.LocalTime() {
		t.Fatalf("no-floor time %d <= floored %d: resolution not overcharged", abl.LocalTime(), full.LocalTime())
	}
}

func TestMLPCapSerializesBeyondBudget(t *testing.T) {
	// Four independent long-latency loads in one window. With the
	// default budget they all overlap; with MaxOutstandingMisses=2 only
	// one extra load may overlap the head miss, so the rest serialize.
	mk := func(maxOut int) *Core {
		insts := missStream(2000, 0)
		for k := 0; k < 4; k++ {
			insts[1000+k] = isa.Inst{Seq: uint64(1000 + k), PC: 0x400400 + uint64(k)*4,
				Class: isa.Load, Addr: 0x10000000000 + uint64(k)*0x10000000000,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: uint8(40 + k)}
		}
		c := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{},
			func(m *config.Machine) { m.Core.MaxOutstandingMisses = maxOut })
		runToEnd(c)
		return c
	}
	wide := mk(32)
	narrow := mk(2)
	if narrow.OverlapLL >= wide.OverlapLL {
		t.Fatalf("narrow overlapped %d LL loads, wide %d", narrow.OverlapLL, wide.OverlapLL)
	}
	if narrow.LocalTime() <= wide.LocalTime() {
		t.Fatalf("narrow machine time %d <= wide %d: cap had no effect", narrow.LocalTime(), wide.LocalTime())
	}
}

func TestMLPCapOfOneDisablesLoadOverlap(t *testing.T) {
	insts := missStream(2000, 0)
	insts[1000] = isa.Inst{Seq: 1000, PC: 0x400400, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 40}
	insts[1001] = isa.Inst{Seq: 1001, PC: 0x400404, Class: isa.Load,
		Addr: 0x20000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 41}
	c := buildOpts(insts, memhier.Perfect{ISide: true}, "perfect", Options{},
		func(m *config.Machine) { m.Core.MaxOutstandingMisses = 1 })
	runToEnd(c)
	if c.OverlapLL != 0 {
		t.Fatalf("OverlapLL = %d with a single outstanding-miss slot", c.OverlapLL)
	}
	if c.LongLoadEvents != 2 {
		t.Fatalf("LongLoadEvents = %d, want 2 (both charged)", c.LongLoadEvents)
	}
}

func TestBranchResolutionPureAtLeastOne(t *testing.T) {
	m := config.Default(1)
	w := NewOldWindow(m.Core)
	br := &isa.Inst{Class: isa.Branch, Src1: isa.RegNone, Src2: isa.RegNone}
	if got := w.BranchResolutionPure(br); got < 1 {
		t.Fatalf("resolution %d < 1", got)
	}
}
