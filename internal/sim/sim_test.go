package sim

import (
	"testing"

	"repro/internal/isa"
)

func TestNullSyncerAlwaysProceeds(t *testing.T) {
	var s NullSyncer
	for _, class := range []isa.Class{isa.BarrierArrive, isa.LockAcquire, isa.LockRelease} {
		in := isa.Inst{Class: class, SyncID: 3}
		d := s.Sync(0, &in, 100)
		if !d.Proceed {
			t.Fatalf("%v blocked by NullSyncer", class)
		}
		if d.Latency <= 0 {
			t.Fatalf("%v has non-positive latency %d", class, d.Latency)
		}
	}
}
