package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format: a magic header followed by fixed-width little-endian
// instruction records. Recording a generated stream lets an experiment be
// replayed exactly (e.g. feeding the identical committed stream to an
// external tool, or rerunning a timing study without regenerating), which
// is the natural workflow for a functional-first simulator. The full
// layout is documented in docs/formats.md.
//
// File version 2 extends the header with the provenance a replayed stream
// cannot reconstruct from its records: the workload stream-format
// generation that produced it (so traces recorded before a deliberate
// stream break are rejected loudly instead of silently timing stale
// streams) and the address-space slot the stream was instantiated at.
//
// File version 3 marks the stream-format v3 break (counter-based RNG +
// tabulated geometric sampling in the workload generator): the layout is
// unchanged from v2, but v2 traces record streams no v3 generator can
// reproduce, so they are rejected on replay with a re-record hint.

const (
	traceMagic   = uint32(0x49564c53) // "SLVI"
	traceVersion = uint32(3)
	headerBytes  = 4 + 4 + 4 + 4                         // magic, file version, Header fields
	recordBytes  = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 8 + 2 // fields below
)

// Header is the recorded stream's provenance, carried in the trace file
// after the magic and file version.
type Header struct {
	// StreamVersion is the workload stream-format generation
	// (workload.StreamVersion) the recorded stream was generated under.
	// Recorders must set it; replays read it back so front ends can
	// refuse to mix stream generations.
	StreamVersion uint32
	// Slot is the address-space slot the stream was instantiated at
	// (workload.NewSlot); 0 for single-program streams.
	Slot uint32
}

// WriteTrace drains src to w in binary format, writing at most n
// instructions under the given provenance header. It returns the number
// written.
func WriteTrace(w io.Writer, src Stream, n int, h Header) (int, error) {
	bw := bufio.NewWriter(w)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], h.StreamVersion)
	binary.LittleEndian.PutUint32(hdr[12:], h.Slot)
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: writing header: %w", err)
	}
	var rec [recordBytes]byte
	written := 0
	for written < n {
		in, ok := src.Next()
		if !ok {
			break
		}
		encode(&rec, &in)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, fmt.Errorf("trace: writing record %d: %w", written, err)
		}
		written++
	}
	return written, bw.Flush()
}

func encode(rec *[recordBytes]byte, in *isa.Inst) {
	binary.LittleEndian.PutUint64(rec[0:], in.Seq)
	binary.LittleEndian.PutUint64(rec[8:], in.PC)
	rec[16] = uint8(in.Class)
	rec[17] = in.Src1
	rec[18] = in.Src2
	rec[19] = in.Dst
	binary.LittleEndian.PutUint64(rec[20:], in.Addr)
	if in.Taken {
		rec[28] = 1
	} else {
		rec[28] = 0
	}
	binary.LittleEndian.PutUint64(rec[29:], in.Target)
	binary.LittleEndian.PutUint16(rec[37:], in.SyncID)
}

func decode(rec *[recordBytes]byte) isa.Inst {
	return isa.Inst{
		Seq:    binary.LittleEndian.Uint64(rec[0:]),
		PC:     binary.LittleEndian.Uint64(rec[8:]),
		Class:  isa.Class(rec[16]),
		Src1:   rec[17],
		Src2:   rec[18],
		Dst:    rec[19],
		Addr:   binary.LittleEndian.Uint64(rec[20:]),
		Taken:  rec[28] == 1,
		Target: binary.LittleEndian.Uint64(rec[29:]),
		SyncID: binary.LittleEndian.Uint16(rec[37:]),
	}
}

// Reader replays a binary trace from an io.Reader. It implements Stream.
type Reader struct {
	br  *bufio.Reader
	hdr Header
	err error
}

// NewReader validates the trace header and returns a replaying Stream.
// Traces written under an older file version are rejected with an error
// saying to re-record them: a version bump marks a deliberate
// stream-format break, after which old traces time streams that no
// current configuration can reproduce.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported trace file version %d (this build reads v%d; the version changes only on a deliberate stream-format break — re-record the trace with cmd/tracegen)", v, traceVersion)
	}
	return &Reader{
		br: br,
		hdr: Header{
			StreamVersion: binary.LittleEndian.Uint32(hdr[8:]),
			Slot:          binary.LittleEndian.Uint32(hdr[12:]),
		},
	}, nil
}

// Header returns the provenance header recorded with the trace.
func (r *Reader) Header() Header { return r.hdr }

// Next implements Stream.
func (r *Reader) Next() (isa.Inst, bool) {
	if r.err != nil {
		return isa.Inst{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		r.err = err
		return isa.Inst{}, false
	}
	return decode(&rec), true
}

// Err returns the terminal error, nil on clean EOF.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}
