package core

import (
	"fmt"
	"strings"
)

// CPIStack decomposes a core's execution time into cycles-per-instruction
// components. This decomposition falls out of interval simulation for free
// — every miss event charges an explicit, attributable penalty — and is one
// of the paradigm's main practical attractions: a detailed simulator must
// approximate stall attribution after the fact, while the analytical model
// produces it exactly.
type CPIStack struct {
	Retired uint64
	// Cycle totals per component; they sum to the core's total time.
	Base      int64 // dispatch-rate-limited streaming (includes L1/L2 load latencies folded into the dataflow)
	ICache    int64 // I-cache and I-TLB miss penalties
	Branch    int64 // branch misprediction penalties (resolution + front-end refill)
	LongLoad  int64 // long-latency load penalties (last-level, coherence, D-TLB)
	Serialize int64 // pipeline drains for serializing instructions
	Sync      int64 // synchronization: barrier/lock waiting and transfer
}

// Total returns the summed cycles.
func (s CPIStack) Total() int64 {
	return s.Base + s.ICache + s.Branch + s.LongLoad + s.Serialize + s.Sync
}

// CPI returns total cycles per retired instruction.
func (s CPIStack) CPI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Total()) / float64(s.Retired)
}

// Component returns the per-instruction contribution of one component.
func (s CPIStack) component(c int64) float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(c) / float64(s.Retired)
}

// String renders the stack as an aligned table with per-component CPI and
// percentage of execution time.
func (s CPIStack) String() string {
	var b strings.Builder
	total := s.Total()
	row := func(name string, cycles int64) {
		pctv := 0.0
		if total > 0 {
			pctv = 100 * float64(cycles) / float64(total)
		}
		fmt.Fprintf(&b, "  %-10s %8.3f CPI  %5.1f%%\n", name, s.component(cycles), pctv)
	}
	fmt.Fprintf(&b, "CPI stack (total %.3f CPI over %d instructions):\n", s.CPI(), s.Retired)
	row("base", s.Base)
	row("icache", s.ICache)
	row("branch", s.Branch)
	row("longload", s.LongLoad)
	row("serialize", s.Serialize)
	row("sync", s.Sync)
	return b.String()
}

// Stack returns the core's CPI stack so far. The base component is the
// residual: total simulated time minus all attributed penalties.
func (c *Core) Stack() CPIStack {
	s := c.stack
	s.Retired = c.retired
	s.Base = c.coreTime - s.ICache - s.Branch - s.LongLoad - s.Serialize - s.Sync
	if s.Base < 0 {
		s.Base = 0
	}
	return s
}
