// Package trace defines the dynamic-instruction-stream plumbing between the
// functional simulator (the workload generator) and the timing models. The
// paper's framework is functional-first: a functional simulator produces
// the committed instruction stream, which is then fed to the timing
// simulator; this package is that interface.
package trace

import "repro/internal/isa"

// Stream produces a thread's dynamic instruction stream in program order.
type Stream interface {
	// Next returns the next dynamic instruction. ok is false at the end
	// of the stream; the instruction is then meaningless.
	Next() (in isa.Inst, ok bool)
}

// BatchStream is a Stream that can additionally hand over instructions in
// chunks. The per-instruction interface dispatch of Next is measurable in
// the timing models' inner loops; consumers that buffer (the cores, the
// warmup loop) pull thousands of instructions per call instead.
type BatchStream interface {
	Stream
	// NextBatch fills buf with the next instructions of the stream, in
	// program order, and returns how many were written. It returns 0 only
	// at end-of-stream (for a non-empty buf). Mixing Next and NextBatch
	// calls is allowed; both consume the same underlying stream.
	NextBatch(buf []isa.Inst) int
}

// Batched adapts any Stream to a BatchStream: native batch support is used
// directly, legacy streams are wrapped in a Next loop.
func Batched(s Stream) BatchStream {
	if b, ok := s.(BatchStream); ok {
		return b
	}
	return &nextBatcher{s: s}
}

// nextBatcher is the legacy-stream adapter behind Batched.
type nextBatcher struct{ s Stream }

// Next implements Stream.
func (a *nextBatcher) Next() (isa.Inst, bool) { return a.s.Next() }

// NextBatch implements BatchStream by looping Next.
func (a *nextBatcher) NextBatch(buf []isa.Inst) int {
	n := 0
	for n < len(buf) {
		in, ok := a.s.Next()
		if !ok {
			break
		}
		buf[n] = in
		n++
	}
	return n
}

// Buffered adapts a stream for per-instruction consumers that want the
// batched hand-off without managing a chunk buffer themselves: Next is a
// direct (devirtualized) method call that refills from the underlying
// stream one chunk at a time. The one-IPC and detailed cores read through
// it; the interval core has its own ring because its window aliases the
// buffer.
type Buffered struct {
	b    BatchStream
	buf  []isa.Inst
	pos  int
	n    int
	done bool
}

// NewBuffered wraps s with a chunk buffer of the given size.
func NewBuffered(s Stream, size int) *Buffered {
	if size < 1 {
		size = 1
	}
	return &Buffered{b: Batched(s), buf: make([]isa.Inst, size)}
}

// Next returns the next instruction, refilling the chunk buffer as needed.
func (r *Buffered) Next() (isa.Inst, bool) {
	if r.pos == r.n {
		if r.done {
			return isa.Inst{}, false
		}
		r.n = r.b.NextBatch(r.buf)
		r.pos = 0
		if r.n == 0 {
			r.done = true
			return isa.Inst{}, false
		}
	}
	in := r.buf[r.pos]
	r.pos++
	return in, true
}

// SliceStream replays a fixed slice of instructions (test helper and
// building block for recorded traces).
type SliceStream struct {
	insts []isa.Inst
	pos   int
}

// NewSliceStream wraps insts in a Stream.
func NewSliceStream(insts []isa.Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next() (isa.Inst, bool) {
	if s.pos >= len(s.insts) {
		return isa.Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// NextBatch implements BatchStream with one bulk copy.
func (s *SliceStream) NextBatch(buf []isa.Inst) int {
	n := copy(buf, s.insts[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Record drains up to n instructions from src into a slice, so one
// generated stream can be replayed into several simulators.
func Record(src Stream, n int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	b := Batched(src)
	for len(out) < n {
		k := b.NextBatch(out[len(out):n])
		if k == 0 {
			break
		}
		out = out[:len(out)+k]
	}
	return out
}

// Limit wraps a stream and ends it after n instructions.
type Limit struct {
	src   Stream
	batch BatchStream
	left  int
}

// NewLimit creates a stream that yields at most n instructions from src.
func NewLimit(src Stream, n int) *Limit {
	return &Limit{src: src, batch: Batched(src), left: n}
}

// Next implements Stream.
func (l *Limit) Next() (isa.Inst, bool) {
	if l.left <= 0 {
		return isa.Inst{}, false
	}
	in, ok := l.src.Next()
	if ok {
		l.left--
	}
	return in, ok
}

// NextBatch implements BatchStream, clamping the chunk to the remaining
// budget.
func (l *Limit) NextBatch(buf []isa.Inst) int {
	if l.left <= 0 {
		return 0
	}
	n := len(buf)
	if n > l.left {
		n = l.left
	}
	k := l.batch.NextBatch(buf[:n])
	l.left -= k
	return k
}

// Stats accumulates simple class statistics over a stream (test and
// reporting helper).
type Stats struct {
	Total    uint64
	ByClass  [isa.NumClasses]uint64
	Branches uint64
	Memory   uint64
}

// Observe updates the statistics with one instruction.
func (st *Stats) Observe(in *isa.Inst) {
	st.Total++
	st.ByClass[in.Class]++
	if in.Class.IsBranch() {
		st.Branches++
	}
	if in.Class.IsMem() {
		st.Memory++
	}
}

// Frac returns the fraction of instructions of class c.
func (st *Stats) Frac(c isa.Class) float64 {
	if st.Total == 0 {
		return 0
	}
	return float64(st.ByClass[c]) / float64(st.Total)
}
