package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultInjector is the fleet's deterministic chaos seam. Each hook is
// consulted at one fixed point in the worker (before sending a
// heartbeat; on receipt of a run request), and fires on exact,
// pre-armed occurrence counts — no randomness, so a chaos test asserts
// a specific recovery path and gets the same schedule every run.
//
// A nil *FaultInjector injects nothing; every method is nil-safe, so
// production wiring passes nil and pays a pointer test.
type FaultInjector struct {
	mu sync.Mutex

	dropBeats  int // heartbeats still to drop; -1 = all future ones
	killAtRun  int // 1-based run-request ordinal to die at; 0 = never
	corruptRun int // 1-based run-response ordinal to corrupt; 0 = never
	delay      time.Duration

	runs         int // run requests observed
	beatsDropped int
}

// DropHeartbeats arms the injector to swallow the worker's next n
// heartbeats (n < 0: every future one — the worker goes silent and its
// leases expire).
func (f *FaultInjector) DropHeartbeats(n int) {
	f.mu.Lock()
	f.dropBeats = n
	f.mu.Unlock()
}

// KillAtRun arms the injector to kill the worker when it receives its
// n-th run request (1-based): the connection is severed mid-request and
// the worker stops heartbeating, exactly what a crashed node looks like
// from the coordinator.
func (f *FaultInjector) KillAtRun(n int) {
	f.mu.Lock()
	f.killAtRun = n
	f.mu.Unlock()
}

// CorruptAtRun arms the injector to flip a byte in the payload of the
// worker's n-th run response (1-based). The integrity checksum still
// describes the true payload, so the coordinator detects the corruption
// and re-dispatches instead of caching garbage.
func (f *FaultInjector) CorruptAtRun(n int) {
	f.mu.Lock()
	f.corruptRun = n
	f.mu.Unlock()
}

// DelayResults makes every run response sit on the wire for d before
// delivery — long enough a delay, and the job's lease expires first.
func (f *FaultInjector) DelayResults(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// dropBeat is consulted by the worker's heartbeat loop; true means this
// heartbeat is swallowed.
func (f *FaultInjector) dropBeat() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropBeats == 0 {
		return false
	}
	if f.dropBeats > 0 {
		f.dropBeats--
	}
	f.beatsDropped++
	return true
}

// onRun is consulted once per run request and returns the faults to
// inject into this one: kill the worker, corrupt the response payload,
// and/or delay the response.
func (f *FaultInjector) onRun() (kill, corrupt bool, delay time.Duration) {
	if f == nil {
		return false, false, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runs++
	return f.killAtRun > 0 && f.runs == f.killAtRun,
		f.corruptRun > 0 && f.runs == f.corruptRun,
		f.delay
}

// BeatsDropped reports how many heartbeats the injector swallowed.
func (f *FaultInjector) BeatsDropped() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.beatsDropped
}

// ParseFaults builds an injector from a comma-separated chaos spec (the
// cmd/simd -chaos flag):
//
//	kill-run=N          die on the N-th run request
//	corrupt-run=N       corrupt the N-th run response
//	drop-heartbeats=N   swallow the next N heartbeats ("all" = forever)
//	delay-result=DUR    delay every run response by DUR (e.g. 250ms)
//
// An empty spec returns nil — no injector at all.
func ParseFaults(spec string) (*FaultInjector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	f := &FaultInjector{}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fleet: bad chaos term %q (want key=value)", part)
		}
		switch key {
		case "kill-run", "corrupt-run":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fleet: chaos %s wants a run ordinal >= 1, got %q", key, val)
			}
			if key == "kill-run" {
				f.KillAtRun(n)
			} else {
				f.CorruptAtRun(n)
			}
		case "drop-heartbeats":
			if val == "all" {
				f.DropHeartbeats(-1)
				continue
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fleet: chaos drop-heartbeats wants a count >= 1 or \"all\", got %q", val)
			}
			f.DropHeartbeats(n)
		case "delay-result":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fleet: chaos delay-result wants a duration, got %q", val)
			}
			f.DelayResults(d)
		default:
			return nil, fmt.Errorf("fleet: unknown chaos term %q (want kill-run, corrupt-run, drop-heartbeats or delay-result)", key)
		}
	}
	return f, nil
}
