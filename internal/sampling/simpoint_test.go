package sampling

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

// phasedStream builds a stream alternating between two benchmark
// behaviours in segments of segLen instructions, nSeg segments total.
func phasedStream(a, b string, segLen, nSeg int) []isa.Inst {
	ga := workload.New(workload.SPECByName(a), 0, 1, 42)
	gb := workload.New(workload.SPECByName(b), 0, 1, 43)
	out := make([]isa.Inst, 0, segLen*nSeg)
	for s := 0; s < nSeg; s++ {
		g := trace.Stream(ga)
		if s%2 == 1 {
			g = gb
		}
		out = append(out, trace.Record(g, segLen)...)
	}
	return out
}

func TestAnalyzeValidation(t *testing.T) {
	insts := trace.Record(workload.New(workload.SPECByName("gcc"), 0, 1, 1), 1000)
	if _, err := Analyze(insts, SimPointConfig{IntervalLen: 0, K: 2}); err == nil {
		t.Error("zero interval length accepted")
	}
	if _, err := Analyze(insts, SimPointConfig{IntervalLen: 100, K: 0}); err == nil {
		t.Error("zero k accepted")
	}
	if _, err := Analyze(insts[:50], SimPointConfig{IntervalLen: 100, K: 2}); err == nil {
		t.Error("sub-interval stream accepted")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	insts := phasedStream("gcc", "swim", 2000, 10)
	a, err := Analyze(insts, SimPointConfig{IntervalLen: 1000, K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(insts, SimPointConfig{IntervalLen: 1000, K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs across identical runs", i)
		}
	}
}

func TestAnalyzeWeightsSumToOne(t *testing.T) {
	insts := phasedStream("gcc", "mcf", 2000, 8)
	sp, err := Analyze(insts, SimPointConfig{IntervalLen: 800, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range sp.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if len(sp.Weights) != sp.K || len(sp.Representatives) != sp.K {
		t.Fatalf("inconsistent sizes: K=%d weights=%d reps=%d", sp.K, len(sp.Weights), len(sp.Representatives))
	}
	for _, r := range sp.Representatives {
		if r < 0 || r >= sp.Intervals() {
			t.Fatalf("representative %d out of range", r)
		}
	}
}

func TestAnalyzeKClampedToIntervals(t *testing.T) {
	insts := phasedStream("gcc", "swim", 1000, 2)
	sp, err := Analyze(insts, SimPointConfig{IntervalLen: 1000, K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K > 2 {
		t.Fatalf("K = %d for 2 intervals", sp.K)
	}
}

// TestPhasesSeparate checks the core SimPoint property: intervals of the
// same program phase cluster together. The stream alternates gcc-like and
// swim-like segments; with one interval per segment and K=2, the even and
// odd intervals must land in different clusters with high purity.
func TestPhasesSeparate(t *testing.T) {
	const segLen = 2000
	insts := phasedStream("gcc", "swim", segLen, 12)
	sp, err := Analyze(insts, SimPointConfig{IntervalLen: segLen, K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 2 {
		t.Fatalf("K = %d", sp.K)
	}
	agree := 0
	for i, c := range sp.Assignments {
		if c == sp.Assignments[i%2] {
			agree++
		}
	}
	if purity := float64(agree) / float64(len(sp.Assignments)); purity < 0.9 {
		t.Fatalf("phase purity %.2f: assignments %v", purity, sp.Assignments)
	}
}

// TestEstimateIPCTracksFullRun compares the phase-sampled IPC estimate
// against timing the whole stream, for both core models. The first two
// segments are treated as initialization and excluded from both
// measurements (standard SimPoint practice), so cold-start misses do not
// dominate either side at this small scale.
func TestEstimateIPCTracksFullRun(t *testing.T) {
	const segLen = 4000
	const initSegs = 2
	all := phasedStream("gcc", "swim", segLen, 22)
	init, insts := all[:initSegs*segLen], all[initSegs*segLen:]
	m := config.Default(1)

	for _, model := range []multicore.Model{multicore.Interval, multicore.Detailed} {
		full := multicore.Run(multicore.RunConfig{
			Machine: m, Model: model,
			WarmupInsts: len(init),
			Warmup:      []trace.Stream{trace.NewSliceStream(init)},
		}, []trace.Stream{trace.NewSliceStream(insts)})
		fullIPC := full.Cores[0].IPC

		sp, err := Analyze(insts, SimPointConfig{IntervalLen: segLen, K: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateIPC(all, spShift(sp, initSegs), m, model)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est-fullIPC) / fullIPC
		t.Logf("%v: full IPC %.3f, simpoint estimate %.3f (err %.1f%%, timed %d/%d intervals)",
			model, fullIPC, est, 100*relErr, sp.K, sp.Intervals())
		if relErr > 0.15 {
			t.Errorf("%v: simpoint estimate off by %.1f%%", model, 100*relErr)
		}
	}
}

// spShift re-indexes representatives by the discarded initialization
// segments so EstimateIPC can warm each one with the true full prefix.
func spShift(sp *SimPoints, segs int) *SimPoints {
	out := *sp
	out.Representatives = make([]int, len(sp.Representatives))
	for i, r := range sp.Representatives {
		out.Representatives[i] = r + segs
	}
	return &out
}

func TestEstimateIPCRejectsMultiCore(t *testing.T) {
	insts := phasedStream("gcc", "swim", 1000, 2)
	sp, err := Analyze(insts, SimPointConfig{IntervalLen: 1000, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateIPC(insts, sp, config.Default(2), multicore.Interval); err == nil {
		t.Error("multi-core machine accepted")
	}
}

func TestSignatureEmpty(t *testing.T) {
	var zero [sigDim]float64
	if got := signature(nil); got != zero {
		t.Fatal("empty signature not zero")
	}
}

func TestSignatureDiscriminates(t *testing.T) {
	ga := trace.Record(workload.New(workload.SPECByName("gcc"), 0, 1, 42), 4000)
	gs := trace.Record(workload.New(workload.SPECByName("swim"), 0, 1, 42), 4000)
	sa1, sa2 := signature(ga[:2000]), signature(ga[2000:])
	sb := signature(gs[:2000])
	within := dist2(&sa1, &sa2)
	between := dist2(&sa1, &sb)
	if between <= within {
		t.Fatalf("signature does not discriminate: within=%g between=%g", within, between)
	}
}

// TestAnalyzeStreamMatchesAnalyze: the streaming analysis must make
// identical clustering decisions to the recorded one — same signatures,
// same k-means, same selection — without materializing the stream.
func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	insts := phasedStream("gcc", "swim", 2000, 12)
	cfg := SimPointConfig{IntervalLen: 1500, K: 3, Seed: 5}
	rec, err := Analyze(insts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	str, err := AnalyzeStream(trace.NewSliceStream(insts), len(insts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.IntervalLen != str.IntervalLen || rec.K != str.K {
		t.Fatalf("shape differs: recorded (il=%d k=%d) streamed (il=%d k=%d)",
			rec.IntervalLen, rec.K, str.IntervalLen, str.K)
	}
	for i := range rec.Assignments {
		if rec.Assignments[i] != str.Assignments[i] {
			t.Fatalf("assignment %d differs: recorded %d streamed %d", i, rec.Assignments[i], str.Assignments[i])
		}
	}
	for i := range rec.Representatives {
		if rec.Representatives[i] != str.Representatives[i] {
			t.Fatalf("representative %d differs: recorded %d streamed %d", i, rec.Representatives[i], str.Representatives[i])
		}
	}
}

func TestAnalyzeStreamEndsEarly(t *testing.T) {
	insts := phasedStream("gcc", "swim", 1000, 2)
	if _, err := AnalyzeStream(trace.NewSliceStream(insts), len(insts)*2, SimPointConfig{IntervalLen: 1000, K: 2, Seed: 1}); err == nil {
		t.Fatal("short stream accepted")
	}
}

// TestEstimateIPCSkipTracksFullRun: timing only the representatives,
// each reached by skip-ahead with a bounded warmup window, must land
// near the full run of the same stream.
func TestEstimateIPCSkipTracksFullRun(t *testing.T) {
	const total = 120_000
	const warm = 20_000
	p := workload.SPECByName("gcc")
	m := config.Default(1)

	for _, model := range []multicore.Model{multicore.Interval, multicore.Detailed} {
		full := multicore.Run(multicore.RunConfig{
			Machine: m, Model: model,
		}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), total)})
		fullIPC := full.Cores[0].IPC

		sp, err := AnalyzeStream(workload.New(p, 0, 1, 42), total, SimPointConfig{
			IntervalLen: 10_000, K: 3, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		open := func() SkipStream { return workload.New(p, 0, 1, 42) }
		est, err := EstimateIPCSkip(open, sp, warm, m, model)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(est-fullIPC) / fullIPC
		t.Logf("%v: full IPC %.3f, skip estimate %.3f (err %.1f%%)", model, fullIPC, est, 100*relErr)
		if relErr > 0.15 {
			t.Errorf("%v: skip estimate off by %.1f%%", model, 100*relErr)
		}
	}
}
