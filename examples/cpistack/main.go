// CPI stacks: the practical payoff of interval simulation. Because every
// miss event charges an explicit analytical penalty, the model decomposes
// execution time into components exactly — where a detailed simulator has
// to approximate stall attribution. This example prints CPI stacks for
// benchmarks with very different bottlenecks.
//
//	go run ./examples/cpistack
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/simrun"
)

func stackOf(name string) core.CPIStack {
	res, err := simrun.MustNew(name,
		simrun.Insts(100_000),
		simrun.Warmup(600_000),
		simrun.KeepCores(),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return res.Sim[0].(*core.Core).Stack()
}

func main() {
	for _, name := range []string{"mesa", "gcc", "mcf", "swim"} {
		fmt.Printf("== %s ==\n%s\n", name, stackOf(name))
	}
	fmt.Println("mesa is compute-bound (base dominates); gcc splits between branch")
	fmt.Println("and memory; mcf drowns in long-latency loads; swim pays DRAM")
	fmt.Println("bandwidth. The stacks make the bottleneck visible at a glance.")
}
