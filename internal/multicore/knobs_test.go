package multicore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// knobRun executes a small multi-program run on the given machine and
// model, returning the result with cores kept.
func knobRun(t *testing.T, m config.Machine, model Model, opts core.Options) Result {
	t.Helper()
	streams := make([]trace.Stream, m.Cores)
	warms := make([]trace.Stream, m.Cores)
	mix := []string{"gcc", "swim", "mcf", "art"}
	for i := range streams {
		p := workload.SPECByName(mix[i%len(mix)])
		streams[i] = trace.NewLimit(workload.New(p, 0, 1, int64(42+i)), 5_000)
		warms[i] = workload.New(p, 0, 1, int64(1042+i))
	}
	res := Run(RunConfig{
		Machine:     m,
		Model:       model,
		Ablation:    opts,
		WarmupInsts: 50_000,
		Warmup:      warms,
		KeepCores:   true,
		MaxCycles:   200_000_000,
	}, streams)
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	return res
}

// TestAllKnobsTogether is the kitchen-sink integration test: mesh fabric,
// directory coherence, banked DRAM, stride prefetching, TAGE prediction
// and a tight MLP cap, all at once, under both core models. Every
// instruction must retire and the coherence engine must stay consistent.
func TestAllKnobsTogether(t *testing.T) {
	m := config.Default(4)
	m.Mem.Interconnect = "mesh"
	m.Mem.Coherence = "directory"
	m.Mem.DRAMKind = "banked"
	m.Mem.Prefetch = "stride"
	m.Mem.PrefetchDegree = 2
	m.Branch.Kind = "tage"
	m.Core.MaxOutstandingMisses = 4

	for _, model := range []Model{Interval, Detailed} {
		res := knobRun(t, m, model, core.Options{})
		if res.TotalRetired != 4*5_000 {
			t.Fatalf("%v: retired %d, want 20000", model, res.TotalRetired)
		}
		if msg := res.Mem.Coherence().CheckInvariants(); msg != "" {
			t.Fatalf("%v: coherence invariant violated: %s", model, msg)
		}
		if res.Mem.Bus() != nil {
			t.Fatalf("%v: mesh machine exposes a bus", model)
		}
	}
}

// TestKnobsChangeTiming verifies each knob actually changes machine
// behaviour relative to the Table 1 baseline (no silently dead
// configuration paths).
func TestKnobsChangeTiming(t *testing.T) {
	base := knobRun(t, config.Default(4), Interval, core.Options{}).Cycles
	mutations := []struct {
		name   string
		mutate func(*config.Machine)
	}{
		{"mesh", func(m *config.Machine) { m.Mem.Interconnect = "mesh"; m.Mem.NoCHopLatency = 4 }},
		{"ring", func(m *config.Machine) { m.Mem.Interconnect = "ring"; m.Mem.NoCHopLatency = 4 }},
		{"directory", func(m *config.Machine) { m.Mem.Coherence = "directory"; m.Mem.DirectoryLatency = 30 }},
		{"banked", func(m *config.Machine) { m.Mem.DRAMKind = "banked" }},
		{"mlp-cap", func(m *config.Machine) { m.Core.MaxOutstandingMisses = 1 }},
		{"bimodal", func(m *config.Machine) { m.Branch.Kind = "bimodal" }},
	}
	for _, mu := range mutations {
		m := config.Default(4)
		mu.mutate(&m)
		got := knobRun(t, m, Interval, core.Options{}).Cycles
		if got == base {
			t.Errorf("%s: cycles identical to baseline (%d) — knob has no effect", mu.name, base)
		}
	}
}

// TestAblationsRunToCompletion runs every model-ablation variant through
// the full multi-core driver: ablations change timing, never correctness.
func TestAblationsRunToCompletion(t *testing.T) {
	variants := []core.Options{
		{NoROBFillHiding: true},
		{FlushOldWindow: true},
		{NoOverlapScan: true},
		{NoTaint: true},
		{NoDispatchFloor: true},
		{WrongPathFetch: true},
		{NoROBFillHiding: true, FlushOldWindow: true, NoOverlapScan: true,
			NoTaint: true, NoDispatchFloor: true, WrongPathFetch: true},
	}
	for _, v := range variants {
		res := knobRun(t, config.Default(2), Interval, v)
		if res.TotalRetired != 2*5_000 {
			t.Errorf("%s: retired %d, want 10000", v.Name(), res.TotalRetired)
		}
	}
}

// TestDeterminismAcrossKnobs re-runs the same configuration twice and
// demands bit-identical cycle counts (the whole harness is seeded).
func TestDeterminismAcrossKnobs(t *testing.T) {
	m := config.Default(4)
	m.Mem.Interconnect = "ring"
	m.Mem.Coherence = "directory"
	m.Mem.DRAMKind = "banked"
	a := knobRun(t, m, Interval, core.Options{})
	b := knobRun(t, m, Interval, core.Options{})
	if a.Cycles != b.Cycles || a.TotalRetired != b.TotalRetired {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/retired",
			a.Cycles, a.TotalRetired, b.Cycles, b.TotalRetired)
	}
}
