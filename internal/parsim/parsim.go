// Package parsim is the host-parallel deterministic multicore engine: it
// runs each simulated core on its own host goroutine and produces output
// bit-identical to the sequential multicore driver.
//
// # Why this is possible
//
// Interval simulation (the paper's model) makes per-core timing cheap, so
// for multi-core runs the shared-resource model — L2, coherence, fabric,
// DRAM — is the only coupling between cores. Each core's private work
// (window scans, L1/TLB lookups, stream generation) is independent and
// can proceed concurrently; only the touches of the shared hierarchy must
// happen in the exact order the sequential driver would have produced.
//
// # How determinism is kept
//
// Cores advance in bounded epochs (quantum = a configurable cycle
// window) with a barrier between epochs, and publish an order key
// (cycle, rotation position) for the earliest point at which they could
// still issue a shared-hierarchy request. The arbitration seam in
// internal/memhier brackets every shared-structure section; the bracket
// blocks until the requesting core holds the globally minimal key, which
// serializes the shared accesses in exactly the sequential driver's
// commit order — global cycle ascending, rotated core order within a
// cycle, program order within a step. Private work overlaps freely.
// The result: report.JSON is byte-identical to multicore.Run for any
// GOMAXPROCS and any goroutine schedule.
//
// # True sharing falls back
//
// Two thread interactions cannot be replayed deterministically while the
// affected core races ahead on another goroutine: a coherence
// invalidation of a remote L1 line, and barrier/lock synchronization
// instructions. Both abort the parallel run (Run returns ok=false) and
// the caller reruns the scenario on the sequential driver from fresh
// streams — bit-identity is preserved unconditionally; the parallel
// speedup applies to multiprogram workloads (the paper's SPEC mixes),
// whose per-core address spaces are disjoint.
package parsim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/branch"
	"repro/internal/memhier"
	"repro/internal/metrics"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultQuantum is the default epoch length in simulated cycles. It only
// bounds the skew between cores (correctness holds for any value ≥ 1):
// small quanta synchronize often, large quanta let cores free-run between
// ordering points.
const DefaultQuantum = 8192

// Config tunes the engine.
type Config struct {
	// Quantum is the epoch length in simulated cycles (≤0 selects
	// DefaultQuantum). Any value ≥ 1 produces identical simulation
	// results; it is a host-performance knob only.
	Quantum int64
	// Stats, when non-nil, receives engine observability counters.
	Stats *Stats
}

// Stats reports what the engine did on a run.
type Stats struct {
	// GatedSections counts shared-hierarchy sections that went through
	// the ordering gate.
	GatedSections uint64
	// EpochBarriers counts epoch-barrier waits across all cores.
	EpochBarriers uint64
	// AbortedSharing is set when the run was abandoned because of a
	// cross-core invalidation; AbortedSync when a synchronization
	// instruction appeared.
	AbortedSharing bool
	AbortedSync    bool
}

// coreStop records how one core's goroutine ended.
type coreStop struct {
	timedOut bool
	// at is the core's stop cycle: its first not-executed step cycle.
	at int64
}

// Run simulates the streams (one per core) to completion under cfg with
// one goroutine per simulated core, and returns the result. ok is false
// when the run had to be abandoned because the workload's threads share
// data or synchronize; the caller must then rerun the scenario on
// multicore.Run with freshly built streams (generators are stateful).
// A completed run (ok=true) is bit-identical to the sequential driver's.
func Run(cfg multicore.RunConfig, opt Config, streams []trace.Stream) (multicore.Result, bool) {
	n := cfg.Machine.Cores
	if len(streams) != n {
		panic("parsim: stream count does not match core count")
	}
	if n == 1 {
		// Nothing to parallelize: the sequential single-core fast loop
		// is optimal.
		return multicore.Run(cfg, streams), true
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	quantum := opt.Quantum
	if quantum <= 0 {
		quantum = DefaultQuantum
	}

	mem := memhier.New(n, cfg.Machine.Mem, cfg.Perfect)
	bps := make([]*branch.Unit, n)
	for i := range bps {
		bps[i] = branch.NewUnit(cfg.Machine.Branch)
	}
	if cfg.WarmupInsts > 0 {
		warm := cfg.Warmup
		if warm == nil {
			warm = streams
		}
		wsp := cfg.Trace.Start("warmup").Arg("insts_per_core", int64(cfg.WarmupInsts))
		multicore.Warmup(mem, bps, warm, cfg.WarmupInsts)
		wsp.End()
	}

	g := newGate(n)
	if cfg.Trace != nil {
		// Per-core gate-wait accumulators feed the epoch spans; leaving
		// them nil keeps Enter free of clock reads when tracing is off.
		g.times = make([]gateTimes, n)
	}
	cores := multicore.BuildCores(cfg, bps, mem, syncTrap{g}, streams)
	mem.SetArbiter(g)
	defer mem.SetArbiter(nil)

	label := cfg.ModelName
	if label == "" {
		label = cfg.Model.String()
	}
	res := multicore.Result{Model: cfg.Model, ModelName: label, Cores: make([]multicore.CoreResult, n)}

	e := &engine{gate: g, quantum: quantum, maxCycles: maxCycles, interrupt: cfg.Interrupt, tr: cfg.Trace, hb: cfg.Heartbeat}
	if cfg.Heartbeat != nil {
		e.prog = make([]progSlot, n)
	}
	stops := make([]coreStop, n)
	var wg sync.WaitGroup
	msp := cfg.Trace.Start("measure")
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.runCore(i, cores[i], &stops[i])
		}(i)
	}
	wg.Wait()
	msp.Arg("epoch_barriers", int64(g.barriers.Load())).End()
	res.Wall = time.Since(start)

	if opt.Stats != nil {
		*opt.Stats = Stats{
			GatedSections:  g.enters.Load(),
			EpochBarriers:  g.barriers.Load(),
			AbortedSharing: g.abort.Load() == abortSharing,
			AbortedSync:    g.abort.Load() == abortSync,
		}
	}
	flushMetrics(g)
	if g.abort.Load() != abortNone {
		return res, false
	}
	res.Interrupted = g.stop.Load()

	// nowFinal mirrors the sequential driver's final global time for
	// cores that did not finish: the minimum over their stop cycles (the
	// first next-step cycle at or beyond the limit).
	nowFinal := int64(0)
	first := true
	for i, c := range cores {
		if c.Done() {
			continue
		}
		if stops[i].timedOut {
			res.TimedOut = true
		}
		if first || stops[i].at < nowFinal {
			nowFinal = stops[i].at
			first = false
		}
	}
	if cfg.KeepCores {
		res.Sim = cores
		res.Mem = mem
	}
	if res.Interrupted {
		// An interrupt abandons the ordering discipline, so cores stop
		// at skewed cycles; unlike a completed or timed-out run there is
		// no single consistent global stop time. Report each unfinished
		// core against its own stop cycle so the partial per-core IPCs
		// are at least internally consistent.
		finishInterrupted(&res, cores, stops)
		cfg.Heartbeat.Final(res.TotalRetired)
		return res, true
	}
	multicore.FinishResult(&res, cores, nowFinal)
	cfg.Heartbeat.Final(res.TotalRetired)
	return res, true
}

// finishInterrupted fills the result of an interrupted run: per-core
// retired counts and finish times, with each unfinished core measured at
// its own stop cycle.
func finishInterrupted(res *multicore.Result, cores []sim.Core, stops []coreStop) {
	for i, c := range cores {
		fin := c.FinishTime()
		if !c.Done() {
			fin = stops[i].at
		}
		res.Cores[i] = multicore.CoreResult{
			Retired: c.Retired(),
			Finish:  fin,
			IPC:     metrics.IPC(c.Retired(), fin),
		}
		res.TotalRetired += c.Retired()
		if fin > res.Cycles {
			res.Cycles = fin
		}
	}
}

// engine drives the per-core goroutines.
type engine struct {
	*gate
	quantum   int64
	maxCycles int64
	interrupt <-chan struct{}

	// tr receives per-epoch per-core spans (nil = no tracing). Spans
	// measure host wall-clock only and never touch simulated state, so
	// the bit-identity contract holds with tracing on.
	tr *obs.Tracer
	// hb receives throttled progress; prog is the per-core retired
	// counts, each on its own cache line, written by each core's own
	// goroutine and summed by core 0 (cross-goroutine Retired() calls
	// on live cores would race).
	hb   *obs.Heartbeat
	prog []progSlot
}

// progSlot is one core's published retired count on its own cache line.
type progSlot struct {
	v atomic.Uint64
	_ [7]int64
}

// runCore is one simulated core's stepping loop. It reproduces the
// sequential driver's effective step sequence for this core: Step at
// every cycle the core is active (all three built-in models no-op or are
// insensitive when stepped at other cycles, so the per-core schedule is
// equivalent to the global one), advancing by NextActive for
// time-skipping models and cycle by cycle otherwise.
func (e *engine) runCore(i int, c sim.Core, st *coreStop) {
	defer e.retire(i)
	ts, _ := c.(sim.TimeSkipper)
	t := int64(0)
	epochEnd := e.quantum
	if c.Done() {
		return
	}
	// ep is non-nil only when tracing: it emits one span per completed
	// epoch, splitting the wall time into stepping, barrier wait and
	// gate wait. poll folds progress publication into the existing
	// periodic interrupt check.
	var ep *epochTrack
	if e.tr != nil {
		ep = &epochTrack{e: e, core: i, epochStart: time.Now()}
	}
	poll := e.interrupt != nil || e.prog != nil
	for iter := uint(0); ; iter++ {
		if e.broken() {
			st.at = t
			ep.close(t)
			return
		}
		if t >= e.maxCycles {
			st.timedOut = true
			st.at = t
			ep.close(t)
			return
		}
		if t >= epochEnd {
			// Epoch barrier: before stepping into t's epoch, every
			// core must have left the epochs before it.
			target := t - t%e.quantum
			var bw0 time.Time
			if ep != nil {
				bw0 = time.Now()
			}
			if !e.waitReach(target) {
				continue // released by abort/interrupt: re-check flags
			}
			epochEnd = target + e.quantum
			if ep != nil {
				ep.barrier(target, bw0)
			}
		}
		c.Step(t)
		if c.Done() {
			ep.close(t)
			return
		}
		nt := t + 1
		if ts != nil {
			if na := ts.NextActive(nt); na > nt {
				nt = na
			}
		}
		e.publish(i, nt)
		t = nt
		if poll && iter&255 == 0 {
			if e.prog != nil {
				// Each core publishes its own retired count (reading a
				// live neighbour's would race); core 0 sums and ticks.
				e.prog[i].v.Store(c.Retired())
				if i == 0 {
					var sum uint64
					for j := range e.prog {
						sum += e.prog[j].v.Load()
					}
					e.hb.Tick(sum)
				}
			}
			if e.interrupt != nil {
				select {
				case <-e.interrupt:
					e.stop.Store(true)
				default:
				}
			}
		}
	}
}

// epochTrack is one core's per-epoch timing accumulator, allocated only
// when tracing is on. Methods on a nil *epochTrack no-op, mirroring the
// obs package's nil-safety so the stepping loop stays branch-light.
type epochTrack struct {
	e          *engine
	core       int
	epochStart time.Time
	baseWait   int64
	baseEnters uint64
}

// barrier closes the epoch that ended at the barrier: the span covers
// this core's stepping plus its barrier wait, with args splitting the
// wall time into step, barrier-wait and gate-wait components.
func (ep *epochTrack) barrier(cycle int64, bw0 time.Time) {
	now := time.Now()
	ep.emit(cycle, now, now.Sub(bw0).Nanoseconds())
}

// close emits the final partial epoch when the core finishes or stops.
func (ep *epochTrack) close(cycle int64) {
	if ep == nil {
		return
	}
	ep.emit(cycle, time.Now(), 0)
}

// emit records one epoch span and re-bases the accumulators.
func (ep *epochTrack) emit(cycle int64, now time.Time, barrierNS int64) {
	wait := ep.e.times[ep.core].waitNS.Load()
	enters := ep.e.times[ep.core].enters.Load()
	total := now.Sub(ep.epochStart).Nanoseconds()
	gateNS := wait - ep.baseWait
	stepNS := total - barrierNS - gateNS
	if stepNS < 0 {
		stepNS = 0
	}
	ep.e.tr.Add(obs.SpanRec{
		Name:    "epoch",
		TID:     ep.core,
		StartUS: ep.e.tr.Since(ep.epochStart),
		DurUS:   total / 1e3,
		Args: map[string]int64{
			"cycle":       cycle,
			"step_ns":     stepNS,
			"barrier_ns":  barrierNS,
			"gate_ns":     gateNS,
			"gate_enters": int64(enters - ep.baseEnters),
		},
	})
	ep.epochStart = now
	ep.baseWait = wait
	ep.baseEnters = enters
}
