package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// Encode is the service's canonical result encoding: the deterministic
// report.JSON summary. It is the cache's payload encoder, so cached and
// fresh results are byte-identical. Estimator-tier results carry their
// engine and tier in the payload; full-engine results stay untagged, so
// their payloads are byte-identical to a direct simrun.Run + report.JSON
// and an untagged payload always reads back as definitive.
func Encode(res simrun.Result) ([]byte, error) {
	if res.Engine != "" && res.Engine != simrun.DefaultEngine {
		return report.JSONTiered(res.Result, res.Engine, string(res.Tier))
	}
	return report.JSON(res.Result)
}

// DecodeTier recovers the fidelity tier of a persisted payload — the
// simrun cache's DecodeTier hook. Untagged payloads (full-engine results
// and payloads written before tiers existed) are definitive.
func DecodeTier(payload []byte) simrun.Tier {
	return simrun.Tier(report.PayloadTier(payload))
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON serves v with the API's standard headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
	w.Write([]byte("\n"))
}

// writeError serves the API's error shape.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := simrun.ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, dup, err := s.SubmitSpec(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var bad *BadRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	doc := job.Doc()
	w.Header().Set("Location", "/v1/jobs/"+doc.ID)
	status := http.StatusAccepted
	if dup {
		status = http.StatusOK
	}
	writeJSON(w, status, doc)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	docs := s.Jobs()
	type item struct {
		ID     string `json:"id"`
		Status Status `json:"status"`
	}
	items := make([]item, len(docs))
	for i, d := range docs {
		items[i] = item{ID: d.ID, Status: d.Status}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": items})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Doc())
}

// handleEvents streams job-status transitions as server-sent events: one
// "status" event per transition, starting with the current state, ending
// after the terminal state. Live heartbeats from the running simulation
// arrive between transitions as "progress" events, and fleet routing
// changes (worker assignment, retry, reassignment) as "dispatch" events,
// both carrying the same document shape (the changed field says which).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("simd: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events := job.Subscribe()
	last, lastRoute := "", ""
	for {
		select {
		case doc, open := <-events:
			if !open {
				return
			}
			raw, err := json.Marshal(doc)
			if err != nil {
				return
			}
			// A document whose status and tier match the previous event
			// is not a transition: a changed route (worker/attempt) makes
			// it a dispatch event, otherwise it is a progress heartbeat.
			key := string(doc.Status) + "|" + doc.Tier
			route := fmt.Sprintf("%s|%d|%s", doc.Worker, doc.Attempt, doc.Dispatch)
			event := "status"
			switch {
			case key != last:
				last, lastRoute = key, route
			case route != lastRoute:
				event = "dispatch"
				lastRoute = route
			case doc.Progress != nil:
				event = "progress"
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Catalog describes everything a client can ask the service to simulate.
// Engines lists the registered answering engines (Spec.Engine values) and
// Tiers the fidelity lattice their answers are tagged with, cheapest
// first.
type Catalog struct {
	Models     []string            `json:"models"`
	Engines    []string            `json:"engines"`
	Tiers      []string            `json:"tiers"`
	Knobs      map[string][]string `json:"knobs"`
	Benchmarks CatalogBenchmarks   `json:"benchmarks"`
}

// CatalogBenchmarks lists the benchmark profiles by suite.
type CatalogBenchmarks struct {
	SPEC   []string `json:"spec"`
	PARSEC []string `json:"parsec"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := Catalog{
		Models:  simrun.Models(),
		Engines: simrun.Engines(),
		Knobs:   simrun.Knobs(),
	}
	for _, t := range simrun.Tiers() {
		cat.Tiers = append(cat.Tiers, string(t))
	}
	for _, p := range workload.SPEC() {
		cat.Benchmarks.SPEC = append(cat.Benchmarks.SPEC, p.Name)
	}
	for _, p := range workload.PARSEC() {
		cat.Benchmarks.PARSEC = append(cat.Benchmarks.PARSEC, p.Name)
	}
	sort.Strings(cat.Benchmarks.SPEC)
	sort.Strings(cat.Benchmarks.PARSEC)
	writeJSON(w, http.StatusOK, cat)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition: the server's own
// registry (service traffic, queue occupancy, result-cache counters)
// merged with the process-wide registry (per-engine runs and wall-clock
// histograms, parsim counters, batch occupancy). Every family carries a
// correct `# TYPE` line — the registry knows each metric's kind, unlike
// the hand-rolled exporter this replaced.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteAll(w, s.reg, obs.Default())
}

// handleTrace serves the job's recorded lifecycle spans (queue wait,
// engine runs, cache store, tier upgrade — and, in coordinator mode,
// dispatch attempts with each worker's remote spans spliced onto named
// rows) as JSON. On nodes that disabled job traces the endpoint is a
// 404 that says how to turn them back on, not an empty 200 a caller
// could mistake for "this job did nothing".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no such job"))
		return
	}
	tr := job.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("simd: job traces are disabled on this node (restart with -job-trace to enable)"))
		return
	}
	spans := tr.Spans()
	if spans == nil {
		spans = []obs.SpanRec{}
	}
	doc := map[string]any{
		"job":     job.Doc().ID,
		"spans":   spans,
		"dropped": tr.Dropped(),
	}
	if rows := tr.TIDNames(); rows != nil {
		// Row labels for stitched fleet traces: tid 0 is the coordinator,
		// each dispatched-to worker has its own named row.
		doc["rows"] = rows
	}
	writeJSON(w, http.StatusOK, doc)
}
