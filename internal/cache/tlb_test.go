package cache

import (
	"testing"

	"repro/internal/config"
)

func smallTLB() *TLB {
	return NewTLB(config.TLB{Entries: 8, Assoc: 2, PageSize: 4096, MissLatency: 30})
}

func TestTLBMissInstallsTranslation(t *testing.T) {
	tlb := smallTLB()
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB access hit")
	}
	if !tlb.Access(0x1000) {
		t.Fatal("second access missed: translation not installed")
	}
	if !tlb.Access(0x1FFF) {
		t.Fatal("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Fatal("different page hit")
	}
	if tlb.Hits() != 2 || tlb.Misses() != 2 {
		t.Fatalf("stats %d/%d, want 2 hits / 2 misses", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := smallTLB()
	// Touch 16 pages; only 8 entries exist.
	for p := uint64(0); p < 16; p++ {
		tlb.Access(p * 4096)
	}
	hits := 0
	for p := uint64(0); p < 16; p++ {
		if tlb.Probe(p * 4096) {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("%d pages resident in an 8-entry TLB", hits)
	}
}

func TestTLBReset(t *testing.T) {
	tlb := smallTLB()
	tlb.Access(0x1000)
	tlb.Reset()
	if tlb.Probe(0x1000) {
		t.Fatal("translation survived Reset")
	}
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Fatal("stats survived Reset")
	}
}

func TestMSHRMergeAndExpiry(t *testing.T) {
	m := NewMSHR(2)
	if !m.Insert(0x100, 50, 0) {
		t.Fatal("first insert rejected")
	}
	if done, ok := m.Lookup(0x100, 10); !ok || done != 50 {
		t.Fatalf("lookup = (%d,%t), want (50,true)", done, ok)
	}
	// Secondary miss on the same line merges.
	if !m.Insert(0x100, 60, 10) {
		t.Fatal("merge rejected")
	}
	if m.Merged != 1 {
		t.Fatalf("Merged = %d, want 1", m.Merged)
	}
	// Entry expires at its completion time.
	if _, ok := m.Lookup(0x100, 50); ok {
		t.Fatal("entry alive at completion time")
	}
}

func TestMSHRFullRejects(t *testing.T) {
	m := NewMSHR(2)
	m.Insert(0x100, 100, 0)
	m.Insert(0x200, 100, 0)
	if m.Insert(0x300, 100, 0) {
		t.Fatal("insert into full MSHR accepted")
	}
	if m.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", m.Rejected)
	}
	// After expiry there is room again.
	if !m.Insert(0x300, 200, 150) {
		t.Fatal("insert after expiry rejected")
	}
}

func TestMSHROutstanding(t *testing.T) {
	m := NewMSHR(4)
	m.Insert(0x100, 100, 0)
	m.Insert(0x200, 150, 0)
	if n := m.Outstanding(0); n != 2 {
		t.Fatalf("outstanding = %d, want 2", n)
	}
	if n := m.Outstanding(120); n != 1 {
		t.Fatalf("outstanding after first expiry = %d, want 1", n)
	}
	m.Reset()
	if n := m.Outstanding(0); n != 0 {
		t.Fatalf("outstanding after reset = %d, want 0", n)
	}
}
