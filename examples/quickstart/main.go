// Quickstart: simulate one benchmark with interval simulation and compare
// it against the detailed cycle-level baseline on the same machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a benchmark profile — the synthetic stand-in for a SPEC
	// CPU2000 binary (here: gcc-like, branchy with a large code
	// footprint).
	profile := workload.SPECByName("gcc")

	// 2. Describe the machine: Table 1 of the paper, one core.
	machine := config.Default(1)

	// 3. Run the same instruction stream under both core models. The
	// streams are deterministic: both models see identical instructions
	// and drive identical branch-predictor and memory-hierarchy
	// simulators; only the core timing model differs.
	const n = 100_000
	for _, model := range []multicore.Model{multicore.Detailed, multicore.Interval} {
		stream := trace.NewLimit(workload.New(profile, 0, 1, 42), n)
		warm := workload.New(profile, 0, 1, 1042)
		res := multicore.Run(multicore.RunConfig{
			Machine:     machine,
			Model:       model,
			WarmupInsts: 600_000,
			Warmup:      []trace.Stream{warm},
		}, []trace.Stream{stream})

		fmt.Printf("%-9s IPC=%.3f cycles=%-8d wall=%-12v %.2f MIPS\n",
			res.Model, res.Cores[0].IPC, res.Cycles, res.Wall, res.MIPS())
	}

	fmt.Println()
	fmt.Println("Interval simulation replaces the cycle-accurate core model with a")
	fmt.Println("mechanistic analytical model: expect a close IPC at a much higher")
	fmt.Println("simulation speed.")
}
