// DRAM study: fixed-latency main memory (the paper's Table 1 model)
// versus a banked open-page DRAM with row buffers, across benchmarks with
// very different access patterns. Streaming codes ride the row buffer;
// pointer-chasing codes pay the conflict penalty — the kind of memory-
// system trade-off the interval model lets you sweep in seconds.
//
//	go run ./examples/dramstudy
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/memory"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 40_000
	benchmarks := []string{"swim", "mgrid", "gcc", "mcf"}

	fmt.Printf("%-8s %14s %14s %16s\n", "bench", "fixed IPC", "banked IPC", "row-hit rate")
	for _, name := range benchmarks {
		fixed := run(name, n, false)
		banked, hitRate := runBanked(name, n)
		fmt.Printf("%-8s %14.3f %14.3f %15.1f%%\n",
			name, fixed, banked, 100*hitRate)
	}

	fmt.Println()
	fmt.Println("swim/mgrid stream whole rows: the open page turns their misses into")
	fmt.Println("90-cycle row hits (faster than the 150-cycle flat model). mcf hops")
	fmt.Println("across rows: almost every access pays the 180-cycle conflict path.")
}

func run(name string, n int, banked bool) float64 {
	m := config.Default(1)
	if banked {
		m.Mem.DRAMKind = "banked"
	}
	p := workload.SPECByName(name)
	res := multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       multicore.Interval,
		WarmupInsts: 300_000,
		Warmup:      []trace.Stream{workload.New(p, 0, 1, 1042)},
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), n)})
	return res.Cores[0].IPC
}

func runBanked(name string, n int) (ipc, rowHitRate float64) {
	m := config.Default(1)
	m.Mem.DRAMKind = "banked"
	p := workload.SPECByName(name)
	res := multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       multicore.Interval,
		WarmupInsts: 300_000,
		Warmup:      []trace.Stream{workload.New(p, 0, 1, 1042)},
		KeepCores:   true,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), n)})
	if b, ok := res.Mem.DRAM().(*memory.Banked); ok {
		rowHitRate = b.RowHitRate()
	}
	return res.Cores[0].IPC, rowHitRate
}
