// Multi-threaded scaling study: run PARSEC-like benchmarks on 1-8 cores
// and report parallel speedup (the data behind the paper's Figure 7),
// including the synchronization effects — barriers, locks and load
// imbalance — that make some benchmarks stop scaling.
//
//	go run ./examples/parsecscale
package main

import (
	"context"
	"fmt"

	"repro/internal/simrun"
)

func run(bench string, cores int) simrun.Result {
	res, err := simrun.MustNew(bench,
		simrun.Cores(cores),
		simrun.Warmup(300_000),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	fmt.Println("PARSEC-like scaling (interval simulation, speedup over 1 core):")
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "benchmark", "1", "2", "4", "8")
	for _, name := range []string{"blackscholes", "streamcluster", "fluidanimate", "vips"} {
		var base int64
		row := fmt.Sprintf("%-14s", name)
		for _, cores := range []int{1, 2, 4, 8} {
			res := run(name, cores)
			if cores == 1 {
				base = res.Cycles
			}
			row += fmt.Sprintf(" %8.2f", float64(base)/float64(res.Cycles))
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("blackscholes scales almost linearly; streamcluster saturates the")
	fmt.Println("memory bus; fluidanimate pays for fine-grained locks; vips is held")
	fmt.Println("back by its serial pipeline stage.")
}
