// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the step-by-step single-threaded accuracy
// experiments (Figure 4), full single-threaded accuracy (Figure 5),
// multi-program STP/ANTT (Figure 6), multi-threaded PARSEC scaling
// (Figure 7), the 3D-stacking design-trade-off case study (Figure 8), and
// the simulation-speed comparisons (Figures 9 and 10), plus a one-IPC
// ablation. Each experiment returns a Table whose rows mirror the series
// the paper plots; cmd/experiments prints them and bench_test.go wraps them
// as benchmarks.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// Opts sizes the experiments. The paper simulates 100M-instruction
// SimPoints; the synthetic substrate reaches steady state much sooner, so
// the defaults are far smaller while preserving every qualitative result.
type Opts struct {
	// Ctx, when non-nil, cancels runs in flight (Ctrl-C handling in
	// cmd/experiments): cancellation panics with ErrInterrupted, which
	// front ends recover into a clean exit.
	Ctx context.Context
	// Insts is the per-thread instruction budget for SPEC-style runs.
	Insts int
	// Warmup is the functional warmup length per core.
	Warmup int
	// WorkScale scales PARSEC profiles' TotalWork (1.0 = profile value).
	WorkScale float64
	// Seed selects the deterministic workload instance.
	Seed int64
	// Jobs is the host worker-pool size for figures whose runs are
	// independent (0 or 1 = sequential). Simulated results are identical
	// at any setting; the wall-clock-speedup figures (9 and 10) always
	// run sequentially so their host-time measurements stay honest.
	Jobs int
}

// Defaults returns the standard experiment sizing.
func Defaults() Opts {
	return Opts{Insts: 50_000, Warmup: 600_000, WorkScale: 1, Seed: 42}
}

// Quick returns a reduced sizing for smoke runs.
func Quick() Opts {
	return Opts{Insts: 15_000, Warmup: 150_000, WorkScale: 0.25, Seed: 42}
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string   // e.g. "fig5"
	Title   string   // the paper artifact it reproduces
	Columns []string // column headers
	Rows    [][]string
	// Notes summarizes the expected shape and the measured aggregate
	// (average/max error, speedup range) for EXPERIMENTS.md.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
	}
	b.WriteString(strings.Join(header, "  "))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			cells[i] = pad(c, w)
		}
		b.WriteString(strings.Join(cells, "  "))
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "-- %s\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// expMaxCycles aborts runaway experiment runs.
const expMaxCycles = 500_000_000

// specScenario describes one SPEC profile run with the given perfect
// switches and predictor kind; extra options are appended.
func (o Opts) specScenario(p *workload.Profile, model string, cores int,
	perfect memhier.Perfect, predictor string, extra ...simrun.Option) *simrun.Scenario {
	opts := []simrun.Option{
		simrun.Model(model),
		simrun.Cores(cores),
		simrun.Insts(o.Insts),
		simrun.Warmup(o.Warmup),
		simrun.Seed(o.Seed),
		simrun.Perfect(perfect),
		simrun.MaxCycles(expMaxCycles),
	}
	if predictor != "" {
		opts = append(opts, simrun.Predictor(predictor))
	}
	return simrun.MustNew(p.Name, append(opts, extra...)...)
}

// parsecScenario describes one PARSEC profile run with one thread per core
// on machine m.
func (o Opts) parsecScenario(p *workload.Profile, model string, m config.Machine) *simrun.Scenario {
	// A zero WorkScale (an Opts built by hand) means "no scaling", as it
	// did before the simrun migration.
	scale := o.WorkScale
	if scale <= 0 {
		scale = 1
	}
	return simrun.MustNew(p.Name,
		simrun.Model(model),
		simrun.Machine(m),
		simrun.WorkScale(scale),
		simrun.Warmup(o.Warmup),
		simrun.Seed(o.Seed),
		simrun.MaxCycles(expMaxCycles),
	)
}

// runSpec runs one SPEC profile alone, synchronously.
func (o Opts) runSpec(p *workload.Profile, model string, cores int,
	perfect memhier.Perfect, predictor string) multicore.Result {
	return o.one(o.specScenario(p, model, cores, perfect, predictor))
}

// runParsec runs one PARSEC profile, synchronously.
func (o Opts) runParsec(p *workload.Profile, model string, m config.Machine) multicore.Result {
	return o.one(o.parsecScenario(p, model, m))
}

// ErrInterrupted is the panic value raised when Opts.Ctx is cancelled
// mid-experiment. Experiments are static tables driven through deep call
// chains, so cancellation unwinds as a panic; cmd front ends recover it
// and exit cleanly instead of printing a half-finished figure.
var ErrInterrupted = errors.New("experiments: interrupted")

// ctx returns the run context.
func (o Opts) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// checkRunErr separates cancellation (unwound as ErrInterrupted) from
// real failures (bugs: the scenarios are static tables).
func checkRunErr(name string, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		panic(ErrInterrupted)
	}
	panic(fmt.Sprintf("experiments: %s: %v", name, err))
}

// one executes a single scenario; experiment scenarios are built from
// static tables, so a failure is a bug, not an input error.
func (o Opts) one(s *simrun.Scenario) multicore.Result {
	res, err := s.Run(o.ctx())
	checkRunErr(s.Name(), err)
	return res.Result
}

// runAll executes independent scenarios across Opts.Jobs host workers and
// returns their results in input order.
func (o Opts) runAll(scs []*simrun.Scenario) []multicore.Result {
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	batch := simrun.Batch(o.ctx(), scs, simrun.BatchOpts{Workers: jobs})
	out := make([]multicore.Result, len(batch))
	for i, r := range batch {
		checkRunErr(r.Scenario.Name(), r.Err)
		out[i] = r.Result.Result
	}
	return out
}

// f3 formats a float at 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float at 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
