package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/multicore"
	"repro/internal/simrun"
	"repro/internal/statsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The statistical engine's work is bounded by these constants, not by
// the scenario's instruction budget: that bound is the whole point. A
// 200M-instruction scenario costs the same ~1.1M generated/simulated
// instructions as a 1M one, which is what makes the tier answer in well
// under a second while the full run takes tens of seconds.
const (
	// statProfileWarm functionally warms the profiler's internal caches
	// before counting, so the profiled locality is steady-state. Sized
	// like a real run's warmup — a short warm leaves the profiled window
	// colder than the stream the estimate stands in for.
	statProfileWarm = 200_000
	// statProfileWindow caps the profiled window of the real stream.
	statProfileWindow = 400_000
	// statCloneLen caps the timed synthetic clone. Long clones matter:
	// the clone starts from cold structures, and a short clone's
	// transient dominates its mean CPI (100k was nearly 2x too
	// pessimistic on warm long-running benchmarks).
	statCloneLen = 400_000
	// statWarmCloneLen sizes the clone's warmup twin.
	statWarmCloneLen = 100_000
	// statSeedOffset separates the clone's seed space from the
	// workload's, so the clone never accidentally replays the generator.
	statSeedOffset = 0x57a7
)

func statisticalEngine() simrun.EngineDef {
	return simrun.EngineDef{
		Name:     "statistical",
		Tier:     func(*simrun.Scenario) simrun.Tier { return simrun.TierStatistical },
		Cost:     statisticalCost,
		Supports: singleProgram,
		Run:      statisticalRun,
	}
}

// statisticalCost is budget-independent: profile window plus clone,
// both fixed.
func statisticalCost(s *simrun.Scenario) float64 {
	return float64(statProfileWarm + statProfileWindow + statCloneLen + statWarmCloneLen)
}

// statisticalRun is statistical simulation end to end: profile, clone,
// time the clone under the scenario's own core model and machine, and
// extrapolate the clone's IPC to the scenario's full budget.
func statisticalRun(ctx context.Context, s *simrun.Scenario) (simrun.Result, error) {
	start := time.Now()
	budget := s.InstBudget()

	// Profile a fixed window of the real stream (thread 0 of 1, the
	// scenario's own seed), warmed so locality is steady-state. The
	// window is NOT scaled down to small budgets: an underfed profile
	// misrepresents locality badly (several-fold IPC error), and the
	// fixed window is what makes the cost budget-independent anyway.
	prof := statsim.CollectWarm(workload.New(s.Profile(), 0, 1, s.SeedValue()), statProfileWarm, statProfileWindow)
	if prof.Total == 0 {
		return simrun.Result{}, fmt.Errorf("engine: statistical: empty profile for %q", s.Name())
	}

	// Deterministic for (profile, length, seed): the clone and its
	// warmup twin are pure functions of the scenario.
	seed := s.SeedValue() + statSeedOffset
	clone := statsim.NewClone(prof, statCloneLen, seed)
	warmTwin := statsim.NewClone(prof, statWarmCloneLen, seed+1)

	machine, err := s.ResolvedMachine()
	if err != nil {
		return simrun.Result{}, err
	}
	sub, err := simrun.New("",
		simrun.Streams([]trace.Stream{clone}, []trace.Stream{warmTwin}),
		simrun.Model(s.ModelName()),
		simrun.Machine(machine),
		simrun.Warmup(statWarmCloneLen),
		simrun.Label(s.Name()+" (statistical clone)"),
	)
	if err != nil {
		return simrun.Result{}, err
	}
	res, err := sub.Run(ctx)
	if err != nil {
		return res, err
	}
	if res.Cycles <= 0 || res.TotalRetired == 0 {
		return simrun.Result{}, fmt.Errorf("engine: statistical: clone of %q timed nothing", s.Name())
	}

	// Extrapolate: the clone's IPC stands in for the whole budget's.
	ipc := float64(res.TotalRetired) / float64(res.Cycles)
	cycles := int64(float64(budget)/ipc + 0.5)
	return simrun.Result{Result: multicore.Result{
		Model:        res.Model,
		ModelName:    res.ModelName,
		Cycles:       cycles,
		Cores:        []multicore.CoreResult{{Retired: uint64(budget), Finish: cycles, IPC: ipc}},
		TotalRetired: uint64(budget),
		Wall:         time.Since(start),
	}}, nil
}
