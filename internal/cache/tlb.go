package cache

import (
	"fmt"

	"repro/internal/config"
)

// TLB is a set-associative translation lookaside buffer. It reuses the
// cache line model at page granularity: a "line" is one page translation.
type TLB struct {
	cfg   config.TLB
	inner *Cache
}

// NewTLB creates a TLB with the given geometry.
func NewTLB(cfg config.TLB) *TLB {
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic(fmt.Sprintf("tlb: page size %d is not a power of two", cfg.PageSize))
	}
	inner := New(config.Cache{
		SizeBytes: cfg.Entries * cfg.PageSize,
		Assoc:     cfg.Assoc,
		LineSize:  cfg.PageSize,
	})
	return &TLB{cfg: cfg, inner: inner}
}

// Config returns the TLB geometry.
func (t *TLB) Config() config.TLB { return t.cfg }

// Access translates addr: it returns true on a TLB hit. On a miss the
// translation is installed (the page walk itself is timed by the caller
// using Config().MissLatency).
func (t *TLB) Access(addr uint64) bool {
	if t.inner.Access(addr, false) {
		return true
	}
	t.inner.Fill(addr, false)
	return false
}

// Probe reports presence without side effects.
func (t *TLB) Probe(addr uint64) bool { return t.inner.Probe(addr) }

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.inner.Hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.inner.Misses }

// Reset empties the TLB and clears statistics.
func (t *TLB) Reset() { t.inner.Reset() }

// MSHR is a file of miss status holding registers: it tracks line addresses
// with misses outstanding until a given time, so that overlapping requests
// to the same line merge instead of issuing duplicate fills. The timing
// models use it to bound memory-level parallelism and to give secondary
// misses the residual latency of the primary miss.
//
// The file is a fixed array whose live entries are kept in a dense prefix —
// it is small (tens of entries, like the hardware), the typical number of
// concurrently outstanding misses is a handful, and a short scan beats a Go
// map with its per-access expiry iteration on the miss path.
type MSHR struct {
	pending  []mshrEntry
	live     int    // entries [0:live) are outstanding
	Merged   uint64 // secondary misses merged into a primary
	Rejected uint64 // misses rejected because the file was full
}

type mshrEntry struct {
	line       uint64
	completion int64
}

// NewMSHR creates an MSHR file with the given number of entries.
func NewMSHR(entries int) *MSHR {
	return &MSHR{pending: make([]mshrEntry, entries)}
}

// expire drops entries whose miss completed at or before now. Expiry is
// permanent — observed-complete entries stay dead even for a caller whose
// clock later restarts (the sampling harness re-times units from zero over
// a persistent hierarchy), matching the map deletion it replaces. Entry
// order within the prefix is insignificant, exactly as map order was.
func (m *MSHR) expire(now int64) {
	for i := 0; i < m.live; {
		if m.pending[i].completion <= now {
			m.live--
			m.pending[i] = m.pending[m.live]
			continue
		}
		i++
	}
}

// Lookup returns the completion time of an outstanding miss on lineAddr, if
// any, after discarding entries that completed at or before now.
func (m *MSHR) Lookup(lineAddr uint64, now int64) (completion int64, ok bool) {
	m.expire(now)
	for i := 0; i < m.live; i++ {
		if m.pending[i].line == lineAddr {
			return m.pending[i].completion, true
		}
	}
	return 0, false
}

// Insert records a miss on lineAddr completing at completion. It reports
// false if the file is full (the caller should stall the request).
func (m *MSHR) Insert(lineAddr uint64, completion int64, now int64) bool {
	m.expire(now)
	for i := 0; i < m.live; i++ {
		if m.pending[i].line == lineAddr {
			m.Merged++
			return true
		}
	}
	if m.live == len(m.pending) {
		m.Rejected++
		return false
	}
	m.pending[m.live] = mshrEntry{line: lineAddr, completion: completion}
	m.live++
	return true
}

// Outstanding returns the number of live entries at time now.
func (m *MSHR) Outstanding(now int64) int {
	m.expire(now)
	return m.live
}

// Reset empties the file and clears statistics.
func (m *MSHR) Reset() {
	m.live = 0
	m.Merged, m.Rejected = 0, 0
}

// ResetStats clears the TLB statistics without touching contents.
func (t *TLB) ResetStats() { t.inner.ResetStats() }
