package branch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestLocalLearnsLoop(t *testing.T) {
	l := NewLocal(64, 12, 4096)
	// A loop branch: taken 7 times, then not taken, repeating. A 12-bit
	// local history distinguishes every position, so after training the
	// predictor should be nearly perfect.
	pc := uint64(0x40)
	miss := 0
	for iter := 0; iter < 200; iter++ {
		for k := 0; k < 8; k++ {
			taken := k != 7
			if l.Predict(pc, taken) != taken && iter > 10 {
				miss++
			}
		}
	}
	if miss > 10 {
		t.Fatalf("local predictor missed %d times on a trained loop", miss)
	}
}

func TestLocalBiased(t *testing.T) {
	l := NewLocal(64, 12, 4096)
	rng := rand.New(rand.NewSource(7))
	miss := 0
	n := 2000
	for i := 0; i < n; i++ {
		taken := rng.Float64() < 0.95
		if l.Predict(0x80, taken) != taken {
			miss++
		}
	}
	if rate := float64(miss) / float64(n); rate > 0.15 {
		t.Fatalf("miss rate %.2f on a 95%%-biased branch, want < 0.15", rate)
	}
}

func TestGShareLearnsAlternating(t *testing.T) {
	g := NewGShare(4096, 12)
	miss := 0
	for i := 0; i < 500; i++ {
		taken := i%2 == 0
		if g.Predict(0x100, taken) != taken && i > 50 {
			miss++
		}
	}
	if miss > 10 {
		t.Fatalf("gshare missed %d times on an alternating branch", miss)
	}
}

func TestBimodalBias(t *testing.T) {
	b := NewBimodal(1024)
	for i := 0; i < 10; i++ {
		b.Predict(0x200, true)
	}
	if !b.Predict(0x200, true) {
		t.Fatal("bimodal not saturated taken after training")
	}
}

func TestPerfectNeverWrong(t *testing.T) {
	p := Perfect{}
	for i := 0; i < 100; i++ {
		taken := i%3 == 0
		if p.Predict(uint64(i), taken) != taken {
			t.Fatal("perfect predictor was wrong")
		}
	}
}

func TestBTBHitMissAndUpdate(t *testing.T) {
	b := NewBTB(64, 4)
	if present, _ := b.Lookup(0x400, 0x800); present {
		t.Fatal("cold BTB lookup present")
	}
	b.Update(0x400, 0x800)
	present, match := b.Lookup(0x400, 0x800)
	if !present || !match {
		t.Fatalf("lookup after update = (%t,%t)", present, match)
	}
	_, match = b.Lookup(0x400, 0x900)
	if match {
		t.Fatal("stale target matched")
	}
}

func TestRASMatchedCallsReturns(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Fatalf("pop = (%#x,%t), want 0x200", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Fatalf("pop = (%#x,%t), want 0x100", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty RAS succeeded")
	}
}

func TestRASOverflowWrapsLikeHardware(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x1)
	r.Push(0x2)
	r.Push(0x3) // overwrites the oldest
	if a, _ := r.Pop(); a != 0x3 {
		t.Fatalf("pop = %#x, want 0x3", a)
	}
	if a, _ := r.Pop(); a != 0x2 {
		t.Fatalf("pop = %#x, want 0x2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("depth not bounded by capacity")
	}
}

func unitCfg(kind string) config.BranchPredictor {
	c := config.Default(1).Branch
	c.Kind = kind
	return c
}

func TestUnitDeepCallChain(t *testing.T) {
	u := NewUnit(unitCfg("local"))
	// Matched call/return nesting within RAS depth never mispredicts
	// returns once the direction predictor knows calls are taken.
	var addrs []uint64
	misses := 0
	for rep := 0; rep < 20; rep++ {
		for d := 0; d < 8; d++ {
			pc := uint64(0x1000 + d*4)
			in := isa.Inst{Class: isa.Call, PC: pc, Taken: true, Target: 0x8000}
			u.Predict(&in)
			addrs = append(addrs, pc+4)
		}
		for d := 7; d >= 0; d-- {
			ret := isa.Inst{Class: isa.Return, PC: 0x9000, Taken: true, Target: addrs[len(addrs)-1]}
			addrs = addrs[:len(addrs)-1]
			if u.Predict(&ret) && rep > 2 {
				misses++
			}
		}
	}
	if misses != 0 {
		t.Fatalf("%d return mispredictions on matched calls", misses)
	}
}

func TestUnitReturnMispredictOnEmptyRAS(t *testing.T) {
	u := NewUnit(unitCfg("local"))
	ret := isa.Inst{Class: isa.Return, PC: 0x10, Taken: true, Target: 0x20}
	if !u.Predict(&ret) {
		t.Fatal("return with empty RAS predicted correctly")
	}
}

func TestUnitBTBMissOnFirstTaken(t *testing.T) {
	u := NewUnit(unitCfg("bimodal"))
	br := isa.Inst{Class: isa.Branch, PC: 0x40, Taken: true, Target: 0x80}
	// First encounter: even if direction guesses taken, the target is
	// unknown -> misfetch. Train until direction saturates, then the
	// BTB should supply the target.
	u.Predict(&br)
	u.Predict(&br)
	u.Predict(&br)
	if u.Predict(&br) {
		t.Fatal("trained taken branch with known target mispredicted")
	}
}

func TestUnitPerfectIgnoresStructures(t *testing.T) {
	u := NewUnit(unitCfg("perfect"))
	for i := 0; i < 50; i++ {
		in := isa.Inst{Class: isa.Return, PC: uint64(i), Taken: true, Target: uint64(i * 16)}
		if u.Predict(&in) {
			t.Fatal("perfect unit mispredicted a return")
		}
	}
	if u.MispredictRate() != 0 {
		t.Fatal("perfect unit has nonzero mispredict rate")
	}
}

func TestUnitStatsAndReset(t *testing.T) {
	u := NewUnit(unitCfg("local"))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		in := isa.Inst{Class: isa.Branch, PC: uint64(rng.Intn(16)) * 4, Taken: rng.Intn(2) == 0, Target: 0x1234}
		u.Predict(&in)
	}
	if u.Lookups != 500 {
		t.Fatalf("lookups = %d, want 500", u.Lookups)
	}
	if u.Mispredictions == 0 {
		t.Fatal("random branches produced zero mispredictions")
	}
	u.ResetStats()
	if u.Lookups != 0 || u.Mispredictions != 0 {
		t.Fatal("ResetStats left counters")
	}
	u.Reset()
	if u.MispredictRate() != 0 {
		t.Fatal("Reset left rate")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown predictor kind did not panic")
		}
	}()
	NewUnit(unitCfg("nonsense"))
}

// Property: any direction predictor, given a perfectly biased branch,
// converges to at most a handful of mispredictions after warmup.
func TestQuickPredictorsConvergeOnConstantBranch(t *testing.T) {
	f := func(pcSeed uint16, taken bool) bool {
		pc := uint64(pcSeed) * 4
		for _, d := range []DirectionPredictor{
			NewLocal(64, 12, 1024), NewGShare(1024, 8), NewBimodal(512),
		} {
			miss := 0
			for i := 0; i < 100; i++ {
				if d.Predict(pc, taken) != taken && i > 10 {
					miss++
				}
			}
			if miss != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTournamentBeatsComponentsOnMixedBranches(t *testing.T) {
	// Branch A is pattern-based (gshare territory), branch B is biased
	// (bimodal territory): the tournament should track both well.
	tour := NewTournament(4096, 12)
	rng := rand.New(rand.NewSource(11))
	miss := 0
	n := 4000
	for i := 0; i < n; i++ {
		// A: alternating pattern.
		ta := i%2 == 0
		if tour.Predict(0x100, ta) != ta && i > 400 {
			miss++
		}
		// B: 95% biased.
		tb := rng.Float64() < 0.95
		if tour.Predict(0x200, tb) != tb && i > 400 {
			miss++
		}
	}
	if rate := float64(miss) / float64(2*(n-400)); rate > 0.08 {
		t.Fatalf("tournament miss rate %.3f on mixed branches", rate)
	}
}

func TestTournamentChooserAdapts(t *testing.T) {
	tour := NewTournament(1024, 10)
	// Pure alternating branch: gshare learns it, bimodal cannot; after
	// training the tournament must be near-perfect.
	miss := 0
	for i := 0; i < 1000; i++ {
		taken := i%2 == 0
		if tour.Predict(0x40, taken) != taken && i > 100 {
			miss++
		}
	}
	if miss > 10 {
		t.Fatalf("tournament missed %d times on an alternating branch", miss)
	}
}

func TestUnitTournamentKind(t *testing.T) {
	u := NewUnit(unitCfg("tournament"))
	in := isa.Inst{Class: isa.Branch, PC: 0x80, Taken: true, Target: 0x100}
	for i := 0; i < 20; i++ {
		u.Predict(&in)
	}
	if u.Lookups != 20 {
		t.Fatalf("lookups = %d", u.Lookups)
	}
}
