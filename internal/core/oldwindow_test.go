package core

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

func ow() *OldWindow {
	return NewOldWindow(config.Default(1).Core)
}

func alu(src1, src2, dst uint8) *isa.Inst {
	return &isa.Inst{Class: isa.IntALU, Src1: src1, Src2: src2, Dst: dst}
}

func TestEmptyWindowFullRate(t *testing.T) {
	w := ow()
	if got := w.DispatchRate(); got != 4 {
		t.Fatalf("empty-window rate = %v, want width 4", got)
	}
}

func TestIndependentInstructionsKeepFullRate(t *testing.T) {
	w := ow()
	for i := 0; i < 300; i++ {
		w.Insert(alu(isa.RegNone, isa.RegNone, uint8(8+i%32)), 0, int64(i/4))
	}
	if got := w.DispatchRate(); got != 4 {
		t.Fatalf("independent stream rate = %v, want 4", got)
	}
	if w.CriticalPath() != 1 {
		t.Fatalf("critical path = %d, want 1 (all issue at 0)", w.CriticalPath())
	}
}

func TestSerialChainLimitsRate(t *testing.T) {
	w := ow()
	// Every instruction reads the previous one's output: pure serial
	// chain, latency 1 each. After the window fills, the rate must
	// approach W/CP = 256/256 = ~1.
	for i := 0; i < 600; i++ {
		w.Insert(alu(10, isa.RegNone, 10), 0, int64(i/4))
	}
	rate := w.DispatchRate()
	if rate < 0.9 || rate > 1.2 {
		t.Fatalf("serial chain rate = %v, want ~1", rate)
	}
}

func TestLoadLatencyLengthensChain(t *testing.T) {
	wFast := ow()
	wSlow := ow()
	for i := 0; i < 600; i++ {
		in := &isa.Inst{Class: isa.Load, Src1: 10, Src2: isa.RegNone, Dst: 10}
		wFast.Insert(in, 2, int64(i/4))
		wSlow.Insert(in, 18, int64(i/4)) // chained L2 hits
	}
	if wSlow.DispatchRate() >= wFast.DispatchRate() {
		t.Fatalf("L2-hit chain rate %v not below L1-hit chain rate %v",
			wSlow.DispatchRate(), wFast.DispatchRate())
	}
}

func TestBranchResolutionShortForReadyOperands(t *testing.T) {
	w := ow()
	for i := 0; i < 100; i++ {
		w.Insert(alu(isa.RegNone, isa.RegNone, uint8(8+i%8)), 0, int64(i/4))
	}
	br := &isa.Inst{Class: isa.Branch, Src1: 8, Src2: isa.RegNone}
	// Operands long since computed: resolution is the branch's own
	// execution latency.
	if got := w.BranchResolution(br, 25); got != 1 {
		t.Fatalf("resolution = %d, want 1", got)
	}
}

func TestBranchResolutionTracksChain(t *testing.T) {
	w := ow()
	// Build a dependence chain ending just before the branch, dispatched
	// all at once (dispatch time 0): the chain has not executed yet.
	for i := 0; i < 20; i++ {
		w.Insert(alu(10, isa.RegNone, 10), 0, 0)
	}
	br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone}
	got := w.BranchResolution(br, 0)
	if got < 20 || got > 22 {
		t.Fatalf("resolution = %d, want ~21 (20-deep chain + branch)", got)
	}
	// The same branch dispatching 30 cycles later: chain has executed.
	if got := w.BranchResolution(br, 30); got != 1 {
		t.Fatalf("late resolution = %d, want 1", got)
	}
}

func TestDrainTime(t *testing.T) {
	w := ow()
	if got := w.DrainTime(0); got != 1 {
		t.Fatalf("empty drain = %d, want 1", got)
	}
	// 40 independent instructions dispatched at once: drain bounded by
	// width: ceil(40/4) = 10.
	for i := 0; i < 40; i++ {
		w.Insert(alu(isa.RegNone, isa.RegNone, uint8(8+i%8)), 0, 0)
	}
	if got := w.DrainTime(0); got != 10 {
		t.Fatalf("width-bound drain = %d, want 10", got)
	}
	// A serial chain of 40: drain is the remaining chain length.
	w2 := ow()
	for i := 0; i < 40; i++ {
		w2.Insert(alu(10, isa.RegNone, 10), 0, 0)
	}
	if got := w2.DrainTime(0); got != 40 {
		t.Fatalf("chain-bound drain = %d, want 40", got)
	}
	// After the chain has had 35 cycles to execute, only 5 remain.
	if got := w2.DrainTime(35); got != 10 {
		t.Fatalf("partially executed drain = %d, want 10 (width bound)", got)
	}
}

func TestEmptyResetsEverything(t *testing.T) {
	w := ow()
	for i := 0; i < 50; i++ {
		w.Insert(alu(10, isa.RegNone, 10), 0, 0)
	}
	w.Empty()
	if w.Len() != 0 || w.CriticalPath() != 1 || w.DispatchRate() != 4 {
		t.Fatal("Empty left state behind")
	}
	br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone}
	if got := w.BranchResolution(br, 0); got != 1 {
		t.Fatalf("resolution after Empty = %d, want 1 (interval-length effect)", got)
	}
}

func TestEvictionBoundsLen(t *testing.T) {
	w := ow()
	for i := 0; i < 1000; i++ {
		w.Insert(alu(isa.RegNone, isa.RegNone, 8), 0, int64(i/4))
	}
	if w.Len() != 256 {
		t.Fatalf("len = %d, want ROB size 256", w.Len())
	}
}

// Property: the critical path never decreases as dependent instructions are
// inserted, and the rate never exceeds the dispatch width.
func TestQuickRateBounded(t *testing.T) {
	f := func(ops []uint16) bool {
		w := ow()
		lastCP := int64(0)
		for i, op := range ops {
			src := uint8(op&31) + 8
			dst := uint8((op>>5)&31) + 8
			w.Insert(alu(src, isa.RegNone, dst), 0, int64(i/4))
			r := w.DispatchRate()
			if r <= 0 || r > 4 {
				return false
			}
			cp := w.CriticalPath()
			if cp < 1 {
				return false
			}
			_ = lastCP
			lastCP = cp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: branch resolution is at least the branch latency and at most
// the full dataflow height of the window.
func TestQuickResolutionBounds(t *testing.T) {
	f := func(chain uint8, disp uint8) bool {
		w := ow()
		n := int(chain%64) + 1
		for i := 0; i < n; i++ {
			w.Insert(alu(10, isa.RegNone, 10), 0, 0)
		}
		br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone}
		res := w.BranchResolution(br, int64(disp))
		return res >= 1 && res <= int64(n)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
