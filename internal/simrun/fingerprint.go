package simrun

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/memhier"
)

// fingerprintVersion invalidates every stored fingerprint when the
// simulated semantics of a scenario change (new knob, changed default,
// stream-format break): bump it and old cache entries simply stop
// matching, so a result computed under the old semantics is never served
// for a new submission. The bump policy is documented in
// docs/formats.md.
//
// v2: workload stream format v2 — Mix copies run in disjoint
// address-space slots, changing every Mix scenario's simulated outcome.
//
// v3: workload stream format v3 — the generator's sequential splitmix64
// walk became a counter-based RNG with chunked state resets and the
// math.Log geometric sampling became alias tables, changing every
// generated instruction stream and therefore every scenario's simulated
// outcome.
const fingerprintVersion = 3

// FingerprintVersion is the current scenario-fingerprint generation,
// exported so front ends can report which generation their caches are
// keyed under.
const FingerprintVersion = fingerprintVersion

// fingerprintBody is the canonical serialization the fingerprint hashes.
// It captures everything that determines the simulated outcome — the
// fully-resolved machine, the workload selection and sizing, the model
// name and the result shape (keepCores) — and nothing that does not: the
// display label and host-side settings (batch workers, timeouts) are
// deliberately absent.
type fingerprintBody struct {
	Version   int             `json:"v"`
	Model     string          `json:"model"`
	Bench     string          `json:"bench"`
	Mix       []string        `json:"mix,omitempty"`
	Threads   int             `json:"threads"`
	Insts     int             `json:"insts"`
	Warmup    int             `json:"warmup"`
	Seed      int64           `json:"seed"`
	Scale     float64         `json:"scale"`
	MaxCycles int64           `json:"max_cycles"`
	KeepCores bool            `json:"keep_cores"`
	Perfect   memhier.Perfect `json:"perfect"`
	Ablation  core.Options    `json:"ablation"`
	Machine   config.Machine  `json:"machine"`
}

// Fingerprint returns the scenario's content address: a deterministic
// SHA-256 (hex) of the fully-resolved scenario and machine configuration.
// Two scenarios with the same fingerprint simulate identically, however
// differently they were spelled (explicit Machine vs knob options,
// defaulted vs explicit seed). Scenarios built from explicit Streams are
// stateful and have no fingerprint.
func (s *Scenario) Fingerprint() (string, error) {
	return s.fingerprintAt(fingerprintVersion)
}

// fingerprintAt hashes the scenario under an explicit fingerprint
// version. Only the current version is ever served; the seam exists so
// tests can compute what a stale (v1) cache key would have been and
// prove it never collides with the current one.
func (s *Scenario) fingerprintAt(version int) (string, error) {
	if s.streams != nil {
		return "", fmt.Errorf("simrun: scenario %q uses explicit streams and cannot be fingerprinted", s.Name())
	}
	m, err := s.ResolvedMachine()
	if err != nil {
		return "", err
	}
	body := fingerprintBody{
		Version:   version,
		Model:     s.model,
		Bench:     s.bench,
		Mix:       s.mix,
		Threads:   s.Threads(),
		Insts:     s.insts,
		Warmup:    s.warmup,
		Seed:      s.seed,
		Scale:     s.scale,
		MaxCycles: s.maxCycles,
		KeepCores: s.keepCores,
		Perfect:   s.perfect,
		Ablation:  s.ablation,
		Machine:   m,
	}
	// encoding/json marshals struct fields in declaration order, so the
	// serialization is canonical for a given fingerprintVersion.
	raw, err := json.Marshal(body)
	if err != nil {
		return "", fmt.Errorf("simrun: fingerprint: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
