package simrun

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// CacheSource says where a GetOrRun result came from.
type CacheSource string

const (
	// SourceRun: a cache miss; the simulator executed the scenario.
	SourceRun CacheSource = "run"
	// SourceMemory: served from the in-memory LRU.
	SourceMemory CacheSource = "memory"
	// SourceDisk: served from the persistent payload store. Only the
	// encoded payload survives a process restart, so Result is zero.
	SourceDisk CacheSource = "disk"
	// SourceFlight: an identical scenario was already running; this
	// caller waited for it and shares its result.
	SourceFlight CacheSource = "flight"
	// SourceUncached: the scenario has no fingerprint (explicit
	// streams), so it ran directly and was not stored.
	SourceUncached CacheSource = "uncached"
)

// CacheEntry is one cached (or just-computed) scenario outcome.
type CacheEntry struct {
	// Key is the scenario fingerprint ("" for uncacheable scenarios).
	Key string
	// Source says how the entry was obtained.
	Source CacheSource
	// Tier is the fidelity tier of the stored answer. The empty tier
	// (payloads written before tiers existed, or caches without a
	// DecodeTier hook) is definitive: it was produced by the full
	// engine and is never replaced.
	Tier Tier
	// Result is the full run result. Zero when the entry was restored
	// from the persistent store (Source SourceDisk, and later
	// SourceMemory/SourceFlight hits of such entries): live core models
	// do not survive a restart, only the payload does.
	Result Result
	// Payload is the canonical encoding of the result under
	// CacheOpts.Encode (nil when no encoder is configured). Identical
	// scenarios always see byte-identical payloads.
	Payload []byte
}

// CacheStats counts cache traffic. Runs is the number of times the
// simulator actually executed — the dedup guarantee under test is
// "identical submissions, Runs == 1".
type CacheStats struct {
	Runs     uint64 // simulator executions (misses)
	Hits     uint64 // in-memory LRU hits
	DiskHits uint64 // persistent-store hits
	Waits    uint64 // callers that piggybacked on an in-flight run
	Uncached uint64 // scenarios without a fingerprint, run directly
	Upgrades uint64 // entries replaced in place by a higher tier
	// Quarantined counts persisted payloads that failed the integrity
	// check on load and were renamed aside instead of served.
	Quarantined uint64
}

// CacheOpts configures NewCache.
type CacheOpts struct {
	// Entries bounds the in-memory LRU (<=0 selects 256).
	Entries int
	// Dir, when non-empty, persists encoded payloads as
	// <dir>/<fingerprint>.json so identical scenarios hit across
	// process restarts. Requires Encode.
	Dir string
	// Encode renders a result to its canonical payload (for example
	// report.JSON). Required for Dir; optional otherwise.
	Encode func(Result) ([]byte, error)
	// DecodeTier recovers the fidelity tier of a persisted payload so a
	// restart never serves an estimator-tier answer to a full-tier
	// request. Nil treats every disk payload as definitive — correct
	// for caches that only ever store full-engine results.
	DecodeTier func([]byte) Tier
}

// Cache is a content-addressed result cache over scenario fingerprints:
// an in-memory LRU of full results, an optional on-disk payload store,
// and singleflight deduplication so N concurrent submissions of the same
// scenario cost one simulation.
//
// Entries are tier-aware: one cache key per scenario, each entry tagged
// with the fidelity tier of the answer it holds. A lookup is a hit only
// when the stored tier satisfies the requesting engine's tier, and a
// store only ever replaces an entry with a strictly higher tier — the
// upgrade-only invariant that lets a serving layer answer cheap first
// and silently improve the same slot when the full run lands.
type Cache struct {
	entries    int
	dir        string
	encode     func(Result) ([]byte, error)
	decodeTier func([]byte) Tier

	mu     sync.Mutex
	lru    *list.List               // of *cacheSlot, front = most recent
	byKey  map[string]*list.Element // fingerprint -> lru element
	flight map[string]*flightCall   // fingerprint+tier -> in-flight run

	runs, hits, diskHits, waits, uncached, upgrades, quarantined atomic.Uint64
}

type cacheSlot struct {
	key     string
	tier    Tier
	result  Result
	payload []byte
}

type flightCall struct {
	done  chan struct{}
	entry CacheEntry
	err   error
}

// NewCache builds a cache. With a Dir, the directory is created eagerly
// so a bad path fails at startup, not on the first store.
func NewCache(opts CacheOpts) (*Cache, error) {
	if opts.Dir != "" && opts.Encode == nil {
		return nil, fmt.Errorf("simrun: cache Dir requires an Encode function")
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("simrun: cache dir: %w", err)
		}
	}
	entries := opts.Entries
	if entries <= 0 {
		entries = 256
	}
	return &Cache{
		entries:    entries,
		dir:        opts.Dir,
		encode:     opts.Encode,
		decodeTier: opts.DecodeTier,
		lru:        list.New(),
		byKey:      map[string]*list.Element{},
		flight:     map[string]*flightCall{},
	}, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Runs:     c.runs.Load(),
		Hits:     c.hits.Load(),
		DiskHits: c.diskHits.Load(),
		Waits:    c.waits.Load(),
		Uncached: c.uncached.Load(),
		Upgrades: c.upgrades.Load(),

		Quarantined: c.quarantined.Load(),
	}
}

// Lookup returns the answer stored under key when its tier satisfies
// wanted, checking the in-memory LRU first and then the disk store
// (promoting a disk hit into the LRU). Unlike GetOrRun it never
// simulates — serving layers that dispatch misses elsewhere (the fleet
// coordinator) use it as their pure read path.
func (c *Cache) Lookup(key string, wanted Tier) (CacheEntry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		slot := el.Value.(*cacheSlot)
		if slot.tier.AtLeast(wanted) {
			c.lru.MoveToFront(el)
			entry := CacheEntry{Key: key, Source: SourceMemory, Tier: slot.tier, Result: slot.result, Payload: slot.payload}
			c.mu.Unlock()
			c.hits.Add(1)
			return entry, true
		}
	}
	c.mu.Unlock()
	if payload, ok := c.loadDisk(key); ok {
		var tier Tier
		if c.decodeTier != nil {
			tier = c.decodeTier(payload)
		}
		if tier.AtLeast(wanted) {
			c.diskHits.Add(1)
			c.store(key, Result{}, payload, tier)
			return CacheEntry{Key: key, Source: SourceDisk, Tier: tier, Payload: payload}, true
		}
	}
	return CacheEntry{}, false
}

// Put stores an externally produced payload under key — the fleet
// coordinator's completion path for results delivered by workers. The
// store is upgrade-only, exactly like a local run's: a duplicate
// completion of a reassigned job (at-least-once dispatch landing twice)
// or a late estimator result arriving after the full answer is refused,
// never a conflict. Put reports whether the entry now holds this
// payload; accepted payloads also reach the disk store.
func (c *Cache) Put(key string, payload []byte, tier Tier) bool {
	if key == "" || payload == nil {
		return false
	}
	if !c.store(key, Result{}, payload, tier) {
		return false
	}
	c.storeDisk(key, payload)
	return true
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// GetOrRun returns the cached outcome of s, running the simulation on a
// miss. Lookup order: in-memory LRU, disk store, an identical in-flight
// run (the caller then waits for it), and finally a fresh run. Scenarios
// without a fingerprint (explicit streams) run directly, uncached.
//
// Cancelling ctx cancels this caller's wait or run; a piggybacking waiter
// whose leader fails or is cancelled receives the leader's error.
func (c *Cache) GetOrRun(ctx context.Context, s *Scenario) (CacheEntry, error) {
	key, err := s.Fingerprint()
	if err != nil {
		c.uncached.Add(1)
		res, runErr := s.Run(ctx)
		return CacheEntry{Source: SourceUncached, Tier: res.Tier, Result: res}, runErr
	}
	wanted := s.AnswerTier()

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		// One key per scenario, tier-aware hits: a stored answer
		// satisfies the request only when its tier is at least the
		// requesting engine's — a full entry answers a statistical
		// request (and reports its higher tier), never the reverse.
		slot := el.Value.(*cacheSlot)
		if slot.tier.AtLeast(wanted) {
			c.lru.MoveToFront(el)
			entry := CacheEntry{Key: key, Source: SourceMemory, Tier: slot.tier, Result: slot.result, Payload: slot.payload}
			c.mu.Unlock()
			c.hits.Add(1)
			return entry, nil
		}
	}
	// Flights are keyed by (fingerprint, requested tier): a full-tier
	// request must not piggyback on an in-flight statistical estimate,
	// and a statistical request should answer fast rather than wait for
	// an in-flight full run.
	fkey := key + "#" + string(wanted)
	if fl, ok := c.flight[fkey]; ok {
		c.mu.Unlock()
		c.waits.Add(1)
		select {
		case <-fl.done:
			if fl.err != nil {
				return CacheEntry{Key: key, Source: SourceFlight}, fl.err
			}
			entry := fl.entry
			entry.Source = SourceFlight
			return entry, nil
		case <-ctx.Done():
			return CacheEntry{Key: key, Source: SourceFlight}, ctx.Err()
		}
	}
	// Miss in memory: become the flight leader for this key, then check
	// the disk store and finally simulate — both outside the lock, so
	// slow I/O never serializes other cache traffic, and concurrent
	// identical requests dedup onto one disk read or run.
	fl := &flightCall{done: make(chan struct{})}
	c.flight[fkey] = fl
	c.mu.Unlock()

	entry, runErr := c.fill(ctx, key, wanted, s)
	fl.entry, fl.err = entry, runErr
	c.mu.Lock()
	delete(c.flight, fkey)
	c.mu.Unlock()
	close(fl.done)
	return entry, runErr
}

// fill resolves a miss as the flight leader: the persistent store first,
// then a fresh run. Disk hits are promoted into the in-memory LRU
// (payload only) so repeated requests after a restart stop touching disk.
// A persisted payload only counts when its tier satisfies the request;
// without a DecodeTier hook every disk payload is definitive.
func (c *Cache) fill(ctx context.Context, key string, wanted Tier, s *Scenario) (CacheEntry, error) {
	if payload, ok := c.loadDisk(key); ok {
		var tier Tier
		if c.decodeTier != nil {
			tier = c.decodeTier(payload)
		}
		if tier.AtLeast(wanted) {
			c.diskHits.Add(1)
			c.store(key, Result{}, payload, tier)
			return CacheEntry{Key: key, Source: SourceDisk, Tier: tier, Payload: payload}, nil
		}
	}
	return c.runAndStore(ctx, key, s)
}

// runAndStore executes the scenario and, on success, encodes and stores
// the result in the LRU and the disk store.
func (c *Cache) runAndStore(ctx context.Context, key string, s *Scenario) (CacheEntry, error) {
	c.runs.Add(1)
	res, err := s.Run(ctx)
	entry := CacheEntry{Key: key, Source: SourceRun, Tier: res.Tier, Result: res}
	if err != nil {
		return entry, err
	}
	if c.encode != nil {
		payload, encErr := c.encode(res)
		if encErr != nil {
			return entry, fmt.Errorf("simrun: cache encode: %w", encErr)
		}
		entry.Payload = payload
	}
	// Only a store that was accepted (insert or upgrade) reaches disk:
	// a lower-tier result arriving after a higher one — a statistical
	// estimate racing an already-landed full run — must not clobber the
	// better persisted answer.
	sp := s.tracer().Start("cache:store")
	if c.store(key, res, entry.Payload, res.Tier) {
		c.storeDisk(key, entry.Payload)
	}
	sp.End()
	return entry, nil
}

// store inserts an entry at the front of the LRU, evicting from the
// back. An existing entry under the same key is replaced only by a
// strictly higher tier (the upgrade-only invariant); store reports
// whether the entry now holds this answer.
func (c *Cache) store(key string, res Result, payload []byte, tier Tier) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		slot := el.Value.(*cacheSlot)
		if tier.Rank() <= slot.tier.Rank() {
			return false
		}
		slot.tier, slot.result, slot.payload = tier, res, payload
		c.upgrades.Add(1)
		obsMetrics()
		mCacheUpgrades.Inc()
		return true
	}
	el := c.lru.PushFront(&cacheSlot{key: key, tier: tier, result: res, payload: payload})
	c.byKey[key] = el
	for c.lru.Len() > c.entries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheSlot).key)
	}
	return true
}

// diskPath is the content address on disk: one file per fingerprint.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Persisted payloads carry a fixed-length integrity footer — the
// SHA-256 of the payload bytes — so bit rot, torn writes that survived
// the rename, or hand-edited files are detected on load instead of
// being served as simulation results.
const (
	diskSumPrefix = "\n#simcache-sha256:"
	diskSumLen    = len(diskSumPrefix) + sha256.Size*2 + 1 // prefix + hex + "\n"
)

func diskFooter(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return []byte(diskSumPrefix + hex.EncodeToString(sum[:]) + "\n")
}

// loadDisk reads a persisted payload and verifies its integrity footer.
// A file that is too short, lacks the footer, or whose checksum does not
// match its contents is quarantined — renamed aside, counted and logged
// — and reported as a miss, so a corrupt cache entry costs one
// re-simulation, never a wrong answer or a crash. Called without c.mu:
// the flight entry for key already serializes identical lookups.
func (c *Cache) loadDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(c.diskPath(key))
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	n := len(raw) - diskSumLen
	if n < 0 || !bytes.HasPrefix(raw[n:], []byte(diskSumPrefix)) {
		c.quarantine(key, "missing integrity footer")
		return nil, false
	}
	payload := raw[:n]
	if !bytes.Equal(raw[n:], diskFooter(payload)) {
		c.quarantine(key, "checksum mismatch")
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt cache file aside (for postmortems) so it
// is never read again, and makes the event visible: a counter for
// dashboards, a log line for operators.
func (c *Cache) quarantine(key, why string) {
	c.quarantined.Add(1)
	obsMetrics()
	mCacheQuarantined.Inc()
	path := c.diskPath(key)
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Couldn't move it aside — remove it so it cannot be re-read.
		os.Remove(path)
	}
	log.Printf("simrun: cache: quarantined corrupt entry %s (%s)", path, why)
}

// storeDisk persists a payload plus its integrity footer with a
// write-then-rename so readers never observe a torn file. Store
// failures are ignored: the disk layer is an optimization, never a
// correctness dependency.
func (c *Cache) storeDisk(key string, payload []byte) {
	if c.dir == "" || payload == nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(payload)
	if werr == nil {
		_, werr = tmp.Write(diskFooter(payload))
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
