// Command sweep explores a design space with interval simulation — the
// paper's headline use case: culling a large space quickly with the
// analytical core model, so that detailed simulation can focus on the
// surviving region.
//
// Four sweeps are built in:
//
//	-sweep core    ROB size × dispatch width (core sizing)
//	-sweep l2      L2 capacity (cache sizing)
//	-sweep fabric  bus vs mesh vs ring on-chip interconnect, 4-16 cores
//	-sweep dram    fixed-latency vs banked row-buffer DRAM
//
// Each prints one IPC (or cycles) table over a set of benchmark profiles.
//
//	go run ./cmd/sweep -sweep core -profiles gcc,mcf,swim
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		sweep    = flag.String("sweep", "core", "design-space sweep: core, l2, fabric, dram")
		profiles = flag.String("profiles", "gcc,mcf,swim", "comma-separated benchmark profiles")
		insts    = flag.Int("n", 50_000, "measured instructions per run")
		warm     = flag.Int("warmup", 300_000, "functional warmup instructions per run")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		detailed = flag.Bool("detailed", false, "cross-check each point with the detailed model (slow)")
	)
	flag.Parse()

	names := strings.Split(*profiles, ",")
	s := &sweeper{insts: *insts, warm: *warm, seed: *seed, detailed: *detailed}
	switch *sweep {
	case "core":
		s.sweepCore(names)
	case "l2":
		s.sweepL2(names)
	case "fabric":
		s.sweepFabric(names)
	case "dram":
		s.sweepDRAM(names)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q (want core, l2, fabric or dram)\n", *sweep)
		os.Exit(2)
	}
}

type sweeper struct {
	insts, warm int
	seed        int64
	detailed    bool
}

// ipc runs profile name on machine m and returns interval-model IPC (and
// detailed-model IPC when cross-checking).
func (s *sweeper) ipc(name string, m config.Machine) (float64, float64) {
	p := workload.SPECByName(name)
	run := func(model multicore.Model) float64 {
		res := multicore.Run(multicore.RunConfig{
			Machine:     m,
			Model:       model,
			WarmupInsts: s.warm,
			Warmup:      []trace.Stream{workload.New(p, 0, 1, s.seed+1000)},
		}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, s.seed), s.insts)})
		return res.Cores[0].IPC
	}
	iv := run(multicore.Interval)
	var det float64
	if s.detailed {
		det = run(multicore.Detailed)
	}
	return iv, det
}

func (s *sweeper) header(names []string) {
	fmt.Printf("%-22s", "configuration")
	for _, n := range names {
		fmt.Printf(" %10s", n)
	}
	fmt.Println()
}

func (s *sweeper) row(label string, names []string, m config.Machine) {
	fmt.Printf("%-22s", label)
	for _, n := range names {
		iv, det := s.ipc(n, m)
		if s.detailed {
			fmt.Printf(" %5.2f/%4.2f", iv, det)
		} else {
			fmt.Printf(" %10.3f", iv)
		}
	}
	fmt.Println()
}

func (s *sweeper) sweepCore(names []string) {
	fmt.Println("== core sizing: IPC by ROB size x dispatch width (interval model) ==")
	s.header(names)
	for _, rob := range []int{64, 128, 256, 512} {
		for _, width := range []int{2, 4, 8} {
			m := config.Default(1)
			m.Core.ROBSize = rob
			m.Core.DecodeWidth = width
			m.Core.IssueWidth = width + 2
			m.Core.FetchWidth = 2 * width
			s.row(fmt.Sprintf("ROB=%-4d width=%d", rob, width), names, m)
		}
	}
}

func (s *sweeper) sweepL2(names []string) {
	fmt.Println("== cache sizing: IPC by shared L2 capacity (interval model) ==")
	s.header(names)
	for _, mb := range []int{1, 2, 4, 8} {
		m := config.Default(1)
		m.Mem.L2.SizeBytes = mb << 20
		s.row(fmt.Sprintf("L2=%dMB", mb), names, m)
	}
	m := config.Default(1)
	m.Mem.HasL2 = false
	s.row("no L2", names, m)
}

func (s *sweeper) sweepFabric(names []string) {
	fmt.Println("== interconnect: multi-program cycles by fabric and core count (interval model) ==")
	fmt.Printf("%-22s %12s %14s %12s\n", "configuration", "cycles", "fabric-stall", "utilization")
	for _, cores := range []int{4, 8, 16} {
		for _, fabric := range []string{"bus", "mesh", "ring"} {
			m := config.Default(cores)
			m.Mem.Interconnect = fabric
			streams := make([]trace.Stream, cores)
			warms := make([]trace.Stream, cores)
			for i := range streams {
				p := workload.SPECByName(names[i%len(names)])
				streams[i] = trace.NewLimit(workload.New(p, 0, 1, s.seed+int64(i)), s.insts)
				warms[i] = workload.New(p, 0, 1, s.seed+1000+int64(i))
			}
			res := multicore.Run(multicore.RunConfig{
				Machine:     m,
				Model:       multicore.Interval,
				WarmupInsts: s.warm,
				Warmup:      warms,
				KeepCores:   true,
			}, streams)
			fab := res.Mem.Fabric()
			fmt.Printf("%-22s %12d %14d %11.1f%%\n",
				fmt.Sprintf("%d cores, %s", cores, fabric),
				res.Cycles, fab.StallCycles(), 100*fab.Utilization(res.Cycles))
		}
	}
}

func (s *sweeper) sweepDRAM(names []string) {
	fmt.Println("== main memory: IPC with fixed-latency vs banked row-buffer DRAM (interval model) ==")
	s.header(names)
	fixed := config.Default(1)
	s.row("fixed 150cy", names, fixed)
	banked := config.Default(1)
	banked.Mem.DRAMKind = "banked"
	s.row("banked 90/180cy", names, banked)
	wide := config.Default(1)
	wide.Mem.DRAMKind = "banked"
	wide.Mem.DRAMBanks = 32
	s.row("banked, 32 banks", names, wide)
}
