package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// tiny returns a sizing small enough for unit tests.
func tiny() Opts {
	return Opts{Insts: 4_000, Warmup: 20_000, WorkScale: 0.05, Seed: 42}
}

func TestTableFormat(t *testing.T) {
	tb := Table{
		ID:      "figX",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:   []string{"note"},
	}
	out := tb.Format()
	for _, want := range []string{"figX", "demo", "longer", "-- note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFig4PanelsProduceAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tiny().Fig4("4a")
	if len(tb.Rows) != len(workload.SPEC()) {
		t.Fatalf("fig4a rows = %d, want %d", len(tb.Rows), len(workload.SPEC()))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Fatalf("row %v has %d cells, want %d", r, len(r), len(tb.Columns))
		}
	}
}

func TestFig4UnknownPanelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown panel did not panic")
		}
	}()
	tiny().Fig4("4z")
}

func TestFig6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := tiny()
	tb := o.Fig6()
	// 5 workloads x 4 copy counts.
	if len(tb.Rows) != 20 {
		t.Fatalf("fig6 rows = %d, want 20", len(tb.Rows))
	}
	// Single-copy rows have STP == 1 by construction.
	for _, r := range tb.Rows {
		if r[1] == "1" && r[2] != "1.00" {
			t.Errorf("single-copy STP(det) = %s, want 1.00", r[2])
		}
	}
}

func TestFig7And8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := tiny()
	f7 := o.Fig7()
	if len(f7.Rows) != len(workload.PARSEC())*4 {
		t.Fatalf("fig7 rows = %d", len(f7.Rows))
	}
	f8 := o.Fig8()
	if len(f8.Rows) != len(workload.PARSEC())*2 {
		t.Fatalf("fig8 rows = %d", len(f8.Rows))
	}
	// Every benchmark's winner columns must agree or disagree explicitly,
	// never be empty on the first row.
	for i := 0; i < len(f8.Rows); i += 2 {
		if f8.Rows[i][4] == "" || f8.Rows[i][5] == "" {
			t.Errorf("fig8 row %d missing winners: %v", i, f8.Rows[i])
		}
	}
}

func TestSpeedupFiguresPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := tiny()
	tb := o.Fig9()
	if len(tb.Rows) != len(workload.SPEC()) {
		t.Fatalf("fig9 rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		for _, cell := range r[1:] {
			if strings.HasPrefix(cell, "-") || cell == "0.00" {
				t.Errorf("non-positive speedup %q in row %v", cell, r)
			}
		}
	}
}

func TestDefaultsAndQuickDiffer(t *testing.T) {
	d, q := Defaults(), Quick()
	if q.Insts >= d.Insts || q.Warmup >= d.Warmup {
		t.Fatal("Quick sizing not smaller than Defaults")
	}
}
