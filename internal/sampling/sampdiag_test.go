package sampling

import (
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestDiagnosePerUnit(t *testing.T) {
	p := workload.SPECByName("gcc")
	m := config.Default(1)
	src := workload.New(p, 0, 1, 1042)
	cfg := Config{Unit: 10_000, Period: 20_000, InitialWarmup: 200_000,
		Model: multicore.Interval, Machine: m}
	// Replicate Run but log per-unit IPC.
	res, err := RunDebug(cfg, src, 200_000, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("aggregate %.3f", res.SampledIPC)
}

func TestDiagnoseSameRange(t *testing.T) {
	p := workload.SPECByName("gcc")
	m := config.Default(1)
	t.Log("contiguous units:")
	RunDebug(Config{Unit: 10_000, Period: 10_000, Model: multicore.Interval, Machine: m},
		workload.New(p, 0, 1, 42), 60_000, t.Logf)
	t.Log("skipping units (every other 10k):")
	RunDebug(Config{Unit: 10_000, Period: 20_000, Model: multicore.Interval, Machine: m},
		workload.New(p, 0, 1, 42), 60_000, t.Logf)
}

func TestDiagnoseDetailedSampled(t *testing.T) {
	p := workload.SPECByName("gcc")
	m := config.Default(1)
	full := multicore.Run(multicore.RunConfig{
		Machine: m, Model: multicore.Detailed,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 200_000)})
	res, err := Run(Config{Unit: 10_000, Period: 20_000,
		Model: multicore.Detailed, Machine: m},
		workload.New(p, 0, 1, 42), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("detailed: full=%.3f sampled=%.3f", full.Cores[0].IPC, res.SampledIPC)
}

func TestDiagnoseContiguous(t *testing.T) {
	p := workload.SPECByName("gcc")
	m := config.Default(1)
	for _, period := range []int{10_000, 20_000, 50_000} {
		res, err := Run(Config{Unit: 10_000, Period: period, InitialWarmup: 200_000,
			Model: multicore.Interval, Machine: m},
			workload.New(p, 0, 1, 1042), 400_000)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("unit=10000 period=%d: IPC=%.3f units=%d", period, res.SampledIPC, res.Units)
	}
}
