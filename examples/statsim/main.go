// Statistical simulation demo: profile a benchmark's dynamic execution,
// generate a 5x-shorter synthetic clone, and check that the clone predicts
// the original's IPC — the related-work baseline the paper positions
// interval simulation against, and an orthogonal speedup (fewer
// instructions) that composes with it (cheaper timing per instruction).
//
//	go run ./examples/statsim
package main

import (
	"context"
	"fmt"

	"repro/internal/simrun"
	"repro/internal/statsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 60_000
	const warm = 20_000

	fmt.Printf("%-8s %14s %14s %10s %10s\n", "bench", "original IPC", "clone IPC", "err", "chase")
	for _, name := range []string{"gcc", "mcf", "swim", "equake"} {
		p := workload.SPECByName(name)

		// Profile the original stream (with functional warmup so the
		// locality statistics reflect steady state).
		prof := statsim.CollectWarm(workload.New(p, 0, 1, 42), warm, n+warm)

		orig := ipc(name, trace.NewLimit(workload.New(p, 0, 1, 42), n+warm), warm)
		clone := ipc(name+" clone", statsim.NewClone(prof, warm+n/5, 99), warm)

		err := 100 * abs(orig-clone) / orig
		fmt.Printf("%-8s %14.3f %14.3f %9.1f%% %9.2f\n",
			name, orig, clone, err, prof.LoadLoadRate())
	}

	fmt.Println()
	fmt.Println("The clone carries the profile's instruction mix, dependence distances,")
	fmt.Println("per-branch bias, cache hit rates, miss clustering (MLP) and pointer-")
	fmt.Println("chase fraction — and is 5x shorter than the original.")
}

// ipc times a stream on the interval model after functionally warming
// with its first warm instructions.
func ipc(label string, src trace.Stream, warm int) float64 {
	head := trace.Record(src, warm)
	res, err := simrun.MustNew("",
		simrun.Label(label),
		simrun.Streams([]trace.Stream{src}, []trace.Stream{trace.NewSliceStream(head)}),
		simrun.Warmup(warm),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return res.Cores[0].IPC
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
