package obs

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRec is one completed span: a named interval on a track (TID),
// with optional numeric arguments (aggregated wait times, counts).
// Times are microseconds relative to the tracer's epoch, which is what
// both the JSON trace endpoint and the Chrome trace_event exporter
// serve directly.
type SpanRec struct {
	Name    string           `json:"name"`
	TID     int              `json:"tid"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Args    map[string]int64 `json:"args,omitempty"`
}

// Tracer records spans into a bounded in-memory ring. All methods are
// safe for concurrent use and all are no-ops on a nil *Tracer — the
// zero-cost-when-disabled contract: instrumented code calls
// tracer.Start(...) unconditionally cheaply only where a nil check
// already guards the slow path.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	ring    []SpanRec
	next    int
	wrapped bool
	dropped uint64
	// tidNames labels span tracks (TIDs) for viewers: on a stitched
	// fleet trace, row 0 is the coordinator and each worker gets its own
	// named row.
	tidNames map[int]string
}

// DefaultSpanCap bounds the span ring when NewTracer is given no
// capacity: enough for the full lifecycle of a job plus thousands of
// parsim epoch spans.
const DefaultSpanCap = 4096

// NewTracer builds a tracer with a bounded span ring (capacity <= 0
// selects DefaultSpanCap). The tracer's epoch is its creation time.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{epoch: time.Now(), ring: make([]SpanRec, 0, capacity)}
}

// Since converts an absolute time to the tracer's relative microsecond
// clock. Nil-safe (returns 0).
func (t *Tracer) Since(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch).Microseconds()
}

// Now is Since(time.Now()). Nil-safe (returns 0).
func (t *Tracer) Now() int64 { return t.Since(time.Now()) }

// Add records a completed span. Nil-safe. When the ring is full the
// oldest span is overwritten and the drop counted.
func (t *Tracer) Add(s SpanRec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next++
		if t.next == cap(t.ring) {
			t.next = 0
		}
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Span is an in-flight span handle returned by Start. A nil *Span
// no-ops every method, so callers never nil-check individual handles.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Time
	args  map[string]int64
}

// Start opens a span now. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// TID assigns the span to a track (a simulated core, a worker).
func (s *Span) TID(id int) *Span {
	if s != nil {
		s.tid = id
	}
	return s
}

// Arg attaches a numeric argument, visible in the trace viewer.
func (s *Span) Arg(key string, v int64) *Span {
	if s == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]int64{}
	}
	s.args[key] = v
	return s
}

// End closes the span and records it. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.Add(SpanRec{
		Name:    s.name,
		TID:     s.tid,
		StartUS: s.t.Since(s.start),
		DurUS:   now.Sub(s.start).Microseconds(),
		Args:    s.args,
	})
}

// Spans snapshots the recorded spans in chronological ring order
// (oldest first). Nil-safe (returns nil).
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]SpanRec(nil), t.ring...)
	}
	out := make([]SpanRec, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped is the number of spans lost to ring overflow. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// NameTID labels a span track, e.g. a fleet worker's row on a stitched
// trace. Nil-safe.
func (t *Tracer) NameTID(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.tidNames == nil {
		t.tidNames = map[int]string{}
	}
	t.tidNames[tid] = name
	t.mu.Unlock()
}

// TIDNames snapshots the track labels (nil when none were named).
// Nil-safe.
func (t *Tracer) TIDNames() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.tidNames) == 0 {
		return nil
	}
	out := make(map[int]string, len(t.tidNames))
	for k, v := range t.tidNames {
		out[k] = v
	}
	return out
}

// Splice imports spans recorded by another tracer (a fleet worker, in
// its own timebase) into this one: every span's start is shifted by
// offsetUS — the point on this tracer's clock the remote clock started
// at — and, when tid >= 0, moved onto that track. Durations are
// untouched: both clocks are monotonic host clocks, so a remote span's
// extent is as real as a local one's. Nil-safe.
func (t *Tracer) Splice(spans []SpanRec, offsetUS int64, tid int) {
	if t == nil {
		return
	}
	for _, s := range spans {
		s.StartUS += offsetUS
		if tid >= 0 {
			s.TID = tid
		}
		t.Add(s)
	}
}

// EncodeSpans renders spans as the compact, header-safe wire form
// (base64 of the JSON array) bounded to roughly maxBytes of output
// (<=0 selects DefaultSpanWireBytes). When the spans do not fit, the
// oldest are dropped — the tail of a run (engine, measure, store) is
// the informative part. Returns "" for no spans.
func EncodeSpans(spans []SpanRec, maxBytes int) string {
	if len(spans) == 0 {
		return ""
	}
	if maxBytes <= 0 {
		maxBytes = DefaultSpanWireBytes
	}
	// Base64 expands 3 bytes to 4; budget the JSON accordingly.
	budget := maxBytes / 4 * 3
	for start := 0; start < len(spans); {
		raw, err := json.Marshal(spans[start:])
		if err != nil {
			return ""
		}
		if len(raw) <= budget {
			return base64.StdEncoding.EncodeToString(raw)
		}
		// Drop the oldest spans proportionally to the overshoot, always
		// making progress.
		over := (len(raw) - budget) * (len(spans) - start) / len(raw)
		if over < 1 {
			over = 1
		}
		start += over
	}
	return ""
}

// DefaultSpanWireBytes bounds the encoded span payload a worker returns
// alongside a result: generous for a job lifecycle (hundreds of spans),
// safely under HTTP header limits.
const DefaultSpanWireBytes = 48 << 10

// DecodeSpans parses EncodeSpans's wire form.
func DecodeSpans(s string) ([]SpanRec, error) {
	if s == "" {
		return nil, nil
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("obs: span wire form is not base64: %v", err)
	}
	var spans []SpanRec
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("obs: span wire form is not a span array: %v", err)
	}
	return spans, nil
}

// chromeEvent is one trace_event record ("X" = complete event with
// duration, "M" = metadata such as a thread name), the format
// chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the recorded spans as Chrome trace_event JSON
// (load the file in chrome://tracing or ui.perfetto.dev). Named tracks
// (NameTID — fleet worker rows on a stitched trace) become thread_name
// metadata events so the viewer labels the rows. Nil-safe (writes an
// empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+4)
	names := t.TIDNames()
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}
	for _, s := range spans {
		var args map[string]any
		if len(s.Args) > 0 {
			args = make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				args[k] = v
			}
		}
		events = append(events, chromeEvent{Name: s.Name, Ph: "X", TS: s.StartUS, Dur: s.DurUS, PID: 1, TID: s.TID, Args: args})
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// tracerKey carries a *Tracer through a context.
type tracerKey struct{}

// ContextWith returns a context carrying the tracer.
func ContextWith(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext extracts the context's tracer (nil when absent — and a
// nil tracer no-ops, so callers never branch).
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer: the one-liner form
// obs.StartSpan(ctx, "cache:store") for code that already threads a
// context. No-op (nil span) when the context carries no tracer.
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).Start(name)
}
