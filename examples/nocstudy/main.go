// NoC study: compare on-chip interconnects — the Table 1 snoop bus, a 2D
// mesh and a bidirectional ring — under a multi-program workload, using
// interval simulation for the cores. The interconnection network is one of
// the components the paper's framework simulates structurally; swapping it
// is a system-level trade-off the analytical core model makes cheap to
// explore.
//
//	go run ./examples/nocstudy
package main

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/simrun"
)

func main() {
	const cores = 8
	const n = 30_000
	// A bandwidth-hungry mix: streaming (swim-like) and cache-thrashing
	// (mcf-like) programs sharing the L2 through the fabric.
	mix := []string{"swim", "mcf", "gcc", "art"}

	fmt.Printf("%d cores, multi-program mix %v, %d instructions per core\n\n", cores, mix, n)
	fmt.Printf("%-8s %12s %10s %14s %12s\n", "fabric", "cycles", "STP", "fabric-stall", "busy")

	for _, fabric := range []string{"bus", "mesh", "ring"} {
		res, err := simrun.MustNew("",
			simrun.Label(fabric+" mix"),
			simrun.Mix(mix...),
			simrun.Cores(cores),
			simrun.Fabric(fabric),
			simrun.Configure(func(m *config.Machine) { m.Mem.NoCHopLatency = 2 }),
			simrun.Insts(n),
			simrun.Warmup(200_000),
			simrun.KeepCores(),
		).Run(context.Background())
		if err != nil {
			panic(err)
		}

		stp := 0.0
		for _, c := range res.Cores {
			stp += c.IPC
		}
		fab := res.Mem.Fabric()
		fmt.Printf("%-8s %12d %10.2f %14d %11.1f%%\n",
			fabric, res.Cycles, stp, fab.StallCycles(), 100*fab.Utilization(res.Cycles))
	}

	fmt.Println()
	fmt.Println("The bus serializes every L1-miss transaction; the mesh and ring spread")
	fmt.Println("them over many links, at the cost of multi-hop latency. The crossover")
	fmt.Println("is exactly the kind of early design decision interval simulation targets.")
}
