// Package coherence implements a MOESI snooping cache-coherence protocol
// over a shared bus, keeping the private L1 data caches of a multi-core
// processor coherent (Table 1: "coherence protocol: MOESI").
//
// The protocol object is the bookkeeping half of the model: it tracks the
// MOESI state of every line in every core and answers, for each read or
// write, where the data comes from (own cache, a remote cache, or the level
// below) and which remote copies must be invalidated or downgraded. The
// memhier package converts those answers into latencies and keeps the
// structural L1 models in sync.
package coherence

import "fmt"

// State is the MOESI state of one line in one core's private cache.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy; other copies may exist; memory/L2 is
	// up to date or an Owned copy exists elsewhere.
	Shared
	// Exclusive: the only copy, clean.
	Exclusive
	// Owned: dirty copy responsible for supplying data; other Shared
	// copies may exist.
	Owned
	// Modified: the only copy, dirty.
	Modified
)

// String returns the one-letter MOESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Source says where the data for an access comes from.
type Source uint8

const (
	// SrcOwn: the line was already held in a sufficient state (hit).
	SrcOwn Source = iota
	// SrcRemote: supplied by another core's cache (cache-to-cache
	// transfer; a coherence miss in the paper's classification).
	SrcRemote
	// SrcBelow: supplied by the shared L2 / main memory.
	SrcBelow
)

// Result describes the protocol action for one access.
type Result struct {
	// Source of the data.
	Source Source
	// Invalidations is the number of remote copies invalidated.
	Invalidations int
	// WritebackBelow is true when a remote dirty copy had to push data
	// toward the next level (timed by the caller).
	WritebackBelow bool
	// NewState is the requesting core's state after the access.
	NewState State
}

// Protocol tracks MOESI (or MESI) state for every line held by any private
// cache.
type Protocol struct {
	cores int
	mesi  bool // four-state MESI: no Owned state, dirty sharing writes back
	lines map[uint64][]State

	// Statistics.
	ReadMisses      uint64
	WriteMisses     uint64
	Upgrades        uint64
	Interventions   uint64 // cache-to-cache transfers
	InvalidationsTx uint64 // total remote copies invalidated
}

// New creates a MOESI protocol instance for the given core count.
func New(cores int) *Protocol {
	return &Protocol{cores: cores, lines: make(map[uint64][]State)}
}

// NewMESI creates a four-state MESI variant: there is no Owned state, so a
// dirty line read by another core is written back below and both copies
// become Shared. Comparing it against MOESI isolates the value of dirty
// sharing (the O state) — an ablation on Table 1's protocol choice.
func NewMESI(cores int) *Protocol {
	return &Protocol{cores: cores, mesi: true, lines: make(map[uint64][]State)}
}

// Cores returns the number of cores the protocol was built for.
func (p *Protocol) Cores() int { return p.cores }

// State returns core's state for lineAddr.
func (p *Protocol) State(core int, lineAddr uint64) State {
	if v, ok := p.lines[lineAddr]; ok {
		return v[core]
	}
	return Invalid
}

func (p *Protocol) vec(lineAddr uint64) []State {
	v, ok := p.lines[lineAddr]
	if !ok {
		v = make([]State, p.cores)
		p.lines[lineAddr] = v
	}
	return v
}

func (p *Protocol) gc(lineAddr uint64, v []State) {
	for _, s := range v {
		if s != Invalid {
			return
		}
	}
	delete(p.lines, lineAddr)
}

// Read performs the protocol action for core reading lineAddr.
func (p *Protocol) Read(core int, lineAddr uint64) Result {
	v := p.vec(lineAddr)
	if v[core] != Invalid {
		return Result{Source: SrcOwn, NewState: v[core]}
	}
	p.ReadMisses++
	// Find a remote supplier: M and O (dirty) and E (clean) supply
	// cache-to-cache; S copies mean the level below has the data.
	remoteShared := false
	for c, s := range v {
		if c == core {
			continue
		}
		switch s {
		case Modified:
			if p.mesi {
				// MESI: write back below; both copies Shared.
				v[c] = Shared
				v[core] = Shared
				p.Interventions++
				return Result{Source: SrcRemote, NewState: Shared, WritebackBelow: true}
			}
			v[c] = Owned
			v[core] = Shared
			p.Interventions++
			return Result{Source: SrcRemote, NewState: Shared}
		case Owned:
			v[core] = Shared
			p.Interventions++
			return Result{Source: SrcRemote, NewState: Shared}
		case Exclusive:
			v[c] = Shared
			v[core] = Shared
			p.Interventions++
			return Result{Source: SrcRemote, NewState: Shared}
		case Shared:
			remoteShared = true
		}
	}
	if remoteShared {
		v[core] = Shared
		return Result{Source: SrcBelow, NewState: Shared}
	}
	v[core] = Exclusive
	return Result{Source: SrcBelow, NewState: Exclusive}
}

// Write performs the protocol action for core writing lineAddr.
func (p *Protocol) Write(core int, lineAddr uint64) Result {
	v := p.vec(lineAddr)
	switch v[core] {
	case Modified:
		return Result{Source: SrcOwn, NewState: Modified}
	case Exclusive:
		v[core] = Modified
		return Result{Source: SrcOwn, NewState: Modified}
	case Owned, Shared:
		// Upgrade: invalidate all remote copies; no data transfer.
		p.Upgrades++
		res := Result{Source: SrcOwn, NewState: Modified}
		for c, s := range v {
			if c == core || s == Invalid {
				continue
			}
			v[c] = Invalid
			res.Invalidations++
			p.InvalidationsTx++
		}
		v[core] = Modified
		return res
	}
	// Write miss from Invalid: fetch with intent to modify.
	p.WriteMisses++
	res := Result{Source: SrcBelow, NewState: Modified}
	for c, s := range v {
		if c == core || s == Invalid {
			continue
		}
		if s == Modified || s == Owned {
			res.Source = SrcRemote
			p.Interventions++
		} else if res.Source != SrcRemote && s == Exclusive {
			res.Source = SrcRemote
			p.Interventions++
		}
		v[c] = Invalid
		res.Invalidations++
		p.InvalidationsTx++
	}
	v[core] = Modified
	return res
}

// Evict notifies the protocol that core's private cache dropped lineAddr
// (capacity or conflict eviction). It returns whether the evicted copy was
// dirty and must be written back below.
func (p *Protocol) Evict(core int, lineAddr uint64) (writeback bool) {
	v, ok := p.lines[lineAddr]
	if !ok {
		return false
	}
	s := v[core]
	v[core] = Invalid
	p.gc(lineAddr, v)
	return s == Modified || s == Owned
}

// Holders returns the number of cores holding lineAddr in any valid state.
func (p *Protocol) Holders(lineAddr uint64) int {
	n := 0
	for _, s := range p.lines[lineAddr] {
		if s != Invalid {
			n++
		}
	}
	return n
}

// CheckInvariants validates the MOESI single-writer/multiple-reader
// discipline for every tracked line, returning a descriptive error-like
// string ("" when consistent). Used by property tests.
func (p *Protocol) CheckInvariants() string {
	for addr, v := range p.lines {
		var m, o, e, s int
		for _, st := range v {
			switch st {
			case Modified:
				m++
			case Owned:
				o++
			case Exclusive:
				e++
			case Shared:
				s++
			}
		}
		switch {
		case m > 1:
			return fmt.Sprintf("line %#x: %d Modified copies", addr, m)
		case o > 1:
			return fmt.Sprintf("line %#x: %d Owned copies", addr, o)
		case e > 1:
			return fmt.Sprintf("line %#x: %d Exclusive copies", addr, e)
		case m == 1 && (o+e+s) > 0:
			return fmt.Sprintf("line %#x: Modified coexists with other copies", addr)
		case e == 1 && (m+o+s) > 0:
			return fmt.Sprintf("line %#x: Exclusive coexists with other copies", addr)
		}
	}
	return ""
}

// Reset drops all protocol state and statistics.
func (p *Protocol) Reset() {
	p.lines = make(map[uint64][]State)
	p.ReadMisses, p.WriteMisses, p.Upgrades = 0, 0, 0
	p.Interventions, p.InvalidationsTx = 0, 0
}

// ResetStats clears the statistics counters without touching line state,
// for functional-warmup runs.
func (p *Protocol) ResetStats() {
	p.ReadMisses, p.WriteMisses, p.Upgrades = 0, 0, 0
	p.Interventions, p.InvalidationsTx = 0, 0
}
