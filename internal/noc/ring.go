package noc

import "fmt"

// Ring is a bidirectional ring of cores+1 nodes with the hub at index
// cores. Transfers take the shorter direction; ties go clockwise. Each
// directed link is reserved hop by hop, like the mesh.
type Ring struct {
	nodes     int
	hub       int
	perHop    int64
	occupancy int64

	// free[n][d]: time directed link out of node n becomes free.
	// Direction 0 is clockwise (toward (n+1) mod nodes), 1 is
	// counter-clockwise.
	free [][2]int64

	Stats
}

// NewRing creates a ring connecting cores cores and one hub node with the
// given per-hop latency and per-link occupancy in cycles.
func NewRing(cores, perHop, occupancy int) *Ring {
	if cores < 1 {
		panic(fmt.Sprintf("noc: ring needs at least one core, got %d", cores))
	}
	if occupancy < 1 {
		occupancy = 1
	}
	n := cores + 1
	return &Ring{
		nodes:     n,
		hub:       cores,
		perHop:    int64(perHop),
		occupancy: int64(occupancy),
		free:      make([][2]int64, n),
	}
}

// Nodes returns the node count (cores + hub).
func (r *Ring) Nodes() int { return r.nodes }

// Hub returns the hub's node index.
func (r *Ring) Hub() int { return r.hub }

// Hops returns the shortest-path route length in links from src to the hub.
func (r *Ring) Hops(src int) int {
	cw := (r.hub - src + r.nodes) % r.nodes
	ccw := r.nodes - cw
	if ccw < cw {
		return ccw
	}
	return cw
}

// AccessFrom implements Fabric.
func (r *Ring) AccessFrom(core int, now int64) int64 {
	r.Transactions++
	t := now
	cw := (r.hub - core + r.nodes) % r.nodes
	ccw := r.nodes - cw
	dir, hops := 0, cw
	if ccw < cw {
		dir, hops = 1, ccw
	}
	node := core
	for i := 0; i < hops; i++ {
		lk := &r.free[node][dir]
		start := t
		if *lk > start {
			start = *lk
		}
		r.StallTotal += start - t
		*lk = start + r.occupancy
		r.BusyTotal += r.occupancy
		t = start + r.perHop
		if dir == 0 {
			node = (node + 1) % r.nodes
		} else {
			node = (node - 1 + r.nodes) % r.nodes
		}
		r.HopTotal++
	}
	return t - now
}

// Utilization implements Fabric.
func (r *Ring) Utilization(now int64) float64 {
	return r.Stats.utilization(2*r.nodes, now)
}

// ResetStats implements Fabric.
func (r *Ring) ResetStats() {
	for i := range r.free {
		r.free[i] = [2]int64{}
	}
	r.Stats = Stats{}
}

var _ Fabric = (*Ring)(nil)
