package parsim_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/parsim"
)

// TestQuantumInvariance: the epoch quantum is a host-performance knob
// only — every value, including the degenerate lockstep quantum of 1 and
// quanta that do not divide the run length, must produce the identical
// report. The fixed cases pin the edges; the seeded random cases fuzz the
// space (deterministically, so failures reproduce).
func TestQuantumInvariance(t *testing.T) {
	const insts = 3_000
	cfg := multicore.RunConfig{Machine: config.Default(4), Model: multicore.Interval, KeepCores: true}
	s, _ := mixStreams(4, insts)
	want := seqJSON(t, cfg, s)

	quanta := []int64{1, 2, 3, 97, 1000, 8192, 1 << 20}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		quanta = append(quanta, 1+rng.Int63n(20_000))
	}
	for _, q := range quanta {
		s, _ := mixStreams(4, insts)
		got := parJSON(t, cfg, parsim.Config{Quantum: q}, s)
		if !bytes.Equal(want, got) {
			t.Fatalf("quantum=%d: parallel report differs from sequential:\n%s\n--\n%s", q, want, got)
		}
	}
}

// TestQuantumInvarianceWithTimeout crosses the quantum fuzz with a cycle
// limit that lands inside an epoch, the interaction most likely to
// misplace the stop point.
func TestQuantumInvarianceWithTimeout(t *testing.T) {
	const insts = 50_000
	cfg := multicore.RunConfig{
		Machine:   config.Default(4),
		Model:     multicore.Interval,
		MaxCycles: 2_777,
		KeepCores: true,
	}
	s, _ := mixStreams(4, insts)
	want := seqJSON(t, cfg, s)
	for _, q := range []int64{1, 13, 1000, 4096} {
		s, _ := mixStreams(4, insts)
		got := parJSON(t, cfg, parsim.Config{Quantum: q}, s)
		if !bytes.Equal(want, got) {
			t.Fatalf("quantum=%d with MaxCycles: reports differ:\n%s\n--\n%s", q, want, got)
		}
	}
}
