package statsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMarkovLeaveRatesIdentities checks the closed form: a two-state
// chain with the derived leave rates has the requested stationary taken
// probability and repeat rate (measured empirically over a long run).
func TestMarkovLeaveRatesIdentities(t *testing.T) {
	cases := []struct{ taken, repeat float64 }{
		{0.6, 0.8},
		{0.5, 0.9},
		{0.3, 0.7},
		{0.85, 0.85},
	}
	rng := rand.New(rand.NewSource(5))
	for _, c := range cases {
		lt, ln := markovLeaveRates(c.taken, c.repeat)
		state := rng.Float64() < c.taken
		var taken, repeats, n float64
		const steps = 400_000
		for i := 0; i < steps; i++ {
			prev := state
			leave := lt
			if !state {
				leave = ln
			}
			if rng.Float64() < leave {
				state = !state
			}
			n++
			if state {
				taken++
			}
			if state == prev {
				repeats++
			}
		}
		if got := taken / n; got < c.taken-0.02 || got > c.taken+0.02 {
			t.Errorf("taken=%.2f repeat=%.2f: measured taken rate %.3f", c.taken, c.repeat, got)
		}
		if got := repeats / n; got < c.repeat-0.02 || got > c.repeat+0.02 {
			t.Errorf("taken=%.2f repeat=%.2f: measured repeat rate %.3f", c.taken, c.repeat, got)
		}
	}
}

func TestMarkovLeaveRatesDegenerate(t *testing.T) {
	for _, tkn := range []float64{0, 1} {
		lt, ln := markovLeaveRates(tkn, 0.5)
		if lt != 0 || ln != 0 {
			t.Fatalf("degenerate taken=%v gave leave rates %v/%v", tkn, lt, ln)
		}
	}
}

// Property: leave rates are always valid probabilities.
func TestMarkovLeaveRatesBounded(t *testing.T) {
	f := func(a, b uint8) bool {
		taken := float64(a%101) / 100
		repeat := float64(b%101) / 100
		lt, ln := markovLeaveRates(taken, repeat)
		return lt >= 0 && lt <= 1 && ln >= 0 && ln <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: cdf outputs are monotone non-decreasing and end at 1.
func TestCDFProperty(t *testing.T) {
	f := func(counts []uint64) bool {
		if len(counts) == 0 {
			return true
		}
		for i := range counts {
			counts[i] %= 1 << 40 // avoid float saturation
		}
		out := cdf(counts)
		prev := 0.0
		for _, v := range out {
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return out[len(out)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: sample always returns a valid index.
func TestSampleInRange(t *testing.T) {
	p := Collect(specStream("gcc", 5000, 42), 0)
	c := NewClone(p, 1, 3)
	for i := 0; i < 10_000; i++ {
		if got := c.sample(c.classCDF); got < 0 || got >= len(c.classCDF) {
			t.Fatalf("sample returned %d for %d-entry cdf", got, len(c.classCDF))
		}
	}
}
