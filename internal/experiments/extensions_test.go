package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyExt shrinks the extension experiments further: they run several
// machines per row.
func tinyExt() Opts {
	return Opts{Insts: 3_000, Warmup: 15_000, WorkScale: 0.02, Seed: 42}
}

func TestAblationModelStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().AblationModel()
	if len(tb.Rows) != len(ablationVariants) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(ablationVariants))
	}
	if tb.Rows[0][0] != "full" {
		t.Fatalf("first variant %q, want full", tb.Rows[0][0])
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Fatalf("row %v has %d cells, want %d", r, len(r), len(tb.Columns))
		}
		for _, cell := range r[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("cell %q is not a percentage", cell)
			}
		}
	}
}

func TestFabricStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().Fabric()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 fabrics", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		cycles, err := strconv.ParseInt(r[1], 10, 64)
		if err != nil || cycles <= 0 {
			t.Fatalf("fabric %s: bad cycles %q", r[0], r[1])
		}
	}
}

func TestDRAMStudyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().DRAMStudy()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 benchmarks", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		gain, err := strconv.ParseFloat(r[3], 64)
		if err != nil || gain <= 0 {
			t.Fatalf("%s: bad gain %q", r[0], r[3])
		}
	}
}

func TestPredictorsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().Predictors()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 predictors", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Fatalf("row %v has %d cells, want %d", r, len(r), len(tb.Columns))
		}
		for i := 1; i < len(r); i += 2 {
			if !strings.HasSuffix(r[i], "%") {
				t.Fatalf("cell %q is not a misprediction percentage", r[i])
			}
		}
	}
}

func TestCoPhaseTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().CoPhase()
	if len(tb.Rows) != 4 { // 2 mixes x 2 programs
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[1] == "error" {
			t.Fatalf("co-phase estimation failed: %v", r)
		}
		if !strings.HasSuffix(r[4], "%") {
			t.Fatalf("error cell %q is not a percentage", r[4])
		}
	}
}

func TestScale16Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := tinyExt().Scale16()
	if len(tb.Rows) != 4 { // 2 benchmarks x 2 fabrics
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Fatalf("row %v has %d cells, want %d", r, len(r), len(tb.Columns))
		}
		// Normalized times must be positive and generally decreasing
		// with core count for the scaling benchmark.
		first, err1 := strconv.ParseFloat(r[2], 64)
		last, err2 := strconv.ParseFloat(r[len(r)-1], 64)
		if err1 != nil || err2 != nil || first <= 0 || last <= 0 {
			t.Fatalf("row %v has non-numeric cells", r)
		}
		if r[0] == "blackscholes" && last >= first {
			t.Fatalf("blackscholes does not scale: 1-core %v vs 32-core %v", first, last)
		}
	}
}
