// Quickstart: simulate one benchmark with interval simulation and compare
// it against the detailed cycle-level baseline on the same machine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/simrun"
)

func main() {
	// Run the same instruction stream under both core models. Scenarios
	// are deterministic: both models see identical instructions and
	// drive identical branch-predictor and memory-hierarchy simulators;
	// only the core timing model differs. The benchmark is gcc-like
	// (branchy with a large code footprint) on the paper's Table 1
	// machine.
	for _, model := range []string{"detailed", "interval"} {
		s := simrun.MustNew("gcc",
			simrun.Model(model),
			simrun.Insts(100_000),
			simrun.Warmup(600_000),
		)
		res, err := s.Run(context.Background())
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s IPC=%.3f cycles=%-8d wall=%-12v %.2f MIPS\n",
			res.ModelLabel(), res.Cores[0].IPC, res.Cycles, res.Wall, res.MIPS())
	}

	fmt.Println()
	fmt.Println("Interval simulation replaces the cycle-accurate core model with a")
	fmt.Println("mechanistic analytical model: expect a close IPC at a much higher")
	fmt.Println("simulation speed.")
}
