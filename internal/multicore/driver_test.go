package multicore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runSingle runs one profile on a single-core machine under the model.
func runSingle(t *testing.T, name string, model Model, n int) Result {
	t.Helper()
	p := workload.SPECByName(name)
	if p == nil {
		t.Fatalf("unknown profile %q", name)
	}
	gen := workload.New(p, 0, 1, 42)
	warm := workload.New(p, 0, 1, 777)
	cfg := RunConfig{
		Machine: config.Default(1), Model: model,
		WarmupInsts: 1_000_000,
		Warmup:      []trace.Stream{warm},
	}
	return Run(cfg, []trace.Stream{trace.NewLimit(gen, n)})
}

func TestSingleCoreBothModelsPlausible(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "mesa", "swim"} {
		det := runSingle(t, name, Detailed, 50_000)
		intv := runSingle(t, name, Interval, 50_000)
		if det.TimedOut || intv.TimedOut {
			t.Fatalf("%s: timed out det=%v intv=%v", name, det.TimedOut, intv.TimedOut)
		}
		if det.TotalRetired != intv.TotalRetired {
			t.Errorf("%s: retired mismatch detailed=%d interval=%d", name, det.TotalRetired, intv.TotalRetired)
		}
		dIPC, iIPC := det.Cores[0].IPC, intv.Cores[0].IPC
		if dIPC <= 0 || dIPC > 4 {
			t.Errorf("%s: detailed IPC %.3f out of range", name, dIPC)
		}
		if iIPC <= 0 || iIPC > 4 {
			t.Errorf("%s: interval IPC %.3f out of range", name, iIPC)
		}
		err := metrics.RelError(dIPC, iIPC)
		t.Logf("%s: detailed IPC=%.3f interval IPC=%.3f err=%.1f%% wall(det)=%v wall(intv)=%v",
			name, dIPC, iIPC, 100*err, det.Wall, intv.Wall)
		if err > 0.5 {
			t.Errorf("%s: interval error %.1f%% too large", name, 100*err)
		}
	}
}

// TestFullSPECSweep runs every SPEC-like profile on both models and checks
// the error distribution matches the paper's band (5.9% average, 16% max
// for single-threaded workloads). Bounds are slightly relaxed for the
// synthetic substrate.
func TestFullSPECSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	var sum metrics.Summary
	for _, p := range workload.SPEC() {
		det := runSingle(t, p.Name, Detailed, 50_000)
		intv := runSingle(t, p.Name, Interval, 50_000)
		e := metrics.RelError(det.Cores[0].IPC, intv.Cores[0].IPC)
		sum.Add(p.Name, det.Cores[0].IPC, intv.Cores[0].IPC)
		t.Logf("%-10s detailed=%.3f interval=%.3f err=%.1f%%",
			p.Name, det.Cores[0].IPC, intv.Cores[0].IPC, 100*e)
	}
	t.Logf("avg err=%.1f%% max=%.1f%% (%s)", 100*sum.Avg(), 100*sum.Max, sum.MaxName)
	if sum.Avg() > 0.10 {
		t.Errorf("average error %.1f%% exceeds 10%%", 100*sum.Avg())
	}
	if sum.Max > 0.25 {
		t.Errorf("max error %.1f%% (%s) exceeds 25%%", 100*sum.Max, sum.MaxName)
	}
}

// runParsec runs a PARSEC-like profile with one thread per core.
func runParsec(t *testing.T, name string, model Model, cores int) Result {
	t.Helper()
	p := workload.PARSECByName(name)
	if p == nil {
		t.Fatalf("unknown profile %q", name)
	}
	streams := make([]trace.Stream, cores)
	warm := make([]trace.Stream, cores)
	for i := 0; i < cores; i++ {
		streams[i] = workload.New(p, i, cores, 42)
		warm[i] = workload.New(p, i, cores, 777)
	}
	cfg := RunConfig{
		Machine: config.Default(cores), Model: model,
		WarmupInsts: 400_000, Warmup: warm,
		MaxCycles: 100_000_000,
	}
	return Run(cfg, streams)
}

// TestParsecScaling checks multi-threaded runs complete without deadlock
// and that execution time falls with cores for a scaling benchmark while
// the two models agree on the trend.
func TestParsecScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, name := range []string{"blackscholes", "fluidanimate", "vips"} {
		var base [2]int64
		for _, cores := range []int{1, 2, 4} {
			det := runParsec(t, name, Detailed, cores)
			intv := runParsec(t, name, Interval, cores)
			if det.TimedOut || intv.TimedOut {
				t.Fatalf("%s @%d: timeout det=%v intv=%v", name, cores, det.TimedOut, intv.TimedOut)
			}
			if cores == 1 {
				base[0], base[1] = det.Cycles, intv.Cycles
			}
			t.Logf("%-13s %d cores: detailed=%d (%.2fx) interval=%d (%.2fx) err=%.1f%%",
				name, cores, det.Cycles, float64(base[0])/float64(det.Cycles),
				intv.Cycles, float64(base[1])/float64(intv.Cycles),
				100*metrics.RelError(float64(det.Cycles), float64(intv.Cycles)))
		}
	}
}

// TestStacked3DRunCompletes exercises the no-L2 3D-DRAM machine end to end
// under both models (the Figure 8 configuration).
func TestStacked3DRunCompletes(t *testing.T) {
	p := workload.PARSECByName("swaptions")
	q := *p
	q.TotalWork = 60_000
	for _, model := range []Model{Detailed, Interval} {
		streams := make([]trace.Stream, 4)
		for i := range streams {
			streams[i] = workload.New(&q, i, 4, 42)
		}
		res := Run(RunConfig{Machine: config.Stacked3D(4), Model: model,
			MaxCycles: 50_000_000}, streams)
		if res.TimedOut {
			t.Fatalf("%v: timed out", model)
		}
		if res.TotalRetired < 55_000 {
			t.Fatalf("%v: retired only %d", model, res.TotalRetired)
		}
	}
}

// TestInstructionConservation: every model retires exactly the generated
// instruction count on a multi-core run.
func TestInstructionConservation(t *testing.T) {
	p := workload.SPECByName("gzip")
	for _, model := range []Model{Detailed, Interval, OneIPC} {
		streams := make([]trace.Stream, 2)
		for i := range streams {
			streams[i] = trace.NewLimit(workload.New(p, i, 2, 42), 10_000)
		}
		res := Run(RunConfig{Machine: config.Default(2), Model: model}, streams)
		if res.TotalRetired != 20_000 {
			t.Fatalf("%v retired %d, want 20000", model, res.TotalRetired)
		}
		for i, c := range res.Cores {
			if c.Retired != 10_000 {
				t.Fatalf("%v core %d retired %d", model, i, c.Retired)
			}
		}
	}
}

// TestOneIPCSlowerThanDetailedOnCompute: the naive model underestimates
// superscalar performance (its defining error).
func TestOneIPCBaselineCharacter(t *testing.T) {
	p := workload.SPECByName("mesa")
	run := func(model Model) float64 {
		gen := trace.NewLimit(workload.New(p, 0, 1, 42), 20_000)
		warm := workload.New(p, 0, 1, 777)
		res := Run(RunConfig{Machine: config.Default(1), Model: model,
			WarmupInsts: 300_000, Warmup: []trace.Stream{warm}}, []trace.Stream{gen})
		return res.Cores[0].IPC
	}
	det, one := run(Detailed), run(OneIPC)
	if one >= det {
		t.Fatalf("one-IPC (%.2f) not below detailed (%.2f) on a compute benchmark", one, det)
	}
	if one > 1.01 {
		t.Fatalf("one-IPC IPC %.2f exceeds 1", one)
	}
}

// TestBarrierDeadlockFreedom runs every PARSEC profile briefly at 4 cores
// under the interval model and requires completion (no barrier/lock
// deadlock for any profile).
func TestBarrierDeadlockFreedom(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, p := range workload.PARSEC() {
		q := p
		q.TotalWork = 100_000
		streams := make([]trace.Stream, 4)
		for i := range streams {
			streams[i] = workload.New(&q, i, 4, 7)
		}
		res := Run(RunConfig{Machine: config.Default(4), Model: Interval,
			MaxCycles: 200_000_000}, streams)
		if res.TimedOut {
			t.Fatalf("%s deadlocked or ran away", p.Name)
		}
	}
}
