package multicore

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func barrierInst() *isa.Inst { return &isa.Inst{Class: isa.BarrierArrive} }

func TestBarrierBlocksUntilAllArrive(t *testing.T) {
	c := NewCoordinator(3)
	if d := c.Sync(0, barrierInst(), 10); d.Proceed {
		t.Fatal("first arrival proceeded alone")
	}
	if d := c.Sync(1, barrierInst(), 11); d.Proceed {
		t.Fatal("second arrival proceeded early")
	}
	// Waiters keep polling and stay blocked.
	if d := c.Sync(0, barrierInst(), 12); d.Proceed {
		t.Fatal("waiter released before last arrival")
	}
	// Last arrival releases everyone.
	if d := c.Sync(2, barrierInst(), 13); !d.Proceed {
		t.Fatal("last arrival did not proceed")
	}
	for core := 0; core < 2; core++ {
		if d := c.Sync(core, barrierInst(), 14); !d.Proceed {
			t.Fatalf("core %d not released", core)
		}
	}
	if c.Barriers != 1 {
		t.Fatalf("barrier generations = %d, want 1", c.Barriers)
	}
}

func TestBarrierGenerationsDoNotBleed(t *testing.T) {
	c := NewCoordinator(2)
	// Generation 0: core 0 blocks, core 1's arrival releases both; core 0
	// picks the release up on its next poll.
	c.Sync(0, barrierInst(), 0)
	if d := c.Sync(1, barrierInst(), 1); !d.Proceed {
		t.Fatal("last arrival of generation 0 blocked")
	}
	if d := c.Sync(0, barrierInst(), 2); !d.Proceed {
		t.Fatal("release poll blocked")
	}
	// Core 0 races ahead to the next barrier; it must block until core 1
	// arrives at generation 1, not be released by generation 0.
	if d := c.Sync(0, barrierInst(), 3); d.Proceed {
		t.Fatal("generation 1 arrival released by generation 0")
	}
	if d := c.Sync(1, barrierInst(), 4); !d.Proceed {
		t.Fatal("last arrival of generation 1 blocked")
	}
}

func TestBarrierIdempotentPolling(t *testing.T) {
	c := NewCoordinator(2)
	for i := 0; i < 10; i++ {
		if d := c.Sync(0, barrierInst(), int64(i)); d.Proceed {
			t.Fatal("poller proceeded without the other thread")
		}
	}
	if c.arrived != 1 {
		t.Fatalf("arrived = %d after repeated polls, want 1", c.arrived)
	}
}

func TestBarrierReleasedByThreadCompletion(t *testing.T) {
	c := NewCoordinator(2)
	if d := c.Sync(0, barrierInst(), 0); d.Proceed {
		t.Fatal("proceeded alone")
	}
	c.NoteDone(1) // thread 1 ends without reaching the barrier
	if d := c.Sync(0, barrierInst(), 1); !d.Proceed {
		t.Fatal("barrier not released when the only other thread finished")
	}
}

func lockInst(class isa.Class, id uint16) *isa.Inst {
	return &isa.Inst{Class: class, SyncID: id}
}

func TestLockUncontendedAcquire(t *testing.T) {
	c := NewCoordinator(2)
	if d := c.Sync(0, lockInst(isa.LockAcquire, 1), 0); !d.Proceed || d.Latency != lockAcquireLatency {
		t.Fatalf("uncontended acquire = %+v", d)
	}
	if d := c.Sync(0, lockInst(isa.LockRelease, 1), 5); !d.Proceed {
		t.Fatalf("release = %+v", d)
	}
}

func TestLockContentionFIFO(t *testing.T) {
	c := NewCoordinator(3)
	c.Sync(0, lockInst(isa.LockAcquire, 7), 0)
	if d := c.Sync(1, lockInst(isa.LockAcquire, 7), 1); d.Proceed {
		t.Fatal("second acquirer got a held lock")
	}
	if d := c.Sync(2, lockInst(isa.LockAcquire, 7), 2); d.Proceed {
		t.Fatal("third acquirer got a held lock")
	}
	c.Sync(0, lockInst(isa.LockRelease, 7), 10)
	// Hand-off goes to the FIFO head (core 1), not core 2.
	if d := c.Sync(2, lockInst(isa.LockAcquire, 7), 11); d.Proceed {
		t.Fatal("FIFO order violated: core 2 jumped the queue")
	}
	if d := c.Sync(1, lockInst(isa.LockAcquire, 7), 11); !d.Proceed || d.Latency != lockTransferLatency {
		t.Fatalf("queued core 1 not granted: %+v", d)
	}
}

func TestLockRepolledWaiterNotDuplicated(t *testing.T) {
	c := NewCoordinator(2)
	c.Sync(0, lockInst(isa.LockAcquire, 3), 0)
	for i := 0; i < 5; i++ {
		c.Sync(1, lockInst(isa.LockAcquire, 3), int64(i))
	}
	if n := len(c.lock(3).queue); n != 1 {
		t.Fatalf("waiter queued %d times", n)
	}
}

func TestDistinctLocksIndependent(t *testing.T) {
	c := NewCoordinator(2)
	c.Sync(0, lockInst(isa.LockAcquire, 1), 0)
	if d := c.Sync(1, lockInst(isa.LockAcquire, 2), 1); !d.Proceed {
		t.Fatal("independent lock blocked")
	}
}

func TestReleaseByNonHolderIgnored(t *testing.T) {
	c := NewCoordinator(2)
	c.Sync(0, lockInst(isa.LockAcquire, 1), 0)
	c.Sync(1, lockInst(isa.LockRelease, 1), 1) // bogus release
	if !c.lock(1).held || c.lock(1).holder != 0 {
		t.Fatal("non-holder release changed lock state")
	}
}

// Property: for any arrival order, a barrier over N threads releases all of
// them, exactly once per generation.
func TestQuickBarrierAllReleased(t *testing.T) {
	f := func(order []uint8, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		c := NewCoordinator(n)
		released := make([]bool, n)
		// Drive arrivals in the fuzzed order (repeats = polls).
		steps := 0
		for len(order) > 0 && steps < 10000 {
			core := int(order[0]) % n
			order = order[1:]
			if released[core] {
				continue
			}
			if d := c.Sync(core, barrierInst(), int64(steps)); d.Proceed {
				released[core] = true
			}
			steps++
		}
		// Finish by polling round-robin; everyone must eventually pass.
		for i := 0; i < 10*n; i++ {
			core := i % n
			if released[core] {
				continue
			}
			if d := c.Sync(core, barrierInst(), int64(steps+i)); d.Proceed {
				released[core] = true
			}
		}
		for _, r := range released {
			if !r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a lock is never held by two cores at once under random
// acquire/release polling.
func TestQuickLockMutualExclusion(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCoordinator(4)
		holding := -1
		for step, op := range ops {
			core := int(op) % 4
			if holding == core {
				c.Sync(core, lockInst(isa.LockRelease, 0), int64(step))
				holding = -1
				continue
			}
			if d := c.Sync(core, lockInst(isa.LockAcquire, 0), int64(step)); d.Proceed {
				if holding != -1 {
					return false // two holders
				}
				holding = core
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
