package cache

import (
	"fmt"

	"repro/internal/config"
)

// TLB is a set-associative translation lookaside buffer. It reuses the
// cache line model at page granularity: a "line" is one page translation.
type TLB struct {
	cfg   config.TLB
	inner *Cache
}

// NewTLB creates a TLB with the given geometry.
func NewTLB(cfg config.TLB) *TLB {
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic(fmt.Sprintf("tlb: page size %d is not a power of two", cfg.PageSize))
	}
	inner := New(config.Cache{
		SizeBytes: cfg.Entries * cfg.PageSize,
		Assoc:     cfg.Assoc,
		LineSize:  cfg.PageSize,
	})
	return &TLB{cfg: cfg, inner: inner}
}

// Config returns the TLB geometry.
func (t *TLB) Config() config.TLB { return t.cfg }

// Access translates addr: it returns true on a TLB hit. On a miss the
// translation is installed (the page walk itself is timed by the caller
// using Config().MissLatency).
func (t *TLB) Access(addr uint64) bool {
	if t.inner.Access(addr, false) {
		return true
	}
	t.inner.Fill(addr, false)
	return false
}

// Probe reports presence without side effects.
func (t *TLB) Probe(addr uint64) bool { return t.inner.Probe(addr) }

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.inner.Hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.inner.Misses }

// Reset empties the TLB and clears statistics.
func (t *TLB) Reset() { t.inner.Reset() }

// MSHR is a file of miss status holding registers: it tracks line addresses
// with misses outstanding until a given time, so that overlapping requests
// to the same line merge instead of issuing duplicate fills. The timing
// models use it to bound memory-level parallelism and to give secondary
// misses the residual latency of the primary miss.
type MSHR struct {
	entries  int
	pending  map[uint64]int64 // line address -> completion time
	Merged   uint64           // secondary misses merged into a primary
	Rejected uint64           // misses rejected because the file was full
}

// NewMSHR creates an MSHR file with the given number of entries.
func NewMSHR(entries int) *MSHR {
	return &MSHR{entries: entries, pending: make(map[uint64]int64, entries)}
}

// Lookup returns the completion time of an outstanding miss on lineAddr, if
// any, after discarding entries that completed at or before now.
func (m *MSHR) Lookup(lineAddr uint64, now int64) (completion int64, ok bool) {
	m.expire(now)
	completion, ok = m.pending[lineAddr]
	return completion, ok
}

// Insert records a miss on lineAddr completing at completion. It reports
// false if the file is full (the caller should stall the request).
func (m *MSHR) Insert(lineAddr uint64, completion int64, now int64) bool {
	m.expire(now)
	if _, ok := m.pending[lineAddr]; ok {
		m.Merged++
		return true
	}
	if len(m.pending) >= m.entries {
		m.Rejected++
		return false
	}
	m.pending[lineAddr] = completion
	return true
}

// Outstanding returns the number of live entries at time now.
func (m *MSHR) Outstanding(now int64) int {
	m.expire(now)
	return len(m.pending)
}

func (m *MSHR) expire(now int64) {
	for a, t := range m.pending {
		if t <= now {
			delete(m.pending, a)
		}
	}
}

// Reset empties the file and clears statistics.
func (m *MSHR) Reset() {
	m.pending = make(map[uint64]int64, m.entries)
	m.Merged, m.Rejected = 0, 0
}

// ResetStats clears the TLB statistics without touching contents.
func (t *TLB) ResetStats() { t.inner.ResetStats() }
