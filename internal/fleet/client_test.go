package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simrun"
)

// fastRetry keeps client failure paths quick in tests.
var fastRetry = Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Attempts: 4}

// TestClientRetriesTransientSubmission: the service 503s twice (a
// restart, say) before accepting; the client must absorb the failures
// and deliver the completed job.
func TestClientRetriesTransientSubmission(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			if posts.Add(1) <= 2 {
				http.Error(w, "starting up", http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]any{"id": "j-1", "status": "running"})
		default:
			json.NewEncoder(w).Encode(map[string]any{
				"id": "j-1", "status": "done", "tier": "interval",
				"worker": "w1", "result": json.RawMessage(`{"cycles":42}`),
			})
		}
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Retry: fastRetry, Poll: time.Millisecond}
	res, err := cl.SubmitAndWait(context.Background(), simrun.Spec{Bench: "gcc"})
	if err != nil {
		t.Fatalf("SubmitAndWait: %v", err)
	}
	if got := posts.Load(); got != 3 {
		t.Errorf("submissions = %d, want 2 failures + 1 success", got)
	}
	if res.ID != "j-1" || res.Worker != "w1" || res.Tier != "interval" {
		t.Errorf("result = %+v", res)
	}
	if string(res.Payload) != `{"cycles":42}` {
		t.Errorf("payload = %s", res.Payload)
	}
}

// TestClientRejectsPermanently: a 400 (bad spec) must fail after one
// attempt — resubmitting a wrong spec cannot fix it.
func TestClientRejectsPermanently(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.Error(w, `{"error":"unknown bench"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Retry: fastRetry}
	if _, err := cl.SubmitAndWait(context.Background(), simrun.Spec{Bench: "nope"}); err == nil {
		t.Fatal("bad spec was accepted")
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("submissions = %d, want exactly 1 (no retry on 400)", got)
	}
}

// TestClientRetriesConnRefused: a dead endpoint is a transient transport
// failure — the client must retry (and ultimately report the failure
// once the budget is spent, not hang).
func TestClientRetriesConnRefused(t *testing.T) {
	// Bind-then-close guarantees a refused port.
	srv := httptest.NewServer(http.NotFoundHandler())
	base := srv.URL
	srv.Close()

	cl := &Client{Base: base, Retry: Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Attempts: 3}}
	start := time.Now()
	_, err := cl.SubmitAndWait(context.Background(), simrun.Spec{Bench: "gcc"})
	if err == nil {
		t.Fatal("submission to a dead endpoint succeeded")
	}
	// Three attempts with millisecond backoff: failure must be prompt.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failure took %v", elapsed)
	}
	// The error context proves the retry loop ran, not a single shot.
	if !TransientErr(err) {
		// The final error is the last transport failure, still transient
		// by classification even though the budget is spent.
		t.Logf("final error: %v", err)
	}
}

// TestClientSurfacesJobFailure: a job that settles "failed" carries the
// service's error through.
func TestClientSurfacesJobFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]any{"id": "j-2", "status": "queued"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"id": "j-2", "status": "failed", "error": "engine exploded"})
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Retry: fastRetry, Poll: time.Millisecond}
	_, err := cl.SubmitAndWait(context.Background(), simrun.Spec{Bench: "gcc"})
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("err = %v, want the service's failure message", err)
	}
}
