package multicore

import (
	"fmt"
	"testing"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/ooo"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestDiagnoseDetailed prints where cycles go for a cache-friendly profile;
// a debugging aid kept as a sanity log.
func TestDiagnoseDetailed(t *testing.T) {
	p := workload.SPECByName("mesa")
	gen := workload.New(p, 0, 1, 42)
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	bp := branch.NewUnit(m.Branch)
	warm := workload.New(p, 0, 1, 777)
	for k := 0; k < 1_000_000; k++ {
		in, ok := warm.Next()
		if !ok {
			break
		}
		mem.Inst(0, in.PC, 0)
		if in.Class.IsBranch() {
			bp.Predict(&in)
		}
		if in.Class.IsMem() {
			mem.Data(0, in.Addr, in.Class == isa.Store, 0)
		}
	}
	mem.ResetStats()
	bp.ResetStats()
	c := ooo.New(0, m.Core, bp, mem, trace.NewLimit(gen, 50_000), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
	}
	t.Logf("IPC=%.3f cycles=%d dispatchStalls=%d", c.IPC(), c.Cycles, c.DispatchStall)
	t.Logf("bp: lookups=%d misp=%d rate=%.4f", bp.Lookups, bp.Mispredictions, bp.MispredictRate())
	t.Logf("L1I: miss rate=%.4f (m=%d h=%d)", mem.L1I(0).MissRate(), mem.L1I(0).Misses, mem.L1I(0).Hits)
	t.Logf("L1D: miss rate=%.4f (m=%d h=%d)", mem.L1D(0).MissRate(), mem.L1D(0).Misses, mem.L1D(0).Hits)
	if l2 := mem.L2(); l2 != nil {
		t.Logf("L2: miss rate=%.4f (m=%d h=%d)", l2.MissRate(), l2.Misses, l2.Hits)
	}
}

// TestDiagnosePerfect compares the two models with all miss sources
// disabled: any gap is pure dispatch-rate modeling error.
func TestDiagnosePerfect(t *testing.T) {
	for _, name := range []string{"galgel", "wupwise", "eon"} {
		p := workload.SPECByName(name)
		m := config.Default(1)
		m.Branch.Kind = "perfect"
		perf := memhier.Perfect{ISide: true, DSide: true}
		var ipcs [2]float64
		for mi, model := range []Model{Detailed, Interval} {
			gen := workload.New(p, 0, 1, 42)
			cfg := RunConfig{Machine: m, Model: model, Perfect: perf}
			r := Run(cfg, []trace.Stream{trace.NewLimit(gen, 50_000)})
			ipcs[mi] = r.Cores[0].IPC
		}
		t.Logf("%s all-perfect: detailed=%.3f interval=%.3f", name, ipcs[0], ipcs[1])
	}
}

// TestDiagnoseComponents isolates branch-only and Dside-only error.
func TestDiagnoseComponents(t *testing.T) {
	for _, name := range []string{"galgel", "wupwise"} {
		p := workload.SPECByName(name)
		for _, exp := range []struct {
			label string
			perf  memhier.Perfect
			bp    string
		}{
			{"branch-only", memhier.Perfect{ISide: true, DSide: true}, "local"},
			{"dside-only", memhier.Perfect{ISide: true}, "perfect"},
			{"iside-only", memhier.Perfect{DSide: true}, "perfect"},
		} {
			m := config.Default(1)
			m.Branch.Kind = exp.bp
			var ipcs [2]float64
			for mi, model := range []Model{Detailed, Interval} {
				gen := workload.New(p, 0, 1, 42)
				warm := workload.New(p, 0, 1, 777)
				cfg := RunConfig{Machine: m, Model: model, Perfect: exp.perf,
					WarmupInsts: 1_000_000, Warmup: []trace.Stream{warm}}
				r := Run(cfg, []trace.Stream{trace.NewLimit(gen, 50_000)})
				ipcs[mi] = r.Cores[0].IPC
			}
			t.Logf("%s %s: detailed=%.3f interval=%.3f", name, exp.label, ipcs[0], ipcs[1])
		}
	}
}

// TestDiagnoseMcf digs into the memory-bound outlier.
func TestDiagnoseMcf(t *testing.T) {
	p := workload.SPECByName("mcf")
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	bp := branch.NewUnit(m.Branch)
	warm := workload.New(p, 0, 1, 777)
	for k := 0; k < 1_000_000; k++ {
		in, ok := warm.Next()
		if !ok {
			break
		}
		mem.Inst(0, in.PC, 0)
		if in.Class.IsBranch() {
			bp.Predict(&in)
		}
		if in.Class.IsMem() {
			mem.Data(0, in.Addr, in.Class == isa.Store, 0)
		}
	}
	mem.ResetStats()
	bp.ResetStats()
	gen := workload.New(p, 0, 1, 42)
	c := core.New(0, m.Core, bp, mem, trace.NewLimit(gen, 50_000), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
	}
	t.Logf("interval: IPC=%.3f events: I=%d br=%d LL=%d ser=%d hidden=%d",
		c.IPC(), c.ICacheEvents, c.BranchEvents, c.LongLoadEvents, c.SerializeEvents, c.OverlapHidden)
	t.Logf("L1D miss=%d dram req=%d dramStall=%d longLat=%d",
		mem.L1D(0).Misses, mem.DRAM().Stats().Requests, mem.DRAM().Stats().StallTotal, mem.Stats().LongLatency)
}

// TestDiagnoseMcfDetailed compares per-model event accounting for mcf.
func TestDiagnoseMcfDetailed(t *testing.T) {
	p := workload.SPECByName("mcf")
	m := config.Default(1)
	for _, model := range []Model{Detailed, Interval} {
		gen := workload.New(p, 0, 1, 42)
		warm := workload.New(p, 0, 1, 777)
		cfg := RunConfig{Machine: m, Model: model,
			WarmupInsts: 1_000_000, Warmup: []trace.Stream{warm}}
		r := Run(cfg, []trace.Stream{trace.NewLimit(gen, 50_000)})
		t.Logf("%v: IPC=%.3f cycles=%d", model, r.Cores[0].IPC, r.Cycles)
	}
	// Rebuild hierarchy to measure miss composition.
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	warm := workload.New(p, 0, 1, 777)
	for k := 0; k < 1_000_000; k++ {
		in, ok := warm.Next()
		if !ok {
			break
		}
		mem.Inst(0, in.PC, 0)
		if in.Class.IsMem() {
			mem.Data(0, in.Addr, in.Class == isa.Store, 0)
		}
	}
	mem.ResetStats()
	gen := workload.New(p, 0, 1, 42)
	var nLong, nL2, nHit, nTLB int
	var sumLat int64
	for k := 0; k < 50_000; k++ {
		in, ok := gen.Next()
		if !ok {
			break
		}
		if !in.Class.IsMem() {
			continue
		}
		res := mem.Data(0, in.Addr, in.Class == isa.Store, int64(k))
		switch {
		case res.LongLatency():
			nLong++
			sumLat += res.Latency
		case res.Kind == memhier.L2Hit:
			nL2++
		default:
			nHit++
		}
		if res.TLBMiss {
			nTLB++
		}
	}
	t.Logf("functional: long=%d (avg lat %.0f) l2=%d hit=%d tlbmiss=%d",
		nLong, float64(sumLat)/float64(max(nLong, 1)), nL2, nHit, nTLB)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDiagnoseSwimIQ tests whether the detailed model is issue-queue bound
// for deep-chain FP codes.
func TestDiagnoseSwimIQ(t *testing.T) {
	p := workload.SPECByName("swim")
	for _, iq := range []int{128, 256, 512} {
		m := config.Default(1)
		m.Branch.Kind = "perfect"
		m.Core.IssueQueueSize = iq
		gen := workload.New(p, 0, 1, 42)
		cfg := RunConfig{Machine: m, Model: Detailed,
			Perfect: memhier.Perfect{ISide: true, DSide: true}}
		r := Run(cfg, []trace.Stream{trace.NewLimit(gen, 50_000)})
		t.Logf("swim all-perfect detailed IQ=%d: IPC=%.3f", iq, r.Cores[0].IPC)
	}
}

// TestDiagnoseMultiprog compares contention effects for 8 copies of gcc.
func TestDiagnoseMultiprog(t *testing.T) {
	p := workload.SPECByName("gcc")
	for _, model := range []Model{Detailed, Interval} {
		for _, n := range []int{1, 8} {
			m := config.Default(n)
			mem := memhier.New(n, m.Mem, memhier.Perfect{})
			coord := NewCoordinator(n)
			bps := make([]*branch.Unit, n)
			var streams []trace.Stream
			for i := 0; i < n; i++ {
				bps[i] = branch.NewUnit(m.Branch)
				streams = append(streams, trace.NewLimit(workload.New(p, i, n, 42), 50_000))
			}
			var warms []trace.Stream
			for i := 0; i < n; i++ {
				warms = append(warms, workload.New(p, i, n, 777))
			}
			warmup(mem, bps, warms, 600_000)
			cores := make([]sim.Core, n)
			for i := 0; i < n; i++ {
				switch model {
				case Detailed:
					cores[i] = ooo.New(i, m.Core, bps[i], mem, streams[i], coord)
				case Interval:
					cores[i] = core.New(i, m.Core, bps[i], mem, streams[i], coord)
				}
			}
			var now int64
			for {
				done := true
				for _, c := range cores {
					if !c.Done() {
						c.Step(now)
						done = false
					}
				}
				if done {
					break
				}
				now++
			}
			var ipcList []string
			for _, c := range cores {
				ipcList = append(ipcList, fmt.Sprintf("%.2f", c.(interface{ IPC() float64 }).IPC()))
			}
			t.Logf("%v n=%d: IPCs=%v dram=%d dramStall=%d L2miss=%.3f longLat=%d",
				model, n, ipcList, mem.DRAM().Stats().Requests, mem.DRAM().Stats().StallTotal,
				mem.L2().MissRate(), mem.Stats().LongLatency)
		}
	}
}

// TestDiagnoseGcc8 isolates the contention source for 8 copies of gcc.
func TestDiagnoseGcc8(t *testing.T) {
	p := workload.SPECByName("gcc")
	for _, exp := range []struct {
		label string
		perf  memhier.Perfect
	}{
		{"all-real", memhier.Perfect{}},
		{"perfect-I", memhier.Perfect{ISide: true}},
		{"perfect-D", memhier.Perfect{DSide: true}},
	} {
		for _, model := range []Model{Detailed, Interval} {
			sum := func(n int) float64 {
				streams := make([]trace.Stream, n)
				warm := make([]trace.Stream, n)
				for i := 0; i < n; i++ {
					streams[i] = trace.NewLimit(workload.New(p, i, n, 42), 50_000)
					warm[i] = workload.New(p, i, n, 1042)
				}
				r := Run(RunConfig{Machine: config.Default(n), Model: model,
					Perfect: exp.perf, WarmupInsts: 600_000, Warmup: warm}, streams)
				tot := 0.0
				for _, c := range r.Cores {
					tot += c.IPC
				}
				return tot
			}
			alone, eight := sum(1), sum(8)
			t.Logf("%-9s %v: alone=%.3f sum8=%.3f STP=%.2f", exp.label, model, alone, eight, eight/alone)
		}
	}
}
