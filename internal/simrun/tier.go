package simrun

// Tier classifies the fidelity of a simulation answer. The lattice is
//
//	statistical < sampled < interval < detailed
//
// and orders how much of the machine's timing behaviour the answer
// actually simulated: a statistical-tier answer timed a short synthetic
// clone, a sampled-tier answer timed a handful of representative
// intervals, and the interval/detailed tiers timed the full instruction
// budget under the scenario's own core model. A serving layer may answer
// a query from any tier and later replace the answer with a higher one —
// never the reverse (the upgrade-only cache invariant).
type Tier string

const (
	// TierStatistical: the answer was extrapolated from a short
	// synthetic clone generated from a statistical profile
	// (internal/statsim) — the cheapest, least faithful tier.
	TierStatistical Tier = "statistical"
	// TierSampled: the answer timed representative SimPoint intervals
	// and combined them by phase weight (internal/sampling).
	TierSampled Tier = "sampled"
	// TierInterval: the full instruction budget ran under the interval
	// model (or another full-budget analytical model).
	TierInterval Tier = "interval"
	// TierDetailed: the full instruction budget ran under the detailed
	// out-of-order model — the top of the lattice.
	TierDetailed Tier = "detailed"
)

// tierRanks orders the lattice. Unknown tiers — including the empty
// string found in payloads written before tiers existed — rank above
// every named tier: an untagged entry was produced by the full engine
// (the only writer back then), so it is definitive and must never be
// clobbered by an estimator.
var tierRanks = map[Tier]int{
	TierStatistical: 1,
	TierSampled:     2,
	TierInterval:    3,
	TierDetailed:    4,
}

// definitiveRank is the rank of untagged/unknown tiers (see tierRanks).
const definitiveRank = 5

// Rank returns the tier's position in the lattice; higher is more
// faithful. Unknown tiers (including "") rank highest — definitive.
func (t Tier) Rank() int {
	if r, ok := tierRanks[t]; ok {
		return r
	}
	return definitiveRank
}

// AtLeast reports whether an answer at tier t satisfies a request for
// tier want.
func (t Tier) AtLeast(want Tier) bool { return t.Rank() >= want.Rank() }

// Tiers lists the named tiers, cheapest first.
func Tiers() []Tier {
	return []Tier{TierStatistical, TierSampled, TierInterval, TierDetailed}
}
