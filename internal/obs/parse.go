package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of an exposition payload.
type ParsedSample struct {
	// Name is the full sample name (for histograms this includes the
	// _bucket/_sum/_count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of an exposition payload.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    Kind
	Samples []ParsedSample
}

// ParseText parses a Prometheus text-exposition payload (the format
// WriteAll emits and Prometheus scrapes) and validates its structure:
// every sample must belong to a family with a preceding # TYPE line,
// histogram samples must use the _bucket/_sum/_count suffixes, values
// must be valid floats, and label syntax must be well-formed. It exists
// so tests can assert a /metrics payload is actually scrapable rather
// than merely greppable.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	families := map[string]*ParsedFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("obs: line %d: HELP without a metric name", lineNo)
			}
			f := families[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				families[name] = f
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			switch Kind(typ) {
			case KindCounter, KindGauge, KindHistogram:
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
			}
			f := families[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				families[name] = f
			}
			if f.Type != "" {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, name)
			}
			f.Type = Kind(typ)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		f := familyFor(families, sample.Name)
		if f == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE line", lineNo, sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("obs: family %q has no # TYPE line", name)
		}
		if f.Type == KindHistogram {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyFor resolves a sample name to its family, accepting histogram
// suffixes only for histogram-typed families.
func familyFor(families map[string]*ParsedFamily, sample string) *ParsedFamily {
	if f, ok := families[sample]; ok && f.Type != "" {
		if f.Type == KindHistogram {
			return nil // a bare sample of a histogram family is malformed
		}
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := families[base]; ok && f.Type == KindHistogram {
			return f
		}
	}
	return nil
}

// checkHistogram validates that a histogram family carries a +Inf
// bucket and a _sum/_count pair per label set.
func checkHistogram(f *ParsedFamily) error {
	hasInf, hasSum, hasCount := false, false, false
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Labels["le"] == "" {
				return fmt.Errorf("obs: histogram %q bucket without le label", f.Name)
			}
			if s.Labels["le"] == "+Inf" {
				hasInf = true
			}
		case strings.HasSuffix(s.Name, "_sum"):
			hasSum = true
		case strings.HasSuffix(s.Name, "_count"):
			hasCount = true
		}
	}
	if !hasInf || !hasSum || !hasCount {
		return fmt.Errorf("obs: histogram %q missing +Inf bucket, _sum or _count", f.Name)
	}
	return nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = cutSpace(rest)
		if !ok {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
	}
	rest = strings.TrimSpace(rest)
	if s.Name == "" {
		return s, fmt.Errorf("sample line %q has no metric name", line)
	}
	// A trailing timestamp is permitted by the format; take the first
	// field as the value.
	valStr, _, _ := cutSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// cutSpace splits at the first run of spaces.
func cutSpace(s string) (before, after string, found bool) {
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " "), true
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		// Values WriteAll emits are %q-quoted; Unquote handles escapes.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return fmt.Errorf("label %q value: %v", key, err)
		}
		dst[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}
