// SimPoint demo: phase-classify a stream whose behaviour alternates
// between two programs, then predict whole-run IPC from one timed
// representative per phase. Phase sampling is the third speedup family of
// the paper's related work (Sherwood et al.); like SMARTS sampling it is
// orthogonal to interval simulation and the two compose.
//
//	go run ./examples/simpoint
package main

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/sampling"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Build a phased stream: alternating gcc-like (branchy, cache-
	// friendly) and swim-like (streaming FP) segments.
	const segLen = 4000
	const segs = 20
	ga := workload.New(workload.SPECByName("gcc"), 0, 1, 42)
	gs := workload.New(workload.SPECByName("swim"), 0, 1, 43)
	var insts = trace.Record(ga, segLen) // initialization segment
	for s := 1; s < segs; s++ {
		g := trace.Stream(ga)
		if s%2 == 1 {
			g = gs
		}
		insts = append(insts, trace.Record(g, segLen)...)
	}

	// 1. Classify phases from code signatures alone (no timing).
	sp, err := sampling.Analyze(insts, sampling.SimPointConfig{
		IntervalLen: segLen, K: 2, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("phases: %d clusters over %d intervals (k-means took %d iterations)\n",
		sp.K, sp.Intervals(), sp.Iterations)
	fmt.Printf("assignments: %v\n", sp.Assignments)
	for c := 0; c < sp.K; c++ {
		fmt.Printf("  phase %d: weight %.2f, simulation point = interval %d\n",
			c, sp.Weights[c], sp.Representatives[c])
	}

	// 2. Time only the representatives and compare with the full run.
	m := config.Default(1)
	est, err := sampling.EstimateIPC(insts, sp, m, multicore.Interval)
	if err != nil {
		panic(err)
	}
	full, err := simrun.MustNew("",
		simrun.Label("phased gcc~swim"),
		simrun.Streams([]trace.Stream{trace.NewSliceStream(insts)}, nil),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nfull run IPC        %.3f (%d intervals timed)\n", full.Cores[0].IPC, sp.Intervals())
	fmt.Printf("simpoint estimate   %.3f (%d intervals timed)\n", est, sp.K)
	fmt.Println()
	fmt.Println("Two timed intervals stand in for the whole run; combined with the")
	fmt.Println("interval core model the two speedups multiply.")
}
