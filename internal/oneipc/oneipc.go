// Package oneipc implements the naive core model the paper cites as the
// common simplifying assumption in multi-core studies: every core executes
// one instruction per cycle except for memory accesses, which add their
// miss latency. It exists as an ablation baseline (Section 6, "Detailed
// cycle-level simulation"): interval simulation is the "easy-to-implement,
// fast and more accurate alternative for the one-IPC performance model".
package oneipc

import (
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fetchBatch is the functional→timing hand-off chunk size.
const fetchBatch = 1024

// Core is a one-IPC core model. It implements sim.Core.
type Core struct {
	id     int
	mem    *memhier.Hierarchy
	src    *trace.Buffered
	syncer sim.Syncer

	coreTime   int64
	pending    isa.Inst
	hasPending bool
	retired    uint64
	done       bool
	finishTime int64
}

// New creates a one-IPC core over the shared memory hierarchy.
func New(id int, mem *memhier.Hierarchy, src trace.Stream, syncer sim.Syncer) *Core {
	if syncer == nil {
		syncer = sim.NullSyncer{}
	}
	return &Core{
		id: id, mem: mem,
		src:    trace.NewBuffered(src, fetchBatch),
		syncer: syncer,
	}
}

// Retired implements sim.Core.
func (c *Core) Retired() uint64 { return c.retired }

// Done implements sim.Core.
func (c *Core) Done() bool { return c.done }

// FinishTime implements sim.Core.
func (c *Core) FinishTime() int64 { return c.finishTime }

// NextActive implements sim.TimeSkipper.
func (c *Core) NextActive(now int64) int64 {
	if c.coreTime > now {
		return c.coreTime
	}
	return now
}

// IPC returns retired instructions per simulated cycle.
func (c *Core) IPC() float64 {
	if c.coreTime == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.coreTime)
}

// Step implements sim.Core: one instruction per cycle plus memory latency.
func (c *Core) Step(now int64) {
	if c.done || c.coreTime != now {
		return
	}
	if !c.hasPending {
		in, ok := c.src.Next()
		if !ok {
			c.done = true
			c.finishTime = c.coreTime
			return
		}
		c.pending = in
		c.hasPending = true
	}
	in := &c.pending
	if in.Class.IsSync() {
		dec := c.syncer.Sync(c.id, in, c.coreTime)
		if !dec.Proceed {
			c.coreTime++ // poll again next cycle
			return
		}
		c.coreTime += dec.Latency
		c.hasPending = false
		c.retired++
		return
	}
	lat := int64(1)
	if in.Class.IsMem() {
		res := c.mem.Data(c.id, in.Addr, in.Class == isa.Store, c.coreTime)
		lat += res.Latency
	}
	c.coreTime += lat
	c.hasPending = false
	c.retired++
}

var _ sim.Core = (*Core)(nil)
