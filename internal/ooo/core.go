// Package ooo is the detailed cycle-level out-of-order core model — the
// "detailed simulation" baseline that interval simulation is compared
// against throughout the paper's evaluation (the role M5's 28K-line O3
// model plays in the original).
//
// The model tracks every instruction through pipeline structures cycle by
// cycle: fetch into a fetch queue behind the front-end pipeline, dispatch
// into a reorder buffer and issue queue, wakeup/select with functional-unit
// constraints and true producer/consumer dependence tracking, memory access
// through the shared hierarchy, in-order commit with a draining store
// buffer, branch redirect on mispredictions, and pipeline drains for
// serializing instructions. It is intentionally an order of magnitude more
// work per instruction than the interval model; that gap is the subject of
// Figures 9 and 10.
package ooo

import (
	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

// noProducer marks a source operand with no in-flight producer.
const noProducer = ^uint64(0)

// fetchBatch is the functional→timing hand-off chunk size.
const fetchBatch = 1024

type fetchEntry struct {
	inst       isa.Inst
	readyAt    int64 // leaves the front-end pipeline at this cycle
	mispredict bool
}

type robEntry struct {
	inst     isa.Inst
	seq      uint64 // dispatch sequence number (dense within the ROB)
	issued   bool
	complete int64 // completion (writeback) time, valid once issued
	misp     bool  // mispredicted branch
	// Producer sequence numbers for each source operand, or noProducer.
	prod1, prod2 uint64
}

// Core is one detailed out-of-order core. Create with New, then Step once
// per global cycle.
type Core struct {
	id     int
	cfg    config.Core
	bp     *branch.Unit
	mem    *memhier.Hierarchy
	src    *trace.Buffered
	syncer sim.Syncer

	// Front end.
	fetchPending    []fetchEntry
	fetchStallUntil int64
	lastFetchLine   uint64 // fetch is line-granular: one I-access per line
	redirects       int    // in-flight mispredicted branches blocking fetch
	srcDone         bool
	nextInst        isa.Inst
	nextValid       bool

	// Back end. The ROB is a FIFO slice; entry with sequence s lives at
	// index s-rob[0].seq because dispatch sequences are dense.
	rob      []robEntry
	iq       []uint64 // sequence numbers awaiting issue, program order
	lsqCount int

	dispatchSeq uint64
	// lastWriter maps each architectural register to the sequence of
	// its most recent in-flight writer (noProducer if none in flight).
	lastWriter [isa.NumRegs]uint64
	// storeLines counts in-flight (dispatched, uncommitted) stores per
	// cache line for store-to-load forwarding disambiguation.
	storeLines map[uint64]int

	// Store buffer: committed stores draining to memory through a small
	// number of ports (outstanding store misses overlap, as through
	// MSHRs in a real machine).
	storeBuf   []uint64
	sbPortFree [4]int64

	syncWait bool

	retired    uint64
	done       bool
	finishTime int64

	// Statistics.
	Cycles        int64
	DispatchStall int64
}

// New creates a detailed core. The branch unit and hierarchy are shared
// miss-event simulators, identical to those driving the interval model.
func New(id int, cfg config.Core, bp *branch.Unit, mem *memhier.Hierarchy, src trace.Stream, syncer sim.Syncer) *Core {
	if syncer == nil {
		syncer = sim.NullSyncer{}
	}
	c := &Core{
		id:     id,
		cfg:    cfg,
		bp:     bp,
		mem:    mem,
		src:    trace.NewBuffered(src, fetchBatch),
		syncer: syncer,
		rob:    make([]robEntry, 0, cfg.ROBSize),
		iq:     make([]uint64, 0, cfg.IssueQueueSize),
	}
	for i := range c.lastWriter {
		c.lastWriter[i] = noProducer
	}
	c.storeLines = make(map[uint64]int)
	return c
}

// Retired implements sim.Core.
func (c *Core) Retired() uint64 { return c.retired }

// Done implements sim.Core.
func (c *Core) Done() bool { return c.done }

// FinishTime implements sim.Core.
func (c *Core) FinishTime() int64 { return c.finishTime }

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.Cycles)
}

// Step implements sim.Core: simulate one cycle at global time now.
func (c *Core) Step(now int64) {
	if c.done {
		return
	}
	c.Cycles++
	c.commit(now)
	c.drainStoreBuffer(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)

	if c.srcDone && !c.nextValid && len(c.fetchPending) == 0 &&
		len(c.rob) == 0 && len(c.storeBuf) == 0 {
		c.done = true
		c.finishTime = now
	}
}

// entryBySeq returns the ROB entry with sequence s, or nil if it has
// already committed.
func (c *Core) entryBySeq(s uint64) *robEntry {
	if len(c.rob) == 0 || s < c.rob[0].seq {
		return nil
	}
	return &c.rob[s-c.rob[0].seq]
}

// peek pulls the next stream instruction into the lookahead slot (the
// buffered reader refills from the stream one chunk at a time).
func (c *Core) peek() bool {
	if c.nextValid {
		return true
	}
	if c.srcDone {
		return false
	}
	in, ok := c.src.Next()
	if !ok {
		c.srcDone = true
		return false
	}
	c.nextInst = in
	c.nextValid = true
	return true
}

// fetch brings up to FetchWidth instructions into the front-end pipeline,
// charging I-cache misses and stopping at mispredicted branches until they
// resolve.
func (c *Core) fetch(now int64) {
	if now < c.fetchStallUntil || c.redirects > 0 {
		return
	}
	// fetchPending holds everything in flight in the front end: the
	// pipeline stages (FrontendDepth stages of FetchWidth) plus the
	// fetch queue proper. Capping it at the queue size alone would let
	// the 7-cycle front-end latency throttle dispatch (Little's law).
	capacity := c.cfg.FetchQueue + c.cfg.FrontendDepth*c.cfg.FetchWidth
	for fetched := 0; fetched < c.cfg.FetchWidth; fetched++ {
		if len(c.fetchPending) >= capacity {
			return
		}
		if !c.peek() {
			return
		}
		in := c.nextInst

		if line := in.PC >> 6; line != c.lastFetchLine {
			ires := c.mem.Inst(c.id, in.PC, now)
			if ires.Latency > 0 {
				// I-cache/I-TLB miss: the fetch unit stalls for
				// the miss; the instruction is fetched when it
				// returns.
				c.fetchStallUntil = now + ires.Latency
				return
			}
			c.lastFetchLine = line
		}

		fe := fetchEntry{inst: in, readyAt: now + int64(c.cfg.FrontendDepth)}
		if in.Class.IsBranch() && c.bp.Predict(&in) {
			fe.mispredict = true
		}
		c.nextValid = false
		c.fetchPending = append(c.fetchPending, fe)
		if fe.mispredict {
			// Wrong-path fetch: nothing useful enters until the
			// branch resolves (functional-first streams carry only
			// the correct path, so we model the redirect as a
			// fetch stall ending at branch completion).
			c.redirects++
			return
		}
	}
}

// dispatch moves instructions from the front-end into the ROB/IQ, honoring
// widths, structure capacities and serializing semantics.
func (c *Core) dispatch(now int64) {
	for n := 0; n < c.cfg.DecodeWidth; n++ {
		if len(c.fetchPending) == 0 || c.fetchPending[0].readyAt > now {
			if len(c.rob) > 0 || c.syncWait {
				c.DispatchStall++
			}
			return
		}
		fe := c.fetchPending[0]
		in := &fe.inst

		if in.Class == isa.Serializing || in.Class.IsSync() {
			// Serializing: wait for the ROB to drain, then execute
			// alone. Sync instructions additionally need the
			// driver's permission.
			if len(c.rob) > 0 {
				c.DispatchStall++
				return
			}
			lat := int64(1)
			if in.Class.IsSync() {
				dec := c.syncer.Sync(c.id, in, now)
				if !dec.Proceed {
					c.syncWait = true
					c.DispatchStall++
					return
				}
				c.syncWait = false
				lat = dec.Latency
			}
			c.fetchPending = c.fetchPending[1:]
			c.rob = append(c.rob, robEntry{
				inst: *in, seq: c.dispatchSeq,
				issued: true, complete: now + lat,
			})
			c.dispatchSeq++
			return
		}

		if len(c.rob) >= c.cfg.ROBSize || len(c.iq) >= c.cfg.IssueQueueSize {
			c.DispatchStall++
			return
		}
		if in.Class.IsMem() {
			if c.lsqCount >= c.cfg.LSQSize {
				c.DispatchStall++
				return
			}
			c.lsqCount++
			if in.Class == isa.Store {
				c.storeLines[in.Addr>>6]++
			}
		}
		c.fetchPending = c.fetchPending[1:]

		e := robEntry{
			inst: *in, seq: c.dispatchSeq, misp: fe.mispredict,
			prod1: noProducer, prod2: noProducer,
		}
		c.dispatchSeq++
		if in.Src1 != isa.RegNone {
			e.prod1 = c.lastWriter[in.Src1]
		}
		if in.Src2 != isa.RegNone {
			e.prod2 = c.lastWriter[in.Src2]
		}
		if in.HasDst() {
			c.lastWriter[in.Dst] = e.seq
		}
		c.rob = append(c.rob, e)
		c.iq = append(c.iq, e.seq)
	}
}

// srcReady reports whether the producer with sequence s has a result
// available at time now.
func (c *Core) srcReady(s uint64, now int64) bool {
	if s == noProducer {
		return true
	}
	p := c.entryBySeq(s)
	if p == nil {
		return true // already committed
	}
	return p.issued && p.complete <= now
}

// issue selects up to IssueWidth ready instructions oldest-first under
// functional-unit constraints and computes their completion times.
func (c *Core) issue(now int64) {
	if len(c.iq) == 0 {
		return
	}
	issued := 0
	intFU, lsFU, fpFU := c.cfg.IntALUs, c.cfg.LoadStoreFUs, c.cfg.FPUnits
	w := 0
	for r := 0; r < len(c.iq); r++ {
		seq := c.iq[r]
		e := c.entryBySeq(seq)
		if e == nil {
			continue // defensive; committed entries leave the IQ at issue
		}
		if issued >= c.cfg.IssueWidth ||
			!c.srcReady(e.prod1, now) || !c.srcReady(e.prod2, now) {
			c.iq[w] = seq
			w++
			continue
		}
		var fu *int
		switch e.inst.Class {
		case isa.Load, isa.Store:
			fu = &lsFU
		case isa.FPOp:
			fu = &fpFU
		default:
			fu = &intFU
		}
		if *fu == 0 {
			c.iq[w] = seq
			w++
			continue
		}
		*fu--
		issued++
		e.issued = true
		e.complete = c.execute(&e.inst, now)
		if e.misp {
			// Redirect: fetch resumes when the branch resolves;
			// the front-end pipeline depth is then paid again by
			// the new entries' readyAt.
			if e.complete > c.fetchStallUntil {
				c.fetchStallUntil = e.complete
			}
			c.redirects--
		}
	}
	c.iq = c.iq[:w]
}

// execute computes the completion time of an instruction issued at now,
// performing the memory access for loads.
func (c *Core) execute(in *isa.Inst, now int64) int64 {
	lat := int64(c.cfg.ExecLatency(in.Class))
	if in.Class == isa.Load {
		// Memory disambiguation: a load whose line has an in-flight
		// older store forwards from the store queue instead of
		// accessing the cache (store-to-load forwarding).
		if c.storeLines[in.Addr>>6] > 0 {
			return now + lat
		}
		res := c.mem.Data(c.id, in.Addr, false, now)
		lat += res.Latency
	}
	if in.Class == isa.Store {
		// Stores only compute their address at issue; the memory
		// access happens at store-buffer drain after commit.
		lat = 1
	}
	return now + lat
}

// commit retires completed instructions in order, moving stores to the
// store buffer.
func (c *Core) commit(now int64) {
	n := 0
	for n < c.cfg.DecodeWidth && len(c.rob) > 0 {
		e := &c.rob[0]
		if !e.issued || e.complete > now {
			return
		}
		if e.inst.Class == isa.Store {
			if len(c.storeBuf) >= c.cfg.StoreBufferSize {
				return // store buffer full blocks commit
			}
			c.storeBuf = append(c.storeBuf, e.inst.Addr)
			line := e.inst.Addr >> 6
			if n := c.storeLines[line]; n > 1 {
				c.storeLines[line] = n - 1
			} else {
				delete(c.storeLines, line)
			}
		}
		if e.inst.Class.IsMem() {
			c.lsqCount--
		}
		if e.inst.HasDst() && c.lastWriter[e.inst.Dst] == e.seq {
			c.lastWriter[e.inst.Dst] = noProducer
		}
		c.rob = c.rob[1:]
		c.retired++
		n++
	}
}

// drainStoreBuffer writes buffered stores to the memory system, overlapping
// up to len(sbPortFree) outstanding store misses.
func (c *Core) drainStoreBuffer(now int64) {
	for p := range c.sbPortFree {
		if len(c.storeBuf) == 0 {
			return
		}
		if now < c.sbPortFree[p] {
			continue
		}
		addr := c.storeBuf[0]
		c.storeBuf = c.storeBuf[1:]
		res := c.mem.Data(c.id, addr, true, now)
		c.sbPortFree[p] = now + 1 + res.Latency
	}
}

var _ sim.Core = (*Core)(nil)
