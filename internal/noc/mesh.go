package noc

import "fmt"

// Mesh is a 2D mesh with XY dimension-order routing. Cores occupy grid
// positions 0..cores-1 in row-major order; the hub (shared L2 / memory
// controller) occupies position cores. XY routing first walks the X
// dimension to the hub's column, then the Y dimension to its row; with
// per-link time-stamped reservations this is deadlock-free by construction
// (the route acquires resources in a fixed dimension order and never holds
// a link while waiting — a delayed header simply starts later).
type Mesh struct {
	width, height int
	hub           int
	perHop        int64
	occupancy     int64

	// free[n][d] is the time directed link (node n, direction d) becomes
	// free. Directions: 0 east (+x), 1 west (-x), 2 south (+y), 3 north
	// (-y).
	free [][4]int64

	Stats
}

// NewMesh creates a mesh connecting cores cores and one hub node, with the
// given per-hop latency and per-link occupancy per transaction in cycles.
// The grid is the smallest near-square that holds cores+1 nodes.
func NewMesh(cores, perHop, occupancy int) *Mesh {
	if cores < 1 {
		panic(fmt.Sprintf("noc: mesh needs at least one core, got %d", cores))
	}
	if occupancy < 1 {
		occupancy = 1
	}
	nodes := cores + 1
	w := 1
	for w*w < nodes {
		w++
	}
	h := (nodes + w - 1) / w
	return &Mesh{
		width:     w,
		height:    h,
		hub:       cores,
		perHop:    int64(perHop),
		occupancy: int64(occupancy),
		free:      make([][4]int64, w*h),
	}
}

// Width returns the grid width in nodes.
func (m *Mesh) Width() int { return m.width }

// Height returns the grid height in nodes.
func (m *Mesh) Height() int { return m.height }

// Hub returns the hub's node index.
func (m *Mesh) Hub() int { return m.hub }

func (m *Mesh) pos(node int) (x, y int) { return node % m.width, node / m.width }

// Hops returns the XY route length in links from node src to the hub.
func (m *Mesh) Hops(src int) int {
	sx, sy := m.pos(src)
	hx, hy := m.pos(m.hub)
	dx, dy := hx-sx, hy-sy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// AccessFrom implements Fabric: the transaction walks the XY route link by
// link, waiting for each link to free.
func (m *Mesh) AccessFrom(core int, now int64) int64 {
	m.Transactions++
	t := now
	x, y := m.pos(core)
	hx, hy := m.pos(m.hub)
	node := core
	step := func(dir int, nx, ny int) {
		lk := &m.free[node][dir]
		start := t
		if *lk > start {
			start = *lk
		}
		m.StallTotal += start - t
		*lk = start + m.occupancy
		m.BusyTotal += m.occupancy
		t = start + m.perHop
		x, y = nx, ny
		node = ny*m.width + nx
		m.HopTotal++
	}
	for x != hx {
		if x < hx {
			step(0, x+1, y)
		} else {
			step(1, x-1, y)
		}
	}
	for y != hy {
		if y < hy {
			step(2, x, y+1)
		} else {
			step(3, x, y-1)
		}
	}
	return t - now
}

// Utilization implements Fabric. Each node has up to four outgoing links;
// edge links that cannot exist are still counted conservatively, so the
// reported figure slightly understates true per-link utilization.
func (m *Mesh) Utilization(now int64) float64 {
	return m.Stats.utilization(4*len(m.free), now)
}

// ResetStats implements Fabric.
func (m *Mesh) ResetStats() {
	for i := range m.free {
		m.free[i] = [4]int64{}
	}
	m.Stats = Stats{}
}

var _ Fabric = (*Mesh)(nil)
