package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/report"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// Encode is the service's canonical result encoding: the deterministic
// report.JSON summary. It is the cache's payload encoder, so cached and
// fresh results are byte-identical. Estimator-tier results carry their
// engine and tier in the payload; full-engine results stay untagged, so
// their payloads are byte-identical to a direct simrun.Run + report.JSON
// and an untagged payload always reads back as definitive.
func Encode(res simrun.Result) ([]byte, error) {
	if res.Engine != "" && res.Engine != simrun.DefaultEngine {
		return report.JSONTiered(res.Result, res.Engine, string(res.Tier))
	}
	return report.JSON(res.Result)
}

// DecodeTier recovers the fidelity tier of a persisted payload — the
// simrun cache's DecodeTier hook. Untagged payloads (full-engine results
// and payloads written before tiers existed) are definitive.
func DecodeTier(payload []byte) simrun.Tier {
	return simrun.Tier(report.PayloadTier(payload))
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON serves v with the API's standard headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
	w.Write([]byte("\n"))
}

// writeError serves the API's error shape.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := simrun.ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, dup, err := s.SubmitSpec(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var bad *BadRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	doc := job.Doc()
	w.Header().Set("Location", "/v1/jobs/"+doc.ID)
	status := http.StatusAccepted
	if dup {
		status = http.StatusOK
	}
	writeJSON(w, status, doc)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	docs := s.Jobs()
	type item struct {
		ID     string `json:"id"`
		Status Status `json:"status"`
	}
	items := make([]item, len(docs))
	for i, d := range docs {
		items[i] = item{ID: d.ID, Status: d.Status}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": items})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Doc())
}

// handleEvents streams job-status transitions as server-sent events: one
// "status" event per transition, starting with the current state, ending
// after the terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("simd: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events := job.Subscribe()
	for {
		select {
		case doc, open := <-events:
			if !open {
				return
			}
			raw, err := json.Marshal(doc)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: status\ndata: %s\n\n", raw)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Catalog describes everything a client can ask the service to simulate.
// Engines lists the registered answering engines (Spec.Engine values) and
// Tiers the fidelity lattice their answers are tagged with, cheapest
// first.
type Catalog struct {
	Models     []string            `json:"models"`
	Engines    []string            `json:"engines"`
	Tiers      []string            `json:"tiers"`
	Knobs      map[string][]string `json:"knobs"`
	Benchmarks CatalogBenchmarks   `json:"benchmarks"`
}

// CatalogBenchmarks lists the benchmark profiles by suite.
type CatalogBenchmarks struct {
	SPEC   []string `json:"spec"`
	PARSEC []string `json:"parsec"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := Catalog{
		Models:  simrun.Models(),
		Engines: simrun.Engines(),
		Knobs:   simrun.Knobs(),
	}
	for _, t := range simrun.Tiers() {
		cat.Tiers = append(cat.Tiers, string(t))
	}
	for _, p := range workload.SPEC() {
		cat.Benchmarks.SPEC = append(cat.Benchmarks.SPEC, p.Name)
	}
	for _, p := range workload.PARSEC() {
		cat.Benchmarks.PARSEC = append(cat.Benchmarks.PARSEC, p.Name)
	}
	sort.Strings(cat.Benchmarks.SPEC)
	sort.Strings(cat.Benchmarks.PARSEC)
	writeJSON(w, http.StatusOK, cat)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves Prometheus-style text counters: service traffic,
// queue occupancy and the result cache's hit/miss/dedup counts.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counters := []struct {
		name  string
		help  string
		value uint64
	}{
		{"simd_jobs_submitted_total", "Jobs accepted (new scenarios).", s.submitted.Load()},
		{"simd_jobs_deduplicated_total", "Submissions joined onto an existing job.", s.deduped.Load()},
		{"simd_jobs_rejected_total", "Submissions rejected because the queue was full.", s.rejected.Load()},
		{"simd_jobs_completed_total", "Jobs finished successfully.", s.completed.Load()},
		{"simd_jobs_failed_total", "Jobs that errored.", s.failed.Load()},
		{"simd_queue_depth", "Jobs waiting for a worker.", uint64(s.QueueLen())},
		{"simd_cache_runs_total", "Simulator executions (cache misses).", cs.Runs},
		{"simd_cache_hits_total", "In-memory result-cache hits.", cs.Hits},
		{"simd_cache_disk_hits_total", "Persistent-store hits.", cs.DiskHits},
		{"simd_cache_flight_waits_total", "Callers that piggybacked on an in-flight run.", cs.Waits},
		{"simd_cache_upgrades_total", "Cache entries upgraded in place to a higher tier.", cs.Upgrades},
		{"simd_tier_fast_answers_total", "Jobs answered below full fidelity.", s.fast.Load()},
		{"simd_tier_upgrades_total", "Background full-fidelity upgrades that landed.", s.upgraded.Load()},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			c.name, c.help, c.name, metricType(c.name), c.name, c.value)
	}
}

// metricType distinguishes the one gauge from the counters.
func metricType(name string) string {
	if name == "simd_queue_depth" {
		return "gauge"
	}
	return "counter"
}
