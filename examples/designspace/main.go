// Design-space study: the paper's 3D-stacking case study (Figure 8),
// done the way interval simulation is meant to be used — sweeping a
// high-level architecture trade-off quickly and reading off the design
// decision.
//
// Two machines compete for the same die area:
//
//   - 2 cores + 4MB shared L2 + external DRAM behind a 16-byte bus
//
//   - 4 cores + no L2 + 3D-stacked DRAM (125 cycles) behind a 128-byte bus
//
//     go run ./examples/designspace
package main

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/simrun"
	"repro/internal/workload"
)

func run(bench string, machine config.Machine) simrun.Result {
	res, err := simrun.MustNew(bench,
		simrun.Machine(machine),
		simrun.Warmup(300_000),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	dual := config.Default(2)   // 2 cores + L2 + external DRAM
	quad := config.Stacked3D(4) // 4 cores + 3D DRAM, no L2

	fmt.Println("3D-stacking trade-off (interval simulation, execution cycles):")
	fmt.Printf("%-14s %12s %12s  %s\n", "benchmark", "2c+L2", "4c+3D", "decision")
	for _, p := range workload.PARSEC() {
		a := run(p.Name, dual)
		b := run(p.Name, quad)
		decision := "keep the L2 (2 cores)"
		if b.Cycles < a.Cycles {
			decision = "stack DRAM (4 cores)"
		}
		fmt.Printf("%-14s %12d %12d  %s\n", p.Name, a.Cycles, b.Cycles, decision)
	}
	fmt.Println()
	fmt.Println("Compute- and bandwidth-hungry benchmarks profit from more cores and")
	fmt.Println("stacked-DRAM bandwidth; cache-sensitive ones keep the big L2.")
}
