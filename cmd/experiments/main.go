// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig 5            # one figure (4a,4b,4c,4d,5,6,7,8,9,10,ablation)
//	experiments -all              # everything, in paper order
//	experiments -list             # list experiments and the baseline config
//	experiments -quick -fig 7     # reduced sizing for a fast look
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/config"
	"repro/internal/experiments"
)

func main() {
	// Ctrl-C / SIGTERM cancels the experiment batch; experiments unwind
	// with ErrInterrupted, recovered here into a clean exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && err == experiments.ErrInterrupted {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			panic(r)
		}
	}()
	var (
		fig    = flag.String("fig", "", "figure to regenerate: 4a,4b,4c,4d,5,6,7,8,9,10,ablation")
		all    = flag.Bool("all", false, "regenerate every figure")
		list   = flag.Bool("list", false, "list experiments and print the Table 1 baseline")
		quick  = flag.Bool("quick", false, "reduced sizing (smoke run)")
		insts  = flag.Int("insts", 0, "override per-thread instruction budget")
		warmup = flag.Int("warmup", 0, "override functional-warmup length")
		seed   = flag.Int64("seed", 0, "override workload seed")
		jobs   = flag.Int("j", 1, "host worker goroutines for independent runs (0 = all host cores; figures 9/10 stay sequential)")
	)
	flag.Parse()

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Ctx = ctx
	if *insts > 0 {
		opts.Insts = *insts
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Jobs = *jobs
	if *jobs == 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}

	switch {
	case *list:
		printList()
	case *all:
		for _, t := range opts.All() {
			fmt.Println(t.Format())
		}
		for _, t := range opts.Extensions() {
			fmt.Println(t.Format())
		}
	case *fig != "":
		t, err := runOne(opts, *fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(t.Format())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(opts experiments.Opts, fig string) (experiments.Table, error) {
	switch fig {
	case "4a", "4b", "4c", "4d":
		return opts.Fig4(fig), nil
	case "5":
		return opts.Fig5(), nil
	case "6":
		return opts.Fig6(), nil
	case "7":
		return opts.Fig7(), nil
	case "8":
		return opts.Fig8(), nil
	case "9":
		return opts.Fig9(), nil
	case "10":
		return opts.Fig10(), nil
	case "ablation":
		return opts.Ablation(), nil
	case "model-ablation":
		return opts.AblationModel(), nil
	case "fabric":
		return opts.Fabric(), nil
	case "dram":
		return opts.DRAMStudy(), nil
	case "scale16":
		return opts.Scale16(), nil
	case "predictors":
		return opts.Predictors(), nil
	case "cophase":
		return opts.CoPhase(), nil
	default:
		return experiments.Table{}, fmt.Errorf(
			"unknown figure %q (want 4a,4b,4c,4d,5,6,7,8,9,10,ablation,model-ablation,fabric,dram,scale16)", fig)
	}
}

func printList() {
	fmt.Println("Experiments (paper artifact -> -fig argument):")
	fmt.Println("  Figure 4(a-d)  step-by-step accuracy      -fig 4a|4b|4c|4d")
	fmt.Println("  Figure 5       single-threaded accuracy   -fig 5")
	fmt.Println("  Figure 6       multi-program STP/ANTT     -fig 6")
	fmt.Println("  Figure 7       PARSEC scaling accuracy    -fig 7")
	fmt.Println("  Figure 8       3D-stacking case study     -fig 8")
	fmt.Println("  Figure 9       SPEC simulation speedup    -fig 9")
	fmt.Println("  Figure 10      PARSEC simulation speedup  -fig 10")
	fmt.Println("  (extra)        one-IPC ablation           -fig ablation")
	fmt.Println("  (extra)        §6 refinement ablations    -fig model-ablation")
	fmt.Println("  (extra)        bus/mesh/ring fabrics      -fig fabric")
	fmt.Println("  (extra)        fixed vs banked DRAM       -fig dram")
	fmt.Println("  (extra)        16/32-core scaling         -fig scale16")
	fmt.Println("  (extra)        predictor comparison       -fig predictors")
	fmt.Println("  (extra)        co-phase matrix            -fig cophase")
	fmt.Println()
	m := config.Default(1)
	fmt.Println("Table 1 baseline core:")
	fmt.Printf("  ROB %d, IQ %d, LSQ %d, store buffer %d\n",
		m.Core.ROBSize, m.Core.IssueQueueSize, m.Core.LSQSize, m.Core.StoreBufferSize)
	fmt.Printf("  decode/dispatch/commit %d-wide, issue %d-wide, fetch %d-wide\n",
		m.Core.DecodeWidth, m.Core.IssueWidth, m.Core.FetchWidth)
	fmt.Printf("  FUs: %d int, %d load/store, %d FP; latencies load %d, mul %d, fp %d, div %d\n",
		m.Core.IntALUs, m.Core.LoadStoreFUs, m.Core.FPUnits,
		m.Core.LatLoad, m.Core.LatMul, m.Core.LatFP, m.Core.LatDiv)
	fmt.Printf("  fetch queue %d, front-end depth %d\n", m.Core.FetchQueue, m.Core.FrontendDepth)
	fmt.Printf("  predictor: %s (%d x %d-bit histories, %d-entry PHT), BTB %d/%d-way, RAS %d\n",
		m.Branch.Kind, m.Branch.LocalHistoryEntries, m.Branch.LocalHistoryBits,
		m.Branch.PHTEntries, m.Branch.BTBEntries, m.Branch.BTBAssoc, m.Branch.RASEntries)
	fmt.Println("Table 1 memory subsystem:")
	fmt.Printf("  L1I %dKB/%d-way, L1D %dKB/%d-way, L2 %dMB/%d-way %d-cycle (shared), MOESI\n",
		m.Mem.L1I.SizeBytes>>10, m.Mem.L1I.Assoc, m.Mem.L1D.SizeBytes>>10, m.Mem.L1D.Assoc,
		m.Mem.L2.SizeBytes>>20, m.Mem.L2.Assoc, m.Mem.L2.Latency)
	fmt.Printf("  DRAM %d cycles, %dB/cycle memory bus\n", m.Mem.DRAMLatency, m.Mem.BusBytes)
}
