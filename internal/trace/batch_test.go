package trace

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// synthetic returns a deterministic instruction sequence for equivalence
// tests.
func synthetic(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	rng := rand.New(rand.NewSource(11))
	for i := range out {
		out[i] = isa.Inst{
			Class: isa.Class(rng.Intn(int(isa.NumClasses))),
			PC:    uint64(0x400000 + 4*i),
			Addr:  uint64(rng.Int63()),
			Seq:   uint64(i),
		}
	}
	return out
}

// nextOnly hides any batch capability so Batched must fall back to the
// legacy adapter.
type nextOnly struct{ s Stream }

func (n nextOnly) Next() (isa.Inst, bool) { return n.s.Next() }

// TestBatchedMatchesNext: for every stream shape, draining via NextBatch
// with random chunk sizes must yield exactly the sequence Next yields.
func TestBatchedMatchesNext(t *testing.T) {
	insts := synthetic(10_000)
	shapes := map[string]func() Stream{
		"slice":           func() Stream { return NewSliceStream(insts) },
		"limit-slice":     func() Stream { return NewLimit(NewSliceStream(insts), 7_777) },
		"limit-nextonly":  func() Stream { return NewLimit(nextOnly{NewSliceStream(insts)}, 7_777) },
		"adapter":         func() Stream { return nextOnly{NewSliceStream(insts)} },
		"limit-overlong":  func() Stream { return NewLimit(NewSliceStream(insts), len(insts)+5) },
		"nested-limit":    func() Stream { return NewLimit(NewLimit(NewSliceStream(insts), 9_000), 8_000) },
		"limit-zero":      func() Stream { return NewLimit(NewSliceStream(insts), 0) },
		"adapter-batched": func() Stream { return Batched(nextOnly{NewSliceStream(insts)}) },
	}
	for name, mk := range shapes {
		t.Run(name, func(t *testing.T) {
			want := drainNext(mk())
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 5; trial++ {
				got := drainBatch(mk(), rng)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d insts via NextBatch, %d via Next", trial, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: inst %d differs: %+v vs %+v", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func drainNext(s Stream) []isa.Inst {
	var out []isa.Inst
	for {
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func drainBatch(s Stream, rng *rand.Rand) []isa.Inst {
	b := Batched(s)
	var out []isa.Inst
	buf := make([]isa.Inst, 512)
	for {
		n := 1 + rng.Intn(len(buf))
		k := b.NextBatch(buf[:n])
		if k == 0 {
			return out
		}
		out = append(out, buf[:k]...)
	}
}

// TestBatchedMixedConsumption: interleaving Next and NextBatch on one
// stream must still produce the underlying sequence exactly once.
func TestBatchedMixedConsumption(t *testing.T) {
	insts := synthetic(5_000)
	b := Batched(NewLimit(NewSliceStream(insts), 4_000))
	rng := rand.New(rand.NewSource(9))
	var out []isa.Inst
	buf := make([]isa.Inst, 64)
	for {
		if rng.Intn(2) == 0 {
			in, ok := b.Next()
			if !ok {
				break
			}
			out = append(out, in)
		} else {
			k := b.NextBatch(buf[:1+rng.Intn(64)])
			if k == 0 {
				break
			}
			out = append(out, buf[:k]...)
		}
	}
	if len(out) != 4_000 {
		t.Fatalf("drained %d insts, want 4000", len(out))
	}
	for i := range out {
		if out[i] != insts[i] {
			t.Fatalf("inst %d differs", i)
		}
	}
}

// TestRecordUsesWholeStream: Record must stop at either bound.
func TestRecordBounds(t *testing.T) {
	insts := synthetic(100)
	if got := Record(NewSliceStream(insts), 40); len(got) != 40 {
		t.Fatalf("Record(.., 40) = %d insts", len(got))
	}
	if got := Record(NewSliceStream(insts), 500); len(got) != 100 {
		t.Fatalf("Record(.., 500) = %d insts", len(got))
	}
	if got := Record(nextOnly{NewSliceStream(insts)}, 500); len(got) != 100 {
		t.Fatalf("Record(adapter, 500) = %d insts", len(got))
	}
}
