package workload

import (
	"testing"

	"repro/internal/isa"
)

// skipMatches asserts the core v3 contract: SkipTo(n) followed by m
// instructions is byte-identical to generating n+m instructions straight
// and discarding the first n.
func skipMatches(t testing.TB, p *Profile, seed int64, slot int, n uint64, m int) {
	t.Helper()
	a := NewSlot(p, 0, 1, seed, slot)
	b := NewSlot(p, 0, 1, seed, slot)
	for i := uint64(0); i < n; i++ {
		if _, ok := a.Next(); !ok {
			break
		}
	}
	if err := b.SkipTo(n); err != nil {
		t.Fatalf("%s seed=%d slot=%d SkipTo(%d): %v", p.Name, seed, slot, n, err)
	}
	for i := 0; i < m; i++ {
		x, okA := a.Next()
		y, okB := b.Next()
		if okA != okB || x != y {
			t.Fatalf("%s seed=%d slot=%d: stream diverges %d after SkipTo(%d):\nstraight: %+v (ok=%v)\nskipped:  %+v (ok=%v)",
				p.Name, seed, slot, i, n, x, okA, y, okB)
		}
		if !okA {
			break
		}
	}
}

// TestSkipToConformance drives SkipTo across chunk boundaries, at exact
// boundaries, within the first chunk, and past large distances, on both
// the O(1) path (single-threaded profiles) and the sequential fallback
// (synchronization profiles).
func TestSkipToConformance(t *testing.T) {
	positions := []uint64{0, 1, 17, ChunkLen - 1, ChunkLen, ChunkLen + 1,
		3*ChunkLen - 5, 5 * ChunkLen, 7*ChunkLen + 1234}
	for _, name := range []string{"gcc", "mcf", "swim", "art"} {
		p := SPECByName(name)
		if !New(p, 0, 1, 1).Skippable() {
			t.Fatalf("%s: single-threaded profile not skippable", name)
		}
		for _, n := range positions {
			skipMatches(t, p, 42, 0, n, 2000)
		}
	}
	// Slots must not perturb the skip contract (the slot never enters a
	// draw).
	skipMatches(t, SPECByName("gcc"), 42, 5, 2*ChunkLen+100, 2000)
	// Synchronization profiles use the sequential fallback.
	for _, name := range []string{"streamcluster", "fluidanimate"} {
		p := PARSECByName(name)
		if New(p, 0, 2, 1).Skippable() {
			t.Fatalf("%s: synchronization profile reported skippable", name)
		}
		skipMatches(t, p, 42, 0, ChunkLen+77, 2000)
	}
}

// TestSkipToIsO1 asserts the mechanism, not just the result: a skip deep
// into the stream must replay fewer than ChunkLen instructions, which it
// proves by consuming no budget beyond the chunk remainder.
func TestSkipToIsO1(t *testing.T) {
	p := SPECByName("gcc")
	g := New(p, 0, 1, 42)
	const target = 1_000_000_000 // a billion instructions: sequential replay would take minutes
	if err := g.SkipTo(target); err != nil {
		t.Fatal(err)
	}
	in, ok := g.Next()
	if !ok {
		t.Fatal("stream ended after skip")
	}
	if in.Seq != target {
		t.Fatalf("Seq after SkipTo(%d) = %d", target, in.Seq)
	}
}

// TestSkipToBackward: skippable streams can skip backward (state is a
// pure function of position); synchronization streams must refuse.
func TestSkipToBackward(t *testing.T) {
	g := New(SPECByName("gcc"), 0, 1, 42)
	for i := 0; i < 3*ChunkLen; i++ {
		g.Next()
	}
	if err := g.SkipTo(10); err != nil {
		t.Fatal(err)
	}
	want := New(SPECByName("gcc"), 0, 1, 42)
	want.SkipTo(10)
	for i := 0; i < 100; i++ {
		x, _ := g.Next()
		y, _ := want.Next()
		if x != y {
			t.Fatalf("backward skip diverges at %d", i)
		}
	}

	s := PARSECByName("streamcluster")
	h := New(s, 0, 2, 42)
	for i := 0; i < 100; i++ {
		h.Next()
	}
	if err := h.SkipTo(5); err == nil {
		t.Fatal("backward skip on a synchronization stream succeeded")
	}
}

// TestDrawBudget audits the per-instruction draw discipline the counter
// partitioning depends on: no synthesis path may consume more than
// drawStride draws.
func TestDrawBudget(t *testing.T) {
	profiles := append(SPEC(), PARSEC()...)
	for i := range profiles {
		p := &profiles[i]
		g := New(p, 0, 2, 42)
		for i := 0; i < 50_000; i++ {
			before := g.seq
			_, ok := g.Next()
			if !ok {
				break
			}
			if g.rng.ctr < before*drawStride {
				continue // pending-sync emission: no draws
			}
			if used := g.rng.ctr - before*drawStride; used > drawStride {
				t.Fatalf("%s: instruction %d consumed %d draws (budget %d)", p.Name, before, used, drawStride)
			}
		}
	}
}

// TestChunkResetKeepsStreamWellFormed: chunk boundaries are interior
// stream positions, and the instructions straddling them must stay
// valid (dense Seq, in-range classes, nonzero memory addresses).
func TestChunkResetKeepsStreamWellFormed(t *testing.T) {
	g := New(SPECByName("gcc"), 0, 1, 42)
	for i := 0; i < 3*ChunkLen; i++ {
		in, ok := g.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if in.Seq != uint64(i) {
			t.Fatalf("Seq %d at position %d", in.Seq, i)
		}
		if int(in.Class) >= isa.NumClasses {
			t.Fatalf("class %d out of range", in.Class)
		}
		if in.Class.IsMem() && in.Addr == 0 {
			t.Fatalf("zero address at %d", i)
		}
	}
}

// FuzzSkipAhead fuzzes the core v3 contract over (profile, seed, slot,
// n, m): SkipTo(n) then m instructions must be byte-identical to
// generating n+m straight and discarding the prefix. Runs under -race
// in CI.
func FuzzSkipAhead(f *testing.F) {
	f.Add(uint8(0), int64(42), uint8(0), uint32(0), uint16(500))
	f.Add(uint8(3), int64(7), uint8(2), uint32(ChunkLen), uint16(1000))
	f.Add(uint8(9), int64(-1), uint8(0), uint32(ChunkLen-1), uint16(2000))
	f.Add(uint8(30), int64(1), uint8(0), uint32(3*ChunkLen+17), uint16(300))
	f.Add(uint8(12), int64(1<<40), uint8(200), uint32(65537), uint16(4096))
	profiles := append(SPEC(), PARSEC()...)
	f.Fuzz(func(t *testing.T, pi uint8, seed int64, slot uint8, n uint32, m uint16) {
		p := &profiles[int(pi)%len(profiles)]
		skipMatches(t, p, seed, int(slot)%MaxSlots, uint64(n)%200_000, int(m))
	})
}
