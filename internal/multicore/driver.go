// Package multicore runs N simulated cores — detailed, interval or one-IPC
// — against a shared memory hierarchy and a synchronization coordinator,
// and reports per-core and machine-level results. It is the outer loop of
// Figure 3: global time advances cycle by cycle; each live core is stepped
// once per cycle (interval cores internally skip cycles their miss-event
// penalties have already covered).
package multicore

import (
	"fmt"
	"time"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oneipc"
	"repro/internal/ooo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Model selects the core timing model.
type Model int

const (
	// Detailed is the cycle-level out-of-order baseline.
	Detailed Model = iota
	// Interval is the paper's analytical model.
	Interval
	// OneIPC is the naive one-instruction-per-cycle ablation model.
	OneIPC
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Detailed:
		return "detailed"
	case Interval:
		return "interval"
	case OneIPC:
		return "one-ipc"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// CoreFactory constructs the core model instance for core i. It receives
// the per-core front-end and stream plus the shared memory hierarchy and
// synchronization coordinator; everything else (machine config, ablation
// switches) is expected to be captured by the closure.
type CoreFactory func(i int, bp *branch.Unit, mem *memhier.Hierarchy, stream trace.Stream, coord sim.Syncer) sim.Core

// RunConfig describes one simulation run.
type RunConfig struct {
	// Machine is the simulated hardware; Machine.Cores must equal the
	// number of streams passed to Run.
	Machine config.Machine
	// Model selects the core timing model.
	Model Model
	// NewCore, when non-nil, overrides Model: the driver builds each core
	// through it instead of the built-in enum switch. This is the hook
	// the simrun model registry plugs into, so new core models need no
	// driver changes.
	NewCore CoreFactory
	// ModelName labels Result.ModelName (defaults to Model.String());
	// set it alongside NewCore so reports name the registered model.
	ModelName string
	// Interrupt, when non-nil, aborts the run early once the channel is
	// closed (or receives). The driver polls it periodically; an
	// interrupted run returns with Result.Interrupted set and whatever
	// progress was made. Batch runners use this for cancellation and
	// per-scenario timeouts.
	Interrupt <-chan struct{}
	// Perfect selects always-hit structures (Figure 4 experiments).
	Perfect memhier.Perfect
	// MaxCycles aborts runaway runs (0 = a generous default).
	MaxCycles int64
	// KeepCores retains the core model objects in Result.Sim so callers
	// can read model-specific state (e.g. the interval model's CPI
	// stacks) after the run.
	KeepCores bool
	// WarmupInsts functionally warms caches, TLBs and branch predictors
	// with this many instructions per core before timed simulation, then
	// clears statistics (the paper's 100M-instruction SimPoints arrive
	// warm; short synthetic runs must be warmed explicitly).
	WarmupInsts int
	// Warmup optionally supplies separate warmup streams (e.g. twin
	// generators replaying the measured stream); when nil, warmup
	// consumes the head of the main streams.
	Warmup []trace.Stream
	// Ablation selects interval-model ablation variants (zero value =
	// full model); ignored by the other models.
	Ablation core.Options
	// Trace, when non-nil, receives warmup and measure spans for the
	// run. Spans are host wall-clock observability only: they never
	// influence simulated state, so results are identical with tracing
	// on or off. Nil (the default) costs nothing on the stepping path.
	Trace *obs.Tracer
	// Heartbeat, when non-nil, receives throttled live-progress reports
	// (instructions retired, MIPS, ETA). It is polled at the same
	// periodic points as Interrupt, so the per-cycle path stays free of
	// observability work.
	Heartbeat *obs.Heartbeat
}

// CoreResult is the outcome for one core/thread.
type CoreResult struct {
	Retired uint64
	// Finish is the core-local simulated time at which the thread
	// completed.
	Finish int64
	IPC    float64
}

// Result is the outcome of one multi-core run.
type Result struct {
	Model Model
	// ModelName is the display name of the core model: RunConfig.ModelName
	// when set (registered models), Model.String() otherwise.
	ModelName string
	// Cycles is the machine-level execution time: the time the last
	// thread finished.
	Cycles int64
	Cores  []CoreResult
	// TotalRetired sums retired instructions across cores.
	TotalRetired uint64
	// Wall is the host wall-clock duration of the simulation, used for
	// the simulation-speed comparisons of Figures 9 and 10.
	Wall time.Duration
	// TimedOut is set when MaxCycles was reached before completion.
	TimedOut bool
	// Interrupted is set when RunConfig.Interrupt fired before completion.
	Interrupted bool
	// Sim holds the core model objects when RunConfig.KeepCores is set.
	Sim []sim.Core
	// Mem is the memory hierarchy when RunConfig.KeepCores is set (for
	// post-run statistics reporting).
	Mem *memhier.Hierarchy
}

// ModelLabel names the core model for display: ModelName when set, the
// enum name otherwise (so hand-built Results keep working).
func (r Result) ModelLabel() string {
	if r.ModelName != "" {
		return r.ModelName
	}
	return r.Model.String()
}

// MIPS returns simulated instructions per host second in millions.
func (r Result) MIPS() float64 {
	s := r.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.TotalRetired) / s / 1e6
}

// Run simulates the streams (one per core) to completion under cfg and
// returns the result. The number of streams must equal Machine.Cores.
func Run(cfg RunConfig, streams []trace.Stream) Result {
	if len(streams) != cfg.Machine.Cores {
		panic(fmt.Sprintf("multicore: %d streams for %d cores", len(streams), cfg.Machine.Cores))
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}

	mem := memhier.New(cfg.Machine.Cores, cfg.Machine.Mem, cfg.Perfect)
	coord := NewCoordinator(cfg.Machine.Cores)

	bps := make([]*branch.Unit, cfg.Machine.Cores)
	for i := range bps {
		bps[i] = branch.NewUnit(cfg.Machine.Branch)
	}
	if cfg.WarmupInsts > 0 {
		warm := cfg.Warmup
		if warm == nil {
			warm = streams
		}
		wsp := cfg.Trace.Start("warmup").Arg("insts_per_core", int64(cfg.WarmupInsts))
		warmup(mem, bps, warm, cfg.WarmupInsts)
		wsp.End()
	}

	cores := BuildCores(cfg, bps, mem, coord, streams)

	label := cfg.ModelName
	if label == "" {
		label = cfg.Model.String()
	}
	res := Result{Model: cfg.Model, ModelName: label, Cores: make([]CoreResult, len(cores))}

	// The TimeSkipper capability is asserted once per core here, not once
	// per core per cycle in the skip loop below.
	skippers := make([]sim.TimeSkipper, len(cores))
	allSkip := true
	for i, c := range cores {
		if ts, ok := c.(sim.TimeSkipper); ok {
			skippers[i] = ts
		} else {
			allSkip = false
		}
	}
	// live holds the indices of cores that have not finished, in ascending
	// order; finished cores drop out instead of being re-checked every
	// cycle of a long run. The rotation below still uses the full core
	// count so the visit order of the surviving cores is unchanged.
	live := make([]int, len(cores))
	for i := range live {
		live[i] = i
	}

	// poll folds the observability hooks into the existing periodic
	// interrupt check, so the per-cycle path gains no new branches when
	// neither is set.
	poll := cfg.Interrupt != nil || cfg.Heartbeat != nil
	msp := cfg.Trace.Start("measure")
	start := time.Now()
	now := int64(0)
	n := len(cores)
	if n == 1 && skippers[0] != nil {
		// Single-core fast loop: no rotation, no live-list bookkeeping —
		// the dominant case for SPEC runs and sweeps. Semantically
		// identical to the general loop below with one core.
		c, ts := cores[0], skippers[0]
		if c.Done() {
			coord.NoteDone(0)
		} else {
			for iter := uint(0); ; iter++ {
				if poll && iter&1023 == 0 {
					if cfg.Interrupt != nil {
						select {
						case <-cfg.Interrupt:
							res.Interrupted = true
						default:
						}
						if res.Interrupted {
							break
						}
					}
					cfg.Heartbeat.Tick(c.Retired())
				}
				c.Step(now)
				if c.Done() {
					coord.NoteDone(0)
					break
				}
				next := ts.NextActive(now + 1)
				if next < now+1 {
					next = now + 1
				}
				now = next
				if now >= maxCycles {
					res.TimedOut = true
					break
				}
			}
		}
		msp.Arg("cycles", now).End()
		res.Wall = time.Since(start)
		if cfg.KeepCores {
			res.Sim = cores
			res.Mem = mem
		}
		finishResult(&res, cores, now)
		cfg.Heartbeat.Final(res.TotalRetired)
		return res
	}
	for iter := uint(0); ; iter++ {
		// Poll the interrupt channel periodically, not every iteration:
		// a channel select on the per-cycle path would be measurable.
		if poll && iter&1023 == 0 {
			if cfg.Interrupt != nil {
				select {
				case <-cfg.Interrupt:
					res.Interrupted = true
				default:
				}
				if res.Interrupted {
					break
				}
			}
			if cfg.Heartbeat != nil {
				var sum uint64
				for _, c := range cores {
					sum += c.Retired()
				}
				cfg.Heartbeat.Tick(sum)
			}
		}
		// Rotate the stepping order each cycle: same-cycle races for the
		// shared bus and L2 are then arbitrated round-robin instead of
		// systematically favoring low-numbered cores. The rotation is
		// over core indices (not live-list positions), so removing
		// finished cores does not perturb the order of the rest.
		first := 0
		if n > 1 {
			first = int(now % int64(n))
		}
		start2 := 0
		for start2 < len(live) && live[start2] < first {
			start2++
		}
		removed := false
		for k := 0; k < len(live); k++ {
			pos := start2 + k
			if pos >= len(live) {
				pos -= len(live)
			}
			i := live[pos]
			c := cores[i]
			// A core only finishes inside Step, so the pre-check fires
			// just for cores that were already done when handed to the
			// driver (it mirrors the pre-removal per-cycle scan).
			if c.Done() {
				coord.NoteDone(i)
				live[pos] = -1
				removed = true
				continue
			}
			c.Step(now)
			if c.Done() {
				coord.NoteDone(i)
				live[pos] = -1
				removed = true
			}
		}
		if removed {
			w := 0
			for _, i := range live {
				if i >= 0 {
					live[w] = i
					w++
				}
			}
			live = live[:w]
		}
		if len(live) == 0 {
			break
		}
		// Event-driven skip: if every live core is ahead of global time
		// (miss-event penalties), jump straight to the earliest next
		// activity — no core would be simulated in between.
		next := now + 1
		if allSkip {
			var minNext int64 = 1<<62 - 1
			for _, i := range live {
				na := skippers[i].NextActive(now + 1)
				if na < minNext {
					minNext = na
				}
			}
			if minNext > next {
				next = minNext
			}
		}
		now = next
		if now >= maxCycles {
			res.TimedOut = true
			break
		}
	}
	msp.Arg("cycles", now).End()
	res.Wall = time.Since(start)
	if cfg.KeepCores {
		res.Sim = cores
		res.Mem = mem
	}
	finishResult(&res, cores, now)
	cfg.Heartbeat.Final(res.TotalRetired)
	return res
}

// BuildCores constructs the per-core model instances for cfg: through the
// NewCore factory hook when set, through the built-in model switch
// otherwise. It is shared by the sequential driver and the host-parallel
// engine (package parsim), so both build bit-identical machines.
func BuildCores(cfg RunConfig, bps []*branch.Unit, mem *memhier.Hierarchy, coord sim.Syncer, streams []trace.Stream) []sim.Core {
	cores := make([]sim.Core, cfg.Machine.Cores)
	for i := range cores {
		bp := bps[i]
		if cfg.NewCore != nil {
			cores[i] = cfg.NewCore(i, bp, mem, streams[i], coord)
			continue
		}
		switch cfg.Model {
		case Detailed:
			cores[i] = ooo.New(i, cfg.Machine.Core, bp, mem, streams[i], coord)
		case Interval:
			cores[i] = core.NewWithOptions(i, cfg.Machine.Core, cfg.Ablation, bp, mem, streams[i], coord)
		case OneIPC:
			cores[i] = oneipc.New(i, mem, streams[i], coord)
		default:
			panic("multicore: unknown model")
		}
	}
	return cores
}

// Warmup functionally warms the caches, TLBs and branch predictors with n
// instructions per core and clears statistics afterwards — the sequential
// driver's warmup, exported so the host-parallel engine (package parsim)
// warms the machine identically before parallel stepping begins.
func Warmup(mem *memhier.Hierarchy, bps []*branch.Unit, streams []trace.Stream, n int) {
	warmup(mem, bps, streams, n)
}

// FinishResult fills the per-core results and machine-level totals after
// stepping ends: per-core retired counts, finish times (now for cores that
// did not finish) and the machine-level cycle count. Exported for the
// host-parallel engine, which assembles its Result the same way.
func FinishResult(res *Result, cores []sim.Core, now int64) {
	finishResult(res, cores, now)
}

// finishResult fills the per-core results and machine-level totals after
// the stepping loop.
func finishResult(res *Result, cores []sim.Core, now int64) {
	for i, c := range cores {
		fin := c.FinishTime()
		if !c.Done() {
			fin = now
		}
		res.Cores[i] = CoreResult{
			Retired: c.Retired(),
			Finish:  fin,
			IPC:     metrics.IPC(c.Retired(), fin),
		}
		res.TotalRetired += c.Retired()
		if fin > res.Cycles {
			res.Cycles = fin
		}
	}
}

// warmup replays n instructions per core through the caches, TLBs and
// branch predictors without timing, then clears all statistics. This is
// standard functional warming: the timed portion then measures steady-state
// behaviour instead of cold-start misses.
func warmup(mem *memhier.Hierarchy, bps []*branch.Unit, streams []trace.Stream, n int) {
	buf := make([]isa.Inst, 4096)
	for i, s := range streams {
		if i >= len(bps) {
			break
		}
		// Consume exactly n instructions in chunks: the chunk is clamped
		// so warmup never over-reads a stream that the timed run then
		// continues from.
		bs := trace.Batched(s)
		for left := n; left > 0; {
			want := len(buf)
			if want > left {
				want = left
			}
			k := bs.NextBatch(buf[:want])
			if k == 0 {
				break
			}
			left -= k
			for j := 0; j < k; j++ {
				in := &buf[j]
				if in.Class.IsSync() {
					continue
				}
				mem.Inst(i, in.PC, 0)
				if in.Class.IsBranch() {
					bps[i].Predict(in)
				}
				if in.Class.IsMem() {
					mem.Data(i, in.Addr, in.Class == isa.Store, 0)
				}
			}
		}
	}
	mem.ResetStats()
	for _, bp := range bps {
		bp.ResetStats()
	}
}
