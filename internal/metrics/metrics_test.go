package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	if got := IPC(100, 50); got != 2 {
		t.Fatalf("IPC = %v", got)
	}
	if IPC(100, 0) != 0 {
		t.Fatal("IPC with zero cycles nonzero")
	}
}

func TestSTPIdealAndDegraded(t *testing.T) {
	alone := []float64{2, 2}
	if got := STP(alone, []float64{2, 2}); got != 2 {
		t.Fatalf("ideal STP = %v, want 2 (n)", got)
	}
	if got := STP(alone, []float64{1, 1}); got != 1 {
		t.Fatalf("halved STP = %v, want 1", got)
	}
}

func TestANTTIdealAndDegraded(t *testing.T) {
	alone := []float64{2, 4}
	if got := ANTT(alone, []float64{2, 4}); got != 1 {
		t.Fatalf("ideal ANTT = %v, want 1", got)
	}
	if got := ANTT(alone, []float64{1, 2}); got != 2 {
		t.Fatalf("halved ANTT = %v, want 2", got)
	}
	if ANTT(nil, nil) != 0 {
		t.Fatal("empty ANTT nonzero")
	}
}

func TestNormalizedProgressZeros(t *testing.T) {
	np := NormalizedProgress([]float64{0, 2}, []float64{1, 1})
	if np[0] != 0 || np[1] != 0.5 {
		t.Fatalf("np = %v", np)
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(2, 2.2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelError = %v", got)
	}
	if got := RelError(2, 1.8); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelError = %v", got)
	}
	if RelError(0, 5) != 0 {
		t.Fatal("zero-reference error nonzero")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.Add("a", 1, 1.1)
	s.Add("b", 1, 1.3)
	s.Add("c", 1, 0.95)
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	if s.MaxName != "b" || math.Abs(s.Max-0.3) > 1e-12 {
		t.Fatalf("max = %v (%s)", s.Max, s.MaxName)
	}
	want := (0.1 + 0.3 + 0.05) / 3
	if math.Abs(s.Avg()-want) > 1e-12 {
		t.Fatalf("avg = %v, want %v", s.Avg(), want)
	}
	var empty Summary
	if empty.Avg() != 0 {
		t.Fatal("empty summary avg nonzero")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Fatalf("speedup = %v", got)
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("divide by zero not handled")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	if got := GeoMean([]float64{5, 0, -1}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("geomean skipping nonpositive = %v, want 5", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean nonzero")
	}
}

// Property: STP of n identical programs with identical slowdown s is n*s,
// and ANTT is 1/s.
func TestQuickSTPANTTIdentity(t *testing.T) {
	f := func(n uint8, alone, slow float64) bool {
		k := int(n%6) + 1
		a := math.Abs(alone)
		if a < 0.01 || a > 100 {
			return true
		}
		s := math.Mod(math.Abs(slow), 0.99) + 0.01
		al := make([]float64, k)
		mu := make([]float64, k)
		for i := range al {
			al[i] = a
			mu[i] = a * s
		}
		stp := STP(al, mu)
		antt := ANTT(al, mu)
		return math.Abs(stp-float64(k)*s) < 1e-9 && math.Abs(antt-1/s) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: RelError is symmetric in scale: error of (r, e) equals error of
// (c*r, c*e) for positive c.
func TestQuickRelErrorScaleInvariance(t *testing.T) {
	f := func(r, e, c float64) bool {
		r = math.Mod(math.Abs(r), 1e6) + 0.1
		e = math.Mod(math.Abs(e), 1e6) + 0.1
		c = math.Mod(math.Abs(c), 1e3) + 0.1
		return math.Abs(RelError(r, e)-RelError(c*r, c*e)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHarmonicSpeedupIdentities(t *testing.T) {
	alone := []float64{1, 1, 1}
	// No interference: harmonic speedup = n... normalized progress all 1,
	// harmonic mean = 1.
	if got := HarmonicSpeedup(alone, []float64{1, 1, 1}); got != 1 {
		t.Fatalf("no-interference harmonic speedup = %v, want 1", got)
	}
	// Uniform halving: harmonic mean of {0.5,0.5,0.5} = 0.5.
	if got := HarmonicSpeedup(alone, []float64{0.5, 0.5, 0.5}); got != 0.5 {
		t.Fatalf("uniform-slowdown harmonic speedup = %v, want 0.5", got)
	}
	// Harmonic <= arithmetic mean of normalized progress.
	multi := []float64{0.9, 0.5, 0.7}
	arith := STP(alone, multi) / 3
	if h := HarmonicSpeedup(alone, multi); h > arith+1e-12 {
		t.Fatalf("harmonic %v exceeds arithmetic %v", h, arith)
	}
}

func TestFairnessBounds(t *testing.T) {
	alone := []float64{1, 1}
	if got := Fairness(alone, []float64{0.6, 0.6}); got != 1 {
		t.Fatalf("even slowdown fairness = %v, want 1", got)
	}
	if got := Fairness(alone, []float64{0.9, 0.3}); got < 0.33 || got > 0.34 {
		t.Fatalf("skewed fairness = %v, want ~1/3", got)
	}
	if got := Fairness(nil, nil); got != 0 {
		t.Fatalf("empty fairness = %v, want 0", got)
	}
}

func TestFairnessProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		alone := []float64{1, 1}
		multi := []float64{float64(a%100) / 100, float64(b%100) / 100}
		fv := Fairness(alone, multi)
		return fv >= 0 && fv <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSpeedupIsSTP(t *testing.T) {
	alone := []float64{1.2, 0.8}
	multi := []float64{0.9, 0.5}
	if WeightedSpeedup(alone, multi) != STP(alone, multi) {
		t.Fatal("weighted speedup diverged from STP")
	}
}
