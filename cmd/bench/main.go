// Command bench runs the repository's performance benchmark suite and
// writes a machine-readable JSON report (the BENCH_*.json files checked in
// at the repo root). It is the baseline the CI bench job gates against:
// future PRs rerun it and fail if the interval model's simulation speed
// regresses.
//
// Two stream modes are measured per benchmark:
//
//   - replay: the functional stream is recorded once (untimed) and the
//     timing simulation replays it from memory — the paper's trace-driven
//     hand-off, isolating the timing-model hot loop (headline metric).
//   - generated: the synthetic functional simulator runs inside the timed
//     loop — the end-to-end figure-benchmark configuration.
//
// MIPS numbers come from multicore.Result.MIPS(), which times only the
// simulation loop (construction and functional warmup are excluded), and
// the best of -reps repetitions is reported to shed scheduler noise.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_3.json
//	go run ./cmd/bench -baseline BENCH_3.json        # regression gate (CI)
//	go run ./cmd/bench -quick                        # fast smoke run
//
// The single-core and model-comparison sections intentionally use only
// APIs that predate the batched-stream work (trace.Record,
// trace.NewSliceStream, multicore.Run), so those sections measure any
// older checkout for before/after comparisons; the hostpar section
// additionally drives the internal/parsim engine (PR 4+ checkouts only).
//
// The -baseline gate's tolerance is configurable per runner: the
// -tolerance flag wins, and the BENCH_TOLERANCE environment variable
// overrides the built-in 0.20 default — so CI jobs on noisy runners tune
// the gate without code edits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	// Registers the estimator engines the tier-accuracy section compares
	// against the full interval run.
	_ "repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/oneipc"
	"repro/internal/parsim"
	"repro/internal/sim"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// specSet is the Fig9-style single-core benchmark set: five integer
// profiles (branchy, pointer-chasing) and three floating-point profiles
// (streaming, chained).
var specSet = []string{"gcc", "vpr", "twolf", "parser", "mcf", "swim", "mesa", "art"}

// ModelResult is one (benchmark, model, stream-mode) measurement.
type ModelResult struct {
	Bench     string  `json:"bench"`
	Model     string  `json:"model"`
	Stream    string  `json:"stream"` // "replay" or "generated"
	Cores     int     `json:"cores"`
	Insts     uint64  `json:"insts"`
	Cycles    int64   `json:"cycles"`
	MIPS      float64 `json:"mips"`
	NsPerInst float64 `json:"ns_per_inst"`
}

// MicroResult is one hot-path micro-benchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// HostParResult is one sequential-vs-parallel multi-core measurement:
// the same interval-model multiprogram run on the sequential driver and
// on the host-parallel engine (internal/parsim). The outputs are
// bit-identical by construction (the tool verifies the cycle counts);
// only the wall clock differs. As with every hostpar number, the
// measured speedup only means parallel scaling when num_cpu in the
// report header exceeds 1 — on a single-CPU runner it measures gate
// overhead.
type HostParResult struct {
	Cores int `json:"cores"` // simulated cores
	// Workload distinguishes the homogeneous copies rows ("" — one SPEC
	// profile per core under per-thread offsets) from the heterogeneous
	// "mix" row (one profile per core in its own v2 address-space slot,
	// the simrun.Mix shape that ran sequentially before stream format v2).
	Workload string  `json:"workload,omitempty"`
	Stream   string  `json:"stream"` // "replay" or "generated"
	HostPar  int     `json:"hostpar"`
	Insts    uint64  `json:"insts"`
	Cycles   int64   `json:"cycles"`
	SeqMIPS  float64 `json:"seq_mips"`
	ParMIPS  float64 `json:"par_mips"`
	Speedup  float64 `json:"speedup"`
}

// TierResult is one row of the fidelity-tier accuracy smoke check: the
// statistical engine's CPI against the full interval run of the same
// scenario. The statistical tier is a culling estimate, not a
// measurement, so the band is loose — the check exists to catch the
// estimator silently degenerating (several-fold errors), not to certify
// literature-grade accuracy.
type TierResult struct {
	Bench          string  `json:"bench"`
	IntervalCPI    float64 `json:"interval_cpi"`
	StatisticalCPI float64 `json:"statistical_cpi"`
	RelErr         float64 `json:"rel_err"`
}

// Report is the BENCH_*.json schema. NumCPU qualifies every hostpar
// number in the report: on a single-CPU host the parallel engine cannot
// beat sequential, and Warnings says so explicitly.
type Report struct {
	Schema   string          `json:"schema"`
	Go       string          `json:"go"`
	NumCPU   int             `json:"num_cpu"`
	Date     string          `json:"date"`
	Warnings []string        `json:"warnings,omitempty"`
	Params   Params          `json:"params"`
	Models   []ModelResult   `json:"models"`
	HostPar  []HostParResult `json:"hostpar,omitempty"`
	Tiers    []TierResult    `json:"tiers,omitempty"`
	Micro    []MicroResult   `json:"micro"`
	Summary  Summary         `json:"summary"`
}

// Params are the run sizes.
type Params struct {
	Insts  int `json:"insts"`
	Warmup int `json:"warmup"`
	Reps   int `json:"reps"`
}

// Summary carries the headline gate metrics.
type Summary struct {
	// IntervalReplayGeomeanMIPS is the geometric-mean interval-model MIPS
	// over the single-core replay set — the number the CI gate compares.
	IntervalReplayGeomeanMIPS float64 `json:"interval_replay_geomean_mips"`
	// IntervalGeneratedGeomeanMIPS is the same with the functional
	// simulator inside the timed loop.
	IntervalGeneratedGeomeanMIPS float64 `json:"interval_generated_geomean_mips"`
	// IntervalAllocsPerInst is allocations per instruction in the
	// interval-core steady-state micro-benchmark (must be 0).
	IntervalAllocsPerInst int64 `json:"interval_allocs_per_inst"`
	// HostParSpeedup8 is the parallel engine's wall-clock speedup over
	// the sequential driver on the 8-simulated-core generated-stream
	// interval run. On a single-CPU host this is at best ~1.0 (the
	// engine cannot beat sequential without host cores to run on);
	// num_cpu above says what the number means.
	HostParSpeedup8 float64 `json:"hostpar_speedup_8core"`
	// TierMaxRelErr is the worst statistical-vs-interval CPI relative
	// error across the tier-accuracy rows; the tool fails when it
	// exceeds -tier-tolerance.
	TierMaxRelErr float64 `json:"tier_max_rel_err,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline = flag.String("baseline", "", "compare against this baseline report and fail on >-tolerance regression")
		tol      = flag.Float64("tolerance", defaultTolerance(), "allowed fractional drop of the gate metric vs the baseline (default overridable via BENCH_TOLERANCE)")
		insts    = flag.Int("insts", 1_000_000, "timed instructions per single-core benchmark")
		warmup   = flag.Int("warmup", 200_000, "functional warmup instructions per core")
		reps     = flag.Int("reps", 5, "repetitions per measurement (best is reported)")
		quick    = flag.Bool("quick", false, "small sizes for a smoke run")
		hostpar  = flag.Int("hostpar", 4, "host-parallel engine setting for the sequential-vs-parallel section (0 skips the section)")
		tierTol  = flag.Float64("tier-tolerance", 0.4, "allowed statistical-vs-interval CPI relative error in the tier-accuracy check (0 skips the section)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the benchmark's simulation spans to this file")
		obsCheck = flag.Bool("obs-overhead", false, "zero-overhead contract check: run only the interval replay set with observability disabled and gate its geomean against -baseline")
	)
	flag.Parse()
	if *quick {
		*insts, *warmup, *reps = 100_000, 50_000, 2
	}
	if *traceOut != "" {
		benchTracer = obs.NewTracer(1 << 16)
	}
	if *obsCheck {
		os.Exit(obsOverhead(*insts, *warmup, *reps, *baseline, *tol))
	}

	rep := Report{
		Schema: "repro-bench/1",
		Go:     runtime.Version(),
		NumCPU: runtime.NumCPU(),
		Date:   time.Now().UTC().Format(time.RFC3339),
		Params: Params{Insts: *insts, Warmup: *warmup, Reps: *reps},
	}
	// The host CPU count qualifies every hostpar number below, so say it
	// up front — and loudly when there is nothing to scale onto.
	fmt.Fprintf(os.Stderr, "bench: num_cpu=%d (go %s)\n", rep.NumCPU, rep.Go)
	if rep.NumCPU == 1 && *hostpar > 0 {
		w := "hostpar sections on a single-CPU host: speedups measure gate overhead, not parallel scaling"
		rep.Warnings = append(rep.Warnings, w)
		fmt.Fprintln(os.Stderr, "bench: WARNING", w)
	}

	// Single-core SPEC set: interval in both stream modes; detailed and
	// one-IPC replayed for the model-speed comparison of Figures 9/10.
	var replayMIPS, genMIPS []float64
	for _, name := range specSet {
		p := workload.SPECByName(name)
		tr := trace.Record(workload.New(p, 0, 1, 42), *insts)
		wtr := trace.Record(workload.New(p, 0, 1, 1042), *warmup)

		r := runBest(*reps, multicore.Interval, 1, *warmup,
			func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(tr)} },
			func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(wtr)} })
		rep.Models = append(rep.Models, modelResult(name, "interval", "replay", 1, r))
		replayMIPS = append(replayMIPS, r.MIPS())

		g := runBest(*reps, multicore.Interval, 1, *warmup,
			func() []trace.Stream {
				return []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), *insts)}
			},
			func() []trace.Stream { return []trace.Stream{workload.New(p, 0, 1, 1042)} })
		rep.Models = append(rep.Models, modelResult(name, "interval", "generated", 1, g))
		genMIPS = append(genMIPS, g.MIPS())

		// Fixed order so regenerated reports diff cleanly; the slower
		// comparison models run fewer repetitions.
		const compareReps = 2
		for _, mc := range []struct {
			model multicore.Model
			label string
		}{{multicore.Detailed, "detailed"}, {multicore.OneIPC, "oneipc"}} {
			d := runBest(compareReps, mc.model, 1, *warmup,
				func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(tr)} },
				func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(wtr)} })
			rep.Models = append(rep.Models, modelResult(name, mc.label, "replay", 1, d))
		}
	}

	// Multi-program (Fig9-style 4-core) and multi-threaded (Fig10-style
	// PARSEC) interval runs, replayed.
	// One slot per copy — the stream-format-v2 shape simrun.Mix runs
	// (v1's shared address space no longer exists in the product).
	mix := []string{"gcc", "mcf", "swim", "vpr"}
	mtr := make([][]isa.Inst, 4)
	mwtr := make([][]isa.Inst, 4)
	for i, name := range mix {
		p := workload.SPECByName(name)
		mtr[i] = trace.Record(workload.NewSlot(p, 0, 1, int64(42+i), i), *insts/4)
		mwtr[i] = trace.Record(workload.NewSlot(p, 0, 1, int64(1042+i), i), *warmup)
	}
	mres := runBest(*reps, multicore.Interval, 4, *warmup,
		func() []trace.Stream { return sliceStreams(mtr) },
		func() []trace.Stream { return sliceStreams(mwtr) })
	rep.Models = append(rep.Models, modelResult("mix4", "interval", "replay", 4, mres))

	pp := workload.PARSECByName("blackscholes")
	q := *pp
	q.TotalWork = uint64(*insts)
	ptr := make([][]isa.Inst, 4)
	for i := 0; i < 4; i++ {
		ptr[i] = trace.Record(workload.New(&q, i, 4, 42), 2*(*insts))
	}
	pres := runBest(*reps, multicore.Interval, 4, 0,
		func() []trace.Stream { return sliceStreams(ptr) }, nil)
	rep.Models = append(rep.Models, modelResult("blackscholes4", "interval", "replay", 4, pres))

	// Sequential vs host-parallel multi-core trajectory: the same
	// interval-model multiprogram run (disjoint per-core address spaces,
	// one SPEC profile per core) on both engines at 2/4/8 simulated
	// cores, in both stream modes.
	if *hostpar > 0 {
		for _, cores := range []int{2, 4, 8} {
			for _, mode := range []string{"replay", "generated"} {
				r := hostparPoint(cores, mode, *insts, *reps, *hostpar)
				rep.HostPar = append(rep.HostPar, r)
				if cores == 8 && mode == "generated" {
					rep.Summary.HostParSpeedup8 = r.Speedup
				}
			}
		}
		// Heterogeneous Mix row: one profile per core in its own
		// address-space slot — parallelizable since stream format v2.
		rep.HostPar = append(rep.HostPar, hostparMixPoint(4, *insts, *reps, *hostpar))
	}

	// Fidelity-tier accuracy smoke check: the statistical engine's CPI
	// against the full interval run on a few single-program scenarios.
	if *tierTol > 0 {
		rep.Tiers, rep.Summary.TierMaxRelErr = tierAccuracy(*insts, *warmup)
		for _, tr := range rep.Tiers {
			fmt.Fprintf(os.Stderr, "bench: tier %-6s interval CPI %.3f, statistical CPI %.3f (err %.0f%%)\n",
				tr.Bench, tr.IntervalCPI, tr.StatisticalCPI, 100*tr.RelErr)
		}
		if rep.Summary.TierMaxRelErr > *tierTol {
			fmt.Fprintf(os.Stderr, "bench: FAIL statistical tier CPI error %.0f%% exceeds the %.0f%% band\n",
				100*rep.Summary.TierMaxRelErr, 100**tierTol)
			os.Exit(1)
		}
	}

	// Hot-path micro-benchmarks.
	rep.Micro, rep.Summary.IntervalAllocsPerInst = microBenchmarks()

	rep.Summary.IntervalReplayGeomeanMIPS = geomean(replayMIPS)
	rep.Summary.IntervalGeneratedGeomeanMIPS = geomean(genMIPS)

	if benchTracer != nil {
		if err := writeTrace(*traceOut, benchTracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(raw)
	}
	fmt.Fprintf(os.Stderr, "bench: interval replay geomean %.2f MIPS, generated %.2f MIPS, %d allocs/inst\n",
		rep.Summary.IntervalReplayGeomeanMIPS, rep.Summary.IntervalGeneratedGeomeanMIPS,
		rep.Summary.IntervalAllocsPerInst)

	if *baseline != "" {
		gate(*baseline, rep, *tol)
	}
}

// benchTracer, when -trace is set, collects spans from the sections
// that run through instrumented drivers (hostpar, tier accuracy).
var benchTracer *obs.Tracer

// writeTrace dumps the recorded spans as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// obsOverhead is the -obs-overhead mode: the single-core interval replay
// set with observability fully disabled (nil Trace and Heartbeat — the
// default RunConfig), gated against the baseline's replay geomean. The
// instrumented driver promises zero cost when hooks are off; a
// regression here means the disabled hooks are not free.
func obsOverhead(insts, warmup, reps int, baseline string, tol float64) int {
	var mips []float64
	for _, name := range specSet {
		p := workload.SPECByName(name)
		tr := trace.Record(workload.New(p, 0, 1, 42), insts)
		wtr := trace.Record(workload.New(p, 0, 1, 1042), warmup)
		r := runBest(reps, multicore.Interval, 1, warmup,
			func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(tr)} },
			func() []trace.Stream { return []trace.Stream{trace.NewSliceStream(wtr)} })
		mips = append(mips, r.MIPS())
		fmt.Fprintf(os.Stderr, "bench: obs-overhead %-8s %.2f MIPS\n", name, r.MIPS())
	}
	g := geomean(mips)
	fmt.Fprintf(os.Stderr, "bench: obs-overhead interval replay geomean %.2f MIPS (observability disabled)\n", g)
	if baseline == "" {
		return 0
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: baseline:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "bench: baseline:", err)
		return 1
	}
	want := base.Summary.IntervalReplayGeomeanMIPS * (1 - tol)
	if g < want {
		fmt.Fprintf(os.Stderr,
			"bench: FAIL obs-overhead geomean %.2f MIPS < %.2f (baseline %.2f - %.0f%%): disabled observability hooks cost measurable speed\n",
			g, want, base.Summary.IntervalReplayGeomeanMIPS, tol*100)
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: PASS obs-overhead %.2f MIPS vs baseline %.2f (tolerance %.0f%%)\n",
		g, base.Summary.IntervalReplayGeomeanMIPS, tol*100)
	return 0
}

// defaultTolerance is the -tolerance default: 0.20 unless the
// BENCH_TOLERANCE environment variable overrides it, so CI runners with
// different noise floors tune the gate without code edits.
func defaultTolerance() float64 {
	if v := os.Getenv("BENCH_TOLERANCE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 && f < 1 {
			return f
		}
		fmt.Fprintf(os.Stderr, "bench: ignoring bad BENCH_TOLERANCE=%q (want a fraction in [0,1))\n", v)
	}
	return 0.20
}

// hostparMix is the per-core profile assignment of the hostpar section;
// core i runs hostparMix[i%len] in its own thread slot (disjoint private
// address spaces, the multiprogram configuration the engine accelerates).
var hostparMix = []string{"gcc", "mcf", "swim", "vpr", "twolf", "parser", "art", "mesa"}

// hostparPer is the per-core instruction budget of a hostpar cell.
func hostparPer(cores, insts int) int {
	per := insts / cores
	if per < 10_000 {
		per = 10_000
	}
	return per
}

// hostparPoint measures one (cores, stream-mode) cell of the sequential
// vs host-parallel table: the homogeneous-copies shape (one SPEC profile
// per core under per-thread offsets).
func hostparPoint(cores int, mode string, insts, reps, hostpar int) HostParResult {
	per := hostparPer(cores, insts)
	var traces [][]isa.Inst
	if mode == "replay" {
		traces = make([][]isa.Inst, cores)
		for i := range traces {
			p := workload.SPECByName(hostparMix[i%len(hostparMix)])
			traces[i] = trace.Record(workload.New(p, i, cores, 42), per)
		}
	}
	streams := func() []trace.Stream {
		if mode == "replay" {
			return sliceStreams(traces)
		}
		out := make([]trace.Stream, cores)
		for i := range out {
			p := workload.SPECByName(hostparMix[i%len(hostparMix)])
			out[i] = trace.NewLimit(workload.New(p, i, cores, 42), per)
		}
		return out
	}
	return hostparMeasure(HostParResult{Cores: cores, Stream: mode, HostPar: hostpar}, reps, streams)
}

// hostparMixPoint measures the heterogeneous Mix cell of the hostpar
// table: core i runs a different SPEC profile at address-space slot i
// with a per-core seed — the exact stream shape simrun.Mix generates,
// which shared one address space (and therefore ran sequentially) before
// stream format v2. Generated streams only: the row exists to show the
// formerly-sequential configuration now runs on the parallel engine.
func hostparMixPoint(cores, insts, reps, hostpar int) HostParResult {
	per := hostparPer(cores, insts)
	streams := func() []trace.Stream {
		out := make([]trace.Stream, cores)
		for i := range out {
			p := workload.SPECByName(hostparMix[i%len(hostparMix)])
			out[i] = trace.NewLimit(workload.NewSlot(p, 0, 1, int64(42+i), i), per)
		}
		return out
	}
	return hostparMeasure(HostParResult{Cores: cores, Workload: "mix", Stream: "generated", HostPar: hostpar}, reps, streams)
}

// hostparMeasure fills one hostpar table row: the same interval-model
// run on the sequential driver and the parallel engine, best of reps on
// each, with the cycle and retired counts cross-checked for
// bit-identity (any divergence is a determinism break and fails the
// tool). row carries the cell's identity fields; streams must rebuild
// fresh streams per call (generators are stateful).
func hostparMeasure(row HostParResult, reps int, streams func() []trace.Stream) HostParResult {
	cfg := func() multicore.RunConfig {
		return multicore.RunConfig{Machine: config.Default(row.Cores), Model: multicore.Interval, Trace: benchTracer}
	}
	var seq, par multicore.Result
	for r := 0; r < reps; r++ {
		if res := multicore.Run(cfg(), streams()); res.MIPS() > seq.MIPS() {
			seq = res
		}
		res, ok := parsim.Run(cfg(), parsim.Config{}, streams())
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: hostpar %s run aborted — disjoint multiprogram streams must not share lines\n", row.label())
			os.Exit(1)
		}
		if res.MIPS() > par.MIPS() {
			par = res
		}
	}
	if seq.Cycles != par.Cycles || seq.TotalRetired != par.TotalRetired {
		fmt.Fprintf(os.Stderr, "bench: hostpar %s determinism violation: seq %d cycles / %d insts, par %d cycles / %d insts\n",
			row.label(), seq.Cycles, seq.TotalRetired, par.Cycles, par.TotalRetired)
		os.Exit(1)
	}
	row.Insts = seq.TotalRetired
	row.Cycles = seq.Cycles
	row.SeqMIPS = seq.MIPS()
	row.ParMIPS = par.MIPS()
	if seq.MIPS() > 0 {
		row.Speedup = par.MIPS() / seq.MIPS()
	}
	return row
}

// label names a hostpar cell in diagnostics.
func (r HostParResult) label() string {
	w := r.Workload
	if w == "" {
		w = "copies"
	}
	return fmt.Sprintf("%d-core %s %s", r.Cores, w, r.Stream)
}

// runBest runs the configuration reps times and returns the run with the
// highest MIPS (minimum-noise estimator for a deterministic simulation).
func runBest(reps int, model multicore.Model, cores, warmup int,
	streams func() []trace.Stream, warm func() []trace.Stream) multicore.Result {
	var best multicore.Result
	for r := 0; r < reps; r++ {
		cfg := multicore.RunConfig{
			Machine:     config.Default(cores),
			Model:       model,
			WarmupInsts: warmup,
		}
		if warm != nil {
			cfg.Warmup = warm()
		}
		res := multicore.Run(cfg, streams())
		if res.MIPS() > best.MIPS() {
			best = res
		}
	}
	return best
}

func sliceStreams(traces [][]isa.Inst) []trace.Stream {
	out := make([]trace.Stream, len(traces))
	for i, tr := range traces {
		out[i] = trace.NewSliceStream(tr)
	}
	return out
}

func modelResult(bench, model, stream string, cores int, r multicore.Result) ModelResult {
	ns := 0.0
	if r.TotalRetired > 0 {
		ns = float64(r.Wall.Nanoseconds()) / float64(r.TotalRetired)
	}
	return ModelResult{
		Bench: bench, Model: model, Stream: stream, Cores: cores,
		Insts: r.TotalRetired, Cycles: r.Cycles,
		MIPS: r.MIPS(), NsPerInst: ns,
	}
}

// microBenchmarks times the simulator hot paths via testing.Benchmark and
// returns the interval-core steady-state allocations per instruction as the
// gate value.
func microBenchmarks() ([]MicroResult, int64) {
	var out []MicroResult
	add := func(name string, r testing.BenchmarkResult) int64 {
		out = append(out, MicroResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
		return r.AllocsPerOp()
	}

	allocs := add("interval_steady_state", testing.Benchmark(func(b *testing.B) {
		m := config.Default(1)
		p := workload.SPECByName("mesa")
		mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
		bp := branch.NewUnit(m.Branch)
		c := core.New(0, m.Core, bp, mem, workload.New(p, 0, 1, 42), sim.NullSyncer{})
		// Enter steady state before counting.
		var now int64
		for c.Retired() < 10_000 {
			c.Step(now)
			now++
		}
		b.ReportAllocs()
		b.ResetTimer()
		start := c.Retired()
		for c.Retired()-start < uint64(b.N) {
			c.Step(now)
			now++
		}
	}))

	add("oneipc_steady_state", testing.Benchmark(func(b *testing.B) {
		m := config.Default(1)
		p := workload.SPECByName("mesa")
		mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
		c := oneipc.New(0, mem, workload.New(p, 0, 1, 42), sim.NullSyncer{})
		b.ReportAllocs()
		b.ResetTimer()
		var now int64
		start := c.Retired()
		for c.Retired()-start < uint64(b.N) {
			c.Step(now)
			now++
		}
	}))

	add("workload_gen", testing.Benchmark(func(b *testing.B) {
		g := workload.New(workload.SPECByName("gcc"), 0, 1, 42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := g.Next(); !ok {
				b.Fatal("stream ended")
			}
		}
	}))

	add("memhier_data", testing.Benchmark(func(b *testing.B) {
		h := memhier.New(1, config.Default(1).Mem, memhier.Perfect{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Data(0, uint64(i%4096)*64, false, int64(i))
		}
	}))

	add("cache_access", testing.Benchmark(func(b *testing.B) {
		c := cache.New(config.Default(1).Mem.L1D)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := uint64(i&1023) * 64
			if !c.Access(a, false) {
				c.Fill(a, false)
			}
		}
	}))

	add("branch_predict", testing.Benchmark(func(b *testing.B) {
		u := branch.NewUnit(config.Default(1).Branch)
		in := isa.Inst{Class: isa.Branch, PC: 0x400100, Taken: true, Target: 0x400000}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in.Taken = i&7 != 0
			u.Predict(&in)
		}
	}))

	return out, allocs
}

// tierAccuracy runs the tier-accuracy rows: each benchmark at full
// interval fidelity and through the statistical engine (the cheapest
// tier the simd service answers from), comparing CPI. Returns the rows
// and the worst relative error.
func tierAccuracy(insts, warmup int) ([]TierResult, float64) {
	die := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: tier check %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	var rows []TierResult
	var worst float64
	for _, name := range []string{"gcc", "mcf", "swim"} {
		opts := []simrun.Option{simrun.Insts(insts), simrun.Warmup(warmup), simrun.Seed(42)}
		if benchTracer != nil {
			opts = append(opts, simrun.Observe(&obs.Observer{Tracer: benchTracer}))
		}
		full, err := simrun.New(name, opts...)
		die(name, err)
		est, err := full.ForEngine("statistical")
		die(name, err)
		fres, err := full.Run(context.Background())
		die(name, err)
		eres, err := est.Run(context.Background())
		die(name, err)
		row := TierResult{
			Bench:          name,
			IntervalCPI:    cpi(fres.Result),
			StatisticalCPI: cpi(eres.Result),
		}
		if row.IntervalCPI > 0 {
			row.RelErr = math.Abs(row.StatisticalCPI-row.IntervalCPI) / row.IntervalCPI
		}
		if row.RelErr > worst {
			worst = row.RelErr
		}
		rows = append(rows, row)
	}
	return rows, worst
}

// cpi is cycles per retired instruction.
func cpi(r multicore.Result) float64 {
	if r.TotalRetired == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.TotalRetired)
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// gate compares the current report against a baseline file and exits
// non-zero when the interval replay geomean dropped more than tol.
func gate(path string, cur Report, tol float64) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: baseline:", err)
		os.Exit(1)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "bench: baseline:", err)
		os.Exit(1)
	}
	want := base.Summary.IntervalReplayGeomeanMIPS * (1 - tol)
	got := cur.Summary.IntervalReplayGeomeanMIPS
	if got < want {
		fmt.Fprintf(os.Stderr,
			"bench: FAIL interval replay geomean %.2f MIPS < %.2f (baseline %.2f - %.0f%%)\n",
			got, want, base.Summary.IntervalReplayGeomeanMIPS, tol*100)
		os.Exit(1)
	}
	if cur.Summary.IntervalAllocsPerInst > 0 {
		fmt.Fprintf(os.Stderr, "bench: FAIL %d allocs/inst in the interval-core steady state (want 0)\n",
			cur.Summary.IntervalAllocsPerInst)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: PASS %.2f MIPS vs baseline %.2f (tolerance %.0f%%)\n",
		got, base.Summary.IntervalReplayGeomeanMIPS, tol*100)
}
