package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/simrun"
)

// newFleetServer builds a coordinator-mode simd server with the fleet
// control plane mounted on the same listener, exactly as cmd/simd wires
// it.
func newFleetServer(t *testing.T, scrapeEvery time.Duration) (*Server, *fleet.Coordinator, *httptest.Server) {
	t.Helper()
	cache, err := simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Cache:       cache,
		LeaseTTL:    time.Second,
		ScrapeEvery: scrapeEvery,
		Retry:       fleet.Backoff{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond},
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 2, Cache: cache, Fleet: coord})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.Mount(mux)
	mux.Handle("/", s.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, coord, ts
}

// startFleetWorker boots one fleet worker against the coordinator and
// waits for its registration.
func startFleetWorker(t *testing.T, coord *fleet.Coordinator, coordURL, id string, faults *fleet.FaultInjector) *fleet.Worker {
	t.Helper()
	cache, err := simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
	if err != nil {
		t.Fatal(err)
	}
	var w *fleet.Worker
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)
	w, err = fleet.NewWorker(fleet.WorkerConfig{
		ID:          id,
		SelfURL:     srv.URL,
		Coordinator: coordURL,
		Cache:       cache,
		Faults:      faults,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Start(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, got := range coord.WorkerIDs() {
			if got == id {
				return w
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never registered", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// traceDoc is the GET /v1/jobs/{id}/trace payload.
type traceDoc struct {
	Job     string         `json:"job"`
	Spans   []obs.SpanRec  `json:"spans"`
	Dropped uint64         `json:"dropped"`
	Rows    map[int]string `json:"rows"`
}

func getTrace(t *testing.T, ts *httptest.Server, id string) traceDoc {
	t.Helper()
	body, status := getBody(t, ts.URL+"/v1/jobs/"+id+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace status = %d: %s", status, body)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// specFingerprint computes the content address the server will shard
// the test spec by.
func specFingerprint(t *testing.T) string {
	t.Helper()
	spec, err := simrun.ParseSpec(strings.NewReader(specGCC))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestFleetTraceStitchingAndFederation is the acceptance run: a
// coordinator with two live workers serves a job whose trace stitches
// both sides of the dispatch — coordinator queue/dispatch spans on row
// 0, the worker's engine spans on its own named row, all on one
// monotonically consistent timebase — while /fleet/v1/metrics serves
// every worker's scraped samples under worker labels with aggregate
// rollups. The result bytes stay identical to a single-node run with
// every bit of fleet observability on.
func TestFleetTraceStitchingAndFederation(t *testing.T) {
	s, coord, ts := newFleetServer(t, 100*time.Millisecond)
	startFleetWorker(t, coord, ts.URL, "w1", &fleet.FaultInjector{})
	startFleetWorker(t, coord, ts.URL, "w2", &fleet.FaultInjector{})
	target := coord.AssignedWorker(specFingerprint(t))
	if target == "" {
		t.Fatal("no worker assigned")
	}

	doc, status := postJob(t, ts, specGCC)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	doc = waitDone(t, s, doc.ID)
	if doc.Status != StatusDone || doc.Worker != target {
		t.Fatalf("job = %+v, want done on %s", doc, target)
	}

	tr := getTrace(t, ts, doc.ID)
	byName := map[string]obs.SpanRec{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	if _, ok := byName["queue"]; !ok {
		t.Errorf("trace lacks the coordinator queue span: %v", tr.Spans)
	}
	disp, ok := byName["dispatch:"+target]
	if !ok {
		t.Fatalf("trace lacks dispatch:%s: %v", target, tr.Spans)
	}
	if disp.TID != 0 {
		t.Errorf("dispatch span on row %d, want 0", disp.TID)
	}

	workerRow := 0
	for tid, name := range tr.Rows {
		if name == "worker:"+target {
			workerRow = tid
		}
	}
	if workerRow == 0 || tr.Rows[0] != "coordinator" {
		t.Fatalf("rows = %v, want coordinator on 0 and a row for worker:%s", tr.Rows, target)
	}
	sawEngine := false
	for _, sp := range tr.Spans {
		if sp.TID != workerRow {
			continue
		}
		if strings.HasPrefix(sp.Name, "engine:") {
			sawEngine = true
		}
		if sp.StartUS < disp.StartUS || sp.StartUS+sp.DurUS > disp.StartUS+disp.DurUS {
			t.Errorf("remote span %s [%d,%d] outside dispatch window [%d,%d]",
				sp.Name, sp.StartUS, sp.StartUS+sp.DurUS, disp.StartUS, disp.StartUS+disp.DurUS)
		}
	}
	if !sawEngine {
		t.Errorf("no remote engine span on worker row %d: %v", workerRow, tr.Spans)
	}

	// Federation: scrape both workers, then the merged payload must
	// parse, carry per-worker labels and sum counters into aggregates.
	coord.ScrapeMetrics(context.Background())
	body, status := getBody(t, ts.URL+fleet.PathMetrics)
	if status != http.StatusOK {
		t.Fatalf("federated metrics status = %d", status)
	}
	fams, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("federated metrics do not parse: %v\n%s", err, body)
	}
	runs, ok := fams["fleet_worker_runs_total"]
	if !ok {
		t.Fatalf("federated metrics lack fleet_worker_runs_total:\n%s", body)
	}
	var agg, sum float64
	perWorker := map[string]bool{}
	for _, sample := range runs.Samples {
		if wl := sample.Labels[obs.InstanceLabel]; wl == "" {
			agg = sample.Value
		} else {
			perWorker[wl] = true
			sum += sample.Value
		}
	}
	if !perWorker["w1"] || !perWorker["w2"] {
		t.Errorf("per-worker samples missing: %v", perWorker)
	}
	if agg != sum || agg < 1 {
		t.Errorf("aggregate %v != per-worker sum %v (want >= 1)", agg, sum)
	}
	if _, ok := fams["fleet_scrape_age_seconds"]; !ok {
		t.Error("federated metrics lack staleness gauges")
	}

	// Byte identity with all fleet observability on: the routed result
	// equals a plain single-node server's for the same spec.
	plain, pts := newTestServer(t, Config{Workers: 1})
	ref, _ := postJob(t, pts, specGCC)
	ref = waitDone(t, plain, ref.ID)
	if !bytes.Equal(doc.Result, ref.Result) {
		t.Error("fleet-traced result differs from single-node result bytes")
	}
}

// TestFleetChaosTraceStitch: the worker holding the job dies mid-run;
// the finished trace must still tell the whole story — the failed
// attempt's dispatch span on the killed worker plus the survivor's
// remote spans — and the payload must stay byte-identical to a local
// run. Exercised by the fleet-chaos CI job under FLEET_CHAOS soak.
func TestFleetChaosTraceStitch(t *testing.T) {
	s, coord, ts := newFleetServer(t, time.Second)
	faults := map[string]*fleet.FaultInjector{
		"w1": {},
		"w2": {},
	}
	startFleetWorker(t, coord, ts.URL, "w1", faults["w1"])
	startFleetWorker(t, coord, ts.URL, "w2", faults["w2"])
	target := coord.AssignedWorker(specFingerprint(t))
	if target == "" {
		t.Fatal("no worker assigned")
	}
	faults[target].KillAtRun(1)

	doc, status := postJob(t, ts, specGCC)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	doc = waitDone(t, s, doc.ID)
	if doc.Status != StatusDone {
		t.Fatalf("job after worker kill = %+v", doc)
	}
	survivor := doc.Worker
	if survivor == target || survivor == "local" || survivor == "" {
		t.Fatalf("job finished on %q, want the surviving worker", survivor)
	}

	tr := getTrace(t, ts, doc.ID)
	var sawKilled, sawSurvivor bool
	survivorRow := 0
	for tid, name := range tr.Rows {
		if name == "worker:"+survivor {
			survivorRow = tid
		}
	}
	if survivorRow == 0 {
		t.Fatalf("rows = %v, want a row for the survivor %s", tr.Rows, survivor)
	}
	for _, sp := range tr.Spans {
		switch {
		case sp.Name == "dispatch:"+target:
			sawKilled = true
		case sp.TID == survivorRow && strings.HasPrefix(sp.Name, "engine:"):
			sawSurvivor = true
		}
	}
	if !sawKilled {
		t.Errorf("trace lost the killed attempt's dispatch span: %v", tr.Spans)
	}
	if !sawSurvivor {
		t.Errorf("trace lacks the survivor's remote engine span: %v", tr.Spans)
	}

	plain, pts := newTestServer(t, Config{Workers: 1})
	ref, _ := postJob(t, pts, specGCC)
	ref = waitDone(t, plain, ref.ID)
	if !bytes.Equal(doc.Result, ref.Result) {
		t.Error("post-chaos result differs from single-node result bytes")
	}
}

// TestTraceDisabled404: with job traces off, the trace endpoint must
// answer 404 naming the enabling flag — not an empty 200 a caller could
// read as "this job recorded nothing".
func TestTraceDisabled404(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DisableJobTraces: true})
	doc, status := postJob(t, ts, specGCC)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	doc = waitDone(t, s, doc.ID)
	if doc.Status != StatusDone {
		t.Fatalf("job = %+v", doc)
	}
	body, status := getBody(t, ts.URL+"/v1/jobs/"+doc.ID+"/trace")
	if status != http.StatusNotFound {
		t.Fatalf("trace status with traces disabled = %d, want 404: %s", status, body)
	}
	if !strings.Contains(string(body), "-job-trace") {
		t.Errorf("404 body does not name the enabling flag: %s", body)
	}
}
