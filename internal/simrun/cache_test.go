package simrun

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// testEncode is a deterministic stand-in for report.JSON (which lives
// above simrun): the simulated outcome without host-side measurements.
func testEncode(r Result) ([]byte, error) {
	return json.Marshal(map[string]any{
		"cycles":  r.Cycles,
		"retired": r.TotalRetired,
	})
}

func testScenario(t *testing.T, opts ...Option) *Scenario {
	t.Helper()
	s, err := New("gcc", append([]Option{Insts(2000)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCacheHit(t *testing.T) {
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.GetOrRun(context.Background(), testScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceRun {
		t.Fatalf("first lookup source = %s, want %s", first.Source, SourceRun)
	}
	// A second, separately built but identical scenario must hit.
	second, err := c.GetOrRun(context.Background(), testScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceMemory {
		t.Fatalf("second lookup source = %s, want %s", second.Source, SourceMemory)
	}
	if stats := c.Stats(); stats.Runs != 1 || stats.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 run and 1 hit", stats)
	}
	if !bytes.Equal(first.Payload, second.Payload) {
		t.Fatalf("cache hit payload differs from the run payload")
	}
	if first.Result.Cycles != second.Result.Cycles {
		t.Fatalf("cache hit cycles %d != run cycles %d", second.Result.Cycles, first.Result.Cycles)
	}

	// The cached payload is bit-identical to a direct, uncached run.
	direct, err := testScenario(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := testEncode(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, second.Payload) {
		t.Fatalf("cached payload %s differs from direct run %s", second.Payload, raw)
	}
}

func TestCacheDistinctScenariosMiss(t *testing.T) {
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{nil, {Seed(7)}, {Fabric("mesh")}} {
		if _, err := c.GetOrRun(context.Background(), testScenario(t, opts...)); err != nil {
			t.Fatal(err)
		}
	}
	if stats := c.Stats(); stats.Runs != 3 || stats.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 runs and 0 hits", stats)
	}
}

// Identical scenarios submitted concurrently cost exactly one simulation:
// the rest piggyback on the in-flight run or hit the fresh entry.
func TestCacheSingleflight(t *testing.T) {
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	entries := make([]CacheEntry, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			entries[i], errs[i] = c.GetOrRun(context.Background(), testScenario(t))
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(entries[i].Payload, entries[0].Payload) {
			t.Fatalf("caller %d saw a different payload", i)
		}
	}
	stats := c.Stats()
	if stats.Runs != 1 {
		t.Fatalf("%d concurrent identical submissions ran the simulator %d times", callers, stats.Runs)
	}
	if stats.Hits+stats.Waits != callers-1 {
		t.Fatalf("stats = %+v, want hits+waits = %d", stats, callers-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(CacheOpts{Entries: 1, Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.GetOrRun(ctx, testScenario(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrRun(ctx, testScenario(t, Seed(7))); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("cache holds %d entries, want 1", got)
	}
	// The first scenario was evicted, so it runs again.
	if _, err := c.GetOrRun(ctx, testScenario(t)); err != nil {
		t.Fatal(err)
	}
	if stats := c.Stats(); stats.Runs != 3 {
		t.Fatalf("stats = %+v, want 3 runs after eviction", stats)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(CacheOpts{Dir: dir, Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c1.GetOrRun(context.Background(), testScenario(t))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory — a service restart — hits
	// the persisted payload without simulating.
	c2, err := NewCache(CacheOpts{Dir: dir, Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c2.GetOrRun(context.Background(), testScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceDisk {
		t.Fatalf("restart lookup source = %s, want %s", second.Source, SourceDisk)
	}
	if !bytes.Equal(first.Payload, second.Payload) {
		t.Fatalf("persisted payload differs from the original")
	}
	if stats := c2.Stats(); stats.Runs != 0 || stats.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 0 runs and 1 disk hit", stats)
	}

	// The disk hit was promoted into the LRU: repeated requests stop
	// touching disk.
	third, err := c2.GetOrRun(context.Background(), testScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if third.Source != SourceMemory {
		t.Fatalf("post-promotion lookup source = %s, want %s", third.Source, SourceMemory)
	}
	if !bytes.Equal(first.Payload, third.Payload) {
		t.Fatalf("promoted payload differs from the original")
	}
	if stats := c2.Stats(); stats.DiskHits != 1 || stats.Runs != 0 {
		t.Fatalf("stats = %+v, want the single disk hit to stick", stats)
	}
}

func TestCacheDirRequiresEncode(t *testing.T) {
	if _, err := NewCache(CacheOpts{Dir: t.TempDir()}); err == nil {
		t.Fatal("NewCache accepted a Dir without an Encode function")
	}
}

func TestCacheUncacheableStreams(t *testing.T) {
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	stream := trace.NewLimit(workload.New(workload.SPECByName("gcc"), 0, 1, 1), 500)
	s, err := New("", Streams([]trace.Stream{stream}, nil))
	if err != nil {
		t.Fatal(err)
	}
	entry, err := c.GetOrRun(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Source != SourceUncached {
		t.Fatalf("source = %s, want %s", entry.Source, SourceUncached)
	}
	if stats := c.Stats(); stats.Uncached != 1 || stats.Runs != 0 {
		t.Fatalf("stats = %+v, want 1 uncached and 0 cached runs", stats)
	}
	if c.Len() != 0 {
		t.Fatalf("uncacheable run was stored")
	}
}

// Example-style check that the fingerprint keys files on disk.
func TestCacheDiskLayout(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(CacheOpts{Dir: dir, Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	s := testScenario(t)
	entry, err := c.GetOrRun(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if entry.Key != key {
		t.Fatalf("entry key %s != scenario fingerprint %s", entry.Key, key)
	}
	if _, ok := c.loadDisk(key); !ok {
		t.Fatalf("no payload stored at %s", fmt.Sprintf("%s/%s.json", dir, key))
	}
}
