package statsim

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/trace"
)

// hotLines is the size of the clone's recently-touched-line ring; small
// enough (8KB) that re-references hit the L1D.
const hotLines = 128

// warmPoolMax bounds the clone's warm data region to the shared L2
// capacity in lines (4MB / 64B), so warm re-references hit the L2 but
// mostly miss the 32KB L1D.
const warmPoolMax = 65536

// hotCodeLines is the clone's hot code loop (4KB, comfortably inside the
// L1I).
const hotCodeLines = 64

// depSlots is the length of the clone's synthetic loop body in static
// instruction positions.
const depSlots = 64

// Clone is a synthetic instruction stream generated from a statistical
// profile. By construction it reproduces the profiled instruction mix,
// register dependence-distance distribution, branch taken/repeat behaviour
// (a two-state Markov chain per static branch) and cache hit rates (a
// hot/warm/cold locality mixture, the profile-carries-cache-behaviour
// approach of the statistical simulation literature). It implements
// trace.Stream and is deterministic for a given (profile, length, seed).
//
// The clone is a single thread: synchronization classes in the profile
// are re-mapped to plain serializing instructions, so clones are run
// single-threaded (the multi-threaded extension of statistical simulation
// is out of scope here, as it was for the paper's related-work baselines).
type Clone struct {
	p    *Profile
	rng  *rand.Rand
	left int

	seq uint64

	classCDF []float64
	depCDF   []float64

	// Dependence slots: a synthetic "loop body" of depSlots static
	// instruction positions, each with dependence distances drawn once
	// from the profiled histogram. Cycling through fixed per-slot
	// distances reproduces the histogram marginally while keeping the
	// chain structure periodic — parallel chains, as in real loops —
	// instead of the one deep random chain i.i.d. sampling produces.
	slotD1   [depSlots]int
	slotHas2 [depSlots]bool
	slotD2   [depSlots]int

	// Dependence ring: the destination registers of the most recent
	// writing instructions and the sequence numbers at which they wrote.
	wrRegs  [MaxDepDist]uint8
	wrSeqs  [MaxDepDist]uint64
	wrPos   int
	wrN     int
	nextDst uint8
	// lastLoadDst is the destination of the most recent load, for
	// reproducing the profiled pointer-chase (load-address-depends-on-
	// load) fraction; RegNone before the first load.
	lastLoadDst uint8
	chaseRate   float64

	// Branch state: a two-state Markov chain per static branch whose
	// transition probabilities reproduce that branch's profiled taken
	// rate (stationary distribution) and repeat rate (self-transition
	// mass). Dynamic branches sample statics by profiled frequency.
	branchPCs   []uint64
	branchPrev  []bool
	branchLeave [][2]float64 // [prev-taken, prev-not-taken] leave probs
	branchCDF   []float64

	// Data locality mixture. Warm and cold references walk sequentially
	// (page-local, like the array sweeps they stand in for) so that the
	// clone reproduces cache hit rates without destroying TLB locality.
	pL1, pL2  float64
	pColdIn   float64 // per-access probability of entering a cold burst
	burst     int     // cold-burst length
	burstLeft int     // remaining forced-cold accesses
	hot       [hotLines]int64
	hotN      int
	hotPos    int
	warmPool  int64
	warmPtr   int64
	freshLine int64

	// Code locality: a hot loop plus cold-line jumps at the profiled
	// I-miss rate. Cold code sweeps a bounded region cyclically — real
	// code is reused, so cold fetches miss the L1I but settle in the L2
	// after the first sweep.
	iMiss     float64
	pcLine    uint64
	pcSlot    uint64
	coldCode  uint64
	coldLines uint64
}

// NewClone creates a synthetic stream of n instructions from p.
func NewClone(p *Profile, n int, seed int64) *Clone {
	c := &Clone{
		p:    p,
		rng:  rand.New(rand.NewSource(seed)),
		left: n,
	}
	c.classCDF = cdf(p.ClassCount[:])
	c.depCDF = cdf(p.DepDist[:])

	statics := p.Branches
	if len(statics) == 0 {
		statics = []StaticBranch{{Count: 1, Taken: 1, Repeats: 1}}
	}
	c.branchPCs = make([]uint64, len(statics))
	c.branchPrev = make([]bool, len(statics))
	c.branchLeave = make([][2]float64, len(statics))
	counts := make([]uint64, len(statics))
	for i, b := range statics {
		c.branchPCs[i] = 0x500000 + uint64(i)*64
		c.branchPrev[i] = c.rng.Float64() < b.TakenRate()
		lt, ln := markovLeaveRates(b.TakenRate(), b.RepeatRate())
		c.branchLeave[i] = [2]float64{lt, ln}
		counts[i] = b.Count
	}
	c.branchCDF = cdf(counts)

	c.pL1 = p.L1DHitRate()
	c.pL2 = p.L2DHitRate()
	c.burst = int(p.MeanBurst() + 0.5)
	if c.burst < 1 {
		c.burst = 1
	}
	// Cap the burst at the MLP-relevant scale: one reorder-buffer window
	// can overlap at most a handful of misses, so longer profiled
	// clusters (continuous miss streams) gain nothing from being fused
	// into one burst, and short clones need bursts frequent enough for
	// the cold rate to be stable over their length.
	if c.burst > 8 {
		c.burst = 8
	}
	c.pColdIn = (1 - c.pL1 - c.pL2) / float64(c.burst)
	c.warmPool = int64(p.DataLines)
	if c.warmPool > warmPoolMax {
		c.warmPool = warmPoolMax
	}
	if c.warmPool < 1 {
		c.warmPool = 1
	}
	c.freshLine = 1 << 30 // far beyond the warm region
	c.iMiss = p.IMissRate()
	c.coldLines = uint64(p.CodeLines)
	if c.coldLines <= hotCodeLines {
		c.coldLines = hotCodeLines + 1
	}
	if c.coldLines > 2048 {
		c.coldLines = 2048
	}
	c.coldCode = hotCodeLines
	c.nextDst = 8
	c.lastLoadDst = isa.RegNone
	c.chaseRate = p.LoadLoadRate()

	pair := c.srcPairRate()
	for i := 0; i < depSlots; i++ {
		c.slotD1[i] = c.sampleDist()
		c.slotHas2[i] = c.rng.Float64() < pair
		c.slotD2[i] = c.sampleDist()
	}
	return c
}

// sampleDist draws one dependence distance from the profiled histogram.
func (c *Clone) sampleDist() int {
	d := c.sample(c.depCDF)
	if d == 0 {
		d = 1
	}
	return d
}

// markovLeaveRates derives the per-state leave probabilities of a
// two-state Markov chain whose stationary taken probability is t and
// whose expected self-transition (repeat) mass is r.
func markovLeaveRates(t, r float64) (leaveTaken, leaveNot float64) {
	if t <= 0 || t >= 1 {
		return 0, 0 // constant-outcome branches never leave their state
	}
	s := (1 - r) / (2 * t * (1 - t))
	leaveTaken = (1 - t) * s
	leaveNot = t * s
	if leaveTaken > 1 {
		leaveTaken = 1
	}
	if leaveNot > 1 {
		leaveNot = 1
	}
	return leaveTaken, leaveNot
}

// cdf builds a cumulative distribution over counts, or a uniform one when
// the counts are all zero.
func cdf(counts []uint64) []float64 {
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		for i := range out {
			out[i] = float64(i+1) / float64(len(out))
		}
		return out
	}
	acc := 0.0
	for i, c := range counts {
		acc += float64(c) / float64(total)
		out[i] = acc
	}
	out[len(out)-1] = 1
	return out
}

func (c *Clone) sample(cdf []float64) int {
	u := c.rng.Float64()
	for i, v := range cdf {
		if u <= v {
			return i
		}
	}
	return len(cdf) - 1
}

// Next implements trace.Stream.
func (c *Clone) Next() (isa.Inst, bool) {
	if c.left <= 0 {
		return isa.Inst{}, false
	}
	c.left--

	class := isa.Class(c.sample(c.classCDF))
	if class.IsSync() {
		class = isa.Serializing
	}
	if class == isa.Call || class == isa.Return {
		class = isa.Branch // calls/returns fold into plain branches
	}

	in := isa.Inst{
		Seq:   c.seq,
		Class: class,
		PC:    c.nextPC(),
		Src1:  isa.RegNone,
		Src2:  isa.RegNone,
		Dst:   isa.RegNone,
	}

	chase := class == isa.Load && c.lastLoadDst != isa.RegNone &&
		c.rng.Float64() < c.chaseRate
	if class != isa.Serializing {
		slot := int(c.seq % depSlots)
		if slot == 0 {
			// Synthetic loop boundary: values of the previous
			// iteration are dead (registers get rewritten before
			// reuse in real loop code), so chains do not concatenate
			// across iterations. Without this the slot structure
			// welds one ever-deepening chain through the stream.
			c.wrN = 0
		}
		if chase {
			// Pointer chase: the address source is the previous
			// load's result, so the two misses serialize, as in the
			// profiled stream.
			in.Src1 = c.lastLoadDst
		} else {
			in.Src1 = c.srcAtDistance(c.slotD1[slot])
		}
		if c.slotHas2[slot] {
			in.Src2 = c.srcAtDistance(c.slotD2[slot])
		}
	}

	switch {
	case class == isa.Branch:
		idx := c.sample(c.branchCDF)
		in.PC = c.branchPCs[idx]
		prev := c.branchPrev[idx]
		leave := c.branchLeave[idx][0]
		if !prev {
			leave = c.branchLeave[idx][1]
		}
		in.Taken = prev
		if c.rng.Float64() < leave {
			in.Taken = !prev
		}
		c.branchPrev[idx] = in.Taken
		if in.Taken {
			in.Target = in.PC + 256
		}
	case class.IsMem():
		line := c.nextDataLine()
		in.Addr = uint64(line)*64 + uint64(c.rng.Intn(8))*8
		if class == isa.Load {
			in.Dst = c.allocDst()
			c.lastLoadDst = in.Dst
		}
	case class == isa.Serializing:
		// No operands.
	default:
		in.Dst = c.allocDst()
	}

	c.seq++
	return in, true
}

// nextPC advances the synthetic program counter: sequential slots within
// a hot code loop, with fresh-line jumps at the profiled I-miss rate.
func (c *Clone) nextPC() uint64 {
	if c.iMiss > 0 && c.rng.Float64() < c.iMiss {
		c.coldCode = hotCodeLines + (c.coldCode+1-hotCodeLines)%(c.coldLines-hotCodeLines)
		c.pcSlot = 0
		return 0x400000 + c.coldCode*64
	}
	pc := 0x400000 + c.pcLine*64 + c.pcSlot*4
	c.pcSlot++
	if c.pcSlot == 16 {
		c.pcSlot = 0
		c.pcLine = (c.pcLine + 1) % hotCodeLines
	}
	return pc
}

// nextDataLine samples the locality mixture: hot (L1-resident), warm
// (an L2-resident sequential sweep) or cold (a fresh-line sweep that
// misses below the L2). The warm and cold pointers walk line by line so
// consecutive references stay on the same page, as the array sweeps they
// stand in for do.
func (c *Clone) nextDataLine() int64 {
	var line int64
	cold := false
	if c.burstLeft > 0 {
		c.burstLeft--
		cold = true
	} else if c.rng.Float64() < c.pColdIn {
		c.burstLeft = c.burst - 1
		cold = true
	}
	switch {
	case cold:
		// Fresh lines, spaced a page apart within the burst so each
		// miss is a distinct DRAM access (the parallel array streams
		// the burst stands in for), sequential across bursts.
		c.freshLine++
		line = c.freshLine
	default:
		u := c.rng.Float64() * (c.pL1 + c.pL2)
		if u < c.pL1 && c.hotN > 0 {
			line = c.hot[c.rng.Intn(c.hotN)]
		} else {
			c.warmPtr = (c.warmPtr + 1) % c.warmPool
			line = c.warmPtr
		}
	}
	c.hot[c.hotPos] = line
	c.hotPos = (c.hotPos + 1) % hotLines
	if c.hotN < hotLines {
		c.hotN++
	}
	return line
}

// srcPairRate estimates how often instructions carry a second source
// operand, from the profiled operand count per instruction.
func (c *Clone) srcPairRate() float64 {
	if c.p.Total == 0 {
		return 0
	}
	per := float64(c.p.SrcOps) / float64(c.p.Total)
	if per <= 1 {
		return 0
	}
	if per >= 2 {
		return 1
	}
	return per - 1
}

// srcAtDistance returns the register written by the most recent producer
// at least d instructions back; the far/absent bucket reads a register
// outside the rotating destination pool.
func (c *Clone) srcAtDistance(d int) uint8 {
	if d >= MaxDepDist || c.wrN == 0 {
		return uint8(48 + c.rng.Intn(16))
	}
	target := int64(c.seq) - int64(d)
	// Walk the write ring from most recent backwards to the first write
	// at or before the target sequence number.
	for k := 1; k <= c.wrN; k++ {
		idx := (c.wrPos - k + MaxDepDist) % MaxDepDist
		if int64(c.wrSeqs[idx]) <= target {
			return c.wrRegs[idx]
		}
	}
	// All tracked writes are newer (e.g. right after a loop boundary):
	// the producer is long dead, so the value is ambient — independent.
	return uint8(48 + c.rng.Intn(16))
}

// allocDst picks the next destination register, cycling over a pool wide
// enough that unintended short dependences are rare, and records the
// write in the ring.
func (c *Clone) allocDst() uint8 {
	r := c.nextDst
	c.nextDst++
	if c.nextDst == 48 {
		c.nextDst = 8
	}
	c.wrRegs[c.wrPos] = r
	c.wrSeqs[c.wrPos] = c.seq
	c.wrPos = (c.wrPos + 1) % MaxDepDist
	if c.wrN < MaxDepDist {
		c.wrN++
	}
	return r
}

var _ trace.Stream = (*Clone)(nil)
