package ooo

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

func build(insts []isa.Inst, perfect memhier.Perfect, predictor string) (*Core, *memhier.Hierarchy) {
	m := config.Default(1)
	if predictor != "" {
		m.Branch.Kind = predictor
	}
	mem := memhier.New(1, m.Mem, perfect)
	bp := branch.NewUnit(m.Branch)
	c := New(0, m.Core, bp, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
	return c, mem
}

func runCore(t *testing.T, c *Core) {
	t.Helper()
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 10_000_000 {
			t.Fatal("detailed core did not finish")
		}
	}
}

func seqALU(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{
			Seq: uint64(i), PC: 0x400000 + uint64(i%64)*4,
			Class: isa.IntALU, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: uint8(8 + i%32),
		}
	}
	return out
}

func TestIndependentALUNearWidth(t *testing.T) {
	c, _ := build(seqALU(8000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, c)
	if c.Retired() != 8000 {
		t.Fatalf("retired %d", c.Retired())
	}
	if ipc := c.IPC(); ipc < 3.5 {
		t.Fatalf("IPC = %.3f, want near dispatch width 4", ipc)
	}
}

func TestSerialChainAtOne(t *testing.T) {
	insts := seqALU(4000)
	for i := range insts {
		insts[i].Src1 = 10
		insts[i].Dst = 10
	}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, c)
	if ipc := c.IPC(); ipc < 0.85 || ipc > 1.1 {
		t.Fatalf("serial-chain IPC = %.3f, want ~1", ipc)
	}
}

func TestConsumerWaitsForProducer(t *testing.T) {
	// A single load feeding a long chain of dependents: the chain cannot
	// start before the load returns from memory.
	insts := seqALU(300)
	insts[100] = isa.Inst{Seq: 100, PC: 0x400100, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 40}
	for i := 101; i < 160; i++ {
		insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400000 + uint64(i)*4,
			Class: isa.IntALU, Src1: 40, Src2: isa.RegNone, Dst: 40}
	}
	c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
	runCore(t, c)
	base, _ := build(seqALU(300), memhier.Perfect{ISide: true}, "perfect")
	runCore(t, base)
	if c.Cycles < base.Cycles+150 {
		t.Fatalf("dependent chain after a DRAM load finished in %d vs base %d: scoreboard broken",
			c.Cycles, base.Cycles)
	}
}

func TestWAWDoesNotFalselyBlock(t *testing.T) {
	// Two writers of the same register with independent consumers: the
	// second writer must track its own producer, not serialize behind
	// the first writer's consumer.
	insts := seqALU(1000)
	for i := range insts {
		insts[i].Dst = uint8(8 + i%4) // heavy register reuse
	}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, c)
	if ipc := c.IPC(); ipc < 3.0 {
		t.Fatalf("register-reuse IPC = %.3f, want near width (no false WAW stalls)", ipc)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	mk := func(pred string) int64 {
		insts := seqALU(3000)
		for i := 100; i < 2900; i += 10 {
			insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400100,
				Class: isa.Branch, Taken: i%20 == 0, Target: 0x400000,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
		}
		c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, pred)
		runCore(t, c)
		return c.Cycles
	}
	slow, fast := mk("bimodal"), mk("perfect")
	if slow <= fast+100 {
		t.Fatalf("mispredictions cost %d cycles (perfect %d): redirect not modeled", slow, fast)
	}
}

func TestSerializingDrainsROB(t *testing.T) {
	insts := seqALU(1000)
	insts[500] = isa.Inst{Seq: 500, PC: 0x4007D0, Class: isa.Serializing,
		Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, c)
	base, _ := build(seqALU(1000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, base)
	if c.Cycles <= base.Cycles {
		t.Fatal("serializing instruction cost nothing")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A burst of stores that all miss to DRAM must not be free: the
	// store buffer fills and commit stalls.
	insts := make([]isa.Inst, 2000)
	for i := range insts {
		insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400000 + uint64(i%16)*4,
			Class: isa.Store, Addr: 0x10000000000 + uint64(i)*64,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
	}
	c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
	runCore(t, c)
	if ipc := c.IPC(); ipc > 1.5 {
		t.Fatalf("DRAM-missing store burst IPC = %.3f: store buffer free", ipc)
	}
}

func TestLoadsOverlapMLP(t *testing.T) {
	// Independent DRAM loads spread in a window overlap: N loads cost
	// far less than N x latency.
	mk := func(nLoads int) int64 {
		insts := seqALU(600)
		for k := 0; k < nLoads; k++ {
			insts[200+k] = isa.Inst{Seq: uint64(200 + k), PC: 0x400200 + uint64(k)*4,
				Class: isa.Load, Addr: 0x10000000000 + uint64(k)*1<<20,
				Src1: isa.RegNone, Src2: isa.RegNone, Dst: uint8(40 + k%8)}
		}
		c, _ := build(insts, memhier.Perfect{ISide: true}, "perfect")
		runCore(t, c)
		return c.Cycles
	}
	base := mk(0)
	four := mk(4)
	if four-base > 2*(mk(1)-base)+50 {
		t.Fatalf("four independent misses cost %d vs base %d: no MLP", four-base, mk(1)-base)
	}
}

func TestSyncWaitsAtDispatch(t *testing.T) {
	insts := seqALU(100)
	insts[50] = isa.Inst{Seq: 50, Class: isa.BarrierArrive}
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{ISide: true, DSide: true})
	bp := branch.NewUnit(m.Branch)
	gate := &gateSyncer{openAt: 700}
	c := New(0, m.Core, bp, mem, trace.NewSliceStream(insts), gate)
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 1_000_000 {
			t.Fatal("did not finish")
		}
	}
	if c.FinishTime() < 700 {
		t.Fatalf("finished at %d before the barrier opened", c.FinishTime())
	}
	if c.Retired() != 100 {
		t.Fatalf("retired %d", c.Retired())
	}
}

type gateSyncer struct{ openAt int64 }

func (g *gateSyncer) Sync(core int, in *isa.Inst, now int64) sim.SyncDecision {
	if now < g.openAt {
		return sim.SyncDecision{}
	}
	return sim.SyncDecision{Proceed: true, Latency: 1}
}

func TestRetiredExactAndDone(t *testing.T) {
	c, _ := build(seqALU(7777), memhier.Perfect{}, "")
	runCore(t, c)
	if c.Retired() != 7777 {
		t.Fatalf("retired = %d", c.Retired())
	}
	if !c.Done() || c.FinishTime() <= 0 {
		t.Fatal("completion state wrong")
	}
}

func TestFunctionalUnitContention(t *testing.T) {
	// Pure FP stream: issue is bounded by 4 FP units even though issue
	// width is 6.
	insts := make([]isa.Inst, 4000)
	for i := range insts {
		insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400000 + uint64(i%64)*4,
			Class: isa.FPOp, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: uint8(8 + i%32)}
	}
	c, _ := build(insts, memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(t, c)
	if ipc := c.IPC(); ipc > 4.05 {
		t.Fatalf("FP-only IPC = %.3f exceeds 4 FP units", ipc)
	}
}
