// Command sweep explores a design space with interval simulation — the
// paper's headline use case: culling a large space quickly with the
// analytical core model, so that detailed simulation can focus on the
// surviving region.
//
// Four sweeps are built in:
//
//	-sweep core    ROB size × dispatch width (core sizing)
//	-sweep l2      L2 capacity (cache sizing)
//	-sweep fabric  bus vs mesh vs ring on-chip interconnect, 4-16 cores
//	-sweep dram    fixed-latency vs banked row-buffer DRAM
//
// Each prints one IPC (or cycles) table over a set of benchmark profiles.
// Every point is an independent simrun scenario, so -j N runs the whole
// sweep across N host cores; results are deterministic and identical to
// the sequential run.
//
//	go run ./cmd/sweep -sweep core -profiles gcc,mcf,swim -j 8
//
// Alternatively, -f sweep.json runs a declarative scenario batch: a
// simrun.SpecFile of shared defaults plus one spec per scenario — the
// same wire format the simd service accepts, so a service query is
// copy-pasteable into a batch file and vice versa.
//
// -adaptive turns any sweep (built-in or -f) into a two-phase run: the
// statistical engine estimates every point first, the estimates rank the
// space, and only the -top fraction (plus any point the cheap tier cannot
// run) is re-simulated at full fidelity. The table reports both numbers
// and the tier that produced each final answer.
//
// -fleet http://host:8080 submits the -f batch to a simd service (or
// fleet coordinator — see docs/fleet.md) instead of simulating locally:
// -j then bounds in-flight submissions, transient HTTP failures retry
// with capped backoff, and the table reports which worker answered each
// point. Results are byte-identical to the local run — the service runs
// the same engines over the same wire specs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/config"
	// Register the estimator engines for -adaptive and for spec files
	// that pin "engine".
	_ "repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/simrun"
)

// exitWith terminates the process; main replaces it with a version that
// flushes any active profiles first, so error and interrupt exits still
// leave usable profile files.
var exitWith = os.Exit

func main() {
	var (
		sweep    = flag.String("sweep", "core", "design-space sweep: core, l2, fabric, dram")
		file     = flag.String("f", "", "run a declarative scenario batch from this spec file instead of a built-in sweep")
		profiles = flag.String("profiles", "gcc,mcf,swim", "comma-separated benchmark profiles")
		insts    = flag.Int("n", 50_000, "measured instructions per run")
		warm     = flag.Int("warmup", 300_000, "functional warmup instructions per run")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		detailed = flag.Bool("detailed", false, "cross-check each point with the detailed model (slow)")
		jobs     = flag.Int("j", 1, "host worker goroutines (0 = all host cores)")
		hostpar  = flag.Int("hostpar", 0, "host-parallel engine per scenario: one goroutine per simulated core (0 = sequential; results are bit-identical)")
		adaptive = flag.Bool("adaptive", false, "estimate every point with the statistical engine first, then spend full fidelity on the top fraction")
		top      = flag.Float64("top", 0.25, "with -adaptive, the fraction of the space promoted to full fidelity")
		fleetURL = flag.String("fleet", "", "submit the -f batch to the simd service at this base URL instead of simulating locally")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (written on normal exit)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on normal exit")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of the whole sweep to this file")
		progress   = flag.Bool("progress", false, "print live per-scenario progress lines (retired, MIPS, ETA) to stderr")
	)
	flag.Parse()

	// Profiles so future perf work on the sweep paths starts from data.
	// flush runs on every exit path — including errors and the SIGINT 130
	// exit, where a profile of the long run is most wanted — via the
	// exitWith indirection used by all error handling below.
	flush, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer flush()

	// The sweep-wide trace collects every scenario's spans in one ring;
	// like the profiles, it is written on every exit path so an
	// interrupted sweep still leaves a loadable trace.
	var tracer *obs.Tracer
	writeTrace := func() {}
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 18)
		var once sync.Once
		writeTrace = func() {
			once.Do(func() {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				if err := tracer.WriteChrome(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
				f.Close()
			})
		}
	}
	defer writeTrace()
	exitWith = func(code int) {
		flush()
		writeTrace()
		os.Exit(code)
	}

	// Ctrl-C / SIGTERM cancels the batch: in-flight scenarios stop at
	// the driver's next poll and the sweep exits instead of running on.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *top <= 0 || *top > 1 {
		fmt.Fprintf(os.Stderr, "sweep: -top %v out of range (0, 1]\n", *top)
		exitWith(2)
	}
	s := &sweeper{ctx: ctx, insts: *insts, warm: *warm, seed: *seed, detailed: *detailed, jobs: *jobs, hostpar: *hostpar, adaptive: *adaptive, top: *top, progress: *progress}
	if tracer != nil || *progress {
		s.obsv = &obs.Observer{Tracer: tracer}
		if *progress {
			s.obsv.Progress = func(p obs.Progress) {
				fmt.Fprintf(os.Stderr, "sweep: %s\n", p)
			}
		}
	}
	if *fleetURL != "" {
		// Only declarative batches can travel: built-in grid sweeps tweak
		// machines with Go closures, which have no wire form.
		if *file == "" {
			fmt.Fprintln(os.Stderr, "sweep: -fleet needs a declarative batch: add -f <specfile>")
			exitWith(2)
		}
		if *adaptive {
			fmt.Fprintln(os.Stderr, "sweep: -adaptive is a local two-phase runner; submit to a -tiered simd instead of combining it with -fleet")
			exitWith(2)
		}
		s.sweepFleet(*file, *fleetURL)
		return
	}
	if *file != "" {
		s.sweepFile(*file)
		return
	}
	names := strings.Split(*profiles, ",")
	switch *sweep {
	case "core":
		s.sweepCore(names)
	case "l2":
		s.sweepL2(names)
	case "fabric":
		s.sweepFabric(names)
	case "dram":
		s.sweepDRAM(names)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q (want core, l2, fabric or dram)\n", *sweep)
		exitWith(2)
	}
}

type sweeper struct {
	ctx         context.Context
	insts, warm int
	seed        int64
	detailed    bool
	jobs        int
	hostpar     int
	adaptive    bool
	top         float64
	// obsv, when set, is attached to every scenario the sweep runs: one
	// shared tracer and progress sink across the whole batch.
	obsv *obs.Observer
	// progress mirrors -progress for the fleet path, where there is no
	// local scenario to observe: the live line counts jobs instead of
	// instructions.
	progress bool
}

// scenario builds one sweep scenario, treating a bad benchmark name (or
// any other scenario error) as a usage error.
func scenario(bench string, opts ...simrun.Option) *simrun.Scenario {
	sc, err := simrun.New(bench, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitWith(2)
	}
	return sc
}

// point builds the scenario for one (profile, machine-tweak) grid point.
func (s *sweeper) point(name, model string, tweak func(*config.Machine)) *simrun.Scenario {
	return scenario(name,
		simrun.Model(model),
		simrun.Insts(s.insts),
		simrun.Warmup(s.warm),
		simrun.Seed(s.seed),
		simrun.HostParallel(s.hostpar),
		simrun.Configure(tweak),
	)
}

// run executes the scenarios across the host worker pool and returns the
// results in input order, exiting on the first failure.
func (s *sweeper) run(scs []*simrun.Scenario) []simrun.BatchResult {
	if s.obsv != nil {
		for _, sc := range scs {
			sc.SetObserver(s.obsv)
		}
	}
	results := simrun.Batch(s.ctx, scs, simrun.BatchOpts{Workers: s.jobs})
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweep: interrupted")
			exitWith(130)
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", r.Scenario.Name(), r.Err)
			exitWith(1)
		}
	}
	return results
}

// adaptiveRun is the two-phase budgeted sweep: phase one estimates every
// scenario with the cheap statistical engine; the estimates rank the
// space (highest estimated IPC first — the promising region detailed
// simulation should focus on); phase two re-runs the top -top fraction at
// full fidelity. Scenarios the statistical engine cannot run
// (multi-threaded or multi-program points) skip phase one and are always
// promoted. One row per scenario reports both numbers and the tier of the
// final answer.
func (s *sweeper) adaptiveRun(scs []*simrun.Scenario) {
	type row struct {
		sc       *simrun.Scenario
		estIPC   float64
		hasEst   bool
		promoted bool
		fullIPC  float64
		tier     string
	}
	rows := make([]*row, len(scs))
	var estScs []*simrun.Scenario
	var estRows []*row
	for i, sc := range scs {
		rows[i] = &row{sc: sc}
		est, err := sc.ForEngine("statistical")
		if err != nil {
			rows[i].promoted = true
			continue
		}
		rows[i].hasEst = true
		estScs = append(estScs, est)
		estRows = append(estRows, rows[i])
	}

	budget := int(float64(len(estScs))*s.top + 0.5)
	if budget < 1 && len(estScs) > 0 {
		budget = 1
	}
	fmt.Printf("== adaptive: %d scenarios, %d statistical estimates, full fidelity on top %d + %d unsupported ==\n",
		len(scs), len(estScs), budget, len(scs)-len(estScs))

	for i, br := range s.run(estScs) {
		res := br.Result
		if res.Cycles > 0 {
			estRows[i].estIPC = float64(res.TotalRetired) / float64(res.Cycles)
		}
		estRows[i].tier = string(br.Result.Tier)
	}
	ranked := append([]*row(nil), estRows...)
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].estIPC > ranked[b].estIPC })
	for i := 0; i < budget && i < len(ranked); i++ {
		ranked[i].promoted = true
	}

	var fullScs []*simrun.Scenario
	var fullRows []*row
	for _, r := range rows {
		if r.promoted {
			fullScs = append(fullScs, r.sc)
			fullRows = append(fullRows, r)
		}
	}
	for i, br := range s.run(fullScs) {
		res := br.Result
		if res.Cycles > 0 {
			fullRows[i].fullIPC = float64(res.TotalRetired) / float64(res.Cycles)
		}
		fullRows[i].tier = string(br.Result.Tier)
	}

	// Ranked estimates first, then the points that never had one.
	order := ranked
	for _, r := range rows {
		if !r.hasEst {
			order = append(order, r)
		}
	}
	fmt.Printf("%4s %-34s %10s %10s %12s\n", "rank", "scenario", "est IPC", "full IPC", "tier")
	for i, r := range order {
		est, full := "-", "-"
		if r.hasEst {
			est = fmt.Sprintf("%.3f", r.estIPC)
		}
		if r.promoted {
			full = fmt.Sprintf("%.3f", r.fullIPC)
		}
		fmt.Printf("%4d %-34s %10s %10s %12s\n", i+1, r.sc.Name(), est, full, r.tier)
	}
}

// sweepFile runs the declarative batch in the named simrun.SpecFile and
// prints one row per scenario.
func (s *sweeper) sweepFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitWith(2)
	}
	// The sizing flags back up the file: a scenario (or the file's
	// defaults) that omits insts/warmup/seed runs with -n/-warmup/-seed
	// rather than the builder's defaults.
	seed := s.seed
	scs, err := simrun.LoadSpecs(f, simrun.Spec{Insts: s.insts, Warmup: s.warm, Seed: &seed, HostPar: s.hostpar})
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", path, err)
		exitWith(2)
	}

	if s.adaptive {
		fmt.Printf("== scenario batch: %s ==\n", path)
		s.adaptiveRun(scs)
		return
	}
	fmt.Printf("== scenario batch: %s (%d scenarios) ==\n", path, len(scs))
	fmt.Printf("%-28s %-10s %6s %12s %10s\n", "scenario", "model", "cores", "cycles", "IPC")
	for _, r := range s.run(scs) {
		res := r.Result
		var ipc float64
		if res.Cycles > 0 {
			ipc = float64(res.TotalRetired) / float64(res.Cycles)
		}
		fmt.Printf("%-28s %-10s %6d %12d %10.3f\n",
			r.Scenario.Name(), res.ModelLabel(), r.Scenario.Threads(), res.Cycles, ipc)
	}
}

// sweepFleet submits the declarative batch to a remote simd service and
// prints one row per scenario, including the worker that answered when
// the service runs a fleet. Submissions fan out across -j goroutines;
// each one retries transient HTTP failures (5xx, backpressure,
// connection refused/reset) under the client's capped, jittered backoff.
func (s *sweeper) sweepFleet(path, base string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitWith(2)
	}
	seed := s.seed
	specs, err := simrun.LoadRawSpecs(f, simrun.Spec{Insts: s.insts, Warmup: s.warm, Seed: &seed, HostPar: s.hostpar})
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", path, err)
		exitWith(2)
	}

	type row struct {
		name, model, tier, worker string
		cycles                    int64
		ipc                       float64
		err                       error
	}
	rows := make([]row, len(specs))
	cl := &fleet.Client{Base: base}
	workers := s.jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	// Under -progress the fleet path has no local scenario to heartbeat,
	// so the sweep heartbeats itself: the throttled line counts jobs
	// done / in flight / retried and which worker answered each, ticked
	// both on completions and on a timer so the line moves during long
	// jobs. The client's retry hook is the only retry signal a purely
	// remote sweep has.
	var done atomic.Uint64
	var inflight, retried atomic.Int64
	var pmu sync.Mutex
	perWorker := map[string]int{}
	var hb *obs.Heartbeat
	var stopTick chan struct{}
	if s.progress {
		hb = &obs.Heartbeat{
			Budget: uint64(len(specs)),
			Emit: func(p obs.Progress) {
				pmu.Lock()
				ids := make([]string, 0, len(perWorker))
				for id := range perWorker {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				var byWorker strings.Builder
				for _, id := range ids {
					fmt.Fprintf(&byWorker, " %s:%d", id, perWorker[id])
				}
				pmu.Unlock()
				fmt.Fprintf(os.Stderr, "sweep: fleet %d/%d jobs done, %d in flight, %d retried%s\n",
					p.Retired, p.Budget, inflight.Load(), retried.Load(), byWorker.String())
			},
		}
		cl.Retry.OnRetry = func(string, int) { retried.Add(1) }
		stopTick = make(chan struct{})
		go func() {
			ticker := time.NewTicker(200 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-ticker.C:
					hb.Tick(done.Load())
				}
			}
		}()
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				sp := specs[i]
				r := row{name: fleetSpecName(sp)}
				inflight.Add(1)
				res, err := cl.SubmitAndWait(s.ctx, sp)
				if err == nil {
					var sum report.Summary
					err = json.Unmarshal(res.Payload, &sum)
					r.model, r.tier, r.worker = sum.Model, res.Tier, res.Worker
					r.cycles = sum.Cycles
					if sum.Cycles > 0 {
						r.ipc = float64(sum.Instructions) / float64(sum.Cycles)
					}
				}
				r.err = err
				rows[i] = r
				inflight.Add(-1)
				done.Add(1)
				if s.progress {
					pmu.Lock()
					who := r.worker
					if who == "" {
						who = "local"
					}
					perWorker[who]++
					pmu.Unlock()
					hb.Tick(done.Load())
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if s.progress {
		close(stopTick)
		// Final is suppressed when the closing Tick already reported this
		// exact count — no duplicate last line.
		hb.Final(done.Load())
	}

	for _, r := range rows {
		if errors.Is(r.err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweep: interrupted")
			exitWith(130)
		}
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", r.name, r.err)
			exitWith(1)
		}
	}
	fmt.Printf("== scenario batch: %s via %s (%d scenarios) ==\n", path, base, len(specs))
	fmt.Printf("%-28s %-10s %-12s %-14s %12s %10s\n", "scenario", "model", "tier", "worker", "cycles", "IPC")
	for _, r := range rows {
		tier, worker := r.tier, r.worker
		if tier == "" {
			tier = "-"
		}
		if worker == "" {
			worker = "-"
		}
		fmt.Printf("%-28s %-10s %-12s %-14s %12d %10.3f\n", r.name, r.model, tier, worker, r.cycles, r.ipc)
	}
}

// fleetSpecName labels one wire spec in the fleet table and in errors.
func fleetSpecName(sp simrun.Spec) string {
	switch {
	case sp.Label != "":
		return sp.Label
	case sp.Bench != "":
		return sp.Bench
	default:
		return "mix:" + strings.Join(sp.Mix, "+")
	}
}

// grid runs one scenario per (row, profile) cell — plus a detailed-model
// twin per cell when cross-checking — and prints the IPC table. Under
// -adaptive the grid is flattened into one labeled scenario per cell and
// handed to the two-phase estimate-then-promote runner instead.
func (s *sweeper) grid(labels []string, names []string, tweaks []func(*config.Machine)) {
	if s.adaptive {
		var scs []*simrun.Scenario
		for ti, tweak := range tweaks {
			for _, name := range names {
				scs = append(scs, scenario(name,
					simrun.Model("interval"),
					simrun.Insts(s.insts),
					simrun.Warmup(s.warm),
					simrun.Seed(s.seed),
					simrun.HostParallel(s.hostpar),
					simrun.Configure(tweak),
					simrun.Label(name+" "+labels[ti]),
				))
			}
		}
		s.adaptiveRun(scs)
		return
	}
	var scs []*simrun.Scenario
	for _, tweak := range tweaks {
		for _, name := range names {
			scs = append(scs, s.point(name, "interval", tweak))
			if s.detailed {
				scs = append(scs, s.point(name, "detailed", tweak))
			}
		}
	}
	results := s.run(scs)

	s.header(names)
	perCell := 1
	if s.detailed {
		perCell = 2
	}
	i := 0
	for _, label := range labels {
		fmt.Printf("%-22s", label)
		for range names {
			iv := results[i].Result.Cores[0].IPC
			if s.detailed {
				det := results[i+1].Result.Cores[0].IPC
				fmt.Printf(" %5.2f/%4.2f", iv, det)
			} else {
				fmt.Printf(" %10.3f", iv)
			}
			i += perCell
		}
		fmt.Println()
	}
}

func (s *sweeper) header(names []string) {
	fmt.Printf("%-22s", "configuration")
	for _, n := range names {
		fmt.Printf(" %10s", n)
	}
	fmt.Println()
}

func (s *sweeper) sweepCore(names []string) {
	fmt.Println("== core sizing: IPC by ROB size x dispatch width (interval model) ==")
	var labels []string
	var tweaks []func(*config.Machine)
	for _, rob := range []int{64, 128, 256, 512} {
		for _, width := range []int{2, 4, 8} {
			labels = append(labels, fmt.Sprintf("ROB=%-4d width=%d", rob, width))
			tweaks = append(tweaks, func(m *config.Machine) {
				m.Core.ROBSize = rob
				m.Core.DecodeWidth = width
				m.Core.IssueWidth = width + 2
				m.Core.FetchWidth = 2 * width
			})
		}
	}
	s.grid(labels, names, tweaks)
}

func (s *sweeper) sweepL2(names []string) {
	fmt.Println("== cache sizing: IPC by shared L2 capacity (interval model) ==")
	var labels []string
	var tweaks []func(*config.Machine)
	for _, mb := range []int{1, 2, 4, 8} {
		labels = append(labels, fmt.Sprintf("L2=%dMB", mb))
		tweaks = append(tweaks, func(m *config.Machine) { m.Mem.L2.SizeBytes = mb << 20 })
	}
	labels = append(labels, "no L2")
	tweaks = append(tweaks, func(m *config.Machine) { m.Mem.HasL2 = false })
	s.grid(labels, names, tweaks)
}

func (s *sweeper) sweepFabric(names []string) {
	fmt.Println("== interconnect: multi-program cycles by fabric and core count (interval model) ==")
	var scs []*simrun.Scenario
	var labels []string
	for _, cores := range []int{4, 8, 16} {
		for _, fabric := range []string{"bus", "mesh", "ring"} {
			labels = append(labels, fmt.Sprintf("%d cores, %s", cores, fabric))
			scs = append(scs, scenario("",
				simrun.Mix(names...),
				simrun.Cores(cores),
				simrun.Fabric(fabric),
				simrun.HostParallel(s.hostpar),
				simrun.Insts(s.insts),
				simrun.Warmup(s.warm),
				simrun.Seed(s.seed),
				simrun.KeepCores(),
				simrun.Label(labels[len(labels)-1]),
			))
		}
	}
	if s.adaptive {
		// Multi-program mixes are outside the statistical engine's reach,
		// so every point is promoted to full fidelity; the adaptive table
		// still reports the tier that answered.
		s.adaptiveRun(scs)
		return
	}
	fmt.Printf("%-22s %12s %14s %12s\n", "configuration", "cycles", "fabric-stall", "utilization")
	for i, r := range s.run(scs) {
		res := r.Result
		fab := res.Mem.Fabric()
		fmt.Printf("%-22s %12d %14d %11.1f%%\n",
			labels[i], res.Cycles, fab.StallCycles(), 100*fab.Utilization(res.Cycles))
	}
}

func (s *sweeper) sweepDRAM(names []string) {
	fmt.Println("== main memory: IPC with fixed-latency vs banked row-buffer DRAM (interval model) ==")
	s.grid(
		[]string{"fixed 150cy", "banked 90/180cy", "banked, 32 banks"},
		names,
		[]func(*config.Machine){
			func(m *config.Machine) {},
			func(m *config.Machine) { m.Mem.DRAMKind = "banked" },
			func(m *config.Machine) { m.Mem.DRAMKind = "banked"; m.Mem.DRAMBanks = 32 },
		},
	)
}
