package simrun_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simrun"
)

// TestOptionsLandInMachine checks that every knob option ends up in the
// resolved config.Machine.
func TestOptionsLandInMachine(t *testing.T) {
	s, err := simrun.New("gcc",
		simrun.Cores(4),
		simrun.Fabric("mesh"),
		simrun.Coherence("directory"),
		simrun.DRAM("banked"),
		simrun.Prefetch("stride"),
		simrun.Predictor("tage"),
		simrun.Configure(func(m *config.Machine) { m.Core.ROBSize = 64 }),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.ResolvedMachine()
	if err != nil {
		t.Fatalf("ResolvedMachine: %v", err)
	}
	if m.Cores != 4 {
		t.Errorf("Cores = %d, want 4", m.Cores)
	}
	if m.Mem.Interconnect != "mesh" {
		t.Errorf("Interconnect = %q, want mesh", m.Mem.Interconnect)
	}
	if m.Mem.Coherence != "directory" {
		t.Errorf("Coherence = %q, want directory", m.Mem.Coherence)
	}
	if m.Mem.DRAMKind != "banked" {
		t.Errorf("DRAMKind = %q, want banked", m.Mem.DRAMKind)
	}
	if m.Mem.Prefetch != "stride" || m.Mem.PrefetchDegree != 2 {
		t.Errorf("Prefetch = %q degree %d, want stride degree 2", m.Mem.Prefetch, m.Mem.PrefetchDegree)
	}
	if m.Branch.Kind != "tage" {
		t.Errorf("Branch.Kind = %q, want tage", m.Branch.Kind)
	}
	if m.Core.ROBSize != 64 {
		t.Errorf("ROBSize = %d, want 64 (Configure not applied)", m.Core.ROBSize)
	}
}

// TestMachineOptionSetsThreads checks an explicit base machine determines
// the thread count when Cores is not given.
func TestMachineOptionSetsThreads(t *testing.T) {
	s := simrun.MustNew("blackscholes", simrun.Machine(config.Stacked3D(4)))
	if s.Threads() != 4 {
		t.Errorf("Threads = %d, want 4 from the Machine option", s.Threads())
	}
	m, _ := s.ResolvedMachine()
	if m.Mem.HasL2 {
		t.Errorf("Machine option base lost: HasL2 = true, want false (Stacked3D)")
	}
}

// TestBaselineAliases checks the baseline names map to the config zero
// values the memory hierarchy treats as its defaults.
func TestBaselineAliases(t *testing.T) {
	s := simrun.MustNew("gcc",
		simrun.Fabric("bus"), simrun.Coherence("moesi"),
		simrun.DRAM("fixed"), simrun.Prefetch("none"), simrun.Predictor("local"))
	m, _ := s.ResolvedMachine()
	if m.Mem.DRAMKind != "" {
		t.Errorf("DRAMKind = %q, want \"\" for fixed", m.Mem.DRAMKind)
	}
	if m.Mem.Prefetch != "" {
		t.Errorf("Prefetch = %q, want \"\" for none", m.Mem.Prefetch)
	}
}

// TestUnknownNamesRejected checks every closed name set errors eagerly.
func TestUnknownNamesRejected(t *testing.T) {
	cases := []struct {
		label string
		bench string
		opt   simrun.Option
	}{
		{"fabric", "gcc", simrun.Fabric("torus")},
		{"coherence", "gcc", simrun.Coherence("mosi")},
		{"dram", "gcc", simrun.DRAM("hbm")},
		{"prefetch", "gcc", simrun.Prefetch("markov")},
		{"predictor", "gcc", simrun.Predictor("neural")},
		{"model", "gcc", simrun.Model("analytic")},
		{"benchmark", "notabench", nil},
	}
	for _, c := range cases {
		var err error
		if c.opt != nil {
			_, err = simrun.New(c.bench, c.opt)
		} else {
			_, err = simrun.New(c.bench)
		}
		if err == nil {
			t.Errorf("%s: unknown name accepted", c.label)
		}
	}
}

// testModelCalls counts test-model factory invocations; the model is
// registered once per process (the registry rejects duplicates), so the
// test measures the delta under -count=N reruns.
var testModelCalls int

var registerTestModel = sync.OnceFunc(func() {
	simrun.RegisterModel("test-countdown", func(p simrun.CoreParams) sim.Core {
		testModelCalls++
		// Reuse the built-in one-IPC model under a new name: the
		// registry, not the model, is under test.
		f, _ := simrun.LookupModel("oneipc")
		return f(p)
	})
})

// TestRegistry checks registered models run through the driver and unknown
// models error with the registered list.
func TestRegistry(t *testing.T) {
	registerTestModel()
	before := testModelCalls
	s, err := simrun.New("gcc", simrun.Model("test-countdown"), simrun.Insts(2000), simrun.Cores(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls := testModelCalls - before; calls != 2 {
		t.Errorf("factory called %d times, want 2", calls)
	}
	if res.ModelLabel() != "test-countdown" {
		t.Errorf("ModelLabel = %q, want test-countdown", res.ModelLabel())
	}
	if res.TotalRetired == 0 || res.Cycles == 0 {
		t.Errorf("empty run: retired=%d cycles=%d", res.TotalRetired, res.Cycles)
	}

	_, err = simrun.New("gcc", simrun.Model("no-such-model"))
	if err == nil || !strings.Contains(err.Error(), "interval") {
		t.Errorf("unknown model error should list registered models, got %v", err)
	}
}

// TestRunMatchesSequentialBatch checks Batch returns results in input
// order, that parallel execution does not change simulated outcomes, and
// that every scenario ran.
func TestBatchOrderAndDeterminism(t *testing.T) {
	names := []string{"gcc", "mcf", "swim", "art", "twolf", "vpr"}
	mk := func() []*simrun.Scenario {
		scs := make([]*simrun.Scenario, len(names))
		for i, n := range names {
			scs[i] = simrun.MustNew(n, simrun.Insts(3000), simrun.Warmup(5000))
		}
		return scs
	}
	seq := simrun.Batch(context.Background(), mk(), simrun.BatchOpts{Workers: 1})
	par := simrun.Batch(context.Background(), mk(), simrun.BatchOpts{Workers: 4})
	if len(seq) != len(names) || len(par) != len(names) {
		t.Fatalf("result counts: seq=%d par=%d, want %d", len(seq), len(par), len(names))
	}
	for i := range names {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: errs seq=%v par=%v", names[i], seq[i].Err, par[i].Err)
		}
		if got := par[i].Scenario.Name(); got != names[i] {
			t.Errorf("result %d is %q, want %q (ordering)", i, got, names[i])
		}
		if seq[i].Result.Cycles != par[i].Result.Cycles {
			t.Errorf("%s: cycles differ across Workers: %d vs %d",
				names[i], seq[i].Result.Cycles, par[i].Result.Cycles)
		}
		if seq[i].Result.Cores[0].IPC != par[i].Result.Cores[0].IPC {
			t.Errorf("%s: IPC differs across Workers", names[i])
		}
	}
}

// TestBatchCancellation checks a cancelled context stops the pool early:
// in-flight runs are interrupted and unstarted scenarios never simulate.
func TestBatchCancellation(t *testing.T) {
	// Scenario big enough to never finish within the test timeout.
	big := func() *simrun.Scenario {
		return simrun.MustNew("gcc", simrun.Insts(500_000_000))
	}
	scs := []*simrun.Scenario{big(), big(), big(), big()}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := simrun.Batch(ctx, scs, simrun.BatchOpts{Workers: 2})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation did not stop the pool (took %v)", elapsed)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestBatchTimeout checks the per-scenario timeout fires independently of
// the batch context.
func TestBatchTimeout(t *testing.T) {
	scs := []*simrun.Scenario{simrun.MustNew("gcc", simrun.Insts(500_000_000))}
	results := simrun.Batch(context.Background(), scs,
		simrun.BatchOpts{Workers: 1, Timeout: 20 * time.Millisecond})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", results[0].Err)
	}
	if !results[0].Result.Interrupted {
		t.Errorf("timed-out run should report Interrupted")
	}
}

// TestBatchProgress checks the progress callback sees every completion.
func TestBatchProgress(t *testing.T) {
	scs := []*simrun.Scenario{
		simrun.MustNew("gcc", simrun.Insts(2000)),
		simrun.MustNew("mcf", simrun.Insts(2000)),
	}
	var seen []int
	simrun.Batch(context.Background(), scs, simrun.BatchOpts{
		Workers:  2,
		Progress: func(done, total int, r simrun.BatchResult) { seen = append(seen, done) },
	})
	if len(seen) != 2 || seen[len(seen)-1] != 2 {
		t.Errorf("progress calls = %v, want [1 2]", seen)
	}
}
