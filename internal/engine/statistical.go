package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/isa"
	"repro/internal/multicore"
	"repro/internal/simrun"
	"repro/internal/statsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The statistical engine's work is bounded by these constants, not by
// the scenario's instruction budget: that bound is the whole point. A
// 200M-instruction scenario costs the same ~1.1M generated/simulated
// instructions as a 1M one, which is what makes the tier answer in well
// under a second while the full run takes tens of seconds.
const (
	// statProfileWarm functionally warms the profiler's internal caches
	// before counting, so the profiled locality is steady-state. Sized
	// like a real run's warmup — a short warm leaves the profiled window
	// colder than the stream the estimate stands in for.
	statProfileWarm = 200_000
	// statProfileWindow caps the profiled window of the real stream.
	statProfileWindow = 400_000
	// statCloneLen caps the timed synthetic clone. Long clones matter:
	// the clone starts from near-cold structures, and a short clone's
	// transient dominates its mean CPI (100k was nearly 2x too
	// pessimistic on warm long-running benchmarks; 400k still carried
	// enough transient to put gcc 60% off a warm 1M-instruction run —
	// 800k halves that to ~30%).
	statCloneLen = 800_000
	// statWarmCloneLen sizes the clone's warmup twin. Deliberately much
	// shorter than the clone: the twin shares the clone's concentrated
	// synthetic working set, so a long warm pre-fills caches the real
	// stream would keep missing (a clone-length twin made mcf ~6x too
	// optimistic).
	statWarmCloneLen = 100_000
	// statSeedOffset separates the clone's seed space from the
	// workload's, so the clone never accidentally replays the generator.
	statSeedOffset = 0x57a7
)

func statisticalEngine() simrun.EngineDef {
	return simrun.EngineDef{
		Name:     "statistical",
		Tier:     func(*simrun.Scenario) simrun.Tier { return simrun.TierStatistical },
		Cost:     statisticalCost,
		Supports: singleProgram,
		Run:      statisticalRun,
	}
}

// statisticalCost is budget-independent: profile window plus clone,
// both fixed.
func statisticalCost(s *simrun.Scenario) float64 {
	return float64(statProfileWarm + statProfileWindow + statCloneLen + statWarmCloneLen)
}

// statisticalRun is statistical simulation end to end: profile, clone,
// time the clone under the scenario's own core model and machine, and
// extrapolate the clone's IPC to the scenario's full budget.
func statisticalRun(ctx context.Context, s *simrun.Scenario) (simrun.Result, error) {
	start := time.Now()
	budget := s.InstBudget()

	// Profile a fixed window of the real stream (thread 0 of 1, the
	// scenario's own seed), warmed so locality is steady-state. The
	// window is NOT scaled down to small budgets: an underfed profile
	// misrepresents locality badly (several-fold IPC error), and the
	// fixed window is what makes the cost budget-independent anyway.
	// When the stream can skip (format v3) and the measured span is
	// longer than the window, the window is stratified across the span:
	// four slices at even offsets through [warmup, warmup+budget), so a
	// phase-heterogeneous stream contributes every phase the estimate
	// stands in for — a contiguous prefix window systematically
	// over-weights the early phases. Cost is unchanged (the same
	// instructions are profiled; skips are O(1)).
	prof := statsim.CollectWarm(profileStream(s, budget), statProfileWarm, statProfileWindow)
	if prof.Total == 0 {
		return simrun.Result{}, fmt.Errorf("engine: statistical: empty profile for %q", s.Name())
	}

	// Deterministic for (profile, length, seed): the clone and its
	// warmup twin are pure functions of the scenario.
	seed := s.SeedValue() + statSeedOffset
	clone := statsim.NewClone(prof, statCloneLen, seed)
	warmTwin := statsim.NewClone(prof, statWarmCloneLen, seed+1)

	machine, err := s.ResolvedMachine()
	if err != nil {
		return simrun.Result{}, err
	}
	sub, err := simrun.New("",
		simrun.Streams([]trace.Stream{clone}, []trace.Stream{warmTwin}),
		simrun.Model(s.ModelName()),
		simrun.Machine(machine),
		simrun.Warmup(statWarmCloneLen),
		simrun.Label(s.Name()+" (statistical clone)"),
	)
	if err != nil {
		return simrun.Result{}, err
	}
	res, err := sub.Run(ctx)
	if err != nil {
		return res, err
	}
	if res.Cycles <= 0 || res.TotalRetired == 0 {
		return simrun.Result{}, fmt.Errorf("engine: statistical: clone of %q timed nothing", s.Name())
	}

	// Extrapolate: the clone's IPC stands in for the whole budget's.
	ipc := float64(res.TotalRetired) / float64(res.Cycles)
	cycles := int64(float64(budget)/ipc + 0.5)
	return simrun.Result{Result: multicore.Result{
		Model:        res.Model,
		ModelName:    res.ModelName,
		Cycles:       cycles,
		Cores:        []multicore.CoreResult{{Retired: uint64(budget), Finish: cycles, IPC: ipc}},
		TotalRetired: uint64(budget),
		Wall:         time.Since(start),
	}}, nil
}

// statStrata is the stratified-profiling slice count: the profile
// window is split into this many equal slices spread evenly across the
// scenario's measured span.
const statStrata = 4

// profileStream positions the profiler over the scenario's measured
// region. Skippable streams with a span longer than the profile window
// yield statProfileWarm warmup instructions ending at the span start,
// then statStrata slices at even offsets through the span; anything
// else (non-skippable streams, short spans) degrades to the plain
// sequential stream.
func profileStream(s *simrun.Scenario, budget int) trace.Stream {
	g := workload.New(s.Profile(), 0, 1, s.SeedValue())
	if !g.Skippable() || budget <= statProfileWindow {
		return g
	}
	wstart := uint64(s.WarmupBudget())
	warm := uint64(statProfileWarm)
	if warm > wstart {
		warm = wstart
	}
	if err := g.SkipTo(wstart - warm); err != nil {
		return workload.New(s.Profile(), 0, 1, s.SeedValue())
	}
	per := uint64(statProfileWindow / statStrata)
	stride := uint64(budget) / statStrata
	st := &stratified{g: g, next: warm + per}
	for i := uint64(1); i < statStrata; i++ {
		st.starts = append(st.starts, wstart+i*stride)
	}
	st.per = per
	return st
}

// stratified yields its generator's stream until the current slice is
// exhausted, then skips the generator to the next stratum start. The
// initial warmup run-in is folded into the first slice's budget by the
// constructor.
type stratified struct {
	g      *workload.Generator
	starts []uint64 // remaining stratum start positions
	per    uint64   // instructions per stratum
	next   uint64   // instructions to yield before the next skip
	taken  uint64
}

func (s *stratified) Next() (isa.Inst, bool) {
	if s.taken == s.next {
		if len(s.starts) == 0 {
			return isa.Inst{}, false
		}
		if err := s.g.SkipTo(s.starts[0]); err != nil {
			return isa.Inst{}, false
		}
		s.starts = s.starts[1:]
		s.next += s.per
	}
	in, ok := s.g.Next()
	if ok {
		s.taken++
	}
	return in, ok
}
