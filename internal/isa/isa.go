// Package isa defines the micro-ISA shared by the functional workload
// generator and both timing simulators (the detailed out-of-order core and
// the interval model).
//
// The ISA is deliberately small: interval simulation (and the detailed
// baseline it is compared against) only reacts to the *dynamic* properties
// of an instruction stream — instruction class, register dependences,
// effective addresses and branch outcomes — not to opcode semantics. A
// dynamic instruction therefore carries exactly those fields and nothing
// else.
package isa

import "fmt"

// Class identifies the execution class of a dynamic instruction. The class
// determines which functional unit executes it, its execution latency, and
// how the timing models treat it (miss-event source or plain work).
type Class uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// IntMul is an integer multiply.
	IntMul
	// IntDiv is a long-latency integer divide.
	IntDiv
	// FPOp is a floating-point operation.
	FPOp
	// Load reads memory at Addr.
	Load
	// Store writes memory at Addr.
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch
	// Call is a branch that pushes a return address (exercises the RAS).
	Call
	// Return is a branch that pops a return address (exercises the RAS).
	Return
	// Serializing drains the pipeline before executing (e.g. memory
	// barriers, system instructions). Full-system code is rich in these.
	Serializing
	// BarrierArrive is an inter-thread barrier arrival. The multi-core
	// driver blocks the thread until all participants arrive.
	BarrierArrive
	// LockAcquire acquires the lock identified by SyncID, blocking while
	// it is held by another thread.
	LockAcquire
	// LockRelease releases the lock identified by SyncID.
	LockRelease
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

// String returns a short mnemonic for the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case IntMul:
		return "mul"
	case IntDiv:
		return "div"
	case FPOp:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Call:
		return "call"
	case Return:
		return "return"
	case Serializing:
		return "serialize"
	case BarrierArrive:
		return "barrier"
	case LockAcquire:
		return "lock"
	case LockRelease:
		return "unlock"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsBranch reports whether the class is any control-transfer instruction.
func (c Class) IsBranch() bool {
	return c == Branch || c == Call || c == Return
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsSync reports whether the class is an inter-thread synchronization
// operation handled by the multi-core driver.
func (c Class) IsSync() bool {
	return c == BarrierArrive || c == LockAcquire || c == LockRelease
}

// Register-file geometry. Registers are identified by small integers;
// RegNone marks an absent operand.
const (
	// NumRegs is the number of architectural registers visible to the
	// dependence tracker (integer + floating point combined).
	NumRegs = 64
	// RegNone marks a missing source or destination operand.
	RegNone = 0xFF
)

// Inst is one dynamic instruction. Values are produced by the functional
// workload generator and consumed, unmodified, by every timing model.
type Inst struct {
	// Seq is the dynamic sequence number within the owning thread,
	// starting at zero.
	Seq uint64
	// PC is the (synthetic) program counter of the instruction.
	PC uint64
	// Class is the execution class.
	Class Class
	// Src1 and Src2 are source register ids, or RegNone.
	Src1, Src2 uint8
	// Dst is the destination register id, or RegNone.
	Dst uint8
	// Addr is the effective virtual address for Load/Store.
	Addr uint64
	// Taken is the architectural outcome for branches.
	Taken bool
	// Target is the architectural branch target for taken branches.
	Target uint64
	// SyncID identifies the barrier or lock for synchronization classes.
	SyncID uint16
}

// HasDst reports whether the instruction writes a register.
func (in *Inst) HasDst() bool { return in.Dst != RegNone }

// Reads reports whether the instruction reads register r.
func (in *Inst) Reads(r uint8) bool {
	return r != RegNone && (in.Src1 == r || in.Src2 == r)
}

// String renders the instruction for debugging.
func (in *Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("#%d %s pc=%#x addr=%#x dst=%d src=(%d,%d)",
			in.Seq, in.Class, in.PC, in.Addr, in.Dst, in.Src1, in.Src2)
	case in.Class.IsBranch():
		return fmt.Sprintf("#%d %s pc=%#x taken=%t target=%#x src=(%d,%d)",
			in.Seq, in.Class, in.PC, in.Taken, in.Target, in.Src1, in.Src2)
	case in.Class.IsSync():
		return fmt.Sprintf("#%d %s id=%d", in.Seq, in.Class, in.SyncID)
	default:
		return fmt.Sprintf("#%d %s pc=%#x dst=%d src=(%d,%d)",
			in.Seq, in.Class, in.PC, in.Dst, in.Src1, in.Src2)
	}
}
