// Multi-program study: co-schedule copies of a benchmark on a chip
// multiprocessor and measure system throughput (STP) and average
// normalized turnaround time (ANTT) as the paper's Figure 6 does —
// exposing shared-L2 and memory-bandwidth contention.
//
//	go run ./examples/multiprogram
package main

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/simrun"
)

func run(bench string, copies int) simrun.Result {
	res, err := simrun.MustNew(bench,
		simrun.Copies(copies),
		simrun.Insts(50_000),
		simrun.Warmup(600_000),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	fmt.Println("Homogeneous multi-program workloads (interval simulation):")
	fmt.Printf("%-8s %6s %8s %8s\n", "bench", "copies", "STP", "ANTT")
	for _, name := range []string{"gcc", "mcf", "art", "swim"} {
		alone := run(name, 1).Cores[0].IPC
		for _, copies := range []int{1, 2, 4, 8} {
			res := run(name, copies)
			multi := make([]float64, copies)
			base := make([]float64, copies)
			for i, c := range res.Cores {
				multi[i] = c.IPC
				base[i] = alone
			}
			fmt.Printf("%-8s %6d %8.2f %8.2f\n",
				name, copies, metrics.STP(base, multi), metrics.ANTT(base, multi))
		}
	}
	fmt.Println()
	fmt.Println("STP near the copy count means free scaling; mcf/art collapse under")
	fmt.Println("L2 thrashing while ANTT (per-program slowdown) blows up.")
}
