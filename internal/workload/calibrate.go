package workload

import (
	"sync"

	"repro/internal/isa"
)

// Static-program calibration. A profile's Mix prescribes the dynamic
// class fractions, but the realized branch fraction of a generated
// stream is an emergent property of the program roll: loop back edges
// re-execute whole block ranges, so dwell time compounds
// multiplicatively along loop chains and a single unlucky draw of
// (block length, trip count, back-edge target) can park the stream in
// a branch-poor or branch-rich corner of the CFG for most of a phase.
// Rather than accept whatever the first roll produces, the builder
// probes candidate realizations — deterministically salted re-rolls of
// the static seed — and keeps the one whose measured per-phase branch
// fractions stay closest to Mix.Branch. The salt depends only on the
// profile, never on the stream seed, so the calibrated program remains
// the benchmark's one true "binary" across seeds, threads and slots.

const (
	// calSalts bounds the search: every candidate is scored and the
	// best worst-phase deviation wins. Sixteen rolls put the winning
	// realization's residual deviation well under the degenerate-dwell
	// regime for every shipped profile.
	calSalts = 16

	// calPhases × calPerPhase is the probe length. Dwell luck is
	// per-phase (each phase anchors a different function), so the probe
	// scores each phase separately instead of one long prefix.
	calPhases   = 8
	calPerPhase = 4096

	// calSeed is the fixed probe seed: the chosen salt must be a
	// function of the profile alone, so the probe never uses the
	// caller's stream seed.
	calSeed = 0x5ca1ab1e
)

// pinnedSalts records the calibrated salt of every shipped profile,
// derived offline by cmd/streamcal: that tool scores candidates with
// the full interval timing model — per-phase branch fraction against
// Mix.Branch AND per-phase IPC against the stream's cross-phase median
// — a richer typicality criterion than the in-package probe below can
// compute (the workload package cannot depend on the simulator). The
// table is part of the v3 stream format: changing a salt changes that
// profile's byte stream and requires a StreamVersion bump.
var pinnedSalts = map[string]uint64{
	"ammp":          4,
	"applu":         0,
	"apsi":          8,
	"art":           0,
	"blackscholes":  14,
	"bodytrack":     5,
	"bzip2":         10,
	"canneal":       2,
	"crafty":        15,
	"dedup":         9,
	"eon":           9,
	"equake":        15,
	"facerec":       5,
	"fluidanimate":  13,
	"fma3d":         11,
	"galgel":        14,
	"gap":           12,
	"gcc":           2,
	"gzip":          15,
	"lucas":         9,
	"mcf":           1,
	"mesa":          0,
	"mgrid":         14,
	"parser":        14,
	"perlbmk":       1,
	"sixtrack":      14,
	"streamcluster": 12,
	"swaptions":     5,
	"swim":          10,
	"twolf":         5,
	"vips":          3,
	"vortex":        7,
	"vpr":           0,
	"wupwise":       2,
	"x264":          10,
}

// saltCache memoizes the calibrated salt per profile name: the search
// is deterministic, so the first caller computes what every later
// NewSlot reuses.
var saltCache sync.Map // map[string]uint64

// programSalt returns the calibrated static-program salt for the
// profile.
func programSalt(p *Profile) uint64 {
	if s, ok := pinnedSalts[p.Name]; ok {
		return s
	}
	if p.Mix.Branch <= 0 {
		return 0
	}
	if v, ok := saltCache.Load(p.Name); ok {
		return v.(uint64)
	}
	best, bestDev := uint64(0), -1.0
	for salt := uint64(0); salt < calSalts; salt++ {
		dev := probeWorstDev(p, salt)
		if bestDev < 0 || dev < bestDev {
			best, bestDev = salt, dev
		}
	}
	saltCache.Store(p.Name, best)
	return best
}

// probeWorstDev measures one candidate program realization and returns
// the worst per-phase relative deviation of the branch-class fraction
// from Mix.Branch. Skippable streams sample calPhases distinct phases
// (SkipTo to a chunk boundary is O(1)); streams with synchronization
// state probe sequential segments of the same total length instead.
func probeWorstDev(p *Profile, salt uint64) float64 {
	g := newSlotSalted(p, 0, 1, calSeed, 0, salt)
	frac := func(n int) (float64, bool) {
		var branches, total uint64
		for i := 0; i < n; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			total++
			if in.Class == isa.Branch {
				branches++
			}
		}
		if total == 0 {
			return 0, false
		}
		return float64(branches) / float64(total), true
	}
	skippable := g.Skippable()
	worst := 0.0
	for ph := uint64(0); ph < calPhases; ph++ {
		if skippable {
			if err := g.SkipTo(ph * phaseChunks * ChunkLen); err != nil {
				break
			}
		}
		f, ok := frac(calPerPhase)
		if !ok {
			break
		}
		dev := f/p.Mix.Branch - 1
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// NewCandidate instantiates one candidate program realization for the
// offline calibration tool (cmd/streamcal): thread 0 of 1, slot 0,
// with an explicit salt in place of the pinned one. It exists only so
// the tool can score candidates with the timing model; streams of
// different salts are different binaries and must never be mixed in a
// simulation.
func NewCandidate(p *Profile, seed int64, salt uint64) *Generator {
	return newSlotSalted(p, 0, 1, seed, 0, salt)
}
