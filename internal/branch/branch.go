// Package branch implements the front-end branch prediction structures of
// Table 1: a 12Kbit local-history direction predictor, an 8-way
// set-associative 2K-entry branch target buffer and a 32-entry return
// address stack. Alternative direction predictors (gshare, bimodal,
// perfect) are provided for ablation studies.
//
// Both timing models call Predict once per dynamic branch with the
// architectural outcome; the predictor updates its tables and reports
// whether it would have predicted the branch correctly. Interval simulation
// needs exactly this boolean (a misprediction is a miss event); the
// detailed baseline additionally uses it to redirect its front end.
package branch

// DirectionPredictor predicts conditional branch directions.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc and
	// then trains the predictor with the architectural outcome taken.
	Predict(pc uint64, taken bool) bool
	// Reset restores the power-on state.
	Reset()
}

// Local is the paper's local-history two-level predictor: a table of
// per-branch history registers indexing a shared pattern history table of
// 2-bit saturating counters. With 1K entries of 12-bit history the history
// table holds 12Kbit of state.
type Local struct {
	histories []uint16
	pht       []uint8
	histBits  int
}

// NewLocal creates a local predictor with the given geometry.
func NewLocal(historyEntries, historyBits, phtEntries int) *Local {
	if historyEntries&(historyEntries-1) != 0 || phtEntries&(phtEntries-1) != 0 {
		panic("branch: local predictor tables must be powers of two")
	}
	l := &Local{
		histories: make([]uint16, historyEntries),
		pht:       make([]uint8, phtEntries),
		histBits:  historyBits,
	}
	l.Reset()
	return l
}

// Predict implements DirectionPredictor.
func (l *Local) Predict(pc uint64, taken bool) bool {
	hidx := (pc >> 2) & uint64(len(l.histories)-1)
	hist := l.histories[hidx]
	pidx := uint64(hist) & uint64(len(l.pht)-1)
	ctr := &l.pht[pidx]
	pred := *ctr >= 2
	if taken {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
	hist = hist<<1 | b2u16(taken)
	l.histories[hidx] = hist & (1<<uint(l.histBits) - 1)
	return pred
}

// Reset implements DirectionPredictor.
func (l *Local) Reset() {
	for i := range l.histories {
		l.histories[i] = 0
	}
	for i := range l.pht {
		l.pht[i] = 2 // weakly taken
	}
}

// GShare is a global-history predictor XOR-indexing a counter table.
type GShare struct {
	pht      []uint8
	history  uint64
	histBits int
}

// NewGShare creates a gshare predictor with the given table size and
// history length.
func NewGShare(phtEntries, historyBits int) *GShare {
	if phtEntries&(phtEntries-1) != 0 {
		panic("branch: gshare table must be a power of two")
	}
	g := &GShare{pht: make([]uint8, phtEntries), histBits: historyBits}
	g.Reset()
	return g
}

// Predict implements DirectionPredictor.
func (g *GShare) Predict(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ g.history) & uint64(len(g.pht)-1)
	ctr := &g.pht[idx]
	pred := *ctr >= 2
	if taken {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
	g.history = (g.history<<1 | uint64(b2u16(taken))) & (1<<uint(g.histBits) - 1)
	return pred
}

// Reset implements DirectionPredictor.
func (g *GShare) Reset() {
	for i := range g.pht {
		g.pht[i] = 2
	}
	g.history = 0
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	pht []uint8
}

// NewBimodal creates a bimodal predictor with the given table size.
func NewBimodal(entries int) *Bimodal {
	if entries&(entries-1) != 0 {
		panic("branch: bimodal table must be a power of two")
	}
	b := &Bimodal{pht: make([]uint8, entries)}
	b.Reset()
	return b
}

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64, taken bool) bool {
	idx := (pc >> 2) & uint64(len(b.pht)-1)
	ctr := &b.pht[idx]
	pred := *ctr >= 2
	if taken {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
	return pred
}

// Reset implements DirectionPredictor.
func (b *Bimodal) Reset() {
	for i := range b.pht {
		b.pht[i] = 2
	}
}

// Perfect always predicts correctly (used by the Figure 4 step-by-step
// accuracy experiments).
type Perfect struct{}

// Predict implements DirectionPredictor.
func (Perfect) Predict(pc uint64, taken bool) bool { return taken }

// Reset implements DirectionPredictor.
func (Perfect) Reset() {}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// Tournament is a chooser-based hybrid: a bimodal predictor and a gshare
// predictor run side by side, and a table of 2-bit chooser counters indexed
// by PC selects which one to trust (the Alpha 21264 style). Used in
// predictor ablation studies.
type Tournament struct {
	bimodal *Bimodal
	gshare  *GShare
	choose  []uint8 // 0-1: prefer bimodal, 2-3: prefer gshare
}

// NewTournament creates a tournament predictor; each component table has
// the given entry count.
func NewTournament(entries, historyBits int) *Tournament {
	if entries&(entries-1) != 0 {
		panic("branch: tournament tables must be powers of two")
	}
	t := &Tournament{
		bimodal: NewBimodal(entries),
		gshare:  NewGShare(entries, historyBits),
		choose:  make([]uint8, entries),
	}
	t.Reset()
	return t
}

// Predict implements DirectionPredictor.
func (t *Tournament) Predict(pc uint64, taken bool) bool {
	idx := (pc >> 2) & uint64(len(t.choose)-1)
	pb := t.bimodal.Predict(pc, taken)
	pg := t.gshare.Predict(pc, taken)
	pred := pb
	if t.choose[idx] >= 2 {
		pred = pg
	}
	// Train the chooser toward the component that was right when they
	// disagreed.
	if pb != pg {
		if pg == taken {
			if t.choose[idx] < 3 {
				t.choose[idx]++
			}
		} else if t.choose[idx] > 0 {
			t.choose[idx]--
		}
	}
	return pred
}

// Reset implements DirectionPredictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.choose {
		t.choose[i] = 1 // weakly prefer bimodal
	}
}
