package core

// Options selects ablation variants of the interval model. The zero value
// is the full model as validated in DESIGN.md §6; each flag disables one
// refinement, either reverting to the paper's literal pseudocode or
// removing a mechanism entirely. The ablation benchmarks measure how much
// accuracy each refinement buys.
type Options struct {
	// NoROBFillHiding charges every long-latency load the full miss
	// latency (the paper's literal approximation), instead of
	// subtracting the dispatch headroom the reorder buffer provides
	// while the miss is outstanding.
	NoROBFillHiding bool
	// FlushOldWindow empties the old window at every miss event (the
	// paper's literal "empty_old_window()"), instead of shifting the
	// tracked dataflow into the past. Flushing loses loop-carried
	// recurrence chains, which makes the post-event dispatch-rate
	// estimate optimistic.
	FlushOldWindow bool
	// NoOverlapScan disables the second-order overlap scan entirely:
	// no miss events are hidden underneath long-latency loads (the
	// first-order model of the prior work the paper extends).
	NoOverlapScan bool
	// NoTaint treats every scanned instruction as independent of the
	// long-latency load at the window head: dependent long-latency
	// loads no longer serialize, and dependent mispredicted branches no
	// longer end the scan.
	NoTaint bool
	// NoDispatchFloor computes the branch resolution time on the pure
	// dataflow track (chain depth since the last miss event), without
	// lower-bounding producer issue times by their dispatch times.
	NoDispatchFloor bool
	// WrongPathFetch models the I-side traffic of wrong-path execution:
	// while a mispredicted branch resolves, the front end fetches
	// sequentially down the wrong path, polluting (and sometimes
	// prefetching into) the L1I and consuming fabric/DRAM bandwidth.
	// Functional-first simulation — this implementation and the paper's
	// — normally omits wrong paths entirely (the stated limitation that
	// motivates the paper's timing-directed future work); this switch
	// estimates how much that omission matters.
	WrongPathFetch bool
}

// Name returns a short identifier for the enabled ablations ("full" for
// the zero value), for benchmark and report labels.
func (o Options) Name() string {
	s := ""
	add := func(on bool, tag string) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += tag
	}
	add(o.NoROBFillHiding, "no-robfill")
	add(o.FlushOldWindow, "flush-oldwin")
	add(o.NoOverlapScan, "no-overlap")
	add(o.NoTaint, "no-taint")
	add(o.NoDispatchFloor, "no-floor")
	add(o.WrongPathFetch, "wrong-path")
	if s == "" {
		return "full"
	}
	return s
}
