package workload

import (
	"fmt"
	"hash/fnv"

	"repro/internal/isa"
)

// Static-program machinery: a Profile expands into a synthetic control-flow
// graph (functions of basic blocks with loop/biased/random branch sites and
// call edges). The generator then *interprets* this CFG, so instruction PCs
// repeat exactly the way real code repeats — hot loops touch few I-cache
// lines and train the branch predictor, cold paths do not.

type siteKind uint8

const (
	siteLoop siteKind = iota
	siteBiased
	siteRandom
)

type branchSite struct {
	kind   siteKind
	trip   int    // loop trip count
	cut    uint64 // taken threshold (probCut) for biased/random sites
	target int    // taken-target block index within the function
	count  int    // dynamic state: iterations since last exit
}

type block struct {
	startPC uint64
	bodyLen int // instructions before the terminator
	// Terminator: term==termCall jumps to callee; term==termRet pops;
	// term==termBranch consults the site.
	term   uint8
	site   int // index into function's sites for termBranch
	callee int // function index for termCall
}

const (
	termBranch = iota
	termCall
	termRet
)

type function struct {
	blocks []block
	sites  []branchSite
	entry  uint64 // entry PC
}

type program struct {
	funcs    []function
	codeSize uint64
}

// buildProgram synthesizes the static CFG for a profile. base is the code
// base address; kernel programs live at a distant base so user and system
// code do not share I-cache lines. blen and trip are the profile's
// tabulated block-length and loop-trip samplers (v3: alias tables replace
// the inverse-transform math.Log draws).
func buildProgram(p *Profile, rng *fastRand, blen, trip *aliasGeom, base uint64, funcs, blocksPerFunc int) *program {
	prog := &program{}
	pc := base
	for f := 0; f < funcs; f++ {
		var fn function
		for b := 0; b < blocksPerFunc; b++ {
			bl := block{startPC: pc}
			bl.bodyLen = 1 + blen.sample(rng)
			pc += uint64(bl.bodyLen+1) * 4

			switch {
			case b == blocksPerFunc-1:
				bl.term = termRet
			case funcs > 1 && rng.Float64() < callFrac(p):
				bl.term = termCall
				bl.callee = rng.Intn(funcs)
			default:
				bl.term = termBranch
				bl.site = len(fn.sites)
				fn.sites = append(fn.sites, makeSite(p, rng, trip, b, blocksPerFunc))
			}
			fn.blocks = append(fn.blocks, bl)
		}
		fn.entry = fn.blocks[0].startPC
		prog.funcs = append(prog.funcs, fn)
	}
	prog.codeSize = pc - base
	return prog
}

// callFrac converts the profile's call mix into a per-block probability.
func callFrac(p *Profile) float64 {
	if p.Mix.Branch <= 0 {
		return 0
	}
	return p.Mix.Call
}

func makeSite(p *Profile, rng *fastRand, trip *aliasGeom, blockIdx, nBlocks int) branchSite {
	r := rng.Float64()
	switch {
	case r < p.LoopFrac && blockIdx > 0:
		t := 2 + trip.sample(rng)
		// Back edge to a nearby earlier block.
		back := blockIdx - 1 - rng.Intn(min(blockIdx, 4))
		return branchSite{kind: siteLoop, trip: t, target: back}
	case r < p.LoopFrac+p.BiasedFrac:
		return branchSite{kind: siteBiased, cut: probCut(p.BiasedProb), target: fwdTarget(rng, blockIdx, nBlocks)}
	default:
		return branchSite{kind: siteRandom, cut: probCut(p.RandomProb), target: fwdTarget(rng, blockIdx, nBlocks)}
	}
}

func fwdTarget(rng *fastRand, blockIdx, nBlocks int) int {
	if blockIdx+2 >= nBlocks {
		return nBlocks - 1
	}
	return blockIdx + 1 + rng.Intn(nBlocks-blockIdx-1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// staticSeed derives the static-program seed from the profile name, so the
// synthetic "binary" is a property of the benchmark alone.
func staticSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// fastRand is a sequential splitmix64 PRNG. Since v3 it drives only the
// off-hot-path draws that never need jump-ahead: static program
// construction (a property of the profile name) and the synchronization
// schedule of multi-threaded profiles (which pins those streams to
// sequential generation anyway — see Skippable). The dynamic
// per-instruction draws use the counter-based ctrRand.
type fastRand struct{ s uint64 }

func newFastRand(seed int64) *fastRand { return &fastRand{s: uint64(seed)} }

func (r *fastRand) next() uint64 {
	r.s += splitmixGamma
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *fastRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *fastRand) Intn(n int) int { return int(r.next() % uint64(n)) }

// frame is one call-stack entry of the interpreter.
type frame struct {
	fn    int
	block int
}

// regionState is the per-generator dynamic state of one working-set region.
type regionState struct {
	base   uint64
	cursor uint64
}

// StreamVersion is the stream-format generation this package produces.
// It changes only on a deliberate break of the bit-identical-stream
// guarantee (v2: multi-program copies at disjoint address-space slots;
// v3: counter-based RNG with chunked O(1) skip-ahead and tabulated
// geometric draws — every stream renumbered). Consumers that persist
// streams or stream-derived results (the trace file header, the simrun
// scenario fingerprint) record it so artifacts of one generation are
// never mixed with another's; the break/bump procedure is documented in
// docs/formats.md.
const StreamVersion = 3

// ChunkLen is the v3 skip-ahead chunk length: every ChunkLen stream
// positions the generator's dynamic interpreter state (control flow,
// dataflow ring, region cursors) resets to a value derived purely from
// the chunk index, so SkipTo reaches any position by deriving the
// enclosing chunk's state in O(1) and replaying at most ChunkLen-1
// instructions. The resets are part of the v3 stream itself — skipping
// and straight generation produce byte-identical instructions.
const ChunkLen = 131072

// SlotStride is the address-space distance between two slots: slot k's
// code and data live exactly k*SlotStride above slot 0's. It is a power
// of two far above every cache's and TLB's index bits (so per-copy hit
// behaviour is slot-invariant) and far above the per-thread private-
// region offsets (threads scale to 1<<12 within a slot before two slots
// could touch), giving MaxSlots fully disjoint slots in the 64-bit space.
const SlotStride uint64 = 1 << 56

// MaxSlots is the number of disjoint address-space slots (2^64 /
// SlotStride). NewSlot rejects slots beyond it: slot k and slot
// k-MaxSlots would silently alias, breaking the no-cross-copy-sharing
// guarantee the slots exist for.
const MaxSlots = 256

// Generator interprets a profile's synthetic program and produces the
// dynamic instruction stream of one thread. It implements trace.Stream and
// is fully deterministic given (profile, thread, threads, seed, slot).
type Generator struct {
	p        *Profile
	rng      ctrRand   // counter-based: dynamic per-instruction draws
	syncRng  *fastRand // sequential: synchronization schedule only
	phaseKey uint64    // static per-profile key for phase-anchor draws
	user     *program
	kernel   *program
	thread   int
	threads  int
	slotBase uint64 // slot * SlotStride, added to every code/data base

	// Tabulated samplers and integer draw thresholds, precomputed so the
	// per-instruction path is table probes and compares (v3: no float
	// conversions, no math.Log).
	depDist    *aliasGeom // register dependence distances
	kernSeg    *aliasGeom // kernel segment lengths
	critLen    *aliasGeom // critical-section lengths (syncRng-driven)
	chainCut   uint64
	kernCut    uint64
	chaseCut   uint64
	cutLoad    uint64
	cutStore   uint64
	cutMul     uint64
	cutDiv     uint64
	cutFP      uint64
	regionCut  []uint64
	chunkStep  []uint64 // expected cursor advance per chunk, stride units
	writeCut   []uint64
	chainClass isa.Class

	// Interpreter state.
	inKernel  bool
	kernLeft  int
	cur       frame
	kcur      frame
	pos       int // next body instruction index within current block
	callStack []frame
	kstack    []frame
	nextReset uint64 // stream position of the next chunk-state reset

	// Register dataflow state. Values are iteration-local: the ring is
	// cleared on loop back-edges, and a designated accumulator register
	// carries the serial loop-carried chain, mirroring the structure of
	// real loop code (independent iterations plus accumulators).
	seq      uint64
	ring     [32]uint8 // recently written registers
	ringLen  int
	ringHead int
	nextDst  uint8
	lastLoad uint8 // dst register of the most recent load, RegNone if none

	// Memory state.
	regions    []regionState
	lastRegion int

	// Serializing/system bookkeeping.
	untilSerialize int

	// Multi-threading bookkeeping.
	budget        uint64 // remaining instructions; ^0 = unbounded
	initialBudget uint64
	sinceBarrier  uint64
	barrierAt     uint64 // emit a barrier when sinceBarrier reaches this
	untilLock     int
	critLeft      int // >0 while inside a critical section
	heldLock      uint16
	pendingSync   []isa.Inst

	// Statistics for tests.
	Emitted uint64
}

// New creates the stream generator for one thread of a profile. threads is
// the total thread count of the run (1 for single-threaded benchmarks);
// seed selects the deterministic instance. The stream lives in slot 0 of
// the address space; multi-program workloads that need disjoint copies
// use NewSlot.
func New(p *Profile, thread, threads int, seed int64) *Generator {
	return NewSlot(p, thread, threads, seed, 0)
}

// NewSlot is New with the stream instantiated at an address-space slot:
// every code and data base is offset by slot*SlotStride, and nothing
// else changes — the slot never enters a random draw, so the slot-k
// stream is bit-identical to the slot-0 stream with the constant offset
// added to PC, Target and Addr. Heterogeneous multi-program (Mix)
// workloads give each copy its own slot, so copies of different programs
// never alias cache lines in the shared hierarchy (no phantom coherence
// traffic) and the host-parallel engine can run them concurrently.
func NewSlot(p *Profile, thread, threads int, seed int64, slot int) *Generator {
	return newSlotSalted(p, thread, threads, seed, slot, programSalt(p))
}

// newSlotSalted is NewSlot with an explicit static-program salt —
// the constructor the calibration probe uses to evaluate candidate
// program realizations without recursing through programSalt.
func newSlotSalted(p *Profile, thread, threads int, seed int64, slot int, salt uint64) *Generator {
	if slot < 0 || slot >= MaxSlots {
		panic(fmt.Sprintf("workload: slot %d out of range [0,%d) — slots beyond the range would alias address spaces", slot, MaxSlots))
	}
	if len(p.Regions) > 48 {
		panic(fmt.Sprintf("workload: profile %q has %d regions, more than the chunk-reset draw budget covers", p.Name, len(p.Regions)))
	}
	// The static program (CFG, branch sites, code layout) must be
	// identical across threads AND across seeds: it is the benchmark's
	// binary. Only the dynamic randomness (addresses, branch draws)
	// varies with the seed, so a warmup stream with a different seed
	// trains the same predictor sites and touches the same regions
	// without replaying the exact future line sequence.
	progRng := newFastRand(staticSeed(p.Name) ^ int64(salt*splitmixGamma))
	slotBase := uint64(slot) * SlotStride
	blockLen := p.BlockLenMean
	if blockLen <= 0 {
		if p.Mix.Branch > 0 {
			blockLen = 1/p.Mix.Branch - 1
		} else {
			blockLen = 16
		}
	}
	key := uint64(seed ^ int64(thread)*0x5E3779B97F4A7C15)
	blen := newAliasGeom(blockLen, geomTableSize(blockLen), 8)
	trip := newAliasGeom(p.LoopTripMean, geomTableSize(p.LoopTripMean), 8)
	g := &Generator{
		p:        p,
		rng:      ctrRand{key: key},
		syncRng:  newFastRand(seed ^ int64(thread)*0x5E3779B97F4A7C15),
		phaseKey: uint64(staticSeed(p.Name)),
		user:     buildProgram(p, progRng, blen, trip, slotBase+0x400000, p.Funcs, p.BlocksPerFunc),
		thread:   thread,
		threads:  threads,
		slotBase: slotBase,
		nextDst:  8,
		budget:   ^uint64(0),
	}
	g.initialBudget = g.budget
	if p.DepDistMean > 1 {
		// 64 outcomes cover every consumer: distances at or beyond the
		// 32-entry dataflow ring resolve to an ambient register.
		g.depDist = newAliasGeom(p.DepDistMean, 64, 1)
	}
	m := &p.Mix
	nonBranch := m.IntALU + m.IntMul + m.IntDiv + m.FP + m.Load + m.Store
	if nonBranch > 0 {
		g.cutLoad = probCut(m.Load / nonBranch)
		g.cutStore = probCut((m.Load + m.Store) / nonBranch)
		g.cutMul = probCut((m.Load + m.Store + m.IntMul) / nonBranch)
		g.cutDiv = probCut((m.Load + m.Store + m.IntMul + m.IntDiv) / nonBranch)
		g.cutFP = probCut((m.Load + m.Store + m.IntMul + m.IntDiv + m.FP) / nonBranch)
	}
	g.chainCut = probCut(p.ChainFrac)
	g.chaseCut = probCut(p.PointerChase)
	g.chainClass = isa.IntALU
	if p.Mix.FP >= 0.25 {
		g.chainClass = isa.FPOp
	}
	g.lastLoad = isa.RegNone
	if p.SystemFrac > 0 {
		// Kernel code: one big function with many blocks, distant base.
		// An average segment of ~400 instructions gives an overall
		// in-kernel fraction of about SystemFrac.
		g.kernel = buildProgram(p, progRng, blen, trip, slotBase+0x80000000, 2, 192)
		g.kernCut = probCut(p.SystemFrac / 400)
		g.kernSeg = newAliasGeom(400, geomTableSize(400), 8)
	}
	if p.CritLen > 1 {
		g.critLen = newAliasGeom(p.CritLen, geomTableSize(p.CritLen), 8)
	}
	g.initRegions()
	g.initSync()
	g.untilSerialize = -1 // derived at the first chunk reset
	return g
}

func (g *Generator) initRegions() {
	var cum float64
	for i, r := range g.p.Regions {
		base := g.slotBase + uint64(0x10000000000) + uint64(i)<<34
		if !r.Shared {
			// Private regions are disjoint per thread.
			base += uint64(g.thread+1) << 44
		}
		// Cursors are dynamic state: the chunk-0 reset derives them
		// before the first instruction, so they start at zero here.
		g.regions = append(g.regions, regionState{base: base})
		cum += r.Prob
		g.regionCut = append(g.regionCut, 0)
		g.writeCut = append(g.writeCut, probCut(r.WriteFrac))
	}
	// Normalize into integer cut points, and precompute each strided
	// region's expected cursor advance per chunk (accesses per chunk in
	// stride units): memory fraction of the mix times the region's share
	// of accesses times the chunk length. resetChunk uses it to continue
	// the stride walk across chunk boundaries.
	memFrac := g.p.Mix.Load + g.p.Mix.Store
	g.chunkStep = make([]uint64, len(g.p.Regions))
	if cum > 0 {
		var acc float64
		for i, r := range g.p.Regions {
			acc += r.Prob
			g.regionCut[i] = probCut(acc / cum)
			if r.Stride > 0 && r.Bytes > 0 {
				g.chunkStep[i] = uint64(float64(ChunkLen) * memFrac * (r.Prob / cum))
			}
		}
	}
}

func (g *Generator) initSync() {
	p := g.p
	if p.TotalWork > 0 && g.threads > 0 {
		g.budget = g.shareOfWork()
		g.initialBudget = g.budget
	}
	if p.BarrierEvery > 0 {
		g.barrierAt = g.scaledBarrierInterval()
	}
	if p.LockEvery > 0 && p.Locks > 0 {
		g.untilLock = p.LockEvery/2 + g.syncRng.Intn(p.LockEvery)
	}
}

// weights returns the per-thread relative work weights. With SerialFrac
// set, thread 0 is a pipeline source stage holding a fixed fraction of the
// total work; otherwise an Imbalance gradient skews the split.
func (g *Generator) weights() []float64 {
	w := make([]float64, g.threads)
	T := g.threads
	if T > 1 && g.p.SerialFrac > 0 {
		w[0] = g.p.SerialFrac
		for t := 1; t < T; t++ {
			w[t] = (1 - g.p.SerialFrac) / float64(T-1)
		}
		return w
	}
	for t := 0; t < T; t++ {
		w[t] = 1
		if T > 1 && g.p.Imbalance > 0 {
			w[t] = 1 + g.p.Imbalance*float64(t)/float64(T-1)
		}
	}
	return w
}

// shareOfWork splits TotalWork among threads by weight, so the most loaded
// thread limits scaling.
func (g *Generator) shareOfWork() uint64 {
	w := g.weights()
	var sum float64
	for _, f := range w {
		sum += f
	}
	return uint64(float64(g.p.TotalWork) * w[g.thread] / sum)
}

// scaledBarrierInterval keeps the number of barriers equal across threads
// despite imbalance, so barrier generations line up: each thread's
// interval is proportional to its work weight.
func (g *Generator) scaledBarrierInterval() uint64 {
	w := g.weights()
	var sum float64
	for _, f := range w {
		sum += f
	}
	avg := sum / float64(g.threads)
	iv := uint64(float64(g.p.BarrierEvery) * w[g.thread] / avg)
	if iv == 0 {
		iv = 1
	}
	return iv
}

// serializePeriod derives the distance to the next serializing
// instruction from the current instruction's draw budget.
func (g *Generator) serializePeriod() int {
	period := g.p.SerializeEvery
	if g.inKernel {
		period = 50 // system code serializes often
	}
	if period <= 0 {
		return -1
	}
	return period/2 + g.rng.Intn(period+1)
}

// Skippable reports whether the stream supports O(1) SkipTo. Streams
// with synchronization structure (barriers, locks) carry sequential
// schedule state that no chunk reset covers, so they fall back to
// generate-and-discard skipping.
func (g *Generator) Skippable() bool {
	p := g.p
	return p.BarrierEvery <= 0 && !(p.LockEvery > 0 && p.Locks > 0)
}

// SkipTo positions the stream at position n: the next instruction
// returned by Next carries Seq n, and the stream from here on is
// byte-identical to generating n instructions from a fresh generator
// and discarding them — the core v3 contract, fuzz-tested in
// FuzzSkipAhead. For Skippable streams the cost is O(1): the enclosing
// chunk's state is derived directly from the chunk index and at most
// ChunkLen-1 instructions are replayed, independent of n. Streams with
// synchronization structure fall back to sequential generate-and-
// discard and reject backward skips.
func (g *Generator) SkipTo(n uint64) error {
	if !g.Skippable() {
		if n < g.seq {
			return fmt.Errorf("workload: SkipTo(%d) backward from %d: stream %q has synchronization state and only skips forward", n, g.seq, g.p.Name)
		}
		for g.seq < n {
			if _, ok := g.Next(); !ok {
				break
			}
		}
		return nil
	}
	chunk := n / ChunkLen
	g.resetChunk(chunk)
	g.seq = chunk * ChunkLen
	g.Emitted = g.seq
	g.budget = g.initialBudget
	if g.initialBudget != ^uint64(0) {
		if g.seq >= g.initialBudget {
			g.budget = 0
		} else {
			g.budget = g.initialBudget - g.seq
		}
	}
	for g.seq < n {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	return nil
}

// resetChunk derives the generator's dynamic interpreter state for the
// start of the given chunk, purely from the chunk index (reset-lane
// draws). It deliberately leaves the synchronization bookkeeping
// (budget, barrier/lock schedule) untouched: that state is sequential,
// and profiles that use it are not Skippable.
func (g *Generator) resetChunk(chunk uint64) {
	g.nextReset = (chunk + 1) * ChunkLen
	base := resetLane + chunk*resetStride

	// Control flow: restart interpretation at a phase-anchored function.
	// The anchor is drawn per phase (phaseChunks consecutive chunks), not
	// per chunk: a per-chunk draw would rerandomize the code signature
	// every ChunkLen instructions, destroying the phase stability that
	// code-signature analyses (SimPoint clustering) depend on. And it is
	// drawn from the static per-profile key, not the stream seed: the
	// phase sequence is a property of the benchmark binary, so streams
	// with different seeds (a warmup stream, say) visit the same code
	// regions. A phase is still a pure function of the chunk index, so
	// skip-ahead is intact.
	phase := chunk / phaseChunks
	g.cur = frame{fn: int(ctrDraw(g.phaseKey, phaseLane+phase) % uint64(len(g.user.funcs)))}
	g.pos = 0
	g.callStack = g.callStack[:0]
	g.inKernel = false
	g.kernLeft = 0
	g.kcur = frame{}
	g.kstack = g.kstack[:0]
	clearSiteCounts(g.user)
	if g.kernel != nil {
		clearSiteCounts(g.kernel)
	}

	// Dataflow.
	g.ringLen, g.ringHead = 0, 0
	g.nextDst = 8
	g.lastLoad = isa.RegNone

	// Memory: streaming cursors continue, not restart. Each chunk's
	// cursor is the stream's per-region start offset advanced by the
	// expected number of accesses all previous chunks made (chunkStep,
	// in stride units) — a pure function of the chunk index that tracks
	// where a sequential walk would actually be, so a reset does not
	// inject a burst of cold misses the way a rerandomized cursor would
	// (the detailed core serializes those misses; the interval model
	// does not, and the fidelity gap shows up in miss-bound profiles).
	g.lastRegion = 0
	for i := range g.regions {
		spec := &g.p.Regions[i]
		g.regions[i].cursor = 0
		if spec.Stride > 0 && spec.Bytes > 0 {
			slots := spec.Bytes / spec.Stride
			if slots == 0 {
				slots = 1
			}
			start := ctrDraw(g.rng.key, cursorLane+uint64(i)) % slots
			g.regions[i].cursor = ((start + chunk*g.chunkStep[i]) % slots) * spec.Stride
		}
	}

	// Serialization phase.
	if period := g.p.SerializeEvery; period > 0 {
		g.untilSerialize = period/2 + int(ctrDraw(g.rng.key, base+1)%uint64(period+1))
	} else {
		g.untilSerialize = -1
	}
}

func clearSiteCounts(prog *program) {
	for f := range prog.funcs {
		sites := prog.funcs[f].sites
		for i := range sites {
			sites[i].count = 0
		}
	}
}

// Next implements trace.Stream.
func (g *Generator) Next() (isa.Inst, bool) {
	if len(g.pendingSync) > 0 {
		in := g.pendingSync[0]
		g.pendingSync = g.pendingSync[1:]
		in.Seq = g.seq
		g.seq++
		g.Emitted++
		return in, true
	}
	if g.budget == 0 {
		return isa.Inst{}, false
	}
	if g.seq >= g.nextReset {
		g.resetChunk(g.seq / ChunkLen)
	}
	g.budget--

	// Position the counter-based RNG on this instruction's draw window.
	g.rng.ctr = g.seq * drawStride
	in := g.synthesize()
	in.Seq = g.seq
	g.seq++
	g.Emitted++
	g.accountSync(&in)
	return in, true
}

// NextBatch implements trace.BatchStream: the same stream as Next, produced
// through direct (devirtualized) calls per chunk.
func (g *Generator) NextBatch(buf []isa.Inst) int {
	n := 0
	for n < len(buf) {
		in, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = in
		n++
	}
	return n
}

// accountSync updates barrier/lock bookkeeping after emitting in and queues
// any synchronization instructions that must follow. Its draws come from
// the sequential syncRng: profiles with synchronization structure are
// pinned to sequential generation (see Skippable), so the schedule needs
// no jump-ahead.
func (g *Generator) accountSync(in *isa.Inst) {
	p := g.p
	if p.BarrierEvery > 0 && g.budget > 0 {
		g.sinceBarrier++
		if g.sinceBarrier >= g.barrierAt && g.critLeft == 0 {
			g.sinceBarrier = 0
			g.pendingSync = append(g.pendingSync, isa.Inst{Class: isa.BarrierArrive})
		}
	}
	if p.LockEvery > 0 && p.Locks > 0 {
		if g.critLeft > 0 {
			g.critLeft--
			if g.critLeft == 0 {
				g.pendingSync = append(g.pendingSync,
					isa.Inst{Class: isa.LockRelease, SyncID: g.heldLock})
			}
		} else {
			g.untilLock--
			if g.untilLock <= 0 {
				g.untilLock = p.LockEvery/2 + g.syncRng.Intn(p.LockEvery)
				g.heldLock = uint16(g.syncRng.Intn(p.Locks))
				g.critLeft = 1 + g.critLen.sample(g.syncRng)
				g.pendingSync = append(g.pendingSync,
					isa.Inst{Class: isa.LockAcquire, SyncID: g.heldLock})
			}
		}
	}
}

// synthesize produces the next instruction from the CFG interpreter.
func (g *Generator) synthesize() isa.Inst {
	// Possibly enter or leave a system-code segment between blocks.
	if g.kernel != nil && g.pos == 0 {
		if g.inKernel {
			if g.kernLeft <= 0 {
				g.inKernel = false
				g.untilSerialize = g.serializePeriod()
			}
		} else if g.rng.next() < g.kernCut {
			g.inKernel = true
			g.kernLeft = 200 + g.kernSeg.sample(&g.rng)
			g.kcur = frame{fn: 0, block: 0}
			g.untilSerialize = g.serializePeriod()
		}
	}

	prog, cur := g.user, &g.cur
	if g.inKernel {
		prog, cur = g.kernel, &g.kcur
		g.kernLeft--
	}
	fn := &prog.funcs[cur.fn]
	bl := &fn.blocks[cur.block]

	if g.pos < bl.bodyLen {
		pc := bl.startPC + uint64(g.pos)*4
		g.pos++
		if g.untilSerialize == 0 {
			g.untilSerialize = g.serializePeriod()
			return isa.Inst{Class: isa.Serializing, PC: pc}
		}
		if g.untilSerialize > 0 {
			g.untilSerialize--
		}
		return g.bodyInst(pc)
	}

	// Terminator.
	pc := bl.startPC + uint64(bl.bodyLen)*4
	g.pos = 0
	switch bl.term {
	case termCall:
		stack := &g.callStack
		if g.inKernel {
			stack = &g.kstack
		}
		if len(*stack) < 64 {
			*stack = append(*stack, frame{fn: cur.fn, block: g.nextBlock(prog, cur.fn, cur.block)})
			cur.fn = bl.callee
			cur.block = 0
		} else {
			cur.block = g.nextBlock(prog, cur.fn, cur.block)
		}
		return isa.Inst{
			Class: isa.Call, PC: pc, Taken: true,
			Target: prog.funcs[cur.fn].entry,
			Src1:   g.pickSrc(), Src2: isa.RegNone, Dst: isa.RegNone,
		}
	case termRet:
		stack := &g.callStack
		if g.inKernel {
			stack = &g.kstack
		}
		var target uint64
		if len(*stack) > 0 {
			f := (*stack)[len(*stack)-1]
			*stack = (*stack)[:len(*stack)-1]
			*cur = f
		} else {
			cur.block = 0 // outermost loop: restart the function
		}
		target = prog.funcs[cur.fn].blocks[cur.block].startPC
		return isa.Inst{
			Class: isa.Return, PC: pc, Taken: true, Target: target,
			Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone,
		}
	default:
		site := &fn.sites[bl.site]
		taken := g.evalSite(site)
		var target uint64
		if taken {
			if site.kind == siteLoop {
				// New iteration: values of the previous iteration
				// are dead; only the accumulator chain persists.
				g.ringLen = 0
			}
			cur.block = site.target
			target = fn.blocks[site.target].startPC
		} else {
			cur.block = g.nextBlock(prog, cur.fn, cur.block)
			target = fn.blocks[cur.block].startPC
		}
		return isa.Inst{
			Class: isa.Branch, PC: pc, Taken: taken, Target: target,
			Src1: g.pickSrc(), Src2: isa.RegNone, Dst: isa.RegNone,
		}
	}
}

func (g *Generator) nextBlock(prog *program, fnIdx, blockIdx int) int {
	if blockIdx+1 < len(prog.funcs[fnIdx].blocks) {
		return blockIdx + 1
	}
	return 0
}

func (g *Generator) evalSite(s *branchSite) bool {
	switch s.kind {
	case siteLoop:
		s.count++
		if s.count < s.trip {
			return true
		}
		s.count = 0
		return false
	default:
		return g.rng.next() < s.cut
	}
}

// bodyInst synthesizes one non-control instruction at pc according to the
// mix.
// accumReg is the loop-carried accumulator register.
const accumReg = 7

func (g *Generator) bodyInst(pc uint64) isa.Inst {
	if g.chainCut != 0 && g.rng.next() < g.chainCut {
		// Extend the loop-carried chain: acc = f(acc, recent value).
		// Floating-point codes accumulate through the FP pipeline
		// (reductions, recurrences), integer codes through the ALU.
		return isa.Inst{
			Class: g.chainClass, PC: pc,
			Src1: accumReg, Src2: g.pickSrc(), Dst: accumReg,
		}
	}
	u := g.rng.next()
	switch {
	case u < g.cutLoad:
		return g.loadInst(pc)
	case u < g.cutStore:
		return g.storeInst(pc)
	case u < g.cutMul:
		return g.aluInst(pc, isa.IntMul)
	case u < g.cutDiv:
		return g.aluInst(pc, isa.IntDiv)
	case u < g.cutFP:
		return g.aluInst(pc, isa.FPOp)
	default:
		return g.aluInst(pc, isa.IntALU)
	}
}

func (g *Generator) aluInst(pc uint64, class isa.Class) isa.Inst {
	in := isa.Inst{
		Class: class, PC: pc,
		Src1: g.pickSrc(), Src2: g.pickSrc(),
		Dst: g.allocDst(),
	}
	return in
}

func (g *Generator) loadInst(pc uint64) isa.Inst {
	chase := g.lastLoad != isa.RegNone && g.chaseCut != 0 && g.rng.next() < g.chaseCut
	addr, strided := g.pickAddr(chase)
	var src1 uint8
	switch {
	case chase:
		// Pointer chase: address depends on the previous load.
		src1 = g.lastLoad
	case strided:
		// Streaming access: the address comes from an induction
		// variable, long since computed — independent of recent
		// results, which is what gives streaming codes their MLP.
		src1 = uint8(g.rng.Intn(8))
	default:
		src1 = g.pickSrc()
	}
	// Shared regions with a write fraction convert some of their
	// accesses into stores (coherence/invalidation traffic).
	if len(g.writeCut) > 0 {
		if cut := g.writeCut[g.lastRegion]; cut != 0 && g.rng.next() < cut {
			return isa.Inst{
				Class: isa.Store, PC: pc, Addr: addr,
				Src1: src1, Src2: g.pickSrc(), Dst: isa.RegNone,
			}
		}
	}
	dst := g.allocDst()
	g.lastLoad = dst
	return isa.Inst{
		Class: isa.Load, PC: pc, Addr: addr,
		Src1: src1, Src2: isa.RegNone, Dst: dst,
	}
}

func (g *Generator) storeInst(pc uint64) isa.Inst {
	addr, _ := g.pickAddr(false)
	return isa.Inst{
		Class: isa.Store, PC: pc, Addr: addr,
		Src1: g.pickSrc(), Src2: g.pickSrc(), Dst: isa.RegNone,
	}
}

// pickAddr chooses an effective address. chase keeps the access in the same
// region as the previous load (dependent pointer walk). strided reports
// whether the chosen region is a streaming region.
func (g *Generator) pickAddr(chase bool) (addr uint64, strided bool) {
	if len(g.regions) == 0 {
		return g.slotBase + 0x10000000000, false
	}
	idx := 0
	if !chase {
		u := g.rng.next()
		for idx < len(g.regionCut)-1 && u >= g.regionCut[idx] {
			idx++
		}
	} else {
		idx = g.lastRegion
	}
	g.lastRegion = idx
	reg := &g.regions[idx]
	spec := &g.p.Regions[idx]
	size := spec.Bytes
	if size < 64 {
		size = 64
	}
	var off uint64
	if spec.Stride > 0 {
		reg.cursor = (reg.cursor + spec.Stride) % size
		off = reg.cursor
	} else {
		off = (uint64(g.rng.Int63())%(size/64))*64 + uint64(g.rng.Intn(8))*8
	}
	return reg.base + off, spec.Stride > 0
}

// pickSrc picks a source register with a geometric dependence distance over
// recently written registers (v3: one alias-table probe instead of a
// math.Log inverse transform — this is the hottest draw in the
// generator, reached by nearly every synthesized instruction).
func (g *Generator) pickSrc() uint8 {
	if g.ringLen == 0 {
		return uint8(g.rng.Intn(8)) // ambient value
	}
	d := g.depDist.sample(&g.rng)
	if d >= g.ringLen {
		return uint8(g.rng.Intn(8))
	}
	idx := (g.ringHead - 1 - d + 2*len(g.ring)) % len(g.ring)
	return g.ring[idx]
}

func (g *Generator) allocDst() uint8 {
	dst := g.nextDst
	g.nextDst++
	if g.nextDst >= isa.NumRegs {
		g.nextDst = 8
	}
	g.ring[g.ringHead] = dst
	g.ringHead = (g.ringHead + 1) % len(g.ring)
	if g.ringLen < len(g.ring) {
		g.ringLen++
	}
	return dst
}
