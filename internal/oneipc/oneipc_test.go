package oneipc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
)

func run(t *testing.T, insts []isa.Inst, perfect memhier.Perfect) *Core {
	t.Helper()
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, perfect)
	c := New(0, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 10_000_000 {
			t.Fatal("one-IPC core did not finish")
		}
	}
	return c
}

func alus(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{Seq: uint64(i), Class: isa.IntALU}
	}
	return out
}

func TestExactlyOneIPCWithoutMemory(t *testing.T) {
	c := run(t, alus(1000), memhier.Perfect{DSide: true})
	if got := c.IPC(); got < 0.99 || got > 1.01 {
		t.Fatalf("IPC = %.3f, want exactly 1", got)
	}
	if c.Retired() != 1000 {
		t.Fatalf("retired %d", c.Retired())
	}
}

func TestMemoryAddsLatency(t *testing.T) {
	insts := alus(100)
	insts[50] = isa.Inst{Seq: 50, Class: isa.Load, Addr: 0x10000000000, Dst: 9,
		Src1: isa.RegNone, Src2: isa.RegNone}
	c := run(t, insts, memhier.Perfect{})
	// 99 ALU cycles + 1 load cycle + DRAM-ish latency.
	if c.FinishTime() < 100+100 {
		t.Fatalf("finish = %d, DRAM load free", c.FinishTime())
	}
}

func TestSyncBlocksUntilAllowed(t *testing.T) {
	insts := alus(10)
	insts[5] = isa.Inst{Seq: 5, Class: isa.BarrierArrive}
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{DSide: true})
	gate := &gateSyncer{openAt: 300}
	c := New(0, mem, trace.NewSliceStream(insts), gate)
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
		if now > 1_000_000 {
			t.Fatal("did not finish")
		}
	}
	if c.FinishTime() < 300 {
		t.Fatalf("finished at %d before barrier opened", c.FinishTime())
	}
}

type gateSyncer struct{ openAt int64 }

func (g *gateSyncer) Sync(core int, in *isa.Inst, now int64) sim.SyncDecision {
	if now < g.openAt {
		return sim.SyncDecision{}
	}
	return sim.SyncDecision{Proceed: true, Latency: 1}
}

func TestEventDrivenSkipping(t *testing.T) {
	insts := alus(20)
	insts[10] = isa.Inst{Seq: 10, Class: isa.Load, Addr: 0x10000000000, Dst: 9,
		Src1: isa.RegNone, Src2: isa.RegNone}
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	c := New(0, mem, trace.NewSliceStream(insts), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		wasAhead := !c.Done() && c.coreTime != now
		before := c.Retired()
		c.Step(now)
		if wasAhead && c.Retired() != before {
			t.Fatal("progress while local time ahead of global")
		}
		now++
	}
}
