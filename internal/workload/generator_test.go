package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestDeterminism(t *testing.T) {
	p := SPECByName("gcc")
	a := New(p, 0, 1, 42)
	b := New(p, 0, 1, 42)
	for i := 0; i < 10_000; i++ {
		x, okA := a.Next()
		y, okB := b.Next()
		if okA != okB || x != y {
			t.Fatalf("streams diverge at %d: %v vs %v", i, x, y)
		}
	}
}

func TestDifferentSeedsSameStaticProgram(t *testing.T) {
	p := SPECByName("gcc")
	a := New(p, 0, 1, 42)
	b := New(p, 0, 1, 777)
	// The PCs visited must come from the same static program: collect the
	// PC sets and require heavy overlap (identical CFG, different paths).
	pcs := func(g *Generator) map[uint64]bool {
		set := map[uint64]bool{}
		for i := 0; i < 20_000; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			set[in.PC] = true
		}
		return set
	}
	pa, pb := pcs(a), pcs(b)
	common := 0
	for pc := range pa {
		if pb[pc] {
			common++
		}
	}
	// Different dynamic paths visit different parts of the (identical)
	// CFG, so the overlap is well below 1 but far above what two
	// different random programs would share.
	if frac := float64(common) / float64(len(pa)); frac < 0.2 {
		t.Fatalf("only %.0f%% of PCs shared between seeds: static program differs", 100*frac)
	}
}

func TestMixApproximatelyHonored(t *testing.T) {
	p := SPECByName("gcc")
	g := New(p, 0, 1, 42)
	var st trace.Stats
	for i := 0; i < 100_000; i++ {
		in, ok := g.Next()
		if !ok {
			break
		}
		st.Observe(&in)
	}
	// Loads: profile says 26% of non-branch instructions.
	loadFrac := st.Frac(isa.Load)
	if loadFrac < 0.1 || loadFrac > 0.4 {
		t.Errorf("load fraction %.3f implausible", loadFrac)
	}
	branchFrac := float64(st.Branches) / float64(st.Total)
	if branchFrac < 0.05 || branchFrac > 0.3 {
		t.Errorf("branch fraction %.3f implausible", branchFrac)
	}
}

func TestBranchTargetsConsistent(t *testing.T) {
	p := SPECByName("bzip2")
	g := New(p, 0, 1, 42)
	for i := 0; i < 50_000; i++ {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Class.IsBranch() && in.Taken && in.Target == 0 {
			t.Fatalf("taken branch with zero target at %d", i)
		}
	}
}

func TestRegistersInRange(t *testing.T) {
	p := SPECByName("mcf")
	g := New(p, 0, 1, 42)
	for i := 0; i < 50_000; i++ {
		in, ok := g.Next()
		if !ok {
			break
		}
		for _, r := range []uint8{in.Src1, in.Src2, in.Dst} {
			if r != isa.RegNone && r >= isa.NumRegs {
				t.Fatalf("register %d out of range", r)
			}
		}
	}
}

func TestThreadsPrivateRegionsDisjoint(t *testing.T) {
	p := PARSECByName("blackscholes")
	a := New(p, 0, 4, 42)
	b := New(p, 1, 4, 42)
	seen := map[uint64]int{}
	collect := func(g *Generator, id int) {
		for i := 0; i < 30_000; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			if in.Class.IsMem() {
				seen[in.Addr>>24] |= 1 << id
			}
		}
	}
	collect(a, 0)
	collect(b, 1)
	shared := 0
	for _, mask := range seen {
		if mask == 3 {
			shared++
		}
	}
	// The shared region overlaps by construction; the private ones must
	// not. blackscholes has one small shared region, so only a small
	// number of high-address prefixes may be common.
	if shared > len(seen)/2 {
		t.Fatalf("%d/%d address prefixes shared between threads", shared, len(seen))
	}
}

func TestSharedRegionVisibleToAllThreads(t *testing.T) {
	p := PARSECByName("canneal")
	addrsIn := func(thread int) map[uint64]bool {
		g := New(p, thread, 2, 42)
		set := map[uint64]bool{}
		for i := 0; i < 60_000; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			if in.Class.IsMem() {
				set[in.Addr>>30] = true
			}
		}
		return set
	}
	a, b := addrsIn(0), addrsIn(1)
	common := false
	for k := range a {
		if b[k] {
			common = true
		}
	}
	if !common {
		t.Fatal("no shared address ranges between threads of a sharing profile")
	}
}

func TestBarrierCountsMatchAcrossThreads(t *testing.T) {
	p := PARSECByName("streamcluster")
	counts := make([]int, 4)
	for th := 0; th < 4; th++ {
		g := New(p, th, 4, 42)
		for {
			in, ok := g.Next()
			if !ok {
				break
			}
			if in.Class == isa.BarrierArrive {
				counts[th]++
			}
		}
	}
	for th := 1; th < 4; th++ {
		if d := counts[th] - counts[0]; d < -1 || d > 1 {
			t.Fatalf("barrier counts diverge: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("no barriers emitted")
	}
}

func TestLocksBalanced(t *testing.T) {
	p := PARSECByName("fluidanimate")
	g := New(p, 0, 2, 42)
	depth := 0
	var acquires, releases int
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		switch in.Class {
		case isa.LockAcquire:
			acquires++
			depth++
			if depth > 1 {
				t.Fatal("nested lock acquire")
			}
		case isa.LockRelease:
			releases++
			depth--
			if depth < 0 {
				t.Fatal("release without acquire")
			}
		}
	}
	if acquires == 0 {
		t.Fatal("no locks emitted by a lock-heavy profile")
	}
	if d := acquires - releases; d < 0 || d > 1 {
		t.Fatalf("acquires=%d releases=%d unbalanced", acquires, releases)
	}
}

func TestTotalWorkSplit(t *testing.T) {
	p := PARSECByName("swaptions")
	var total uint64
	for th := 0; th < 4; th++ {
		g := New(p, th, 4, 42)
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
		total += g.Emitted
	}
	// Within a few percent of TotalWork (sync instructions add a little).
	ratio := float64(total) / float64(p.TotalWork)
	if ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("total emitted %d vs TotalWork %d (ratio %.3f)", total, p.TotalWork, ratio)
	}
}

func TestSerialFracLimitsScaling(t *testing.T) {
	p := PARSECByName("vips")
	work := func(threads int) (max uint64) {
		for th := 0; th < threads; th++ {
			g := New(p, th, threads, 42)
			for {
				if _, ok := g.Next(); !ok {
					break
				}
			}
			if g.Emitted > max {
				max = g.Emitted
			}
		}
		return max
	}
	w2, w8 := work(2), work(8)
	// Thread 0 holds SerialFrac of the work; the slowest thread's load
	// barely shrinks from 2 to 8 threads.
	if float64(w8) < 0.8*float64(w2) {
		t.Fatalf("serial-stage work shrank too much: %d -> %d", w2, w8)
	}
}

func TestSPECProfileTable(t *testing.T) {
	ps := SPEC()
	if len(ps) != 26 {
		t.Fatalf("%d SPEC profiles, want 26", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		var sum float64
		for _, r := range p.Regions {
			sum += r.Prob
		}
		if math.Abs(sum-1) > 0.05 {
			t.Errorf("%s: region probabilities sum to %.3f", p.Name, sum)
		}
		if p.MultiThreaded() {
			t.Errorf("%s: SPEC profile flagged multi-threaded", p.Name)
		}
	}
	if SPECByName("nonexistent") != nil {
		t.Fatal("lookup of unknown profile succeeded")
	}
}

func TestPARSECProfileTable(t *testing.T) {
	ps := PARSEC()
	if len(ps) != 9 {
		t.Fatalf("%d PARSEC profiles, want 9", len(ps))
	}
	for _, p := range ps {
		if !p.MultiThreaded() {
			t.Errorf("%s: not flagged multi-threaded", p.Name)
		}
		if p.TotalWork == 0 {
			t.Errorf("%s: no TotalWork", p.Name)
		}
		if p.SystemFrac == 0 {
			t.Errorf("%s: full-system profile without system code", p.Name)
		}
	}
	if PARSECByName("nope") != nil {
		t.Fatal("lookup of unknown profile succeeded")
	}
}

// Property: for any profile and seed, the first instructions are valid:
// classes in range, sequence numbers dense.
func TestQuickStreamWellFormed(t *testing.T) {
	profiles := SPEC()
	f := func(pi uint8, seed int64) bool {
		p := profiles[int(pi)%len(profiles)]
		g := New(&p, 0, 1, seed)
		for i := 0; i < 2000; i++ {
			in, ok := g.Next()
			if !ok || in.Seq != uint64(i) {
				return false
			}
			if int(in.Class) >= isa.NumClasses {
				return false
			}
			if in.Class.IsMem() && in.Addr == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
