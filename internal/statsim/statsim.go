// Package statsim implements statistical simulation, the related-work
// baseline the paper positions interval simulation against (Nussbaum &
// Smith; Eeckhout et al.; Oskin et al.): profile a benchmark's dynamic
// execution into a compact statistical profile, then generate a short
// synthetic clone that exhibits the same execution characteristics. The
// clone's instruction count can be orders of magnitude smaller than the
// original workload, which is where statistical simulation gets its
// speedup — orthogonal to interval simulation, which instead raises the
// timing model's level of abstraction (the two compose; see the bench
// harness).
package statsim

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// MaxDepDist is the largest tracked register dependence distance in
// dynamic instructions; longer (or absent) dependences fall in the last
// bucket and are treated as already satisfied.
const MaxDepDist = 64

// maxStaticBranches caps the synthetic static branch footprint.
const maxStaticBranches = 256

// maxTrackedLines caps the working-set estimator's line table.
const maxTrackedLines = 1 << 20

// Stride buckets classify the line-distance between consecutive data
// accesses.
const (
	strideSame = iota // same line
	strideNext        // +1 line
	stridePrev        // -1 line
	strideNear        // |delta| in [2,8] lines
	strideFar         // anything else: random within the working set
	numStrides
)

// StaticBranch is the profiled behaviour of one static branch.
type StaticBranch struct {
	// Count is the dynamic execution count.
	Count uint64
	// Taken counts taken outcomes.
	Taken uint64
	// Repeats counts outcomes equal to the branch's previous outcome.
	Repeats uint64
}

// TakenRate returns the fraction of executions taken.
func (b StaticBranch) TakenRate() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Count)
}

// RepeatRate returns the fraction of executions repeating the previous
// outcome.
func (b StaticBranch) RepeatRate() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Repeats) / float64(b.Count)
}

// Profile is the statistical profile of one thread's dynamic execution.
type Profile struct {
	// Total is the number of profiled instructions.
	Total uint64
	// ClassCount is the instruction-class mix.
	ClassCount [isa.NumClasses]uint64

	// DepDist is the register dependence-distance histogram: DepDist[d]
	// counts source operands whose producer retired d instructions
	// earlier (d in [1,MaxDepDist)); the last bucket aggregates longer
	// and absent dependences.
	DepDist [MaxDepDist + 1]uint64
	// SrcOps counts profiled source operands.
	SrcOps uint64

	// Branch behaviour: taken rate, outcome-repeat rate per static
	// branch (a predictability proxy), and the static branch footprint.
	BranchTotal    uint64
	BranchTaken    uint64
	BranchRepeats  uint64
	StaticBranches int
	// Branches holds per-static-branch behaviour for up to
	// maxStaticBranches distinct branch PCs, in first-seen order. The
	// clone replays each static branch with its own bias and repeat
	// rate, which preserves the biased/alternating structure real
	// predictors exploit.
	Branches []StaticBranch

	// Memory behaviour: stride mix between consecutive data-access
	// lines and the data working-set size in lines.
	StrideCount [numStrides]uint64
	DataLines   int
	// CodeLines is the instruction working set in cache lines.
	CodeLines int

	// Locality: hit rates measured against the baseline cache geometry
	// (Table 1), the statistical-simulation practice of carrying cache
	// behaviour in the profile (HLS; Nussbaum & Smith). DataAccesses
	// partitions into L1D hits, L2 hits and misses below L2; InstCount
	// partitions I-side accesses the same way per instruction.
	DataAccesses uint64
	L1DHits      uint64
	L2DHits      uint64
	L1IMissesPer uint64 // L1I misses (per-instruction I-side behaviour)

	// Miss clustering: below-L2 misses arriving within missClusterGap
	// data accesses of the previous one belong to the same cluster.
	// Cluster size is what exposes memory-level parallelism, so the
	// clone must reproduce it, not just the aggregate miss rate (the
	// MLP-aware profiling insight of Genbrugge & Eeckhout's statistical
	// simulation work).
	ColdMisses   uint64
	ColdClusters uint64

	// Pointer chasing: Loads counts profiled loads; LoadLoadDeps counts
	// loads whose address source register was produced by another load
	// within MaxDepDist instructions. Dependent load chains serialize
	// their miss penalties, so the clone must reproduce this fraction
	// (mcf-like workloads have almost no MLP because of it).
	Loads        uint64
	LoadLoadDeps uint64
}

// LoadLoadRate returns the fraction of loads whose address depends on a
// recent load.
func (p *Profile) LoadLoadRate() float64 {
	if p.Loads == 0 {
		return 0
	}
	return float64(p.LoadLoadDeps) / float64(p.Loads)
}

// missClusterGap is the maximum spacing (in data accesses) between two
// below-L2 misses of the same cluster.
const missClusterGap = 32

// MeanBurst returns the mean below-L2 miss-cluster size, at least 1.
func (p *Profile) MeanBurst() float64 {
	if p.ColdClusters == 0 {
		return 1
	}
	b := float64(p.ColdMisses) / float64(p.ColdClusters)
	if b < 1 {
		return 1
	}
	return b
}

// L1DHitRate returns the fraction of data accesses hitting the L1D.
func (p *Profile) L1DHitRate() float64 {
	if p.DataAccesses == 0 {
		return 1
	}
	return float64(p.L1DHits) / float64(p.DataAccesses)
}

// L2DHitRate returns the fraction of data accesses missing the L1D but
// hitting the L2.
func (p *Profile) L2DHitRate() float64 {
	if p.DataAccesses == 0 {
		return 0
	}
	return float64(p.L2DHits) / float64(p.DataAccesses)
}

// IMissRate returns L1I misses per instruction.
func (p *Profile) IMissRate() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.L1IMissesPer) / float64(p.Total)
}

// Collect profiles up to max instructions from src (0 = the entire
// stream).
func Collect(src trace.Stream, max int) *Profile {
	return CollectWarm(src, 0, max)
}

// CollectWarm is Collect with functional warmup: the first warm
// instructions update the internal cache, TLB and branch-history state
// without contributing to the profile, so the profiled locality reflects
// steady state rather than cold-start misses. Clones are short by design;
// generating them from cold-start-biased rates would overstate their miss
// traffic.
func CollectWarm(src trace.Stream, warm, max int) *Profile {
	p := &Profile{}
	lastWrite := make(map[uint8]uint64, isa.NumRegs)
	lastWriteIsLoad := make(map[uint8]bool, isa.NumRegs)
	lastOutcome := make(map[uint64]bool)
	branchIdx := make(map[uint64]int)
	dataLines := make(map[uint64]struct{})
	codeLines := make(map[uint64]struct{})
	var lastLine int64 = -1
	var lastColdAt int64 = -1

	// Locality measurement against the Table 1 geometry.
	mem := config.Default(1).Mem
	l1d := cache.New(mem.L1D)
	l2 := cache.New(mem.L2)
	l1i := cache.New(mem.L1I)

	var seq uint64
	for max <= 0 || int(p.Total) < max {
		in, ok := src.Next()
		if !ok {
			break
		}
		counting := seq >= uint64(warm)
		if counting {
			p.Total++
			p.ClassCount[in.Class]++
		}

		isLoadChase := false
		for _, s := range [2]uint8{in.Src1, in.Src2} {
			if s == isa.RegNone {
				continue
			}
			producerRecent := false
			if w, ok := lastWrite[s]; ok && seq-w <= MaxDepDist {
				producerRecent = true
				if counting {
					p.DepDist[seq-w]++
				}
			} else if counting {
				p.DepDist[MaxDepDist]++
			}
			if counting {
				p.SrcOps++
			}
			if in.Class == isa.Load && producerRecent && lastWriteIsLoad[s] {
				isLoadChase = true
			}
		}
		if counting && in.Class == isa.Load {
			p.Loads++
			if isLoadChase {
				p.LoadLoadDeps++
			}
		}
		if in.HasDst() {
			lastWrite[in.Dst] = seq
			lastWriteIsLoad[in.Dst] = in.Class == isa.Load
		}

		if in.Class.IsBranch() {
			repeat := false
			if prev, seen := lastOutcome[in.PC]; seen && prev == in.Taken {
				repeat = true
			}
			idx, tracked := branchIdx[in.PC]
			if !tracked && len(p.Branches) < maxStaticBranches {
				idx = len(p.Branches)
				p.Branches = append(p.Branches, StaticBranch{})
				branchIdx[in.PC] = idx
				tracked = true
			}
			if counting {
				p.BranchTotal++
				if in.Taken {
					p.BranchTaken++
				}
				if repeat {
					p.BranchRepeats++
				}
				if tracked {
					b := &p.Branches[idx]
					b.Count++
					if in.Taken {
						b.Taken++
					}
					if repeat {
						b.Repeats++
					}
				}
			}
			if tracked {
				lastOutcome[in.PC] = in.Taken
			}
		}

		if in.Class.IsMem() {
			line := int64(in.Addr >> 6)
			if counting && lastLine >= 0 {
				p.StrideCount[classifyStride(line-lastLine)]++
			}
			lastLine = line
			if len(dataLines) < maxTrackedLines {
				dataLines[uint64(line)] = struct{}{}
			}
			if counting {
				p.DataAccesses++
			}
			write := in.Class == isa.Store
			if hit := l1d.Access(in.Addr, write); hit {
				if counting {
					p.L1DHits++
				}
			} else {
				l1d.Fill(in.Addr, write)
				if l2.Access(in.Addr, false) {
					if counting {
						p.L2DHits++
					}
				} else {
					l2.Fill(in.Addr, false)
					if counting {
						p.ColdMisses++
						if lastColdAt < 0 || p.DataAccesses-uint64(lastColdAt) > missClusterGap {
							p.ColdClusters++
						}
						lastColdAt = int64(p.DataAccesses)
					}
				}
			}
		}
		if len(codeLines) < maxTrackedLines {
			codeLines[in.PC>>6] = struct{}{}
		}
		if hit := l1i.Access(in.PC, false); !hit {
			if counting {
				p.L1IMissesPer++
			}
			l1i.Fill(in.PC, false)
		}
		seq++
	}
	p.StaticBranches = len(lastOutcome)
	p.DataLines = len(dataLines)
	p.CodeLines = len(codeLines)
	return p
}

func classifyStride(delta int64) int {
	switch {
	case delta == 0:
		return strideSame
	case delta == 1:
		return strideNext
	case delta == -1:
		return stridePrev
	case delta >= -8 && delta <= 8:
		return strideNear
	default:
		return strideFar
	}
}

// ClassFrac returns the fraction of profiled instructions of class c.
func (p *Profile) ClassFrac(c isa.Class) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.ClassCount[c]) / float64(p.Total)
}

// TakenRate returns the fraction of branches taken.
func (p *Profile) TakenRate() float64 {
	if p.BranchTotal == 0 {
		return 0
	}
	return float64(p.BranchTaken) / float64(p.BranchTotal)
}

// RepeatRate returns the fraction of branches repeating their previous
// outcome (per static branch).
func (p *Profile) RepeatRate() float64 {
	if p.BranchTotal == 0 {
		return 0
	}
	return float64(p.BranchRepeats) / float64(p.BranchTotal)
}
