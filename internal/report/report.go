// Package report renders a post-run summary of a simulation: per-core
// results, memory-hierarchy statistics (miss rates, bus and DRAM
// utilization, coherence traffic) and — for interval-model runs — the CPI
// stacks. It is what a user reads after a design-space run to understand
// *why* a configuration performed the way it did.
package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/multicore"
)

// Format renders the report. The run must have been made with
// RunConfig.KeepCores so the hierarchy and core models are available;
// without them only the per-core table is printed.
func Format(res multicore.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s cycles=%d instructions=%d wall=%v (%.2f MIPS)\n",
		res.ModelLabel(), res.Cycles, res.TotalRetired, res.Wall, res.MIPS())
	if res.TimedOut {
		b.WriteString("WARNING: run hit the cycle limit\n")
	}
	if res.Interrupted {
		b.WriteString("WARNING: run was interrupted before completing\n")
	}

	b.WriteString("cores:\n")
	for i, c := range res.Cores {
		fmt.Fprintf(&b, "  core %-2d retired=%-10d finish=%-10d IPC=%.3f\n",
			i, c.Retired, c.Finish, c.IPC)
	}

	if res.Mem != nil {
		h := res.Mem
		b.WriteString("memory hierarchy:\n")
		for i := 0; i < len(res.Cores); i++ {
			fmt.Fprintf(&b, "  core %-2d L1I miss=%.4f  L1D miss=%.4f\n",
				i, h.L1I(i).MissRate(), h.L1D(i).MissRate())
		}
		if l2 := h.L2(); l2 != nil {
			fmt.Fprintf(&b, "  L2 miss=%.4f (hits=%d misses=%d)\n",
				l2.MissRate(), l2.Hits, l2.Misses)
		} else {
			b.WriteString("  L2: none (3D-stacked configuration)\n")
		}
		fab := h.Fabric()
		fmt.Fprintf(&b, "  fabric: transactions=%d queue-stall=%d (%.1f%% busy)\n",
			fab.TxCount(), fab.StallCycles(), 100*fab.Utilization(res.Cycles))
		d := h.DRAM().Stats()
		fmt.Fprintf(&b, "  DRAM: requests=%d queue-stall=%d (%.1f%% bus busy)\n",
			d.Requests, d.StallTotal, 100*h.DRAM().Utilization(res.Cycles))
		coh := h.Coherence().Stats()
		fmt.Fprintf(&b, "  coherence: interventions=%d upgrades=%d invalidations=%d\n",
			coh.Interventions, coh.Upgrades, coh.Invalidations)
		if st := h.Stats(); st.Prefetches > 0 {
			fmt.Fprintf(&b, "  prefetch: issued=%d fills-from-DRAM=%d\n",
				st.Prefetches, st.PrefetchFills)
		}
	}

	for i, sc := range res.Sim {
		if ic, ok := sc.(*core.Core); ok {
			fmt.Fprintf(&b, "core %d %s", i, ic.Stack())
			if iv := ic.Intervals(); iv.Events > 0 {
				fmt.Fprintf(&b, "core %d %s", i, iv)
			}
		}
	}
	return b.String()
}
