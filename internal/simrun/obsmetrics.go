package simrun

import (
	"sync"

	"repro/internal/obs"
)

// The facade's process-wide metrics, registered into obs.Default() on
// first use so a process that never runs a scenario exposes none of
// them. Per-engine instruments are resolved per run through the
// registry's idempotent lookup (a mutexed map access, negligible next
// to a simulation).
var (
	obsOnce           sync.Once
	mFallbacks        *obs.Counter
	mBatchPending     *obs.Gauge
	mBatchRunning     *obs.Gauge
	mCacheUpgrades    *obs.Counter
	mCacheQuarantined *obs.Counter
	mEnginePanics     *obs.Counter
)

func obsMetrics() {
	obsOnce.Do(func() {
		r := obs.Default()
		mFallbacks = r.Counter("simrun_sequential_fallbacks_total",
			"Host-parallel runs that aborted (sharing/sync) and re-ran sequentially.")
		mBatchPending = r.Gauge("simrun_batch_pending",
			"Batch scenarios waiting for a worker.")
		mBatchRunning = r.Gauge("simrun_batch_running",
			"Batch scenarios currently simulating.")
		mCacheUpgrades = r.Counter("simrun_cache_tier_upgrades_total",
			"Result-cache entries upgraded in place to a higher fidelity tier.")
		mCacheQuarantined = r.Counter("simrun_cache_quarantined_total",
			"Persisted cache entries that failed the integrity check and were renamed aside.")
		mEnginePanics = r.Counter("simrun_engine_panics_total",
			"Engine runs that panicked and were isolated to a per-run error.")
	})
}

// engineMetrics resolves the dispatch counter and wall-clock histogram
// for one registered engine.
func engineMetrics(engine string) (*obs.Counter, *obs.Histogram) {
	obsMetrics()
	r := obs.Default()
	lbl := obs.Label{Key: "engine", Value: engine}
	runs := r.Counter("simrun_engine_runs_total",
		"Scenario runs dispatched, by answering engine.", lbl)
	wall := r.Histogram("simrun_engine_wall_seconds",
		"Host wall-clock seconds per engine run.", nil, lbl)
	return runs, wall
}
