package memhier

import (
	"testing"

	"repro/internal/config"
)

// memCfg returns the Table 1 memory configuration for tweaking.
func memCfg() config.Memory { return config.Default(1).Mem }

func TestMeshFabricSelected(t *testing.T) {
	cfg := memCfg()
	cfg.Interconnect = "mesh"
	h := New(4, cfg, Perfect{})
	if h.Bus() != nil {
		t.Fatal("mesh hierarchy still exposes the bus")
	}
	// Miss both L1 and L2: the fabric must see a transaction.
	h.Data(0, 0x100000, false, 0)
	if h.Fabric().TxCount() == 0 {
		t.Fatal("no fabric transactions after an L1 miss")
	}
}

func TestRingFabricLatencyGrowsWithDistance(t *testing.T) {
	cfg := memCfg()
	cfg.Interconnect = "ring"
	cfg.NoCHopLatency = 3
	h := New(8, cfg, Perfect{})
	// Same cold line pattern from the closest and the farthest core;
	// use distinct addresses so both miss everywhere.
	farCore, nearCore := 4, 7 // hub is node 8; core 7 is 1 hop, core 4 is 4 hops
	rNear := h.Data(nearCore, 0x100000, false, 0)
	rFar := h.Data(farCore, 0x900000, false, 100000)
	if rFar.Latency <= rNear.Latency {
		t.Fatalf("far core latency %d <= near core %d", rFar.Latency, rNear.Latency)
	}
	if rFar.Latency-rNear.Latency != 3*3 { // 3 extra hops at 3 cycles
		t.Fatalf("latency delta %d, want 9", rFar.Latency-rNear.Latency)
	}
}

func TestDirectoryCoherenceClassifiesRemoteSupply(t *testing.T) {
	cfg := memCfg()
	cfg.Coherence = "directory"
	h := New(2, cfg, Perfect{})
	addr := uint64(0x4000)
	h.Data(0, addr, true, 0) // core 0 owns the line Modified
	res := h.Data(1, addr, false, 1000)
	if res.Kind != CoherenceMiss {
		t.Fatalf("kind = %v, want coherence miss", res.Kind)
	}
	if h.Coherence().Stats().Interventions != 1 {
		t.Fatalf("interventions = %d", h.Coherence().Stats().Interventions)
	}
}

func TestDirectoryLatencyAddsToMisses(t *testing.T) {
	base := memCfg()
	dir := base
	dir.Coherence = "directory"
	dir.DirectoryLatency = 40

	hb := New(2, base, Perfect{})
	hd := New(2, dir, Perfect{})
	// A cold L1+L2 miss from core 0, identical on both machines apart
	// from the home-node lookup.
	rb := hb.Data(0, 0x200000, false, 0)
	rd := hd.Data(0, 0x200000, false, 0)
	if rd.Latency-rb.Latency != 40 {
		t.Fatalf("directory adds %d cycles, want 40", rd.Latency-rb.Latency)
	}
}

func TestDirectoryLatencyDefaultsNonZero(t *testing.T) {
	cfg := memCfg()
	cfg.Coherence = "directory"
	h := New(2, cfg, Perfect{})
	if h.dirLat == 0 {
		t.Fatal("directory home-lookup latency defaulted to zero")
	}
}

func TestBankedDRAMSelected(t *testing.T) {
	cfg := memCfg()
	cfg.DRAMKind = "banked"
	h := New(1, cfg, Perfect{})
	// Two L2-missing accesses to the same DRAM row: the second is a row
	// hit, so cheaper.
	r1 := h.Data(0, 0x1000000, false, 0)
	r2 := h.Data(0, 0x1000000+64, false, 100000)
	if r2.Kind == L2Hit {
		t.Skip("second line already in L2 — geometry changed?")
	}
	if r2.Latency >= r1.Latency {
		t.Fatalf("row-hit access %d not cheaper than row miss %d", r2.Latency, r1.Latency)
	}
}

func TestStridePrefetcherCatchesStriddedStream(t *testing.T) {
	cfg := memCfg()
	cfg.Prefetch = "stride"
	cfg.PrefetchDegree = 4
	h := New(1, cfg, Perfect{})
	// Demand misses with a constant 256-byte stride. After two
	// confirmations the prefetcher should run ahead of the stream.
	stride := uint64(256)
	base := uint64(0x2000000)
	var now int64
	for i := 0; i < 64; i++ {
		h.Data(0, base+uint64(i)*stride, false, now)
		now += 1000
	}
	if h.Stats().Prefetches == 0 {
		t.Fatal("stride prefetcher never fired on a constant-stride stream")
	}
	// Steady state: most accesses beyond the training prefix hit the L1
	// because the prefetcher filled them.
	misses := h.L1D(0).Misses
	if misses > 16 {
		t.Fatalf("%d demand misses on a covered stride stream (prefetches=%d)", misses, h.Stats().Prefetches)
	}
}

func TestStridePrefetcherIgnoresRandomTraffic(t *testing.T) {
	cfg := memCfg()
	cfg.Prefetch = "stride"
	h := New(1, cfg, Perfect{})
	// A pseudo-random pointer chase: no stable stride per region.
	addr := uint64(0x40000)
	var now int64
	for i := 0; i < 200; i++ {
		addr = (addr*2862933555777941757 + 3037000493) % (1 << 26)
		h.Data(0, addr&^63, false, now)
		now += 1000
	}
	if h.Stats().Prefetches > 40 {
		t.Fatalf("stride prefetcher fired %d times on random traffic", h.Stats().Prefetches)
	}
}

func TestNextlinePrefetchStillWorks(t *testing.T) {
	cfg := memCfg()
	cfg.Prefetch = "nextline"
	cfg.PrefetchDegree = 2
	h := New(1, cfg, Perfect{})
	h.Data(0, 0x3000000, false, 0)
	if h.Stats().Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", h.Stats().Prefetches)
	}
	// The prefetched next line hits.
	r := h.Data(0, 0x3000000+64, false, 1000)
	if r.Miss {
		t.Fatal("next line not prefetched")
	}
}

func TestResetStatsCoversNewComponents(t *testing.T) {
	cfg := memCfg()
	cfg.Interconnect = "mesh"
	cfg.DRAMKind = "banked"
	cfg.Coherence = "directory"
	cfg.Prefetch = "stride"
	h := New(2, cfg, Perfect{})
	h.Data(0, 0x100000, true, 0)
	h.Data(1, 0x100000, false, 100)
	h.ResetStats()
	if h.Fabric().TxCount() != 0 {
		t.Error("fabric stats survive ResetStats")
	}
	if h.DRAM().Stats().Requests != 0 {
		t.Error("DRAM stats survive ResetStats")
	}
	if h.Coherence().Stats().Interventions != 0 {
		t.Error("coherence stats survive ResetStats")
	}
}
