// Sampled interval simulation: the paper calls sampling orthogonal to
// interval simulation — sampling reduces how many instructions are timed,
// interval simulation reduces the cost of timing each one. This example
// composes the two (a SMARTS-style periodic regime over the interval core)
// and compares the estimate against the full run.
//
//	go run ./examples/sampling
package main

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/multicore"
	"repro/internal/sampling"
	"repro/internal/simrun"
	"repro/internal/workload"
)

func main() {
	const total = 400_000
	m := config.Default(1)

	full, err := simrun.MustNew("mesa", simrun.Insts(total)).Run(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-28s IPC=%.3f wall=%v\n", "full interval simulation:",
		full.Cores[0].IPC, full.Wall)

	p := workload.SPECByName("mesa")
	for _, period := range []int{20_000, 50_000, 100_000} {
		res, err := sampling.Run(sampling.Config{
			Unit: 10_000, Period: period,
			Model: multicore.Interval, Machine: m,
		}, workload.New(p, 0, 1, 42), total)
		if err != nil {
			panic(err)
		}
		fmt.Printf("sampled 1/%d of the stream:   IPC=%.3f (%d units, err %.1f%%)\n",
			period/10_000, res.SampledIPC, res.Units,
			100*metrics.RelError(full.Cores[0].IPC, res.SampledIPC))
	}
	fmt.Println()
	fmt.Println("Timing a fraction of the stream over the analytical core model")
	fmt.Println("multiplies the two speedups, as the paper's related work suggests.")
}
