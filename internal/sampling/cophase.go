package sampling

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/multicore"
	"repro/internal/trace"
)

// Co-phase matrix (Van Biesbrouck et al., cited by the paper's related
// work): to sample a *multi-program* co-run, phase-classify each program
// separately, co-simulate one short representative per phase *pair*, and
// then predict the whole co-run by walking both programs' phase sequences
// at the per-pair speeds. Which phase pairs co-occur depends on relative
// progress, which the walk itself determines — the circularity that makes
// naive per-program sampling wrong for co-runs, and that the matrix
// resolves.

// CoPhaseConfig sizes a two-program co-phase estimation.
type CoPhaseConfig struct {
	// IntervalLen is the phase-classification interval length.
	IntervalLen int
	// K is the per-program phase count.
	K int
	// Seed makes the clustering deterministic.
	Seed int64
	// Machine is the co-run hardware; Machine.Cores must be 2.
	Machine config.Machine
	// Model selects the core timing model for the matrix cells.
	Model multicore.Model
	// WarmupA and WarmupB optionally hold the instructions that executed
	// before a and b (initialization the caller excluded from
	// measurement). Every matrix cell functionally warms with this
	// prefix before its in-stream prefix — without it, a representative
	// near the stream start is timed against cold caches while the run
	// it stands in for executes warm (the SMARTS cold-start problem).
	WarmupA, WarmupB []isa.Inst
}

// CoPhaseResult is the outcome of a co-phase estimation.
type CoPhaseResult struct {
	// PhasesA and PhasesB are the per-program phase classifications.
	PhasesA, PhasesB *SimPoints
	// PairIPC is the co-phase matrix: PairIPC[i][j] holds the two
	// programs' IPCs when phase i of A co-runs with phase j of B.
	PairIPC [][][2]float64
	// MatrixRuns counts the co-simulations performed (K_A * K_B).
	MatrixRuns int
	// Predicted is the per-program IPC over the walked co-run.
	Predicted [2]float64
	// WalkCycles is the predicted co-run length in cycles (to the first
	// program's completion).
	WalkCycles float64
}

// CoPhaseEstimate phase-classifies both instruction streams, co-simulates
// every phase pair once, and predicts the co-run IPCs by a progress walk
// over the phase sequences.
func CoPhaseEstimate(a, b []isa.Inst, cfg CoPhaseConfig) (CoPhaseResult, error) {
	var res CoPhaseResult
	if cfg.Machine.Cores != 2 {
		return res, fmt.Errorf("cophase: two-core machines only (got %d)", cfg.Machine.Cores)
	}
	spc := SimPointConfig{IntervalLen: cfg.IntervalLen, K: cfg.K, Seed: cfg.Seed}
	pa, err := Analyze(a, spc)
	if err != nil {
		return res, fmt.Errorf("cophase: program A: %w", err)
	}
	pb, err := Analyze(b, spc)
	if err != nil {
		return res, fmt.Errorf("cophase: program B: %w", err)
	}
	res.PhasesA, res.PhasesB = pa, pb

	// Fill the matrix: one short co-simulation per phase pair, each
	// side functionally warmed with its representative's prefix.
	res.PairIPC = make([][][2]float64, pa.K)
	for i := 0; i < pa.K; i++ {
		res.PairIPC[i] = make([][2]float64, pb.K)
		for j := 0; j < pb.K; j++ {
			ra := pa.Representatives[i] * cfg.IntervalLen
			rb := pb.Representatives[j] * cfg.IntervalLen
			ipcA, ipcB := coCell(a, b, ra, rb, cfg)
			res.PairIPC[i][j] = [2]float64{ipcA, ipcB}
			res.MatrixRuns++
		}
	}

	// Progress walk: advance both programs at the current pair's speeds
	// until one finishes; phase lookups follow each program's own
	// instruction position.
	la, lb := float64(len(a)), float64(len(b))
	ia, ib, cycles := 0.0, 0.0, 0.0
	interval := float64(cfg.IntervalLen)
	phaseAt := func(sp *SimPoints, pos float64) int {
		k := int(pos / interval)
		if k >= len(sp.Assignments) {
			k = len(sp.Assignments) - 1
		}
		return sp.Assignments[k]
	}
	for ia < la && ib < lb {
		va := res.PairIPC[phaseAt(pa, ia)][phaseAt(pb, ib)][0]
		vb := res.PairIPC[phaseAt(pa, ia)][phaseAt(pb, ib)][1]
		if va <= 0 || vb <= 0 {
			return res, fmt.Errorf("cophase: non-positive cell IPC (%v, %v)", va, vb)
		}
		// Step to the nearest of: either program's next interval
		// boundary or its completion.
		da := math.Min(interval-math.Mod(ia, interval), la-ia)
		db := math.Min(interval-math.Mod(ib, interval), lb-ib)
		dt := math.Min(da/va, db/vb)
		ia += va * dt
		ib += vb * dt
		cycles += dt
	}
	res.WalkCycles = cycles
	if cycles > 0 {
		res.Predicted = [2]float64{ia / cycles, ib / cycles}
	}
	return res, nil
}

// coCell co-simulates the two representative intervals on the two-core
// machine and returns each program's IPC over its own finish time.
func coCell(a, b []isa.Inst, startA, startB int, cfg CoPhaseConfig) (float64, float64) {
	endA := startA + cfg.IntervalLen
	if endA > len(a) {
		endA = len(a)
	}
	endB := startB + cfg.IntervalLen
	if endB > len(b) {
		endB = len(b)
	}
	warmA := append(append([]isa.Inst(nil), cfg.WarmupA...), a[:startA]...)
	warmB := append(append([]isa.Inst(nil), cfg.WarmupB...), b[:startB]...)
	warmN := len(warmA)
	if len(warmB) > warmN {
		warmN = len(warmB)
	}
	runCfg := multicore.RunConfig{
		Machine: cfg.Machine,
		Model:   cfg.Model,
	}
	if warmN > 0 {
		runCfg.WarmupInsts = warmN
		runCfg.Warmup = []trace.Stream{
			trace.NewSliceStream(warmA),
			trace.NewSliceStream(warmB),
		}
	}
	res := multicore.Run(runCfg, []trace.Stream{
		trace.NewSliceStream(a[startA:endA]),
		trace.NewSliceStream(b[startB:endB]),
	})
	return res.Cores[0].IPC, res.Cores[1].IPC
}
