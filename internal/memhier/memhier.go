// Package memhier assembles the full memory hierarchy of the simulated
// machine: per-core L1 instruction/data caches and TLBs, a shared L2, the
// MOESI coherence protocol, and DRAM behind a finite-bandwidth bus. It is
// the "memory hierarchy simulator" box of the paper's framework (Figure 2).
//
// Both core timing models call the same two entry points — Inst for the
// I-side and Data for the D-side — and receive the *additional* latency of
// the access beyond an L1 hit, together with a classification. A
// long-latency result (last-level miss, coherence miss or D-TLB miss) is
// precisely the event class that ends an interval in the analytical model.
//
// Perfect-structure switches reproduce the step-by-step accuracy
// experiments of Figure 4, where selected structures are assumed to always
// hit so that one model component can be evaluated at a time.
package memhier

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/interconnect"
	"repro/internal/memory"
	"repro/internal/noc"
)

// Fabric is the on-chip interconnect between the private L1s and the
// shared L2/memory hub, as the hierarchy consumes it. The split-transaction
// bus (package interconnect) and the mesh and ring networks (package noc)
// all satisfy it.
type Fabric interface {
	// AccessFrom issues a request transaction from core at time now and
	// returns its latency (queueing + traversal).
	AccessFrom(core int, now int64) int64
	// Utilization returns the fabric's busy fraction up to now.
	Utilization(now int64) float64
	// TxCount returns the number of transactions issued.
	TxCount() uint64
	// StallCycles returns total cycles spent queueing.
	StallCycles() int64
	// ResetStats clears statistics and pending occupancy.
	ResetStats()
}

// Arbiter is the arbitration seam the host-parallel engine (package
// parsim) plugs into the hierarchy. The hierarchy brackets every touch of
// the globally shared structures — the L2, the coherence engine, the
// fabric and DRAM — between Enter and Exit; the private per-core
// structures (L1s, TLBs, MSHR, prefetcher tables) are never bracketed.
//
// Enter blocks until the calling core holds the exclusive right to commit
// at its current global-order point, so concurrent cores mutate the shared
// state in exactly the order the sequential driver would have produced.
// Sharing reports a cross-core effect (a remote-L1 invalidation) that the
// parallel engine cannot replay deterministically; the engine aborts the
// run and the caller falls back to the sequential driver.
//
// A nil arbiter (the default) is the sequential mode: no bracketing, no
// overhead beyond one nil check on the miss paths.
type Arbiter interface {
	Enter(core int)
	Exit(core int)
	Sharing()
}

// AccessStats are the hierarchy's access counters. They are kept per core
// (each core increments only its own slot, including under parallel
// stepping) and aggregated by Stats.
type AccessStats struct {
	// InstAccesses and DataAccesses count I-side and D-side accesses.
	InstAccesses uint64
	DataAccesses uint64
	// LongLatency counts long-latency events in the interval-model sense
	// (last-level miss, coherence miss, D-TLB miss).
	LongLatency uint64
	// Prefetches counts issued prefetches; PrefetchFills those that went
	// to DRAM.
	Prefetches    uint64
	PrefetchFills uint64
}

func (a *AccessStats) add(b AccessStats) {
	a.InstAccesses += b.InstAccesses
	a.DataAccesses += b.DataAccesses
	a.LongLatency += b.LongLatency
	a.Prefetches += b.Prefetches
	a.PrefetchFills += b.PrefetchFills
}

// Kind classifies where an access was satisfied.
type Kind uint8

const (
	// L1Hit: satisfied by the private L1 (no extra latency).
	L1Hit Kind = iota
	// L2Hit: L1 miss satisfied by the shared L2.
	L2Hit
	// CoherenceMiss: satisfied by a remote core's cache (MOESI
	// intervention). Counts as long-latency in the paper's model.
	CoherenceMiss
	// MemMiss: satisfied by main memory. Long-latency.
	MemMiss
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case CoherenceMiss:
		return "coherence"
	case MemMiss:
		return "mem"
	default:
		return "kind?"
	}
}

// Result describes one memory access.
type Result struct {
	// Latency is the additional latency in cycles beyond an L1 hit.
	// Zero for an L1 hit with a TLB hit.
	Latency int64
	// Kind says where the data came from.
	Kind Kind
	// TLBMiss is true when the access also missed the TLB (the page
	// walk latency is included in Latency).
	TLBMiss bool
	// Miss is true when the access missed the L1.
	Miss bool
}

// LongLatency reports whether the access is a long-latency event in the
// sense of the interval model: a last-level cache miss, a coherence miss,
// or a D-TLB miss.
func (r Result) LongLatency() bool {
	return r.Kind == MemMiss || r.Kind == CoherenceMiss || r.TLBMiss
}

// Perfect selects structures that always hit, for the Figure 4 step-by-step
// experiments.
type Perfect struct {
	// ISide makes the L1 I-cache and I-TLB always hit.
	ISide bool
	// DSide makes the L1 D-cache and D-TLB always hit.
	DSide bool
	// L2 makes the L2 always hit for D-side traffic and the D-TLB
	// always hit: L1D misses cost exactly the L2 access, never DRAM.
	L2 bool
}

type coreCaches struct {
	l1i    *cache.Cache
	l1d    *cache.Cache
	itlb   *cache.TLB
	dtlb   *cache.TLB
	mshr   *cache.MSHR
	stride *stridePrefetcher
}

// Hierarchy is the complete shared memory system for an N-core machine.
// It is not safe for unconstrained concurrent use: the sequential drivers
// call it from one goroutine, and the host-parallel engine may call it
// from one goroutine per core only under the Arbiter discipline (each
// core touches its own private structures; shared-structure sections are
// serialized through the arbiter in global commit order).
type Hierarchy struct {
	cfg     config.Memory
	perfect Perfect
	multi   bool // more than one core: coherence protocol active
	cores   []coreCaches
	l2      *cache.Cache
	coh     coherence.Engine
	fab     Fabric
	busOnly *interconnect.Bus // non-nil when the fabric is the bus
	dram    memory.MainMemory
	dirLat  int64 // home-node lookup cost; zero for snooping protocols
	arb     Arbiter

	// stats holds one counter block per core so parallel stepping never
	// races on a shared counter; totals are order-insensitive sums.
	stats []paddedStats
}

// paddedStats keeps each core's counters on their own cache line: the
// counters are bumped on every access (the hottest path), and under
// parallel stepping neighbouring cores must not false-share a line.
type paddedStats struct {
	AccessStats
	_ [3]uint64
}

// newProtocol selects the coherence engine by name, and returns the
// home-node lookup latency charged per protocol transaction (zero for the
// snooping protocols, whose lookup is the snoop broadcast already timed by
// the fabric).
func newProtocol(n int, cfg config.Memory) (coherence.Engine, int64) {
	switch cfg.Coherence {
	case "mesi":
		return coherence.NewMESI(n), 0
	case "directory":
		lat := int64(cfg.DirectoryLatency)
		if lat == 0 {
			lat = 6
		}
		return coherence.NewDirectory(n), lat
	default:
		return coherence.New(n), 0
	}
}

// newFabric selects the on-chip interconnect by name.
func newFabric(n int, cfg config.Memory) (Fabric, *interconnect.Bus) {
	hop := cfg.NoCHopLatency
	if hop <= 0 {
		hop = 1
	}
	occ := cfg.NoCOccupancy
	if occ <= 0 {
		occ = 1
	}
	switch cfg.Interconnect {
	case "mesh":
		return noc.NewMesh(n, hop, occ), nil
	case "ring":
		return noc.NewRing(n, hop, occ), nil
	default:
		b := interconnect.New(cfg.L2BusLatency, 1)
		return b, b
	}
}

// newMainMemory selects the main-memory model by name.
func newMainMemory(cfg config.Memory) memory.MainMemory {
	if cfg.DRAMKind != "banked" {
		return memory.NewDRAM(cfg.DRAMLatency, cfg.L2.LineSize, cfg.BusBytes)
	}
	banks := cfg.DRAMBanks
	if banks == 0 {
		banks = 8
	}
	rowBytes := uint64(cfg.DRAMRowBytes)
	if rowBytes == 0 {
		rowBytes = 2048
	}
	rowHit := cfg.DRAMRowHit
	if rowHit == 0 {
		rowHit = 90
	}
	rowMiss := cfg.DRAMRowMiss
	if rowMiss == 0 {
		rowMiss = 180
	}
	return memory.NewBanked(banks, rowBytes, rowHit, rowMiss, cfg.L2.LineSize, cfg.BusBytes)
}

// New builds the hierarchy for n cores under the given configuration.
func New(n int, cfg config.Memory, perfect Perfect) *Hierarchy {
	coh, dirLat := newProtocol(n, cfg)
	fab, busOnly := newFabric(n, cfg)
	h := &Hierarchy{
		cfg:     cfg,
		perfect: perfect,
		multi:   n > 1,
		cores:   make([]coreCaches, n),
		coh:     coh,
		fab:     fab,
		busOnly: busOnly,
		dram:    newMainMemory(cfg),
		dirLat:  dirLat,
		stats:   make([]paddedStats, n),
	}
	if cfg.HasL2 {
		h.l2 = cache.New(cfg.L2)
	}
	for i := range h.cores {
		h.cores[i] = coreCaches{
			l1i:  cache.New(cfg.L1I),
			l1d:  cache.New(cfg.L1D),
			itlb: cache.NewTLB(cfg.ITLB),
			dtlb: cache.NewTLB(cfg.DTLB),
			mshr: cache.NewMSHR(32),
		}
		if cfg.Prefetch == "stride" {
			h.cores[i].stride = newStridePrefetcher(cfg.PrefetchDegree)
		}
	}
	return h
}

// Config returns the memory configuration.
func (h *Hierarchy) Config() config.Memory { return h.cfg }

// SetArbiter installs the parallel-stepping arbitration seam (nil restores
// the sequential mode). Install it before simulation starts, never during.
func (h *Hierarchy) SetArbiter(a Arbiter) { h.arb = a }

// Stats returns the access counters summed over all cores.
func (h *Hierarchy) Stats() AccessStats {
	var out AccessStats
	for i := range h.stats {
		out.add(h.stats[i].AccessStats)
	}
	return out
}

// CoreStats returns core's own access counters.
func (h *Hierarchy) CoreStats(core int) AccessStats { return h.stats[core].AccessStats }

// DRAM exposes the main-memory model (for bandwidth statistics).
func (h *Hierarchy) DRAM() memory.MainMemory { return h.dram }

// Coherence exposes the protocol engine (for statistics and invariant
// checks).
func (h *Hierarchy) Coherence() coherence.Engine { return h.coh }

// Bus exposes the L1-to-L2 interconnect when the fabric is the baseline
// split-transaction bus, or nil for mesh/ring fabrics.
func (h *Hierarchy) Bus() *interconnect.Bus { return h.busOnly }

// Fabric exposes the on-chip interconnect (for statistics).
func (h *Hierarchy) Fabric() Fabric { return h.fab }

// L1D returns core's private data cache (for statistics).
func (h *Hierarchy) L1D(core int) *cache.Cache { return h.cores[core].l1d }

// L1I returns core's private instruction cache (for statistics).
func (h *Hierarchy) L1I(core int) *cache.Cache { return h.cores[core].l1i }

// L2 returns the shared cache, or nil when disabled.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// Inst performs an I-side access for core at pc at time now.
func (h *Hierarchy) Inst(core int, pc uint64, now int64) Result {
	h.stats[core].InstAccesses++
	if h.perfect.ISide {
		return Result{Kind: L1Hit}
	}
	c := &h.cores[core]
	var res Result
	if !c.itlb.Access(pc) {
		res.TLBMiss = true
		res.Latency += int64(h.cfg.ITLB.MissLatency)
	}
	if c.l1i.Access(pc, false) {
		res.Kind = L1Hit
		return res
	}
	res.Miss = true
	line := c.l1i.LineAddr(pc)
	if h.arb != nil {
		h.arb.Enter(core)
		h.instMiss(core, line, now, &res)
		h.arb.Exit(core)
	} else {
		h.instMiss(core, line, now, &res)
	}
	c.l1i.Fill(line, false)
	return res
}

// instMiss is the shared-structure section of an I-side L1 miss: the
// fabric transaction and the L2/DRAM access. Under parallel stepping it
// runs inside the arbiter bracket.
func (h *Hierarchy) instMiss(core int, line uint64, now int64, res *Result) {
	res.Latency += h.fab.AccessFrom(core, now)
	if h.fetchL2(line, now+res.Latency, res) {
		res.Kind = L2Hit
	} else {
		res.Kind = MemMiss
		h.stats[core].LongLatency++
	}
}

// Data performs a D-side access for core at addr at time now. write is
// true for stores.
func (h *Hierarchy) Data(core int, addr uint64, write bool, now int64) Result {
	h.stats[core].DataAccesses++
	if h.perfect.DSide {
		return Result{Kind: L1Hit}
	}
	c := &h.cores[core]
	var res Result
	if h.perfect.L2 {
		// D-TLB perfect under the perfect-L2 experiment.
	} else if !c.dtlb.Access(addr) {
		res.TLBMiss = true
		res.Latency += int64(h.cfg.DTLB.MissLatency)
	}
	line := c.l1d.LineAddr(addr)
	if c.stride != nil {
		// The stride table watches the whole access stream (hits keep
		// the stride confirmed), so a covered stream keeps the
		// prefetcher running ahead instead of retraining on every miss.
		if targets := c.stride.observe(line, h.cfg.L1D.LineSize); len(targets) > 0 {
			if h.arb != nil && !h.anyPrefetchNeeded(c, targets, now) {
				// All targets are already resident or pending — purely
				// private filters, so skip the ordering gate entirely.
			} else {
				if h.arb != nil {
					h.arb.Enter(core)
				}
				for _, target := range targets {
					h.prefetchLine(core, c, target, now)
				}
				if h.arb != nil {
					h.arb.Exit(core)
				}
			}
		}
	}
	if hit, wasDirty := c.l1d.AccessRW(addr, write); hit {
		// L1 hit. Reads never change protocol state; writes to an
		// already-dirty line are already Modified. Only clean write
		// hits on a multi-core machine need an upgrade.
		if write && !wasDirty && h.multi {
			if h.arb != nil {
				h.arb.Enter(core)
			}
			cres := h.coh.Write(core, line)
			if cres.Invalidations > 0 {
				res.Latency += int64(h.cfg.L2BusLatency) + h.dirLat
			}
			h.dropRemoteCopies(core, line, cres.Invalidations)
			if h.arb != nil {
				h.arb.Exit(core)
			}
		}
		res.Kind = L1Hit
		if res.TLBMiss {
			h.stats[core].LongLatency++
		}
		return res
	}
	res.Miss = true
	if h.arb != nil {
		h.arb.Enter(core)
		h.dataMiss(core, c, line, write, now, &res)
		h.arb.Exit(core)
	} else {
		h.dataMiss(core, c, line, write, now, &res)
	}
	return res
}

// dataMiss handles an L1D miss: MSHR merge, coherence transaction, fabric
// and L2/DRAM access, fill and next-line prefetch. Everything below the
// private L1 lives here, so under parallel stepping the whole section runs
// inside one arbiter bracket.
func (h *Hierarchy) dataMiss(core int, c *coreCaches, line uint64, write bool, now int64, res *Result) {
	// An outstanding miss on the same line means this access completes
	// with the primary miss.
	if completion, ok := c.mshr.Lookup(line, now); ok {
		residual := completion - now
		if residual < int64(h.cfg.L2.Latency) {
			residual = int64(h.cfg.L2.Latency)
		}
		res.Latency += residual
		res.Kind = L2Hit // merged: no new transaction below
		h.fillL1D(core, c, line, write)
		if res.TLBMiss {
			h.stats[core].LongLatency++
		}
		return
	}

	var cres coherence.Result
	if h.multi {
		if write {
			cres = h.coh.Write(core, line)
		} else {
			cres = h.coh.Read(core, line)
		}
		h.dropRemoteCopies(core, line, cres.Invalidations)
	} else {
		cres = coherence.Result{Source: coherence.SrcBelow}
	}

	res.Latency += h.fab.AccessFrom(core, now)
	if h.multi {
		// Directory protocols pay the home-node lookup on every miss
		// transaction; snooping protocols resolve on the broadcast the
		// fabric already timed (dirLat is zero for them).
		res.Latency += h.dirLat
	}
	switch {
	case cres.Source == coherence.SrcRemote:
		res.Latency += int64(h.cfg.CacheToCacheLatency)
		res.Kind = CoherenceMiss
		h.stats[core].LongLatency++
	case h.perfect.L2:
		res.Latency += int64(h.cfg.L2.Latency)
		res.Kind = L2Hit
	case h.fetchL2(line, now+res.Latency, res):
		res.Kind = L2Hit
		if res.TLBMiss {
			h.stats[core].LongLatency++
		}
	default:
		res.Kind = MemMiss
		h.stats[core].LongLatency++
	}
	c.mshr.Insert(line, now+res.Latency, now)
	h.fillL1D(core, c, line, write)
	if h.cfg.Prefetch == "nextline" {
		degree := h.cfg.PrefetchDegree
		if degree <= 0 {
			degree = 1
		}
		step := uint64(h.cfg.L1D.LineSize)
		for d := 1; d <= degree; d++ {
			h.prefetchLine(core, c, line+uint64(d)*step, now)
		}
	}
}

// prefetchNeeded is prefetchLine's private filter (L1 presence, MSHR
// pendings) — one definition shared by the issue path and the gate-skip
// predicate, so the two can never drift apart.
func prefetchNeeded(c *coreCaches, line uint64, now int64) bool {
	if c.l1d.Probe(line) {
		return false
	}
	if _, pending := c.mshr.Lookup(line, now); pending {
		return false
	}
	return true
}

// anyPrefetchNeeded applies prefetchNeeded to the targets; when none
// survives, the caller can skip the global ordering gate.
func (h *Hierarchy) anyPrefetchNeeded(c *coreCaches, targets []uint64, now int64) bool {
	for _, line := range targets {
		if prefetchNeeded(c, line, now) {
			return true
		}
	}
	return false
}

// prefetchLine issues one prefetch of line into core's L1D after a demand
// miss. Prefetches run off the critical path: they occupy the fabric and
// DRAM bandwidth but add no latency to the demand access.
func (h *Hierarchy) prefetchLine(core int, c *coreCaches, line uint64, now int64) {
	if !prefetchNeeded(c, line, now) {
		return
	}
	h.stats[core].Prefetches++
	if h.multi {
		h.coh.Read(core, line)
	}
	var res Result
	t := h.fab.AccessFrom(core, now)
	if !h.fetchL2(line, now+t, &res) {
		// L2 miss: fetchL2 already charged DRAM bandwidth.
		h.stats[core].PrefetchFills++
	}
	c.mshr.Insert(line, now+t+res.Latency, now)
	h.fillL1D(core, c, line, false)
}

// fetchL2 accesses the shared L2 for line at time t, adding latency to res.
// It returns true on an L2 hit; on a miss (or with the L2 disabled) it also
// performs the DRAM access and, when present, the L2 fill.
func (h *Hierarchy) fetchL2(line uint64, t int64, res *Result) bool {
	if h.l2 == nil {
		res.Latency += h.dram.AccessLine(line, t)
		return false
	}
	res.Latency += int64(h.cfg.L2.Latency)
	if h.l2.Access(line, false) {
		return true
	}
	res.Latency += h.dram.AccessLine(line, t+int64(h.cfg.L2.Latency))
	victim := h.l2.Fill(line, false)
	if victim.Valid && victim.Dirty {
		// Dirty L2 writeback occupies the memory bus but is off the
		// critical path of the demand access.
		h.dram.AccessLine(victim.Addr, t)
	}
	return false
}

// fillL1D installs line in core's L1D, propagating the eviction to the
// coherence protocol and writing dirty victims to the L2.
func (h *Hierarchy) fillL1D(core int, c *coreCaches, line uint64, write bool) {
	victim := c.l1d.Fill(line, write)
	if !victim.Valid {
		return
	}
	wb := victim.Dirty
	if h.multi && h.coh.Evict(core, victim.Addr) {
		wb = true
	}
	if wb {
		if h.l2 != nil {
			h.l2.Fill(victim.Addr, true)
		}
		// Without an L2 the writeback goes to DRAM; its bus occupancy
		// is folded into demand traffic statistics only.
	}
}

// dropRemoteCopies invalidates the line in every other core's L1D after the
// protocol reported invalidations, keeping structural caches consistent
// with protocol state.
func (h *Hierarchy) dropRemoteCopies(core int, line uint64, invalidations int) {
	if invalidations == 0 {
		return
	}
	if h.arb != nil {
		// A remote-L1 invalidation cannot be applied while the remote
		// core steps concurrently (it may already have raced past this
		// commit point). Flag the sharing violation — the parallel
		// engine aborts and the run is redone sequentially — and leave
		// the remote L1s alone; the aborted run's state is discarded.
		h.arb.Sharing()
		return
	}
	for i := range h.cores {
		if i == core {
			continue
		}
		h.cores[i].l1d.Invalidate(line)
	}
}

// ResetStats clears all statistics counters in the hierarchy (caches, TLBs,
// DRAM, coherence) without touching contents. Called after functional
// warmup so measurements exclude cold-start misses.
func (h *Hierarchy) ResetStats() {
	for i := range h.cores {
		c := &h.cores[i]
		c.l1i.ResetStats()
		c.l1d.ResetStats()
		c.itlb.ResetStats()
		c.dtlb.ResetStats()
	}
	if h.l2 != nil {
		h.l2.ResetStats()
	}
	h.fab.ResetStats()
	h.dram.ResetStats()
	h.coh.ResetStats()
	for i := range h.stats {
		h.stats[i].AccessStats = AccessStats{}
	}
}
