package simrun

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/trace"
)

func fp(t *testing.T, bench string, opts ...Option) string {
	t.Helper()
	s, err := New(bench, opts...)
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fp(t, "gcc", Cores(2), Insts(5000), Fabric("mesh"))
	b := fp(t, "gcc", Cores(2), Insts(5000), Fabric("mesh"))
	if a != b {
		t.Fatalf("same scenario, different fingerprints: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint is not a sha256 hex: %q", a)
	}
}

// The fingerprint addresses content, not spelling: scenarios that
// simulate identically share a key however they were written down.
func TestFingerprintSpellingInvariance(t *testing.T) {
	// Defaulted seed vs the same seed made explicit.
	if a, b := fp(t, "gcc"), fp(t, "gcc", Seed(42)); a != b {
		t.Errorf("explicit default seed changed the fingerprint")
	}
	// Copies(2) and Cores(2) build identical SPEC multi-program runs.
	if a, b := fp(t, "gcc", Copies(2)), fp(t, "gcc", Cores(2)); a != b {
		t.Errorf("Copies(2) and Cores(2) fingerprints differ")
	}
	// An explicit Table 1 machine vs the implicit default.
	if a, b := fp(t, "gcc", Machine(config.Default(1))), fp(t, "gcc"); a != b {
		t.Errorf("explicit default machine changed the fingerprint")
	}
	// The display label is presentation, not content.
	if a, b := fp(t, "gcc", Label("point-7")), fp(t, "gcc"); a != b {
		t.Errorf("label changed the fingerprint")
	}
}

// Every simulated-semantics knob must perturb the key: a collision here
// would let the cache serve a wrong result.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() []Option {
		return []Option{Cores(2), Insts(5000), Warmup(1000)}
	}
	variants := map[string]func() (string, []Option){
		"base":      func() (string, []Option) { return "gcc", base() },
		"bench":     func() (string, []Option) { return "mcf", base() },
		"model":     func() (string, []Option) { return "gcc", append(base(), Model("oneipc")) },
		"cores":     func() (string, []Option) { return "gcc", []Option{Cores(4), Insts(5000), Warmup(1000)} },
		"insts":     func() (string, []Option) { return "gcc", []Option{Cores(2), Insts(6000), Warmup(1000)} },
		"warmup":    func() (string, []Option) { return "gcc", []Option{Cores(2), Insts(5000), Warmup(2000)} },
		"seed":      func() (string, []Option) { return "gcc", append(base(), Seed(7)) },
		"fabric":    func() (string, []Option) { return "gcc", append(base(), Fabric("ring")) },
		"coherence": func() (string, []Option) { return "gcc", append(base(), Coherence("directory")) },
		"dram":      func() (string, []Option) { return "gcc", append(base(), DRAM("banked")) },
		"prefetch":  func() (string, []Option) { return "gcc", append(base(), Prefetch("stride")) },
		"predictor": func() (string, []Option) { return "gcc", append(base(), Predictor("tage")) },
		"maxcycles": func() (string, []Option) { return "gcc", append(base(), MaxCycles(1<<20)) },
		"keepcores": func() (string, []Option) { return "gcc", append(base(), KeepCores()) },
		"perfect":   func() (string, []Option) { return "gcc", append(base(), Perfect(memhier.Perfect{ISide: true})) },
		"ablation":  func() (string, []Option) { return "gcc", append(base(), Ablation(core.Options{NoTaint: true})) },
		"mix":       func() (string, []Option) { return "", append(base(), Mix("gcc", "mcf")) },
		"machine": func() (string, []Option) {
			m := config.Default(2)
			m.Core.ROBSize = 128
			return "gcc", append(base(), Machine(m))
		},
		"configure": func() (string, []Option) {
			return "gcc", append(base(), Configure(func(m *config.Machine) { m.Mem.L2.SizeBytes = 1 << 20 }))
		},
	}
	seen := map[string]string{}
	for name, build := range variants {
		bench, opts := build()
		key := fp(t, bench, opts...)
		if prev, dup := seen[key]; dup {
			t.Errorf("fingerprint collision between %q and %q", name, prev)
		}
		seen[key] = name
	}
}

// PARSEC work scaling changes the simulated workload.
func TestFingerprintWorkScale(t *testing.T) {
	a := fp(t, "blackscholes", Cores(2), WorkScale(0.5))
	b := fp(t, "blackscholes", Cores(2))
	if a == b {
		t.Fatalf("WorkScale did not change the fingerprint")
	}
}

func TestFingerprintStreamsUnsupported(t *testing.T) {
	stream := trace.NewSliceStream(make([]isa.Inst, 16))
	s, err := New("", Streams([]trace.Stream{stream}, nil), Label("recorded"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fingerprint(); err == nil {
		t.Fatal("explicit-streams scenario produced a fingerprint")
	}
}
