package workload

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// streamHash is FNV-64a over the formatted instructions, the same
// digest the statsim and sampling goldens use.
func streamHash(p *Profile, seed int64, slot int, n int) uint64 {
	g := NewSlot(p, 0, 1, seed, slot)
	h := fnv.New64a()
	for i := 0; i < n; i++ {
		in, ok := g.Next()
		if !ok {
			break
		}
		fmt.Fprintf(h, "%+v|", in)
	}
	return h.Sum64()
}

// TestStreamGoldensV3 pins the exact v3 byte stream per (profile, seed,
// slot). These constants define stream format v3: any change to the
// counter-lane layout, the alias tables, or the chunk-reset schedule
// shows up here and requires a StreamVersion bump, not a golden edit.
func TestStreamGoldensV3(t *testing.T) {
	if StreamVersion != 3 {
		t.Fatalf("goldens pin stream format v3, StreamVersion = %d", StreamVersion)
	}
	const n = 30_000
	for _, tc := range []struct {
		profile string
		parsec  bool
		seed    int64
		slot    int
		want    uint64
	}{
		{profile: "gcc", seed: 42, slot: 0, want: 0x53305fdd2d531589},
		{profile: "gcc", seed: 42, slot: 7, want: 0xf4f37e9f195c674f},
		{profile: "gcc", seed: 1337, slot: 0, want: 0x23c5039c75571fdd},
		{profile: "mcf", seed: 42, slot: 0, want: 0xfbb6fda408c97517},
		{profile: "swim", seed: 42, slot: 0, want: 0x86f798af1c8fda3f},
		{profile: "art", seed: 7, slot: 3, want: 0xf28c4cd8ad9aadba},
		{profile: "equake", seed: 42, slot: 0, want: 0x210be3904ed32271},
		{profile: "blackscholes", parsec: true, seed: 42, slot: 0, want: 0x8491ecd2b80283a5},
		{profile: "streamcluster", parsec: true, seed: 42, slot: 0, want: 0xff579b1d5a7521cb},
	} {
		var p *Profile
		if tc.parsec {
			p = PARSECByName(tc.profile)
		} else {
			p = SPECByName(tc.profile)
		}
		got := streamHash(p, tc.seed, tc.slot, n)
		if got != tc.want {
			t.Errorf("%s seed=%d slot=%d: stream hash %#x, golden %#x",
				tc.profile, tc.seed, tc.slot, got, tc.want)
		}
	}
}
