// Package simd turns the simrun library into a long-running
// simulation-as-a-service: an HTTP JSON API over a bounded job queue, a
// host worker pool, and the simrun content-addressed result cache, so
// repeated scenario queries cost one simulation instead of N.
//
// Interval simulation is fast enough (seconds per scenario) that online,
// interactive design-space exploration through a service front end is
// practical — the paper's "cull a large design space quickly" workflow as
// an API instead of a batch job.
//
// Endpoints:
//
//	POST /v1/jobs            submit a simrun.Spec; 202 + job doc (200 if deduplicated)
//	GET  /v1/jobs            list job ids and statuses
//	GET  /v1/jobs/{id}       job status/result document
//	GET  /v1/jobs/{id}/events  SSE stream of job-status transitions and progress heartbeats
//	GET  /v1/jobs/{id}/trace   the job's recorded lifecycle spans (queue, engine runs, upgrade)
//	GET  /v1/catalog         registered models, knob sets, benchmark profiles
//	GET  /healthz            liveness (503 while draining)
//	GET  /metrics            Prometheus text exposition (server registry merged with obs.Default)
//
// Jobs are content-addressed: the job ID derives from the scenario
// fingerprint, so two identical submissions share one job, and the
// result cache guarantees the simulator runs the scenario exactly once.
package simd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/simrun"
)

// Config sizes the service.
type Config struct {
	// Workers is the host worker-pool size (<=0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (<=0 selects 64). A full queue rejects submissions with 429.
	QueueDepth int
	// MaxJobs bounds the job table (<=0 selects 1024): once exceeded,
	// the oldest finished jobs are evicted, so a long-running server's
	// memory stays bounded. Evicted jobs 404 on lookup, but their
	// results remain available through the cache: resubmitting the
	// same spec is a cache hit, not a re-simulation.
	MaxJobs int
	// Cache is the shared result cache; nil builds a default in-memory
	// cache with the report.JSON encoder.
	Cache *simrun.Cache
	// TieredServing answers fresh submissions from the cheapest
	// registered engine that supports the scenario (sub-second
	// statistical estimates for scenarios whose full run takes tens of
	// seconds), then runs the full simulation in the background and
	// upgrades the job document and cache entry in place when it lands.
	// Off by default: every job then runs its spec's engine directly.
	// Specs that pin an engine explicitly are always honored verbatim,
	// tiered or not. Build the cache with DecodeTier so a restart never
	// serves a persisted estimate as definitive.
	TieredServing bool
	// Pprof mounts net/http/pprof's handlers under /debug/pprof/ on the
	// service handler. Off by default: profiling endpoints expose host
	// internals and cost nothing when unmounted.
	Pprof bool
	// DisableJobTraces turns off the per-job span tracer (the
	// GET /v1/jobs/{id}/trace payload). Tracing is on by default — the
	// ring is bounded and costs microseconds per job — but a node run
	// purely as cache frontend can shed even that; the trace endpoint
	// then answers 404 with a hint naming the -job-trace flag.
	DisableJobTraces bool
	// Fleet, when set, routes every job through the coordinator instead
	// of the local cache: dispatch to HTTP-registered workers with
	// leases, retries and reassignment, degrading to a local run when
	// the fleet is empty. Build the coordinator over the same Cache so
	// results land in one content-addressed store either way. Fleet and
	// TieredServing are mutually exclusive (tiering is a single-node
	// serving feature); Fleet wins if both are set.
	Fleet *fleet.Coordinator
}

// Server is the service state: job table, bounded queue, worker pool and
// result cache. Create with New, serve via Handler, stop with Drain.
type Server struct {
	cache   *simrun.Cache
	queue   chan *Job
	workers int
	maxJobs int
	tiered  bool
	pprof   bool
	noTrace bool
	fleet   *fleet.Coordinator
	reg     *obs.Registry

	// runCtx gates in-flight simulations: Drain cancels it only when
	// its own context expires, turning a graceful drain into a hard
	// stop.
	runCtx    context.Context
	runCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID
	byFP     map[string]*Job // fingerprint -> live (non-failed) job
	order    []string        // job IDs in submission order
	draining bool

	wg sync.WaitGroup

	submitted atomic.Uint64 // accepted jobs (new scenarios)
	deduped   atomic.Uint64 // submissions that joined an existing job
	rejected  atomic.Uint64 // queue-full rejections
	completed atomic.Uint64
	failed    atomic.Uint64
	fast      atomic.Uint64 // jobs answered below full fidelity
	upgraded  atomic.Uint64 // background upgrades that landed
}

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cache := cfg.Cache
	if cache == nil {
		var err error
		cache, err = simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
		if err != nil {
			return nil, err
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cache:     cache,
		queue:     make(chan *Job, depth),
		workers:   workers,
		maxJobs:   maxJobs,
		tiered:    cfg.TieredServing && cfg.Fleet == nil,
		pprof:     cfg.Pprof,
		noTrace:   cfg.DisableJobTraces,
		fleet:     cfg.Fleet,
		reg:       obs.NewRegistry(),
		runCtx:    ctx,
		runCancel: cancel,
		jobs:      map[string]*Job{},
		byFP:      map[string]*Job{},
	}
	s.registerMetrics()
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s, nil
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.process(job)
	}
}

// process runs one job through the cache and publishes the outcome.
// Under tiered serving, jobs that did not pin an engine are answered from
// the cheapest supporting tier first, with the full run upgrading the job
// and cache entry in the background.
func (s *Server) process(job *Job) {
	job.pickup()
	job.setStatus(StatusRunning, "", "", nil, "")
	if s.fleet != nil {
		s.processFleet(job)
		return
	}
	if s.tiered && !job.scenario.EnginePinned() && s.processTiered(job) {
		return
	}
	entry, err := s.cache.GetOrRun(s.runCtx, job.scenario)
	if err != nil {
		s.failed.Add(1)
		s.mu.Lock()
		if s.byFP[job.fingerprint] == job {
			delete(s.byFP, job.fingerprint)
		}
		s.mu.Unlock()
		job.setStatus(StatusFailed, entry.Source, entry.Tier, nil, err.Error())
		return
	}
	s.completed.Add(1)
	job.setStatus(StatusDone, entry.Source, entry.Tier, entry.Payload, "")
}

// processFleet routes the job through the coordinator: dispatch to a
// registered worker under a lease, retrying and reassigning on failure,
// or a local run when the fleet is empty. Every dispatch event lands on
// the job document (worker, attempt) so the SSE stream shows the job
// hopping workers during a chaos event.
func (s *Server) processFleet(job *Job) {
	entry, err := s.fleet.Run(s.runCtx, job.scenario, fleet.RunOpts{
		Spec:   job.spec,
		Tracer: job.tracer,
		OnDispatch: func(d fleet.Dispatch) {
			job.setDispatch(d.Worker, d.Attempt, d.Event)
		},
	})
	if err != nil {
		s.failed.Add(1)
		s.mu.Lock()
		if s.byFP[job.fingerprint] == job {
			delete(s.byFP, job.fingerprint)
		}
		s.mu.Unlock()
		job.setStatus(StatusFailed, entry.Source, entry.Tier, nil, err.Error())
		return
	}
	s.completed.Add(1)
	job.setStatus(StatusDone, entry.Source, entry.Tier, entry.Payload, "")
}

// processTiered answers the job from the cheapest supporting engine and
// schedules the background upgrade. It reports false when there is no
// cheaper tier (or the estimate failed), in which case the caller falls
// back to the ordinary full-fidelity path.
func (s *Server) processTiered(job *Job) bool {
	cheap := simrun.CheapestEngineFor(job.scenario)
	if cheap.Name == simrun.DefaultEngine {
		return false
	}
	est, err := job.scenario.ForEngine(cheap.Name)
	if err != nil {
		return false
	}
	entry, err := s.cache.GetOrRun(s.runCtx, est)
	if err != nil {
		return false
	}
	if entry.Tier.AtLeast(job.scenario.AnswerTier()) {
		// The one cache slot already held a full-fidelity answer — the
		// cheap request was satisfied at the higher tier, nothing to
		// upgrade.
		s.completed.Add(1)
		job.setStatus(StatusDone, entry.Source, entry.Tier, entry.Payload, "")
		return true
	}
	// Publish the estimate now; upgrade the same job (and the same
	// cache slot — the fingerprint is tier-independent) when the full
	// run lands. The upgrade goroutine joins the worker WaitGroup so
	// Drain waits for in-flight upgrades, and runCtx still hard-stops
	// them when the drain deadline expires.
	job.markUpgradePending()
	s.fast.Add(1)
	s.completed.Add(1)
	job.setStatus(StatusDone, entry.Source, entry.Tier, entry.Payload, "")
	s.wg.Add(1)
	go s.upgradeJob(job)
	return true
}

// upgradeJob runs the job's scenario at full fidelity and settles the
// pending upgrade: the cache entry was already upgraded in place by
// GetOrRun's store, and the job document follows here.
func (s *Server) upgradeJob(job *Job) {
	defer s.wg.Done()
	entry, err := s.cache.GetOrRun(s.runCtx, job.scenario)
	// The "upgrade" span covers only the settle: the full run itself is
	// already traced as its own engine span, so the job's trace reads
	// queue → engine:<cheap> → engine:full → upgrade.
	sp := job.tracer.Start("upgrade")
	defer sp.End()
	if err != nil {
		job.settle("", "", nil)
		return
	}
	s.upgraded.Add(1)
	job.settle(entry.Source, entry.Tier, entry.Payload)
}

// SubmitSpec validates and enqueues a scenario spec. The bool reports
// whether the submission was deduplicated onto an existing job.
func (s *Server) SubmitSpec(spec simrun.Spec) (*Job, bool, error) {
	sc, err := spec.Scenario()
	if err != nil {
		return nil, false, &BadRequestError{Err: err}
	}
	fp, err := sc.Fingerprint()
	if err != nil {
		return nil, false, &BadRequestError{Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if job, ok := s.byFP[fp]; ok {
		s.deduped.Add(1)
		return job, true, nil
	}
	if s.draining {
		return nil, false, ErrDraining
	}
	// Failed attempts keep their job documents, so retries need fresh
	// IDs: suffix the content address with the attempt number.
	id := "j-" + fp[:16]
	for attempt := 2; ; attempt++ {
		if _, taken := s.jobs[id]; !taken {
			break
		}
		id = fmt.Sprintf("j-%s.%d", fp[:16], attempt)
	}
	job := newJob(id, fp, spec, sc, !s.noTrace)
	select {
	case s.queue <- job:
	default:
		s.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = job
	s.byFP[fp] = job
	s.order = append(s.order, id)
	s.submitted.Add(1)
	s.evictLocked()
	return job, false, nil
}

// evictLocked drops the oldest finished jobs until the table is back
// under maxJobs. Live jobs (queued/running) are never evicted — the
// queue bound keeps their number finite. Called with s.mu held.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.maxJobs {
		return
	}
	var kept []string
	for _, id := range s.order {
		job := s.jobs[id]
		if len(s.jobs) > s.maxJobs && job.Doc().Status.terminal() {
			delete(s.jobs, id)
			if s.byFP[job.fingerprint] == job {
				delete(s.byFP, job.fingerprint)
			}
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Jobs snapshots every job document in submission order.
func (s *Server) Jobs() []JobDoc {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	docs := make([]JobDoc, len(jobs))
	for i, j := range jobs {
		docs[i] = j.Doc()
	}
	return docs
}

// Drain stops accepting submissions, lets the workers finish every
// queued and in-flight job, and returns nil once the pool is idle. If
// ctx expires first, in-flight simulations are interrupted (they record
// partial results and fail their jobs) and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.runCancel()
		<-idle
		return ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueLen is the number of jobs waiting for a worker.
func (s *Server) QueueLen() int { return len(s.queue) }

// CacheStats exposes the result-cache counters.
func (s *Server) CacheStats() simrun.CacheStats { return s.cache.Stats() }

// BadRequestError marks a submission the client got wrong (invalid spec);
// the HTTP layer maps it to 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// ErrQueueFull rejects submissions when the bounded queue is at depth.
var ErrQueueFull = fmt.Errorf("simd: job queue full")

// ErrDraining rejects submissions during shutdown.
var ErrDraining = fmt.Errorf("simd: server is draining")
