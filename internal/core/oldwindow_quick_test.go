package core

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

// randInst materializes a plausible instruction from fuzz bytes.
func randInst(b [4]uint8) *isa.Inst {
	classes := []isa.Class{isa.IntALU, isa.IntMul, isa.FPOp, isa.Load, isa.Branch}
	in := &isa.Inst{
		Class: classes[int(b[0])%len(classes)],
		Src1:  isa.RegNone,
		Src2:  isa.RegNone,
		Dst:   isa.RegNone,
	}
	if b[1]%4 != 0 {
		in.Src1 = 8 + b[1]%32
	}
	if b[2]%4 == 0 {
		in.Src2 = 8 + b[2]%32
	}
	if in.Class != isa.Branch {
		in.Dst = 8 + b[3]%32
	}
	return in
}

// Property: the critical-path estimate never decreases as instructions
// are inserted (head time only grows on evictions, tail time is a max),
// and is always at least one cycle.
func TestOldWindowCriticalPathMonotonic(t *testing.T) {
	f := func(seq [64][4]uint8) bool {
		w := NewOldWindow(config.Default(1).Core)
		prev := int64(0)
		for i, b := range seq {
			w.Insert(randInst(b), 0, int64(i/4))
			cp := w.CriticalPath()
			if cp < 1 {
				return false
			}
			// Within capacity (no evictions yet), tail-head can only
			// grow or stay.
			if w.Len() < 256 && cp < prev {
				return false
			}
			prev = cp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the effective dispatch rate is always in (0, width].
func TestOldWindowDispatchRateBounded(t *testing.T) {
	cfg := config.Default(1).Core
	f := func(seq [128][4]uint8) bool {
		w := NewOldWindow(cfg)
		for i, b := range seq {
			w.Insert(randInst(b), 0, int64(i/4))
			r := w.DispatchRate()
			if r <= 0 || r > float64(cfg.DecodeWidth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shift(a) then Shift(b) equals Shift(a+b) for the observable
// quantities (drain time, dispatch rate, branch resolution).
func TestOldWindowShiftComposes(t *testing.T) {
	cfg := config.Default(1).Core
	f := func(seq [48][4]uint8, aRaw, bRaw uint8) bool {
		a, b := int64(aRaw%60), int64(bRaw%60)
		mk := func() *OldWindow {
			w := NewOldWindow(cfg)
			for i, bb := range seq {
				w.Insert(randInst(bb), 0, int64(i/4))
			}
			return w
		}
		two := mk()
		two.Shift(a)
		two.Shift(b)
		one := mk()
		one.Shift(a + b)
		br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone, Dst: isa.RegNone}
		return two.DrainTime(0) == one.DrainTime(0) &&
			two.DispatchRate() == one.DispatchRate() &&
			two.BranchResolution(br, 0) == one.BranchResolution(br, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shift(0) and Shift of a negative value are no-ops.
func TestOldWindowShiftZeroNoop(t *testing.T) {
	cfg := config.Default(1).Core
	f := func(seq [32][4]uint8) bool {
		w := NewOldWindow(cfg)
		for i, b := range seq {
			w.Insert(randInst(b), 0, int64(i/4))
		}
		before := w.CriticalPath()
		w.Shift(0)
		w.Shift(-5)
		return w.CriticalPath() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Empty, the window reports the no-history defaults
// regardless of prior contents.
func TestOldWindowEmptyResets(t *testing.T) {
	cfg := config.Default(1).Core
	f := func(seq [32][4]uint8) bool {
		w := NewOldWindow(cfg)
		for i, b := range seq {
			w.Insert(randInst(b), 0, int64(i/4))
		}
		w.Empty()
		br := &isa.Inst{Class: isa.Branch, Src1: 10, Src2: isa.RegNone, Dst: isa.RegNone}
		return w.Len() == 0 &&
			w.DispatchRate() == float64(cfg.DecodeWidth) &&
			w.DrainTime(0) == 1 &&
			w.BranchResolution(br, 0) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
