package sampling

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestCoPhaseRejectsNonDualMachines(t *testing.T) {
	a := phasedStream("gcc", "swim", 1000, 2)
	_, err := CoPhaseEstimate(a, a, CoPhaseConfig{
		IntervalLen: 1000, K: 2, Machine: config.Default(1), Model: multicore.Interval,
	})
	if err == nil {
		t.Fatal("single-core machine accepted")
	}
}

func TestCoPhaseMatrixShape(t *testing.T) {
	a := phasedStream("gcc", "swim", 2000, 8)
	b := phasedStream("mcf", "gcc", 2000, 8)
	res, err := CoPhaseEstimate(a, b, CoPhaseConfig{
		IntervalLen: 2000, K: 2, Seed: 9,
		Machine: config.Default(2), Model: multicore.Interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PairIPC) != res.PhasesA.K {
		t.Fatalf("matrix rows %d, want %d", len(res.PairIPC), res.PhasesA.K)
	}
	if res.MatrixRuns != res.PhasesA.K*res.PhasesB.K {
		t.Fatalf("matrix runs %d, want %d", res.MatrixRuns, res.PhasesA.K*res.PhasesB.K)
	}
	for i := range res.PairIPC {
		for j := range res.PairIPC[i] {
			if res.PairIPC[i][j][0] <= 0 || res.PairIPC[i][j][1] <= 0 {
				t.Fatalf("cell (%d,%d) has non-positive IPCs: %v", i, j, res.PairIPC[i][j])
			}
		}
	}
	if res.Predicted[0] <= 0 || res.Predicted[1] <= 0 || res.WalkCycles <= 0 {
		t.Fatalf("bad prediction: %+v", res.Predicted)
	}
}

// TestCoPhaseTracksActualCoRun is the payoff property: the matrix
// prediction lands near the IPCs of actually co-simulating the two full
// programs on the two-core machine.
func TestCoPhaseTracksActualCoRun(t *testing.T) {
	const segLen = 4000
	const initSegs = 2
	// The first two segments are initialization, excluded from both
	// sides (the actual run warms with them; the matrix cells warm with
	// their in-stream prefixes) so cold-start does not dominate either.
	allA := phasedStream("gcc", "swim", segLen, 10+initSegs)
	allB := phasedStream("mcf", "gcc", segLen, 10+initSegs)
	initA, a := allA[:initSegs*segLen], allA[initSegs*segLen:]
	initB, b := allB[:initSegs*segLen], allB[initSegs*segLen:]
	m := config.Default(2)

	res, err := CoPhaseEstimate(a, b, CoPhaseConfig{
		IntervalLen: segLen, K: 2, Seed: 9, Machine: m, Model: multicore.Interval,
		WarmupA: initA, WarmupB: initB,
	})
	if err != nil {
		t.Fatal(err)
	}

	actual := multicore.Run(multicore.RunConfig{
		Machine: m, Model: multicore.Interval,
		WarmupInsts: initSegs * segLen,
		Warmup: []trace.Stream{
			trace.NewSliceStream(initA),
			trace.NewSliceStream(initB),
		},
	}, []trace.Stream{trace.NewSliceStream(a), trace.NewSliceStream(b)})

	for k := 0; k < 2; k++ {
		act := actual.Cores[k].IPC
		pred := res.Predicted[k]
		relErr := math.Abs(pred-act) / act
		t.Logf("program %d: actual co-run IPC %.3f, co-phase prediction %.3f (err %.1f%%)",
			k, act, pred, 100*relErr)
		if relErr > 0.25 {
			t.Errorf("program %d: co-phase prediction off by %.1f%%", k, 100*relErr)
		}
	}
	t.Logf("matrix cells simulated: %d x %d-instruction intervals vs %d+%d full instructions",
		res.MatrixRuns, segLen, len(a), len(b))
}

// TestCoPhaseContentionVisible: a program co-running with a memory hog
// must predict lower IPC than the same program co-running with an
// L1-resident partner — the matrix must capture shared-resource conflict.
func TestCoPhaseContentionVisible(t *testing.T) {
	const segLen = 4000
	victim := trace.Record(workload.New(workload.SPECByName("gcc"), 0, 1, 42), 4*segLen)
	hog := trace.Record(workload.New(workload.SPECByName("swim"), 0, 1, 43), 4*segLen)
	gentle := trace.Record(workload.New(workload.SPECByName("crafty"), 0, 1, 44), 4*segLen)
	m := config.Default(2)

	withHog, err := CoPhaseEstimate(victim, hog, CoPhaseConfig{
		IntervalLen: segLen, K: 2, Seed: 9, Machine: m, Model: multicore.Interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	withGentle, err := CoPhaseEstimate(victim, gentle, CoPhaseConfig{
		IntervalLen: segLen, K: 2, Seed: 9, Machine: m, Model: multicore.Interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withHog.Predicted[0] >= withGentle.Predicted[0] {
		t.Fatalf("victim IPC with memory hog (%.3f) not lower than with gentle partner (%.3f)",
			withHog.Predicted[0], withGentle.Predicted[0])
	}
}
