package simrun

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newMemCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(CacheOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCachePutLookupUpgradeOnly(t *testing.T) {
	c := newMemCache(t)
	key := "abc123"

	if _, ok := c.Lookup(key, TierStatistical); ok {
		t.Fatal("lookup hit on an empty cache")
	}
	if c.Put("", []byte("x"), TierStatistical) {
		t.Error("Put accepted an empty key")
	}
	if c.Put(key, nil, TierStatistical) {
		t.Error("Put accepted a nil payload")
	}

	if !c.Put(key, []byte("estimate"), TierStatistical) {
		t.Fatal("first Put refused")
	}
	if entry, ok := c.Lookup(key, TierStatistical); !ok || string(entry.Payload) != "estimate" {
		t.Fatalf("statistical lookup = (%+v, %v)", entry, ok)
	}
	// A higher-fidelity request must not be served the estimate.
	if _, ok := c.Lookup(key, TierInterval); ok {
		t.Fatal("interval request answered from a statistical entry")
	}

	// Duplicate completion: the same (or any same-tier) payload arriving
	// again dedupes — refused by the upgrade-only store, no conflict.
	if c.Put(key, []byte("estimate"), TierStatistical) {
		t.Error("duplicate same-tier Put was accepted")
	}

	// The upgrade path: a higher tier replaces the slot in place...
	if !c.Put(key, []byte("definitive"), TierInterval) {
		t.Fatal("tier upgrade refused")
	}
	if entry, ok := c.Lookup(key, TierInterval); !ok || string(entry.Payload) != "definitive" {
		t.Fatalf("post-upgrade lookup = (%+v, %v)", entry, ok)
	}
	// ...and a late lower-tier arrival never downgrades it back.
	if c.Put(key, []byte("stale estimate"), TierStatistical) {
		t.Error("downgrade Put was accepted")
	}
	if entry, _ := c.Lookup(key, TierStatistical); string(entry.Payload) != "definitive" {
		t.Errorf("entry payload = %q, want the definitive answer to survive", entry.Payload)
	}
}

// corruptTestCache builds a disk-backed cache with a trivial encoder.
func corruptTestCache(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := NewCache(CacheOpts{
		Dir:    dir,
		Encode: func(Result) ([]byte, error) { return []byte("payload"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheQuarantinesCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	key := "deadbeef"
	writer := corruptTestCache(t, dir)
	if !writer.Put(key, []byte(`{"cycles":1}`), "") {
		t.Fatal("Put refused")
	}
	path := filepath.Join(dir, key+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "#simcache-sha256:") {
		t.Fatalf("persisted file lacks the integrity footer: %q", raw)
	}

	// Bit rot: flip one payload byte; the footer no longer matches.
	raw[2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reader := corruptTestCache(t, dir)
	if _, ok := reader.Lookup(key, ""); ok {
		t.Fatal("corrupt disk entry was served")
	}
	if got := reader.Stats().Quarantined; got != 1 {
		t.Errorf("Quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt file was not renamed aside: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt file still in place: %v", err)
	}

	// The slot is usable again: a fresh Put re-persists a good entry and
	// a fresh cache reads it back.
	if !reader.Put(key, []byte(`{"cycles":1}`), "") {
		t.Fatal("re-Put after quarantine refused")
	}
	if _, ok := corruptTestCache(t, dir).Lookup(key, ""); !ok {
		t.Error("re-persisted entry not readable")
	}
}

func TestCacheQuarantinesFooterlessFile(t *testing.T) {
	dir := t.TempDir()
	key := "cafef00d"
	// A file written by hand (or by a pre-integrity build): no footer.
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(`{"cycles":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := corruptTestCache(t, dir)
	if _, ok := c.Lookup(key, ""); ok {
		t.Fatal("footerless file was served")
	}
	if got := c.Stats().Quarantined; got != 1 {
		t.Errorf("Quarantined = %d, want 1", got)
	}
}

// panickyEngine is registered once for the isolation tests: any run
// panics deep inside the "engine".
const panickyEngine = "test-panicky"

func registerPanicky(t *testing.T) {
	t.Helper()
	for _, name := range Engines() {
		if name == panickyEngine {
			return
		}
	}
	RegisterEngine(EngineDef{
		Name:     panickyEngine,
		Tier:     func(*Scenario) Tier { return TierStatistical },
		Cost:     func(*Scenario) float64 { return 1 },
		Supports: func(*Scenario) error { return nil },
		Run: func(context.Context, *Scenario) (Result, error) {
			panic("kaboom: poisoned scenario")
		},
	})
}

func TestRunIsolatesEnginePanic(t *testing.T) {
	registerPanicky(t)
	sc, err := New("gcc", Insts(1000), Engine(panickyEngine))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Run(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if pe.Engine != panickyEngine || !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "goroutine") {
		t.Error("PanicError carries no stack trace")
	}
}

func TestBatchSurvivesPanickedScenario(t *testing.T) {
	registerPanicky(t)
	poisoned, err := New("gcc", Insts(1000), Engine(panickyEngine))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := New("gcc", Insts(1000))
	if err != nil {
		t.Fatal(err)
	}
	results := Batch(context.Background(), []*Scenario{poisoned, healthy}, BatchOpts{Workers: 1})
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("poisoned scenario err = %v, want *PanicError", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("healthy scenario sank with the poisoned one: %v", results[1].Err)
	}
	if results[1].Result.Cycles == 0 {
		t.Error("healthy scenario produced no result")
	}
}
