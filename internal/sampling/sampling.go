// Package sampling implements periodic sampled simulation on top of the
// core timing models — the SMARTS-style methodology the paper's related
// work discusses and calls *orthogonal* to interval simulation: sampling
// reduces how many instructions are timed, interval simulation reduces the
// cost of timing each one. Combining them multiplies the savings, and this
// package demonstrates that combination.
//
// The instruction stream is divided into periods; in each period a
// measurement unit of U instructions is timed (by either core model) after
// W instructions of functional warming, and the remaining instructions are
// fast-forwarded through the caches and branch predictor only (functional
// warming keeps the large structures coherent with the full execution, the
// standard fix for cold-start bias).
package sampling

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/ooo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config sizes the sampling regime.
type Config struct {
	// Unit is the measurement unit length in instructions.
	Unit int
	// Period is the distance between unit starts; Period-Unit
	// instructions are fast-forwarded (with functional warming) between
	// measurements.
	Period int
	// InitialWarmup fast-forwards this many instructions before the
	// first measurement unit (large-structure warmup, as in SMARTS).
	InitialWarmup int
	// Model selects the timing model for measurement units.
	Model multicore.Model
	// Machine is the simulated hardware (single core).
	Machine config.Machine

	perUnit func(string, ...any) // test hook
}

// Result summarizes a sampled run.
type Result struct {
	// SampledIPC is the IPC estimate from the measurement units.
	SampledIPC float64
	// Units is the number of measurement units taken.
	Units int
	// TimedInsts and TotalInsts give the sampling ratio.
	TimedInsts uint64
	TotalInsts uint64
}

// Ratio returns the fraction of instructions that were timed.
func (r Result) Ratio() float64 {
	if r.TotalInsts == 0 {
		return 0
	}
	return float64(r.TimedInsts) / float64(r.TotalInsts)
}

// RunDebug is Run with a per-unit logging hook (diagnostics/tests).
func RunDebug(cfg Config, src trace.Stream, total int, logf func(string, ...any)) (Result, error) {
	cfg2 := cfg
	cfg2.perUnit = logf
	return Run(cfg2, src, total)
}

// Run performs sampled simulation of up to total instructions from src.
// The stream is consumed once; measurement units are timed with a fresh
// core over persistent (functionally warmed) structures.
func Run(cfg Config, src trace.Stream, total int) (Result, error) {
	if cfg.Unit <= 0 || cfg.Period <= 0 || cfg.Period < cfg.Unit {
		return Result{}, fmt.Errorf("sampling: invalid regime unit=%d period=%d", cfg.Unit, cfg.Period)
	}
	if cfg.Machine.Cores != 1 {
		return Result{}, fmt.Errorf("sampling: single-core only (got %d cores)", cfg.Machine.Cores)
	}

	mem := memhier.New(1, cfg.Machine.Mem, memhier.Perfect{})
	bp := branch.NewUnit(cfg.Machine.Branch)

	var res Result
	var cyclesSum, instsSum uint64
	for k := 0; k < cfg.InitialWarmup; k++ {
		in, ok := src.Next()
		if !ok {
			return res, nil
		}
		warmOne(mem, bp, &in)
	}
	consumed := 0
	for consumed < total {
		// Fast-forward with functional warming until the next unit.
		ff := cfg.Period - cfg.Unit
		if ff > total-consumed {
			ff = total - consumed
		}
		// A contiguous regime (Period == Unit) has no gaps to sample
		// around: time the whole remainder on one core. Restarting the
		// pipeline at every unit boundary would charge a fill and a
		// drain per unit — a harness artifact, not machine behaviour.
		unitLen := cfg.Unit
		if ff == 0 {
			unitLen = total - consumed
		}
		for k := 0; k < ff; k++ {
			in, ok := src.Next()
			if !ok {
				return finish(res, cyclesSum, instsSum), nil
			}
			warmOne(mem, bp, &in)
			consumed++
		}
		if consumed >= total {
			break
		}

		// Measurement unit: time Unit instructions on a fresh core over
		// the warmed structures. Clear bus/DRAM occupancy accumulated by
		// the (untimed) fast-forward accesses first.
		mem.ResetStats()
		bp.ResetStats()
		unit := unitLen
		if unit > total-consumed {
			unit = total - consumed
		}
		stream := trace.NewLimit(src, unit)
		var c sim.Core
		switch cfg.Model {
		case multicore.Detailed:
			c = ooo.New(0, cfg.Machine.Core, bp, mem, stream, sim.NullSyncer{})
		case multicore.Interval:
			c = core.New(0, cfg.Machine.Core, bp, mem, stream, sim.NullSyncer{})
		default:
			return Result{}, fmt.Errorf("sampling: unsupported model %v", cfg.Model)
		}
		var now int64
		for !c.Done() {
			c.Step(now)
			now++
		}
		res.Units += (int(c.Retired()) + cfg.Unit - 1) / cfg.Unit
		if cfg.perUnit != nil {
			cfg.perUnit("unit %d: retired=%d cycles=%d ipc=%.3f",
				res.Units, c.Retired(), c.FinishTime(),
				float64(c.Retired())/float64(c.FinishTime()))
			if ic, ok := c.(*core.Core); ok {
				cfg.perUnit("%s", ic.Stack())
			}
		}
		cyclesSum += uint64(c.FinishTime())
		instsSum += c.Retired()
		consumed += int(c.Retired())
		if c.Retired() < uint64(unit) {
			break // stream ended inside the unit
		}
	}
	res.TotalInsts = uint64(consumed)
	return finish(res, cyclesSum, instsSum), nil
}

func finish(res Result, cycles, insts uint64) Result {
	res.TimedInsts = insts
	if res.TotalInsts < insts {
		res.TotalInsts = insts
	}
	if cycles > 0 {
		res.SampledIPC = float64(insts) / float64(cycles)
	}
	return res
}

// warmOne feeds one instruction through the caches, TLBs and predictor.
func warmOne(mem *memhier.Hierarchy, bp *branch.Unit, in *isa.Inst) {
	if in.Class.IsSync() {
		return
	}
	mem.Inst(0, in.PC, 0)
	if in.Class.IsBranch() {
		bp.Predict(in)
	}
	if in.Class.IsMem() {
		mem.Data(0, in.Addr, in.Class == isa.Store, 0)
	}
}
