package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simrun"
)

// WorkerConfig sizes a Worker.
type WorkerConfig struct {
	// ID names the worker in the coordinator's pool — required, unique
	// per fleet (cmd/simd defaults it to host+pid).
	ID string
	// SelfURL is the base URL the coordinator dials this worker at —
	// required before Start.
	SelfURL string
	// Coordinator is the coordinator's base URL — required before
	// Start.
	Coordinator string
	// Cache runs and stores this worker's simulations — required. A
	// worker's cache makes re-dispatched jobs it already ran free.
	Cache *simrun.Cache
	// Faults, when non-nil, is the chaos seam (see FaultInjector).
	Faults *FaultInjector
	// HeartbeatEvery overrides the coordinator's advertised heartbeat
	// interval (0 = accept the advertisement).
	HeartbeatEvery time.Duration
	// Registry receives the worker metrics (nil selects obs.Default()).
	Registry *obs.Registry
	// Client performs control-plane requests (nil builds a default).
	Client *http.Client
}

// Worker executes dispatched simulations and keeps its lease alive by
// heartbeating the coordinator. Serve Handler on SelfURL's port and run
// Start for the control loop.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	// reg is the registry Handler serves at GET /metrics — the surface
	// the coordinator's federation scraper reads.
	reg *obs.Registry

	// beatEvery is the active heartbeat interval in nanoseconds,
	// adopted from the coordinator's registration advertisement unless
	// the config pinned one.
	beatEvery atomic.Int64
	// dead flips when the fault injector kills the worker: heartbeats
	// stop and further run requests die on the wire, exactly like a
	// crashed process.
	dead atomic.Bool

	mRuns      *obs.Counter
	mRunErrors *obs.Counter
	mBeats     *obs.Counter
	mDropped   *obs.Counter
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	if cfg.Cache == nil {
		return nil, fmt.Errorf("fleet: worker needs a result cache")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	w := &Worker{cfg: cfg, client: client}
	w.beatEvery.Store(int64(cfg.HeartbeatEvery))
	r := cfg.Registry
	if r == nil {
		r = obs.Default()
	}
	w.reg = r
	lbl := obs.Label{Key: "worker", Value: cfg.ID}
	w.mRuns = r.Counter("fleet_worker_runs_total",
		"Run requests this worker served.", lbl)
	w.mRunErrors = r.Counter("fleet_worker_run_errors_total",
		"Run requests that failed (bad spec or simulation error).", lbl)
	w.mBeats = r.Counter("fleet_worker_heartbeats_total",
		"Heartbeats sent to the coordinator.", lbl)
	w.mDropped = r.Counter("fleet_worker_heartbeats_dropped_total",
		"Heartbeats swallowed by the fault injector.", lbl)
	return w, nil
}

// Handler is the worker's data plane: the run endpoint, liveness, and
// the /metrics exposition the coordinator's federation scraper reads.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRun, w.handleRun)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			// A crashed worker cannot answer scrapes either; the
			// coordinator marks it stale and keeps the last good payload.
			panic(http.ErrAbortHandler)
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteAll(rw, w.reg, obs.Default())
	})
	return mux
}

// Dead reports whether the fault injector has killed the worker.
func (w *Worker) Dead() bool { return w.dead.Load() }

// handleRun simulates one dispatched spec and delivers the payload with
// its fidelity tier and integrity checksum. When the request carries an
// X-Fleet-Trace header, the job runs under a per-request tracer and the
// recorded spans (engine, warmup, measure, cache store — the worker's
// half of the job's life) ride back in the X-Fleet-Spans header for the
// coordinator to splice into its own trace; the spans never touch the
// payload bytes, so checksums and byte-identity are unaffected. The
// fault injector hooks in here: a kill severs the connection mid-job
// and silences the worker for good; a corruption flips a payload byte
// after the checksum is taken; a delay holds the finished result on the
// wire.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if w.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	kill, corrupt, delay := w.cfg.Faults.onRun()
	if kill {
		// Die exactly as a crashed worker does: the in-flight request's
		// connection is severed with no response, heartbeats stop, and
		// the coordinator's lease/transport machinery must recover.
		w.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	w.mRuns.Inc()
	spec, err := simrun.ParseSpec(r.Body)
	if err != nil {
		w.mRunErrors.Inc()
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	sc, err := spec.Scenario()
	if err != nil {
		w.mRunErrors.Inc()
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	var tracer *obs.Tracer
	if r.Header.Get(HeaderTrace) != "" {
		// The per-request tracer's epoch is request arrival, so every
		// span start is an offset into this dispatch — exactly what the
		// coordinator adds to its own send timestamp when splicing. The
		// observer never enters the fingerprint or the payload.
		tracer = obs.NewTracer(0)
		sc.SetObserver(&obs.Observer{Tracer: tracer})
	}
	entry, err := w.cfg.Cache.GetOrRun(r.Context(), sc)
	if err != nil {
		w.mRunErrors.Inc()
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	payload := entry.Payload
	sum := sha256.Sum256(payload)
	if corrupt {
		// Model corruption in delivery, not at rest: the checksum
		// header still describes the true payload, so the coordinator
		// detects the damage and re-dispatches.
		payload = bytes.Clone(payload)
		payload[len(payload)/2] ^= 0x40
	}
	if delay > 0 && !sleep(r.Context(), delay) {
		return
	}
	if tracer != nil {
		spans := tracer.Spans()
		if len(spans) == 0 {
			// A cache hit runs no engine; report the answer's provenance
			// as one zero-effort span so the stitched trace still shows
			// where the job went.
			tracer.Start("cache:" + string(entry.Source)).End()
			spans = tracer.Spans()
		}
		if enc := obs.EncodeSpans(spans, 0); enc != "" {
			rw.Header().Set(HeaderSpans, enc)
		}
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(HeaderTier, string(entry.Tier))
	rw.Header().Set(HeaderSum, hex.EncodeToString(sum[:]))
	rw.Write(payload)
}

// Start registers with the coordinator and heartbeats until ctx is
// cancelled (then deregisters, best-effort) or the fault injector kills
// the worker. Registration failures retry under backoff — a worker that
// boots before its coordinator just keeps knocking.
func (w *Worker) Start(ctx context.Context) error {
	if w.cfg.SelfURL == "" || w.cfg.Coordinator == "" {
		return fmt.Errorf("fleet: worker Start needs SelfURL and Coordinator")
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		every := time.Duration(w.beatEvery.Load())
		if every <= 0 {
			every = time.Second
		}
		select {
		case <-ctx.Done():
			w.deregister()
			return nil
		case <-time.After(every):
		}
		if w.dead.Load() {
			// Killed: go silent. The coordinator's leases do the rest.
			return nil
		}
		if w.cfg.Faults.dropBeat() {
			w.mDropped.Inc()
			continue
		}
		if err := w.beat(ctx); err != nil {
			// A 404 means the coordinator forgot us (restart, lease
			// lapse): re-register. Transport errors just try again next
			// tick — the lease TTL is the real deadline.
			if isStatus(err, http.StatusNotFound) {
				w.register(ctx)
			}
		}
	}
}

// register announces the worker and adopts the coordinator's advertised
// heartbeat interval (unless the config pinned one), retrying under
// backoff until ctx dies.
func (w *Worker) register(ctx context.Context) error {
	body, _ := json.Marshal(registration{ID: w.cfg.ID, URL: w.cfg.SelfURL})
	return Backoff{}.Retry(ctx, "register:"+w.cfg.ID, func() (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+PathRegister, bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err != nil {
			return TransientErr(err), err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return TransientStatus(resp.StatusCode), &statusErr{status: resp.StatusCode}
		}
		var terms leaseTerms
		if err := json.NewDecoder(resp.Body).Decode(&terms); err != nil {
			return false, err
		}
		if w.cfg.HeartbeatEvery <= 0 && terms.HeartbeatMillis > 0 {
			w.beatEvery.Store(int64(time.Duration(terms.HeartbeatMillis) * time.Millisecond))
		}
		return false, nil
	})
}

func (w *Worker) beat(ctx context.Context) error {
	w.mBeats.Inc()
	body, _ := json.Marshal(heartbeat{ID: w.cfg.ID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+PathHeartbeat, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return &statusErr{status: resp.StatusCode}
	}
	return nil
}

// deregister is a courtesy on clean shutdown; the lease TTL covers the
// unclean case.
func (w *Worker) deregister() {
	body, _ := json.Marshal(heartbeat{ID: w.cfg.ID})
	req, err := http.NewRequest(http.MethodPost, w.cfg.Coordinator+PathDeregister, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if resp, err := w.client.Do(req.WithContext(ctx)); err == nil {
		resp.Body.Close()
	}
}

func isStatus(err error, status int) bool {
	var se *statusErr
	return errors.As(err, &se) && se.status == status
}
