package simrun

import (
	"strings"
	"testing"
)

func TestSpecScenarioMatchesOptions(t *testing.T) {
	raw := `{
		"bench": "gcc",
		"model": "interval",
		"cores": 2,
		"insts": 5000,
		"warmup": 1000,
		"seed": 7,
		"fabric": "mesh",
		"predictor": "gshare",
		"report": true
	}`
	spec, err := ParseSpec(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	fromOpts, err := New("gcc",
		Model("interval"), Cores(2), Insts(5000), Warmup(1000), Seed(7),
		Fabric("mesh"), Predictor("gshare"), KeepCores())
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromSpec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromOpts.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("spec-built and option-built scenarios differ: %s vs %s", a, b)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"bench":"gcc","predcitor":"tage"}`)); err == nil {
		t.Fatal("misspelled field was accepted")
	}
}

func TestSpecScenarioValidates(t *testing.T) {
	for name, raw := range map[string]string{
		"bench":  `{"bench":"no-such-benchmark"}`,
		"model":  `{"bench":"gcc","model":"quantum"}`,
		"fabric": `{"bench":"gcc","fabric":"torus"}`,
		"cores":  `{"bench":"gcc","cores":-1}`,
	} {
		spec, err := ParseSpec(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := spec.Scenario(); err == nil {
			t.Errorf("%s: invalid spec %s built a scenario", name, raw)
		}
	}
}

func TestLoadSpecsAppliesDefaults(t *testing.T) {
	raw := `{
		"defaults": {"insts": 5000, "warmup": 1000, "fabric": "mesh"},
		"scenarios": [
			{"bench": "gcc"},
			{"bench": "mcf", "fabric": "ring"}
		]
	}`
	scs, err := LoadSpecs(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scs))
	}
	// gcc inherits the mesh default; mcf overrides it with ring.
	m0, err := scs[0].ResolvedMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m0.Mem.Interconnect != "mesh" {
		t.Errorf("scenario 1 fabric = %q, want mesh (default)", m0.Mem.Interconnect)
	}
	m1, err := scs[1].ResolvedMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Mem.Interconnect != "ring" {
		t.Errorf("scenario 2 fabric = %q, want ring (override)", m1.Mem.Interconnect)
	}
}

// Base specs (a front end's sizing flags) back up the file's defaults:
// file fields win, base fills the gaps.
func TestLoadSpecsBaseDefaults(t *testing.T) {
	seed := int64(9)
	base := Spec{Insts: 3000, Warmup: 500, Seed: &seed}
	scs, err := LoadSpecs(strings.NewReader(
		`{"defaults":{"warmup":8000},"scenarios":[{"bench":"gcc"}]}`), base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustNew("gcc", Insts(3000), Warmup(8000), Seed(9)).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("base defaults not applied: fingerprint %s, want %s", got, want)
	}
}

func TestLoadSpecsErrors(t *testing.T) {
	if _, err := LoadSpecs(strings.NewReader(`{"scenarios":[]}`)); err == nil {
		t.Error("empty scenario list was accepted")
	}
	_, err := LoadSpecs(strings.NewReader(`{"scenarios":[{"bench":"gcc"},{"bench":"bogus"}]}`))
	if err == nil || !strings.Contains(err.Error(), "scenario 2") {
		t.Errorf("error does not name the offending entry: %v", err)
	}
}
