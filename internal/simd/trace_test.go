package simd_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	// The estimator engines tiered serving answers from.
	_ "repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/simrun"
)

// TestTieredJobTraceOrder is the tracing acceptance path end to end: a
// tiered job's trace at /v1/jobs/{id}/trace contains the queue wait,
// the statistical estimate, the background full run and the upgrade
// settle, in that start order.
func TestTieredJobTraceOrder(t *testing.T) {
	_, ts := newTieredServer(t)

	spec := `{"bench":"gcc","insts":200000,"warmup":20000}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var doc simd.JobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	// Wait for the terminal document to land at full fidelity — the
	// upgrade settle is the last span the trace records.
	deadline := time.Now().Add(60 * time.Second)
	for doc.Status != simd.StatusDone || doc.Tier != string(simrun.TierInterval) {
		if time.Now().After(deadline) {
			t.Fatalf("job never upgraded: %+v", doc)
		}
		time.Sleep(5 * time.Millisecond)
		doc = getJob(t, ts, doc.ID)
	}

	tresp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", tresp.StatusCode)
	}
	var trace struct {
		Job     string        `json:"job"`
		Spans   []obs.SpanRec `json:"spans"`
		Dropped uint64        `json:"dropped"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if trace.Job != doc.ID {
		t.Fatalf("trace job = %q, want %q", trace.Job, doc.ID)
	}

	// First-start time per span name; the lifecycle spans must each
	// appear and start in lifecycle order.
	starts := map[string]int64{}
	for _, sp := range trace.Spans {
		if _, seen := starts[sp.Name]; !seen {
			starts[sp.Name] = sp.StartUS
		}
	}
	order := []string{"queue", "engine:statistical", "engine:full", "upgrade"}
	prev := int64(-1)
	for _, name := range order {
		at, ok := starts[name]
		if !ok {
			t.Fatalf("span %q missing from trace: have %v", name, starts)
		}
		if at < prev {
			t.Errorf("span %q starts at %dus, before its predecessor (%dus): order %v broken",
				name, at, prev, order)
		}
		prev = at
	}
}
