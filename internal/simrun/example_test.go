package simrun_test

import (
	"context"
	"fmt"

	"repro/internal/simrun"
)

// ExampleNew shows the canonical way to describe and execute one
// simulation: name a benchmark profile, stack options, run.
func ExampleNew() {
	s, err := simrun.New("gcc",
		simrun.Model("interval"),
		simrun.Cores(2),
		simrun.Insts(5_000),
		simrun.Warmup(10_000),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("model=%s cores=%d completed=%v\n",
		res.ModelLabel(), len(res.Cores), res.TotalRetired == 10_000)
	// Output: model=interval cores=2 completed=true
}
