package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

// refOldWindow is a direct port of the pre-optimization OldWindow (eager
// per-shift clamping, plain modulo ring sized exactly at ROBSize). It is
// the semantic reference the virtual-time implementation must match for
// every ROB size, power-of-two or not.
type refOldWindow struct {
	cfg        config.Core
	issues     []int64
	head, n    int
	headTime   int64
	tailTime   int64
	regReady   [isa.NumRegs]int64
	floorReady [isa.NumRegs]int64
	tailFloor  int64
}

func newRefOldWindow(cfg config.Core) *refOldWindow {
	return &refOldWindow{cfg: cfg, issues: make([]int64, cfg.ROBSize)}
}

func (w *refOldWindow) Insert(in *isa.Inst, loadLatency, dispTime int64) {
	lat := int64(w.cfg.ExecLatency(in.Class))
	if in.Class == isa.Load && loadLatency > 0 {
		lat = loadLatency
	}
	issue := int64(0)
	if in.Src1 != isa.RegNone && w.regReady[in.Src1] > issue {
		issue = w.regReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && w.regReady[in.Src2] > issue {
		issue = w.regReady[in.Src2]
	}
	complete := issue + lat
	fIssue := dispTime
	if in.Src1 != isa.RegNone && w.floorReady[in.Src1] > fIssue {
		fIssue = w.floorReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && w.floorReady[in.Src2] > fIssue {
		fIssue = w.floorReady[in.Src2]
	}
	fComplete := fIssue + lat
	if in.HasDst() {
		w.regReady[in.Dst] = complete
		w.floorReady[in.Dst] = fComplete
	}
	if issue > w.tailTime {
		w.tailTime = issue
	}
	if fComplete > w.tailFloor {
		w.tailFloor = fComplete
	}
	if w.n == len(w.issues) {
		old := w.issues[w.head]
		if old > w.headTime {
			w.headTime = old
		}
		w.head = (w.head + 1) % len(w.issues)
		w.n--
	}
	w.issues[(w.head+w.n)%len(w.issues)] = issue
	w.n++
}

func (w *refOldWindow) CriticalPath() int64 {
	cp := w.tailTime - w.headTime
	if cp < 1 {
		return 1
	}
	return cp
}

func (w *refOldWindow) DispatchRate() float64 {
	width := float64(w.cfg.DecodeWidth)
	if w.n == 0 {
		return width
	}
	rate := float64(len(w.issues)) / float64(w.CriticalPath())
	if rate > width {
		return width
	}
	return rate
}

func (w *refOldWindow) BranchResolution(br *isa.Inst, dispTime int64) int64 {
	issue := dispTime
	if br.Src1 != isa.RegNone && w.floorReady[br.Src1] > issue {
		issue = w.floorReady[br.Src1]
	}
	if br.Src2 != isa.RegNone && w.floorReady[br.Src2] > issue {
		issue = w.floorReady[br.Src2]
	}
	res := issue + int64(w.cfg.ExecLatency(br.Class)) - dispTime
	if res < 1 {
		return 1
	}
	return res
}

func (w *refOldWindow) BranchResolutionPure(br *isa.Inst) int64 {
	issue := int64(0)
	if br.Src1 != isa.RegNone && w.regReady[br.Src1] > issue {
		issue = w.regReady[br.Src1]
	}
	if br.Src2 != isa.RegNone && w.regReady[br.Src2] > issue {
		issue = w.regReady[br.Src2]
	}
	res := issue + int64(w.cfg.ExecLatency(br.Class)) - w.headTime
	if res < 1 {
		return 1
	}
	return res
}

func (w *refOldWindow) DrainTime(dispTime int64) int64 {
	if w.n == 0 {
		return 1
	}
	byWidth := int64((w.n + w.cfg.DecodeWidth - 1) / w.cfg.DecodeWidth)
	rem := w.tailFloor - dispTime
	if rem > byWidth {
		return rem
	}
	return byWidth
}

func (w *refOldWindow) Shift(elapsed int64) {
	if elapsed <= 0 {
		return
	}
	sub := func(v int64) int64 {
		if v <= elapsed {
			return 0
		}
		return v - elapsed
	}
	for i := range w.regReady {
		w.regReady[i] = sub(w.regReady[i])
		w.floorReady[i] = sub(w.floorReady[i])
	}
	for k := 0; k < w.n; k++ {
		idx := (w.head + k) % len(w.issues)
		w.issues[idx] = sub(w.issues[idx])
	}
	w.headTime = sub(w.headTime)
	w.tailTime = sub(w.tailTime)
	w.tailFloor = sub(w.tailFloor)
}

func (w *refOldWindow) Empty() {
	w.head, w.n = 0, 0
	w.headTime, w.tailTime, w.tailFloor = 0, 0, 0
	for i := range w.regReady {
		w.regReady[i] = 0
		w.floorReady[i] = 0
	}
}

// TestOldWindowMatchesReference drives random operation sequences through
// the optimized OldWindow and the eager reference side by side, over ROB
// sizes including non-powers-of-two, and requires every observable to
// agree exactly.
func TestOldWindowMatchesReference(t *testing.T) {
	for _, rob := range []int{1, 2, 3, 5, 8, 31, 64, 96, 100, 256} {
		rob := rob
		rng := rand.New(rand.NewSource(int64(rob)*77 + 1))
		cfg := config.Default(1).Core
		cfg.ROBSize = rob
		w := NewOldWindow(cfg)
		ref := newRefOldWindow(cfg)
		randInst := func() isa.Inst {
			in := isa.Inst{Class: isa.Class(rng.Intn(int(isa.NumClasses)))}
			pick := func() uint8 {
				if rng.Intn(4) == 0 {
					return isa.RegNone
				}
				return uint8(rng.Intn(isa.NumRegs))
			}
			in.Src1, in.Src2, in.Dst = pick(), pick(), pick()
			return in
		}
		for op := 0; op < 20_000; op++ {
			switch rng.Intn(10) {
			case 0:
				e := int64(rng.Intn(40))
				w.Shift(e)
				ref.Shift(e)
			case 1:
				if rng.Intn(20) == 0 {
					w.Empty()
					ref.Empty()
				}
			case 2:
				in := randInst()
				d := int64(rng.Intn(30))
				if got, want := w.BranchResolution(&in, d), ref.BranchResolution(&in, d); got != want {
					t.Fatalf("rob=%d op=%d: BranchResolution %d != %d", rob, op, got, want)
				}
				if got, want := w.BranchResolutionPure(&in), ref.BranchResolutionPure(&in); got != want {
					t.Fatalf("rob=%d op=%d: BranchResolutionPure %d != %d", rob, op, got, want)
				}
			case 3:
				d := int64(rng.Intn(30))
				if got, want := w.DrainTime(d), ref.DrainTime(d); got != want {
					t.Fatalf("rob=%d op=%d: DrainTime %d != %d", rob, op, got, want)
				}
			default:
				in := randInst()
				loadLat := int64(0)
				if in.Class == isa.Load && rng.Intn(2) == 0 {
					loadLat = int64(rng.Intn(100))
				}
				d := int64(rng.Intn(30))
				w.Insert(&in, loadLat, d)
				ref.Insert(&in, loadLat, d)
			}
			if got, want := w.CriticalPath(), ref.CriticalPath(); got != want {
				t.Fatalf("rob=%d op=%d: CriticalPath %d != %d", rob, op, got, want)
			}
			if got, want := w.DispatchRate(), ref.DispatchRate(); got != want {
				t.Fatalf("rob=%d op=%d: DispatchRate %v != %v", rob, op, got, want)
			}
			if got, want := w.Len(), ref.n; got != want {
				t.Fatalf("rob=%d op=%d: Len %d != %d", rob, op, got, want)
			}
		}
	}
}
