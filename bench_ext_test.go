// Extension benchmarks: ablations of the interval model's refinements
// (DESIGN.md §6), the substrate alternatives (directory coherence, NoC
// fabrics, banked DRAM, stride prefetching, MLP capping) and the
// orthogonal speedup techniques (statistical simulation, SimPoint phase
// sampling). Each reports a domain metric alongside the usual ns/op.
package main

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/multicore"
	"repro/internal/sampling"
	"repro/internal/statsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ablationProfiles is the mixed set the model-ablation benchmarks sweep:
// branchy, pointer-chasing, streaming and branch-mispredicting.
var ablationProfiles = []string{"gcc", "mcf", "swim", "vpr"}

// runModel times one profile under one model/ablation and returns IPC.
func runModel(name string, model multicore.Model, opts core.Options, mutate func(*config.Machine)) float64 {
	m := config.Default(1)
	if mutate != nil {
		mutate(&m)
	}
	p := workload.SPECByName(name)
	res := multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       model,
		Ablation:    opts,
		WarmupInsts: 200_000,
		Warmup:      []trace.Stream{workload.New(p, 0, 1, 1042)},
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), 20_000)})
	return res.Cores[0].IPC
}

// BenchmarkAblationModel quantifies what each refinement of DESIGN.md §6
// buys: for every ablation variant it reports the mean absolute IPC error
// against the detailed baseline over the mixed profile set. The "full"
// sub-benchmark is the validated model; each other variant disables one
// refinement and should show a larger error.
func BenchmarkAblationModel(b *testing.B) {
	variants := []core.Options{
		{},
		{NoROBFillHiding: true},
		{FlushOldWindow: true},
		{NoOverlapScan: true},
		{NoTaint: true},
		{NoDispatchFloor: true},
	}
	detailed := make(map[string]float64, len(ablationProfiles))
	for _, p := range ablationProfiles {
		detailed[p] = runModel(p, multicore.Detailed, core.Options{}, nil)
	}
	for _, v := range variants {
		b.Run(v.Name(), func(b *testing.B) {
			var meanErr float64
			for i := 0; i < b.N; i++ {
				var sum float64
				for _, p := range ablationProfiles {
					ipc := runModel(p, multicore.Interval, v, nil)
					sum += math.Abs(ipc-detailed[p]) / detailed[p]
				}
				meanErr = sum / float64(len(ablationProfiles))
			}
			b.ReportMetric(100*meanErr, "avgErr%")
		})
	}
}

// BenchmarkAblationMLPCap measures what outstanding-miss capacity buys a
// streaming workload: IPC with the full 32-entry budget over IPC with a
// single outstanding miss (no MLP).
func BenchmarkAblationMLPCap(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		wide := runModel("swim", multicore.Interval, core.Options{}, nil)
		narrow := runModel("swim", multicore.Interval, core.Options{},
			func(m *config.Machine) { m.Core.MaxOutstandingMisses = 1 })
		if narrow > 0 {
			gain = wide / narrow
		}
	}
	b.ReportMetric(gain, "mlpGain")
}

// BenchmarkAblationDirectory compares directory MESI against snooping
// MOESI on a sharing-heavy multi-threaded workload (cycles ratio; the
// directory pays home-node lookups, snooping pays broadcast serialization).
func BenchmarkAblationDirectory(b *testing.B) {
	run := func(protocol string) int64 {
		p := workload.PARSECByName("canneal")
		q := *p
		q.TotalWork = 100_000
		m := config.Default(4)
		m.Mem.Coherence = protocol
		streams := make([]trace.Stream, 4)
		for i := range streams {
			streams[i] = workload.New(&q, i, 4, 42)
		}
		res := multicore.Run(multicore.RunConfig{
			Machine: m, Model: multicore.Interval, MaxCycles: 100_000_000,
		}, streams)
		return res.Cycles
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		snoop := run("moesi")
		dir := run("directory")
		if snoop > 0 {
			ratio = float64(dir) / float64(snoop)
		}
	}
	b.ReportMetric(ratio, "dirSlowdown")
}

// BenchmarkAblationFabric compares the bus against the mesh and ring NoCs
// on an 8-core multi-program run (execution-time ratios; >1 means the bus
// is slower).
func BenchmarkAblationFabric(b *testing.B) {
	run := func(fabric string) int64 {
		m := config.Default(8)
		m.Mem.Interconnect = fabric
		streams := make([]trace.Stream, 8)
		warms := make([]trace.Stream, 8)
		mix := []string{"swim", "mcf", "gcc", "art"}
		for i := range streams {
			p := workload.SPECByName(mix[i%len(mix)])
			streams[i] = trace.NewLimit(workload.New(p, 0, 1, int64(42+i)), 10_000)
			warms[i] = workload.New(p, 0, 1, int64(1042+i))
		}
		res := multicore.Run(multicore.RunConfig{
			Machine: m, Model: multicore.Interval,
			WarmupInsts: 100_000, Warmup: warms,
		}, streams)
		return res.Cycles
	}
	var mesh, ring float64
	for i := 0; i < b.N; i++ {
		bus := run("bus")
		if bus > 0 {
			mesh = float64(bus) / float64(run("mesh"))
			ring = float64(bus) / float64(run("ring"))
		}
	}
	b.ReportMetric(mesh, "meshSpeedup")
	b.ReportMetric(ring, "ringSpeedup")
}

// BenchmarkAblationBankedDRAM measures the row-buffer payoff on a
// streaming workload: banked IPC over fixed-latency IPC.
func BenchmarkAblationBankedDRAM(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		fixed := runModel("swim", multicore.Interval, core.Options{}, nil)
		banked := runModel("swim", multicore.Interval, core.Options{},
			func(m *config.Machine) { m.Mem.DRAMKind = "banked" })
		if fixed > 0 {
			gain = banked / fixed
		}
	}
	b.ReportMetric(gain, "rowBufferGain")
}

// BenchmarkAblationStridePrefetch measures the stride prefetcher on the
// streaming swim profile against no prefetching.
func BenchmarkAblationStridePrefetch(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base := runModel("swim", multicore.Interval, core.Options{}, nil)
		pf := runModel("swim", multicore.Interval, core.Options{}, func(m *config.Machine) {
			m.Mem.Prefetch = "stride"
			m.Mem.PrefetchDegree = 4
		})
		if base > 0 {
			gain = pf / base
		}
	}
	b.ReportMetric(gain, "ipcGain")
}

// BenchmarkAblationWrongPath measures how much the functional-first
// limitation (no wrong-path simulation, §3.2 of the paper) matters: the
// IPC shift when wrong-path I-side traffic is modeled. For profiles whose
// code fits the L1I the shift is ~0 (supporting the paper's choice of
// functional-first); for I-side-heavy eon the wrong path acts as an
// accidental instruction prefetcher and shifts IPC by double digits — the
// sensitivity a timing-directed implementation would have to resolve.
func BenchmarkAblationWrongPath(b *testing.B) {
	for _, name := range []string{"vpr", "eon"} {
		b.Run(name, func(b *testing.B) {
			var shift float64
			for i := 0; i < b.N; i++ {
				base := runModel(name, multicore.Interval, core.Options{}, nil)
				wp := runModel(name, multicore.Interval, core.Options{WrongPathFetch: true}, nil)
				if base > 0 {
					shift = 100 * math.Abs(wp-base) / base
				}
			}
			b.ReportMetric(shift, "ipcShift%")
		})
	}
}

// BenchmarkAblationTAGE compares the Table 1 local predictor against the
// TAGE upgrade on a branchy profile (IPC ratio).
func BenchmarkAblationTAGE(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		local := runModel("vpr", multicore.Interval, core.Options{}, nil)
		tage := runModel("vpr", multicore.Interval, core.Options{},
			func(m *config.Machine) { m.Branch.Kind = "tage" })
		if local > 0 {
			gain = tage / local
		}
	}
	b.ReportMetric(gain, "ipcGain")
}

// BenchmarkStatSimClone measures the statistical-simulation pipeline:
// profile a stream, generate a 5x-shorter clone, time both on the interval
// model, and report the clone's IPC error.
func BenchmarkStatSimClone(b *testing.B) {
	const n, warm = 60_000, 20_000
	p := workload.SPECByName("gcc")
	ipcOf := func(src trace.Stream, warmN int) float64 {
		head := trace.Record(src, warmN)
		res := multicore.Run(multicore.RunConfig{
			Machine: config.Default(1), Model: multicore.Interval,
			WarmupInsts: warmN,
			Warmup:      []trace.Stream{trace.NewSliceStream(head)},
		}, []trace.Stream{src})
		return res.Cores[0].IPC
	}
	var errPct float64
	for i := 0; i < b.N; i++ {
		prof := statsim.CollectWarm(workload.New(p, 0, 1, 42), warm, n+warm)
		orig := ipcOf(trace.NewLimit(workload.New(p, 0, 1, 42), n+warm), warm)
		clone := ipcOf(statsim.NewClone(prof, warm+n/5, 99), warm)
		errPct = 100 * math.Abs(orig-clone) / orig
	}
	b.ReportMetric(errPct, "cloneErr%")
}

// BenchmarkCoPhase measures the co-phase-matrix pipeline (Van Biesbrouck
// et al.): phase-classify two programs, co-simulate each phase pair once,
// and report the predicted-vs-actual co-run IPC error for the first
// program.
func BenchmarkCoPhase(b *testing.B) {
	const segLen = 4000
	mkPhased := func(x, y string, seedX, seedY int64) []isa.Inst {
		gx := workload.New(workload.SPECByName(x), 0, 1, seedX)
		gy := workload.New(workload.SPECByName(y), 0, 1, seedY)
		out := trace.Record(gx, segLen)
		for s := 1; s < 10; s++ {
			g := trace.Stream(gx)
			if s%2 == 1 {
				g = gy
			}
			out = append(out, trace.Record(g, segLen)...)
		}
		return out
	}
	pa := mkPhased("gcc", "swim", 42, 43)
	pb := mkPhased("mcf", "gcc", 44, 45)
	m := config.Default(2)
	actual := multicore.Run(multicore.RunConfig{Machine: m, Model: multicore.Interval},
		[]trace.Stream{trace.NewSliceStream(pa), trace.NewSliceStream(pb)})

	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := sampling.CoPhaseEstimate(pa, pb, sampling.CoPhaseConfig{
			IntervalLen: segLen, K: 2, Seed: 9, Machine: m, Model: multicore.Interval,
		})
		if err != nil {
			b.Fatal(err)
		}
		errPct = 100 * math.Abs(res.Predicted[0]-actual.Cores[0].IPC) / actual.Cores[0].IPC
	}
	b.ReportMetric(errPct, "estErr%")
}

// BenchmarkSimPoint measures the phase-sampling pipeline: classify a
// phased stream, time one representative per phase, and report the
// estimate's error against the full run.
func BenchmarkSimPoint(b *testing.B) {
	const segLen = 4000
	ga := workload.New(workload.SPECByName("gcc"), 0, 1, 42)
	gs := workload.New(workload.SPECByName("swim"), 0, 1, 43)
	var insts = trace.Record(ga, segLen)
	for s := 1; s < 20; s++ {
		g := trace.Stream(ga)
		if s%2 == 1 {
			g = gs
		}
		insts = append(insts, trace.Record(g, segLen)...)
	}
	m := config.Default(1)
	full := multicore.Run(multicore.RunConfig{Machine: m, Model: multicore.Interval},
		[]trace.Stream{trace.NewSliceStream(insts)})
	fullIPC := full.Cores[0].IPC

	var errPct float64
	for i := 0; i < b.N; i++ {
		sp, err := sampling.Analyze(insts, sampling.SimPointConfig{
			IntervalLen: segLen, K: 2, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		est, err := sampling.EstimateIPC(insts, sp, m, multicore.Interval)
		if err != nil {
			b.Fatal(err)
		}
		errPct = 100 * math.Abs(est-fullIPC) / fullIPC
	}
	b.ReportMetric(errPct, "estErr%")
}
