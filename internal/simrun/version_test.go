package simrun

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// mixScenario is the scenario class the v2 stream-format break
// renumbered; the versioning guarantees are asserted against it.
func mixScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := New("", Mix("gcc", "mcf"), Insts(500))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFingerprintVersionNeverCollides: the v1 fingerprint of a scenario
// must never equal its v2 fingerprint — the whole point of the version
// field is that results computed under the old stream format can never
// be served for a new submission, whatever else the scenario spells.
func TestFingerprintVersionNeverCollides(t *testing.T) {
	if FingerprintVersion != 2 {
		t.Fatalf("FingerprintVersion = %d, want 2 (update this test alongside the next deliberate break)", FingerprintVersion)
	}
	for _, build := range []func(t *testing.T) *Scenario{
		mixScenario,
		func(t *testing.T) *Scenario {
			s, err := New("gcc", Copies(2), Insts(500))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		s := build(t)
		v1, err := s.fingerprintAt(1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if v1 == v2 {
			t.Fatalf("scenario %q: v1 and v2 fingerprints collide: %s", s.Name(), v1)
		}
	}
}

// TestCacheMissesAcrossVersionBump: a result cache primed with an entry
// under the scenario's v1 key (what a pre-break simd deployment would
// have persisted) must not serve it for a v2 submission — the submission
// simulates fresh and is stored under the v2 key.
func TestCacheMissesAcrossVersionBump(t *testing.T) {
	dir := t.TempDir()
	s := mixScenario(t)
	v1, err := s.fingerprintAt(1)
	if err != nil {
		t.Fatal(err)
	}
	stale := []byte(`{"stale":"v1 payload"}`)
	if err := os.WriteFile(filepath.Join(dir, v1+".json"), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewCache(CacheOpts{
		Dir:    dir,
		Encode: func(Result) ([]byte, error) { return []byte(`{"fresh":"v2 payload"}`), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := c.GetOrRun(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Source != SourceRun {
		t.Fatalf("v2 submission served from %q, want a fresh run (v1 entries must never match)", entry.Source)
	}
	if entry.Key == v1 {
		t.Fatal("v2 submission stored under the v1 key")
	}
	if string(entry.Payload) == string(stale) {
		t.Fatal("v2 submission returned the stale v1 payload")
	}
}
