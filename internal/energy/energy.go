// Package energy estimates the energy of a simulated run from event
// counts — a coarse event-energy model in the spirit of the early-design
// tools interval simulation is meant to pair with. The paper's Figure 8
// case study (big-L2 dual-core versus 3D-stacked quad-core) is ultimately
// an energy-delay question: more cores finish sooner but burn more static
// power, a bigger cache costs leakage but saves DRAM traffic. This package
// turns the simulator's event counts into exactly that trade-off.
//
// The per-event energies are catalog-style constants (order-of-magnitude
// 45nm values), not a calibrated power model; what matters for design
// studies is that configurations are compared under one consistent
// accounting.
package energy

import (
	"fmt"
	"strings"

	"repro/internal/multicore"
)

// Params holds the per-event energies (picojoules) and static power
// (picojoules per core-cycle).
type Params struct {
	// PerInstruction covers fetch/decode/rename/issue/commit of one
	// retired instruction.
	PerInstruction float64
	// PerL1Access is one L1 (I or D) access.
	PerL1Access float64
	// PerL2Access is one shared-L2 access.
	PerL2Access float64
	// PerDRAMAccess is one main-memory line fetch.
	PerDRAMAccess float64
	// PerFabricTx is one interconnect transaction.
	PerFabricTx float64
	// StaticPerCoreCycle is leakage + clock per core per cycle.
	StaticPerCoreCycle float64
	// StaticL2PerCycleMB is L2 leakage per cycle per megabyte.
	StaticL2PerCycleMB float64
}

// Default returns catalog-style 45nm-ish parameters.
func Default() Params {
	return Params{
		PerInstruction:     20,
		PerL1Access:        10,
		PerL2Access:        50,
		PerDRAMAccess:      2000,
		PerFabricTx:        15,
		StaticPerCoreCycle: 40,
		StaticL2PerCycleMB: 5,
	}
}

// Report decomposes a run's estimated energy (picojoules).
type Report struct {
	Core   float64 // dynamic pipeline energy
	L1     float64
	L2     float64
	DRAM   float64
	Fabric float64
	Static float64

	// Cycles and Instructions echo the run for derived metrics.
	Cycles       int64
	Instructions uint64
}

// Total returns the summed energy in picojoules.
func (r Report) Total() float64 {
	return r.Core + r.L1 + r.L2 + r.DRAM + r.Fabric + r.Static
}

// EPI returns energy per instruction (picojoules).
func (r Report) EPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Total() / float64(r.Instructions)
}

// EDP returns the energy-delay product (picojoule-cycles); lower is
// better. It is the standard single-number figure of merit for
// performance/energy trade-offs like Figure 8's.
func (r Report) EDP() float64 {
	return r.Total() * float64(r.Cycles)
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	total := r.Total()
	fmt.Fprintf(&b, "energy %.2f uJ over %d cycles, %d instructions (%.1f pJ/inst):\n",
		total/1e6, r.Cycles, r.Instructions, r.EPI())
	row := func(name string, v float64) {
		pct := 0.0
		if total > 0 {
			pct = 100 * v / total
		}
		fmt.Fprintf(&b, "  %-8s %10.2f uJ  %5.1f%%\n", name, v/1e6, pct)
	}
	row("core", r.Core)
	row("L1", r.L1)
	row("L2", r.L2)
	row("DRAM", r.DRAM)
	row("fabric", r.Fabric)
	row("static", r.Static)
	return b.String()
}

// Estimate computes the energy report for a finished run. The run must
// have been made with RunConfig.KeepCores so the memory hierarchy's event
// counts are available; Estimate panics otherwise (programmer error).
func Estimate(res multicore.Result, p Params) Report {
	if res.Mem == nil {
		panic("energy: run was made without RunConfig.KeepCores")
	}
	h := res.Mem
	var r Report
	r.Cycles = res.Cycles
	r.Instructions = res.TotalRetired

	r.Core = p.PerInstruction * float64(res.TotalRetired)

	var l1 uint64
	for i := range res.Cores {
		l1 += h.L1I(i).Hits + h.L1I(i).Misses + h.L1D(i).Hits + h.L1D(i).Misses
	}
	r.L1 = p.PerL1Access * float64(l1)

	l2MB := 0.0
	if l2 := h.L2(); l2 != nil {
		r.L2 = p.PerL2Access * float64(l2.Hits+l2.Misses)
		l2MB = float64(l2.Config().SizeBytes) / float64(1<<20)
	}

	r.DRAM = p.PerDRAMAccess * float64(h.DRAM().Stats().Requests)
	r.Fabric = p.PerFabricTx * float64(h.Fabric().TxCount())

	perCycle := p.StaticPerCoreCycle*float64(len(res.Cores)) + p.StaticL2PerCycleMB*l2MB
	r.Static = perCycle * float64(res.Cycles)
	return r
}
