// Package simrun is the one way to describe and execute simulations: a
// scenario builder with functional options, a core-model registry, and a
// parallel batch runner.
//
// Every driver and example builds runs the same way:
//
//	s, err := simrun.New("gcc",
//		simrun.Cores(4),
//		simrun.Model("interval"),
//		simrun.Fabric("mesh"),
//		simrun.Insts(50_000),
//	)
//	res, err := s.Run(context.Background())
//
// New owns workload resolution (SPEC/PARSEC profiles, multi-program
// copies, per-core mixes), warmup-twin stream construction and
// machine-config knob application, and validates every knob eagerly so
// command-line front ends can reject bad flags with one error check.
// Batch executes a slice of scenarios across a host worker pool with
// context cancellation, per-scenario timeouts and deterministic result
// ordering.
package simrun

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// warmSeedOffset separates the warmup-twin stream's seed from the measured
// stream's: the twin trains the same predictor sites and touches the same
// regions without replaying the exact future line sequence.
const warmSeedOffset = 1000

// Scenario is one fully described simulation run. Build it with New; the
// zero value is not usable.
type Scenario struct {
	bench  string
	label  string
	model  string
	engine string // registered engine name; "" = DefaultEngine

	cores  int
	copies int
	mix    []string

	insts  int
	warmup int
	seed   int64
	scale  float64 // PARSEC TotalWork scale (1 = profile value)

	machine    *config.Machine
	configure  []func(*config.Machine)
	perfect    memhier.Perfect
	ablation   core.Options
	keepCores  bool
	maxCycles  int64
	hostpar    int
	quantum    int64
	streams    []trace.Stream
	warmStream []trace.Stream

	// obsv holds the attached observability sinks (span tracer,
	// progress callback). It is a host-side concern: deliberately
	// absent from the fingerprint (like hostpar/quantum) and carried
	// along by ForEngine's copy so tiered serving traces the whole
	// lifecycle of one job through one tracer.
	obsv *obs.Observer

	// Resolved at New time.
	profile *workload.Profile // nil when streams or mix are explicit
	mixped  []*workload.Profile
}

// Option configures a Scenario; options are applied in order.
type Option func(*Scenario) error

// New builds a scenario for the named benchmark profile (SPEC or PARSEC).
// bench may be empty only when Streams supplies the instruction streams
// explicitly. All options are validated eagerly: unknown benchmark, model,
// fabric, coherence, DRAM, prefetcher and predictor names are errors here,
// not at run time.
func New(bench string, opts ...Option) (*Scenario, error) {
	// cores stays 0 unless the Cores option is given, so Threads can fall
	// back to an explicit Machine's core count.
	s := &Scenario{
		bench: bench,
		model: "interval",
		insts: 100_000,
		seed:  42,
		scale: 1,
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if _, err := LookupModel(s.model); err != nil {
		return nil, err
	}
	if err := s.resolveWorkload(); err != nil {
		return nil, err
	}
	// Resolve the machine once so option typos surface before any run.
	if _, err := s.ResolvedMachine(); err != nil {
		return nil, err
	}
	// Engine validation runs last: Supports hooks inspect the resolved
	// workload (profile, thread count), so an unsupported pin is
	// rejected with the engine's own explanation, not a run-time error.
	if err := s.validateEngine(); err != nil {
		return nil, err
	}
	return s, nil
}

// validateEngine checks the selected engine against the registry and the
// resolved workload.
func (s *Scenario) validateEngine() error {
	if s.engine == "" {
		return nil
	}
	eng, err := LookupEngine(s.engine)
	if err != nil {
		return err
	}
	if err := eng.Supports(s); err != nil {
		return fmt.Errorf("simrun: engine %q cannot run scenario %q: %w", s.engine, s.Name(), err)
	}
	return nil
}

// MustNew is New for program setup paths where a bad scenario is a bug.
func MustNew(bench string, opts ...Option) *Scenario {
	s, err := New(bench, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// resolveWorkload checks the benchmark name against the profile sets (or
// the explicit stream/mix options) and remembers the resolution.
func (s *Scenario) resolveWorkload() error {
	switch {
	case s.streams != nil:
		return nil
	case len(s.mix) > 0:
		for _, name := range s.mix {
			p := workload.SPECByName(name)
			if p == nil {
				return fmt.Errorf("simrun: unknown SPEC profile %q in mix", name)
			}
			s.mixped = append(s.mixped, p)
		}
		// Each mix copy needs its own address-space slot; beyond
		// MaxSlots the slots would silently alias.
		if n := s.Threads(); n > workload.MaxSlots {
			return fmt.Errorf("simrun: mix runs one address-space slot per core and supports at most %d cores, got %d", workload.MaxSlots, n)
		}
		return nil
	case s.bench == "":
		return fmt.Errorf("simrun: no benchmark name and no explicit streams")
	}
	if p := workload.SPECByName(s.bench); p != nil {
		s.profile = p
		return nil
	}
	if p := workload.PARSECByName(s.bench); p != nil {
		s.profile = p
		return nil
	}
	return fmt.Errorf("simrun: unknown benchmark %q", s.bench)
}

// Threads is the number of simulated cores (= streams) the scenario runs.
func (s *Scenario) Threads() int {
	if s.streams != nil {
		return len(s.streams)
	}
	if s.copies > 0 {
		return s.copies
	}
	if s.cores > 0 {
		return s.cores
	}
	if s.machine != nil {
		return s.machine.Cores
	}
	return 1
}

// Name is the scenario's display label: the Label option when set, the
// benchmark name otherwise.
func (s *Scenario) Name() string {
	if s.label != "" {
		return s.label
	}
	return s.bench
}

// ModelName is the registered core-model name the scenario runs under.
func (s *Scenario) ModelName() string { return s.model }

// EngineName is the registered engine the scenario runs under —
// DefaultEngine ("full") unless the Engine option chose an estimator.
func (s *Scenario) EngineName() string {
	if s.engine == "" {
		return DefaultEngine
	}
	return s.engine
}

// EnginePinned reports whether the Engine option chose an engine
// explicitly. A scenario that pinned "full" runs at full fidelity even
// under serving layers that would otherwise answer cheap-first — pinning
// the default is how a client opts a single query out of tiered serving.
func (s *Scenario) EnginePinned() bool { return s.engine != "" }

// ForEngine returns a copy of the scenario pinned to the named engine.
// The copy shares the scenario's fingerprint — the engine choice is a
// host-side serving decision, never part of the simulated identity — so
// a cheap-tier answer and the full answer land in the same cache slot.
func (s *Scenario) ForEngine(name string) (*Scenario, error) {
	c := *s
	c.engine = name
	if err := c.validateEngine(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Profile returns the resolved single-benchmark workload profile, or nil
// when the scenario runs explicit streams or a heterogeneous mix.
// Estimator engines profile it to build their cheap stand-in workloads.
func (s *Scenario) Profile() *workload.Profile { return s.profile }

// InstBudget is the per-thread measured instruction budget (the Insts
// option).
func (s *Scenario) InstBudget() int { return s.insts }

// WarmupBudget is the per-thread functional-warmup budget (the Warmup
// option).
func (s *Scenario) WarmupBudget() int { return s.warmup }

// SeedValue is the deterministic workload seed (the Seed option).
func (s *Scenario) SeedValue() int64 { return s.seed }

// Observer returns the attached observability sinks (nil = none).
func (s *Scenario) Observer() *obs.Observer { return s.obsv }

// SetObserver attaches observability sinks after construction — the
// path for serving layers that build scenarios from wire specs and
// then instrument them per job. Equivalent to the Observe option.
func (s *Scenario) SetObserver(o *obs.Observer) { s.obsv = o }

// tracer is the attached span tracer; nil (and therefore free) when no
// observer is attached.
func (s *Scenario) tracer() *obs.Tracer { return s.obsv.ObsTracer() }

// TotalInstBudget is the scenario's total instruction budget summed
// across cores, when known: the denominator live-progress reports use
// for completion ratio and ETA. Zero for explicit streams (their
// length is unknowable up front).
func (s *Scenario) TotalInstBudget() uint64 {
	switch {
	case s.streams != nil:
		return 0
	case s.profile != nil && s.profile.MultiThreaded():
		w := float64(s.profile.TotalWork)
		if s.scale > 0 {
			w *= s.scale
		}
		return uint64(w)
	default:
		return uint64(s.insts) * uint64(s.Threads())
	}
}

// ResolvedMachine returns the machine configuration the scenario will
// simulate: the explicit Machine base (or the Table 1 default sized to
// Threads), with every knob option applied in order.
func (s *Scenario) ResolvedMachine() (config.Machine, error) {
	var m config.Machine
	if s.machine != nil {
		m = *s.machine
	} else {
		m = config.Default(s.Threads())
	}
	m.Cores = s.Threads()
	for _, f := range s.configure {
		f(&m)
	}
	return m, nil
}

// The closed knob-value sets. The first entry of each is the baseline;
// the options translate it to the config package's zero value. Knobs
// exposes them to discovery front ends (the simd catalog), so the lists
// served to users are the lists the options validate against.
var knobSets = map[string][]string{
	"fabric":    {"bus", "mesh", "ring"},
	"coherence": {"moesi", "mesi", "directory"},
	"dram":      {"fixed", "banked"},
	"prefetch":  {"none", "nextline", "stride"},
	"predictor": {"local", "gshare", "bimodal", "tournament", "tage", "perfect"},
	// hostpar is an open integer knob (HostParallel); the listed values
	// are the suggested settings served to discovery front ends. It is a
	// host-execution knob: it never changes simulated results, so it is
	// deliberately absent from the scenario fingerprint.
	"hostpar": {"0", "1", "2", "4", "8"},
}

// Knobs returns the closed knob-value sets by knob name (fabric,
// coherence, dram, prefetch, predictor), baseline first, plus the
// dynamic "engine" set (the registered engines, DefaultEngine first).
// The returned slices are copies.
func Knobs() map[string][]string {
	out := make(map[string][]string, len(knobSets)+1)
	for k, v := range knobSets {
		out[k] = append([]string(nil), v...)
	}
	engines := []string{DefaultEngine}
	for _, e := range Engines() {
		if e != DefaultEngine {
			engines = append(engines, e)
		}
	}
	out["engine"] = engines
	return out
}

// oneOf validates a knob value against its closed name set.
func oneOf(kind, knob, v string) error {
	valid := knobSets[knob]
	for _, ok := range valid {
		if v == ok {
			return nil
		}
	}
	return fmt.Errorf("simrun: unknown %s %q (want %s)", kind, v, strings.Join(valid, ", "))
}

// Model selects the core timing model by registered name (see
// RegisterModel); the built-ins are "interval", "detailed" and "oneipc".
func Model(name string) Option {
	return func(s *Scenario) error {
		if _, err := LookupModel(name); err != nil {
			return err
		}
		s.model = name
		return nil
	}
}

// Engine selects the answering engine by registered name (see
// RegisterEngine): DefaultEngine ("full") runs the entire budget under
// the scenario's core model; estimator engines ("statistical",
// "simpoint" — registered by importing internal/engine) answer at a
// cheaper fidelity tier. The choice never enters the scenario
// fingerprint: every engine answers the same scenario, and caches only
// ever upgrade an entry to a higher tier. Unknown names and unsupported
// scenario/engine combinations are rejected by New.
func Engine(name string) Option {
	return func(s *Scenario) error {
		if name == "" {
			return fmt.Errorf("simrun: empty engine name")
		}
		s.engine = name
		return nil
	}
}

// Cores sets the simulated core count; PARSEC profiles run one thread per
// core.
func Cores(n int) Option {
	return func(s *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("simrun: cores must be positive, got %d", n)
		}
		s.cores = n
		return nil
	}
}

// Copies runs n copies of a SPEC profile as a multi-program workload, one
// per core.
func Copies(n int) Option {
	return func(s *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("simrun: copies must be positive, got %d", n)
		}
		s.copies = n
		return nil
	}
}

// Mix runs a heterogeneous multi-program workload: core i runs SPEC
// profile names[i%len(names)] with a per-core seed (seed+i) in its own
// address-space slot (workload.NewSlot, stream format v2, so copies
// never alias cache lines), the way the fabric and NoC studies construct
// bandwidth-hungry mixes. Combine with Cores to set the machine size
// (default: one core per name).
func Mix(names ...string) Option {
	return func(s *Scenario) error {
		if len(names) == 0 {
			return fmt.Errorf("simrun: empty mix")
		}
		s.mix = names
		if s.cores == 0 {
			s.cores = len(names)
		}
		return nil
	}
}

// Insts sets the per-thread measured instruction budget for SPEC-style
// profiles (PARSEC profiles carry their own work budget). Default 100000.
func Insts(n int) Option {
	return func(s *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("simrun: insts must be positive, got %d", n)
		}
		s.insts = n
		return nil
	}
}

// Warmup functionally warms caches, TLBs and branch predictors with n
// instructions per core (via a warmup-twin stream) before timed
// simulation. Default 0: no warming.
func Warmup(n int) Option {
	return func(s *Scenario) error {
		if n < 0 {
			return fmt.Errorf("simrun: warmup must be non-negative, got %d", n)
		}
		s.warmup = n
		return nil
	}
}

// Seed selects the deterministic workload instance. Default 42.
func Seed(seed int64) Option {
	return func(s *Scenario) error { s.seed = seed; return nil }
}

// WorkScale scales a PARSEC profile's total work (1 = profile value), for
// quick looks at multi-threaded benchmarks.
func WorkScale(f float64) Option {
	return func(s *Scenario) error {
		if f <= 0 {
			return fmt.Errorf("simrun: work scale must be positive, got %g", f)
		}
		s.scale = f
		return nil
	}
}

// Fabric selects the on-chip interconnect: "bus" (baseline), "mesh" or
// "ring".
func Fabric(name string) Option {
	return func(s *Scenario) error {
		if err := oneOf("fabric", "fabric", name); err != nil {
			return err
		}
		s.configure = append(s.configure, func(m *config.Machine) { m.Mem.Interconnect = name })
		return nil
	}
}

// Coherence selects the protocol: "moesi" (baseline), "mesi" or
// "directory".
func Coherence(name string) Option {
	return func(s *Scenario) error {
		if err := oneOf("coherence protocol", "coherence", name); err != nil {
			return err
		}
		s.configure = append(s.configure, func(m *config.Machine) { m.Mem.Coherence = name })
		return nil
	}
}

// DRAM selects the main-memory model: "fixed" (baseline) or "banked".
func DRAM(kind string) Option {
	return func(s *Scenario) error {
		if err := oneOf("DRAM model", "dram", kind); err != nil {
			return err
		}
		s.configure = append(s.configure, func(m *config.Machine) {
			if kind == "banked" {
				m.Mem.DRAMKind = "banked"
			} else {
				m.Mem.DRAMKind = ""
			}
		})
		return nil
	}
}

// Prefetch selects the hardware prefetcher: "none" (baseline), "nextline"
// or "stride" (degree 2 unless the machine is configured otherwise).
func Prefetch(name string) Option {
	return func(s *Scenario) error {
		if err := oneOf("prefetcher", "prefetch", name); err != nil {
			return err
		}
		s.configure = append(s.configure, func(m *config.Machine) {
			if name == "none" {
				m.Mem.Prefetch = ""
				return
			}
			m.Mem.Prefetch = name
			if m.Mem.PrefetchDegree == 0 {
				m.Mem.PrefetchDegree = 2
			}
		})
		return nil
	}
}

// Predictor selects the branch direction predictor: "local" (baseline),
// "gshare", "bimodal", "tournament", "tage" or "perfect".
func Predictor(kind string) Option {
	return func(s *Scenario) error {
		if err := oneOf("predictor", "predictor", kind); err != nil {
			return err
		}
		s.configure = append(s.configure, func(m *config.Machine) { m.Branch.Kind = kind })
		return nil
	}
}

// HostParallel runs the simulation on the host-parallel deterministic
// engine (internal/parsim): one host goroutine per simulated core,
// stepping under an epoch barrier with shared-hierarchy requests
// committed in the sequential driver's order. n > 0 enables the engine,
// 0 (the default) selects the sequential driver. The engine always runs
// one goroutine per simulated core (the Go scheduler maps them onto up to
// GOMAXPROCS host threads); values of n beyond 1 are advisory today and
// reserved for a future host-thread cap. Results are bit-identical
// either way — hostpar is a host-execution knob, not a machine knob — so
// it does not enter the scenario fingerprint and cached results are
// shared across settings.
//
// The engine accelerates multiprogram scenarios — SPEC profiles under
// Cores/Copies and heterogeneous Mix workloads — whose per-core address
// spaces are disjoint (Mix copies since stream format v2, which gives
// each copy its own slot). Scenarios whose threads genuinely share lines
// or synchronize (PARSEC profiles) detect the interaction and fall back
// to the sequential driver automatically; explicit-Streams scenarios
// always run sequentially (their stateful streams cannot be rebuilt for
// the fallback).
func HostParallel(n int) Option {
	return func(s *Scenario) error {
		if n < 0 {
			return fmt.Errorf("simrun: hostpar must be non-negative, got %d", n)
		}
		s.hostpar = n
		return nil
	}
}

// EpochQuantum sets the parallel engine's epoch length in simulated
// cycles (0 = the engine default). Any value ≥ 1 simulates identically;
// it tunes host synchronization frequency only.
func EpochQuantum(q int64) Option {
	return func(s *Scenario) error {
		if q < 0 {
			return fmt.Errorf("simrun: epoch quantum must be non-negative, got %d", q)
		}
		s.quantum = q
		return nil
	}
}

// Observe attaches observability sinks — a span tracer for lifecycle
// and engine spans, and a throttled progress callback — to the
// scenario. Observability is strictly host-side: it never enters the
// scenario fingerprint, never alters simulated results or report
// payloads, and a scenario without an observer pays nothing (every
// hook is a nil-check no-op).
func Observe(o *obs.Observer) Option {
	return func(s *Scenario) error { s.obsv = o; return nil }
}

// Machine replaces the Table 1 default with m as the base machine (its
// core count is overridden to the scenario's thread count). Knob options
// still apply on top.
func Machine(m config.Machine) Option {
	return func(s *Scenario) error { s.machine = &m; return nil }
}

// Configure applies an arbitrary machine tweak after the base machine and
// knob options — the escape hatch for sweeps over structure sizes.
func Configure(f func(*config.Machine)) Option {
	return func(s *Scenario) error { s.configure = append(s.configure, f); return nil }
}

// Perfect selects always-hit structures (the paper's Figure 4 step-by-step
// accuracy experiments).
func Perfect(p memhier.Perfect) Option {
	return func(s *Scenario) error { s.perfect = p; return nil }
}

// Ablation selects interval-model ablation variants (zero value = full
// model); other models ignore it.
func Ablation(o core.Options) Option {
	return func(s *Scenario) error { s.ablation = o; return nil }
}

// KeepCores retains the core model objects and memory hierarchy in the
// result for post-run inspection (CPI stacks, fabric and DRAM statistics).
func KeepCores() Option {
	return func(s *Scenario) error { s.keepCores = true; return nil }
}

// MaxCycles aborts runaway runs (0 = the driver's generous default).
func MaxCycles(n int64) Option {
	return func(s *Scenario) error {
		if n < 0 {
			return fmt.Errorf("simrun: max cycles must be non-negative, got %d", n)
		}
		s.maxCycles = n
		return nil
	}
}

// Streams supplies the instruction streams explicitly (recorded traces,
// slice streams, statistical clones), bypassing benchmark resolution; warm
// optionally supplies separate warmup streams. Streams are stateful, so a
// scenario built this way can only run once.
func Streams(streams, warm []trace.Stream) Option {
	return func(s *Scenario) error {
		if len(streams) == 0 {
			return fmt.Errorf("simrun: empty stream set")
		}
		s.streams = streams
		s.warmStream = warm
		return nil
	}
}

// Label overrides the scenario's display name (useful with Streams or
// Mix, where the benchmark name alone does not describe the run).
func Label(name string) Option {
	return func(s *Scenario) error { s.label = name; return nil }
}
