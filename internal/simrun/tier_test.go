package simrun

import (
	"context"
	"strings"
	"testing"
)

func TestTierLattice(t *testing.T) {
	order := []Tier{TierStatistical, TierSampled, TierInterval, TierDetailed}
	for i := 1; i < len(order); i++ {
		if order[i].Rank() <= order[i-1].Rank() {
			t.Errorf("%s (rank %d) should outrank %s (rank %d)", order[i], order[i].Rank(), order[i-1], order[i-1].Rank())
		}
		if order[i-1].AtLeast(order[i]) {
			t.Errorf("%s.AtLeast(%s) = true", order[i-1], order[i])
		}
		if !order[i].AtLeast(order[i-1]) {
			t.Errorf("%s.AtLeast(%s) = false", order[i], order[i-1])
		}
	}
	// Untagged (and unknown) tiers are definitive: a payload written
	// before tiers existed must never be clobbered by an estimate.
	for _, tr := range []Tier{"", "mystery"} {
		if !tr.AtLeast(TierDetailed) {
			t.Errorf("tier %q should rank as definitive", tr)
		}
	}
}

func TestTiersCheapestFirst(t *testing.T) {
	ts := Tiers()
	for i := 1; i < len(ts); i++ {
		if ts[i].Rank() <= ts[i-1].Rank() {
			t.Fatalf("Tiers() not cheapest-first: %v", ts)
		}
	}
}

// TestUnknownEngineRejected is the loud-rejection contract: a typo'd
// engine name fails scenario construction with the registered set in the
// message, through both the option and the wire-format path.
func TestUnknownEngineRejected(t *testing.T) {
	_, err := New("gcc", Engine("warp"))
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, want := range []string{"unknown engine", `"warp"`, DefaultEngine} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	sp := Spec{Bench: "gcc", Engine: "warp"}
	if _, err := sp.Scenario(); err == nil {
		t.Fatal("spec with unknown engine accepted")
	}
}

// tierTestEngine registers a throwaway estimator engine and returns its
// name; registration is global and permanent, so every caller gets a
// distinct name.
func tierTestEngine(t *testing.T, name string, tier Tier, cycles int64) string {
	t.Helper()
	RegisterEngine(EngineDef{
		Name:     name,
		Tier:     func(*Scenario) Tier { return tier },
		Cost:     func(*Scenario) float64 { return 1 },
		Supports: func(*Scenario) error { return nil },
		Run: func(ctx context.Context, s *Scenario) (Result, error) {
			var res Result
			res.Cycles = cycles
			res.TotalRetired = 100
			return res, nil
		},
	})
	return name
}

func TestForEngineSharesFingerprint(t *testing.T) {
	name := tierTestEngine(t, "tier-test-fp", TierStatistical, 1000)
	sc, err := New("gcc", Insts(5000), Warmup(1000))
	if err != nil {
		t.Fatal(err)
	}
	est, err := sc.ForEngine(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("engine entered the fingerprint: %s vs %s", a, b)
	}
	if est.EngineName() != name || sc.EngineName() != DefaultEngine {
		t.Fatalf("ForEngine mangled engine names: %q / %q", est.EngineName(), sc.EngineName())
	}
}

// TestCacheUpgradeOnly pins the cache's one-key-per-scenario invariant:
// a slot only ever moves up the tier lattice.
func TestCacheUpgradeOnly(t *testing.T) {
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if !c.store("k", res, []byte("estimate"), TierStatistical) {
		t.Fatal("insert rejected")
	}
	if c.store("k", res, []byte("re-estimate"), TierStatistical) {
		t.Error("same-tier store accepted")
	}
	if !c.store("k", res, []byte("full"), TierInterval) {
		t.Error("upgrade rejected")
	}
	if c.store("k", res, []byte("estimate-again"), TierStatistical) {
		t.Error("downgrade accepted")
	}
	if c.store("k", res, []byte("tagless"), TierInterval) {
		t.Error("same-tier re-store accepted after upgrade")
	}
	if got := c.Stats().Upgrades; got != 1 {
		t.Errorf("upgrades counter = %d, want 1", got)
	}
}

// TestGetOrRunUpgradesInPlace drives the full tier flow through the
// public API: an estimator engine fills the slot at a cheap tier, a
// full-tier request for the same scenario re-runs and upgrades the same
// key, and a later cheap request is satisfied by the upgraded entry.
func TestGetOrRunUpgradesInPlace(t *testing.T) {
	cheap := tierTestEngine(t, "tier-test-cheap", TierStatistical, 7777)
	c, err := NewCache(CacheOpts{Encode: testEncode})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New("gcc", Insts(2000), Warmup(500))
	if err != nil {
		t.Fatal(err)
	}
	est, err := full.ForEngine(cheap)
	if err != nil {
		t.Fatal(err)
	}

	e1, err := c.GetOrRun(context.Background(), est)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Tier != TierStatistical || e1.Source != SourceRun {
		t.Fatalf("estimate entry: tier %q source %q", e1.Tier, e1.Source)
	}

	e2, err := c.GetOrRun(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tier != TierInterval || e2.Source != SourceRun {
		t.Fatalf("full entry: tier %q source %q", e2.Tier, e2.Source)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 (shared key)", c.Len())
	}
	if got := c.Stats().Upgrades; got != 1 {
		t.Errorf("upgrades counter = %d, want 1", got)
	}

	// The cheap request is now a hit at the higher tier.
	e3, err := c.GetOrRun(context.Background(), est)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Source != SourceMemory || e3.Tier != TierInterval {
		t.Fatalf("post-upgrade estimate request: tier %q source %q", e3.Tier, e3.Source)
	}
	if runs := c.Stats().Runs; runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
}
