package report

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/simrun"
)

func runOnce(t *testing.T, opts ...simrun.Option) []byte {
	t.Helper()
	s, err := simrun.New("gcc", append([]simrun.Option{simrun.Insts(2000)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := JSON(res.Result)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// Host wall-clock is excluded from the encoding, so two runs of the same
// scenario — which always differ in Wall — encode byte-identically. This
// is what lets the result cache serve bit-identical bodies.
func TestJSONDeterministic(t *testing.T) {
	a := runOnce(t, simrun.KeepCores())
	b := runOnce(t, simrun.KeepCores())
	if !bytes.Equal(a, b) {
		t.Fatalf("same scenario encoded differently:\n%s\n%s", a, b)
	}
}

func TestJSONShape(t *testing.T) {
	var full Summary
	if err := json.Unmarshal(runOnce(t, simrun.KeepCores(), simrun.Cores(2)), &full); err != nil {
		t.Fatal(err)
	}
	if full.Model != "interval" {
		t.Errorf("model = %q, want interval", full.Model)
	}
	if len(full.Cores) != 2 {
		t.Errorf("got %d cores, want 2", len(full.Cores))
	}
	if full.Cycles <= 0 || full.Instructions == 0 {
		t.Errorf("implausible totals: cycles=%d instructions=%d", full.Cycles, full.Instructions)
	}
	for i, c := range full.Cores {
		if c.Core != i || c.IPC <= 0 {
			t.Errorf("core %d: %+v", i, c)
		}
	}
	if full.Mem == nil {
		t.Fatal("KeepCores run has no mem summary")
	}
	if full.Mem.L2 == nil {
		t.Error("baseline machine has an L2; summary omits it")
	}
	if len(full.Mem.Cores) != 2 {
		t.Errorf("mem summary covers %d cores, want 2", len(full.Mem.Cores))
	}

	// Without KeepCores there is no hierarchy to report.
	var bare Summary
	if err := json.Unmarshal(runOnce(t), &bare); err != nil {
		t.Fatal(err)
	}
	if bare.Mem != nil {
		t.Error("plain run unexpectedly has a mem summary")
	}
}

// Field names are stable API: tooling parses them.
func TestJSONStableFieldNames(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(runOnce(t, simrun.KeepCores()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"model", "cycles", "instructions", "cores", "mem"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("missing top-level field %q", key)
		}
	}
	for _, key := range []string{"wall", "mips"} {
		if _, ok := doc[key]; ok {
			t.Errorf("nondeterministic field %q leaked into the encoding", key)
		}
	}
}
