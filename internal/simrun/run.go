package simrun

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/branch"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario is the scenario that produced this result.
	Scenario *Scenario
	// Engine names the registered engine that produced the answer and
	// Tier classifies its fidelity (see EngineDef). The full engine
	// answers at the model's own tier; estimator engines answer lower.
	Engine string
	Tier   Tier
	multicore.Result
}

// buildStreams materializes the measured and warmup instruction streams,
// one per core. Generators are stateful, so this is called once per Run:
// every run starts from fresh, deterministic streams.
func (s *Scenario) buildStreams() (streams, warm []trace.Stream) {
	n := s.Threads()
	switch {
	case s.streams != nil:
		return s.streams, s.warmStream
	case len(s.mixped) > 0:
		// Heterogeneous mix: each core runs its own single-threaded
		// program instance with a per-core seed, instantiated at its
		// core's address-space slot (stream format v2). Copies of
		// different programs therefore never alias cache lines, so the
		// mix models true multi-programming — no phantom coherence
		// traffic — and the host-parallel engine can run it. The warmup
		// twin must live in the same slot as its measured stream or it
		// would warm the wrong lines.
		for i := 0; i < n; i++ {
			p := s.mixped[i%len(s.mixped)]
			streams = append(streams, trace.NewLimit(workload.NewSlot(p, 0, 1, s.seed+int64(i), i), s.insts))
			warm = append(warm, workload.NewSlot(p, 0, 1, s.seed+warmSeedOffset+int64(i), i))
		}
		return streams, warm
	case s.profile.MultiThreaded():
		p := *s.profile
		if s.scale > 0 && s.scale != 1 {
			p.TotalWork = uint64(float64(p.TotalWork) * s.scale)
		}
		for i := 0; i < n; i++ {
			streams = append(streams, workload.New(&p, i, n, s.seed))
			warm = append(warm, workload.New(&p, i, n, s.seed+warmSeedOffset))
		}
		return streams, warm
	default:
		// SPEC-style: n copies (or threads) under a per-thread budget.
		for i := 0; i < n; i++ {
			streams = append(streams, trace.NewLimit(workload.New(s.profile, i, n, s.seed), s.insts))
			warm = append(warm, workload.New(s.profile, i, n, s.seed+warmSeedOffset))
		}
		return streams, warm
	}
}

// Run executes the scenario on its selected engine (the full-budget
// simulation unless the Engine option chose an estimator) and stamps the
// result with the engine name and its fidelity tier. Cancelling ctx
// interrupts the simulation at the next driver poll and returns ctx's
// error alongside the partial result.
//
// Every dispatch is observable: the run is counted and its wall clock
// recorded per engine in obs.Default(), and when the scenario carries
// an observer, the whole engine run is bracketed in an "engine:<name>"
// span. Both are per-run costs, never per-cycle.
func (s *Scenario) Run(ctx context.Context) (Result, error) {
	eng, err := LookupEngine(s.EngineName())
	if err != nil {
		return Result{Scenario: s}, err
	}
	runs, wall := engineMetrics(eng.Name)
	sp := s.tracer().Start("engine:" + eng.Name)
	t0 := time.Now()
	res, err := runIsolated(ctx, eng, s)
	wall.Observe(time.Since(t0).Seconds())
	runs.Inc()
	sp.End()
	res.Scenario = s
	res.Engine = eng.Name
	res.Tier = eng.Tier(s)
	return res, err
}

// runIsolated is the panic boundary around an engine run: a panic in
// the engine (or the core models underneath it) fails this one run with
// the recovered value and stack in the error, instead of taking down
// the whole process — a batch keeps its other scenarios, a service
// worker keeps serving. (A panic on another goroutine — e.g. inside a
// parsim per-core worker — still crashes the process; the fleet layer
// exists to survive exactly that.)
func runIsolated(ctx context.Context, eng EngineDef, s *Scenario) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			obsMetrics()
			mEnginePanics.Inc()
			res = Result{Scenario: s}
			err = &PanicError{Engine: eng.Name, Scenario: s.Name(), Value: r, Stack: debug.Stack()}
		}
	}()
	return eng.Run(ctx, s)
}

// PanicError is a recovered engine panic, stack included, so the
// failure is debuggable from the one job it sank.
type PanicError struct {
	Engine   string
	Scenario string
	Value    any
	Stack    []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simrun: engine %q panicked running %q: %v\n%s", e.Engine, e.Scenario, e.Value, e.Stack)
}

// runFull is the full engine: the scenario's entire instruction budget
// under its own core model — the definitive answer every estimator tier
// is eventually upgraded to.
func (s *Scenario) runFull(ctx context.Context) (Result, error) {
	factory, err := LookupModel(s.model)
	if err != nil {
		return Result{Scenario: s}, err
	}
	machine, err := s.ResolvedMachine()
	if err != nil {
		return Result{Scenario: s}, err
	}
	streams, warm := s.buildStreams()

	cfg := multicore.RunConfig{
		Machine:     machine,
		Model:       legacyModel(s.model),
		ModelName:   s.model,
		Perfect:     s.perfect,
		MaxCycles:   s.maxCycles,
		KeepCores:   s.keepCores,
		WarmupInsts: s.warmup,
		Warmup:      warm,
		Ablation:    s.ablation,
		Interrupt:   ctx.Done(),
		Trace:       s.tracer(),
		Heartbeat:   s.heartbeat(),
		NewCore: func(i int, bp *branch.Unit, mem *memhier.Hierarchy, stream trace.Stream, coord sim.Syncer) sim.Core {
			return factory(CoreParams{
				ID:       i,
				Machine:  machine,
				Ablation: s.ablation,
				Branch:   bp,
				Mem:      mem,
				Stream:   stream,
				Sync:     coord,
			})
		},
	}
	if s.useHostParallel() {
		pres, ok := parsim.Run(cfg, parsim.Config{Quantum: s.quantum}, streams)
		if ok {
			res := Result{Scenario: s, Result: pres}
			if res.Interrupted {
				return res, ctx.Err()
			}
			return res, nil
		}
		// The workload's threads share lines or synchronize: the
		// parallel run aborted before committing anything the caller
		// can see. Rerun sequentially from fresh streams (generators
		// are stateful), which reproduces the canonical result.
		obsMetrics()
		mFallbacks.Inc()
		streams, warm = s.buildStreams()
		cfg.Warmup = warm
	}
	res := Result{Scenario: s, Result: multicore.Run(cfg, streams)}
	if res.Interrupted {
		return res, ctx.Err()
	}
	return res, nil
}

// heartbeat builds the driver's live-progress sink from the attached
// observer: nil (free) when no observer or no progress callback is
// attached. The tier reported is the full engine's — runFull is the
// definitive simulation; estimator engines answer too fast for
// progress to matter.
func (s *Scenario) heartbeat() *obs.Heartbeat {
	o := s.obsv
	if o == nil || o.Progress == nil {
		return nil
	}
	return &obs.Heartbeat{
		Emit:   o.Progress,
		Every:  o.ProgressEvery,
		Label:  s.Name(),
		Tier:   string(fullTier(s)),
		Budget: s.TotalInstBudget(),
	}
}

// useHostParallel reports whether the scenario should attempt the
// host-parallel engine: HostParallel was requested, there is more than
// one simulated core, the streams can be rebuilt for a fallback (not
// explicit Streams), the core model is one of the built-ins (the
// engine's per-core schedule is proven equivalent to the sequential
// driver's for those; registered custom models get no such guarantee, so
// they run sequentially), and the workload is not one that is certain to
// abort (PARSEC-style multi-threaded profiles synchronize from the
// start). Multiprogram scenarios — homogeneous Copies and, since stream
// format v2 gave each copy a disjoint address-space slot, heterogeneous
// Mix — run parallel to completion.
func (s *Scenario) useHostParallel() bool {
	if s.hostpar <= 0 || s.Threads() <= 1 || s.streams != nil {
		return false
	}
	switch s.model {
	case "interval", "detailed", "oneipc":
	default:
		return false
	}
	if s.profile != nil && s.profile.MultiThreaded() {
		return false
	}
	return true
}
