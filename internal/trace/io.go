package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format: a magic header followed by fixed-width little-endian
// instruction records. Recording a generated stream lets an experiment be
// replayed exactly (e.g. feeding the identical committed stream to an
// external tool, or rerunning a timing study without regenerating), which
// is the natural workflow for a functional-first simulator.

const (
	traceMagic   = uint32(0x49564c53) // "SLVI"
	traceVersion = uint32(1)
	recordBytes  = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 8 + 2 // fields below
)

// WriteTrace drains src to w in binary format, writing at most n
// instructions. It returns the number written.
func WriteTrace(w io.Writer, src Stream, n int) (int, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: writing header: %w", err)
	}
	var rec [recordBytes]byte
	written := 0
	for written < n {
		in, ok := src.Next()
		if !ok {
			break
		}
		encode(&rec, &in)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, fmt.Errorf("trace: writing record %d: %w", written, err)
		}
		written++
	}
	return written, bw.Flush()
}

func encode(rec *[recordBytes]byte, in *isa.Inst) {
	binary.LittleEndian.PutUint64(rec[0:], in.Seq)
	binary.LittleEndian.PutUint64(rec[8:], in.PC)
	rec[16] = uint8(in.Class)
	rec[17] = in.Src1
	rec[18] = in.Src2
	rec[19] = in.Dst
	binary.LittleEndian.PutUint64(rec[20:], in.Addr)
	if in.Taken {
		rec[28] = 1
	} else {
		rec[28] = 0
	}
	binary.LittleEndian.PutUint64(rec[29:], in.Target)
	binary.LittleEndian.PutUint16(rec[37:], in.SyncID)
}

func decode(rec *[recordBytes]byte) isa.Inst {
	return isa.Inst{
		Seq:    binary.LittleEndian.Uint64(rec[0:]),
		PC:     binary.LittleEndian.Uint64(rec[8:]),
		Class:  isa.Class(rec[16]),
		Src1:   rec[17],
		Src2:   rec[18],
		Dst:    rec[19],
		Addr:   binary.LittleEndian.Uint64(rec[20:]),
		Taken:  rec[28] == 1,
		Target: binary.LittleEndian.Uint64(rec[29:]),
		SyncID: binary.LittleEndian.Uint16(rec[37:]),
	}
}

// Reader replays a binary trace from an io.Reader. It implements Stream.
type Reader struct {
	br  *bufio.Reader
	err error
}

// NewReader validates the trace header and returns a replaying Stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{br: br}, nil
}

// Next implements Stream.
func (r *Reader) Next() (isa.Inst, bool) {
	if r.err != nil {
		return isa.Inst{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		r.err = err
		return isa.Inst{}, false
	}
	return decode(&rec), true
}

// Err returns the terminal error, nil on clean EOF.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}
