// Package sim defines the small contracts between core timing models (the
// detailed out-of-order baseline and the interval model) and the multi-core
// driver: the per-cycle stepping interface and the synchronization
// arbitration interface. Keeping these here lets the two core models stay
// independent of the driver and of each other.
package sim

import "repro/internal/isa"

// Core is one simulated core as seen by the multi-core driver. The driver
// advances global time cycle by cycle and calls Step once per cycle on
// every core that has not finished.
type Core interface {
	// Step simulates global cycle now for this core. Implementations
	// that are ahead of global time (interval simulation's per-core
	// simulated time) may do nothing.
	Step(now int64)
	// Done reports whether the core's thread has finished: stream
	// exhausted and all buffered work drained.
	Done() bool
	// Retired returns the number of committed instructions.
	Retired() uint64
	// FinishTime returns the core-local simulated time at which the
	// thread finished (valid once Done).
	FinishTime() int64
}

// SyncDecision is the driver's answer to a synchronization request.
type SyncDecision struct {
	// Proceed is true when the thread may execute the synchronization
	// instruction now.
	Proceed bool
	// Latency is the execution cost of the operation when proceeding
	// (lock transfer, barrier release broadcast).
	Latency int64
}

// Syncer arbitrates barriers and locks between threads. Core models call
// Sync each cycle a synchronization instruction is ready to execute and
// stall while Proceed is false; the call is idempotent per (core, seq) —
// repeated polling must not double-register an arrival.
type Syncer interface {
	Sync(core int, in *isa.Inst, now int64) SyncDecision
}

// TimeSkipper is an optional interface for core models whose per-core
// simulated time can run ahead of global time (the interval and one-IPC
// models). NextActive returns the earliest global cycle at which the core
// will do work; the driver may advance global time straight to the minimum
// over all live cores, which is exactly equivalent to stepping through the
// intervening cycles (no core would have been simulated in them).
type TimeSkipper interface {
	NextActive(now int64) int64
}

// NullSyncer lets every synchronization instruction proceed immediately;
// used for single-threaded runs.
type NullSyncer struct{}

// Sync implements Syncer.
func (NullSyncer) Sync(int, *isa.Inst, int64) SyncDecision {
	return SyncDecision{Proceed: true, Latency: 1}
}
