// Documentation audit: every internal package must carry a package-level
// doc comment (the docs/ tree points into them, and `go doc` is the
// canonical reference for each layer). The test fails naming the
// undocumented packages, so a new package cannot land without its
// one-paragraph contract.
package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackagesDocumented parses the package clause of every
// internal/* package and fails when one has no package doc comment on
// any of its files.
func TestInternalPackagesDocumented(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found (test must run from the repo root)")
	}
	var missing []string
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		sawSource := false
		fset := token.NewFileSet()
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			sawSource = true
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if sawSource && !documented {
			missing = append(missing, dir)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("internal packages without a package-level doc comment:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
