// Package interconnect models the on-chip interconnection network between
// the private L1 caches and the shared L2/snoop bus — one of the simulated
// components the paper's framework lists alongside the caches and the
// coherence protocol. The model is a split-transaction shared bus: every
// L1-miss transaction (L2 access, coherence broadcast, intervention) takes
// a fixed hop latency and occupies the bus for a configurable number of
// cycles, so co-running cores contend for a finite transaction bandwidth.
package interconnect

// Bus is a shared split-transaction bus. A transaction issued at time t
// completes its request phase after max(t, busFree) - t queueing plus the
// hop latency; the bus stays busy for the occupancy.
type Bus struct {
	hop       int64
	occupancy int64
	busFree   int64

	Transactions uint64
	StallTotal   int64 // cycles spent queueing
	BusyTotal    int64 // cycles the bus was occupied
}

// New creates a bus with the given hop latency (cycles from a core to the
// L2/snoop point) and per-transaction occupancy (address/snoop slot width).
func New(hopLatency, occupancy int) *Bus {
	if occupancy < 1 {
		occupancy = 1
	}
	return &Bus{hop: int64(hopLatency), occupancy: int64(occupancy)}
}

// Access issues a transaction at time now and returns its total latency
// (queueing + hop).
func (b *Bus) Access(now int64) int64 {
	b.Transactions++
	start := now
	if b.busFree > start {
		start = b.busFree
	}
	b.StallTotal += start - now
	b.busFree = start + b.occupancy
	b.BusyTotal += b.occupancy
	return (start - now) + b.hop
}

// AccessFrom issues a transaction at time now and returns its total
// latency. The bus is symmetric, so the requesting core is irrelevant; the
// method exists so the bus satisfies the same fabric contract as the mesh
// and ring networks of package noc.
func (b *Bus) AccessFrom(_ int, now int64) int64 { return b.Access(now) }

// TxCount returns the number of transactions issued.
func (b *Bus) TxCount() uint64 { return b.Transactions }

// StallCycles returns the total cycles transactions spent queueing.
func (b *Bus) StallCycles() int64 { return b.StallTotal }

// HopLatency returns the uncontended transaction latency.
func (b *Bus) HopLatency() int64 { return b.hop }

// Utilization returns the busy fraction of cycles up to now.
func (b *Bus) Utilization(now int64) float64 {
	if now <= 0 {
		return 0
	}
	return float64(b.BusyTotal) / float64(now)
}

// ResetStats clears statistics and pending occupancy.
func (b *Bus) ResetStats() {
	b.busFree = 0
	b.Transactions, b.StallTotal, b.BusyTotal = 0, 0, 0
}
