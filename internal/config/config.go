// Package config defines the machine configuration shared by the detailed
// out-of-order baseline and the interval simulator: core structures, cache
// and TLB geometry, DRAM timing and off-chip bandwidth.
//
// The defaults reproduce Table 1 of the paper: a 4-wide superscalar
// out-of-order core with a 256-entry ROB, a 12Kbit local branch predictor,
// 32KB 4-way L1 caches, a shared 4MB 8-way L2 with 12-cycle latency, a
// MOESI coherence protocol, 150-cycle DRAM and a 16-byte memory bus.
package config

import "repro/internal/isa"

// Core describes one processor core (Table 1, "Processor core").
type Core struct {
	ROBSize         int // reorder buffer entries
	IssueQueueSize  int // issue queue entries
	LSQSize         int // load-store queue entries
	StoreBufferSize int // store buffer entries

	DecodeWidth int // decode/dispatch/commit width
	IssueWidth  int // issue width
	FetchWidth  int // fetch width

	IntALUs       int // integer functional units
	LoadStoreFUs  int // load/store functional units
	FPUnits       int // floating-point functional units
	FetchQueue    int // fetch queue entries
	FrontendDepth int // front-end pipeline depth in stages

	// Execution latencies in cycles (Table 1: load 2, mul 3, fp 4,
	// div 20; single-cycle integer ALU).
	LatIntALU int
	LatMul    int
	LatDiv    int
	LatFP     int
	LatLoad   int // L1 hit (load-to-use) latency

	// MaxOutstandingMisses bounds the number of long-latency loads that
	// may overlap (the hardware's outstanding-miss capacity; the paper:
	// MLP is exposed "provided that a sufficient number of outstanding
	// long-latency loads are supported by the hardware"). Zero selects
	// 32, matching the MSHR file.
	MaxOutstandingMisses int
}

// BranchPredictor describes the front-end predictor (Table 1: 12Kbit local
// predictor, 32-entry RAS, 8-way set-associative 2K-entry BTB).
type BranchPredictor struct {
	// Kind selects the direction predictor: "local", "gshare",
	// "bimodal" or "perfect".
	Kind string
	// LocalHistoryEntries is the number of per-branch history registers.
	LocalHistoryEntries int
	// LocalHistoryBits is the history length per entry.
	LocalHistoryBits int
	// PHTEntries is the number of pattern-history counters.
	PHTEntries int
	// BTBEntries and BTBAssoc give the branch target buffer geometry.
	BTBEntries int
	BTBAssoc   int
	// RASEntries is the return address stack depth.
	RASEntries int
}

// Cache describes one cache level.
type Cache struct {
	SizeBytes int
	Assoc     int
	LineSize  int
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Cache) Sets() int { return c.SizeBytes / (c.Assoc * c.LineSize) }

// TLB describes a translation lookaside buffer.
type TLB struct {
	Entries  int
	Assoc    int
	PageSize int
	// MissLatency is the page-walk cost in cycles.
	MissLatency int
}

// Memory describes the shared memory system (Table 1, "Memory subsystem").
type Memory struct {
	L1I  Cache
	L1D  Cache
	L2   Cache
	ITLB TLB
	DTLB TLB

	// HasL2 disables the shared L2 when false (used by the 3D-stacking
	// case study, Figure 8).
	HasL2 bool

	// DRAMLatency is the main-memory access time in cycles.
	DRAMLatency int
	// BusBytes is the width of the off-chip memory bus in bytes per
	// cycle; a 64-byte line transfer occupies LineSize/BusBytes cycles.
	// This models peak off-chip bandwidth and queueing under contention.
	BusBytes int
	// L2BusLatency is the interconnect hop cost from a core to the
	// shared L2 / snoop bus.
	L2BusLatency int
	// CacheToCacheLatency is the extra cost of a coherence intervention
	// (dirty data supplied by a remote L1).
	CacheToCacheLatency int

	// Coherence selects the protocol: "moesi" (Table 1 baseline; "" is
	// treated as moesi), "mesi" (four-state snooping ablation without
	// dirty sharing) or "directory" (MESI directory with sharer bitmaps,
	// the scalable alternative to bus snooping).
	Coherence string
	// DirectoryLatency is the home-node lookup cost in cycles added to
	// every L1 miss when Coherence is "directory". Zero selects a
	// default of 6 cycles.
	DirectoryLatency int

	// Interconnect selects the on-chip fabric between the L1s and the
	// shared L2/memory hub: "" or "bus" (Table 1 baseline: a split-
	// transaction snoop bus), "mesh" (2D mesh, XY routing) or "ring"
	// (bidirectional ring). Mesh and ring place the hub on the fabric
	// and charge per-hop latency and per-link queueing.
	Interconnect string
	// NoCHopLatency is the per-hop traversal latency in cycles for mesh
	// and ring fabrics (zero selects 1).
	NoCHopLatency int
	// NoCOccupancy is the per-link occupancy per transaction in cycles
	// for mesh and ring fabrics (zero selects 1).
	NoCOccupancy int

	// DRAMKind selects the main-memory model: "" or "fixed" (the
	// paper's 150-cycle fixed latency behind a finite-width bus) or
	// "banked" (bank-parallel DRAM with open-page row buffers: row hits
	// are fast, row conflicts pay precharge+activate, independent banks
	// overlap).
	DRAMKind string
	// DRAMBanks is the bank count for the banked model (zero selects 8).
	DRAMBanks int
	// DRAMRowBytes is the row-buffer size in bytes for the banked model
	// (zero selects 2048).
	DRAMRowBytes int
	// DRAMRowHit is the access latency for a row-buffer hit in cycles
	// (zero selects 90; the fixed model's 150 corresponds to the
	// average case).
	DRAMRowHit int
	// DRAMRowMiss is the access latency on a row-buffer conflict
	// (precharge + activate + access; zero selects 180).
	DRAMRowMiss int

	// Prefetch selects the hardware prefetcher: "" (none, the Table 1
	// baseline), "nextline" (degree-PrefetchDegree sequential prefetch
	// into the L1D on demand misses) or "stride" (region-based stride
	// detection with a confidence threshold). Used by the prefetcher
	// ablation study.
	Prefetch       string
	PrefetchDegree int
}

// Machine is a complete simulated machine: N identical cores over a shared
// memory subsystem.
type Machine struct {
	Cores  int
	Core   Core
	Branch BranchPredictor
	Mem    Memory
}

// Default returns the baseline machine of Table 1 with the given number of
// cores. All simulated CMP architectures share the L2 cache.
func Default(cores int) Machine {
	return Machine{
		Cores: cores,
		Core: Core{
			ROBSize:         256,
			IssueQueueSize:  128,
			LSQSize:         128,
			StoreBufferSize: 64,
			DecodeWidth:     4,
			IssueWidth:      6,
			FetchWidth:      8,
			IntALUs:         4,
			LoadStoreFUs:    4,
			FPUnits:         4,
			FetchQueue:      16,
			FrontendDepth:   7,
			LatIntALU:       1,
			LatMul:          3,
			LatDiv:          20,
			LatFP:           4,
			LatLoad:         2,

			MaxOutstandingMisses: 32,
		},
		Branch: BranchPredictor{
			Kind:                "local",
			LocalHistoryEntries: 1024, // 1K entries x 12 bits = 12Kbit
			LocalHistoryBits:    12,
			PHTEntries:          4096,
			BTBEntries:          2048,
			BTBAssoc:            8,
			RASEntries:          32,
		},
		Mem: Memory{
			L1I:  Cache{SizeBytes: 32 << 10, Assoc: 4, LineSize: 64, Latency: 1},
			L1D:  Cache{SizeBytes: 32 << 10, Assoc: 4, LineSize: 64, Latency: 2},
			L2:   Cache{SizeBytes: 4 << 20, Assoc: 8, LineSize: 64, Latency: 12},
			ITLB: TLB{Entries: 64, Assoc: 4, PageSize: 8 << 10, MissLatency: 30},
			DTLB: TLB{Entries: 128, Assoc: 4, PageSize: 8 << 10, MissLatency: 30},

			HasL2:               true,
			DRAMLatency:         150,
			BusBytes:            16, // ~10.6 GB/s peak at the core clock
			L2BusLatency:        4,
			CacheToCacheLatency: 20,
		},
	}
}

// Stacked3D returns the quad-core 3D-stacking configuration of the Figure 8
// case study: no L2 cache, 125-cycle stacked DRAM behind a 128-byte bus.
func Stacked3D(cores int) Machine {
	m := Default(cores)
	m.Mem.HasL2 = false
	m.Mem.DRAMLatency = 125
	m.Mem.BusBytes = 128
	return m
}

// ExecLatency returns the execution latency in cycles for an instruction
// class under this core configuration. Load latency is the L1-hit latency;
// cache misses add their miss latency on top, supplied by the memory
// hierarchy, not by this function.
func (c Core) ExecLatency(class isa.Class) int {
	switch class {
	case isa.IntMul:
		return c.LatMul
	case isa.IntDiv:
		return c.LatDiv
	case isa.FPOp:
		return c.LatFP
	case isa.Load:
		return c.LatLoad
	default:
		return c.LatIntALU
	}
}
