package statsim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/trace"
)

// cloneGolden is the FNV-64a hash of a fixed clone generation
// (gcc-profile, length 4096, seed 7). Pinning the exact byte stream —
// not just run-to-run equality — catches silent changes to the
// generation order: any edit to the clone generator that alters its
// output must update this constant deliberately.
const cloneGolden uint64 = 0x17a9e9f311f23631

// hashInsts folds every instruction field into one digest, in stream
// order.
func hashInsts(insts []trace.Stream) uint64 {
	h := fnv.New64a()
	for _, s := range insts {
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			fmt.Fprintf(h, "%+v|", in)
		}
	}
	return h.Sum64()
}

func TestCloneGolden(t *testing.T) {
	p := Collect(specStream("gcc", 20_000, 42), 0)
	got := hashInsts([]trace.Stream{NewClone(p, 4096, 7)})
	if got != cloneGolden {
		t.Errorf("clone stream hash %#x, golden %#x — if the generator changed deliberately, update cloneGolden", got, cloneGolden)
	}
}
