package fleet_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// findSpan returns the first span whose name matches, and whether any did.
func findSpan(spans []obs.SpanRec, name string) (obs.SpanRec, bool) {
	for _, s := range spans {
		if s.Name == name {
			return s, true
		}
	}
	return obs.SpanRec{}, false
}

// TestTraceStitching: a traced fleet run produces one trace holding both
// sides of the job — the coordinator's dispatch span on row 0 and the
// worker's remote spans (engine, cache store) spliced onto the worker's
// own named row, time-shifted into the coordinator's timebase so the
// remote work nests inside the dispatch window.
func TestTraceStitching(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: time.Second})
	startWorker(t, c, "w1", &fleet.FaultInjector{})
	startWorker(t, c, "w2", &fleet.FaultInjector{})

	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	target := c.coord.AssignedWorker(key)

	tracer := obs.NewTracer(0)
	if _, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, Tracer: tracer}); err != nil {
		t.Fatalf("run: %v", err)
	}

	spans := tracer.Spans()
	disp, ok := findSpan(spans, "dispatch:"+target)
	if !ok {
		t.Fatalf("no dispatch span for %s in %v", target, spans)
	}
	if disp.TID != 0 {
		t.Errorf("dispatch span on row %d, want coordinator row 0", disp.TID)
	}

	rows := tracer.TIDNames()
	if rows[0] != "coordinator" {
		t.Errorf("row 0 = %q, want coordinator", rows[0])
	}
	workerRow := -1
	for tid, name := range rows {
		if name == "worker:"+target {
			workerRow = tid
		}
	}
	if workerRow < 1 {
		t.Fatalf("no named row for worker:%s in %v", target, rows)
	}

	// The worker's half must be present, on the worker's row, and
	// monotonically consistent: its processing window is strictly inside
	// the dispatch request's RTT window.
	var remote []obs.SpanRec
	for _, s := range spans {
		if s.TID == workerRow {
			remote = append(remote, s)
		}
	}
	if len(remote) == 0 {
		t.Fatalf("no remote spans spliced onto row %d: %v", workerRow, spans)
	}
	sawEngine := false
	for _, s := range remote {
		if strings.HasPrefix(s.Name, "engine:") {
			sawEngine = true
		}
		if s.StartUS < disp.StartUS || s.StartUS+s.DurUS > disp.StartUS+disp.DurUS {
			t.Errorf("remote span %s [%d, %d] escapes dispatch window [%d, %d]",
				s.Name, s.StartUS, s.StartUS+s.DurUS, disp.StartUS, disp.StartUS+disp.DurUS)
		}
	}
	if !sawEngine {
		t.Errorf("no remote engine span on the worker row: %v", remote)
	}
}

// TestFederatedMetricsAndStatus: after a dispatched job and a scrape
// round, /fleet/v1/metrics serves every worker's samples under worker
// labels plus counter aggregates, all re-parseable by ParseText, and
// /fleet/v1/status reports per-worker liveness, dispatch accounting and
// scrape freshness.
func TestFederatedMetricsAndStatus(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: time.Second, ScrapeEvery: 100 * time.Millisecond})
	startWorker(t, c, "w1", &fleet.FaultInjector{})
	startWorker(t, c, "w2", &fleet.FaultInjector{})

	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	target := c.coord.AssignedWorker(key)
	if _, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec}); err != nil {
		t.Fatalf("run: %v", err)
	}
	c.coord.ScrapeMetrics(context.Background())

	resp, err := http.Get(c.srv.URL + fleet.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	families, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("federated output is not valid exposition text: %v", err)
	}

	runs, ok := families["fleet_worker_runs_total"]
	if !ok {
		t.Fatal("federated output lacks fleet_worker_runs_total")
	}
	var aggregate, labeled float64
	haveAgg := false
	for _, s := range runs.Samples {
		if s.Labels[obs.InstanceLabel] == "" {
			aggregate, haveAgg = s.Value, true
		} else {
			labeled += s.Value
		}
	}
	if !haveAgg {
		t.Error("counter family has no aggregate (worker-label-free) rollup sample")
	}
	if aggregate != labeled || aggregate < 1 {
		t.Errorf("aggregate %v != sum of per-worker samples %v (want >= 1 run)", aggregate, labeled)
	}

	ages, ok := families["fleet_scrape_age_seconds"]
	if !ok {
		t.Fatal("federated output lacks fleet_scrape_age_seconds")
	}
	seen := map[string]bool{}
	for _, s := range ages.Samples {
		seen[s.Labels[obs.InstanceLabel]] = true
		if s.Value < 0 {
			t.Errorf("worker %s never scraped (age %v) after ScrapeMetrics", s.Labels[obs.InstanceLabel], s.Value)
		}
	}
	if !seen["w1"] || !seen["w2"] {
		t.Errorf("scrape-age samples missing a worker: %v", seen)
	}

	resp2, err := http.Get(c.srv.URL + fleet.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st fleet.Status
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	if st.LiveWorkers != 2 || len(st.Workers) != 2 {
		t.Fatalf("status workers = %d live of %d, want 2 of 2", st.LiveWorkers, len(st.Workers))
	}
	if st.Dispatches != 1 || st.Completions != 1 {
		t.Errorf("status dispatches=%d completions=%d, want 1 and 1", st.Dispatches, st.Completions)
	}
	if st.DispatchP95Millis <= 0 {
		t.Errorf("dispatch p95 = %v, want > 0 after a dispatch", st.DispatchP95Millis)
	}
	for _, w := range st.Workers {
		if !w.Live || w.LeaseAgeMillis < 0 {
			t.Errorf("worker %s: live=%v lease_age=%d, want live with a lease clock", w.ID, w.Live, w.LeaseAgeMillis)
		}
		if w.LastScrapeAgeMillis < 0 || w.Stale {
			t.Errorf("worker %s: scrape_age=%d stale=%v, want fresh after ScrapeMetrics", w.ID, w.LastScrapeAgeMillis, w.Stale)
		}
		if w.ID == target {
			if w.OK != 1 || w.Attempts[1] != 1 || w.TraceRow < 1 {
				t.Errorf("target %s: ok=%d attempts=%v row=%d, want one first-attempt success on a named row",
					w.ID, w.OK, w.Attempts, w.TraceRow)
			}
		} else if w.OK != 0 {
			t.Errorf("idle worker %s: ok=%d, want 0", w.ID, w.OK)
		}
	}
}

// TestScrapeStaleness: a worker that stops answering scrapes keeps its
// last-known-good samples in the federated view, flagged stale once its
// scrape age exceeds twice the scrape interval.
func TestScrapeStaleness(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: time.Hour, ScrapeEvery: 20 * time.Millisecond})
	n := startWorker(t, c, "fading", &fleet.FaultInjector{})

	c.coord.ScrapeMetrics(context.Background())
	// Sever the worker's data plane: subsequent scrapes fail, the last
	// payload survives.
	n.srv.Close()
	c.coord.ScrapeMetrics(context.Background())
	time.Sleep(50 * time.Millisecond) // > 2x ScrapeEvery

	resp, err := http.Get(c.srv.URL + fleet.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	families, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := families["fleet_worker_heartbeats_total"]; !ok {
		t.Error("last-known-good samples dropped from the federated view")
	}
	stale, ok := families["fleet_scrape_stale"]
	if !ok {
		t.Fatal("no fleet_scrape_stale family")
	}
	found := false
	for _, s := range stale.Samples {
		if s.Labels[obs.InstanceLabel] == "fading" {
			found = true
			if s.Value != 1 {
				t.Errorf("fleet_scrape_stale{worker=fading} = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Error("no staleness sample for the faded worker")
	}
	wantMetric(t, c, "fleet_scrape_failures_total", "1")
}
