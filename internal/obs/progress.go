package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Progress is one live heartbeat from a running simulation: how many
// instructions have retired, at what host speed, and how long the rest
// should take at that speed. It is observability output only — it never
// feeds back into simulated state or result payloads.
type Progress struct {
	// Label names the run (the scenario's display name).
	Label string `json:"label,omitempty"`
	// Tier is the fidelity tier currently being computed.
	Tier string `json:"tier,omitempty"`
	// Retired is the total simulated instructions retired so far,
	// summed across cores.
	Retired uint64 `json:"retired"`
	// Budget is the total instruction budget when known (0 = unknown,
	// e.g. explicit streams), making Retired/Budget a completion ratio.
	Budget uint64 `json:"budget,omitempty"`
	// MIPS is the host simulation speed so far (millions of simulated
	// instructions per host second).
	MIPS float64 `json:"mips"`
	// ETASeconds estimates the remaining host time at the current
	// speed (0 when Budget is unknown or the run is effectively done).
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// ElapsedSeconds is the host time since the heartbeat started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// String renders the heartbeat as one human-readable progress line,
// the form the CLIs print to stderr under -progress.
func (p Progress) String() string {
	var b strings.Builder
	if p.Label != "" {
		fmt.Fprintf(&b, "%s ", p.Label)
	}
	if p.Tier != "" {
		fmt.Fprintf(&b, "[%s] ", p.Tier)
	}
	if p.Budget > 0 {
		fmt.Fprintf(&b, "%.1fM/%.1fM insts (%.0f%%)",
			float64(p.Retired)/1e6, float64(p.Budget)/1e6,
			100*float64(p.Retired)/float64(p.Budget))
	} else {
		fmt.Fprintf(&b, "%.1fM insts", float64(p.Retired)/1e6)
	}
	fmt.Fprintf(&b, " %.1f MIPS", p.MIPS)
	if p.ETASeconds > 0 {
		fmt.Fprintf(&b, " eta %.1fs", p.ETASeconds)
	}
	return b.String()
}

// Heartbeat emits throttled Progress reports. Drivers call Tick from
// their existing periodic poll points (the interrupt-poll throttle);
// Tick rate-limits to Every and computes speed and ETA. All methods
// no-op on a nil *Heartbeat.
type Heartbeat struct {
	// Emit receives each throttled report. Calls are serialized.
	Emit func(Progress)
	// Every is the minimum interval between reports (<=0 selects 500ms).
	Every time.Duration
	// Label and Tier annotate every report.
	Label string
	Tier  string
	// Budget is the total instruction budget when known.
	Budget uint64

	mu    sync.Mutex
	start time.Time
	last  time.Time
	// emitted / lastRetired remember whether a report went out and at
	// what retired count, so Final can suppress a no-new-information
	// repeat of the last Tick.
	emitted     bool
	lastRetired uint64
}

// DefaultHeartbeatEvery is the report interval when Every is unset.
const DefaultHeartbeatEvery = 500 * time.Millisecond

// Tick reports progress if at least Every has elapsed since the last
// report. Nil-safe; safe for concurrent use (reports serialize).
func (h *Heartbeat) Tick(retired uint64) {
	if h == nil || h.Emit == nil {
		return
	}
	every := h.Every
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	now := time.Now()
	h.mu.Lock()
	if h.start.IsZero() {
		// First tick arms the clock; the first report lands one
		// interval later so short runs stay silent.
		h.start, h.last = now, now
		h.mu.Unlock()
		return
	}
	if now.Sub(h.last) < every {
		h.mu.Unlock()
		return
	}
	h.last = now
	h.emitted = true
	h.lastRetired = retired
	p := h.progressLocked(retired, now)
	h.mu.Unlock()
	h.Emit(p)
}

// Final reports one last unthrottled progress (end-of-run totals), if
// the heartbeat ever ticked. A Final at the same retired count as the
// last emitted report is suppressed — the closing Tick already said
// everything this line would repeat. Nil-safe.
func (h *Heartbeat) Final(retired uint64) {
	if h == nil || h.Emit == nil {
		return
	}
	now := time.Now()
	h.mu.Lock()
	if h.start.IsZero() || (h.emitted && h.lastRetired == retired) {
		h.mu.Unlock()
		return
	}
	h.emitted = true
	h.lastRetired = retired
	p := h.progressLocked(retired, now)
	h.mu.Unlock()
	h.Emit(p)
}

// progressLocked assembles a report; h.mu must be held.
func (h *Heartbeat) progressLocked(retired uint64, now time.Time) Progress {
	elapsed := now.Sub(h.start).Seconds()
	p := Progress{
		Label:          h.Label,
		Tier:           h.Tier,
		Retired:        retired,
		Budget:         h.Budget,
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 {
		p.MIPS = float64(retired) / elapsed / 1e6
	}
	if h.Budget > retired && p.MIPS > 0 {
		p.ETASeconds = float64(h.Budget-retired) / (p.MIPS * 1e6)
	}
	return p
}

// Observer bundles the per-run observability sinks a caller attaches to
// a scenario: a span tracer and a progress callback. A nil *Observer
// (the default) disables everything at zero cost.
type Observer struct {
	// Tracer receives lifecycle and engine spans (nil = no tracing).
	Tracer *Tracer
	// Progress receives throttled heartbeats (nil = no progress).
	Progress func(Progress)
	// ProgressEvery overrides the heartbeat interval (0 = default).
	ProgressEvery time.Duration
}

// ObsTracer returns the observer's tracer; nil-safe.
func (o *Observer) ObsTracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
