package simd

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/simrun"
)

// TestFleetModeZeroWorkersServesLocally: a coordinator-mode server with
// an empty fleet must still answer every job — the coordinator degrades
// to the local engine through the same cache — and the job document
// records the degraded routing.
func TestFleetModeZeroWorkersServesLocally(t *testing.T) {
	cache, err := simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(fleet.Config{Cache: cache, LeaseTTL: 200 * time.Millisecond, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Cache: cache, Fleet: coord})

	doc, status := postJob(t, ts, specGCC)
	if status != 202 {
		t.Fatalf("submit status = %d", status)
	}
	doc = waitDone(t, s, doc.ID)
	if doc.Status != StatusDone {
		t.Fatalf("job = %+v", doc)
	}
	if doc.Worker != "local" || doc.Dispatch != "local" || doc.Attempt != 1 {
		t.Errorf("routing = worker=%q attempt=%d dispatch=%q, want the degraded local run recorded", doc.Worker, doc.Attempt, doc.Dispatch)
	}

	// Byte-identity across serving paths: the fleet-routed answer equals
	// a plain single-node server's for the same spec.
	plainCache, err := simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
	if err != nil {
		t.Fatal(err)
	}
	plain, pts := newTestServer(t, Config{Workers: 1, Cache: plainCache})
	ref, status := postJob(t, pts, specGCC)
	if status != 202 {
		t.Fatalf("reference submit status = %d", status)
	}
	ref = waitDone(t, plain, ref.ID)
	if !bytes.Equal(doc.Result, ref.Result) {
		t.Error("fleet-mode result differs from single-node result")
	}
	if ref.Worker != "" || ref.Dispatch != "" {
		t.Errorf("single-node doc leaked fleet routing: %+v", ref)
	}
}

// TestFleetWinsOverTiered: Config says the two are mutually exclusive
// and Fleet wins; a server built with both must not run the tiered path.
func TestFleetWinsOverTiered(t *testing.T) {
	cache, err := simrun.NewCache(simrun.CacheOpts{Encode: Encode, DecodeTier: DecodeTier})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(fleet.Config{Cache: cache, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cache, Fleet: coord, TieredServing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	if s.tiered {
		t.Error("tiered serving stayed on alongside fleet routing")
	}
}
