// Package core implements interval simulation, the paper's primary
// contribution: a mechanistic analytical core model that replaces
// cycle-accurate out-of-order core simulation inside a multi-core
// simulator.
//
// Execution is modeled as the smooth streaming of instructions through the
// pipeline at an effective dispatch rate, punctuated by miss events —
// I-cache/I-TLB misses, branch mispredictions, long-latency loads
// (last-level or coherence misses and D-TLB misses) and serializing
// instructions — that each charge an analytically derived penalty
// (Section 2 of the paper). Miss events come from the same branch predictor
// and memory hierarchy simulators that drive the detailed baseline; only
// the core-level timing model is replaced.
//
// Two structures implement the model (Figure 2): a *window* of in-flight
// instructions, sized like the ROB, used to find miss events hidden
// underneath long-latency loads (second-order overlap effects); and an
// *old window* of recently retired instructions whose dataflow gives the
// critical path length, from which the branch resolution time, the window
// drain time and the effective dispatch rate are derived (the paper's "old
// window approach").
package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// OldWindow tracks the dataflow of the most recently dispatched
// instructions. Each inserted instruction records a completion time equal
// to the maximum completion time of its producers plus its own execution
// latency. The window maintains a head time (completion of the oldest
// evicted instruction) and a tail time (latest completion); their
// difference approximates the critical path length through the window
// without walking it (Section 3.2).
// The window maintains two dataflow tracks. The *pure* track computes
// issue = max(producer completions) + latency and feeds the critical-path
// estimate behind the effective dispatch rate (Little's law needs the
// resource-unconstrained dataflow height). The *floored* track additionally
// lower-bounds each issue time by the instruction's dispatch time, so a
// producer dispatched long before its consumer is modeled as already
// executed — this is what makes the branch resolution time mean "time
// between the mispredicted branch dispatching and resolving", as the paper
// defines it, rather than the full dataflow depth since the last miss
// event.
// All tracked times are stored on a fixed virtual axis and read relative to
// base: rel(v) = max(v-base, 0). Shift then only advances base — O(1)
// instead of rewriting every register and ring slot — which is exactly
// equivalent because max(max(v-a,0)-b, 0) == max(v-a-b, 0) and max commutes
// with the subtraction.
type OldWindow struct {
	cfg      config.Core
	issues   []int64 // ring buffer of issue times (pure track), pow2 sized
	mask     int     // len(issues)-1
	capn     int     // logical capacity (the ROB size)
	head     int
	n        int
	base     int64
	headTime int64
	tailTime int64
	// reg holds both dataflow tracks per architectural register, adjacent
	// so one cache line serves both reads (and both writes) of an
	// operand. Indexed directly by operand byte: slot RegNone (0xFF) is
	// never written and stays zero, so operand reads need no "is there an
	// operand" branches (a zero virtual time clamps to no constraint).
	reg       [256]regTimes
	tailFloor int64

	// lat caches ExecLatency per class, sized for any class byte so the
	// indexing needs no bounds check; width caches the dispatch width —
	// Insert and DispatchRate run once per dispatched instruction.
	lat   [256]int64
	width float64
	// DispatchRate memo, keyed on the critical path it was computed from
	// (the division is on the per-cycle path).
	memoCP   int64
	memoRate float64
}

// NewOldWindow creates an old window with the ROB's capacity.
func NewOldWindow(cfg config.Core) *OldWindow {
	w := &OldWindow{
		cfg:    cfg,
		issues: make([]int64, ceilPow2(cfg.ROBSize)),
		capn:   cfg.ROBSize,
		width:  float64(cfg.DecodeWidth),
		memoCP: -1,
	}
	w.mask = len(w.issues) - 1
	for c := range w.lat {
		w.lat[c] = int64(cfg.ExecLatency(isa.Class(c)))
	}
	return w
}

// ceilPow2 rounds v up to the next power of two (ring buffers use masked
// indexing).
func ceilPow2(v int) int {
	if v < 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// regTimes is one register's completion time on the pure and floored
// dataflow tracks (virtual axis).
type regTimes struct {
	pure  int64
	floor int64
}

// rel reads a stored virtual time relative to the current base, clamping at
// zero (a time fully covered by past shifts is "already executed").
func (w *OldWindow) rel(v int64) int64 {
	if d := v - w.base; d > 0 {
		return d
	}
	return 0
}

// Len returns the number of instructions currently tracked.
func (w *OldWindow) Len() int { return w.n }

// Insert records the retirement of in. loadLatency is the observed
// execution latency for loads (L1-hit latency plus any non-long-latency
// miss component, per the paper: "execution latency including the L1
// D-cache miss latency"); it is ignored for other classes. dispTime is the
// instruction's dispatch time relative to the last window flush.
func (w *OldWindow) Insert(in *isa.Inst, loadLatency, dispTime int64) {
	lat := w.lat[in.Class]
	if in.Class == isa.Load && loadLatency > 0 {
		lat = loadLatency
	}
	base := w.base

	// Pure dataflow track (times relative to base; stored virtual).
	// Absent operands read slot RegNone = 0, which clamps below zero and
	// constrains nothing.
	s1, s2 := &w.reg[in.Src1], &w.reg[in.Src2]
	issue := s1.pure - base
	if v := s2.pure - base; v > issue {
		issue = v
	}
	if issue < 0 {
		issue = 0
	}
	complete := issue + lat

	// Floored track: an instruction cannot issue before it dispatches.
	fIssue := dispTime
	if v := s1.floor - base; v > fIssue {
		fIssue = v
	}
	if v := s2.floor - base; v > fIssue {
		fIssue = v
	}
	fComplete := fIssue + lat

	if in.HasDst() {
		w.reg[in.Dst] = regTimes{pure: base + complete, floor: base + fComplete}
	}
	// Head and tail times track ISSUE times (Section 3.2): "the new tail
	// time is computed as the maximum of the previous tail time and the
	// issue time of the newly inserted instruction; similarly, the new
	// head time is the maximum of the previous head time and the issue
	// time of the removed instruction."
	vIssue := base + issue
	if vIssue > w.tailTime {
		w.tailTime = vIssue
	}
	if base+fComplete > w.tailFloor {
		w.tailFloor = base + fComplete
	}
	iss := w.issues
	if w.n == w.capn {
		// Steady state: evict the head, keep occupancy at capn. The tail
		// slot coincides with the evicted head slot only when the logical
		// capacity fills the whole pow2 ring (power-of-two ROB sizes).
		old := iss[w.head&(len(iss)-1)]
		if old > w.headTime {
			w.headTime = old
		}
		iss[(w.head+w.capn)&(len(iss)-1)] = vIssue
		w.head = (w.head + 1) & w.mask
		return
	}
	iss[(w.head+w.n)&(len(iss)-1)] = vIssue
	w.n++
}

// CriticalPath approximates the critical path length in cycles through the
// tracked instructions: tail time minus head time, at least one cycle.
func (w *OldWindow) CriticalPath() int64 {
	cp := w.rel(w.tailTime) - w.rel(w.headTime)
	if cp < 1 {
		return 1
	}
	return cp
}

// DispatchRate returns the effective dispatch rate in instructions per
// cycle: by Little's law the maximum execution rate is the window size
// divided by the critical path length, capped at the designed dispatch
// width (Section 3.2). The division is memoized on the critical path, which
// changes far less often than the per-cycle call site.
func (w *OldWindow) DispatchRate() float64 {
	if w.n == 0 {
		return w.width
	}
	cp := w.tailTime - w.base
	if h := w.headTime - w.base; h > 0 {
		if cp < 0 {
			cp = 0
		}
		cp -= h
	}
	if cp < 1 {
		cp = 1
	}
	if cp == w.memoCP {
		return w.memoRate
	}
	return w.dispatchRateSlow(cp)
}

func (w *OldWindow) dispatchRateSlow(cp int64) float64 {
	rate := float64(w.capn) / float64(cp)
	if rate > w.width {
		rate = w.width
	}
	w.memoCP, w.memoRate = cp, rate
	return rate
}

// BranchResolution returns the branch resolution time for a mispredicted
// branch dispatching at dispTime (relative to the last window flush): the
// remaining length of the dependence chain leading to the branch — the time
// between the branch dispatching and being resolved.
func (w *OldWindow) BranchResolution(br *isa.Inst, dispTime int64) int64 {
	issue := dispTime
	if v := w.rel(w.reg[br.Src1].floor); v > issue {
		issue = v
	}
	if v := w.rel(w.reg[br.Src2].floor); v > issue {
		issue = v
	}
	res := issue + w.lat[br.Class] - dispTime
	if res < 1 {
		return 1
	}
	return res
}

// BranchResolutionPure returns the branch resolution time computed on the
// pure dataflow track: the full dependence-chain depth to the branch since
// the last miss event, without the dispatch-time floor. This is the
// NoDispatchFloor ablation — the estimate prior interval-analysis work
// derives from an offline profile.
func (w *OldWindow) BranchResolutionPure(br *isa.Inst) int64 {
	issue := int64(0)
	if v := w.rel(w.reg[br.Src1].pure); v > issue {
		issue = v
	}
	if v := w.rel(w.reg[br.Src2].pure); v > issue {
		issue = v
	}
	res := issue + w.lat[br.Class] - w.rel(w.headTime)
	if res < 1 {
		return 1
	}
	return res
}

// DrainTime returns the window drain time charged to a serializing
// instruction dispatching at dispTime: the time for all in-flight work to
// complete, at least the occupancy divided by the dispatch width.
func (w *OldWindow) DrainTime(dispTime int64) int64 {
	if w.n == 0 {
		return 1
	}
	byWidth := int64((w.n + w.cfg.DecodeWidth - 1) / w.cfg.DecodeWidth)
	rem := w.rel(w.tailFloor) - dispTime
	if rem > byWidth {
		return rem
	}
	return byWidth
}

// Shift re-bases the window's relative time by elapsed cycles: every
// tracked issue/completion time moves elapsed cycles into the past
// (clamping at zero = already executed). Called at miss events instead of
// a full flush: the penalty's elapsed time ages the in-flight dataflow, so
// chains fully covered by the penalty vanish (the paper's interval-length
// effect on resolution and drain times) while genuinely longer chains —
// loop-carried recurrences — survive the event, as they do in the machine.
// With times stored on the virtual axis this is one addition, not a walk
// over every register and ring slot.
func (w *OldWindow) Shift(elapsed int64) {
	if elapsed <= 0 {
		return
	}
	w.base += elapsed
}

// Empty flushes the window. The paper empties the old window on every miss
// event so that the branch resolution time and drain time correlate with
// the *interval length* — a short interval implies a short chain to the
// next mispredicted branch (the "interval length effect").
func (w *OldWindow) Empty() {
	w.head, w.n = 0, 0
	w.base = 0
	w.headTime, w.tailTime = 0, 0
	w.tailFloor = 0
	w.memoCP = -1
	for i := range w.reg {
		w.reg[i] = regTimes{}
	}
}
