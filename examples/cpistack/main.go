// CPI stacks: the practical payoff of interval simulation. Because every
// miss event charges an explicit analytical penalty, the model decomposes
// execution time into components exactly — where a detailed simulator has
// to approximate stall attribution. This example prints CPI stacks for
// benchmarks with very different bottlenecks.
//
//	go run ./examples/cpistack
package main

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memhier"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func stackOf(name string) core.CPIStack {
	p := workload.SPECByName(name)
	m := config.Default(1)
	mem := memhier.New(1, m.Mem, memhier.Perfect{})
	bp := branch.NewUnit(m.Branch)

	// Functional warmup, then a measured run on the interval core.
	warm := workload.New(p, 0, 1, 1042)
	for k := 0; k < 600_000; k++ {
		in, ok := warm.Next()
		if !ok {
			break
		}
		mem.Inst(0, in.PC, 0)
		if in.Class.IsBranch() {
			bp.Predict(&in)
		}
		if in.Class.IsMem() {
			mem.Data(0, in.Addr, in.Class == isa.Store, 0)
		}
	}
	mem.ResetStats()
	bp.ResetStats()

	c := core.New(0, m.Core, bp, mem,
		trace.NewLimit(workload.New(p, 0, 1, 42), 100_000), sim.NullSyncer{})
	var now int64
	for !c.Done() {
		c.Step(now)
		now++
	}
	return c.Stack()
}

func main() {
	for _, name := range []string{"mesa", "gcc", "mcf", "swim"} {
		fmt.Printf("== %s ==\n%s\n", name, stackOf(name))
	}
	fmt.Println("mesa is compute-bound (base dominates); gcc splits between branch")
	fmt.Println("and memory; mcf drowns in long-latency loads; swim pays DRAM")
	fmt.Println("bandwidth. The stacks make the bottleneck visible at a glance.")
}
