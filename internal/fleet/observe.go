package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// scrapeState is one worker's last successful federation scrape. The
// entry outlives the worker's registration: a dead worker's samples
// keep being served — marked stale — until the coordinator itself
// restarts, matching how operators actually debug a crashed node.
type scrapeState struct {
	families map[string]*obs.ParsedFamily
	at       time.Time // zero = never scraped successfully
}

// workerStats accumulates per-worker dispatch accounting for the
// status surface. Entries survive worker loss for the same reason
// scrapeState does.
type workerStats struct {
	inflight int
	ok       uint64
	fail     uint64
	// attempts histograms dispatches by attempt number (1-based): a
	// fleet where attempts[2] grows is retrying, one where only
	// attempts[1] grows is healthy.
	attempts map[int]uint64
}

// tidFor returns the worker's stable trace row, assigning the next one
// (1-based; row 0 is the coordinator) on first sight.
func (c *Coordinator) tidFor(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	tid, ok := c.tids[id]
	if !ok {
		c.nextTID++
		tid = c.nextTID
		c.tids[id] = tid
	}
	return tid
}

func (c *Coordinator) statsLocked(id string) *workerStats {
	st, ok := c.stats[id]
	if !ok {
		st = &workerStats{attempts: map[int]uint64{}}
		c.stats[id] = st
	}
	return st
}

func (c *Coordinator) noteDispatch(id string, attempt int) {
	c.mu.Lock()
	st := c.statsLocked(id)
	st.inflight++
	st.attempts[attempt]++
	c.mu.Unlock()
}

func (c *Coordinator) noteDone(id string, ok bool) {
	c.mu.Lock()
	st := c.statsLocked(id)
	st.inflight--
	if ok {
		st.ok++
	} else {
		st.fail++
	}
	c.mu.Unlock()
}

// maxScrapeBytes bounds one worker's /metrics payload — far above any
// real exposition, low enough that a misbehaving worker cannot balloon
// the coordinator.
const maxScrapeBytes = 4 << 20

// ScrapeMetrics scrapes every registered worker's /metrics once, in
// parallel, updating the federated view. A failed scrape keeps the
// worker's last-known-good samples; the staleness gauges in the
// federated output tell readers how old they are.
func (c *Coordinator) ScrapeMetrics(ctx context.Context) {
	c.mu.Lock()
	targets := make(map[string]string, len(c.workers))
	for id, ws := range c.workers {
		targets[id] = ws.url
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for id, url := range targets {
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			c.mScrapes.Inc()
			families, err := c.scrapeOne(ctx, url)
			if err != nil {
				c.mScrapeFailure.Inc()
				return
			}
			c.mu.Lock()
			c.scrapes[id] = &scrapeState{families: families, at: time.Now()}
			c.mu.Unlock()
		}(id, url)
	}
	wg.Wait()
}

func (c *Coordinator) scrapeOne(ctx context.Context, base string) (map[string]*obs.ParsedFamily, error) {
	sctx, cancel := context.WithTimeout(ctx, c.scrapeEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &statusErr{status: resp.StatusCode}
	}
	return obs.ParseText(io.LimitReader(resp.Body, maxScrapeBytes))
}

// ScrapeLoop runs ScrapeMetrics every ScrapeEvery until ctx is done —
// the goroutine a coordinator process starts next to its HTTP server.
func (c *Coordinator) ScrapeLoop(ctx context.Context) {
	ticker := time.NewTicker(c.scrapeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.ScrapeMetrics(ctx)
		}
	}
}

// scrapeView snapshots the federation state as obs.Scrape values, one
// per worker the coordinator has ever known (registered, scraped, or
// dispatched to).
func (c *Coordinator) scrapeView() []obs.Scrape {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := map[string]bool{}
	for id := range c.workers {
		ids[id] = true
	}
	for id := range c.scrapes {
		ids[id] = true
	}
	out := make([]obs.Scrape, 0, len(ids))
	for id := range ids {
		sc := obs.Scrape{Instance: id, Age: -1, Stale: true}
		if st, ok := c.scrapes[id]; ok && !st.at.IsZero() {
			sc.Families = st.families
			sc.Age = time.Since(st.at)
			sc.Stale = sc.Age > 2*c.scrapeEvery
		}
		out = append(out, sc)
	}
	return out
}

// handleFleetMetrics serves the federated exposition: every worker's
// last scrape merged into one payload with worker labels, counter
// aggregates, and per-worker staleness gauges. The output is itself
// valid ParseText input, so a fleet of fleets can federate again.
func (c *Coordinator) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteFederated(w, c.scrapeView())
}

// WorkerStatus is one worker's row in the fleet status snapshot.
type WorkerStatus struct {
	ID string `json:"id"`
	// Live says the worker's lease clock is current (a heartbeat landed
	// within the TTL).
	Live bool `json:"live"`
	// LeaseAgeMillis is the time since the last heartbeat (-1 when the
	// worker is no longer registered).
	LeaseAgeMillis int64 `json:"lease_age_ms"`
	// TraceRow is the worker's track on stitched job traces (0 = never
	// dispatched to).
	TraceRow int `json:"trace_row,omitempty"`
	// InFlight counts dispatch attempts currently on the wire to this
	// worker.
	InFlight int `json:"in_flight"`
	// OK / Failed count finished dispatch attempts by outcome.
	OK     uint64 `json:"ok"`
	Failed uint64 `json:"failed"`
	// Attempts histograms dispatches by attempt number (1-based).
	Attempts map[int]uint64 `json:"attempts,omitempty"`
	// LastScrapeAgeMillis is the age of the worker's last successful
	// metrics scrape (-1 = never scraped).
	LastScrapeAgeMillis int64 `json:"last_scrape_age_ms"`
	// Stale mirrors the federated staleness flag.
	Stale bool `json:"stale"`
}

// Status is the live fleet snapshot served at /fleet/v1/status.
type Status struct {
	Workers     []WorkerStatus `json:"workers"`
	LiveWorkers int            `json:"live_workers"`
	// Dispatch latency quantiles, milliseconds, over all attempts.
	DispatchP50Millis float64 `json:"dispatch_p50_ms"`
	DispatchP95Millis float64 `json:"dispatch_p95_ms"`
	// Lifetime coordinator totals, mirroring the fleet_* counters.
	Dispatches           uint64 `json:"dispatches"`
	Retries              uint64 `json:"retries"`
	Reassignments        uint64 `json:"reassignments"`
	LeaseExpiries        uint64 `json:"lease_expiries"`
	Completions          uint64 `json:"completions"`
	DuplicateCompletions uint64 `json:"duplicate_completions"`
	LocalRuns            uint64 `json:"local_runs"`
	CorruptDeliveries    uint64 `json:"corrupt_results"`
}

// Status assembles the live fleet snapshot: per-worker lease and
// dispatch accounting plus coordinator-wide totals and dispatch
// latency quantiles.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	ids := map[string]bool{}
	for id := range c.workers {
		ids[id] = true
	}
	for id := range c.stats {
		ids[id] = true
	}
	for id := range c.scrapes {
		ids[id] = true
	}
	st := Status{Workers: make([]WorkerStatus, 0, len(ids))}
	for id := range ids {
		ws := WorkerStatus{ID: id, LeaseAgeMillis: -1, LastScrapeAgeMillis: -1, Stale: true, TraceRow: c.tids[id]}
		if reg, ok := c.workers[id]; ok {
			age := time.Since(reg.lastBeat)
			ws.LeaseAgeMillis = age.Milliseconds()
			ws.Live = age <= c.leaseTTL
		}
		if s, ok := c.stats[id]; ok {
			ws.InFlight = s.inflight
			ws.OK, ws.Failed = s.ok, s.fail
			if len(s.attempts) > 0 {
				ws.Attempts = make(map[int]uint64, len(s.attempts))
				for k, v := range s.attempts {
					ws.Attempts[k] = v
				}
			}
		}
		if sc, ok := c.scrapes[id]; ok && !sc.at.IsZero() {
			age := time.Since(sc.at)
			ws.LastScrapeAgeMillis = age.Milliseconds()
			ws.Stale = age > 2*c.scrapeEvery
		}
		if ws.Live {
			st.LiveWorkers++
		}
		st.Workers = append(st.Workers, ws)
	}
	c.mu.Unlock()
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })

	st.DispatchP50Millis = c.hDispatch.Quantile(0.50) * 1e3
	st.DispatchP95Millis = c.hDispatch.Quantile(0.95) * 1e3
	st.Dispatches = c.mDispatches.Value()
	st.Retries = c.mRetries.Value()
	st.Reassignments = c.mReassigns.Value()
	st.LeaseExpiries = c.mLeaseExpiry.Value()
	st.Completions = c.mCompletions.Value()
	st.DuplicateCompletions = c.mDupComplete.Value()
	st.LocalRuns = c.mLocalRuns.Value()
	st.CorruptDeliveries = c.mCorrupt.Value()
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Status())
}
