// Package metrics implements the performance metrics of the paper's
// evaluation: IPC, the multi-program metrics STP (system throughput) and
// ANTT (average normalized turnaround time) of Eyerman & Eeckhout, error
// summaries between two simulators, and simulation-speed ratios.
package metrics

import "math"

// IPC returns instructions per cycle, zero when cycles is zero.
func IPC(instructions uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(instructions) / float64(cycles)
}

// NormalizedProgress returns the per-program normalized progress values
// NP_i = multiIPC_i / aloneIPC_i used by both STP and ANTT. Programs with a
// zero alone-IPC contribute zero.
func NormalizedProgress(alone, multi []float64) []float64 {
	np := make([]float64, len(multi))
	for i := range multi {
		if i < len(alone) && alone[i] > 0 {
			np[i] = multi[i] / alone[i]
		}
	}
	return np
}

// STP is system throughput: the sum of the normalized progress of the
// co-running programs. Equals the ideal value n when co-running does not
// slow anything down.
func STP(alone, multi []float64) float64 {
	total := 0.0
	for _, np := range NormalizedProgress(alone, multi) {
		total += np
	}
	return total
}

// ANTT is the average normalized turnaround time: the average of the
// per-program slowdowns 1/NP_i. Equals 1 under no interference; larger is
// worse (user-oriented metric).
func ANTT(alone, multi []float64) float64 {
	nps := NormalizedProgress(alone, multi)
	if len(nps) == 0 {
		return 0
	}
	total := 0.0
	n := 0
	for _, np := range nps {
		if np > 0 {
			total += 1 / np
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// WeightedSpeedup is a synonym of STP under its older name (Snavely &
// Tullsen): the sum of per-program normalized progress.
func WeightedSpeedup(alone, multi []float64) float64 { return STP(alone, multi) }

// HarmonicSpeedup is the harmonic mean of the normalized progress values
// (Luo et al.): it rewards throughput but punishes imbalance, sitting
// between STP (throughput) and ANTT (latency).
func HarmonicSpeedup(alone, multi []float64) float64 {
	nps := NormalizedProgress(alone, multi)
	total := 0.0
	n := 0
	for _, np := range nps {
		if np > 0 {
			total += 1 / np
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / total
}

// Fairness is the minimum over the maximum normalized progress across the
// co-running programs (Gabor et al.): 1 means perfectly even slowdowns, 0
// means at least one program is starved.
func Fairness(alone, multi []float64) float64 {
	nps := NormalizedProgress(alone, multi)
	lo, hi := math.Inf(1), 0.0
	for _, np := range nps {
		if np <= 0 {
			continue
		}
		if np < lo {
			lo = np
		}
		if np > hi {
			hi = np
		}
	}
	if hi == 0 || math.IsInf(lo, 1) {
		return 0
	}
	return lo / hi
}

// RelError returns |estimate-reference|/reference (0 when reference is 0).
func RelError(reference, estimate float64) float64 {
	if reference == 0 {
		return 0
	}
	return math.Abs(estimate-reference) / math.Abs(reference)
}

// Summary aggregates relative errors across a set of experiments.
type Summary struct {
	N       int
	Sum     float64
	Max     float64
	MaxName string
}

// Add records one (reference, estimate) pair under name.
func (s *Summary) Add(name string, reference, estimate float64) {
	e := RelError(reference, estimate)
	s.N++
	s.Sum += e
	if e > s.Max {
		s.Max = e
		s.MaxName = name
	}
}

// Avg returns the mean relative error.
func (s *Summary) Avg() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Speedup returns reference/faster as a ratio (e.g. wall-clock of detailed
// simulation divided by interval simulation). Zero when faster is zero.
func Speedup(reference, faster float64) float64 {
	if faster == 0 {
		return 0
	}
	return reference / faster
}

// GeoMean returns the geometric mean of positive values (non-positive
// values are skipped).
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
