// Command intervalsim runs one workload on one simulated machine and
// prints per-core results — the quick way to try the simulator.
//
// Usage:
//
//	intervalsim -bench gcc                          # SPEC profile, interval model
//	intervalsim -bench gcc -model detailed          # cycle-level baseline
//	intervalsim -bench blackscholes -cores 4        # PARSEC profile, 4 threads
//	intervalsim -bench mcf -copies 4                # multi-program: 4 copies
//	intervalsim -list                               # available profiles
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// main delegates to run so deferred profile writers execute before the
// process exits with run's status code.
func main() {
	os.Exit(run())
}

// writeTrace dumps the recorded spans as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run() int {
	var (
		bench   = flag.String("bench", "", "benchmark profile name")
		model   = flag.String("model", "interval", "core model: "+strings.Join(simrun.Models(), ", "))
		cores   = flag.Int("cores", 1, "cores (threads for PARSEC profiles)")
		copies  = flag.Int("copies", 0, "run N copies of a SPEC profile (multi-program)")
		insts   = flag.Int("insts", 100_000, "per-thread instruction budget for SPEC profiles")
		warmup  = flag.Int("warmup", 600_000, "functional warmup instructions per core")
		seed    = flag.Int64("seed", 42, "workload seed")
		hostpar = flag.Int("hostpar", 0, "host-parallel engine: one goroutine per simulated core (0 = sequential; results are bit-identical)")
		quantum = flag.Int64("quantum", 0, "parallel epoch length in simulated cycles (0 = engine default)")
		list    = flag.Bool("list", false, "list available benchmark profiles")
		stack   = flag.Bool("cpistack", false, "print per-core CPI stacks (interval model only)")
		rep     = flag.Bool("report", false, "print the full post-run report (hierarchy, bus, DRAM, coherence)")
		asJSON  = flag.Bool("json", false, "print the machine-readable result summary (report.JSON)")

		fabric    = flag.String("fabric", "bus", "on-chip interconnect: bus, mesh, ring")
		coherence = flag.String("coherence", "moesi", "coherence protocol: moesi, mesi, directory")
		dram      = flag.String("dram", "fixed", "main-memory model: fixed, banked")
		prefetch  = flag.String("prefetch", "none", "prefetcher: none, nextline, stride")
		predictor = flag.String("predictor", "local", "direction predictor: local, gshare, bimodal, tournament, tage, perfect")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (load in chrome://tracing or ui.perfetto.dev)")
		progress   = flag.Bool("progress", false, "print live progress lines (retired, MIPS, ETA) to stderr")
	)
	flag.Parse()
	flush, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer flush()

	if *list {
		fmt.Println("SPEC CPU2000-like (single-threaded):")
		for _, p := range workload.SPEC() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("PARSEC-like (multi-threaded, full-system):")
		for _, p := range workload.PARSEC() {
			fmt.Printf("  %s\n", p.Name)
		}
		return 0
	}
	if *bench == "" {
		flag.Usage()
		return 2
	}
	if *stack && *model != "interval" {
		fmt.Fprintln(os.Stderr, "-cpistack requires -model interval")
		return 2
	}

	opts := []simrun.Option{
		simrun.Model(*model),
		simrun.Cores(*cores),
		simrun.Insts(*insts),
		simrun.Warmup(*warmup),
		simrun.Seed(*seed),
		simrun.Fabric(*fabric),
		simrun.Coherence(*coherence),
		simrun.DRAM(*dram),
		simrun.Prefetch(*prefetch),
		simrun.Predictor(*predictor),
	}
	if *copies > 0 {
		opts = append(opts, simrun.Copies(*copies))
	}
	// Zero values still go through the options so a negative -hostpar or
	// -quantum is a usage error, never silently ignored.
	opts = append(opts, simrun.HostParallel(*hostpar), simrun.EpochQuantum(*quantum))
	if *stack || *rep || *asJSON {
		opts = append(opts, simrun.KeepCores())
	}
	// Observability rides the scenario but never its fingerprint or
	// result bytes: -trace and -progress change what is printed, not
	// what is simulated.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	if tracer != nil || *progress {
		obsv := &obs.Observer{Tracer: tracer}
		if *progress {
			obsv.Progress = func(p obs.Progress) {
				fmt.Fprintf(os.Stderr, "intervalsim: %s\n", p)
			}
		}
		opts = append(opts, simrun.Observe(obsv))
	}
	// simrun validates every knob eagerly: an unknown model, benchmark,
	// fabric, coherence protocol, DRAM model, prefetcher or predictor
	// name is a usage error, never silently ignored.
	s, err := simrun.New(*bench, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Ctrl-C / SIGTERM interrupts the run at the driver's next poll; the
	// partial result is still printed (with its interrupted marker) so a
	// long run cut short is not a total loss.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := s.Run(ctx)
	if tracer != nil {
		if werr := writeTrace(*traceOut, tracer); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			if err == nil {
				return 1
			}
		}
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	if interrupted {
		fmt.Fprintln(os.Stderr, "intervalsim: interrupted, printing partial results")
		exit = 130
	}
	if *asJSON {
		raw, err := report.JSON(res.Result)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%s\n", raw)
		if res.TimedOut && exit == 0 {
			exit = 1
		}
		return exit
	}
	if *rep {
		fmt.Print(report.Format(res.Result))
		if res.TimedOut && exit == 0 {
			exit = 1
		}
		return exit
	}

	fmt.Printf("benchmark=%s model=%s cores=%d\n", *bench, res.ModelLabel(), s.Threads())
	fmt.Printf("cycles=%d total-instructions=%d wall=%v (%.2f MIPS)\n",
		res.Cycles, res.TotalRetired, res.Wall, res.MIPS())
	for i, c := range res.Cores {
		fmt.Printf("  core %d: retired=%d finish=%d IPC=%.3f\n", i, c.Retired, c.Finish, c.IPC)
	}
	if *stack {
		for i, sc := range res.Sim {
			if ic, ok := sc.(*core.Core); ok {
				fmt.Printf("core %d %s", i, ic.Stack())
			}
		}
	}
	if res.TimedOut {
		fmt.Println("WARNING: run hit the cycle limit before completing")
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}
