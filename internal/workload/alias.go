package workload

import "math"

// Tabulated geometric sampling (stream format v3). The v2 generator
// drew geometric variates by inverse transform — floor(log(u)/log(q))
// — which put a math.Log call on the hot path of nearly every
// synthesized instruction (dependence distances) and on every block
// construction (block lengths, loop trips). v3 replaces the transform
// with a Walker/Vose alias table: one uniform draw, one table probe,
// one comparison, no transcendental math.
//
// The table covers outcomes [0, k-1); its last bucket is the tail mass
// P(X >= k-1). The geometric distribution is memoryless, so the tail
// resolves by adding k-1 and redrawing — the alias table over the
// shifted distribution is the same table. rounds bounds the redraws
// (and thereby the per-call draw count, which the counter-based RNG's
// per-instruction budget requires); the sampler truncates at
// rounds*(k-1), the v3 analogue of v2's hard cap at 10000.

type rngSource interface{ next() uint64 }

// aliasThrBits is the precision of the acceptance thresholds: the top
// 54 bits of the draw decide accept-vs-alias while the low bits select
// the column, so the two decisions use disjoint bits of one draw.
const aliasThrBits = 54

// aliasGeom samples the geometric distribution with success
// probability 1/mean (the distribution of floor(log(u)/log(1-1/mean))
// for uniform u). A nil sampler is valid and always returns 0, which
// is the v2 behaviour for mean <= 1.
type aliasGeom struct {
	thr    []uint64 // acceptance thresholds, scaled to 1<<aliasThrBits
	alias  []int32
	mask   uint64 // table size - 1 (size is a power of two)
	rounds int
}

// newAliasGeom builds the alias table for the geometric distribution
// with the given mean. k is the table size (rounded up to a power of
// two, outcomes [0,k-1) plus the tail bucket) and rounds bounds the
// memoryless tail redraws.
func newAliasGeom(mean float64, k, rounds int) *aliasGeom {
	if mean <= 1 {
		return nil
	}
	size := 2
	for size < k {
		size *= 2
	}
	q := 1 - 1/mean
	p := make([]float64, size)
	w := 1 - q // P(X=0)
	for i := 0; i < size-1; i++ {
		p[i] = w
		w *= q
	}
	p[size-1] = math.Pow(q, float64(size-1)) // tail mass P(X >= size-1)

	// Vose's alias construction over the (normalized) probabilities.
	var total float64
	for _, v := range p {
		total += v
	}
	scaled := make([]float64, size)
	var small, large []int
	for i, v := range p {
		scaled[i] = v * float64(size) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	a := &aliasGeom{
		thr:    make([]uint64, size),
		alias:  make([]int32, size),
		mask:   uint64(size - 1),
		rounds: rounds,
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.thr[s] = uint64(scaled[s] * (1 << aliasThrBits))
		a.alias[s] = int32(l)
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, rest := range [][]int{small, large} {
		for _, i := range rest {
			a.thr[i] = 1 << aliasThrBits
			a.alias[i] = int32(i)
		}
	}
	return a
}

// sample draws one geometric variate: column from the low bits,
// accept-vs-alias from the high bits, tail buckets resolved by the
// memoryless shift. At most rounds draws are consumed.
func (a *aliasGeom) sample(r rngSource) int {
	if a == nil {
		return 0
	}
	total := 0
	last := int(a.mask)
	for i := 0; i < a.rounds; i++ {
		u := r.next()
		j := int(u & a.mask)
		if (u >> (64 - aliasThrBits)) >= a.thr[j] {
			j = int(a.alias[j])
		}
		if j != last {
			return total + j
		}
		total += last
	}
	return total
}

// geomTableSize picks the alias-table size for a mean: large enough
// that the tail bucket is rare (size ~ 8*mean puts e^-8 of the mass in
// it), bounded so small means get small tables.
func geomTableSize(mean float64) int {
	k := int(8 * mean)
	if k < 64 {
		k = 64
	}
	if k > 4096 {
		k = 4096
	}
	return k
}

// probCut scales a probability to a uint64 threshold: a uniform draw u
// satisfies u < probCut(p) with probability p (to 2^-32), replacing the
// v2 float conversion and comparison on the hot path.
func probCut(p float64) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	return uint64(p*(1<<32)) << 32
}
