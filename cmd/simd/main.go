// Command simd serves interval simulation as a service: submit declarative
// scenario specs over HTTP, poll (or stream) job status, and let the
// content-addressed result cache turn repeated design-space queries into
// cache hits.
//
//	simd -addr :8080 -j 4 -queue-depth 64 -cache-dir /var/cache/simd
//
//	curl -s localhost:8080/v1/catalog
//	curl -s -X POST localhost:8080/v1/jobs -d '{"bench":"gcc","fabric":"mesh"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -N  localhost:8080/v1/jobs/<id>/events
//
// With -tiered, fresh queries are answered in well under a second from
// the statistical engine (a synthetic clone of the profiled workload)
// while the full interval run proceeds in the background; the job
// document, SSE stream and cache entry are upgraded in place when it
// lands, and every answer reports the tier that produced it.
//
// SIGINT/SIGTERM stops accepting work, drains queued and in-flight jobs
// (up to -drain-timeout) and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	// Register the estimator engines ("statistical", "simpoint") so
	// tiered serving has cheap tiers to answer from and specs may pin
	// them explicitly.
	_ "repro/internal/engine"
	"repro/internal/prof"
	"repro/internal/simd"
	"repro/internal/simrun"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		jobs    = flag.Int("j", 0, "host worker goroutines (0 = all host cores)")
		depth   = flag.Int("queue-depth", 64, "bounded job-queue depth")
		dir     = flag.String("cache-dir", "", "persist result payloads under this directory (empty = memory only)")
		entries = flag.Int("cache-entries", 256, "in-memory result-cache capacity")
		tiered  = flag.Bool("tiered", false, "answer from the cheapest fidelity tier immediately and upgrade in the background")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued and in-flight jobs")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file, flushed when the SIGTERM drain completes")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file, flushed when the SIGTERM drain completes")
	)
	flag.Parse()
	flush, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer flush()

	cache, err := simrun.NewCache(simrun.CacheOpts{
		Entries:    *entries,
		Dir:        *dir,
		Encode:     simd.Encode,
		DecodeTier: simd.DecodeTier,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	server, err := simd.New(simd.Config{Workers: *jobs, QueueDepth: *depth, Cache: cache, TieredServing: *tiered, Pprof: *pprofOn})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	httpServer := &http.Server{Addr: *addr, Handler: server.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	fmt.Printf("simd: listening on %s (workers=%d queue=%d cache=%d entries", *addr, *jobs, *depth, *entries)
	if *dir != "" {
		fmt.Printf(", dir=%s", *dir)
	}
	fmt.Println(")")

	select {
	case err := <-errc:
		// The listener failed before any signal: a bad -addr or a
		// port conflict.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("simd: draining…")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := server.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "simd: drain incomplete: %v\n", drainErr)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "simd: shutdown: %v\n", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	// Flush profiles now that the drain is over: the profile covers the
	// serving lifetime and survives the non-zero exit below, which would
	// skip the deferred flush.
	flush()
	fmt.Println("simd: bye")
	if drainErr != nil {
		os.Exit(1)
	}
}
