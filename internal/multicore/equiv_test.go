package multicore_test

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/multicore"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// nextOnly hides any batch capability of the wrapped stream, forcing the
// cores and the warmup loop onto the legacy Next adapter path.
type nextOnly struct{ s trace.Stream }

func (n nextOnly) Next() (isa.Inst, bool) { return n.s.Next() }

// hide wraps every stream in a Next-only shell.
func hide(streams []trace.Stream) []trace.Stream {
	out := make([]trace.Stream, len(streams))
	for i, s := range streams {
		out[i] = nextOnly{s}
	}
	return out
}

// runJSON simulates and renders the machine-readable report, which covers
// cycles, per-core IPC and the full hierarchy statistics — any divergence
// between the batched and unbatched hand-off shows up here.
func runJSON(t *testing.T, cfg multicore.RunConfig, streams []trace.Stream) []byte {
	t.Helper()
	cfg.KeepCores = true
	res := multicore.Run(cfg, streams)
	raw, err := report.JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestBatchedStreamEquivalence: for all three core models, simulating over
// batch-capable streams and over Next-only streams must produce
// bit-identical reports — with and without separate warmup twins.
func TestBatchedStreamEquivalence(t *testing.T) {
	const insts, warm = 12_000, 30_000
	models := []multicore.Model{multicore.Interval, multicore.Detailed, multicore.OneIPC}

	t.Run("spec-single-core", func(t *testing.T) {
		p := workload.SPECByName("gcc")
		for _, m := range models {
			m := m
			t.Run(m.String(), func(t *testing.T) {
				mk := func() ([]trace.Stream, []trace.Stream) {
					return []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), insts)},
						[]trace.Stream{workload.New(p, 0, 1, 1042)}
				}
				cfg := multicore.RunConfig{Machine: config.Default(1), Model: m, WarmupInsts: warm}

				s1, w1 := mk()
				cfg1 := cfg
				cfg1.Warmup = w1
				batched := runJSON(t, cfg1, s1)

				s2, w2 := mk()
				cfg2 := cfg
				cfg2.Warmup = hide(w2)
				unbatched := runJSON(t, cfg2, hide(s2))

				if !bytes.Equal(batched, unbatched) {
					t.Fatalf("batched and unbatched reports differ:\n%s\n--\n%s", batched, unbatched)
				}
			})
		}
	})

	t.Run("spec-warmup-from-head", func(t *testing.T) {
		// Warmup consuming the head of the main stream is the case where
		// over-reading by one batch would corrupt the timed portion.
		p := workload.SPECByName("mcf")
		cfg := multicore.RunConfig{Machine: config.Default(1), Model: multicore.Interval, WarmupInsts: warm}
		batched := runJSON(t, cfg,
			[]trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), insts+warm)})
		unbatched := runJSON(t, cfg,
			hide([]trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), insts+warm)}))
		if !bytes.Equal(batched, unbatched) {
			t.Fatalf("batched and unbatched reports differ:\n%s\n--\n%s", batched, unbatched)
		}
	})

	t.Run("parsec-multicore", func(t *testing.T) {
		p := workload.PARSECByName("canneal")
		q := *p
		q.TotalWork = 40_000
		for _, m := range models {
			m := m
			t.Run(m.String(), func(t *testing.T) {
				mk := func() []trace.Stream {
					streams := make([]trace.Stream, 4)
					for i := range streams {
						streams[i] = workload.New(&q, i, 4, 42)
					}
					return streams
				}
				cfg := multicore.RunConfig{
					Machine: config.Default(4), Model: m, MaxCycles: 50_000_000,
				}
				batched := runJSON(t, cfg, mk())
				unbatched := runJSON(t, cfg, hide(mk()))
				if !bytes.Equal(batched, unbatched) {
					t.Fatalf("batched and unbatched reports differ:\n%s\n--\n%s", batched, unbatched)
				}
			})
		}
	})

	t.Run("replay-matches-generated", func(t *testing.T) {
		// A recorded trace replayed through SliceStream must time exactly
		// like the generator it was recorded from.
		p := workload.SPECByName("swim")
		cfg := multicore.RunConfig{Machine: config.Default(1), Model: multicore.Interval, WarmupInsts: warm}

		cfgGen := cfg
		cfgGen.Warmup = []trace.Stream{workload.New(p, 0, 1, 1042)}
		generated := runJSON(t, cfgGen,
			[]trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), insts)})

		tr := trace.Record(workload.New(p, 0, 1, 42), insts)
		wtr := trace.Record(workload.New(p, 0, 1, 1042), warm)
		cfgRep := cfg
		cfgRep.Warmup = []trace.Stream{trace.NewSliceStream(wtr)}
		replayed := runJSON(t, cfgRep, []trace.Stream{trace.NewSliceStream(tr)})

		if !bytes.Equal(generated, replayed) {
			t.Fatalf("generated and replayed reports differ:\n%s\n--\n%s", generated, replayed)
		}
	})
}
