package core

// lineSet is a fixed-size open-addressed set of cache-line addresses, used
// to carry store-to-load memory dependences during the overlap scan. It
// replaces a Go map on the hot path: clearing is a generation bump instead
// of a rehash/range-delete, and membership is a multiply hash plus a short
// linear probe with no allocation in steady state.
//
// Capacity is sized at construction to twice the maximum number of inserts
// (one per store in the ROB-sized scan window), so the load factor never
// exceeds one half and probes stay short; the table can never fill.
type lineSet struct {
	keys []uint64
	gen  []uint64
	cur  uint64 // current generation; slots with gen[i] != cur are empty
	mask uint64
	n    int
}

// newLineSet returns a set sized for at most maxInserts distinct keys per
// generation.
func newLineSet(maxInserts int) lineSet {
	size := ceilPow2(2 * maxInserts)
	if size < 8 {
		size = 8
	}
	return lineSet{
		keys: make([]uint64, size),
		gen:  make([]uint64, size),
		cur:  1,
		mask: uint64(size - 1),
	}
}

// clear empties the set in O(1) by starting a new generation.
func (s *lineSet) clear() {
	s.cur++
	s.n = 0
}

// add inserts key into the set.
func (s *lineSet) add(key uint64) {
	i := (key * 0x9E3779B97F4A7C15) & s.mask
	for {
		if s.gen[i] != s.cur {
			s.keys[i] = key
			s.gen[i] = s.cur
			s.n++
			return
		}
		if s.keys[i] == key {
			return
		}
		i = (i + 1) & s.mask
	}
}

// contains reports membership.
func (s *lineSet) contains(key uint64) bool {
	i := (key * 0x9E3779B97F4A7C15) & s.mask
	for {
		if s.gen[i] != s.cur {
			return false
		}
		if s.keys[i] == key {
			return true
		}
		i = (i + 1) & s.mask
	}
}
