package memhier

import (
	"testing"

	"repro/internal/config"
)

func newH(cores int) *Hierarchy {
	return New(cores, config.Default(cores).Mem, Perfect{})
}

func TestInstHitAfterFill(t *testing.T) {
	h := newH(1)
	r1 := h.Inst(0, 0x400000, 0)
	if !r1.Miss {
		t.Fatal("cold I-fetch hit")
	}
	r2 := h.Inst(0, 0x400000, 100)
	if r2.Miss || r2.Latency != 0 {
		t.Fatalf("warm I-fetch = %+v, want L1 hit with 0 latency", r2)
	}
}

func TestInstMissLatencyComposition(t *testing.T) {
	h := newH(1)
	cfg := h.Config()
	r := h.Inst(0, 0x400000, 0)
	// Cold access: ITLB walk + L2 bus + L2 latency + DRAM.
	min := int64(cfg.ITLB.MissLatency + cfg.L2BusLatency + cfg.L2.Latency + cfg.DRAMLatency)
	if r.Latency < min {
		t.Fatalf("cold I-miss latency %d < %d", r.Latency, min)
	}
	if r.Kind != MemMiss || !r.TLBMiss {
		t.Fatalf("cold I-miss = %+v, want MemMiss+TLBMiss", r)
	}
	// Second miss in the same page but a different line: no TLB walk,
	// and the L2 now holds... nothing (L2 was missed and filled with
	// the first line only): a new line goes to DRAM again.
	r2 := h.Inst(0, 0x400040, 200)
	if r2.TLBMiss {
		t.Fatal("same-page access walked the TLB again")
	}
}

func TestDataL2HitPath(t *testing.T) {
	h := newH(1)
	addr := uint64(0x10000000000)
	h.Data(0, addr, false, 0) // cold: DRAM, fills L1+L2
	// Evict from L1 by filling conflicting lines, then re-access: L2 hit.
	cfg := h.Config()
	for i := 1; i <= cfg.L1D.Assoc+1; i++ {
		h.Data(0, addr+uint64(i*cfg.L1D.SizeBytes/cfg.L1D.Assoc), false, 10)
	}
	if h.L1D(0).Probe(addr) {
		t.Skip("conflict pattern did not evict the line; geometry changed")
	}
	r := h.Data(0, addr, false, 50_000)
	if r.Kind != L2Hit {
		t.Fatalf("kind = %v, want L2Hit", r.Kind)
	}
	want := int64(cfg.L2BusLatency + cfg.L2.Latency)
	if r.Latency != want {
		t.Fatalf("L2-hit latency = %d, want %d", r.Latency, want)
	}
}

func TestLongLatencyClassification(t *testing.T) {
	h := newH(1)
	r := h.Data(0, 0x10000000000, false, 0)
	if !r.LongLatency() || r.Kind != MemMiss {
		t.Fatalf("cold D-miss = %+v, want long-latency MemMiss", r)
	}
	r2 := h.Data(0, 0x10000000000, false, 1000)
	if r2.Miss || r2.LongLatency() {
		t.Fatalf("warm hit = %+v, want L1 hit", r2)
	}
}

func TestTLBMissAloneIsLongLatency(t *testing.T) {
	h := newH(1)
	addr := uint64(0x10000000000)
	h.Data(0, addr, false, 0)
	// Same line later: L1 hit; force a TLB-only miss by touching enough
	// pages to evict the translation while keeping the line... easier:
	// the paper's definition is tested directly on the Result.
	r := Result{Kind: L1Hit, TLBMiss: true}
	if !r.LongLatency() {
		t.Fatal("D-TLB miss not classified long-latency")
	}
}

func TestCoherenceMissBetweenCores(t *testing.T) {
	h := newH(2)
	addr := uint64(0x20000000000)
	h.Data(0, addr, true, 0) // core 0 writes: Modified
	r := h.Data(1, addr, false, 100)
	if r.Kind != CoherenceMiss || !r.LongLatency() {
		t.Fatalf("remote dirty read = %+v, want coherence miss", r)
	}
	cfg := h.Config()
	wantMin := int64(cfg.L2BusLatency + cfg.CacheToCacheLatency)
	if r.Latency < wantMin {
		t.Fatalf("coherence latency %d < %d", r.Latency, wantMin)
	}
}

func TestStoreInvalidatesRemoteL1(t *testing.T) {
	h := newH(2)
	addr := uint64(0x20000000000)
	h.Data(0, addr, false, 0)
	h.Data(1, addr, false, 10)
	if !h.L1D(0).Probe(addr) || !h.L1D(1).Probe(addr) {
		t.Fatal("line not shared in both L1s")
	}
	h.Data(0, addr, true, 20) // upgrade: invalidate core 1
	if h.L1D(1).Probe(addr) {
		t.Fatal("remote L1 copy survived an invalidating write")
	}
	if h.Coherence().State(1, addr) != 0 /* Invalid */ {
		t.Fatal("protocol state not invalidated")
	}
}

func TestMSHRMergesConcurrentMisses(t *testing.T) {
	h := newH(1)
	addr := uint64(0x30000000000)
	r1 := h.Data(0, addr, false, 0)
	// Evict from L1 so a second access at a nearby time is a miss again,
	// but keep it within the outstanding window: access a different word
	// of the same line after invalidating L1 only.
	h.L1D(0).Invalidate(addr)
	r2 := h.Data(0, addr+8, false, 1)
	if r2.Kind != L2Hit {
		t.Fatalf("merged secondary miss kind = %v, want L2Hit (merged)", r2.Kind)
	}
	if r2.Latency >= r1.Latency {
		t.Fatalf("merged miss latency %d not below primary %d", r2.Latency, r1.Latency)
	}
}

func TestPerfectSwitches(t *testing.T) {
	cfg := config.Default(1).Mem
	hI := New(1, cfg, Perfect{ISide: true})
	if r := hI.Inst(0, 0x400000, 0); r.Latency != 0 || r.Miss {
		t.Fatalf("perfect I-side returned %+v", r)
	}
	hD := New(1, cfg, Perfect{DSide: true})
	if r := hD.Data(0, 0x99999999, true, 0); r.Latency != 0 || r.Miss {
		t.Fatalf("perfect D-side returned %+v", r)
	}
	hL2 := New(1, cfg, Perfect{L2: true})
	r := hL2.Data(0, 0x10000000000, false, 0)
	if r.Kind != L2Hit {
		t.Fatalf("perfect-L2 cold miss kind = %v, want L2Hit", r.Kind)
	}
	if r.TLBMiss {
		t.Fatal("perfect-L2 experiment should have a perfect D-TLB")
	}
	want := int64(cfg.L2BusLatency + cfg.L2.Latency)
	if r.Latency != want {
		t.Fatalf("perfect-L2 latency = %d, want %d", r.Latency, want)
	}
}

func TestNoL2GoesStraightToDRAM(t *testing.T) {
	cfg := config.Stacked3D(1).Mem
	h := New(1, cfg, Perfect{})
	r := h.Data(0, 0x10000000000, false, 0)
	if r.Kind != MemMiss {
		t.Fatalf("kind = %v, want MemMiss (no L2)", r.Kind)
	}
	if h.L2() != nil {
		t.Fatal("L2 present in 3D configuration")
	}
	// 128-byte bus: transfer is 1 cycle, DRAM 125.
	wantMin := int64(cfg.L2BusLatency + cfg.L2.Latency + 125 + 1)
	if r.Latency < wantMin-int64(cfg.DTLB.MissLatency) {
		t.Fatalf("3D miss latency %d implausibly low", r.Latency)
	}
}

func TestResetStats(t *testing.T) {
	h := newH(2)
	h.Data(0, 0x10000000000, true, 0)
	h.Inst(1, 0x400000, 0)
	h.ResetStats()
	if st := h.Stats(); st.DataAccesses != 0 || st.InstAccesses != 0 || st.LongLatency != 0 {
		t.Fatal("hierarchy counters survived ResetStats")
	}
	if h.L1D(0).Misses != 0 || h.L1I(1).Misses != 0 {
		t.Fatal("cache counters survived ResetStats")
	}
	if !h.L1D(0).Probe(0x10000000000) {
		t.Fatal("ResetStats dropped cache contents")
	}
}

func TestDirtyL1VictimReachesL2(t *testing.T) {
	h := newH(1)
	cfg := h.Config()
	addr := uint64(0x40000000000)
	h.Data(0, addr, true, 0) // dirty in L1
	// Force eviction of addr from L1 via conflicting fills.
	stride := uint64(cfg.L1D.SizeBytes / cfg.L1D.Assoc)
	for i := 1; i <= cfg.L1D.Assoc+1; i++ {
		h.Data(0, addr+uint64(i)*stride, false, 10)
	}
	if h.L1D(0).Probe(addr) {
		t.Skip("victim still resident; geometry changed")
	}
	if !h.L2().Probe(addr) {
		t.Fatal("dirty victim not written back to L2")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		L1Hit: "L1", L2Hit: "L2", CoherenceMiss: "coherence", MemMiss: "mem",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := config.Default(1).Mem
	cfg.Prefetch = "nextline"
	cfg.PrefetchDegree = 2
	h := New(1, cfg, Perfect{})
	addr := uint64(0x50000000000)
	h.Data(0, addr, false, 0) // demand miss: prefetch addr+64, addr+128
	if h.Stats().Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if !h.L1D(0).Probe(addr + 64) {
		t.Fatal("next line not prefetched into L1D")
	}
	if !h.L1D(0).Probe(addr + 128) {
		t.Fatal("degree-2 line not prefetched")
	}
	// The prefetched line hits on demand.
	if r := h.Data(0, addr+64, false, 10); r.Miss {
		t.Fatalf("prefetched line missed: %+v", r)
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	h := newH(1)
	h.Data(0, 0x50000000000, false, 0)
	if h.Stats().Prefetches != 0 {
		t.Fatal("baseline configuration prefetched")
	}
	if h.L1D(0).Probe(0x50000000000 + 64) {
		t.Fatal("next line present without a prefetcher")
	}
}

func TestBusContentionBetweenCores(t *testing.T) {
	h := newH(2)
	// Both cores miss at the same cycle: the second transaction queues.
	r0 := h.Data(0, 0x60000000000, false, 0)
	r1 := h.Data(1, 0x61000000000, false, 0)
	if r1.Latency <= r0.Latency-int64(h.Config().DTLB.MissLatency) && h.Bus().StallTotal == 0 {
		t.Fatal("no bus arbitration visible between same-cycle misses")
	}
	if h.Bus().Transactions < 2 {
		t.Fatalf("bus transactions = %d", h.Bus().Transactions)
	}
}

func TestMESIConfigSelectsVariant(t *testing.T) {
	cfg := config.Default(2).Mem
	cfg.Coherence = "mesi"
	h := New(2, cfg, Perfect{})
	addr := uint64(0x70000000000)
	h.Data(0, addr, true, 0) // Modified in core 0
	h.Data(1, addr, false, 10)
	// MESI: the supplier downgraded to Shared, not Owned.
	if got := h.Coherence().State(0, addr); got.String() != "S" {
		t.Fatalf("supplier state = %v, want S under MESI", got)
	}
}
