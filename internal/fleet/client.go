package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/simrun"
)

// Client submits scenario specs to a coordinator's job API (the same
// /v1/jobs surface the single-process service exposes) and waits for
// completion. Submissions and polls retry transient failures — 5xx,
// backpressure, connection refused/reset — under the capped, jittered
// backoff, so a coordinator restart or a network blip costs a retry,
// not the whole sweep.
type Client struct {
	// Base is the coordinator's base URL (e.g. http://host:8080).
	Base string
	// HTTP performs the requests (nil builds a default).
	HTTP *http.Client
	// Retry shapes the backoff for submissions and polls.
	Retry Backoff
	// Poll is the status-poll interval (<=0 selects 100ms).
	Poll time.Duration
}

// JobResult is a completed job as the client sees it.
type JobResult struct {
	ID      string
	Tier    string
	Worker  string
	Payload json.RawMessage
}

// jobDoc is the subset of the service's job document the client needs.
type jobDoc struct {
	ID      string          `json:"id"`
	Status  string          `json:"status"`
	Tier    string          `json:"tier"`
	Worker  string          `json:"worker"`
	Error   string          `json:"error"`
	Result  json.RawMessage `json:"result"`
	Message string          `json:"message"`
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// SubmitAndWait submits sp and blocks until the job settles. Transient
// submission and poll failures retry; a failed job or a permanent
// rejection (bad spec) returns an error carrying the service's message.
func (cl *Client) SubmitAndWait(ctx context.Context, sp simrun.Spec) (JobResult, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return JobResult{}, err
	}
	var doc jobDoc
	err = cl.Retry.Retry(ctx, "submit:"+sp.Label+sp.Bench, func() (bool, error) {
		d, retry, err := cl.post(ctx, body)
		if err != nil {
			return retry, err
		}
		doc = d
		return false, nil
	})
	if err != nil {
		return JobResult{}, fmt.Errorf("fleet: submitting %s: %w", specName(sp), err)
	}
	return cl.wait(ctx, doc)
}

func specName(sp simrun.Spec) string {
	if sp.Label != "" {
		return sp.Label
	}
	if sp.Bench != "" {
		return sp.Bench
	}
	return "mix:" + strings.Join(sp.Mix, "+")
}

// post performs one submission attempt; retry reports whether a failure
// is transient.
func (cl *Client) post(ctx context.Context, body []byte) (jobDoc, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return jobDoc{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return jobDoc{}, TransientErr(err), err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobDoc{}, true, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return jobDoc{}, TransientStatus(resp.StatusCode),
			fmt.Errorf("POST /v1/jobs: %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var doc jobDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return jobDoc{}, false, err
	}
	return doc, false, nil
}

// wait polls the job until it settles. Poll failures retry in place:
// the job keeps running server-side regardless.
func (cl *Client) wait(ctx context.Context, doc jobDoc) (JobResult, error) {
	poll := cl.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		switch doc.Status {
		case "done":
			return JobResult{ID: doc.ID, Tier: doc.Tier, Worker: doc.Worker, Payload: doc.Result}, nil
		case "failed":
			return JobResult{}, fmt.Errorf("fleet: job %s failed: %s", doc.ID, doc.Error)
		}
		if !sleep(ctx, poll) {
			return JobResult{}, ctx.Err()
		}
		err := cl.Retry.Retry(ctx, "poll:"+doc.ID, func() (bool, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+"/v1/jobs/"+doc.ID, nil)
			if err != nil {
				return false, err
			}
			resp, err := cl.httpClient().Do(req)
			if err != nil {
				return TransientErr(err), err
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return true, err
			}
			if resp.StatusCode != http.StatusOK {
				return TransientStatus(resp.StatusCode),
					fmt.Errorf("GET /v1/jobs/%s: %d: %s", doc.ID, resp.StatusCode, strings.TrimSpace(string(data)))
			}
			return false, json.Unmarshal(data, &doc)
		})
		if err != nil {
			return JobResult{}, err
		}
	}
}
