package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return New(config.Cache{SizeBytes: 512, Assoc: 2, LineSize: 64})
}

func TestAccessMissThenFillHits(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("access after fill missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := smallCache()
	c.Fill(0x2000, false)
	for off := uint64(0); off < 64; off += 8 {
		if !c.Access(0x2000+off, false) {
			t.Fatalf("offset %d missed within a filled line", off)
		}
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (set stride = 4 sets * 64B).
	a, b, d := uint64(0x0000), uint64(0x1000), uint64(0x2000)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Access(a, false) // a is now MRU; b is LRU
	v := c.Fill(d, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("victim = %+v, want LRU line %#x", v, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatalf("contents wrong after eviction: a=%t b=%t d=%t",
			c.Probe(a), c.Probe(b), c.Probe(d))
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := smallCache()
	c.Fill(0x0000, true) // dirty
	c.Fill(0x1000, false)
	v := c.Fill(0x2000, false) // evicts 0x0000 (LRU)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("victim = %+v, want dirty line 0", v)
	}
	if c.WriteBack != 1 {
		t.Fatalf("WriteBack = %d, want 1", c.WriteBack)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := smallCache()
	c.Fill(0x3000, false)
	c.Access(0x3000, true) // write hit dirties the line
	c.Fill(0x4000, false)  // same set, newer than 0x3000
	v := c.Fill(0x5000, false)
	if !v.Valid {
		t.Fatal("no victim")
	}
	// 0x3000 is LRU (its last touch predates 0x4000's fill) and must
	// come out dirty because of the write hit.
	if v.Addr != 0x3000 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty 0x3000", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0x6000, true)
	present, dirty := c.Invalidate(0x6000)
	if !present || !dirty {
		t.Fatalf("invalidate = (%t,%t), want (true,true)", present, dirty)
	}
	if c.Probe(0x6000) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x6000)
	if present {
		t.Fatal("second invalidate reported present")
	}
}

func TestClean(t *testing.T) {
	c := smallCache()
	c.Fill(0x7000, true)
	c.Clean(0x7000)
	_, dirty := c.Invalidate(0x7000)
	if dirty {
		t.Fatal("line dirty after Clean")
	}
}

func TestFillRefreshExisting(t *testing.T) {
	c := smallCache()
	c.Fill(0x8000, false)
	v := c.Fill(0x8000, true) // refresh, now dirty
	if v.Valid {
		t.Fatalf("refresh produced a victim: %+v", v)
	}
	_, dirty := c.Invalidate(0x8000)
	if !dirty {
		t.Fatal("refresh with dirty=true did not dirty the line")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := smallCache()
	c.Fill(0x9000, true)
	c.Access(0x9000, false)
	c.Reset()
	if c.ValidLines() != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := smallCache()
	c.Fill(0xA000, false)
	c.Access(0xA000, false)
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("stats not cleared")
	}
	if !c.Probe(0xA000) {
		t.Fatal("contents cleared by ResetStats")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("miss rate nonzero with no accesses")
	}
	c.Access(0x1000, false) // miss
	c.Fill(0x1000, false)
	c.Access(0x1000, false) // hit
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := smallCache()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		addr := uint64(rng.Intn(1 << 20))
		if !c.Access(addr, rng.Intn(2) == 0) {
			c.Fill(addr, rng.Intn(2) == 0)
		}
	}
	if c.ValidLines() > 8 {
		t.Fatalf("valid lines %d exceed capacity 8", c.ValidLines())
	}
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	New(config.Cache{SizeBytes: 3 * 64, Assoc: 1, LineSize: 64})
}

// Property: no set ever holds two lines with the same tag, and probing any
// address just filled succeeds.
func TestQuickNoDuplicateTags(t *testing.T) {
	c := New(config.Cache{SizeBytes: 2 << 10, Assoc: 4, LineSize: 64})
	f := func(addrs []uint16, writes []bool) bool {
		for i, a := range addrs {
			addr := uint64(a) << 4
			w := i < len(writes) && writes[i]
			if !c.Access(addr, w) {
				c.Fill(addr, w)
			}
			if !c.Probe(addr) {
				return false
			}
			if c.DuplicateTags() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a victim reported by Fill was present before and absent after,
// and the filled line is always present after.
func TestQuickVictimConsistency(t *testing.T) {
	c := smallCache()
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a) << 6
			before := c.Probe(addr)
			v := c.Fill(addr, false)
			if before && v.Valid && v.Addr == addr {
				return false // refreshing must not evict itself
			}
			if v.Valid && c.Probe(v.Addr) && v.Addr != addr {
				return false // victim still present
			}
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimAddressRoundTrip(t *testing.T) {
	// The reconstructed victim address must map to the same set and tag
	// as the original.
	c := New(config.Cache{SizeBytes: 4 << 10, Assoc: 1, LineSize: 64})
	addr := uint64(0xDEAD40)
	c.Fill(addr, false)
	conflict := addr + 4<<10 // same set, different tag (direct-mapped)
	v := c.Fill(conflict, false)
	if !v.Valid || v.Addr != addr&^63 {
		t.Fatalf("victim addr %#x, want %#x", v.Addr, addr&^63)
	}
}
