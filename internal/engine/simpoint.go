package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/multicore"
	"repro/internal/sampling"
	"repro/internal/simrun"
	"repro/internal/workload"
)

const (
	// simpointMaxAnalyze caps how much of the real stream is phase-
	// classified; scenarios beyond it are extrapolated from this prefix,
	// which is what bounds the tier's cost. Classification streams the
	// signatures one interval at a time (v3) — nothing is recorded.
	simpointMaxAnalyze = 1_000_000
	// simpointK is the maximum number of phases (clusters).
	simpointK = 8
	// simpointMinInterval / simpointMaxInterval clamp the interval
	// length the analyzed span is sliced into.
	simpointMinInterval = 2_000
	simpointMaxInterval = 100_000
	// simpointWarm is the per-representative functional warmup: the
	// stream format's O(1) skip-ahead jumps straight to this many
	// instructions before each representative, replacing the v2 replay
	// of the entire recorded prefix up to the representative.
	simpointWarm = 50_000
)

func simpointEngine() simrun.EngineDef {
	return simrun.EngineDef{
		Name: "simpoint",
		Tier: func(*simrun.Scenario) simrun.Tier { return simrun.TierSampled },
		Cost: simpointCost,
		Supports: func(s *simrun.Scenario) error {
			if err := singleProgram(s); err != nil {
				return err
			}
			switch s.ModelName() {
			case "interval", "detailed":
				return nil
			}
			return errors.New("interval and detailed core models only (representative intervals are timed on a bare single core)")
		},
		Run: simpointRun,
	}
}

// simpointCost: the analyzed span is streamed once for classification,
// then each of up to K representatives costs a bounded warmup plus its
// interval — not a replay of the stream in front of it.
func simpointCost(s *simrun.Scenario) float64 {
	rec := min(s.WarmupBudget()+s.InstBudget(), simpointMaxAnalyze)
	return float64(rec) + float64(simpointK*(simpointWarm+simpointInterval(rec)))
}

// simpointInterval picks the clustering interval length for an analyzed
// span.
func simpointInterval(analyzed int) int {
	il := analyzed / 16
	if il > simpointMaxInterval {
		il = simpointMaxInterval
	}
	if il < simpointMinInterval {
		il = simpointMinInterval
	}
	if il > analyzed {
		il = analyzed
	}
	return il
}

// simpointRun is SimPoint phase sampling end to end: stream a bounded
// prefix of the real stream through interval classification, then time
// one representative per phase and combine the per-phase CPIs by
// cluster weight. Each representative is reached by skipping a fresh
// stream directly to a bounded warmup window in front of it (O(1) with
// stream format v3), so neither classification nor timing ever
// materializes the stream.
func simpointRun(ctx context.Context, s *simrun.Scenario) (simrun.Result, error) {
	start := time.Now()
	budget := s.InstBudget()
	rec := min(s.WarmupBudget()+budget, simpointMaxAnalyze)
	openStream := func() sampling.SkipStream {
		return workload.New(s.Profile(), 0, 1, s.SeedValue())
	}

	sp, err := sampling.AnalyzeStream(openStream(), rec, sampling.SimPointConfig{
		IntervalLen: simpointInterval(rec),
		K:           simpointK,
		Seed:        s.SeedValue(),
	})
	if err != nil {
		return simrun.Result{}, fmt.Errorf("engine: simpoint: %w", err)
	}

	machine, err := s.ResolvedMachine()
	if err != nil {
		return simrun.Result{}, err
	}
	model := multicore.Interval
	if s.ModelName() == "detailed" {
		model = multicore.Detailed
	}
	ipc, err := sampling.EstimateIPCSkip(openStream, sp, simpointWarm, machine, model)
	if err != nil {
		return simrun.Result{}, fmt.Errorf("engine: simpoint: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return simrun.Result{Result: multicore.Result{Interrupted: true}}, err
	}

	cycles := int64(float64(budget)/ipc + 0.5)
	return simrun.Result{Result: multicore.Result{
		Model:        model,
		ModelName:    s.ModelName(),
		Cycles:       cycles,
		Cores:        []multicore.CoreResult{{Retired: uint64(budget), Finish: cycles, IPC: ipc}},
		TotalRetired: uint64(budget),
		Wall:         time.Since(start),
	}}, nil
}
