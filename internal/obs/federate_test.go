package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// scrapeOf parses a registry's exposition text into a Scrape, failing
// the test on parse errors.
func scrapeOf(t *testing.T, r *Registry, instance string, age time.Duration, stale bool) Scrape {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return Scrape{Instance: instance, Families: fams, Age: age, Stale: stale}
}

// TestWriteFederated: merging two instances' payloads labels every
// sample with its worker, sums counters into a label-free aggregate,
// emits per-instance staleness gauges, and stays parseable — federation
// output is itself valid scrape input.
func TestWriteFederated(t *testing.T) {
	a := NewRegistry()
	a.Counter("t_runs_total", "Runs.").Add(3)
	a.Gauge("t_depth", "Queue depth.").Set(5)
	b := NewRegistry()
	b.Counter("t_runs_total", "Runs.").Add(4)
	// A sample that already carries a worker label keeps it verbatim.
	b.Counter("t_beats_total", "Beats.", Label{"worker", "self"}).Inc()

	var buf bytes.Buffer
	err := WriteFederated(&buf, []Scrape{
		scrapeOf(t, b, "w2", 70*time.Second, true),
		scrapeOf(t, a, "w1", time.Second, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"t_runs_total 7", // aggregate first, no worker label
		`t_runs_total{worker="w1"} 3`,
		`t_runs_total{worker="w2"} 4`,
		`t_depth{worker="w1"} 5`,
		`t_beats_total{worker="self"} 1`,
		`fleet_scrape_age_seconds{worker="w1"} 1`,
		`fleet_scrape_age_seconds{worker="w2"} 70`,
		`fleet_scrape_stale{worker="w1"} 0`,
		`fleet_scrape_stale{worker="w2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated payload missing %q:\n%s", want, text)
		}
	}
	// Gauges never aggregate: no label-free t_depth sample.
	if strings.Contains(text, "\nt_depth 5") {
		t.Errorf("gauge was aggregated across instances:\n%s", text)
	}
	if _, err := ParseText(strings.NewReader(text)); err != nil {
		t.Errorf("federated output does not re-parse: %v\n%s", err, text)
	}

	// A never-scraped instance contributes only staleness samples, with
	// the sentinel age -1.
	buf.Reset()
	if err := WriteFederated(&buf, []Scrape{{Instance: "ghost", Age: -1, Stale: true}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fleet_scrape_age_seconds{worker="ghost"} -1`) {
		t.Errorf("never-scraped instance missing the -1 age sentinel:\n%s", buf.String())
	}
}

// TestFederationRoundTrip: WriteAll → ParseText → WriteFamilies →
// ParseText is lossless — re-merging a scraped payload changes nothing,
// so a fleet of fleets can federate its federations.
func TestFederationRoundTrip(t *testing.T) {
	a := NewRegistry()
	a.Counter("t_jobs_total", "Jobs.").Add(9)
	a.Counter("t_runs_total", "Runs.", Label{"engine", "interval"}).Add(2)
	a.Gauge("t_depth", "Depth.").Set(3)
	h := a.Histogram("t_wall_seconds", "Wall.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	b := NewRegistry()
	b.Counter("t_beats_total", "Beats.").Inc()

	var first bytes.Buffer
	if err := WriteAll(&first, a, b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteFamilies(&second, parsed); err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseText(&second)
	if err != nil {
		t.Fatalf("re-rendered payload does not parse: %v\n%s", err, second.String())
	}
	if !FamiliesEqual(parsed, reparsed) {
		t.Fatalf("round trip lost information:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// FuzzParseText: the parser must never panic, and any payload it
// accepts must survive the render/re-parse round trip unchanged — the
// idempotence federation relies on.
func FuzzParseText(f *testing.F) {
	f.Add("# HELP x X.\n# TYPE x counter\nx 1\n")
	f.Add("# TYPE g gauge\ng{worker=\"w1\",q=\"a b\"} -1.5\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n")
	f.Add("orphan 3\n")
	f.Add("# TYPE x counter\nx notanumber\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, payload string) {
		fams, err := ParseText(strings.NewReader(payload))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFamilies(&out, fams); err != nil {
			t.Fatalf("accepted payload failed to render: %v", err)
		}
		again, err := ParseText(&out)
		if err != nil {
			t.Fatalf("rendered payload does not re-parse: %v\n%s", err, out.String())
		}
		if !FamiliesEqual(fams, again) {
			t.Fatalf("render/re-parse not idempotent for:\n%s", payload)
		}
	})
}

// TestSpanWire: the header wire form round-trips spans exactly, bounds
// its size by dropping the oldest spans, and decodes garbage loudly.
func TestSpanWire(t *testing.T) {
	spans := []SpanRec{
		{Name: "warmup", TID: 0, StartUS: 10, DurUS: 100},
		{Name: "engine:interval", TID: 0, StartUS: 120, DurUS: 4000, Args: map[string]int64{"cores": 2}},
		{Name: "cache:store", TID: 0, StartUS: 4200, DurUS: 30},
	}
	got, err := DecodeSpans(EncodeSpans(spans, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip returned %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i].Name != spans[i].Name || got[i].StartUS != spans[i].StartUS || got[i].DurUS != spans[i].DurUS {
			t.Errorf("span %d changed: %+v -> %+v", i, spans[i], got[i])
		}
	}
	if got[1].Args["cores"] != 2 {
		t.Errorf("span args lost: %+v", got[1])
	}

	// Too small a budget drops oldest spans but keeps the tail.
	many := make([]SpanRec, 200)
	for i := range many {
		many[i] = SpanRec{Name: "span-with-a-reasonably-long-name", StartUS: int64(i)}
	}
	enc := EncodeSpans(many, 1024)
	if len(enc) > 1024 {
		t.Fatalf("bounded encoding is %d bytes, want <= 1024", len(enc))
	}
	kept, err := DecodeSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == 0 || len(kept) >= len(many) {
		t.Fatalf("bounded encoding kept %d of %d spans, want a proper tail", len(kept), len(many))
	}
	if kept[len(kept)-1].StartUS != many[len(many)-1].StartUS {
		t.Error("bounding dropped the newest span; it must drop the oldest")
	}

	if EncodeSpans(nil, 0) != "" {
		t.Error("no spans should encode to the empty wire form")
	}
	if _, err := DecodeSpans("!!not-base64!!"); err == nil {
		t.Error("garbage wire form decoded without error")
	}
}

// TestSplice: imported spans are shifted into the local timebase and
// moved onto the given track, durations untouched.
func TestSplice(t *testing.T) {
	tr := NewTracer(8)
	tr.Splice([]SpanRec{
		{Name: "engine:interval", TID: 0, StartUS: 5, DurUS: 70},
		{Name: "cache:store", TID: 3, StartUS: 80, DurUS: 2},
	}, 1000, 2)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spliced %d spans, want 2", len(spans))
	}
	if spans[0].StartUS != 1005 || spans[0].DurUS != 70 || spans[0].TID != 2 {
		t.Errorf("spliced span = %+v, want start 1005 dur 70 tid 2", spans[0])
	}
	if spans[1].StartUS != 1080 || spans[1].TID != 2 {
		t.Errorf("spliced span = %+v, want start 1080 tid 2", spans[1])
	}

	// tid < 0 keeps the remote rows.
	tr2 := NewTracer(8)
	tr2.Splice([]SpanRec{{Name: "x", TID: 7, StartUS: 1}}, 0, -1)
	if got := tr2.Spans()[0].TID; got != 7 {
		t.Errorf("splice with tid -1 moved the span to row %d", got)
	}
}

// TestNamedRows: NameTID labels surface in TIDNames and as thread_name
// metadata events in the Chrome export, sorted for determinism.
func TestNamedRows(t *testing.T) {
	tr := NewTracer(4)
	tr.NameTID(1, "worker:w1")
	tr.NameTID(0, "coordinator")
	tr.Start("dispatch:w1").End()
	rows := tr.TIDNames()
	if rows[0] != "coordinator" || rows[1] != "worker:w1" {
		t.Fatalf("TIDNames = %v", rows)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	i0 := strings.Index(text, `"coordinator"`)
	i1 := strings.Index(text, `"worker:w1"`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("thread_name metadata missing or unsorted:\n%s", text)
	}
	if !strings.Contains(text, `"ph":"M"`) {
		t.Fatalf("no metadata events in export:\n%s", text)
	}
}

// TestHistogramQuantile: interpolated quantiles from bucket counts,
// with the empty and overflow edge cases pinned down.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_q_seconds", "Q.", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// 10 observations in [0,1), 10 in [1,2): p50 lands at the 1s bound,
	// p95 inside the second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got < 0.9 || got > 1.1 {
		t.Errorf("p50 = %v, want ~1", got)
	}
	if got := h.Quantile(0.95); got < 1.5 || got > 2 {
		t.Errorf("p95 = %v, want in (1.5, 2]", got)
	}
	// Overflow observations clamp to the last finite bound instead of
	// inventing an infinite latency.
	h2 := r.Histogram("t_q2_seconds", "Q2.", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
}

// TestHeartbeatFinalDedup: a Final at the same retired count as the
// last emitted Tick is suppressed — the closing line already said it —
// while a Final with new information still lands.
func TestHeartbeatFinalDedup(t *testing.T) {
	var lines []Progress
	hb := &Heartbeat{Every: time.Millisecond, Emit: func(p Progress) { lines = append(lines, p) }}
	hb.Tick(100) // arms the clock
	time.Sleep(3 * time.Millisecond)
	hb.Tick(500)
	if len(lines) != 1 || lines[0].Retired != 500 {
		t.Fatalf("throttled tick emitted %+v, want one line at 500", lines)
	}
	hb.Final(500)
	if len(lines) != 1 {
		t.Fatalf("duplicate Final emitted: %+v", lines)
	}
	hb.Final(900)
	if len(lines) != 2 || lines[1].Retired != 900 {
		t.Fatalf("informative Final suppressed: %+v", lines)
	}

	// A heartbeat that ticked but never emitted still gets its Final.
	var finals []Progress
	hb2 := &Heartbeat{Every: time.Hour, Emit: func(p Progress) { finals = append(finals, p) }}
	hb2.Tick(10)
	hb2.Final(10)
	if len(finals) != 1 {
		t.Fatalf("never-emitted heartbeat lost its Final: %+v", finals)
	}
}
