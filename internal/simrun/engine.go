package simrun

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EngineDef is one registered way to produce an answer for a scenario.
// Engines span the fidelity spectrum: the built-in "full" engine runs
// the scenario's entire instruction budget under its core model, while
// estimator engines (package internal/engine registers "statistical"
// and "simpoint") trade fidelity for orders-of-magnitude less work. All
// engines answer the *same* scenario — the engine choice never enters
// the scenario fingerprint — so a serving layer can answer cheap first
// and upgrade the cached answer when a higher tier lands.
type EngineDef struct {
	// Name is the registered engine name.
	Name string
	// Tier classifies the fidelity of this engine's answer for s.
	Tier func(s *Scenario) Tier
	// Cost estimates the work of running s on this engine, in
	// simulated-instruction-equivalents. Only the ordering across
	// engines matters; adaptive front ends use it to budget.
	Cost func(s *Scenario) float64
	// Supports reports whether the engine can answer s: nil when it
	// can, an error explaining why not otherwise.
	Supports func(s *Scenario) error
	// Run produces the engine's answer. The dispatcher stamps
	// Result.Engine and Result.Tier afterwards; Run fills the
	// simulated outcome.
	Run func(ctx context.Context, s *Scenario) (Result, error)
}

// DefaultEngine is the engine scenarios run under when none is chosen:
// the full-budget simulation of the scenario's core model.
const DefaultEngine = "full"

var engineRegistry = struct {
	sync.RWMutex
	engines map[string]EngineDef
}{engines: map[string]EngineDef{}}

// RegisterEngine makes an engine available to scenarios under its Name.
// Registering a name twice, an empty name, or a definition with missing
// hooks panics: engine registration is program wiring, not user input.
// The built-in "full" engine is pre-registered; "statistical" and
// "simpoint" are registered by importing package internal/engine.
func RegisterEngine(e EngineDef) {
	if e.Name == "" || e.Tier == nil || e.Cost == nil || e.Supports == nil || e.Run == nil {
		panic("simrun: RegisterEngine needs a name and all four hooks")
	}
	engineRegistry.Lock()
	defer engineRegistry.Unlock()
	if _, dup := engineRegistry.engines[e.Name]; dup {
		panic(fmt.Sprintf("simrun: engine %q registered twice", e.Name))
	}
	engineRegistry.engines[e.Name] = e
}

// Engines lists the registered engine names, sorted.
func Engines() []string {
	engineRegistry.RLock()
	defer engineRegistry.RUnlock()
	names := make([]string, 0, len(engineRegistry.engines))
	for n := range engineRegistry.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupEngine resolves a registered engine name. Unknown names fail
// loudly with the registered set in the message — this is the shared
// rejection choke point for both wire front ends (simd submissions and
// cmd/sweep -f batch files), mirroring the SpecVersion rejection.
func LookupEngine(name string) (EngineDef, error) {
	engineRegistry.RLock()
	e, ok := engineRegistry.engines[name]
	engineRegistry.RUnlock()
	if !ok {
		return EngineDef{}, fmt.Errorf("simrun: unknown engine %q (registered: %s; tiers, cheapest first: %s)",
			name, strings.Join(Engines(), ", "), tierList())
	}
	return e, nil
}

func tierList() string {
	ts := Tiers()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = string(t)
	}
	return strings.Join(names, " < ")
}

// CheapestEngineFor returns the cheapest registered engine that supports
// s: lowest tier first, lowest cost estimate within a tier. The "full"
// engine supports every scenario, so there is always an answer.
func CheapestEngineFor(s *Scenario) EngineDef {
	engineRegistry.RLock()
	defer engineRegistry.RUnlock()
	var best EngineDef
	bestRank, bestCost := 0, 0.0
	for _, name := range sortedEngineNamesLocked() {
		e := engineRegistry.engines[name]
		if e.Supports(s) != nil {
			continue
		}
		rank, cost := e.Tier(s).Rank(), e.Cost(s)
		if best.Name == "" || rank < bestRank || (rank == bestRank && cost < bestCost) {
			best, bestRank, bestCost = e, rank, cost
		}
	}
	return best
}

// sortedEngineNamesLocked is Engines without re-locking, for iteration
// in a deterministic order under the registry lock.
func sortedEngineNamesLocked() []string {
	names := make([]string, 0, len(engineRegistry.engines))
	for n := range engineRegistry.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AnswerTier is the fidelity tier the scenario's selected engine answers
// at — what a cache lookup for this scenario must at least hold to count
// as a hit. An unregistered engine (possible only for scenarios built
// before a registry change) demands a definitive entry and fails loudly
// at Run.
func (s *Scenario) AnswerTier() Tier {
	eng, err := LookupEngine(s.EngineName())
	if err != nil {
		return ""
	}
	return eng.Tier(s)
}

// fullTier is the full engine's answer tier: it simulates the entire
// budget under the scenario's own core model, so the tier is the model's
// place in the lattice (detailed for the detailed model, interval for
// the analytical models).
func fullTier(s *Scenario) Tier {
	if s.model == "detailed" {
		return TierDetailed
	}
	return TierInterval
}

// fullCost weighs the full engine's work: every thread simulates the
// warmup plus measured budget, and the detailed model pays roughly an
// order of magnitude more per instruction than the analytical ones
// (the paper's speed comparison).
func fullCost(s *Scenario) float64 {
	perThread := float64(s.warmup + s.insts)
	weight := 1.0
	if s.model == "detailed" {
		weight = 10
	}
	return float64(s.Threads()) * perThread * weight
}

func init() {
	RegisterEngine(EngineDef{
		Name:     DefaultEngine,
		Tier:     fullTier,
		Cost:     fullCost,
		Supports: func(*Scenario) error { return nil },
		Run: func(ctx context.Context, s *Scenario) (Result, error) {
			return s.runFull(ctx)
		},
	})
}
