// Package cache implements the structural cache and TLB models used by the
// memory hierarchy: set-associative caches with true-LRU replacement and
// write-back/write-allocate policy, TLBs, and an MSHR file for merging
// outstanding misses.
//
// These models are purely structural: they track which lines are present
// and in what state, and answer hit/miss queries. Latency composition and
// coherence are handled by the memhier and coherence packages.
package cache

import (
	"fmt"

	"repro/internal/config"
)

// line is one cache line frame: the tag word packs the tag with the valid
// and dirty bits (bits 0 and 1), so a frame is 16 bytes and a 4-way set
// scans a single host cache line. Simulated addresses stay well below 62
// tag bits. lru is the last-use stamp; larger is more recent.
type line struct {
	key uint64 // tag<<2 | dirty<<1 | valid
	lru uint64
}

const (
	lineValid = 1 << 0
	lineDirty = 1 << 1
)

// Cache is a set-associative cache with true-LRU replacement. It is a
// structural model: Access and Probe report presence, Fill inserts lines
// and reports the evicted victim.
type Cache struct {
	cfg      config.Cache
	sets     [][]line
	setShift uint
	setMask  uint64
	tagShift uint // log2(number of sets), hoisted off the access path
	stamp    uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	WriteBack uint64
}

// New creates a cache with the given geometry. It panics if the geometry is
// not a power-of-two number of sets, because index extraction uses masking.
func New(cfg config.Cache) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", nsets))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d is not a power of two", cfg.LineSize))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(log2(cfg.LineSize)),
		setMask:  uint64(nsets - 1),
		tagShift: uint(log2(nsets)),
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() config.Cache { return c.cfg }

// Frames returns the total number of line frames (sets × associativity);
// it bounds the way indices returned by AccessWay and FillWay.
func (c *Cache) Frames() int { return len(c.sets) * c.cfg.Assoc }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.setShift
	return blk & c.setMask, blk >> c.tagShift
}

// Access looks up addr, updating LRU state and statistics. write marks the
// line dirty on a hit. It returns whether the access hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	hit, _ := c.AccessRW(addr, write)
	return hit
}

// AccessRW is Access returning additionally whether a write hit found the
// line already dirty (in which case the coherence state must already be
// Modified and no protocol action is needed — a hot-path shortcut).
func (c *Cache) AccessRW(addr uint64, write bool) (hit, wasDirty bool) {
	hit, wasDirty, _ = c.accessWay(addr, write)
	return hit, wasDirty
}

// AccessWay is Access additionally returning the hit frame's global way
// index (set*assoc + way), so sidecar payload arrays (the BTB's targets)
// can live outside the cache without a map. The index is meaningful only on
// a hit.
func (c *Cache) AccessWay(addr uint64, write bool) (hit bool, way int) {
	hit, _, way = c.accessWay(addr, write)
	return hit, way
}

func (c *Cache) accessWay(addr uint64, write bool) (hit, wasDirty bool, way int) {
	set, tag := c.index(addr)
	c.stamp++
	ways := c.sets[set]
	want := tag<<2 | lineValid
	for i := range ways {
		ln := &ways[i]
		if k := ln.key; k&^lineDirty == want {
			ln.lru = c.stamp
			wasDirty = k&lineDirty != 0
			if write {
				ln.key = k | lineDirty
			}
			c.Hits++
			return true, wasDirty, int(set)*len(ways) + i
		}
	}
	c.Misses++
	return false, false, 0
}

// Probe reports whether addr is present without updating LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	want := tag<<2 | lineValid
	for i := range c.sets[set] {
		if c.sets[set][i].key&^lineDirty == want {
			return true
		}
	}
	return false
}

// Victim describes a line evicted by Fill.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Fill inserts the line containing addr, evicting the LRU way if the set is
// full. dirty marks the inserted line dirty (write-allocate store miss).
// The returned victim is valid only if an existing line was displaced.
func (c *Cache) Fill(addr uint64, dirty bool) Victim {
	v, _ := c.FillWay(addr, dirty)
	return v
}

// FillWay is Fill additionally returning the global way index (set*assoc +
// way) of the frame the line now occupies — the refreshed frame when the
// line was already present, the filled frame otherwise.
func (c *Cache) FillWay(addr uint64, dirty bool) (Victim, int) {
	set, tag := c.index(addr)
	c.stamp++
	ways := c.sets[set]
	want := tag<<2 | lineValid
	victimIdx := 0
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		ln := &ways[i]
		k := ln.key
		if k&^lineDirty == want {
			// Already present (e.g. filled by an overlapping miss);
			// refresh it.
			ln.lru = c.stamp
			if dirty {
				ln.key = k | lineDirty
			}
			return Victim{}, int(set)*len(ways) + i
		}
		if k&lineValid == 0 {
			victimIdx = i
			oldest = 0
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victimIdx = i
		}
	}
	ln := &ways[victimIdx]
	var v Victim
	if k := ln.key; k&lineValid != 0 {
		v = Victim{
			Addr:  (k>>2<<c.tagShift | set) << c.setShift,
			Dirty: k&lineDirty != 0,
			Valid: true,
		}
		c.Evictions++
		if v.Dirty {
			c.WriteBack++
		}
	}
	key := tag<<2 | lineValid
	if dirty {
		key |= lineDirty
	}
	*ln = line{key: key, lru: c.stamp}
	return v, int(set)*len(ways) + victimIdx
}

// Invalidate removes the line containing addr if present, returning whether
// it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	want := tag<<2 | lineValid
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if k := ln.key; k&^lineDirty == want {
			ln.key = 0
			return true, k&lineDirty != 0
		}
	}
	return false, false
}

// Clean clears the dirty bit of the line containing addr if present.
func (c *Cache) Clean(addr uint64) {
	set, tag := c.index(addr)
	want := tag<<2 | lineValid
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.key&^lineDirty == want {
			ln.key &^= lineDirty
			return
		}
	}
}

// Reset empties the cache and clears statistics.
func (c *Cache) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line{}
		}
	}
	c.stamp = 0
	c.Hits, c.Misses, c.Evictions, c.WriteBack = 0, 0, 0, 0
}

// MissRate returns Misses / (Hits + Misses), or 0 for no accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// ValidLines counts the number of valid lines (test helper).
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].key&lineValid != 0 {
				n++
			}
		}
	}
	return n
}

// DuplicateTags reports whether any set holds the same tag twice; always
// false for a correct implementation (used by property tests).
func (c *Cache) DuplicateTags() bool {
	for s := range c.sets {
		seen := make(map[uint64]bool, len(c.sets[s]))
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			if ln.key&lineValid == 0 {
				continue
			}
			tag := ln.key >> 2
			if seen[tag] {
				return true
			}
			seen[tag] = true
		}
	}
	return false
}

// ResetStats clears the statistics counters without touching contents,
// for functional-warmup runs.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions, c.WriteBack = 0, 0, 0, 0
}
