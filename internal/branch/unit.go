package branch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
)

// BTB is the branch target buffer: a set-associative tag store mapping
// branch PCs to targets. A taken branch whose target is absent from the BTB
// is a misfetch even when the direction was predicted correctly. The tag
// store is the structural cache model; targets live in a sidecar array
// indexed by the frame the tag occupies, so the per-branch lookup is an
// array read instead of a map access.
type BTB struct {
	inner   *cache.Cache
	targets []uint64
}

// NewBTB creates a BTB with the given entry count and associativity.
func NewBTB(entries, assoc int) *BTB {
	// Model each entry as a 4-byte "line" so that entries/assoc sets of
	// assoc ways hold exactly `entries` branches.
	inner := cache.New(config.Cache{
		SizeBytes: entries * 4,
		Assoc:     assoc,
		LineSize:  4,
	})
	return &BTB{inner: inner, targets: make([]uint64, inner.Frames())}
}

// Lookup reports whether the BTB holds a target for pc and whether that
// target matches the architectural target.
func (b *BTB) Lookup(pc, target uint64) (present, match bool) {
	if hit, way := b.inner.AccessWay(pc&^3, false); hit {
		return true, b.targets[way] == target
	}
	return false, false
}

// Update installs target for pc.
func (b *BTB) Update(pc, target uint64) {
	_, way := b.inner.FillWay(pc&^3, false)
	b.targets[way] = target
}

// Reset restores the power-on state.
func (b *BTB) Reset() {
	b.inner.Reset()
	for i := range b.targets {
		b.targets[i] = 0
	}
}

// RAS is the return address stack. It is a circular stack: pushes beyond
// capacity overwrite the oldest entry, as in hardware.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS creates a return address stack with the given number of entries.
func NewRAS(entries int) *RAS {
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. It reports false if the stack is
// empty (the prediction is then a guaranteed miss).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Reset empties the stack.
func (r *RAS) Reset() {
	r.top, r.depth = 0, 0
}

// Unit is the complete per-core front-end predictor: direction predictor +
// BTB + RAS. It is the "branch predictor simulator" box in the paper's
// framework diagram (Figure 2).
type Unit struct {
	dir DirectionPredictor
	btb *BTB
	ras *RAS

	Lookups        uint64
	Mispredictions uint64
}

// NewUnit builds a predictor unit from the configuration. Unknown kinds
// panic: the configuration is programmer-supplied.
func NewUnit(cfg config.BranchPredictor) *Unit {
	var dir DirectionPredictor
	switch cfg.Kind {
	case "local":
		dir = NewLocal(cfg.LocalHistoryEntries, cfg.LocalHistoryBits, cfg.PHTEntries)
	case "gshare":
		dir = NewGShare(cfg.PHTEntries, cfg.LocalHistoryBits)
	case "bimodal":
		dir = NewBimodal(cfg.PHTEntries)
	case "tournament":
		dir = NewTournament(cfg.PHTEntries, cfg.LocalHistoryBits)
	case "tage":
		dir = NewTAGE(cfg.PHTEntries)
	case "perfect":
		dir = Perfect{}
	default:
		panic("branch: unknown predictor kind " + cfg.Kind)
	}
	return &Unit{
		dir: dir,
		btb: NewBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras: NewRAS(cfg.RASEntries),
	}
}

// perfect reports whether the direction predictor is the perfect one, in
// which case BTB/RAS misses are ignored too (Figure 4 experiments assume a
// fully perfect front end).
func (u *Unit) perfect() bool {
	_, ok := u.dir.(Perfect)
	return ok
}

// Predict processes the dynamic branch in and reports whether it was
// mispredicted. The architectural outcome (in.Taken, in.Target) trains the
// structures.
func (u *Unit) Predict(in *isa.Inst) (mispredicted bool) {
	u.Lookups++
	switch in.Class {
	case isa.Call:
		u.ras.Push(in.PC + 4)
		mispredicted = u.predictDirect(in)
	case isa.Return:
		if u.perfect() {
			return false
		}
		addr, ok := u.ras.Pop()
		mispredicted = !ok || addr != in.Target
	default:
		mispredicted = u.predictDirect(in)
	}
	if mispredicted {
		u.Mispredictions++
	}
	return mispredicted
}

// predictDirect handles conditional and call branches through the direction
// predictor and BTB.
func (u *Unit) predictDirect(in *isa.Inst) bool {
	pred := u.dir.Predict(in.PC, in.Taken)
	if u.perfect() {
		return false
	}
	if pred != in.Taken {
		if in.Taken {
			u.btb.Update(in.PC, in.Target)
		}
		return true
	}
	if !in.Taken {
		return false
	}
	// Correctly predicted taken: need the target from the BTB.
	present, match := u.btb.Lookup(in.PC, in.Target)
	u.btb.Update(in.PC, in.Target)
	return !present || !match
}

// MispredictRate returns mispredictions per lookup.
func (u *Unit) MispredictRate() float64 {
	if u.Lookups == 0 {
		return 0
	}
	return float64(u.Mispredictions) / float64(u.Lookups)
}

// Reset restores the power-on state.
func (u *Unit) Reset() {
	u.dir.Reset()
	u.btb.Reset()
	u.ras.Reset()
	u.Lookups, u.Mispredictions = 0, 0
}

// ResetStats clears the lookup/misprediction counters without touching the
// predictor tables, for functional-warmup runs.
func (u *Unit) ResetStats() { u.Lookups, u.Mispredictions = 0, 0 }
