package workload

// SPEC CPU2000-like single-threaded profiles. Parameters are chosen
// qualitatively from the benchmarks' published characterizations (memory
// footprints, branch behaviour, ILP); see DESIGN.md §2 for the substitution
// argument. What matters for the reproduction is that the suite spans the
// behaviour space the paper's figures span: compute-bound high-IPC codes,
// branch-limited codes, L2-resident codes and DRAM-bound codes.
//
// Region probabilities are calibrated so L1-D miss rates land in realistic
// ranges (a few percent for typical codes, tens of percent for the
// memory-bound outliers mcf/art), since the hit rate of a random-access
// region is roughly cache size over region size.

// Working-set shorthand sizes.
const (
	wsL1   = 16 << 10  // fits the 32KB L1
	wsL2   = 512 << 10 // fits the 4MB L2, misses L1
	wsBig  = 16 << 20  // exceeds the L2
	wsHuge = 64 << 20
)

// intMix returns a typical integer-code mix with the given branch fraction.
func intMix(branch float64) Mix {
	return Mix{
		IntALU: 0.50, IntMul: 0.01, IntDiv: 0.002, FP: 0.01,
		Load: 0.26, Store: 0.11, Branch: branch, Call: 0.08,
	}
}

// fpMix returns a typical floating-point-code mix.
func fpMix(branch float64) Mix {
	return Mix{
		IntALU: 0.28, IntMul: 0.02, IntDiv: 0.004, FP: 0.32,
		Load: 0.28, Store: 0.09, Branch: branch, Call: 0.03,
	}
}

// specBase fills the control-flow defaults shared by the SPEC-like
// profiles.
func specBase(p Profile) Profile {
	if p.Funcs == 0 {
		p.Funcs = 16
	}
	if p.BlocksPerFunc == 0 {
		p.BlocksPerFunc = 20
	}
	if p.LoopTripMean == 0 {
		p.LoopTripMean = 12
	}
	if p.BiasedProb == 0 {
		p.BiasedProb = 0.93
	}
	if p.RandomProb == 0 {
		p.RandomProb = 0.45
	}
	if p.SerializeEvery == 0 {
		p.SerializeEvery = 200000
	}
	if p.ChainFrac == 0 {
		p.ChainFrac = 0.06
	}
	return p
}

// SPEC returns the 26 SPEC CPU2000-like profiles in the order used by the
// paper's figures (12 integer, then 14 floating point).
func SPEC() []Profile {
	ps := []Profile{
		{
			Name: "bzip2", Mix: intMix(0.12), DepDistMean: 4,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.94}, {Bytes: wsL2, Prob: 0.055}, {Bytes: wsBig, Prob: 0.005}},
			LoopFrac: 0.55, BiasedFrac: 0.35, LoopTripMean: 16,
		},
		{
			Name: "crafty", Mix: intMix(0.13), DepDistMean: 5,
			Regions: []Region{{Bytes: wsL1, Prob: 0.97}, {Bytes: wsL2, Prob: 0.03}},
			Funcs:   40, BlocksPerFunc: 28, // large code footprint
			LoopFrac: 0.4, BiasedFrac: 0.48,
		},
		{
			Name: "eon", Mix: Mix{IntALU: 0.40, IntMul: 0.02, FP: 0.18, Load: 0.26, Store: 0.10, Branch: 0.10, Call: 0.12},
			DepDistMean: 5,
			Regions:     []Region{{Bytes: wsL1, Prob: 0.975}, {Bytes: wsL2, Prob: 0.025}},
			LoopFrac:    0.5, BiasedFrac: 0.42,
		},
		{
			Name: "gap", Mix: intMix(0.11), DepDistMean: 4,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.94}, {Bytes: wsL2, Prob: 0.05}, {Bytes: wsBig, Prob: 0.01}},
			LoopFrac: 0.55, BiasedFrac: 0.37,
		},
		{
			Name: "gcc", Mix: intMix(0.15), DepDistMean: 3.5,
			Regions: []Region{{Bytes: wsL1, Prob: 0.92}, {Bytes: 256 << 10, Prob: 0.07}, {Bytes: wsBig, Prob: 0.01}},
			Funcs:   48, BlocksPerFunc: 28, // notoriously large code
			LoopFrac: 0.32, BiasedFrac: 0.46, SerializeEvery: 100000,
		},
		{
			Name: "gzip", Mix: intMix(0.11), DepDistMean: 4,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.95}, {Bytes: wsL2, Prob: 0.05}},
			LoopFrac: 0.6, BiasedFrac: 0.32, LoopTripMean: 24,
		},
		{
			Name: "mcf", Mix: intMix(0.12), DepDistMean: 2.5,
			Regions:      []Region{{Bytes: wsL1, Prob: 0.72}, {Bytes: wsHuge, Prob: 0.28}},
			PointerChase: 0.6, // dependent pointer walks: little MLP
			LoopFrac:     0.4, BiasedFrac: 0.35,
		},
		{
			Name: "parser", Mix: intMix(0.14), DepDistMean: 3,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.92}, {Bytes: wsL2, Prob: 0.07}, {Bytes: wsBig, Prob: 0.01}},
			LoopFrac: 0.35, BiasedFrac: 0.4, PointerChase: 0.15,
		},
		{
			Name: "perlbmk", Mix: intMix(0.14), DepDistMean: 4,
			Regions: []Region{{Bytes: wsL1, Prob: 0.94}, {Bytes: wsL2, Prob: 0.06}},
			Funcs:   40, BlocksPerFunc: 24,
			LoopFrac: 0.4, BiasedFrac: 0.48,
		},
		{
			Name: "twolf", Mix: intMix(0.13), DepDistMean: 3,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.90}, {Bytes: wsL2, Prob: 0.095}, {Bytes: wsBig, Prob: 0.005}},
			LoopFrac: 0.35, BiasedFrac: 0.38, RandomProb: 0.45,
		},
		{
			Name: "vortex", Mix: intMix(0.13), DepDistMean: 4.5,
			Regions: []Region{{Bytes: wsL1, Prob: 0.93}, {Bytes: wsL2, Prob: 0.06}, {Bytes: wsBig, Prob: 0.01}},
			Funcs:   40, BlocksPerFunc: 24,
			LoopFrac: 0.45, BiasedFrac: 0.46,
		},
		{
			Name: "vpr", Mix: intMix(0.14), DepDistMean: 3,
			Regions: []Region{{Bytes: wsL1, Prob: 0.93}, {Bytes: wsL2, Prob: 0.07}},
			// Data-dependent branches: the paper reports vpr among the
			// largest branch-penalty errors.
			LoopFrac: 0.28, BiasedFrac: 0.3, RandomProb: 0.5,
		},

		// Floating point.
		{
			Name: "ammp", Mix: fpMix(0.06), DepDistMean: 6, ChainFrac: 0.125,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.90}, {Bytes: wsL2, Prob: 0.08}, {Bytes: wsBig, Prob: 0.02}},
			LoopFrac: 0.6, BiasedFrac: 0.3, LoopTripMean: 24,
		},
		{
			Name: "applu", Mix: fpMix(0.04), DepDistMean: 6, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.60}, {Bytes: wsL2, Prob: 0.25, Stride: 8}, {Bytes: wsBig, Prob: 0.15, Stride: 8}},
			LoopFrac: 0.75, BiasedFrac: 0.15, LoopTripMean: 40,
		},
		{
			Name: "apsi", Mix: fpMix(0.05), DepDistMean: 6, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.90}, {Bytes: wsL2, Prob: 0.07}, {Bytes: wsBig, Prob: 0.03, Stride: 8}},
			LoopFrac: 0.65, BiasedFrac: 0.25, LoopTripMean: 24,
		},
		{
			Name: "art", Mix: fpMix(0.06), DepDistMean: 6, ChainFrac: 0.125,
			// Working set just beyond the 4MB L2: thrashes it. The F1
			// neuron walks are partially dependent chains.
			Regions:      []Region{{Bytes: wsL1, Prob: 0.75}, {Bytes: 6 << 20, Prob: 0.25}},
			PointerChase: 0.25,
			LoopFrac:     0.6, BiasedFrac: 0.25, LoopTripMean: 48,
		},
		{
			Name: "equake", Mix: fpMix(0.05), DepDistMean: 6, ChainFrac: 0.125,
			Regions:      []Region{{Bytes: wsL1, Prob: 0.80}, {Bytes: wsBig, Prob: 0.20, Stride: 8}},
			PointerChase: 0.2,
			LoopFrac:     0.65, BiasedFrac: 0.25, LoopTripMean: 32,
		},
		{
			Name: "facerec", Mix: fpMix(0.04), DepDistMean: 6, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.85}, {Bytes: wsL2, Prob: 0.10}, {Bytes: wsBig, Prob: 0.05, Stride: 8}},
			LoopFrac: 0.7, BiasedFrac: 0.2, LoopTripMean: 36,
		},
		{
			Name: "fma3d", Mix: fpMix(0.05), DepDistMean: 6, ChainFrac: 0.125,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.88}, {Bytes: wsL2, Prob: 0.09}, {Bytes: wsBig, Prob: 0.03}},
			LoopFrac: 0.6, BiasedFrac: 0.3, LoopTripMean: 20,
		},
		{
			Name: "galgel", Mix: fpMix(0.05), DepDistMean: 8, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.93}, {Bytes: wsL2, Prob: 0.07}},
			LoopFrac: 0.75, BiasedFrac: 0.2, LoopTripMean: 48,
		},
		{
			Name: "lucas", Mix: fpMix(0.03), DepDistMean: 6, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.75}, {Bytes: wsHuge, Prob: 0.25, Stride: 8}},
			LoopFrac: 0.8, BiasedFrac: 0.15, LoopTripMean: 64,
		},
		{
			Name: "mesa", Mix: fpMix(0.07), DepDistMean: 6, ChainFrac: 0.08,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.985}, {Bytes: wsL2, Prob: 0.015}},
			LoopFrac: 0.55, BiasedFrac: 0.38, LoopTripMean: 24,
		},
		{
			Name: "mgrid", Mix: fpMix(0.03), DepDistMean: 6, ChainFrac: 0.08,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.55}, {Bytes: wsL2, Prob: 0.35, Stride: 8}, {Bytes: wsBig, Prob: 0.10, Stride: 8}},
			LoopFrac: 0.85, BiasedFrac: 0.1, LoopTripMean: 64,
		},
		{
			Name: "sixtrack", Mix: fpMix(0.05), DepDistMean: 7, ChainFrac: 0.07,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.98}, {Bytes: wsL2, Prob: 0.02}},
			LoopFrac: 0.7, BiasedFrac: 0.26, LoopTripMean: 32,
		},
		{
			Name: "swim", Mix: fpMix(0.02), DepDistMean: 7, ChainFrac: 0.08,
			// Streaming through a huge array: bandwidth-bound.
			Regions:  []Region{{Bytes: wsL1, Prob: 0.60}, {Bytes: wsHuge, Prob: 0.40, Stride: 8}},
			LoopFrac: 0.9, BiasedFrac: 0.08, LoopTripMean: 96,
		},
		{
			Name: "wupwise", Mix: fpMix(0.04), DepDistMean: 6, ChainFrac: 0.10,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.90}, {Bytes: wsL2, Prob: 0.07}, {Bytes: wsBig, Prob: 0.03, Stride: 8}},
			LoopFrac: 0.7, BiasedFrac: 0.25, LoopTripMean: 40,
		},
	}
	for i := range ps {
		ps[i] = specBase(ps[i])
	}
	return ps
}

// SPECByName returns the named profile, or nil.
func SPECByName(name string) *Profile {
	for _, p := range SPEC() {
		if p.Name == name {
			q := p
			return &q
		}
	}
	return nil
}
