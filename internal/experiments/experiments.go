// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the step-by-step single-threaded accuracy
// experiments (Figure 4), full single-threaded accuracy (Figure 5),
// multi-program STP/ANTT (Figure 6), multi-threaded PARSEC scaling
// (Figure 7), the 3D-stacking design-trade-off case study (Figure 8), and
// the simulation-speed comparisons (Figures 9 and 10), plus a one-IPC
// ablation. Each experiment returns a Table whose rows mirror the series
// the paper plots; cmd/experiments prints them and bench_test.go wraps them
// as benchmarks.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/memhier"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Opts sizes the experiments. The paper simulates 100M-instruction
// SimPoints; the synthetic substrate reaches steady state much sooner, so
// the defaults are far smaller while preserving every qualitative result.
type Opts struct {
	// Insts is the per-thread instruction budget for SPEC-style runs.
	Insts int
	// Warmup is the functional warmup length per core.
	Warmup int
	// WorkScale scales PARSEC profiles' TotalWork (1.0 = profile value).
	WorkScale float64
	// Seed selects the deterministic workload instance.
	Seed int64
}

// Defaults returns the standard experiment sizing.
func Defaults() Opts {
	return Opts{Insts: 50_000, Warmup: 600_000, WorkScale: 1, Seed: 42}
}

// Quick returns a reduced sizing for smoke runs.
func Quick() Opts {
	return Opts{Insts: 15_000, Warmup: 150_000, WorkScale: 0.25, Seed: 42}
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string   // e.g. "fig5"
	Title   string   // the paper artifact it reproduces
	Columns []string // column headers
	Rows    [][]string
	// Notes summarizes the expected shape and the measured aggregate
	// (average/max error, speedup range) for EXPERIMENTS.md.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
	}
	b.WriteString(strings.Join(header, "  "))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			cells[i] = pad(c, w)
		}
		b.WriteString(strings.Join(cells, "  "))
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "-- %s\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// runSpec runs one SPEC profile alone on a machine with the given perfect
// switches and predictor kind.
func (o Opts) runSpec(p *workload.Profile, model multicore.Model, cores int,
	perfect memhier.Perfect, predictor string) multicore.Result {
	m := config.Default(cores)
	if predictor != "" {
		m.Branch.Kind = predictor
	}
	streams := make([]trace.Stream, cores)
	warm := make([]trace.Stream, cores)
	for i := 0; i < cores; i++ {
		streams[i] = trace.NewLimit(workload.New(p, i, cores, o.Seed), o.Insts)
		warm[i] = workload.New(p, i, cores, o.Seed+1000)
	}
	return multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       model,
		Perfect:     perfect,
		WarmupInsts: o.Warmup,
		Warmup:      warm,
		MaxCycles:   500_000_000,
	}, streams)
}

// runParsec runs one PARSEC profile with one thread per core on machine m.
func (o Opts) runParsec(p *workload.Profile, model multicore.Model, m config.Machine) multicore.Result {
	q := *p
	if o.WorkScale > 0 && o.WorkScale != 1 {
		q.TotalWork = uint64(float64(q.TotalWork) * o.WorkScale)
	}
	streams := make([]trace.Stream, m.Cores)
	warm := make([]trace.Stream, m.Cores)
	for i := 0; i < m.Cores; i++ {
		streams[i] = workload.New(&q, i, m.Cores, o.Seed)
		warm[i] = workload.New(&q, i, m.Cores, o.Seed+1000)
	}
	return multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       model,
		WarmupInsts: o.Warmup,
		Warmup:      warm,
		MaxCycles:   500_000_000,
	}, streams)
}

// f3 formats a float at 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float at 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
