package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshGeometry(t *testing.T) {
	cases := []struct {
		cores, w, h int
	}{
		{1, 2, 1},  // 2 nodes
		{2, 2, 2},  // 3 nodes in a 2x2
		{3, 2, 2},  // 4 nodes
		{4, 3, 2},  // 5 nodes
		{8, 3, 3},  // 9 nodes
		{15, 4, 4}, // 16 nodes
	}
	for _, c := range cases {
		m := NewMesh(c.cores, 1, 1)
		if m.Width() != c.w || m.Height() != c.h {
			t.Errorf("NewMesh(%d): grid %dx%d, want %dx%d",
				c.cores, m.Width(), m.Height(), c.w, c.h)
		}
		if m.Width()*m.Height() < c.cores+1 {
			t.Errorf("NewMesh(%d): grid too small for cores+hub", c.cores)
		}
	}
}

func TestMeshUncontendedLatencyIsManhattan(t *testing.T) {
	const perHop = 3
	m := NewMesh(8, perHop, 1) // 3x3, hub at node 8 = (2,2)
	for core := 0; core < 8; core++ {
		m.ResetStats()
		got := m.AccessFrom(core, 0)
		want := int64(m.Hops(core)) * perHop
		if got != want {
			t.Errorf("core %d: latency %d, want %d (hops=%d)", core, got, want, m.Hops(core))
		}
	}
}

func TestMeshHopsMatchManhattanDistance(t *testing.T) {
	m := NewMesh(15, 1, 1) // 4x4
	hx, hy := m.hub%m.width, m.hub/m.width
	for core := 0; core < 15; core++ {
		cx, cy := core%m.width, core/m.width
		dx, dy := hx-cx, hy-cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if m.Hops(core) != dx+dy {
			t.Errorf("core %d: Hops=%d, want %d", core, m.Hops(core), dx+dy)
		}
	}
}

func TestMeshContentionDelaysSecondTransfer(t *testing.T) {
	// 2x2 mesh, hub at node 3 = (1,1). Cores 1=(1,0) and 0=(0,0): core 0
	// routes east through node 1 then south; core 1 routes south on the
	// same (1,0)->(1,1) link. Issued at the same instant with occupancy 2,
	// the second user of the shared link must queue.
	m := NewMesh(3, 1, 2)
	l1 := m.AccessFrom(1, 0) // 1 hop: (1,0)->(1,1)
	if l1 != 1 {
		t.Fatalf("first transfer latency %d, want 1", l1)
	}
	l0 := m.AccessFrom(0, 0) // east hop free, then south link busy until t=2
	// Route: east (0,0)->(1,0) takes 1 cycle, arrives t=1; south link is
	// busy until t=2, header starts at 2, arrives 3.
	if l0 != 3 {
		t.Errorf("contended transfer latency %d, want 3", l0)
	}
	if m.StallTotal != 1 {
		t.Errorf("StallTotal=%d, want 1", m.StallTotal)
	}
}

func TestMeshStatsAccumulate(t *testing.T) {
	m := NewMesh(8, 1, 1)
	var hops uint64
	for core := 0; core < 8; core++ {
		m.AccessFrom(core, int64(core*100)) // spaced out: no contention
		hops += uint64(m.Hops(core))
	}
	if m.Transactions != 8 {
		t.Errorf("Transactions=%d, want 8", m.Transactions)
	}
	if m.HopTotal != hops {
		t.Errorf("HopTotal=%d, want %d", m.HopTotal, hops)
	}
	if m.StallTotal != 0 {
		t.Errorf("StallTotal=%d, want 0 for spaced transfers", m.StallTotal)
	}
	if m.BusyTotal != int64(hops) {
		t.Errorf("BusyTotal=%d, want %d", m.BusyTotal, hops)
	}
	if m.AvgHops() != float64(hops)/8 {
		t.Errorf("AvgHops=%v", m.AvgHops())
	}
}

func TestRingShortestDirection(t *testing.T) {
	r := NewRing(7, 1, 1) // 8 nodes, hub at 7
	// Node 6 is 1 hop clockwise from hub; node 0 is 1 hop counter-clockwise
	// (0 -> 7 going backwards).
	if got := r.Hops(6); got != 1 {
		t.Errorf("Hops(6)=%d, want 1", got)
	}
	if got := r.Hops(0); got != 1 {
		t.Errorf("Hops(0)=%d, want 1", got)
	}
	if got := r.Hops(3); got != 4 {
		t.Errorf("Hops(3)=%d, want 4", got)
	}
}

func TestRingUncontendedLatency(t *testing.T) {
	const perHop = 2
	r := NewRing(7, perHop, 1)
	for core := 0; core < 7; core++ {
		got := r.AccessFrom(core, int64(core*50))
		want := int64(r.Hops(core)) * perHop
		if got != want {
			t.Errorf("core %d: latency %d, want %d", core, got, want)
		}
	}
}

func TestRingContention(t *testing.T) {
	r := NewRing(3, 1, 3) // 4 nodes, hub=3
	// Core 2 -> hub is 1 clockwise hop over link (2, cw). Core 1 -> hub is
	// 2 clockwise hops, the second over the same link.
	l2 := r.AccessFrom(2, 0)
	if l2 != 1 {
		t.Fatalf("first transfer latency %d, want 1", l2)
	}
	l1 := r.AccessFrom(1, 0)
	// Hop 1->2 free: start 0, arrive 1. Link (2,cw) busy until 3: start 3,
	// arrive 4.
	if l1 != 4 {
		t.Errorf("contended transfer latency %d, want 4", l1)
	}
}

func TestRingResetStats(t *testing.T) {
	r := NewRing(3, 1, 5)
	r.AccessFrom(0, 0)
	r.ResetStats()
	if r.Transactions != 0 || r.BusyTotal != 0 || r.StallTotal != 0 {
		t.Errorf("stats not cleared: %+v", r.Stats)
	}
	// Link occupancy must also clear: an immediate transfer sees no queue.
	if got := r.AccessFrom(0, 0); got != int64(r.Hops(0)) {
		t.Errorf("post-reset latency %d, want %d", got, r.Hops(0))
	}
}

func TestMeshPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh(0) did not panic")
		}
	}()
	NewMesh(0, 1, 1)
}

func TestRingPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0, 1, 1)
}

// Property: for any core and spacing, mesh latency is at least
// hops*perHop (queueing only adds), and with wide spacing it is exactly
// hops*perHop.
func TestMeshLatencyBoundsProperty(t *testing.T) {
	f := func(coresRaw uint8, coreRaw uint8, seq [12]uint8) bool {
		cores := int(coresRaw%15) + 1
		m := NewMesh(cores, 2, 1)
		// Contended phase: arbitrary issue times in a tight window.
		for _, s := range seq {
			core := int(coreRaw+s) % cores
			lat := m.AccessFrom(core, int64(s%4))
			if lat < int64(m.Hops(core))*2 {
				return false
			}
		}
		// Quiet phase: far in the future, must be exact.
		for c := 0; c < cores; c++ {
			lat := m.AccessFrom(c, int64(1_000_000+c*1000))
			if lat != int64(m.Hops(c))*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring routes never exceed half the ring (shortest direction).
func TestRingShortestPathProperty(t *testing.T) {
	f := func(coresRaw uint8, coreRaw uint8) bool {
		cores := int(coresRaw%30) + 1
		r := NewRing(cores, 1, 1)
		core := int(coreRaw) % cores
		return r.Hops(core) <= (cores+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization never exceeds 1 when measured at or after the last
// completion time.
func TestFabricUtilizationBounded(t *testing.T) {
	fabrics := []Fabric{NewMesh(8, 1, 2), NewRing(8, 1, 2)}
	for _, f := range fabrics {
		var last int64
		for i := 0; i < 1000; i++ {
			core := i % 8
			end := int64(i%7) + f.AccessFrom(core, int64(i%7))
			if end > last {
				last = end
			}
		}
		if u := f.Utilization(last); u < 0 || u > 1 {
			t.Errorf("%T: utilization %v out of [0,1]", f, u)
		}
	}
}

func BenchmarkMeshAccess(b *testing.B) {
	m := NewMesh(15, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.AccessFrom(i%15, int64(i))
	}
}

func BenchmarkRingAccess(b *testing.B) {
	r := NewRing(15, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AccessFrom(i%15, int64(i))
	}
}
