// Package engine registers the estimator engines of the fidelity-tier
// lattice (statistical < sampled < interval < detailed) with the simrun
// engine registry:
//
//   - "statistical" (tier statistical): profiles a bounded window of the
//     real instruction stream (internal/statsim), generates a short
//     synthetic clone that reproduces the profiled mix, dependences,
//     branch behaviour and cache locality, times the clone under the
//     scenario's own core model, and extrapolates to the full budget.
//   - "simpoint" (tier sampled): records a bounded prefix of the stream,
//     clusters its intervals by code signature (internal/sampling,
//     seeded k-means++) and times one representative per phase, weighted
//     by cluster size.
//
// Importing this package (for side effects) is what turns a binary into
// a tiered-fidelity front end: the simd service answers fresh queries
// from the cheapest supporting engine while the full run proceeds in the
// background, and cmd/sweep's adaptive mode spends the full-fidelity
// budget where the statistical tier found the most interest. Both
// engines are deterministic: same scenario, same seed — same answer.
package engine

import (
	"errors"

	"repro/internal/simrun"
)

// singleProgram rejects scenarios the estimator engines cannot answer:
// both profile one single-threaded instruction stream.
func singleProgram(s *simrun.Scenario) error {
	p := s.Profile()
	if p == nil {
		return errors.New("needs a named single-benchmark workload (explicit streams and mixes have no profile to estimate from)")
	}
	if p.MultiThreaded() {
		return errors.New("single-threaded profiles only (multi-threaded clones are out of scope, as in the statistical-simulation literature)")
	}
	if s.Threads() != 1 {
		return errors.New("single-core scenarios only")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	simrun.RegisterEngine(statisticalEngine())
	simrun.RegisterEngine(simpointEngine())
}
