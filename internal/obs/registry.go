// Package obs is the stack's dependency-free observability core: a
// metrics registry with Prometheus text exposition, a structured span
// tracer with an in-memory ring and Chrome trace_event export, and a
// throttled live-progress heartbeat.
//
// Everything in this package obeys one hard contract: **zero cost when
// disabled**. Every hot-path hook is a nil-pointer method call — a nil
// *Tracer or *Heartbeat no-ops every operation — so instrumented code
// guards with a single nil check and pays nothing when observability is
// off. Observability output never feeds back into simulation: metrics,
// spans and progress carry host wall-clock measurements only and are
// excluded from scenario fingerprints and report.JSON payloads, so
// bit-identity contracts (parsim GOMAXPROCS identity, cache payload
// equality) hold with tracing on or off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for the exposition `# TYPE` line.
type Kind string

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = "counter"
	// KindGauge is a value that can go up and down.
	KindGauge Kind = "gauge"
	// KindHistogram is a cumulative bucketed distribution.
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer-valued metric that can rise and fall (queue
// occupancy, in-flight work).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative bucketed distribution of float64
// observations (Prometheus histogram semantics: each bucket counts
// observations ≤ its upper bound, plus an implicit +Inf bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last = +Inf
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation within the bucket holding the
// target rank — the same estimate a Prometheus histogram_quantile gives.
// Returns 0 with no observations; observations beyond the last finite
// bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := uint64(0)
	lower := 0.0
	for i, upper := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if float64(cum) >= rank {
			if h.counts[i] == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(h.counts[i])
			return lower + (upper-lower)*frac
		}
		lower = upper
	}
	// Target rank sits in the +Inf bucket: the last finite bound is the
	// best bounded answer.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// DefBuckets are the default histogram bounds, in seconds: wide enough
// to span a sub-millisecond statistical estimate and a minutes-long
// detailed run.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30, 60, 120, 300}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// series is one labeled instance of a family.
type series struct {
	labels  string // rendered `{k="v",...}`, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is one named metric with its help string, kind and series.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is idempotent: asking for an
// existing (name, labels) pair returns the existing instrument, so
// init-once wiring needs no coordination. A nil *Registry no-ops every
// registration and returns usable (but unexported) instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry collects process-wide metrics (engine runs, parsim
// counters, batch occupancy) that have no natural per-object home.
var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Libraries register their
// metrics here lazily (sync.Once) so unused subsystems add nothing.
func Default() *Registry { return defaultRegistry }

// renderLabels renders a label set deterministically (sorted by key).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// fam returns the named family, creating it with the given kind and
// help on first use. Re-registering with a different kind panics: that
// is program wiring gone wrong, not user input.
func (r *Registry) fam(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter registers (or fetches) a counter with optional labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, KindCounter)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, counter: &Counter{}}
		f.series[key] = s
	}
	return s.counter
}

// Gauge registers (or fetches) an integer gauge with optional labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, KindGauge)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, gauge: &Gauge{}}
		f.series[key] = s
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the bridge for values another subsystem already tracks (queue
// length, cache size). Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, KindGauge)
	key := renderLabels(labels)
	f.series[key] = &series{labels: key, gaugeFn: fn}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counts another subsystem already
// tracks in its own atomics. Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, KindCounter)
	key := renderLabels(labels)
	f.series[key] = &series{labels: key, gaugeFn: func() float64 { return float64(fn()) }}
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if r == nil {
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, KindHistogram)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, hist: &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}}
		f.series[key] = s
	}
	return s.hist
}

// formatValue renders a sample value the way Prometheus clients do:
// integers without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.hist != nil:
		s.hist.mu.Lock()
		bounds := s.hist.bounds
		counts := append([]uint64(nil), s.hist.counts...)
		sum, count := s.hist.sum, s.hist.count
		s.hist.mu.Unlock()
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			if err := writeSample(w, f.name+"_bucket", mergeLabel(s.labels, "le", formatValue(b)), float64(cum)); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if err := writeSample(w, f.name+"_bucket", mergeLabel(s.labels, "le", "+Inf"), float64(cum)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", s.labels, sum); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", s.labels, float64(count))
	case s.counter != nil:
		return writeSample(w, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		return writeSample(w, f.name, s.labels, float64(s.gauge.Value()))
	case s.gaugeFn != nil:
		return writeSample(w, f.name, s.labels, s.gaugeFn())
	}
	return nil
}

// writeSample renders one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v float64) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(v))
	return err
}

// mergeLabel appends one more label pair to an already-rendered label
// string (for the histogram `le` label).
func mergeLabel(rendered, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WriteText renders the registry in the Prometheus text exposition
// format: families sorted by name, series sorted by label string, one
// `# HELP` and `# TYPE` line per family. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	return WriteAll(w, r)
}

// Families snapshots the registered family names, sorted.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Help returns the registered help string for a family name ("" when
// absent).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.help
	}
	return ""
}

// WriteAll renders several registries as one exposition payload,
// merging their family namespaces (first registration of a name wins on
// help/kind) and sorting families by name. This is how a server merges
// its per-instance registry with the process-wide Default one.
func WriteAll(w io.Writer, regs ...*Registry) error {
	merged := map[string]*family{}
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		for name, f := range r.families {
			m, ok := merged[name]
			if !ok {
				m = &family{name: f.name, help: f.help, kind: f.kind, series: map[string]*series{}}
				merged[name] = m
			}
			for key, s := range f.series {
				if _, dup := m.series[key]; !dup {
					m.series[key] = s
				}
			}
		}
		r.mu.Unlock()
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := merged[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, f, f.series[k]); err != nil {
				return err
			}
		}
	}
	return nil
}
