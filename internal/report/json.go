package report

import (
	"encoding/json"

	"repro/internal/multicore"
)

// Summary is the machine-readable form of a run result. Field names are
// stable API: the simd service, cmd/intervalsim -json and downstream
// tooling all parse this shape.
//
// The encoding is deliberately deterministic for a given simulated
// outcome: host-side measurements (wall-clock, MIPS) are excluded, so two
// runs of the same scenario — or a run and its cache hit — encode to
// byte-identical JSON.
type Summary struct {
	Model string `json:"model"`
	// Engine and Tier identify which engine answered and at what
	// fidelity (simrun's tier lattice). Both are absent on full-engine
	// results: an untagged payload is always a definitive answer, so
	// payloads written before tiers existed read back correctly.
	Engine       string        `json:"engine,omitempty"`
	Tier         string        `json:"tier,omitempty"`
	Cycles       int64         `json:"cycles"`
	Instructions uint64        `json:"instructions"`
	TimedOut     bool          `json:"timed_out,omitempty"`
	Interrupted  bool          `json:"interrupted,omitempty"`
	Cores        []CoreSummary `json:"cores"`
	Mem          *MemSummary   `json:"mem,omitempty"`
}

// CoreSummary is one core's outcome.
type CoreSummary struct {
	Core    int     `json:"core"`
	Retired uint64  `json:"retired"`
	Finish  int64   `json:"finish"`
	IPC     float64 `json:"ipc"`
}

// MemSummary reports the shared memory hierarchy; present only when the
// run kept its cores (simrun.KeepCores / Spec.Report).
type MemSummary struct {
	Cores         []MemCoreSummary `json:"cores"`
	L2            *L2Summary       `json:"l2,omitempty"`
	Fabric        FabricSummary    `json:"fabric"`
	DRAM          DRAMSummary      `json:"dram"`
	Coherence     CoherenceSummary `json:"coherence"`
	Prefetches    uint64           `json:"prefetches,omitempty"`
	PrefetchFills uint64           `json:"prefetch_fills,omitempty"`
}

// MemCoreSummary is one core's private-cache behaviour.
type MemCoreSummary struct {
	Core        int     `json:"core"`
	L1IMissRate float64 `json:"l1i_miss_rate"`
	L1DMissRate float64 `json:"l1d_miss_rate"`
}

// L2Summary is the shared L2's behaviour (absent in no-L2 configurations).
type L2Summary struct {
	MissRate float64 `json:"miss_rate"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
}

// FabricSummary is the on-chip interconnect's behaviour.
type FabricSummary struct {
	Transactions uint64  `json:"transactions"`
	StallCycles  int64   `json:"stall_cycles"`
	Utilization  float64 `json:"utilization"`
}

// DRAMSummary is the main memory's behaviour.
type DRAMSummary struct {
	Requests    uint64  `json:"requests"`
	StallCycles int64   `json:"stall_cycles"`
	Utilization float64 `json:"utilization"`
}

// CoherenceSummary is the protocol traffic.
type CoherenceSummary struct {
	Interventions uint64 `json:"interventions"`
	Upgrades      uint64 `json:"upgrades"`
	Invalidations uint64 `json:"invalidations"`
}

// Summarize extracts the machine-readable summary from a run result.
func Summarize(res multicore.Result) Summary {
	s := Summary{
		Model:        res.ModelLabel(),
		Cycles:       res.Cycles,
		Instructions: res.TotalRetired,
		TimedOut:     res.TimedOut,
		Interrupted:  res.Interrupted,
		Cores:        make([]CoreSummary, len(res.Cores)),
	}
	for i, c := range res.Cores {
		s.Cores[i] = CoreSummary{Core: i, Retired: c.Retired, Finish: c.Finish, IPC: c.IPC}
	}
	if res.Mem == nil {
		return s
	}
	h := res.Mem
	mem := &MemSummary{
		Cores:         make([]MemCoreSummary, len(res.Cores)),
		Prefetches:    h.Stats().Prefetches,
		PrefetchFills: h.Stats().PrefetchFills,
	}
	for i := range res.Cores {
		mem.Cores[i] = MemCoreSummary{
			Core:        i,
			L1IMissRate: h.L1I(i).MissRate(),
			L1DMissRate: h.L1D(i).MissRate(),
		}
	}
	if l2 := h.L2(); l2 != nil {
		mem.L2 = &L2Summary{MissRate: l2.MissRate(), Hits: l2.Hits, Misses: l2.Misses}
	}
	fab := h.Fabric()
	mem.Fabric = FabricSummary{
		Transactions: fab.TxCount(),
		StallCycles:  fab.StallCycles(),
		Utilization:  fab.Utilization(res.Cycles),
	}
	d := h.DRAM().Stats()
	mem.DRAM = DRAMSummary{
		Requests:    d.Requests,
		StallCycles: d.StallTotal,
		Utilization: h.DRAM().Utilization(res.Cycles),
	}
	coh := h.Coherence().Stats()
	mem.Coherence = CoherenceSummary{
		Interventions: coh.Interventions,
		Upgrades:      coh.Upgrades,
		Invalidations: coh.Invalidations,
	}
	s.Mem = mem
	return s
}

// JSON encodes the result summary as compact JSON with stable field names
// and deterministic content (see Summary).
func JSON(res multicore.Result) ([]byte, error) {
	return json.Marshal(Summarize(res))
}

// JSONTiered is JSON with the answering engine and fidelity tier tagged
// into the summary. Estimator-tier answers are encoded this way; full
// answers keep the untagged JSON form, so a payload's (absent) tier tag
// is also its upgrade-eligibility marker.
func JSONTiered(res multicore.Result, engine, tier string) ([]byte, error) {
	s := Summarize(res)
	s.Engine, s.Tier = engine, tier
	return json.Marshal(s)
}

// PayloadTier recovers the tier tag of an encoded summary: the tagged
// tier for estimator payloads, "" for untagged (definitive) ones. It is
// the simrun cache's DecodeTier hook, so a restarted service never
// serves a persisted estimate to a full-fidelity request.
func PayloadTier(payload []byte) string {
	var s struct {
		Tier string `json:"tier"`
	}
	if json.Unmarshal(payload, &s) != nil {
		return ""
	}
	return s.Tier
}
