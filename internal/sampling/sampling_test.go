package sampling

import (
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestInvalidRegimes(t *testing.T) {
	p := workload.SPECByName("gzip")
	src := workload.New(p, 0, 1, 42)
	for _, cfg := range []Config{
		{Unit: 0, Period: 100, Machine: config.Default(1)},
		{Unit: 100, Period: 50, Machine: config.Default(1)},
		{Unit: 100, Period: 1000, Machine: config.Default(2)},
	} {
		cfg.Model = multicore.Interval
		if _, err := Run(cfg, src, 1000); err == nil {
			t.Errorf("regime %+v accepted", cfg)
		}
	}
}

func TestSamplingRatio(t *testing.T) {
	p := workload.SPECByName("gzip")
	cfg := Config{Unit: 1_000, Period: 10_000, Model: multicore.Interval, Machine: config.Default(1)}
	res, err := Run(cfg, workload.New(p, 0, 1, 42), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Units < 15 || res.Units > 25 {
		t.Fatalf("units = %d, want ~20", res.Units)
	}
	if r := res.Ratio(); r < 0.05 || r > 0.15 {
		t.Fatalf("timed ratio = %.3f, want ~0.10", r)
	}
	if res.SampledIPC <= 0 {
		t.Fatal("no IPC estimate")
	}
}

// TestContiguousSamplingMatchesFull: with Unit == Period the harness times
// every instruction, so it must agree with the ordinary full run up to
// per-unit boundary effects (pipeline restart, trailing drain).
func TestContiguousSamplingMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := workload.SPECByName("gcc")
	m := config.Default(1)
	total := 200_000

	full := multicore.Run(multicore.RunConfig{
		Machine: m, Model: multicore.Interval,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), total)})

	res, err := Run(Config{Unit: 20_000, Period: 20_000,
		Model: multicore.Interval, Machine: m},
		workload.New(p, 0, 1, 42), total)
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.RelError(full.Cores[0].IPC, res.SampledIPC)
	t.Logf("full IPC=%.3f contiguous-sampled IPC=%.3f err=%.1f%%",
		full.Cores[0].IPC, res.SampledIPC, 100*e)
	// Boundary effects: each unit restarts the pipeline and pays its own
	// trailing miss drains.
	if e > 0.10 {
		t.Fatalf("contiguous sampling off by %.1f%%", 100*e)
	}
}

// TestSampledTracksFull: periodic sampling at 50%% coverage lands near the
// full run. The synthetic benchmarks have genuine program phases, so the
// tolerance reflects sampling variance, not harness error.
func TestSampledTracksFull(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := workload.SPECByName("mesa")
	m := config.Default(1)
	total := 400_000

	full := multicore.Run(multicore.RunConfig{
		Machine: m, Model: multicore.Interval,
	}, []trace.Stream{trace.NewLimit(workload.New(p, 0, 1, 42), total)})

	res, err := Run(Config{Unit: 10_000, Period: 20_000,
		Model: multicore.Interval, Machine: m},
		workload.New(p, 0, 1, 42), total)
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.RelError(full.Cores[0].IPC, res.SampledIPC)
	t.Logf("full IPC=%.3f sampled IPC=%.3f (%.0f%% timed) err=%.1f%%",
		full.Cores[0].IPC, res.SampledIPC, 100*res.Ratio(), 100*e)
	if e > 0.25 {
		t.Fatalf("sampled estimate off by %.1f%%", 100*e)
	}
}

// TestSamplingComposesWithBothModels: sampling works over either core
// model, demonstrating the orthogonality the paper claims.
func TestSamplingComposesWithBothModels(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := workload.SPECByName("mesa")
	m := config.Default(1)
	var ipcs []float64
	for _, model := range []multicore.Model{multicore.Detailed, multicore.Interval} {
		res, err := Run(Config{Unit: 2_000, Period: 10_000, Model: model, Machine: m},
			workload.New(p, 0, 1, 42), 200_000)
		if err != nil {
			t.Fatal(err)
		}
		ipcs = append(ipcs, res.SampledIPC)
	}
	if e := metrics.RelError(ipcs[0], ipcs[1]); e > 0.25 {
		t.Fatalf("sampled detailed vs interval diverge %.1f%%", 100*e)
	}
}

func TestStreamEndsEarly(t *testing.T) {
	p := workload.SPECByName("gzip")
	cfg := Config{Unit: 1_000, Period: 5_000, Model: multicore.Interval, Machine: config.Default(1)}
	// Ask for more instructions than the stream holds.
	res, err := Run(cfg, trace.NewLimit(workload.New(p, 0, 1, 42), 12_000), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInsts > 12_000 {
		t.Fatalf("consumed %d from a 12k stream", res.TotalInsts)
	}
}
