package fleet_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simrun"
)

// encode is the canonical payload encoding used throughout these tests:
// identical scenarios produce byte-identical payloads, the property that
// makes at-least-once dispatch safe.
func encode(res simrun.Result) ([]byte, error) { return report.JSON(res.Result) }

func newCache(t *testing.T) *simrun.Cache {
	t.Helper()
	c, err := simrun.NewCache(simrun.CacheOpts{Encode: encode})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testSpec is the job every test dispatches: small enough to simulate in
// milliseconds, real enough to exercise the full engine path.
var testSpec = simrun.Spec{Bench: "gcc", Insts: 2000}

// refPayload runs the test spec locally on a fresh cache — the
// byte-identity reference every delivered payload must match.
func refPayload(t *testing.T) []byte {
	t.Helper()
	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	entry, err := newCache(t).GetOrRun(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return entry.Payload
}

// cluster is a coordinator plus its control-plane server.
type cluster struct {
	coord *fleet.Coordinator
	reg   *obs.Registry
	srv   *httptest.Server
}

func newCluster(t *testing.T, cfg fleet.Config) *cluster {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = newCache(t)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Registry = reg
	}
	if cfg.Retry.Base == 0 {
		// Fast, bounded backoff so failure-path tests stay quick.
		cfg.Retry = fleet.Backoff{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond}
	}
	coord, err := fleet.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &cluster{coord: coord, reg: reg, srv: srv}
}

// metrics renders the cluster's registry; tests grep it for counters.
func (c *cluster) metrics(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	obs.WriteAll(&buf, c.reg)
	return buf.String()
}

// metricValue extracts one un-labeled counter/gauge value from the text
// exposition ("" when absent).
func metricValue(text, name string) string {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	return ""
}

func wantMetric(t *testing.T, c *cluster, name, want string) {
	t.Helper()
	if got := metricValue(c.metrics(t), name); got != want {
		t.Errorf("%s = %q, want %q", name, got, want)
	}
}

// node is one fleet worker: its handler server and control loop.
type node struct {
	w      *fleet.Worker
	faults *fleet.FaultInjector
	srv    *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}
}

// startWorker boots a worker against the cluster and waits until its
// registration landed.
func startWorker(t *testing.T, c *cluster, id string, faults *fleet.FaultInjector) *node {
	t.Helper()
	var w *fleet.Worker
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:          id,
		SelfURL:     srv.URL,
		Coordinator: c.srv.URL,
		Cache:       newCache(t),
		Faults:      faults,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &node{w: w, faults: faults, srv: srv, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(n.done)
		if err := w.Start(ctx); err != nil {
			t.Errorf("worker %s: %v", id, err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-n.done
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, got := range c.coord.WorkerIDs() {
			if got == id {
				return n
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never registered", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// collect returns a dispatch-event recorder and its snapshot accessor.
func collect() (func(fleet.Dispatch), func() []fleet.Dispatch) {
	var mu sync.Mutex
	var events []fleet.Dispatch
	record := func(d fleet.Dispatch) {
		mu.Lock()
		events = append(events, d)
		mu.Unlock()
	}
	snapshot := func() []fleet.Dispatch {
		mu.Lock()
		defer mu.Unlock()
		return append([]fleet.Dispatch(nil), events...)
	}
	return record, snapshot
}

// TestChaosKillMidJob is the headline chaos drill: a three-worker fleet,
// the worker the job shards onto dies mid-run (connection severed, no
// further heartbeats), and the job must complete on another worker with
// a payload byte-identical to a local run. FLEET_CHAOS=N repeats the
// drill N times (fresh fleet each round) for soak runs.
func TestChaosKillMidJob(t *testing.T) {
	rounds := 1
	if v := os.Getenv("FLEET_CHAOS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FLEET_CHAOS wants a round count >= 1, got %q", v)
		}
		rounds = n
	}
	ref := refPayload(t)
	for round := 0; round < rounds; round++ {
		c := newCluster(t, fleet.Config{LeaseTTL: 500 * time.Millisecond})
		nodes := map[string]*node{}
		for _, id := range []string{"w1", "w2", "w3"} {
			nodes[id] = startWorker(t, c, id, &fleet.FaultInjector{})
		}

		sc, err := testSpec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		key, err := sc.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		target := c.coord.AssignedWorker(key)
		if target == "" {
			t.Fatal("no worker assigned with three registered")
		}
		nodes[target].faults.KillAtRun(1)

		record, snapshot := collect()
		entry, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, OnDispatch: record})
		if err != nil {
			t.Fatalf("round %d: run: %v", round, err)
		}
		if !bytes.Equal(entry.Payload, ref) {
			t.Fatalf("round %d: payload after worker kill differs from local reference", round)
		}
		if entry.Source == simrun.CacheSource("worker:"+target) {
			t.Fatalf("round %d: job completed on the killed worker %s", round, target)
		}
		if !strings.HasPrefix(string(entry.Source), "worker:") {
			t.Fatalf("round %d: entry source %q, want a worker completion", round, entry.Source)
		}
		if !nodes[target].w.Dead() {
			t.Fatalf("round %d: injector did not kill %s", round, target)
		}

		events := snapshot()
		if len(events) < 2 {
			t.Fatalf("round %d: want at least dispatch+reassign events, got %v", round, events)
		}
		if events[0].Worker != target || events[0].Event != "dispatch" || events[0].Attempt != 1 {
			t.Errorf("round %d: first event = %+v, want dispatch attempt 1 on %s", round, events[0], target)
		}
		last := events[len(events)-1]
		if last.Event != "reassign" || last.Worker == target || last.Worker == "local" {
			t.Errorf("round %d: final event = %+v, want a reassign onto a surviving worker", round, last)
		}
		wantMetric(t, c, "fleet_reassignments_total", "1")
		wantMetric(t, c, "fleet_completions_total", "1")
		wantMetric(t, c, "fleet_local_runs_total", "0")
	}
}

// TestLeaseExpiryAbandonsSilentWorker: the only worker stops
// heartbeating and sits on the result far longer than the lease TTL. The
// coordinator must abandon the dispatch when the lease lapses — well
// before the worker's delay — and degrade to a local run.
func TestLeaseExpiryAbandonsSilentWorker(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: 300 * time.Millisecond})
	faults := &fleet.FaultInjector{}
	faults.DropHeartbeats(-1)
	faults.DelayResults(10 * time.Second)
	startWorker(t, c, "silent", faults)

	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	record, snapshot := collect()
	start := time.Now()
	entry, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, OnDispatch: record})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v: the lease did not cut the delayed dispatch short", elapsed)
	}
	if entry.Source != simrun.SourceRun {
		t.Fatalf("entry source = %q, want local %q after the only worker lapsed", entry.Source, simrun.SourceRun)
	}
	if !bytes.Equal(entry.Payload, refPayload(t)) {
		t.Fatal("degraded local payload differs from reference")
	}
	events := snapshot()
	if len(events) != 2 || events[0].Event != "dispatch" || events[1].Event != "local" {
		t.Fatalf("events = %+v, want [dispatch local]", events)
	}
	wantMetric(t, c, "fleet_lease_expiries_total", "1")
	wantMetric(t, c, "fleet_local_runs_total", "1")
	if got := c.coord.Workers(); got != 0 {
		t.Errorf("workers after lease expiry = %d, want 0 (forgotten)", got)
	}
}

// TestZeroWorkersDegradesToLocal: an empty fleet serves jobs through the
// coordinator's own engine registry, and the answer is byte-identical to
// a plain local run.
func TestZeroWorkersDegradesToLocal(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: 200 * time.Millisecond})
	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	record, snapshot := collect()
	entry, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, OnDispatch: record})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if entry.Source != simrun.SourceRun {
		t.Fatalf("entry source = %q, want %q", entry.Source, simrun.SourceRun)
	}
	if !bytes.Equal(entry.Payload, refPayload(t)) {
		t.Fatal("zero-worker payload differs from local reference")
	}
	events := snapshot()
	if len(events) != 1 || events[0].Worker != "local" || events[0].Event != "local" {
		t.Fatalf("events = %+v, want one local dispatch", events)
	}
	wantMetric(t, c, "fleet_local_runs_total", "1")
	wantMetric(t, c, "fleet_dispatches_total", "0")
}

// TestCorruptDeliveryRetries: the worker's first delivery is corrupted
// in flight (checksum header describes the true payload). The
// coordinator must detect the damage, refuse the payload, and retry to a
// clean completion.
func TestCorruptDeliveryRetries(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: 500 * time.Millisecond})
	faults := &fleet.FaultInjector{}
	faults.CorruptAtRun(1)
	startWorker(t, c, "flipper", faults)

	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	record, snapshot := collect()
	entry, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, OnDispatch: record})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if entry.Source != simrun.CacheSource("worker:flipper") {
		t.Fatalf("entry source = %q, want the retried worker completion", entry.Source)
	}
	if !bytes.Equal(entry.Payload, refPayload(t)) {
		t.Fatal("payload after corrupt-delivery retry differs from reference")
	}
	events := snapshot()
	if len(events) != 2 || events[0].Event != "dispatch" || events[1].Event != "retry" {
		t.Fatalf("events = %+v, want [dispatch retry]", events)
	}
	wantMetric(t, c, "fleet_corrupt_results_total", "1")
	wantMetric(t, c, "fleet_retries_total", "1")
	wantMetric(t, c, "fleet_completions_total", "1")
}

// TestDuplicateCompletionDedupes: a re-run of an already-completed job
// is served from the coordinator's cache — no second dispatch — and the
// bytes are identical: at-least-once dispatch can land the same result
// any number of times without conflict.
func TestDuplicateCompletionDedupes(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: 500 * time.Millisecond})
	startWorker(t, c, "only", &fleet.FaultInjector{})

	sc, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	record, snapshot := collect()
	second, err := c.coord.Run(context.Background(), sc, fleet.RunOpts{Spec: testSpec, OnDispatch: record})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if second.Source != simrun.SourceMemory {
		t.Fatalf("second source = %q, want cache hit", second.Source)
	}
	if !bytes.Equal(first.Payload, second.Payload) {
		t.Fatal("duplicate completion returned different bytes")
	}
	if events := snapshot(); len(events) != 0 {
		t.Fatalf("second run dispatched: %+v", events)
	}
	wantMetric(t, c, "fleet_dispatches_total", "1")
}

// TestWorkerLifecycle walks the control plane: register, heartbeat,
// survive a coordinator that forgot the worker (heartbeat 404 →
// re-register), and deregister on clean shutdown.
func TestWorkerLifecycle(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: 300 * time.Millisecond})
	n := startWorker(t, c, "w", &fleet.FaultInjector{})
	if got := c.coord.Workers(); got != 1 {
		t.Fatalf("workers = %d, want 1", got)
	}

	// Simulate a coordinator restart: the worker vanishes from the pool,
	// its next heartbeat 404s, and it must re-register on its own.
	resp, err := http.Post(c.srv.URL+fleet.PathDeregister, "application/json", strings.NewReader(`{"id":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.coord.Workers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never re-registered after the coordinator forgot it")
		}
		time.Sleep(10 * time.Millisecond)
	}

	n.cancel()
	<-n.done
	if got := c.coord.Workers(); got != 0 {
		t.Fatalf("workers after clean shutdown = %d, want 0 (deregistered)", got)
	}
}

// TestRendezvousSharding: assignment is deterministic per key and
// spreads distinct keys across the fleet.
func TestRendezvousSharding(t *testing.T) {
	c := newCluster(t, fleet.Config{LeaseTTL: time.Hour})
	for _, id := range []string{"a", "b", "c"} {
		resp, err := http.Post(c.srv.URL+fleet.PathRegister, "application/json",
			strings.NewReader(`{"id":"`+id+`","url":"http://unused"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		key := "key-" + strconv.Itoa(i)
		first := c.coord.AssignedWorker(key)
		if first == "" {
			t.Fatalf("key %s unassigned", key)
		}
		if again := c.coord.AssignedWorker(key); again != first {
			t.Fatalf("key %s: assignment flapped %s -> %s", key, first, again)
		}
		seen[first] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 keys all sharded onto one worker: %v", seen)
	}
}
