package workload

import (
	"math"
	"testing"
)

// refGeometric is the v2 inverse-transform reference: the tabulated
// samplers must stay distribution-faithful to it even though individual
// draws differ. It mirrors the removed geometric() exactly (including
// the hard cap).
func refGeometric(u float64, mean float64) int {
	if mean <= 1 {
		return 0
	}
	if u <= 0 {
		return 0
	}
	n := int(math.Log(u) / math.Log(1-1/mean))
	if n < 0 {
		n = 0
	} else if n > 10000 {
		n = 10000
	}
	return n
}

// sampleBoth draws n variates from the alias sampler and n from the
// math.Log reference at fixed seeds and returns bucketed counts
// (buckets 0..nBuckets-2 are exact values, the last bucket is the tail).
func sampleBoth(mean float64, k, rounds, n, nBuckets int) (alias, ref []int, aliasMean, refMean float64) {
	alias = make([]int, nBuckets)
	ref = make([]int, nBuckets)
	a := newAliasGeom(mean, k, rounds)
	ar := newFastRand(12345)
	rr := newFastRand(67890)
	for i := 0; i < n; i++ {
		x := a.sample(ar)
		aliasMean += float64(x)
		if x >= nBuckets-1 {
			x = nBuckets - 1
		}
		alias[x]++

		y := refGeometric(rr.Float64(), mean)
		refMean += float64(y)
		if y >= nBuckets-1 {
			y = nBuckets - 1
		}
		ref[y]++
	}
	aliasMean /= float64(n)
	refMean /= float64(n)
	return
}

// TestAliasGeomMatchesClosedForm: chi-square of the alias sampler's
// bucket counts against the closed-form geometric pmf. The bound is the
// 99.9th percentile of the chi-square distribution for the bucket count,
// so a correct sampler fails with probability ~1e-3 per mean — and the
// seeds are fixed, so the test is deterministic.
func TestAliasGeomMatchesClosedForm(t *testing.T) {
	const n = 1_000_000
	for _, tc := range []struct {
		mean    float64
		k       int
		rounds  int
		buckets int
		chi2Max float64 // ~99.9th pct of chi2 with buckets-1 dof
	}{
		{mean: 3.5, k: 64, rounds: 1, buckets: 16, chi2Max: 37.7},
		{mean: 12, k: 64, rounds: 1, buckets: 32, chi2Max: 61.1},
		{mean: 30, k: 256, rounds: 8, buckets: 32, chi2Max: 61.1},
		{mean: 400, k: 4096, rounds: 8, buckets: 24, chi2Max: 49.7},
	} {
		a := newAliasGeom(tc.mean, tc.k, tc.rounds)
		rng := newFastRand(99)
		counts := make([]int, tc.buckets)
		for i := 0; i < n; i++ {
			x := a.sample(rng)
			if x >= tc.buckets-1 {
				x = tc.buckets - 1
			}
			counts[x]++
		}
		q := 1 - 1/tc.mean
		// Closed-form pmf per bucket; last bucket is the tail mass.
		var chi2, cum float64
		for b := 0; b < tc.buckets; b++ {
			var pb float64
			if b < tc.buckets-1 {
				pb = math.Pow(q, float64(b)) * (1 - q)
				cum += pb
			} else {
				pb = 1 - cum
			}
			exp := pb * n
			if exp < 5 {
				continue // chi-square invalid for tiny expectations
			}
			d := float64(counts[b]) - exp
			chi2 += d * d / exp
		}
		if chi2 > tc.chi2Max {
			t.Errorf("mean=%v: chi2=%.1f exceeds %.1f — alias table deviates from the closed-form geometric",
				tc.mean, chi2, tc.chi2Max)
		}
	}
}

// TestAliasGeomMatchesLogReference: mean and tail mass of the alias
// sampler against the v2 math.Log inverse-transform reference at fixed
// seeds. Bytes differ (that is the point of v3); the distributions must
// not.
func TestAliasGeomMatchesLogReference(t *testing.T) {
	const n = 500_000
	for _, tc := range []struct {
		mean   float64
		k      int
		rounds int
	}{
		{mean: 2.2, k: 64, rounds: 1},
		{mean: 8, k: 64, rounds: 8},
		{mean: 45, k: 512, rounds: 8},
		{mean: 400, k: 4096, rounds: 8},
	} {
		nb := 32
		alias, ref, am, rm := sampleBoth(tc.mean, tc.k, tc.rounds, n, nb)
		// Means: geometric with success 1/mean has mean (mean-1); with
		// n=500k samples the standard error of the sample mean is about
		// mean/sqrt(n), so 5 standard errors is a deterministic-safe
		// band for the fixed seeds.
		tol := 5 * tc.mean / math.Sqrt(n)
		if math.Abs(am-rm) > tol {
			t.Errorf("mean=%v: alias sample mean %.4f vs log reference %.4f (tol %.4f)", tc.mean, am, rm, tol)
		}
		// Tail mass at the last bucket must agree within 5 sigma of the
		// binomial deviation.
		pa := float64(alias[nb-1]) / n
		pr := float64(ref[nb-1]) / n
		sigma := math.Sqrt(pr*(1-pr)/n) + 1e-9
		if math.Abs(pa-pr) > 5*sigma+1e-4 {
			t.Errorf("mean=%v: tail mass %.5f vs reference %.5f", tc.mean, pa, pr)
		}
	}
}

// TestAliasGeomEdgeCases: nil sampler (mean<=1) returns 0, matching the
// v2 geometric(); truncation is bounded by rounds*(k-1).
func TestAliasGeomEdgeCases(t *testing.T) {
	var nilSampler *aliasGeom
	if got := nilSampler.sample(newFastRand(1)); got != 0 {
		t.Errorf("nil sampler returned %d", got)
	}
	if s := newAliasGeom(1.0, 64, 8); s != nil {
		t.Error("mean=1 built a sampler")
	}
	if s := newAliasGeom(0.5, 64, 8); s != nil {
		t.Error("mean<1 built a sampler")
	}
	a := newAliasGeom(1e9, 64, 2) // pathological mean: everything is tail
	rng := newFastRand(7)
	maxVal := a.rounds * int(a.mask)
	for i := 0; i < 10_000; i++ {
		if v := a.sample(rng); v > maxVal {
			t.Fatalf("sample %d exceeds truncation bound %d", v, maxVal)
		}
	}
}

// TestProbCut: the integer thresholds preserve probabilities to 2^-32.
func TestProbCut(t *testing.T) {
	if probCut(0) != 0 || probCut(-1) != 0 {
		t.Error("non-positive probability must never fire")
	}
	if probCut(1) != math.MaxUint64 || probCut(2) != math.MaxUint64 {
		t.Error("certain probability must always fire")
	}
	const n = 1_000_000
	for _, p := range []float64{0.01, 0.3, 0.5, 0.85} {
		cut := probCut(p)
		rng := newFastRand(31337)
		hits := 0
		for i := 0; i < n; i++ {
			if rng.next() < cut {
				hits++
			}
		}
		got := float64(hits) / n
		if sigma := math.Sqrt(p * (1 - p) / n); math.Abs(got-p) > 5*sigma {
			t.Errorf("probCut(%v): hit rate %.5f", p, got)
		}
	}
}
