// Package prof wires the -cpuprofile/-memprofile CLI flags: one shared
// implementation of start/flush so every binary behaves identically and
// profiles survive error and interrupt exit paths.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling when cpu is non-empty and returns a flush
// function that stops the CPU profile and, when mem is non-empty, writes a
// heap profile. Flush is idempotent, so callers can both defer it (normal
// return) and invoke it from explicit exit paths (errors, SIGINT).
func Start(cpu, mem string) (flush func(), err error) {
	var f *os.File
	if cpu != "" {
		f, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if f != nil {
				pprof.StopCPUProfile()
				f.Close()
			}
			if mem == "" {
				return
			}
			mf, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		})
	}, nil
}
