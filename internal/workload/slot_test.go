package workload

import (
	"testing"

	"repro/internal/isa"
)

// shiftSlot applies the slot-k address transform to a slot-0 instruction:
// the constant offset on every address-carrying field, nothing else.
func shiftSlot(in isa.Inst, slot int) isa.Inst {
	off := uint64(slot) * SlotStride
	in.PC += off
	if in.Class.IsMem() {
		in.Addr += off
	}
	if in.Target != 0 {
		in.Target += off
	}
	return in
}

// TestSlotZeroIsNew: New is exactly NewSlot at slot 0 — the v2 format
// changes nothing for single-program streams.
func TestSlotZeroIsNew(t *testing.T) {
	p := SPECByName("gcc")
	a := New(p, 0, 1, 42)
	b := NewSlot(p, 0, 1, 42, 0)
	for i := 0; i < 20_000; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb || ia != ib {
			t.Fatalf("inst %d: slot-0 stream differs from New: %+v vs %+v", i, ia, ib)
		}
	}
}

// TestSlotStreamsBitIdentical: the slot-k stream is the slot-0 stream
// with k*SlotStride added to PC, Target and Addr — the slot never enters
// a random draw, so the two streams are bit-identical modulo the
// constant offset. This is the v2 format's core guarantee: moving a copy
// between slots cannot change its simulated behaviour.
func TestSlotStreamsBitIdentical(t *testing.T) {
	// gcc covers serializing user code; blackscholes covers the kernel
	// (SystemFrac) program and sync instructions.
	for _, name := range []string{"gcc", "mcf"} {
		p := SPECByName(name)
		base := New(p, 0, 1, 42)
		at := NewSlot(p, 0, 1, 42, 5)
		for i := 0; i < 20_000; i++ {
			ib, okb := base.Next()
			is, oks := at.Next()
			if okb != oks {
				t.Fatalf("%s inst %d: streams end at different points", name, i)
			}
			if want := shiftSlot(ib, 5); is != want {
				t.Fatalf("%s inst %d: slot stream diverged beyond the offset:\ngot  %+v\nwant %+v", name, i, is, want)
			}
		}
	}
	p := PARSECByName("blackscholes")
	base := New(p, 1, 4, 42)
	at := NewSlot(p, 1, 4, 42, 3)
	for i := 0; i < 20_000; i++ {
		ib, okb := base.Next()
		is, oks := at.Next()
		if okb != oks {
			t.Fatalf("blackscholes inst %d: streams end at different points (base=%t slot=%t)", i, okb, oks)
		}
		if !okb {
			break
		}
		if want := shiftSlot(ib, 3); is != want {
			t.Fatalf("blackscholes inst %d: slot stream diverged beyond the offset:\ngot  %+v\nwant %+v", i, is, want)
		}
	}
}

// TestSlotOutOfRangePanics: slots at or beyond MaxSlots would wrap the
// 64-bit address space and silently alias another slot, so the
// constructor must refuse them.
func TestSlotOutOfRangePanics(t *testing.T) {
	for _, slot := range []int{-1, MaxSlots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slot %d accepted, want panic", slot)
				}
			}()
			NewSlot(SPECByName("gcc"), 0, 1, 42, slot)
		}()
	}
}

// TestSlotAddressSpacesDisjoint: two different programs in two different
// slots must never touch the same cache line — code or data — which is
// what removes the phantom coherence traffic from Mix workloads and lets
// the host-parallel engine run them.
func TestSlotAddressSpacesDisjoint(t *testing.T) {
	lines := func(name string, slot int) map[uint64]bool {
		g := NewSlot(SPECByName(name), 0, 1, 42+int64(slot), slot)
		out := map[uint64]bool{}
		for i := 0; i < 50_000; i++ {
			in, ok := g.Next()
			if !ok {
				break
			}
			out[in.PC>>6] = true
			if in.Class.IsMem() {
				out[in.Addr>>6] = true
			}
		}
		return out
	}
	a := lines("gcc", 0)
	b := lines("mcf", 1)
	for line := range b {
		if a[line] {
			t.Fatalf("slots 0 and 1 share cache line %#x", line<<6)
		}
	}
}
