package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func insts(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{Seq: uint64(i), Class: isa.IntALU}
	}
	return out
}

func TestSliceStreamReplaysInOrder(t *testing.T) {
	s := NewSliceStream(insts(5))
	for i := 0; i < 5; i++ {
		in, ok := s.Next()
		if !ok || in.Seq != uint64(i) {
			t.Fatalf("pos %d: (%v,%t)", i, in.Seq, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	s.Reset()
	if in, ok := s.Next(); !ok || in.Seq != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimitEndsEarly(t *testing.T) {
	s := NewLimit(NewSliceStream(insts(10)), 3)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("limit yielded %d, want 3", n)
	}
}

func TestLimitShorterSource(t *testing.T) {
	s := NewLimit(NewSliceStream(insts(2)), 5)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("limit yielded %d, want 2 (source shorter)", n)
	}
}

func TestRecord(t *testing.T) {
	got := Record(NewSliceStream(insts(10)), 4)
	if len(got) != 4 || got[3].Seq != 3 {
		t.Fatalf("record = %d insts", len(got))
	}
	got = Record(NewSliceStream(insts(2)), 4)
	if len(got) != 2 {
		t.Fatalf("record past end = %d insts", len(got))
	}
}

func TestStats(t *testing.T) {
	var st Stats
	items := []isa.Inst{
		{Class: isa.Load}, {Class: isa.Store}, {Class: isa.Branch},
		{Class: isa.Call}, {Class: isa.IntALU}, {Class: isa.IntALU},
	}
	for i := range items {
		st.Observe(&items[i])
	}
	if st.Total != 6 || st.Memory != 2 || st.Branches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.Frac(isa.IntALU); got != 2.0/6 {
		t.Fatalf("Frac = %v", got)
	}
	var empty Stats
	if empty.Frac(isa.Load) != 0 {
		t.Fatal("Frac on empty stats nonzero")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	src := []isa.Inst{
		{Seq: 0, PC: 0x400000, Class: isa.IntALU, Src1: 3, Src2: isa.RegNone, Dst: 9},
		{Seq: 1, PC: 0x400004, Class: isa.Load, Addr: 0x123456789A, Src1: 9, Src2: isa.RegNone, Dst: 10},
		{Seq: 2, PC: 0x400008, Class: isa.Branch, Taken: true, Target: 0x400100},
		{Seq: 3, PC: 0x40000C, Class: isa.LockAcquire, SyncID: 7},
	}
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceStream(src), 10, Header{StreamVersion: 3, Slot: 3})
	if err != nil || n != 4 {
		t.Fatalf("WriteTrace = (%d,%v)", n, err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.StreamVersion != 3 || h.Slot != 3 {
		t.Fatalf("header did not round-trip: %+v", h)
	}
	for i, want := range src {
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v want %+v (ok=%t)", i, got, want, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("trace did not end")
	}
	if r.Err() != nil {
		t.Fatalf("terminal error: %v", r.Err())
	}
}

func TestTraceBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Stale traces must be rejected with an error that tells the user to
// re-record: the file version only moves on a deliberate stream-format
// break. Covers both a v1-era trace (old 8-byte header, no provenance
// fields) and a v2 trace (recorded before the v3 counter-RNG break),
// asserting the message names the versions and the recovery path.
func TestTraceStaleVersionRejected(t *testing.T) {
	for _, stale := range []uint32{1, 2} {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], 0x49564c53)
		binary.LittleEndian.PutUint32(hdr[4:], stale)
		_, err := NewReader(bytes.NewReader(hdr[:]))
		if err == nil {
			t.Fatalf("v%d trace accepted", stale)
		}
		msg := err.Error()
		if !strings.Contains(msg, "re-record") {
			t.Fatalf("stale-version error does not say how to recover: %v", err)
		}
		if !strings.Contains(msg, fmt.Sprintf("version %d", stale)) || !strings.Contains(msg, "v3") {
			t.Fatalf("stale-version error does not name the versions: %v", err)
		}
	}
}

func TestTraceLimitsWrites(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceStream(insts(100)), 7, Header{})
	if err != nil || n != 7 {
		t.Fatalf("WriteTrace = (%d,%v), want 7", n, err)
	}
}

// Property: encode/decode round-trips arbitrary instruction records.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(seq, pc, addr, target uint64, class, s1, s2, d uint8, taken bool, id uint16) bool {
		in := isa.Inst{
			Seq: seq, PC: pc, Class: isa.Class(class % uint8(isa.NumClasses)),
			Src1: s1, Src2: s2, Dst: d, Addr: addr, Taken: taken,
			Target: target, SyncID: id,
		}
		var buf bytes.Buffer
		if n, err := WriteTrace(&buf, NewSliceStream([]isa.Inst{in}), 1, Header{}); n != 1 || err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, ok := r.Next()
		return ok && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
