package workload

// PARSEC-like multi-threaded full-system profiles. Each profile fixes a
// total work budget that is divided among the run's threads (one thread per
// core, as in the paper), so good parallel structure shows up as shorter
// execution time with more cores. Synchronization structure (barriers,
// locks, imbalance), sharing and the system-code fraction are chosen to
// match the benchmarks' published characterizations qualitatively.

// parsecBase fills the control-flow defaults shared by the PARSEC-like
// profiles. All run "full-system": a nonzero SystemFrac adds kernel-code
// segments rich in serializing instructions and cold I-cache footprint.
func parsecBase(p Profile) Profile {
	if p.Funcs == 0 {
		p.Funcs = 32
	}
	if p.BlocksPerFunc == 0 {
		p.BlocksPerFunc = 24
	}
	if p.LoopTripMean == 0 {
		p.LoopTripMean = 24
	}
	if p.BiasedProb == 0 {
		p.BiasedProb = 0.93
	}
	if p.RandomProb == 0 {
		p.RandomProb = 0.5
	}
	if p.SystemFrac == 0 {
		p.SystemFrac = 0.08
	}
	if p.SerializeEvery == 0 {
		p.SerializeEvery = 20000
	}
	if p.TotalWork == 0 {
		p.TotalWork = 800_000
	}
	if p.ChainFrac == 0 {
		p.ChainFrac = 0.05
	}
	return p
}

// PARSEC returns the 9 PARSEC-like profiles used in Figures 7, 8 and 10.
func PARSEC() []Profile {
	ps := []Profile{
		{
			// Embarrassingly parallel option pricing: scales nearly
			// linearly, tiny working set, barriers only.
			Name: "blackscholes", Mix: fpMix(0.05), DepDistMean: 5,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.96}, {Bytes: wsL2, Prob: 0.03}, {Bytes: wsL2, Prob: 0.01, Shared: true, WriteFrac: 0.05}},
			LoopFrac: 0.7, BiasedFrac: 0.25,
			BarrierEvery: 100_000,
		},
		{
			// Computer-vision pipeline: scales well, moderate locks.
			Name: "bodytrack", Mix: Mix{IntALU: 0.34, IntMul: 0.02, FP: 0.22, Load: 0.26, Store: 0.08, Branch: 0.08, Call: 0.06},
			DepDistMean: 4,
			Regions:     []Region{{Bytes: wsL1, Prob: 0.93}, {Bytes: wsL2, Prob: 0.05}, {Bytes: wsL2, Prob: 0.02, Shared: true, WriteFrac: 0.2}},
			LoopFrac:    0.5, BiasedFrac: 0.35,
			BarrierEvery: 50_000, Locks: 16, LockEvery: 4000, CritLen: 12,
		},
		{
			// Simulated annealing over a huge netlist: cache-hungry,
			// heavy sharing with writes — coherence traffic.
			Name: "canneal", Mix: intMix(0.10), DepDistMean: 3,
			Regions:      []Region{{Bytes: wsL1, Prob: 0.72}, {Bytes: wsHuge, Prob: 0.18}, {Bytes: wsBig, Prob: 0.10, Shared: true, WriteFrac: 0.3}},
			PointerChase: 0.4,
			LoopFrac:     0.4, BiasedFrac: 0.35,
			BarrierEvery: 200_000, Locks: 64, LockEvery: 8000, CritLen: 6,
		},
		{
			// Pipelined deduplication: locks around hash tables,
			// moderate scaling.
			Name: "dedup", Mix: intMix(0.11), DepDistMean: 4,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.91}, {Bytes: wsBig, Prob: 0.05, Stride: 8}, {Bytes: wsL2, Prob: 0.04, Shared: true, WriteFrac: 0.25}},
			LoopFrac: 0.5, BiasedFrac: 0.44, BiasedProb: 0.96, RandomProb: 0.4,
			Locks: 32, LockEvery: 3000, CritLen: 20, BarrierEvery: 150_000,
			SerialFrac: 0.18,
		},
		{
			// Fine-grained lock-per-cell fluid dynamics: very frequent
			// small critical sections — the paper's worst case (11%).
			Name: "fluidanimate", Mix: fpMix(0.05), DepDistMean: 4,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.92}, {Bytes: wsL2, Prob: 0.05}, {Bytes: wsL2, Prob: 0.03, Shared: true, WriteFrac: 0.35}},
			LoopFrac: 0.6, BiasedFrac: 0.3,
			Locks: 256, LockEvery: 600, CritLen: 6, BarrierEvery: 60_000,
		},
		{
			// Streaming k-means clustering: bandwidth-bound with
			// frequent barriers; scales until the bus saturates.
			Name: "streamcluster", Mix: fpMix(0.03), DepDistMean: 6,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.70}, {Bytes: wsHuge, Prob: 0.25, Stride: 8}, {Bytes: wsL2, Prob: 0.05, Shared: true, WriteFrac: 0.1}},
			LoopFrac: 0.8, BiasedFrac: 0.15, LoopTripMean: 64,
			BarrierEvery: 25_000,
		},
		{
			// Monte-Carlo swaption pricing: fully parallel compute,
			// negligible communication — near-linear scaling.
			Name: "swaptions", Mix: fpMix(0.04), DepDistMean: 6,
			Regions:  []Region{{Bytes: wsL1, Prob: 0.97}, {Bytes: wsL2, Prob: 0.03}},
			LoopFrac: 0.7, BiasedFrac: 0.25, LoopTripMean: 40,
			BarrierEvery: 400_000,
		},
		{
			// Image pipeline with severe load imbalance: the paper
			// highlights that performance does not improve with cores.
			Name: "vips", Mix: Mix{IntALU: 0.38, IntMul: 0.03, FP: 0.14, Load: 0.26, Store: 0.09, Branch: 0.10, Call: 0.07},
			DepDistMean: 4,
			Regions:     []Region{{Bytes: wsL1, Prob: 0.90}, {Bytes: wsBig, Prob: 0.08, Stride: 8}, {Bytes: wsL2, Prob: 0.02, Shared: true, WriteFrac: 0.15}},
			LoopFrac:    0.55, BiasedFrac: 0.35,
			BarrierEvery: 20_000, SerialFrac: 0.45,
			Locks: 8, LockEvery: 6000, CritLen: 30,
		},
		{
			// Video encoding: pipeline parallelism, moderate scaling,
			// some sharing between worker threads.
			Name: "x264", Mix: Mix{IntALU: 0.42, IntMul: 0.04, FP: 0.06, Load: 0.27, Store: 0.10, Branch: 0.09, Call: 0.05},
			DepDistMean: 4.5,
			Regions:     []Region{{Bytes: wsL1, Prob: 0.93}, {Bytes: wsBig, Prob: 0.04, Stride: 8}, {Bytes: wsL2, Prob: 0.03, Shared: true, WriteFrac: 0.2}},
			LoopFrac:    0.55, BiasedFrac: 0.42, BiasedProb: 0.96, RandomProb: 0.4,
			BarrierEvery: 80_000, SerialFrac: 0.25,
			Locks: 16, LockEvery: 5000, CritLen: 15,
		},
	}
	for i := range ps {
		ps[i] = parsecBase(ps[i])
	}
	return ps
}

// PARSECByName returns the named profile, or nil.
func PARSECByName(name string) *Profile {
	for _, p := range PARSEC() {
		if p.Name == name {
			q := p
			return &q
		}
	}
	return nil
}
