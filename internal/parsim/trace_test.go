package parsim_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/parsim"
)

// TestTracingPreservesIdentity is the acceptance contract for
// observability: with a tracer and heartbeat attached, the parallel
// engine's report.JSON must remain byte-identical to the sequential
// driver's at every GOMAXPROCS level. Tracing measures host wall-clock
// only — it must never perturb simulated state.
func TestTracingPreservesIdentity(t *testing.T) {
	const insts, warm = 6_000, 20_000
	cfg := multicore.RunConfig{
		Machine:     config.Default(4),
		Model:       multicore.Interval,
		WarmupInsts: warm,
		KeepCores:   true,
	}
	s, w := mixStreams(4, insts)
	cfgSeq := cfg
	cfgSeq.Warmup = w
	want := seqJSON(t, cfgSeq, s)

	for _, procs := range gomaxprocsLevels() {
		prev := runtime.GOMAXPROCS(procs)
		s, w := mixStreams(4, insts)
		cfgPar := cfg
		cfgPar.Warmup = w
		cfgPar.Trace = obs.NewTracer(0)
		cfgPar.Heartbeat = &obs.Heartbeat{Emit: func(obs.Progress) {}}
		got := parJSON(t, cfgPar, parsim.Config{}, s)
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(want, got) {
			t.Fatalf("GOMAXPROCS=%d: traced parallel report differs from sequential:\n%s\n--\n%s",
				procs, want, got)
		}
	}
}

// TestTracingEmitsEpochSpans: a traced parallel run records warmup,
// measure and per-core epoch spans with the step/barrier/gate split.
func TestTracingEmitsEpochSpans(t *testing.T) {
	const insts, warm = 6_000, 20_000
	tr := obs.NewTracer(0)
	cfg := multicore.RunConfig{
		Machine:     config.Default(4),
		Model:       multicore.Interval,
		WarmupInsts: warm,
		Trace:       tr,
	}
	s, w := mixStreams(4, insts)
	cfg.Warmup = w
	var stats parsim.Stats
	if _, ok := parsim.Run(cfg, parsim.Config{Quantum: 512, Stats: &stats}, s); !ok {
		t.Fatal("parallel run aborted unexpectedly")
	}
	if stats.EpochBarriers == 0 {
		t.Fatal("no epoch barriers counted on a multi-epoch run")
	}

	var warmups, measures, epochs int
	coresSeen := map[int]bool{}
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "warmup":
			warmups++
		case "measure":
			measures++
		case "epoch":
			epochs++
			coresSeen[sp.TID] = true
			if _, ok := sp.Args["barrier_ns"]; !ok {
				t.Fatalf("epoch span missing barrier_ns: %+v", sp)
			}
			if _, ok := sp.Args["gate_ns"]; !ok {
				t.Fatalf("epoch span missing gate_ns: %+v", sp)
			}
		}
	}
	if warmups != 1 || measures != 1 {
		t.Fatalf("want 1 warmup + 1 measure span, got %d + %d", warmups, measures)
	}
	if epochs < 4 || len(coresSeen) != 4 {
		t.Fatalf("want epoch spans from all 4 cores, got %d spans over %d cores", epochs, len(coresSeen))
	}
}
