package memory

import (
	"testing"
	"testing/quick"
)

func TestUncontendedLatency(t *testing.T) {
	d := NewDRAM(150, 64, 16)
	// 64B line over a 16B bus = 4 transfer cycles.
	if got := d.Access(0); got != 154 {
		t.Fatalf("uncontended access = %d, want 154", got)
	}
	if d.Latency() != 154 {
		t.Fatalf("Latency() = %d, want 154", d.Latency())
	}
	if d.TransferCycles() != 4 {
		t.Fatalf("transfer = %d, want 4", d.TransferCycles())
	}
}

func TestBackToBackQueueing(t *testing.T) {
	d := NewDRAM(150, 64, 16)
	d.Access(0) // occupies the bus until t=4
	if got := d.Access(0); got != 4+4+150 {
		t.Fatalf("second same-cycle access = %d, want 158 (4 queue + 4 transfer + 150)", got)
	}
	if d.StallTotal != 4 {
		t.Fatalf("StallTotal = %d, want 4", d.StallTotal)
	}
}

func TestNoQueueingWhenSpaced(t *testing.T) {
	d := NewDRAM(150, 64, 16)
	d.Access(0)
	if got := d.Access(100); got != 154 {
		t.Fatalf("spaced access = %d, want 154", got)
	}
	if d.StallTotal != 0 {
		t.Fatalf("StallTotal = %d, want 0", d.StallTotal)
	}
}

func TestWideBusShortTransfer(t *testing.T) {
	// The 3D-stacked configuration: 128-byte bus moves a line in 1 cycle.
	d := NewDRAM(125, 64, 128)
	if got := d.Access(0); got != 126 {
		t.Fatalf("3D access = %d, want 126", got)
	}
}

func TestPeakBandwidthBound(t *testing.T) {
	// Saturating the bus: N back-to-back requests take N*transfer cycles
	// of bus time, so the last one's latency grows linearly.
	d := NewDRAM(150, 64, 16)
	n := int64(100)
	var last int64
	for i := int64(0); i < n; i++ {
		last = d.Access(0)
	}
	want := (n-1)*4 + 4 + 150
	if last != want {
		t.Fatalf("latency under saturation = %d, want %d", last, want)
	}
	if d.BusyTotal != n*4 {
		t.Fatalf("BusyTotal = %d, want %d", d.BusyTotal, n*4)
	}
}

func TestUtilization(t *testing.T) {
	d := NewDRAM(150, 64, 16)
	d.Access(0)
	if u := d.Utilization(8); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := d.Utilization(0); u != 0 {
		t.Fatalf("utilization at t=0 = %v, want 0", u)
	}
}

func TestReset(t *testing.T) {
	d := NewDRAM(150, 64, 16)
	d.Access(0)
	d.Reset()
	if d.Requests != 0 || d.StallTotal != 0 || d.BusyTotal != 0 {
		t.Fatal("Reset left statistics")
	}
	if got := d.Access(0); got != 154 {
		t.Fatalf("access after reset = %d, want 154 (bus should be free)", got)
	}
}

// Property: latency is always at least the uncontended latency, and
// monotone queueing never loses bus time (busy time equals requests x
// transfer).
func TestQuickLatencyBounds(t *testing.T) {
	f := func(gaps []uint8) bool {
		d := NewDRAM(150, 64, 16)
		now := int64(0)
		for _, g := range gaps {
			now += int64(g)
			lat := d.Access(now)
			if lat < 154 {
				return false
			}
		}
		return d.BusyTotal == int64(len(gaps))*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumOneTransferCycle(t *testing.T) {
	// A bus wider than the line still takes one cycle.
	d := NewDRAM(10, 64, 256)
	if d.TransferCycles() != 1 {
		t.Fatalf("transfer = %d, want 1", d.TransferCycles())
	}
}
