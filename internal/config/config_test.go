package config

import (
	"testing"

	"repro/internal/isa"
)

func TestDefaultMatchesTable1(t *testing.T) {
	m := Default(4)
	if m.Cores != 4 {
		t.Fatalf("cores = %d", m.Cores)
	}
	c := m.Core
	if c.ROBSize != 256 || c.IssueQueueSize != 128 || c.LSQSize != 128 || c.StoreBufferSize != 64 {
		t.Error("window structures deviate from Table 1")
	}
	if c.DecodeWidth != 4 || c.IssueWidth != 6 || c.FetchWidth != 8 {
		t.Error("widths deviate from Table 1")
	}
	if c.IntALUs != 4 || c.LoadStoreFUs != 4 || c.FPUnits != 4 {
		t.Error("functional units deviate from Table 1")
	}
	if c.FetchQueue != 16 || c.FrontendDepth != 7 {
		t.Error("front end deviates from Table 1")
	}
	if c.LatLoad != 2 || c.LatMul != 3 || c.LatFP != 4 || c.LatDiv != 20 {
		t.Error("latencies deviate from Table 1")
	}
	b := m.Branch
	if b.LocalHistoryEntries*b.LocalHistoryBits != 12*1024 {
		t.Errorf("local predictor %d bits, want 12Kbit",
			b.LocalHistoryEntries*b.LocalHistoryBits)
	}
	if b.BTBEntries != 2048 || b.BTBAssoc != 8 || b.RASEntries != 32 {
		t.Error("BTB/RAS deviate from Table 1")
	}
	mem := m.Mem
	if mem.L1I.SizeBytes != 32<<10 || mem.L1I.Assoc != 4 || mem.L1I.LineSize != 64 {
		t.Error("L1I deviates from Table 1")
	}
	if mem.L2.SizeBytes != 4<<20 || mem.L2.Assoc != 8 || mem.L2.Latency != 12 {
		t.Error("L2 deviates from Table 1")
	}
	if mem.DRAMLatency != 150 || mem.BusBytes != 16 {
		t.Error("memory deviates from Table 1")
	}
	if !mem.HasL2 {
		t.Error("baseline must have an L2")
	}
}

func TestStacked3D(t *testing.T) {
	m := Stacked3D(4)
	if m.Mem.HasL2 {
		t.Error("3D config has an L2")
	}
	if m.Mem.DRAMLatency != 125 || m.Mem.BusBytes != 128 {
		t.Error("3D DRAM parameters wrong")
	}
	if m.Cores != 4 {
		t.Error("core count not propagated")
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeBytes: 32 << 10, Assoc: 4, LineSize: 64}
	if c.Sets() != 128 {
		t.Fatalf("sets = %d, want 128", c.Sets())
	}
}

func TestExecLatency(t *testing.T) {
	c := Default(1).Core
	cases := map[isa.Class]int{
		isa.IntALU: 1, isa.IntMul: 3, isa.IntDiv: 20, isa.FPOp: 4,
		isa.Load: 2, isa.Store: 1, isa.Branch: 1, isa.Serializing: 1,
	}
	for class, want := range cases {
		if got := c.ExecLatency(class); got != want {
			t.Errorf("ExecLatency(%v) = %d, want %d", class, got, want)
		}
	}
}
