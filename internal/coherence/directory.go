package coherence

import (
	"fmt"
	"math/bits"
)

// dirEntry is the directory's record for one line: either a single owner
// holding the line Exclusive/Modified, or a set of Shared copies.
type dirEntry struct {
	// owner is the core holding the line M or E, or -1.
	owner int
	// ownerDirty distinguishes Modified (true) from Exclusive.
	ownerDirty bool
	// sharers is a bitmap of cores holding Shared copies (meaningful
	// only when owner < 0).
	sharers uint64
}

// Directory is a MESI directory protocol: a home node tracks, per line,
// either a single exclusive owner or a sharer bitmap, and forwards or
// invalidates copies point-to-point instead of broadcasting on a snoop
// bus. It is the scalable coherence alternative for mesh/ring fabrics;
// comparing it with snooping MOESI is a system-level trade-off of exactly
// the kind the paper positions interval simulation for.
//
// The protocol is four-state (MESI): a dirty line read by another core is
// written back below and both copies become Shared, matching the snooping
// MESI variant so that the two implementations are observationally
// equivalent transaction by transaction (a property the tests check).
type Directory struct {
	cores int
	lines map[uint64]*dirEntry

	// Statistics.
	ReadMisses      uint64
	WriteMisses     uint64
	Upgrades        uint64
	Interventions   uint64
	InvalidationsTx uint64
}

// NewDirectory creates a MESI directory for the given core count (at most
// 64, the sharer-bitmap width).
func NewDirectory(cores int) *Directory {
	if cores < 1 || cores > 64 {
		panic(fmt.Sprintf("coherence: directory supports 1..64 cores, got %d", cores))
	}
	return &Directory{cores: cores, lines: make(map[uint64]*dirEntry)}
}

// Cores returns the number of cores the directory was built for.
func (d *Directory) Cores() int { return d.cores }

func (d *Directory) entry(lineAddr uint64) *dirEntry {
	e, ok := d.lines[lineAddr]
	if !ok {
		e = &dirEntry{owner: -1}
		d.lines[lineAddr] = e
	}
	return e
}

func (d *Directory) gc(lineAddr uint64, e *dirEntry) {
	if e.owner < 0 && e.sharers == 0 {
		delete(d.lines, lineAddr)
	}
}

// State implements Engine.
func (d *Directory) State(core int, lineAddr uint64) State {
	e, ok := d.lines[lineAddr]
	if !ok {
		return Invalid
	}
	if e.owner == core {
		if e.ownerDirty {
			return Modified
		}
		return Exclusive
	}
	if e.owner < 0 && e.sharers&(1<<uint(core)) != 0 {
		return Shared
	}
	return Invalid
}

// Read implements Engine.
func (d *Directory) Read(core int, lineAddr uint64) Result {
	e := d.entry(lineAddr)
	bit := uint64(1) << uint(core)
	switch {
	case e.owner == core:
		st := Exclusive
		if e.ownerDirty {
			st = Modified
		}
		return Result{Source: SrcOwn, NewState: st}
	case e.owner < 0 && e.sharers&bit != 0:
		return Result{Source: SrcOwn, NewState: Shared}
	}
	d.ReadMisses++
	if e.owner >= 0 {
		// Forward from the owner; the owner downgrades to Shared. A
		// dirty owner writes back below (MESI has no Owned state).
		wb := e.ownerDirty
		e.sharers = (uint64(1) << uint(e.owner)) | bit
		e.owner = -1
		e.ownerDirty = false
		d.Interventions++
		return Result{Source: SrcRemote, NewState: Shared, WritebackBelow: wb}
	}
	if e.sharers != 0 {
		e.sharers |= bit
		return Result{Source: SrcBelow, NewState: Shared}
	}
	e.owner = core
	return Result{Source: SrcBelow, NewState: Exclusive}
}

// Write implements Engine.
func (d *Directory) Write(core int, lineAddr uint64) Result {
	e := d.entry(lineAddr)
	bit := uint64(1) << uint(core)
	if e.owner == core {
		e.ownerDirty = true
		return Result{Source: SrcOwn, NewState: Modified}
	}
	if e.owner < 0 && e.sharers&bit != 0 {
		// Upgrade: invalidate the other sharers point-to-point.
		d.Upgrades++
		res := Result{Source: SrcOwn, NewState: Modified}
		others := e.sharers &^ bit
		res.Invalidations = bits.OnesCount64(others)
		d.InvalidationsTx += uint64(res.Invalidations)
		e.sharers = 0
		e.owner = core
		e.ownerDirty = true
		return res
	}
	// Write miss from Invalid.
	d.WriteMisses++
	res := Result{Source: SrcBelow, NewState: Modified}
	if e.owner >= 0 {
		res.Source = SrcRemote
		res.Invalidations = 1
		d.Interventions++
		d.InvalidationsTx++
	} else if e.sharers != 0 {
		res.Invalidations = bits.OnesCount64(e.sharers)
		d.InvalidationsTx += uint64(res.Invalidations)
	}
	e.sharers = 0
	e.owner = core
	e.ownerDirty = true
	return res
}

// Evict implements Engine.
func (d *Directory) Evict(core int, lineAddr uint64) (writeback bool) {
	e, ok := d.lines[lineAddr]
	if !ok {
		return false
	}
	if e.owner == core {
		writeback = e.ownerDirty
		e.owner = -1
		e.ownerDirty = false
	} else {
		e.sharers &^= uint64(1) << uint(core)
	}
	d.gc(lineAddr, e)
	return writeback
}

// Holders implements Engine.
func (d *Directory) Holders(lineAddr uint64) int {
	e, ok := d.lines[lineAddr]
	if !ok {
		return 0
	}
	if e.owner >= 0 {
		return 1
	}
	return bits.OnesCount64(e.sharers)
}

// CheckInvariants implements Engine: an owner never coexists with sharers,
// and owner/sharer indices stay within the core count.
func (d *Directory) CheckInvariants() string {
	for addr, e := range d.lines {
		if e.owner >= d.cores {
			return fmt.Sprintf("line %#x: owner %d out of range", addr, e.owner)
		}
		if e.owner >= 0 && e.sharers != 0 {
			return fmt.Sprintf("line %#x: owner %d coexists with sharers %#x", addr, e.owner, e.sharers)
		}
		if e.sharers>>uint(d.cores) != 0 {
			return fmt.Sprintf("line %#x: sharer bitmap %#x exceeds %d cores", addr, e.sharers, d.cores)
		}
	}
	return ""
}

// Stats implements Engine.
func (d *Directory) Stats() Traffic {
	return Traffic{
		ReadMisses:    d.ReadMisses,
		WriteMisses:   d.WriteMisses,
		Upgrades:      d.Upgrades,
		Interventions: d.Interventions,
		Invalidations: d.InvalidationsTx,
	}
}

// Reset drops all directory state and statistics.
func (d *Directory) Reset() {
	d.lines = make(map[uint64]*dirEntry)
	d.ResetStats()
}

// ResetStats implements Engine.
func (d *Directory) ResetStats() {
	d.ReadMisses, d.WriteMisses, d.Upgrades = 0, 0, 0
	d.Interventions, d.InvalidationsTx = 0, 0
}

var _ Engine = (*Directory)(nil)
