// Package core implements interval simulation, the paper's primary
// contribution: a mechanistic analytical core model that replaces
// cycle-accurate out-of-order core simulation inside a multi-core
// simulator.
//
// Execution is modeled as the smooth streaming of instructions through the
// pipeline at an effective dispatch rate, punctuated by miss events —
// I-cache/I-TLB misses, branch mispredictions, long-latency loads
// (last-level or coherence misses and D-TLB misses) and serializing
// instructions — that each charge an analytically derived penalty
// (Section 2 of the paper). Miss events come from the same branch predictor
// and memory hierarchy simulators that drive the detailed baseline; only
// the core-level timing model is replaced.
//
// Two structures implement the model (Figure 2): a *window* of in-flight
// instructions, sized like the ROB, used to find miss events hidden
// underneath long-latency loads (second-order overlap effects); and an
// *old window* of recently retired instructions whose dataflow gives the
// critical path length, from which the branch resolution time, the window
// drain time and the effective dispatch rate are derived (the paper's "old
// window approach").
package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// OldWindow tracks the dataflow of the most recently dispatched
// instructions. Each inserted instruction records a completion time equal
// to the maximum completion time of its producers plus its own execution
// latency. The window maintains a head time (completion of the oldest
// evicted instruction) and a tail time (latest completion); their
// difference approximates the critical path length through the window
// without walking it (Section 3.2).
// The window maintains two dataflow tracks. The *pure* track computes
// issue = max(producer completions) + latency and feeds the critical-path
// estimate behind the effective dispatch rate (Little's law needs the
// resource-unconstrained dataflow height). The *floored* track additionally
// lower-bounds each issue time by the instruction's dispatch time, so a
// producer dispatched long before its consumer is modeled as already
// executed — this is what makes the branch resolution time mean "time
// between the mispredicted branch dispatching and resolving", as the paper
// defines it, rather than the full dataflow depth since the last miss
// event.
type OldWindow struct {
	cfg      config.Core
	issues   []int64 // ring buffer of issue times (pure track)
	head     int
	n        int
	headTime int64
	tailTime int64
	regReady [isa.NumRegs]int64

	// Floored track.
	floorReady [isa.NumRegs]int64
	tailFloor  int64
}

// NewOldWindow creates an old window with the ROB's capacity.
func NewOldWindow(cfg config.Core) *OldWindow {
	return &OldWindow{
		cfg:    cfg,
		issues: make([]int64, cfg.ROBSize),
	}
}

// Len returns the number of instructions currently tracked.
func (w *OldWindow) Len() int { return w.n }

// Insert records the retirement of in. loadLatency is the observed
// execution latency for loads (L1-hit latency plus any non-long-latency
// miss component, per the paper: "execution latency including the L1
// D-cache miss latency"); it is ignored for other classes. dispTime is the
// instruction's dispatch time relative to the last window flush.
func (w *OldWindow) Insert(in *isa.Inst, loadLatency, dispTime int64) {
	lat := int64(w.cfg.ExecLatency(in.Class))
	if in.Class == isa.Load && loadLatency > 0 {
		lat = loadLatency
	}

	// Pure dataflow track.
	issue := int64(0)
	if in.Src1 != isa.RegNone && w.regReady[in.Src1] > issue {
		issue = w.regReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && w.regReady[in.Src2] > issue {
		issue = w.regReady[in.Src2]
	}
	complete := issue + lat

	// Floored track: an instruction cannot issue before it dispatches.
	fIssue := dispTime
	if in.Src1 != isa.RegNone && w.floorReady[in.Src1] > fIssue {
		fIssue = w.floorReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && w.floorReady[in.Src2] > fIssue {
		fIssue = w.floorReady[in.Src2]
	}
	fComplete := fIssue + lat

	if in.HasDst() {
		w.regReady[in.Dst] = complete
		w.floorReady[in.Dst] = fComplete
	}
	// Head and tail times track ISSUE times (Section 3.2): "the new tail
	// time is computed as the maximum of the previous tail time and the
	// issue time of the newly inserted instruction; similarly, the new
	// head time is the maximum of the previous head time and the issue
	// time of the removed instruction."
	if issue > w.tailTime {
		w.tailTime = issue
	}
	if fComplete > w.tailFloor {
		w.tailFloor = fComplete
	}
	if w.n == len(w.issues) {
		old := w.issues[w.head]
		if old > w.headTime {
			w.headTime = old
		}
		w.head = (w.head + 1) % len(w.issues)
		w.n--
	}
	w.issues[(w.head+w.n)%len(w.issues)] = issue
	w.n++
}

// CriticalPath approximates the critical path length in cycles through the
// tracked instructions: tail time minus head time, at least one cycle.
func (w *OldWindow) CriticalPath() int64 {
	cp := w.tailTime - w.headTime
	if cp < 1 {
		return 1
	}
	return cp
}

// DispatchRate returns the effective dispatch rate in instructions per
// cycle: by Little's law the maximum execution rate is the window size
// divided by the critical path length, capped at the designed dispatch
// width (Section 3.2).
func (w *OldWindow) DispatchRate() float64 {
	width := float64(w.cfg.DecodeWidth)
	if w.n == 0 {
		return width
	}
	rate := float64(len(w.issues)) / float64(w.CriticalPath())
	if rate > width {
		return width
	}
	return rate
}

// BranchResolution returns the branch resolution time for a mispredicted
// branch dispatching at dispTime (relative to the last window flush): the
// remaining length of the dependence chain leading to the branch — the time
// between the branch dispatching and being resolved.
func (w *OldWindow) BranchResolution(br *isa.Inst, dispTime int64) int64 {
	issue := dispTime
	if br.Src1 != isa.RegNone && w.floorReady[br.Src1] > issue {
		issue = w.floorReady[br.Src1]
	}
	if br.Src2 != isa.RegNone && w.floorReady[br.Src2] > issue {
		issue = w.floorReady[br.Src2]
	}
	res := issue + int64(w.cfg.ExecLatency(br.Class)) - dispTime
	if res < 1 {
		return 1
	}
	return res
}

// BranchResolutionPure returns the branch resolution time computed on the
// pure dataflow track: the full dependence-chain depth to the branch since
// the last miss event, without the dispatch-time floor. This is the
// NoDispatchFloor ablation — the estimate prior interval-analysis work
// derives from an offline profile.
func (w *OldWindow) BranchResolutionPure(br *isa.Inst) int64 {
	issue := int64(0)
	if br.Src1 != isa.RegNone && w.regReady[br.Src1] > issue {
		issue = w.regReady[br.Src1]
	}
	if br.Src2 != isa.RegNone && w.regReady[br.Src2] > issue {
		issue = w.regReady[br.Src2]
	}
	res := issue + int64(w.cfg.ExecLatency(br.Class)) - w.headTime
	if res < 1 {
		return 1
	}
	return res
}

// DrainTime returns the window drain time charged to a serializing
// instruction dispatching at dispTime: the time for all in-flight work to
// complete, at least the occupancy divided by the dispatch width.
func (w *OldWindow) DrainTime(dispTime int64) int64 {
	if w.n == 0 {
		return 1
	}
	byWidth := int64((w.n + w.cfg.DecodeWidth - 1) / w.cfg.DecodeWidth)
	rem := w.tailFloor - dispTime
	if rem > byWidth {
		return rem
	}
	return byWidth
}

// Shift re-bases the window's relative time by elapsed cycles: every
// tracked issue/completion time moves elapsed cycles into the past
// (clamping at zero = already executed). Called at miss events instead of
// a full flush: the penalty's elapsed time ages the in-flight dataflow, so
// chains fully covered by the penalty vanish (the paper's interval-length
// effect on resolution and drain times) while genuinely longer chains —
// loop-carried recurrences — survive the event, as they do in the machine.
func (w *OldWindow) Shift(elapsed int64) {
	if elapsed <= 0 {
		return
	}
	sub := func(v int64) int64 {
		if v <= elapsed {
			return 0
		}
		return v - elapsed
	}
	for i := range w.regReady {
		w.regReady[i] = sub(w.regReady[i])
		w.floorReady[i] = sub(w.floorReady[i])
	}
	for k := 0; k < w.n; k++ {
		idx := (w.head + k) % len(w.issues)
		w.issues[idx] = sub(w.issues[idx])
	}
	w.headTime = sub(w.headTime)
	w.tailTime = sub(w.tailTime)
	w.tailFloor = sub(w.tailFloor)
}

// Empty flushes the window. The paper empties the old window on every miss
// event so that the branch resolution time and drain time correlate with
// the *interval length* — a short interval implies a short chain to the
// next mispredicted branch (the "interval length effect").
func (w *OldWindow) Empty() {
	w.head, w.n = 0, 0
	w.headTime, w.tailTime = 0, 0
	w.tailFloor = 0
	for i := range w.regReady {
		w.regReady[i] = 0
		w.floorReady[i] = 0
	}
}
