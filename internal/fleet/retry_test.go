package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"
)

func TestBackoffDelayDeterministicCappedJittered(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second}
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := b.Delay("job-a", attempt)
		d2 := b.Delay("job-a", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		// Jitter scales the exponential delay by [0.5, 1.5); the hard
		// ceiling is therefore 1.5x the cap.
		if d1 >= 3*time.Second {
			t.Fatalf("attempt %d: delay %v above the jittered cap", attempt, d1)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d1)
		}
	}
	if b.Delay("job-a", 1) == b.Delay("job-b", 1) {
		t.Error("distinct keys produced identical jitter — retries would thunder in lockstep")
	}
	// Late attempts saturate at the cap (before jitter): two far-out
	// attempts differ only by jitter, staying within [0.5, 1.5) of Cap.
	for _, attempt := range []int{9, 10} {
		d := b.Delay("job-a", attempt)
		if d < time.Second || d >= 3*time.Second {
			t.Errorf("attempt %d: delay %v escaped the cap window", attempt, d)
		}
	}
}

func TestRetryStopsOnPermanentAndBudget(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Attempts: 3}

	calls := 0
	err := b.Retry(context.Background(), "k", func() (bool, error) {
		calls++
		return false, errors.New("permanent")
	})
	if err == nil || calls != 1 {
		t.Fatalf("permanent failure: err=%v calls=%d, want 1 call", err, calls)
	}

	calls = 0
	err = b.Retry(context.Background(), "k", func() (bool, error) {
		calls++
		return true, fmt.Errorf("transient %d", calls)
	})
	if err == nil || calls != 3 {
		t.Fatalf("budget: err=%v calls=%d, want 3 calls", err, calls)
	}

	calls = 0
	if err := b.Retry(context.Background(), "k", func() (bool, error) {
		calls++
		if calls < 2 {
			return true, errors.New("transient")
		}
		return false, nil
	}); err != nil || calls != 2 {
		t.Fatalf("eventual success: err=%v calls=%d", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Backoff{Base: time.Minute}.Retry(ctx, "k", func() (bool, error) {
		return true, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTransientClassification(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		io.EOF,
		io.ErrUnexpectedEOF,
		fmt.Errorf("wrapped: %w", syscall.ECONNREFUSED),
	}
	for _, err := range transient {
		if !TransientErr(err) {
			t.Errorf("TransientErr(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		context.Canceled,
		context.DeadlineExceeded,
		errors.New("bad spec"),
	}
	for _, err := range permanent {
		if TransientErr(err) {
			t.Errorf("TransientErr(%v) = true, want false", err)
		}
	}

	for _, status := range []int{500, 502, 503, 429} {
		if !TransientStatus(status) {
			t.Errorf("TransientStatus(%d) = false, want true", status)
		}
	}
	for _, status := range []int{200, 202, 400, 404} {
		if TransientStatus(status) {
			t.Errorf("TransientStatus(%d) = true, want false", status)
		}
	}
}

func TestFaultInjectorSchedules(t *testing.T) {
	var nilInjector *FaultInjector
	if nilInjector.dropBeat() {
		t.Error("nil injector dropped a heartbeat")
	}
	if kill, corrupt, delay := nilInjector.onRun(); kill || corrupt || delay != 0 {
		t.Error("nil injector injected a fault")
	}

	f := &FaultInjector{}
	f.DropHeartbeats(2)
	drops := 0
	for i := 0; i < 5; i++ {
		if f.dropBeat() {
			drops++
		}
	}
	if drops != 2 || f.BeatsDropped() != 2 {
		t.Errorf("dropped %d beats (counter %d), want exactly 2", drops, f.BeatsDropped())
	}

	f = &FaultInjector{}
	f.DropHeartbeats(-1)
	for i := 0; i < 3; i++ {
		if !f.dropBeat() {
			t.Fatal("drop-all injector let a heartbeat through")
		}
	}

	f = &FaultInjector{}
	f.KillAtRun(2)
	f.CorruptAtRun(3)
	type hit struct{ kill, corrupt bool }
	var got []hit
	for i := 0; i < 3; i++ {
		k, c, _ := f.onRun()
		got = append(got, hit{k, c})
	}
	want := []hit{{false, false}, {true, false}, {false, true}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("run %d: faults %+v, want %+v", i+1, got[i], want[i])
		}
	}
}

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("")
	if f != nil || err != nil {
		t.Fatalf("empty spec: (%v, %v), want (nil, nil)", f, err)
	}

	f, err = ParseFaults("kill-run=2,corrupt-run=1,drop-heartbeats=3,delay-result=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if f.killAtRun != 2 || f.corruptRun != 1 || f.dropBeats != 3 || f.delay != 250*time.Millisecond {
		t.Errorf("parsed injector %+v mismatches the spec", f)
	}

	f, err = ParseFaults("drop-heartbeats=all")
	if err != nil || f.dropBeats != -1 {
		t.Fatalf("drop-heartbeats=all: (%+v, %v)", f, err)
	}

	for _, bad := range []string{
		"kill-run",           // no value
		"kill-run=0",         // ordinal below 1
		"corrupt-run=x",      // not a number
		"drop-heartbeats=-2", // negative count
		"delay-result=later", // not a duration
		"explode-on-tuesday=1" /* unknown term */} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted a bad spec", bad)
		}
	}
}
