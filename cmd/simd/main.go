// Command simd serves interval simulation as a service: submit declarative
// scenario specs over HTTP, poll (or stream) job status, and let the
// content-addressed result cache turn repeated design-space queries into
// cache hits.
//
//	simd -addr :8080 -j 4 -queue-depth 64 -cache-dir /var/cache/simd
//
//	curl -s localhost:8080/v1/catalog
//	curl -s -X POST localhost:8080/v1/jobs -d '{"bench":"gcc","fabric":"mesh"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -N  localhost:8080/v1/jobs/<id>/events
//
// With -tiered, fresh queries are answered in well under a second from
// the statistical engine (a synthetic clone of the profiled workload)
// while the full interval run proceeds in the background; the job
// document, SSE stream and cache entry are upgraded in place when it
// lands, and every answer reports the tier that produced it.
//
// # Fleet mode
//
// One simd can fan jobs out to others (see docs/fleet.md):
//
//	simd -addr :8080 -coordinator                 # the front end
//	simd -addr :8081 -worker http://co:8080       # each worker node
//
// The coordinator shards jobs across registered workers by scenario
// fingerprint, holds time-bounded leases renewed by worker heartbeats,
// retries transient failures with backoff, reassigns jobs whose worker
// went quiet, and — with zero workers — degrades to running jobs
// locally. Workers register on start, heartbeat at the advertised
// interval, and deregister on clean shutdown. -chaos arms deterministic
// fault injection on a worker (kill mid-run, drop heartbeats, corrupt or
// delay deliveries) for resilience drills.
//
// SIGINT/SIGTERM stops accepting work, drains queued and in-flight jobs
// (up to -drain-timeout) and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	// Register the estimator engines ("statistical", "simpoint") so
	// tiered serving has cheap tiers to answer from and specs may pin
	// them explicitly.
	_ "repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/simd"
	"repro/internal/simrun"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		jobs    = flag.Int("j", 0, "host worker goroutines (0 = all host cores)")
		depth   = flag.Int("queue-depth", 64, "bounded job-queue depth")
		dir     = flag.String("cache-dir", "", "persist result payloads under this directory (empty = memory only)")
		entries = flag.Int("cache-entries", 256, "in-memory result-cache capacity")
		tiered  = flag.Bool("tiered", false, "answer from the cheapest fidelity tier immediately and upgrade in the background")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued and in-flight jobs")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		jobTr   = flag.Bool("job-trace", true, "record per-job lifecycle spans served at /v1/jobs/{id}/trace")

		coordOn     = flag.Bool("coordinator", false, "dispatch jobs to fleet workers (with local fallback when none are registered)")
		leaseTTL    = flag.Duration("lease-ttl", 5*time.Second, "coordinator: how long worker leases survive without a heartbeat")
		scrapeEvery = flag.Duration("scrape-every", 5*time.Second, "coordinator: how often to scrape each worker's /metrics into /fleet/v1/metrics")
		workerURL   = flag.String("worker", "", "run as a fleet worker for the coordinator at this base URL (replaces the job API)")
		advertise   = flag.String("advertise", "", "worker: base URL the coordinator dials this worker at (default http://127.0.0.1<addr>)")
		workerID    = flag.String("worker-id", "", "worker: identity in the fleet (default <hostname>-<pid>)")
		beatEvery   = flag.Duration("heartbeat", 0, "worker: heartbeat interval (0 = accept the coordinator's advertisement)")
		chaos       = flag.String("chaos", "", "worker: arm deterministic fault injection, e.g. kill-run=2,drop-heartbeats=all,corrupt-run=1,delay-result=50ms")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file, flushed when the SIGTERM drain completes")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file, flushed when the SIGTERM drain completes")
	)
	flag.Parse()
	switch {
	case *coordOn && *workerURL != "":
		fmt.Fprintln(os.Stderr, "simd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	case *coordOn && *tiered:
		fmt.Fprintln(os.Stderr, "simd: -tiered is a single-node serving feature; it cannot combine with -coordinator")
		os.Exit(2)
	case *chaos != "" && *workerURL == "":
		fmt.Fprintln(os.Stderr, "simd: -chaos only applies to -worker mode")
		os.Exit(2)
	}
	flush, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer flush()

	cache, err := simrun.NewCache(simrun.CacheOpts{
		Entries:    *entries,
		Dir:        *dir,
		Encode:     simd.Encode,
		DecodeTier: simd.DecodeTier,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerURL != "" {
		os.Exit(runWorker(ctx, workerOpts{
			addr:      *addr,
			coord:     *workerURL,
			advertise: *advertise,
			id:        *workerID,
			beat:      *beatEvery,
			chaos:     *chaos,
			cache:     cache,
			flush:     flush,
		}))
	}

	var coord *fleet.Coordinator
	if *coordOn {
		coord, err = fleet.NewCoordinator(fleet.Config{Cache: cache, LeaseTTL: *leaseTTL, ScrapeEvery: *scrapeEvery})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// The federation scraper runs for the serving lifetime; the
		// signal context that stops intake stops it too.
		go coord.ScrapeLoop(ctx)
	}
	server, err := simd.New(simd.Config{Workers: *jobs, QueueDepth: *depth, Cache: cache, TieredServing: *tiered, Pprof: *pprofOn, DisableJobTraces: !*jobTr, Fleet: coord})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	handler := server.Handler()
	if coord != nil {
		// The fleet control plane rides the same listener as the job API:
		// workers register against the address clients submit to.
		mux := http.NewServeMux()
		coord.Mount(mux)
		mux.Handle("/", handler)
		handler = mux
	}

	httpServer := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	fmt.Printf("simd: listening on %s (workers=%d queue=%d cache=%d entries", *addr, *jobs, *depth, *entries)
	if *dir != "" {
		fmt.Printf(", dir=%s", *dir)
	}
	if coord != nil {
		fmt.Printf(", coordinator lease-ttl=%s", *leaseTTL)
	}
	fmt.Println(")")

	select {
	case err := <-errc:
		// The listener failed before any signal: a bad -addr or a
		// port conflict.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("simd: draining…")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := server.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "simd: drain incomplete: %v\n", drainErr)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "simd: shutdown: %v\n", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	// Flush profiles now that the drain is over: the profile covers the
	// serving lifetime and survives the non-zero exit below, which would
	// skip the deferred flush.
	flush()
	fmt.Println("simd: bye")
	if drainErr != nil {
		os.Exit(1)
	}
}

// workerOpts carries the worker-mode configuration.
type workerOpts struct {
	addr      string
	coord     string
	advertise string
	id        string
	beat      time.Duration
	chaos     string
	cache     *simrun.Cache
	flush     func()
}

// runWorker serves the fleet data plane and runs the registration +
// heartbeat loop until the signal context cancels, then deregisters and
// shuts the listener down. Returns the process exit code.
func runWorker(ctx context.Context, o workerOpts) int {
	faults, err := fleet.ParseFaults(o.chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	id := o.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	self := o.advertise
	if self == "" {
		// A bare ":8081" listen address dials back on loopback; anything
		// with a host is advertised as-is.
		if len(o.addr) > 0 && o.addr[0] == ':' {
			self = "http://127.0.0.1" + o.addr
		} else {
			self = "http://" + o.addr
		}
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:             id,
		SelfURL:        self,
		Coordinator:    o.coord,
		Cache:          o.cache,
		Faults:         faults,
		HeartbeatEvery: o.beat,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	httpServer := &http.Server{Addr: o.addr, Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	loop := make(chan error, 1)
	go func() { loop <- w.Start(ctx) }()
	fmt.Printf("simd: worker %s on %s (coordinator=%s advertise=%s", id, o.addr, o.coord, self)
	if o.chaos != "" {
		fmt.Printf(", chaos=%s", o.chaos)
	}
	fmt.Println(")")

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}
	if err := <-loop; err != nil {
		fmt.Fprintf(os.Stderr, "simd: worker loop: %v\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "simd: worker shutdown: %v\n", err)
	}
	<-errc
	o.flush()
	fmt.Println("simd: worker bye")
	return 0
}
