package parsim

import (
	"sync"

	"repro/internal/obs"
)

// The engine's process-wide counters, registered into obs.Default() on
// the first run so a process that never uses parsim exposes none of
// them.
var (
	metricsOnce sync.Once
	mRuns       *obs.Counter
	mBarriers   *obs.Counter
	mGated      *obs.Counter
	mAbortShare *obs.Counter
	mAbortSync  *obs.Counter
)

func initMetrics() {
	r := obs.Default()
	mRuns = r.Counter("parsim_runs_total",
		"Host-parallel engine runs attempted (including aborted ones).")
	mBarriers = r.Counter("parsim_epoch_barriers_total",
		"Epoch-barrier waits summed across cores.")
	mGated = r.Counter("parsim_gated_sections_total",
		"Shared-hierarchy sections serialized through the ordering gate.")
	const abortHelp = "Parallel runs abandoned to the sequential driver, by reason."
	mAbortShare = r.Counter("parsim_aborts_total", abortHelp, obs.Label{Key: "reason", Value: "sharing"})
	mAbortSync = r.Counter("parsim_aborts_total", abortHelp, obs.Label{Key: "reason", Value: "sync"})
}

// flushMetrics folds one run's gate counters into the process-wide
// registry. Called once after stepping ends — never on the hot path.
func flushMetrics(g *gate) {
	metricsOnce.Do(initMetrics)
	mRuns.Inc()
	mBarriers.Add(g.barriers.Load())
	mGated.Add(g.enters.Load())
	switch g.abort.Load() {
	case abortSharing:
		mAbortShare.Inc()
	case abortSync:
		mAbortSync.Inc()
	}
}
