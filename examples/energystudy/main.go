// Energy study: the paper's Figure 8 case study — a dual-core with a 4MB
// L2 versus a quad-core with 3D-stacked DRAM and no L2 — re-examined as an
// energy-delay trade-off. Interval simulation makes the performance side
// cheap; the event-energy model turns the same run into joules.
//
//	go run ./examples/energystudy
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/multicore"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const workScale = 0.05
	benchmarks := []string{"blackscholes", "canneal", "swaptions"}

	fmt.Printf("%-14s %-14s %10s %10s %12s %14s\n",
		"bench", "config", "cycles", "uJ", "pJ/inst", "EDP (rel)")
	for _, name := range benchmarks {
		p := workload.PARSECByName(name)
		q := *p
		q.TotalWork = uint64(float64(q.TotalWork) * workScale)

		dual := measure(&q, config.Default(2))
		quad := measure(&q, config.Stacked3D(4))

		print1 := func(label string, r energy.Report, rel float64) {
			fmt.Printf("%-14s %-14s %10d %10.1f %12.1f %14.2f\n",
				name, label, r.Cycles, r.Total()/1e6, r.EPI(), rel)
		}
		print1("2c + 4MB L2", dual, 1.0)
		print1("4c + 3D DRAM", quad, quad.EDP()/dual.EDP())
	}

	fmt.Println()
	fmt.Println("EDP (rel) < 1 means the quad-core 3D configuration wins the energy-")
	fmt.Println("delay trade-off, not just raw performance: the paper's Figure 8")
	fmt.Println("decision, extended by one metric at zero extra simulation cost.")
}

// measure runs the workload with one thread per core and returns its
// energy report.
func measure(p *workload.Profile, m config.Machine) energy.Report {
	streams := make([]trace.Stream, m.Cores)
	warms := make([]trace.Stream, m.Cores)
	for i := range streams {
		streams[i] = workload.New(p, i, m.Cores, 42)
		warms[i] = workload.New(p, i, m.Cores, 1042)
	}
	res := multicore.Run(multicore.RunConfig{
		Machine:     m,
		Model:       multicore.Interval,
		WarmupInsts: 100_000,
		Warmup:      warms,
		KeepCores:   true,
	}, streams)
	return energy.Estimate(res, energy.Default())
}
