package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanRec is one completed span: a named interval on a track (TID),
// with optional numeric arguments (aggregated wait times, counts).
// Times are microseconds relative to the tracer's epoch, which is what
// both the JSON trace endpoint and the Chrome trace_event exporter
// serve directly.
type SpanRec struct {
	Name    string           `json:"name"`
	TID     int              `json:"tid"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Args    map[string]int64 `json:"args,omitempty"`
}

// Tracer records spans into a bounded in-memory ring. All methods are
// safe for concurrent use and all are no-ops on a nil *Tracer — the
// zero-cost-when-disabled contract: instrumented code calls
// tracer.Start(...) unconditionally cheaply only where a nil check
// already guards the slow path.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	ring    []SpanRec
	next    int
	wrapped bool
	dropped uint64
}

// DefaultSpanCap bounds the span ring when NewTracer is given no
// capacity: enough for the full lifecycle of a job plus thousands of
// parsim epoch spans.
const DefaultSpanCap = 4096

// NewTracer builds a tracer with a bounded span ring (capacity <= 0
// selects DefaultSpanCap). The tracer's epoch is its creation time.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{epoch: time.Now(), ring: make([]SpanRec, 0, capacity)}
}

// Since converts an absolute time to the tracer's relative microsecond
// clock. Nil-safe (returns 0).
func (t *Tracer) Since(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch).Microseconds()
}

// Now is Since(time.Now()). Nil-safe (returns 0).
func (t *Tracer) Now() int64 { return t.Since(time.Now()) }

// Add records a completed span. Nil-safe. When the ring is full the
// oldest span is overwritten and the drop counted.
func (t *Tracer) Add(s SpanRec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next++
		if t.next == cap(t.ring) {
			t.next = 0
		}
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Span is an in-flight span handle returned by Start. A nil *Span
// no-ops every method, so callers never nil-check individual handles.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Time
	args  map[string]int64
}

// Start opens a span now. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// TID assigns the span to a track (a simulated core, a worker).
func (s *Span) TID(id int) *Span {
	if s != nil {
		s.tid = id
	}
	return s
}

// Arg attaches a numeric argument, visible in the trace viewer.
func (s *Span) Arg(key string, v int64) *Span {
	if s == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]int64{}
	}
	s.args[key] = v
	return s
}

// End closes the span and records it. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.Add(SpanRec{
		Name:    s.name,
		TID:     s.tid,
		StartUS: s.t.Since(s.start),
		DurUS:   now.Sub(s.start).Microseconds(),
		Args:    s.args,
	})
}

// Spans snapshots the recorded spans in chronological ring order
// (oldest first). Nil-safe (returns nil).
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]SpanRec(nil), t.ring...)
	}
	out := make([]SpanRec, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped is the number of spans lost to ring overflow. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one trace_event record ("X" = complete event with
// duration), the format chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome renders the recorded spans as Chrome trace_event JSON
// (load the file in chrome://tracing or ui.perfetto.dev). Nil-safe
// (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, len(spans))
	for i, s := range spans {
		events[i] = chromeEvent{Name: s.Name, Ph: "X", TS: s.StartUS, Dur: s.DurUS, PID: 1, TID: s.TID, Args: s.Args}
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// tracerKey carries a *Tracer through a context.
type tracerKey struct{}

// ContextWith returns a context carrying the tracer.
func ContextWith(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext extracts the context's tracer (nil when absent — and a
// nil tracer no-ops, so callers never branch).
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer: the one-liner form
// obs.StartSpan(ctx, "cache:store") for code that already threads a
// context. No-op (nil span) when the context carries no tracer.
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).Start(name)
}
