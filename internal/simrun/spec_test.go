package simrun

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSpecScenarioMatchesOptions(t *testing.T) {
	raw := `{
		"bench": "gcc",
		"model": "interval",
		"cores": 2,
		"insts": 5000,
		"warmup": 1000,
		"seed": 7,
		"fabric": "mesh",
		"predictor": "gshare",
		"report": true
	}`
	spec, err := ParseSpec(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	fromOpts, err := New("gcc",
		Model("interval"), Cores(2), Insts(5000), Warmup(1000), Seed(7),
		Fabric("mesh"), Predictor("gshare"), KeepCores())
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromSpec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromOpts.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("spec-built and option-built scenarios differ: %s vs %s", a, b)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"bench":"gcc","predcitor":"tage"}`)); err == nil {
		t.Fatal("misspelled field was accepted")
	}
}

func TestSpecScenarioValidates(t *testing.T) {
	for name, raw := range map[string]string{
		"bench":  `{"bench":"no-such-benchmark"}`,
		"model":  `{"bench":"gcc","model":"quantum"}`,
		"fabric": `{"bench":"gcc","fabric":"torus"}`,
		"cores":  `{"bench":"gcc","cores":-1}`,
	} {
		spec, err := ParseSpec(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := spec.Scenario(); err == nil {
			t.Errorf("%s: invalid spec %s built a scenario", name, raw)
		}
	}
}

func TestLoadSpecsAppliesDefaults(t *testing.T) {
	raw := `{
		"defaults": {"insts": 5000, "warmup": 1000, "fabric": "mesh"},
		"scenarios": [
			{"bench": "gcc"},
			{"bench": "mcf", "fabric": "ring"}
		]
	}`
	scs, err := LoadSpecs(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scs))
	}
	// gcc inherits the mesh default; mcf overrides it with ring.
	m0, err := scs[0].ResolvedMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m0.Mem.Interconnect != "mesh" {
		t.Errorf("scenario 1 fabric = %q, want mesh (default)", m0.Mem.Interconnect)
	}
	m1, err := scs[1].ResolvedMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Mem.Interconnect != "ring" {
		t.Errorf("scenario 2 fabric = %q, want ring (override)", m1.Mem.Interconnect)
	}
}

// Base specs (a front end's sizing flags) back up the file's defaults:
// file fields win, base fills the gaps.
func TestLoadSpecsBaseDefaults(t *testing.T) {
	seed := int64(9)
	base := Spec{Insts: 3000, Warmup: 500, Seed: &seed}
	scs, err := LoadSpecs(strings.NewReader(
		`{"defaults":{"warmup":8000},"scenarios":[{"bench":"gcc"}]}`), base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustNew("gcc", Insts(3000), Warmup(8000), Seed(9)).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("base defaults not applied: fingerprint %s, want %s", got, want)
	}
}

// Specs pinned to a stale stream-format generation must fail loudly in
// every wire front end (simd submissions and sweep -f both build through
// Spec.Scenario), while the current version and the omitted-version
// shorthand keep working.
func TestSpecVersionGate(t *testing.T) {
	for _, v := range []int{0, SpecVersion} {
		if _, err := (Spec{Version: v, Bench: "gcc"}).Scenario(); err != nil {
			t.Errorf("version %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{1, 2, SpecVersion + 1} {
		_, err := (Spec{Version: v, Bench: "gcc"}).Scenario()
		if err == nil {
			t.Fatalf("stale spec version %d accepted", v)
		}
		if !strings.Contains(err.Error(), "stream format") {
			t.Errorf("version error does not explain the format break: %v", err)
		}
	}
}

// Mix assigns one address-space slot per core, so a mix wider than the
// slot space must be rejected at build time, not wrap at run time.
func TestMixRejectsMoreCoresThanSlots(t *testing.T) {
	_, err := New("", Mix("gcc", "mcf"), Cores(workload.MaxSlots+1))
	if err == nil || !strings.Contains(err.Error(), "slot") {
		t.Fatalf("oversized mix not rejected: %v", err)
	}
	if _, err := New("", Mix("gcc", "mcf"), Cores(workload.MaxSlots)); err != nil {
		t.Fatalf("mix at the slot limit rejected: %v", err)
	}
}

// A stale version in a spec file's defaults poisons every scenario in
// the batch, and the error names the entry. This is the sweep -f
// boundary: the usage error the operator reads must pin which format
// the file carries, which one the build speaks, and that the v3 break
// renumbered the file's expected results.
func TestLoadSpecsStaleVersionRejected(t *testing.T) {
	for _, stale := range []int{1, 2} {
		_, err := LoadSpecs(strings.NewReader(fmt.Sprintf(
			`{"defaults":{"version":%d},"scenarios":[{"bench":"gcc"}]}`, stale)))
		if err == nil {
			t.Fatalf("stale defaults version %d not rejected", stale)
		}
		msg := err.Error()
		for _, want := range []string{
			"scenario 1",
			fmt.Sprintf("pinned to stream format v%d", stale),
			fmt.Sprintf("speaks v%d", SpecVersion),
			"deliberately incompatible",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("v%d rejection missing %q: %v", stale, want, err)
			}
		}
	}
}

func TestLoadSpecsErrors(t *testing.T) {
	if _, err := LoadSpecs(strings.NewReader(`{"scenarios":[]}`)); err == nil {
		t.Error("empty scenario list was accepted")
	}
	_, err := LoadSpecs(strings.NewReader(`{"scenarios":[{"bench":"gcc"},{"bench":"bogus"}]}`))
	if err == nil || !strings.Contains(err.Error(), "scenario 2") {
		t.Errorf("error does not name the offending entry: %v", err)
	}
}
