// Energy study: the paper's Figure 8 case study — a dual-core with a 4MB
// L2 versus a quad-core with 3D-stacked DRAM and no L2 — re-examined as an
// energy-delay trade-off. Interval simulation makes the performance side
// cheap; the event-energy model turns the same run into joules.
//
//	go run ./examples/energystudy
package main

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/simrun"
)

func main() {
	const workScale = 0.05
	benchmarks := []string{"blackscholes", "canneal", "swaptions"}

	fmt.Printf("%-14s %-14s %10s %10s %12s %14s\n",
		"bench", "config", "cycles", "uJ", "pJ/inst", "EDP (rel)")
	for _, name := range benchmarks {
		dual := measure(name, workScale, config.Default(2))
		quad := measure(name, workScale, config.Stacked3D(4))

		print1 := func(label string, r energy.Report, rel float64) {
			fmt.Printf("%-14s %-14s %10d %10.1f %12.1f %14.2f\n",
				name, label, r.Cycles, r.Total()/1e6, r.EPI(), rel)
		}
		print1("2c + 4MB L2", dual, 1.0)
		print1("4c + 3D DRAM", quad, quad.EDP()/dual.EDP())
	}

	fmt.Println()
	fmt.Println("EDP (rel) < 1 means the quad-core 3D configuration wins the energy-")
	fmt.Println("delay trade-off, not just raw performance: the paper's Figure 8")
	fmt.Println("decision, extended by one metric at zero extra simulation cost.")
}

// measure runs the workload with one thread per core and returns its
// energy report.
func measure(bench string, workScale float64, m config.Machine) energy.Report {
	res, err := simrun.MustNew(bench,
		simrun.Machine(m),
		simrun.WorkScale(workScale),
		simrun.Warmup(100_000),
		simrun.KeepCores(),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	return energy.Estimate(res.Result, energy.Default())
}
