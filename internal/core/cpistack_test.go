package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/memhier"
)

func TestStackComponentsSumToTotalTime(t *testing.T) {
	insts := seqALU(3000)
	// Sprinkle in every event type.
	insts[500] = isa.Inst{Seq: 500, PC: 0x400400, Class: isa.Load,
		Addr: 0x10000000000, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 9}
	insts[1000] = isa.Inst{Seq: 1000, PC: 0x400800, Class: isa.Serializing}
	for i := 1500; i < 2500; i += 20 {
		insts[i] = isa.Inst{Seq: uint64(i), PC: 0x400100,
			Class: isa.Branch, Taken: i%40 == 0, Target: 0x400000}
	}
	c, _ := build(insts, memhier.Perfect{}, "bimodal")
	runCore(c)
	s := c.Stack()
	if s.Total() != c.LocalTime() {
		t.Fatalf("stack total %d != core time %d", s.Total(), c.LocalTime())
	}
	if s.Retired != 3000 {
		t.Fatalf("stack retired %d", s.Retired)
	}
	if s.Base <= 0 {
		t.Fatal("no base component")
	}
	if s.LongLoad <= 0 {
		t.Fatal("long-latency load not attributed")
	}
	if s.Serialize <= 0 {
		t.Fatal("serialize not attributed")
	}
	if s.Branch <= 0 {
		t.Fatal("branch penalties not attributed")
	}
}

func TestStackSyncComponent(t *testing.T) {
	insts := seqALU(200)
	insts[100] = isa.Inst{Seq: 100, Class: isa.BarrierArrive}
	m := buildMachine()
	c := buildWith(m, insts, &gateSyncer{openAt: 400})
	runCore(c)
	s := c.Stack()
	if s.Sync < 250 {
		t.Fatalf("sync component %d, want most of the 400-cycle wait", s.Sync)
	}
	if s.Total() != c.LocalTime() {
		t.Fatalf("stack total %d != core time %d", s.Total(), c.LocalTime())
	}
}

func TestStackCPIAndString(t *testing.T) {
	c, _ := build(seqALU(1000), memhier.Perfect{ISide: true, DSide: true}, "perfect")
	runCore(c)
	s := c.Stack()
	if cpi := s.CPI(); cpi < 0.24 || cpi > 0.35 {
		t.Fatalf("CPI = %.3f, want ~0.25 (width-limited)", cpi)
	}
	out := s.String()
	for _, want := range []string{"base", "icache", "branch", "longload", "serialize", "sync", "CPI stack"} {
		if !strings.Contains(out, want) {
			t.Errorf("stack string missing %q:\n%s", want, out)
		}
	}
	var zero CPIStack
	if zero.CPI() != 0 {
		t.Fatal("zero stack CPI nonzero")
	}
}
