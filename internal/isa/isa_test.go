package isa

import (
	"strings"
	"testing"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                   Class
		branch, mem, syncOp bool
	}{
		{IntALU, false, false, false},
		{IntMul, false, false, false},
		{IntDiv, false, false, false},
		{FPOp, false, false, false},
		{Load, false, true, false},
		{Store, false, true, false},
		{Branch, true, false, false},
		{Call, true, false, false},
		{Return, true, false, false},
		{Serializing, false, false, false},
		{BarrierArrive, false, false, true},
		{LockAcquire, false, false, true},
		{LockRelease, false, false, true},
	}
	for _, tc := range cases {
		if tc.c.IsBranch() != tc.branch {
			t.Errorf("%v.IsBranch() = %t", tc.c, tc.c.IsBranch())
		}
		if tc.c.IsMem() != tc.mem {
			t.Errorf("%v.IsMem() = %t", tc.c, tc.c.IsMem())
		}
		if tc.c.IsSync() != tc.syncOp {
			t.Errorf("%v.IsSync() = %t", tc.c, tc.c.IsSync())
		}
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := map[string]Class{}
	for c := Class(0); int(c) < NumClasses; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no mnemonic", c)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("classes %v and %v share mnemonic %q", prev, c, s)
		}
		seen[s] = c
	}
	if got := Class(200).String(); !strings.HasPrefix(got, "class(") {
		t.Errorf("out-of-range class string = %q", got)
	}
}

func TestInstOperandHelpers(t *testing.T) {
	in := Inst{Class: IntALU, Src1: 3, Src2: RegNone, Dst: 9}
	if !in.HasDst() {
		t.Error("HasDst false with Dst=9")
	}
	if !in.Reads(3) || in.Reads(4) || in.Reads(RegNone) {
		t.Error("Reads wrong")
	}
	in.Dst = RegNone
	if in.HasDst() {
		t.Error("HasDst true with RegNone")
	}
}

func TestInstStringVariants(t *testing.T) {
	mem := Inst{Seq: 1, Class: Load, PC: 0x40, Addr: 0x1000, Dst: 5, Src1: 2, Src2: RegNone}
	if s := mem.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x1000") {
		t.Errorf("mem string %q", s)
	}
	br := Inst{Seq: 2, Class: Branch, PC: 0x44, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "taken=true") {
		t.Errorf("branch string %q", s)
	}
	sy := Inst{Seq: 3, Class: LockAcquire, SyncID: 7}
	if s := sy.String(); !strings.Contains(s, "id=7") {
		t.Errorf("sync string %q", s)
	}
	alu := Inst{Seq: 4, Class: IntALU, Dst: 8}
	if s := alu.String(); !strings.Contains(s, "int") {
		t.Errorf("alu string %q", s)
	}
}
