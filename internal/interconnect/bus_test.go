package interconnect

import (
	"testing"
	"testing/quick"
)

func TestUncontendedHop(t *testing.T) {
	b := New(4, 1)
	if got := b.Access(100); got != 4 {
		t.Fatalf("uncontended access = %d, want hop 4", got)
	}
	if b.StallTotal != 0 {
		t.Fatal("uncontended access queued")
	}
}

func TestQueueingUnderBurst(t *testing.T) {
	b := New(4, 2)
	b.Access(0) // occupies cycles 0-1
	if got := b.Access(0); got != 2+4 {
		t.Fatalf("second same-cycle access = %d, want 6 (2 queue + 4 hop)", got)
	}
	if got := b.Access(0); got != 4+4 {
		t.Fatalf("third same-cycle access = %d, want 8", got)
	}
	if b.StallTotal != 2+4 {
		t.Fatalf("stall total = %d", b.StallTotal)
	}
}

func TestNoQueueWhenSpaced(t *testing.T) {
	b := New(4, 2)
	b.Access(0)
	if got := b.Access(10); got != 4 {
		t.Fatalf("spaced access = %d, want 4", got)
	}
}

func TestMinimumOccupancy(t *testing.T) {
	b := New(4, 0)
	b.Access(0)
	if b.BusyTotal != 1 {
		t.Fatalf("occupancy clamped to %d, want 1", b.BusyTotal)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	b := New(4, 2)
	b.Access(0)
	if u := b.Utilization(4); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if b.Utilization(0) != 0 {
		t.Fatal("zero-time utilization nonzero")
	}
	b.ResetStats()
	if b.Transactions != 0 || b.BusyTotal != 0 || b.StallTotal != 0 {
		t.Fatal("reset left stats")
	}
	if got := b.Access(0); got != 4 {
		t.Fatalf("access after reset = %d, want 4 (bus free)", got)
	}
}

// Property: latency is always at least the hop latency and busy time equals
// transactions x occupancy.
func TestQuickBusBounds(t *testing.T) {
	f := func(gaps []uint8) bool {
		b := New(4, 2)
		now := int64(0)
		for _, g := range gaps {
			now += int64(g)
			if b.Access(now) < 4 {
				return false
			}
		}
		return b.BusyTotal == int64(len(gaps))*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
